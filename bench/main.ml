(* Regenerates every table and figure of the paper's evaluation (§5) and
   runs one Bechamel micro-benchmark per experiment on the detector inner
   loops.

   Usage:
     dune exec bench/main.exe                 -- everything at CI scale
     dune exec bench/main.exe -- table3 fig10 -- selected experiments
     dune exec bench/main.exe -- --scale 1.0 fig11
                                              -- paper-size MiniVite input
     dune exec bench/main.exe -- --ranks 8,16 table4

   Scale notes: MiniVite inputs default to one tenth of the paper's
   640k/1,280k vertices so the full sweep finishes in minutes; rank
   counts are the paper's 32..256. Absolute times are simulated seconds
   (cost model in Mpi_sim.Config) plus the detectors' real measured work
   injected at analysis_overhead_scale; shapes, not absolute values, are
   the reproduction target. *)

open Rma_report

let section title = Printf.printf "\n=== %s ===\n\n%!" title

let run_table2 () =
  section "Table 2";
  let _, rendered = Experiments.table2 () in
  print_string rendered

let run_table3 () =
  section "Table 3";
  let _, rendered = Experiments.table3 () in
  print_string rendered;
  print_endline
    "Note: the paper prints TP=41/TN=107 for RMA-Analyzer next to FP=6/FN=0, which cannot all\n\
     hold over 47 racy + 107 safe codes; this harness reports the self-consistent variant\n\
     (six order-sensitivity FPs land on safe codes, cf. Table 2's \
     ll_load_get_inwindow_origin_safe)."

let run_table4 ~scale ~ranks () =
  section "Table 4";
  let _, rendered = Experiments.table4 ~scale ?ranks () in
  print_string rendered

let run_fig5 () =
  section "Figure 5";
  print_string (Experiments.fig5 ())

let run_fig8 () =
  section "Figure 8";
  let _, rendered = Experiments.fig8 () in
  print_string rendered

let run_fig9 () =
  section "Figure 9";
  print_string (Experiments.fig9 ())

let run_fig10 () =
  section "Figure 10";
  let _, rendered = Experiments.fig10 () in
  print_string rendered

let run_fig11 ~scale ~ranks () =
  section "Figure 11";
  let _, rendered = Experiments.fig11 ~scale ?ranks () in
  print_string rendered

let run_fig12 ~scale ~ranks () =
  section "Figure 12";
  let _, rendered = Experiments.fig12 ~scale ?ranks () in
  print_string rendered

let run_ablation () =
  section "Ablations";
  let _, rendered = Experiments.ablation () in
  print_string rendered

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure, measuring the       *)
(* detector inner loop that experiment stresses.                        *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let open Rma_access in
  let open Rma_store in
  let dbg line = Debug_info.make ~file:"bench.c" ~line ~operation:"op" in
  let mk_access ~seq ~line lo hi kind =
    Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer:0 ~seq ~debug:(dbg line)
  in
  (* Table 2/3 inner loop: one full microbenchmark verdict. *)
  let scenario =
    match Rma_microbench.Scenario.find "ll_get_load_inwindow_origin_race" with
    | Some s -> s
    | None -> failwith "scenario missing"
  in
  let table3_verdict () =
    let tool =
      Rma_analysis.Rma_analyzer.create ~nprocs:3 ~mode:Rma_analysis.Tool.Collect
        Rma_analysis.Rma_analyzer.Contribution
    in
    ignore (Rma_microbench.Runner.run ~tool scenario)
  in
  (* Table 4 / Figures 11-12 inner loop: MiniVite-style stride-16 access
     stream into both stores. *)
  let minivite_stream =
    Array.init 2_000 (fun i ->
        mk_access ~seq:(i + 1) ~line:501 (i * 16) ((i * 16) + 7) Access_kind.Rma_read)
  in
  let stream_insert_disjoint stream () =
    let store = Disjoint_store.create () in
    Array.iter (fun a -> ignore (Disjoint_store.insert store a)) stream
  in
  let stream_insert_legacy stream () =
    let store = Legacy_store.create () in
    Array.iter (fun a -> ignore (Legacy_store.insert store a)) stream
  in
  (* Figure 10 inner loop: CFD-style adjacent same-line stream (merges to
     one node) vs legacy accumulation. *)
  let cfd_stream =
    Array.init 2_000 (fun i ->
        mk_access ~seq:(i + 1) ~line:318 (i * 8) ((i * 8) + 7) Access_kind.Rma_write)
  in
  (* Figure 8 inner loop: the Code 2 adjacent get loop. *)
  let fig8_stream =
    Array.init 1_000 (fun i -> mk_access ~seq:(i + 1) ~line:2 i i Access_kind.Rma_write)
  in
  (* Figure 5 inner loop: fragmentation of one overlapping insert. *)
  let fig5_op () =
    let store = Disjoint_store.create ~merge:false () in
    ignore (Disjoint_store.insert store (mk_access ~seq:1 ~line:1 4 4 Access_kind.Local_read));
    ignore (Disjoint_store.insert store (mk_access ~seq:2 ~line:2 2 12 Access_kind.Rma_read))
  in
  [
    Test.make ~name:"table2+3: one suite verdict (contribution)" (Staged.stage table3_verdict);
    Test.make ~name:"table4+fig11/12: minivite stream, contribution store"
      (Staged.stage (stream_insert_disjoint minivite_stream));
    Test.make ~name:"table4+fig11/12: minivite stream, legacy store"
      (Staged.stage (stream_insert_legacy minivite_stream));
    Test.make ~name:"fig10: cfd adjacent stream, contribution store (merges)"
      (Staged.stage (stream_insert_disjoint cfd_stream));
    Test.make ~name:"fig10: cfd adjacent stream, legacy store"
      (Staged.stage (stream_insert_legacy cfd_stream));
    Test.make ~name:"fig8: code2 get loop, contribution store"
      (Staged.stage (stream_insert_disjoint fig8_stream));
    Test.make ~name:"fig5: fragmentation of one overlapping insert" (Staged.stage fig5_op);
  ]

let run_micro () =
  section "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"rma" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      Printf.printf "%-62s %12.1f ns/run\n" name estimate)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = ref 0.1 in
  let ranks = ref None in
  let obs_out = ref None in
  let obs_summary = ref false in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--ranks" :: v :: rest ->
        ranks := Some (List.map int_of_string (String.split_on_char ',' v));
        parse rest
    | "--obs-out" :: v :: rest ->
        obs_out := Some v;
        parse rest
    | "--obs-summary" :: rest ->
        obs_summary := true;
        parse rest
    | arg :: rest ->
        selected := arg :: !selected;
        parse rest
  in
  parse args;
  let selected = if !selected = [] then [ "all" ] else List.rev !selected in
  let scale = !scale and ranks = !ranks in
  if !obs_out <> None || !obs_summary then Rma_obs.Obs.enable ();
  let dispatch = function
    | "table2" -> run_table2 ()
    | "table3" -> run_table3 ()
    | "table4" -> run_table4 ~scale ~ranks ()
    | "fig5" -> run_fig5 ()
    | "fig8" -> run_fig8 ()
    | "fig9" -> run_fig9 ()
    | "fig10" -> run_fig10 ()
    | "fig11" -> run_fig11 ~scale ~ranks ()
    | "fig12" -> run_fig12 ~scale ~ranks ()
    | "ablation" -> run_ablation ()
    | "micro" -> run_micro ()
    | "all" ->
        run_table2 ();
        run_table3 ();
        run_table4 ~scale ~ranks ();
        run_fig5 ();
        run_fig8 ();
        run_fig9 ();
        run_fig10 ();
        run_fig11 ~scale ~ranks ();
        run_fig12 ~scale ~ranks ();
        run_ablation ();
        run_micro ()
    | other ->
        Printf.eprintf
          "unknown experiment %S (expected table2 table3 table4 fig5 fig8 fig9 fig10 fig11 fig12 \
           ablation micro all)\n"
          other;
        exit 2
  in
  (* Each experiment becomes a top-level phase span so a trace of the
     full sweep shows where the wall time went. *)
  let dispatch name =
    let (), _ = Rma_obs.Obs.time_span ~cat:"phase" name (fun () -> dispatch name) in
    ()
  in
  List.iter dispatch selected;
  (match !obs_out with
  | Some path ->
      Rma_obs.Chrome_trace.write ~path ();
      Printf.eprintf "obs: wrote Chrome trace to %s\n%!" path
  | None -> ());
  if !obs_summary then print_string (Rma_obs.Summary.to_string ())
