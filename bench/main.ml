(* Regenerates every table and figure of the paper's evaluation (§5) and
   runs one Bechamel micro-benchmark per experiment on the detector inner
   loops.

   Usage:
     dune exec bench/main.exe                 -- everything at CI scale
     dune exec bench/main.exe -- table3 fig10 -- selected experiments
     dune exec bench/main.exe -- --scale 1.0 fig11
                                              -- paper-size MiniVite input
     dune exec bench/main.exe -- --ranks 8,16 table4
     dune exec bench/main.exe -- --json BENCH.json
                                              -- perf-trajectory record
     dune exec bench/main.exe -- --compare old.json new.json
     dune exec bench/main.exe -- --compare old.json new.json --threshold 0.25
     dune exec bench/main.exe -- --fault-plan seed=7,worker_crash=0.05 --jobs 4 fig10
     dune exec bench/main.exe -- --budget 4096:spill fig11
     dune exec bench/main.exe -- --obs-events events.jsonl --obs-level debug fig10
     dune exec bench/main.exe -- --obs-serve 9090 fig11    -- curl /metrics mid-run

   Scale notes: MiniVite inputs default to one tenth of the paper's
   640k/1,280k vertices so the full sweep finishes in minutes; rank
   counts are the paper's 32..256. Absolute times are simulated seconds
   (cost model in Mpi_sim.Config) plus the detectors' real measured work
   injected at analysis_overhead_scale; shapes, not absolute values, are
   the reproduction target. *)

open Rma_report

let section title = Printf.printf "\n=== %s ===\n\n%!" title

(* Every runner returns its flat metric bag for the perf-trajectory
   record; wall time is added by the dispatch span below. Simulated
   times and node counts go in as-is; only keys present in both records
   are compared, so scale/rank changes degrade to fewer comparisons,
   not false alarms. *)

let metric_key parts = String.concat "_" parts

let run_table2 () =
  section "Table 2";
  let rows, rendered = Experiments.table2 () in
  print_string rendered;
  List.concat_map
    (fun (r : Experiments.verdict_row) ->
      let b v = if v then 1.0 else 0.0 in
      [
        (metric_key [ r.code; "legacy" ], b r.legacy);
        (metric_key [ r.code; "must" ], b r.must);
        (metric_key [ r.code; "contribution" ], b r.contribution);
      ])
    rows

let run_table3 () =
  section "Table 3";
  let rows, rendered = Experiments.table3 () in
  print_string rendered;
  print_endline
    "Note: the paper prints TP=41/TN=107 for RMA-Analyzer next to FP=6/FN=0, which cannot all\n\
     hold over 47 racy + 107 safe codes; this harness reports the self-consistent variant\n\
     (six order-sensitivity FPs land on safe codes, cf. Table 2's \
     ll_load_get_inwindow_origin_safe).";
  List.concat_map
    (fun (r : Experiments.confusion_row) ->
      let i v = float_of_int v in
      [
        (metric_key [ r.tool; "fp" ], i r.fp); (metric_key [ r.tool; "fn" ], i r.fn);
        (metric_key [ r.tool; "tp" ], i r.tp); (metric_key [ r.tool; "tn" ], i r.tn);
        (metric_key [ r.tool; "dropped" ], i r.dropped);
      ])
    rows

let run_table4 ~scale ~ranks () =
  section "Table 4";
  let rows, rendered = Experiments.table4 ~scale ?ranks () in
  print_string rendered;
  List.concat_map
    (fun (r : Experiments.table4_row) ->
      let pre = Printf.sprintf "r%d_v%d" r.ranks r.vertices in
      let i v = float_of_int v in
      [
        (metric_key [ pre; "legacy_nodes" ], i r.legacy_nodes);
        (metric_key [ pre; "contribution_nodes" ], i r.contribution_nodes);
        (metric_key [ pre; "legacy_peak_nodes" ], i r.legacy_peak);
        (metric_key [ pre; "contribution_peak_nodes" ], i r.contribution_peak);
        (metric_key [ pre; "reduction" ], r.reduction);
      ])
    rows

let run_fig5 () =
  section "Figure 5";
  print_string (Experiments.fig5 ());
  []

let run_fig8 () =
  section "Figure 8";
  let r, rendered = Experiments.fig8 () in
  print_string rendered;
  [
    ("legacy_nodes", float_of_int r.Experiments.legacy_nodes);
    ("contribution_nodes", float_of_int r.Experiments.contribution_nodes);
  ]

let run_fig9 () =
  section "Figure 9";
  print_string (Experiments.fig9 ());
  []

let perf_metrics rows =
  List.concat_map
    (fun (r : Experiments.perf_row) ->
      let pre = Printf.sprintf "%s_r%d" r.tool r.nprocs in
      let i v = float_of_int v in
      [
        (metric_key [ pre; "epoch_time_s" ], r.epoch_time);
        (metric_key [ pre; "exec_time_s" ], r.exec_time);
        (metric_key [ pre; "nodes" ], i r.nodes);
        (metric_key [ pre; "peak_nodes" ], i r.nodes_peak);
        (metric_key [ pre; "races" ], i r.races);
        (metric_key [ pre; "dropped" ], i r.dropped);
      ])
    rows

let run_fig10 () =
  section "Figure 10";
  let rows, rendered = Experiments.fig10 () in
  print_string rendered;
  perf_metrics rows

let run_fig11 ~scale ~ranks () =
  section "Figure 11";
  let rows, rendered = Experiments.fig11 ~scale ?ranks () in
  print_string rendered;
  perf_metrics rows

let run_fig12 ~scale ~ranks () =
  section "Figure 12";
  let rows, rendered = Experiments.fig12 ~scale ?ranks () in
  print_string rendered;
  perf_metrics rows

let run_ablation () =
  section "Ablations";
  let rows, rendered = Experiments.ablation () in
  print_string rendered;
  List.concat_map
    (fun (r : Experiments.ablation_row) ->
      [
        (metric_key [ r.variant; "nodes" ], float_of_int r.nodes);
        (metric_key [ r.variant; "races" ], float_of_int r.races);
      ])
    rows

let run_par ~scale () =
  section "Parallel sharded engine";
  let rows, rendered = Experiments.par ~scale () in
  print_string rendered;
  List.concat_map
    (fun (r : Experiments.par_row) ->
      let pre = Printf.sprintf "par_j%d" r.p_jobs in
      [
        (metric_key [ pre; "epoch_time_s" ], r.p_epoch_time);
        (metric_key [ pre; "exec_time_s" ], r.p_exec_time);
        (metric_key [ pre; "races" ], float_of_int r.p_races);
        (metric_key [ pre; "nodes" ], float_of_int r.p_nodes);
        (metric_key [ pre; "speedup" ], r.p_speedup);
        (metric_key [ pre; "critical_path_ms" ], r.p_critical_path *. 1000.0);
      ])
    rows

(* Insert fast path: the Code 2 adjacent-access stream through the
   disjoint store with the fast path off, the finger cache alone, and
   the coalescing batch buffer — asserting identical verdicts and final
   contents, and reporting the tree-operation reduction (the ISSUE 3
   ≥2× target). *)
let run_fastpath () =
  section "Insert fast path (Code 2 adjacent-access microbench)";
  let open Rma_access in
  let open Rma_store in
  let dbg line = Debug_info.make ~file:"code2.c" ~line ~operation:"MPI_Get" in
  let mk ~seq ~line lo hi kind =
    Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer:0 ~seq ~debug:(dbg line)
  in
  (* 1000 adjacent one-byte gets (Figure 8b), then one racy duplicate
     from another rank so the race path is exercised identically. *)
  let adjacent = Array.init 1_000 (fun i -> mk ~seq:(i + 1) ~line:2 i i Access_kind.Rma_write) in
  let racy =
    Access.make ~interval:(Interval.make ~lo:500 ~hi:500) ~kind:Access_kind.Rma_write ~issuer:1
      ~seq:1_001 ~debug:(dbg 9)
  in
  let feed store =
    Array.iter (fun a -> ignore (Disjoint_store.insert store a)) adjacent;
    let verdict = Disjoint_store.insert store racy in
    Disjoint_store.batch_flush store;
    (verdict, Disjoint_store.stats store, Disjoint_store.to_list store)
  in
  let verdict_off, stats_off, list_off = feed (Disjoint_store.create ~fast_path:false ()) in
  let finger = Disjoint_store.create ~batch:false () in
  let verdict_f, stats_f, list_f = feed finger in
  let batched = Disjoint_store.create ~batch:true () in
  let verdict_b, stats_b, list_b = feed batched in
  let same_verdict a b =
    match (a, b) with
    | Store_intf.Inserted, Store_intf.Inserted -> true
    | ( Store_intf.Race_detected { existing = e1; incoming = i1 },
        Store_intf.Race_detected { existing = e2; incoming = i2 } ) ->
        Access.equal e1 e2 && Access.equal i1 i2
    | _ -> false
  in
  let identical =
    same_verdict verdict_off verdict_f && same_verdict verdict_off verdict_b
    && List.equal Access.equal list_off list_f
    && List.equal Access.equal list_off list_b
    && stats_off.Store_intf.nodes = stats_f.Store_intf.nodes
    && stats_off.Store_intf.nodes = stats_b.Store_intf.nodes
  in
  if not identical then failwith "fastpath bench: batched and unbatched stores disagree";
  let fp_f = Disjoint_store.fast_path_stats finger in
  let fp_b = Disjoint_store.fast_path_stats batched in
  let reduction which ops =
    let r = float_of_int stats_off.Store_intf.tree_ops /. float_of_int (max 1 ops) in
    Printf.printf "%-28s %6d tree ops   (%.1fx fewer than fast-path-off)\n" which ops r;
    r
  in
  Printf.printf "%-28s %6d tree ops\n" "fast path off" stats_off.Store_intf.tree_ops;
  let red_f = reduction "finger cache" stats_f.Store_intf.tree_ops in
  let red_b = reduction "batch buffer" stats_b.Store_intf.tree_ops in
  Printf.printf "finger: %d hits; batch: %d coalesced, %d flushes\n" fp_f.finger_hits
    fp_b.batch_coalesced fp_b.batch_flushes;
  Printf.printf "race verdicts and final node sets: identical across all three\n";
  [
    ("fastpath_off_tree_ops", float_of_int stats_off.Store_intf.tree_ops);
    ("fastpath_finger_tree_ops", float_of_int stats_f.Store_intf.tree_ops);
    ("fastpath_batch_tree_ops", float_of_int stats_b.Store_intf.tree_ops);
    ("fastpath_finger_reduction", red_f);
    ("fastpath_batch_reduction", red_b);
    ("fastpath_finger_hits", float_of_int fp_f.finger_hits);
    ("fastpath_batch_coalesced", float_of_int fp_b.batch_coalesced);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure, measuring the       *)
(* detector inner loop that experiment stresses.                        *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let open Rma_access in
  let open Rma_store in
  let dbg line = Debug_info.make ~file:"bench.c" ~line ~operation:"op" in
  let mk_access ~seq ~line lo hi kind =
    Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer:0 ~seq ~debug:(dbg line)
  in
  (* Table 2/3 inner loop: one full microbenchmark verdict. *)
  let scenario =
    match Rma_microbench.Scenario.find "ll_get_load_inwindow_origin_race" with
    | Some s -> s
    | None -> failwith "scenario missing"
  in
  let table3_verdict () =
    let tool =
      Rma_analysis.Rma_analyzer.create ~nprocs:3 ~mode:Rma_analysis.Tool.Collect
        Rma_analysis.Rma_analyzer.Contribution
    in
    ignore (Rma_microbench.Runner.run ~tool scenario)
  in
  (* Table 4 / Figures 11-12 inner loop: MiniVite-style stride-16 access
     stream into both stores. *)
  let minivite_stream =
    Array.init 2_000 (fun i ->
        mk_access ~seq:(i + 1) ~line:501 (i * 16) ((i * 16) + 7) Access_kind.Rma_read)
  in
  let stream_insert_disjoint stream () =
    let store = Disjoint_store.create () in
    Array.iter (fun a -> ignore (Disjoint_store.insert store a)) stream
  in
  let stream_insert_legacy stream () =
    let store = Legacy_store.create () in
    Array.iter (fun a -> ignore (Legacy_store.insert store a)) stream
  in
  (* Figure 10 inner loop: CFD-style adjacent same-line stream (merges to
     one node) vs legacy accumulation. *)
  let cfd_stream =
    Array.init 2_000 (fun i ->
        mk_access ~seq:(i + 1) ~line:318 (i * 8) ((i * 8) + 7) Access_kind.Rma_write)
  in
  (* Figure 8 inner loop: the Code 2 adjacent get loop. *)
  let fig8_stream =
    Array.init 1_000 (fun i -> mk_access ~seq:(i + 1) ~line:2 i i Access_kind.Rma_write)
  in
  (* Figure 5 inner loop: fragmentation of one overlapping insert. *)
  let fig5_op () =
    let store = Disjoint_store.create ~merge:false () in
    ignore (Disjoint_store.insert store (mk_access ~seq:1 ~line:1 4 4 Access_kind.Local_read));
    ignore (Disjoint_store.insert store (mk_access ~seq:2 ~line:2 2 12 Access_kind.Rma_read))
  in
  [
    Test.make ~name:"table2+3: one suite verdict (contribution)" (Staged.stage table3_verdict);
    Test.make ~name:"table4+fig11/12: minivite stream, contribution store"
      (Staged.stage (stream_insert_disjoint minivite_stream));
    Test.make ~name:"table4+fig11/12: minivite stream, legacy store"
      (Staged.stage (stream_insert_legacy minivite_stream));
    Test.make ~name:"fig10: cfd adjacent stream, contribution store (merges)"
      (Staged.stage (stream_insert_disjoint cfd_stream));
    Test.make ~name:"fig10: cfd adjacent stream, legacy store"
      (Staged.stage (stream_insert_legacy cfd_stream));
    Test.make ~name:"fig8: code2 get loop, contribution store"
      (Staged.stage (stream_insert_disjoint fig8_stream));
    Test.make ~name:"fig8: code2 get loop, contribution store (batched)"
      (Staged.stage (fun () ->
           let store = Disjoint_store.create ~batch:true () in
           Array.iter (fun a -> ignore (Disjoint_store.insert store a)) fig8_stream;
           Disjoint_store.batch_flush store));
    Test.make ~name:"fig8: code2 get loop, contribution store (fast path off)"
      (Staged.stage (fun () ->
           let store = Disjoint_store.create ~fast_path:false () in
           Array.iter (fun a -> ignore (Disjoint_store.insert store a)) fig8_stream));
    Test.make ~name:"fig5: fragmentation of one overlapping insert" (Staged.stage fig5_op);
  ]

let run_micro () =
  section "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let tests = Test.make_grouped ~name:"rma" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.filter_map
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      Printf.printf "%-62s %12.1f ns/run\n" name estimate;
      if Float.is_finite estimate then Some (name ^ "_ns", estimate) else None)
    rows


(* Hybrid MPI+threads kernel sweep: accuracy of the contribution
   analyzer over the hyb_* corpus across two interleave seeds, plus the
   end-to-end wall cost of the threaded simulation. *)
let run_hybrid () =
  section "Hybrid MPI+threads kernels";
  let module Scenario = Rma_microbench.Scenario in
  let module Runner = Rma_microbench.Runner in
  let kernels = Scenario.Kernel.hybrid in
  let interleaves = [ 13; 29 ] in
  let t0 = Rma_util.Timer.now () in
  let correct = ref 0 and total = ref 0 in
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      List.iter
        (fun interleave_seed ->
          let tool =
            Rma_analysis.Rma_analyzer.create ~nprocs:k.Scenario.Kernel.k_nprocs
              ~mode:Rma_analysis.Tool.Collect Rma_analysis.Rma_analyzer.Contribution
          in
          let v = Runner.run_kernel ~interleave_seed ~tool k in
          incr total;
          if v.Runner.k_flagged = k.Scenario.Kernel.k_racy then incr correct)
        interleaves)
    kernels;
  let wall = Rma_util.Timer.now () -. t0 in
  Printf.printf "%d kernels x %d interleaves: %d/%d verdicts correct, %.3f s total\n"
    (List.length kernels) (List.length interleaves) !correct !total wall;
  [
    ("hybrid_kernels", float_of_int (List.length kernels));
    ("hybrid_verdicts_total", float_of_int !total);
    ("hybrid_verdicts_correct", float_of_int !correct);
    ("hybrid_wall_seconds", wall);
  ]

(* Predictive-mode overhead and yield: the full labeled kernel corpus
   (base + hybrid + prd) under the observed-only analyzer and again with
   --predictive, same seeds. The headline number is the wall-time ratio —
   the weak-order bookkeeping must stay under 2x the observed-only
   analysis — plus the extra races predictive mode surfaces at a
   schedule where the observed analysis misses them. *)
let run_predictive () =
  section "Predictive mode (weak-order analysis)";
  let module Scenario = Rma_microbench.Scenario in
  let module Runner = Rma_microbench.Runner in
  let kernels = Scenario.Kernel.all @ Scenario.Kernel.hybrid @ Scenario.Kernel.predictive in
  let interleaves = [ 0; 13 ] in
  let sweep ~predictive =
    let t0 = Rma_util.Timer.now () in
    let predicted = ref 0 and observed = ref 0 in
    List.iter
      (fun (k : Scenario.Kernel.t) ->
        List.iter
          (fun interleave_seed ->
            let tool =
              Rma_analysis.Rma_analyzer.create ~nprocs:k.Scenario.Kernel.k_nprocs
                ~mode:Rma_analysis.Tool.Collect ~predictive
                Rma_analysis.Rma_analyzer.Contribution
            in
            let v = Runner.run_kernel ~interleave_seed ~tool k in
            List.iter
              (fun p ->
                if p.Runner.pair_predicted then incr predicted else incr observed)
              v.Runner.k_pairs)
          interleaves)
      kernels;
    (Rma_util.Timer.now () -. t0, !observed, !predicted)
  in
  (* The corpus is a ~30 ms workload, so one major GC slice inherited
     from an earlier experiment can double a single reading: warm up
     once, then take the best of three sweeps per mode. *)
  ignore (sweep ~predictive:false);
  ignore (sweep ~predictive:true);
  let best ~predictive =
    let runs = List.init 3 (fun _ -> sweep ~predictive) in
    List.fold_left
      (fun (bw, o, p) (w, o', p') -> if w < bw then (w, o', p') else (bw, o, p))
      (List.hd runs) (List.tl runs)
  in
  let obs_wall, obs_races, _ = best ~predictive:false in
  let prd_wall, prd_observed, prd_predicted = best ~predictive:true in
  let overhead = if obs_wall > 0.0 then prd_wall /. obs_wall else Float.nan in
  Printf.printf
    "%d kernels x %d interleaves: observed-only %d races in %.3f s; predictive %d observed + \
     %d predicted in %.3f s (overhead x%.2f)\n"
    (List.length kernels) (List.length interleaves) obs_races obs_wall prd_observed
    prd_predicted prd_wall overhead;
  [
    ("predictive_kernels", float_of_int (List.length kernels));
    ("predictive_observed_races", float_of_int prd_observed);
    ("predictive_predicted_races", float_of_int prd_predicted);
    ("predictive_observed_wall_seconds", obs_wall);
    ("predictive_wall_seconds", prd_wall);
    ("predictive_overhead_ratio", overhead);
  ]

(* Sustained-throughput soak of the serve daemon: a stream of seeded
   client sessions — most completing, some hanging up mid-stream —
   against a live daemon on an ephemeral loopback port. The headline
   numbers are sessions/sec over the whole soak and the p99 verdict
   latency, measured client-side from the moment the trace footer is
   sent to the summary line arriving. *)
let run_serve () =
  section "Serve daemon soak";
  let module Daemon = Rma_serve.Daemon in
  let module Codec = Rma_trace.Codec in
  let module Recorder = Rma_trace.Recorder in
  let module Kernel = Rma_microbench.Scenario.Kernel in
  let record name =
    let k = Option.get (Kernel.find name) in
    let r = Recorder.create () in
    let config = { Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 0.0 } in
    ignore
      (Mpi_sim.Runtime.run ~nprocs:k.Kernel.k_nprocs ~seed:42 ~config
         ~observer:(Recorder.observer r) k.Kernel.k_program);
    let events = Recorder.events r in
    ( k.Kernel.k_nprocs,
      (Codec.header :: List.map Codec.encode_event events) @ [ Codec.footer (List.length events) ]
    )
  in
  let racy = record "rrb_lockall_remote_conflict_put_put_race" in
  let clean = record "rrb_lockall_remote_disjoint_put_put_safe" in
  let write_all fd s =
    let len = String.length s in
    let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
    go 0
  in
  let read_to_eof fd =
    let b = Buffer.create 512 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 4096 with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes b chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
    in
    go ();
    Buffer.contents b
  in
  let daemon = Daemon.create ~config:{ Daemon.default_config with Daemon.max_sessions = 4 } () in
  Daemon.start daemon;
  let sessions = 40 in
  let latencies = ref [] in
  let completed = ref 0 and aborted = ref 0 in
  let t0 = Rma_util.Timer.now () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) (fun () ->
      for i = 1 to sessions do
        let nprocs, lines = if i mod 2 = 0 then racy else clean in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Daemon.port daemon));
        let hello =
          Printf.sprintf "{\"hello\":1,\"session\":\"soak-%d\",\"nprocs\":%d}" i nprocs
        in
        if i mod 5 = 0 then begin
          (* Churn: hang up mid-stream, footer never sent. *)
          let cut = List.filteri (fun j _ -> j < List.length lines / 2) lines in
          write_all fd (String.concat "\n" (hello :: cut) ^ "\n");
          Unix.close fd;
          incr aborted
        end
        else begin
          write_all fd (String.concat "\n" (hello :: lines) ^ "\n");
          let footer_sent = Rma_util.Timer.now () in
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
          let reply = read_to_eof fd in
          Unix.close fd;
          if
            String.split_on_char '\n' reply
            |> List.exists (fun l ->
                   Astring.String.is_infix ~affix:"\"type\":\"summary\"" l)
          then begin
            latencies := (Rma_util.Timer.now () -. footer_sent) :: !latencies;
            incr completed
          end
        end
      done);
  let wall = Rma_util.Timer.now () -. t0 in
  let stats = Daemon.stats daemon in
  let sorted = List.sort compare !latencies in
  let percentile p =
    match sorted with
    | [] -> Float.nan
    | _ ->
        let n = List.length sorted in
        List.nth sorted (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  let p50 = percentile 0.50 *. 1000.0 and p99 = percentile 0.99 *. 1000.0 in
  let sessions_per_sec = if wall > 0.0 then float_of_int !completed /. wall else 0.0 in
  Printf.printf
    "%d sessions (%d completed, %d aborted) in %.3f s — %.1f sessions/s; verdict latency p50 \
     %.2f ms, p99 %.2f ms\n"
    sessions !completed !aborted wall sessions_per_sec p50 p99;
  Printf.printf "daemon: %d admitted, %d disconnected, %d races streamed over %d events\n"
    stats.Daemon.admitted stats.Daemon.disconnected stats.Daemon.races_streamed
    stats.Daemon.events_ingested;
  [
    ("serve_sessions_per_sec", sessions_per_sec);
    ("serve_p50_verdict_latency_ms", p50);
    ("serve_p99_verdict_latency_ms", p99);
    ("serve_sessions_completed", float_of_int !completed);
    ("serve_sessions_aborted", float_of_int !aborted);
    ("serve_races_streamed", float_of_int stats.Daemon.races_streamed);
    ("serve_events_ingested", float_of_int stats.Daemon.events_ingested);
  ]

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let compare_mode ~threshold ~rss_threshold ~eps_threshold old_path new_path =
  let load path =
    match Perf_trajectory.load ~path with
    | Ok r -> r
    | Error msg ->
        Printf.eprintf "bench: cannot load %s: %s\n" path msg;
        exit 2
  in
  let old_record = load old_path and new_record = load new_path in
  let body, has_regressions =
    Perf_trajectory.render_comparison ?threshold ?rss_threshold ?eps_threshold ~old_record
      ~new_record ()
  in
  print_string body;
  exit (if has_regressions then 1 else 0)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = ref 0.1 in
  let ranks = ref None in
  let obs_out = ref None in
  let obs_summary = ref false in
  let obs_events = ref None in
  let obs_serve = ref None in
  let json_out = ref None in
  let generator = ref "bench" in
  let threshold = ref None in
  let rss_threshold = ref None in
  let eps_threshold = ref None in
  let compare_paths = ref None in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--ranks" :: v :: rest ->
        ranks := Some (List.map int_of_string (String.split_on_char ',' v));
        parse rest
    | "--obs-out" :: v :: rest ->
        obs_out := Some v;
        parse rest
    | "--obs-summary" :: rest ->
        obs_summary := true;
        parse rest
    | "--obs-events" :: v :: rest ->
        obs_events := Some v;
        parse rest
    | "--obs-level" :: v :: rest ->
        (match Rma_obs.Events.level_of_string v with
        | Some l -> Rma_obs.Events.set_level l
        | None ->
            Printf.eprintf "bench: bad --obs-level %S (debug|info|warn|error)\n" v;
            exit 2);
        parse rest
    | "--obs-serve" :: v :: rest ->
        obs_serve := Some (int_of_string v);
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | "--generator" :: v :: rest ->
        generator := v;
        parse rest
    | "--threshold" :: v :: rest ->
        threshold := Some (float_of_string v);
        parse rest
    | "--rss-threshold" :: v :: rest ->
        rss_threshold := Some (float_of_string v);
        parse rest
    | "--events-threshold" :: v :: rest ->
        eps_threshold := Some (float_of_string v);
        parse rest
    | "--compare" :: old_path :: new_path :: rest ->
        compare_paths := Some (old_path, new_path);
        parse rest
    | "--batch-inserts" :: rest ->
        Rma_store.Disjoint_store.set_batch_default true;
        parse rest
    | "--jobs" :: v :: rest ->
        Rma_par.set_default_jobs (int_of_string v);
        parse rest
    | "--fault-plan" :: v :: rest ->
        (match Rma_fault.Plan.of_spec v with
        | Ok plan -> Rma_fault.install plan
        | Error msg ->
            Printf.eprintf "bench: bad --fault-plan %S: %s\n" v msg;
            exit 2);
        parse rest
    | "--budget" :: v :: rest ->
        (match Rma_fault.Budget.of_spec v with
        | Ok budget -> Rma_fault.Budget.set_default (Some budget)
        | Error msg ->
            Printf.eprintf "bench: bad --budget %S: %s\n" v msg;
            exit 2);
        parse rest
    | arg :: rest ->
        selected := arg :: !selected;
        parse rest
  in
  parse args;
  (match !compare_paths with
  | Some (old_path, new_path) ->
      compare_mode ~threshold:!threshold ~rss_threshold:!rss_threshold
        ~eps_threshold:!eps_threshold old_path new_path
  | None -> ());
  let selected = if !selected = [] then [ "all" ] else List.rev !selected in
  let scale = !scale and ranks = !ranks in
  (* --json implies Obs: the record snapshots the counter registry. *)
  if !obs_out <> None || !obs_summary || !json_out <> None || !obs_events <> None
     || !obs_serve <> None
  then Rma_obs.Obs.enable ();
  Rma_obs.Events.configure_from_env ();
  (match !obs_events with
  | Some path -> Rma_obs.Events.set_sink path
  | None -> ());
  let server =
    match !obs_serve with
    | Some port ->
        let s = Rma_obs.Serve.start ~port in
        Printf.eprintf "obs: serving /metrics /healthz /events on 127.0.0.1:%d\n%!"
          (Rma_obs.Serve.port s);
        Some s
    | None -> None
  in
  let dispatch = function
    | "table2" -> run_table2 ()
    | "table3" -> run_table3 ()
    | "table4" -> run_table4 ~scale ~ranks ()
    | "fig5" -> run_fig5 ()
    | "fig8" -> run_fig8 ()
    | "fig9" -> run_fig9 ()
    | "fig10" -> run_fig10 ()
    | "fig11" -> run_fig11 ~scale ~ranks ()
    | "fig12" -> run_fig12 ~scale ~ranks ()
    | "ablation" -> run_ablation ()
    | "par" -> run_par ~scale ()
    | "fastpath" -> run_fastpath ()
    | "micro" -> run_micro ()
    | "hybrid" -> run_hybrid ()
    | "predictive" -> run_predictive ()
    | "serve" -> run_serve ()
    | "all" -> []
    | other ->
        Printf.eprintf
          "unknown experiment %S (expected table2 table3 table4 fig5 fig8 fig9 fig10 fig11 fig12 \
           ablation par fastpath micro hybrid predictive serve all)\n"
          other;
        exit 2
  in
  let all_names =
    [ "table2"; "table3"; "table4"; "fig5"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12";
      "ablation"; "par"; "fastpath"; "micro"; "hybrid"; "predictive"; "serve" ]
  in
  let selected = List.concat_map (function "all" -> all_names | n -> [ n ]) selected in
  (* Each experiment becomes a top-level phase span so a trace of the
     full sweep shows where the wall time went; the same span reading is
     the sample's wall_seconds, so the Chrome trace and the JSON record
     cannot disagree. *)
  let samples =
    List.map
      (fun name ->
        let events0 = Rma_obs.Telemetry.events_total () in
        let crit0 = Rma_par.critical_path_total () in
        let metrics, wall = Rma_obs.Obs.time_span ~cat:"phase" name (fun () -> dispatch name) in
        let events = Rma_obs.Telemetry.events_total () - events0 in
        let crit = Rma_par.critical_path_total () -. crit0 in
        Rma_obs.Telemetry.sample ();
        {
          Perf_trajectory.name;
          wall_seconds = wall;
          peak_rss_bytes = float_of_int (Rma_obs.Telemetry.peak_rss_bytes ());
          events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
          critical_path_ms = crit *. 1000.0;
          metrics;
        })
      selected
  in
  (match !json_out with
  | Some path ->
      Perf_trajectory.write ~path (Perf_trajectory.make ~generator:!generator ~scale samples);
      Printf.eprintf "bench: wrote perf-trajectory record to %s\n%!" path
  | None -> ignore samples);
  (match !obs_out with
  | Some path ->
      Rma_obs.Chrome_trace.write ~path ();
      Printf.eprintf "obs: wrote Chrome trace to %s\n%!" path
  | None -> ());
  if !obs_summary then print_string (Rma_obs.Summary.to_string ());
  (match server with Some s -> Rma_obs.Serve.stop s | None -> ());
  Rma_obs.Events.close ()
