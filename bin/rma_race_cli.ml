(* Command-line front end: run any bundled workload under any detector,
   score the microbenchmark suite, or regenerate a paper experiment.

     rma_race suite --tool contribution
     rma_race code ll_get_load_inwindow_origin_race
     rma_race minivite --ranks 32 --vertices 64000 --tool must --inject
     rma_race cfd --ranks 12 --iterations 50 --tool legacy
     rma_race experiment table3
     rma_race minivite --inject --races-json races.json --races-sarif races.sarif
     rma_race explain 1 --from races.json
*)

open Cmdliner
open Rma_analysis

(* --- diagnostics flags (observability + race exports), shared by
   every subcommand; the semantics live in Rma_report.Diag so the
   examples and the bench driver thread the same knobs --- *)

module Diag = Rma_report.Diag

let wants_races = Diag.wants_races

let diag_term =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:
            "Record metrics and spans during the run and write a Chrome trace_event JSON file to \
             $(docv) (open in Perfetto or chrome://tracing).")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "obs-summary" ]
          ~doc:"Print a metrics summary (latency percentiles, counters, span categories) after the run.")
  in
  let prometheus =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-prometheus" ] ~docv:"FILE"
          ~doc:"Write metrics in Prometheus text exposition format to $(docv).")
  in
  let sample =
    Arg.(
      value & opt int 1
      & info [ "obs-sample" ] ~docv:"N"
          ~doc:"Record one span out of every $(docv) (1 keeps all; metrics are never sampled).")
  in
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-events" ] ~docv:"FILE"
          ~doc:
            "Write the structured event journal (epoch opens/closes, shard crashes and \
             recoveries, budget degradations, codec errors) as JSON lines to $(docv). Same as \
             setting $(b,RMA_OBS_EVENTS).")
  in
  let level =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-level" ] ~docv:"LEVEL"
          ~doc:
            "Minimum event-journal level: debug, info, warn or error (default info; debug admits \
             per-epoch events). Same as setting $(b,RMA_OBS_LEVEL).")
  in
  let serve =
    Arg.(
      value
      & opt (some int) None
      & info [ "obs-serve" ] ~docv:"PORT"
          ~doc:
            "Serve $(b,/metrics) (Prometheus text), $(b,/healthz) and $(b,/events) on \
             127.0.0.1:$(docv) from a background domain for the duration of the run (0 picks an \
             ephemeral port).")
  in
  let races_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "races-json" ] ~docv:"FILE"
          ~doc:
            "Write the race reports of the run as schema-versioned JSON to $(docv) (full \
             provenance: epoch, vector clock, flight-recorder history of both sides; readable \
             back with $(b,rma_race explain)). Enables the flight recorder.")
  in
  let races_sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "races-sarif" ] ~docv:"FILE"
          ~doc:
            "Write the race reports of the run as SARIF 2.1.0 to $(docv), one result per race \
             with every contributing source location. Enables the flight recorder.")
  in
  let batch_inserts =
    Arg.(
      value & flag
      & info [ "batch-inserts" ]
          ~doc:
            "Open the disjoint store's coalescing write buffer: runs of adjacent same-kind \
             accesses are pre-merged in O(1) before touching the interval tree (flushed at every \
             epoch close and race check, so verdicts are unchanged). Same as setting \
             $(b,RMA_BATCH_INSERTS=1).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the analyzer's (rank, window) interval trees over $(docv) worker domains \
             (sharded parallel engine; verdicts, reports and exports are byte-identical to the \
             sequential analyzer). 1 = sequential. Same as setting $(b,RMA_JOBS). Baseline and \
             MUST ignore it.")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"SPEC"
          ~doc:
            "Install a deterministic fault-injection plan for the run, e.g. \
             $(b,seed=42,worker_crash=0.05,queue_overflow=0.02). Sites: trace_corrupt, \
             trace_truncate, worker_crash, queue_overflow; worker crashes are recovered by \
             replaying the shard journal at the next epoch barrier. Same as setting \
             $(b,RMA_FAULT).")
  in
  let budget =
    Arg.(
      value
      & opt (some string) None
      & info [ "budget" ] ~docv:"SPEC"
          ~doc:
            "Bound every interval store, e.g. $(b,nodes=4096,policy=spill) or the shorthand \
             $(b,4096:spill). Policies: fail (raise on overflow), spill (drop oldest completed \
             epoch, counted in degraded_drops), coarsen (merge ignoring debug info, downgraded \
             confidence in SARIF). Same as setting $(b,RMA_BUDGET).")
  in
  let predictive =
    Arg.(
      value & flag
      & info [ "predictive" ]
          ~doc:
            "Run the predictive (weak-order) analysis alongside the observed one: accesses \
             unordered under MPI synchronization semantics alone — no fence or fully flushed \
             barrier between them — are reported as schedulable races ($(b,predicted) in the \
             JSON/SARIF exports, with a witness reordering rendered by $(b,explain)), even when \
             the observed schedule kept them apart. Same as setting $(b,RMA_PREDICTIVE=1).")
  in
  let mk obs_out obs_summary obs_prometheus obs_events obs_level obs_serve obs_sample races_json
      races_sarif batch_inserts jobs fault_plan budget predictive =
    {
      Diag.obs_out;
      obs_summary;
      obs_prometheus;
      obs_events;
      obs_level;
      obs_serve;
      obs_sample;
      races_json;
      races_sarif;
      batch_inserts;
      jobs;
      fault_plan;
      budget;
      predictive;
    }
  in
  Term.(
    const mk $ out $ summary $ prometheus $ events $ level $ serve $ sample $ races_json
    $ races_sarif $ batch_inserts $ jobs $ fault_plan $ budget $ predictive)

let generator = "rma_race"

let with_diag ?workload opts f = Diag.with_diag ~prog:"rma_race" ~generator ?workload opts f

let tool_enum = List.map (fun k -> (Toolbox.slug k, k)) Toolbox.all

let make_tool choice ~nprocs ~config = Toolbox.make choice ~nprocs ~config ()

let tool_arg =
  Arg.(
    value
    & opt (enum tool_enum) Toolbox.Contribution
    & info [ "tool"; "t" ] ~docv:"TOOL" ~doc:"Detector: $(docv) is one of baseline, legacy, must, contribution, frag-only, order-blind, strided.")

let ranks_arg default =
  Arg.(value & opt int default & info [ "ranks"; "n" ] ~docv:"N" ~doc:"Number of simulated MPI ranks.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let base_config = { Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 2.0 }

(* Read at tool-creation time, after [with_diag] applied [--jobs]: a
   parallel analyzer times itself (critical-path model at epoch
   barriers), so inline wall-time charging must be off. *)
let config () =
  if Rma_par.default_jobs () > 1 then
    { base_config with Mpi_sim.Config.analysis_self_timed = true }
  else base_config

let print_tool_outcome tool =
  let total = tool.Tool.race_count () in
  let dropped = Tool.dropped_races tool in
  if dropped > 0 then
    Printf.printf "reports: %d (%d stored, %d dropped past the report cap)\n" total
      (Tool.stored_races tool) dropped
  else Printf.printf "reports: %d\n" total;
  List.iteri
    (fun i r -> if i < 5 then Printf.printf "  %s\n" (Report.to_message r))
    (tool.Tool.races ());
  let b = tool.Tool.bst_summary () in
  if b.Tool.inserts_total > 0 then begin
    Printf.printf "BST: %d trees, %d nodes final, %d peak, %d inserts, %d merges\n" b.Tool.stores
      b.Tool.nodes_final_total b.Tool.nodes_peak_total b.Tool.inserts_total b.Tool.merges_total;
    if b.Tool.degraded_drops_total > 0 then
      Printf.printf
        "DEGRADED: budget governance dropped/coarsened %d nodes — detection was best-effort\n"
        b.Tool.degraded_drops_total
  end

(* --- suite --- *)

let suite_cmd =
  let run obs tool_choice =
    with_diag obs @@ fun () ->
    let config = config () in
    let tool = make_tool tool_choice ~nprocs:3 ~config in
    match tool_choice with
    | Toolbox.Baseline ->
        print_endline "the baseline detects nothing; pick a real tool";
        []
    | _ ->
        let c = Rma_microbench.Runner.score ~tool Rma_microbench.Scenario.all in
        Printf.printf "suite: %d codes — FP=%d FN=%d TP=%d TN=%d%s\n"
          Rma_microbench.Scenario.count_total c.Rma_microbench.Runner.fp
          c.Rma_microbench.Runner.fn c.Rma_microbench.Runner.tp c.Rma_microbench.Runner.tn
          (if c.Rma_microbench.Runner.dropped > 0 then
             Printf.sprintf " (%d reports dropped)" c.Rma_microbench.Runner.dropped
           else "");
        (* [score] resets the tool per scenario, so exporting the suite's
           races means replaying it collecting each verdict's reports. *)
        if wants_races obs then
          List.concat_map
            (fun sc -> (Rma_microbench.Runner.run ~tool sc).Rma_microbench.Runner.reports)
            Rma_microbench.Scenario.all
        else []
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Score a detector on the 154-code microbenchmark suite (Table 3).")
    Term.(const run $ diag_term $ tool_arg)

(* --- code --- *)

let code_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CODE" ~doc:"Microbenchmark name.")
  in
  let run obs tool_choice name =
    with_diag ~workload:("code", [ ("tool", Toolbox.slug tool_choice); ("code", name) ]) obs
    @@ fun () ->
    match Rma_microbench.Scenario.find name with
    | None ->
        Printf.eprintf "unknown code %S\n" name;
        exit 2
    | Some s ->
        let config = config () in
        let tool = make_tool tool_choice ~nprocs:3 ~config in
        let v = Rma_microbench.Runner.run ~tool s in
        Printf.printf "%s: ground truth %s; %s says %s [%s]\n" name
          (if s.Rma_microbench.Scenario.racy then "RACE" else "safe")
          tool.Tool.name
          (if v.Rma_microbench.Runner.flagged then "error detected" else "no error")
          (Rma_microbench.Runner.outcome_name (Rma_microbench.Runner.classify v));
        List.iter (fun r -> print_endline ("  " ^ Report.to_message r)) v.Rma_microbench.Runner.reports;
        v.Rma_microbench.Runner.reports
  in
  Cmd.v
    (Cmd.info "code" ~doc:"Run one microbenchmark code under a detector.")
    Term.(const run $ diag_term $ tool_arg $ name_arg)


(* --- kernel --- *)

let interleave_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "interleave-seed" ] ~docv:"SEED"
        ~doc:
          "Decouple the scheduler's fiber-interleaving choices from the data-level seed. \
           Defaults to $(b,RMA_INTERLEAVE_SEED) when set; otherwise scheduling draws from \
           $(b,--seed) exactly as before.")

let kernel_cmd =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name (rrb_* or hyb_*).")
  in
  let run obs tool_choice name seed interleave_seed =
    with_diag ~workload:("kernel", [ ("tool", Toolbox.slug tool_choice); ("kernel", name) ]) obs
    @@ fun () ->
    match Rma_microbench.Scenario.Kernel.find name with
    | None ->
        Printf.eprintf "unknown kernel %S\n" name;
        exit 2
    | Some k ->
        let config = config () in
        let tool = make_tool tool_choice ~nprocs:k.Rma_microbench.Scenario.Kernel.k_nprocs ~config in
        let v = Rma_microbench.Runner.run_kernel ~seed ?interleave_seed ~tool k in
        Printf.printf "%s: ground truth %s; %s says %s\n" name
          (if k.Rma_microbench.Scenario.Kernel.k_racy then "RACE" else "safe")
          tool.Tool.name
          (if v.Rma_microbench.Runner.k_flagged then "error detected" else "no error");
        List.iter
          (fun r -> print_endline ("  " ^ Report.to_message r))
          v.Rma_microbench.Runner.k_reports;
        v.Rma_microbench.Runner.k_reports
  in
  Cmd.v
    (Cmd.info "kernel"
       ~doc:
         "Run one RMARaceBench-shaped kernel (including the hybrid MPI+threads hyb_* family) \
          under a detector, optionally with an explicit thread/rank interleaving seed.")
    Term.(const run $ diag_term $ tool_arg $ name_arg $ seed_arg $ interleave_seed_arg)

(* --- minivite --- *)

let minivite_cmd =
  let vertices_arg =
    Arg.(value & opt int 64_000 & info [ "vertices" ] ~docv:"V" ~doc:"Graph size.")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject" ] ~doc:"Duplicate one MPI_Put (the Figure 9 fault).")
  in
  let run obs tool_choice nprocs seed vertices inject =
    with_diag
      ~workload:
        ( "minivite",
          [
            ("tool", Toolbox.slug tool_choice);
            ("ranks", string_of_int nprocs);
            ("seed", string_of_int seed);
            ("vertices", string_of_int vertices);
            ("inject", string_of_bool inject);
          ] )
      obs
    @@ fun () ->
    let config = config () in
    let params =
      {
        Minivite.Louvain.default_params with
        Minivite.Louvain.graph =
          { Minivite.Graph.default_params with Minivite.Graph.n_vertices = vertices };
        inject_race = inject;
      }
    in
    let tool = make_tool tool_choice ~nprocs ~config in
    let observer = match tool_choice with Toolbox.Baseline -> None | _ -> Some tool.Tool.observer in
    let result, summary = Minivite.Louvain.run params ~nprocs ~seed ~config ?observer () in
    Printf.printf
      "minivite: %d vertices, %d ranks — modularity %.3f, %d communities, %d gets, %d puts\n"
      vertices nprocs summary.Minivite.Louvain.modularity summary.Minivite.Louvain.communities
      summary.Minivite.Louvain.ghost_fetches summary.Minivite.Louvain.update_puts;
    Printf.printf "simulated time: %.1f ms; wall: %.2f s\n"
      (result.Mpi_sim.Runtime.makespan *. 1000.0)
      result.Mpi_sim.Runtime.wall_seconds;
    print_tool_outcome tool;
    tool.Tool.races ()
  in
  Cmd.v
    (Cmd.info "minivite" ~doc:"Run the MiniVite-like Louvain phase under a detector.")
    Term.(const run $ diag_term $ tool_arg $ ranks_arg 32 $ seed_arg $ vertices_arg $ inject_arg)

(* --- cfd --- *)

let cfd_cmd =
  let iterations_arg =
    Arg.(value & opt int 50 & info [ "iterations" ] ~docv:"I" ~doc:"Halo-exchange iterations.")
  in
  let cells_arg =
    Arg.(value & opt int 432 & info [ "cells" ] ~docv:"C" ~doc:"Cells per halo chunk.")
  in
  let run obs tool_choice nprocs seed iterations cells =
    with_diag
      ~workload:
        ( "cfd",
          [
            ("tool", Toolbox.slug tool_choice);
            ("ranks", string_of_int nprocs);
            ("seed", string_of_int seed);
            ("iterations", string_of_int iterations);
            ("cells", string_of_int cells);
          ] )
      obs
    @@ fun () ->
    let config = config () in
    let params =
      { Cfd_proxy.Halo.default_params with Cfd_proxy.Halo.iterations; cells_per_chunk = cells }
    in
    let tool = make_tool tool_choice ~nprocs ~config in
    let observer = match tool_choice with Toolbox.Baseline -> None | _ -> Some tool.Tool.observer in
    let result, summary = Cfd_proxy.Halo.run params ~nprocs ~seed ~config ?observer () in
    Printf.printf "cfd-proxy: %d ranks, %d iterations — checksum %.6g, %d puts\n" nprocs iterations
      summary.Cfd_proxy.Halo.checksum summary.Cfd_proxy.Halo.halo_puts;
    Printf.printf "epoch time (mean per rank): %.3f s; wall: %.2f s\n"
      (Array.fold_left ( +. ) 0.0 result.Mpi_sim.Runtime.epoch_times /. float_of_int nprocs)
      result.Mpi_sim.Runtime.wall_seconds;
    print_tool_outcome tool;
    tool.Tool.races ()
  in
  Cmd.v
    (Cmd.info "cfd" ~doc:"Run the CFD-Proxy-like halo exchange under a detector.")
    Term.(const run $ diag_term $ tool_arg $ ranks_arg 12 $ seed_arg $ iterations_arg $ cells_arg)

(* --- experiment --- *)

let experiment_cmd =
  let which_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:"table2, table3, table4, fig5, fig8, fig9, fig10, fig11, fig12, ablation or par.")
  in
  let scale_arg =
    Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S" ~doc:"MiniVite input scale factor.")
  in
  let run obs which scale =
    with_diag obs @@ fun () ->
    let open Rma_report in
    (match which with
    | "table2" -> print_string (snd (Experiments.table2 ()))
    | "table3" -> print_string (snd (Experiments.table3 ()))
    | "table4" -> print_string (snd (Experiments.table4 ~scale ()))
    | "fig5" -> print_string (Experiments.fig5 ())
    | "fig8" -> print_string (snd (Experiments.fig8 ()))
    | "fig9" -> print_string (Experiments.fig9 ())
    | "fig10" -> print_string (snd (Experiments.fig10 ()))
    | "fig11" -> print_string (snd (Experiments.fig11 ~scale ()))
    | "fig12" -> print_string (snd (Experiments.fig12 ~scale ()))
    | "ablation" -> print_string (snd (Experiments.ablation ()))
    | "par" -> print_string (snd (Experiments.par ~scale ()))
    | other ->
        Printf.eprintf "unknown experiment %S\n" other;
        exit 2);
    []
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's tables or figures.")
    Term.(const run $ diag_term $ which_arg $ scale_arg)

(* --- bfs --- *)

let bfs_cmd =
  let vertices_arg =
    Arg.(value & opt int 20_000 & info [ "vertices" ] ~docv:"V" ~doc:"Graph size.")
  in
  let run obs tool_choice nprocs seed vertices =
    with_diag
      ~workload:
        ( "bfs",
          [
            ("tool", Toolbox.slug tool_choice);
            ("ranks", string_of_int nprocs);
            ("seed", string_of_int seed);
            ("vertices", string_of_int vertices);
          ] )
      obs
    @@ fun () ->
    let config = config () in
    let params =
      {
        Graph500.Bfs.default_params with
        Graph500.Bfs.graph =
          { Minivite.Graph.default_params with Minivite.Graph.n_vertices = vertices };
      }
    in
    let tool = make_tool tool_choice ~nprocs ~config in
    let observer = match tool_choice with Toolbox.Baseline -> None | _ -> Some tool.Tool.observer in
    let result, summary = Graph500.Bfs.run params ~nprocs ~seed ~config ?observer () in
    Printf.printf
      "bfs: %d vertices, %d ranks — reached %d in %d levels, checksum %Ld, %d overflow retries\n"
      vertices nprocs summary.Graph500.Bfs.reached summary.Graph500.Bfs.levels
      summary.Graph500.Bfs.parent_checksum summary.Graph500.Bfs.inbox_overflows;
    Printf.printf "simulated time: %.1f ms; wall: %.2f s\n"
      (result.Mpi_sim.Runtime.makespan *. 1000.0)
      result.Mpi_sim.Runtime.wall_seconds;
    print_tool_outcome tool;
    tool.Tool.races ()
  in
  Cmd.v
    (Cmd.info "bfs" ~doc:"Run the Graph500-style fence-synchronised BFS under a detector.")
    Term.(const run $ diag_term $ tool_arg $ ranks_arg 16 $ seed_arg $ vertices_arg)

(* --- export --- *)

let export_cmd =
  let dir_arg =
    Arg.(value & opt string "results" & info [ "dir"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let experiments_arg =
    Arg.(
      value
      & opt (list string) [ "table2"; "table3"; "ablation"; "suite" ]
      & info [ "experiments"; "e" ] ~docv:"LIST"
          ~doc:"Comma-separated experiments to export (table2..fig12, ablation, suite).")
  in
  let scale_arg =
    Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S" ~doc:"MiniVite input scale factor.")
  in
  let run obs dir experiments scale =
    with_diag obs @@ fun () ->
    Rma_report.Experiments.export ~dir ~scale experiments;
    Printf.printf "exported %s to %s/\n" (String.concat ", " experiments) dir;
    []
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export experiment data as CSV (and the suite as C sources).")
    Term.(const run $ diag_term $ dir_arg $ experiments_arg $ scale_arg)

(* --- record / analyze: the offline post-mortem pair --- *)

module Recorder = Rma_trace.Recorder

let trace_out_arg =
  Arg.(
    value & opt string "trace.rma"
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace file to write (Codec format 2).")

let record_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Microbenchmark code or kernel name (rrb_*/hyb_*).")
  in
  let run obs name out seed interleave_seed =
    with_diag ~workload:("record", [ ("workload", name); ("out", out) ]) obs @@ fun () ->
    let nprocs, program =
      match Rma_microbench.Scenario.find name with
      | Some s -> (3, Rma_microbench.Runner.program s)
      | None -> (
          match Rma_microbench.Scenario.Kernel.find name with
          | Some k ->
              (k.Rma_microbench.Scenario.Kernel.k_nprocs, k.Rma_microbench.Scenario.Kernel.k_program)
          | None ->
              Printf.eprintf "record: unknown workload %S (neither a code nor a kernel)\n" name;
              exit 2)
    in
    (* Mirror Runner.run/run_kernel: zero observer cost, so the trace is
       schedule-identical to what the in-process detectors saw. *)
    let config = { Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 0.0 } in
    let interleave_seed =
      match interleave_seed with
      | Some _ as s -> s
      | None -> Mpi_sim.Runtime.default_interleave_seed ()
    in
    let r = Recorder.create () in
    ignore
      (Mpi_sim.Runtime.run ~nprocs ~seed ?interleave_seed ~config ~observer:(Recorder.observer r)
         program);
    Recorder.save r ~path:out;
    Printf.printf "recorded %d events (%d ranks) to %s\n" (Recorder.length r) nprocs out;
    []
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a microbenchmark code or kernel with the trace recorder attached (no detector) and \
          write the event stream to a Codec format-2 trace file — the input of $(b,analyze) and \
          of a $(b,serve) session.")
    Term.(const run $ diag_term $ name_arg $ trace_out_arg $ seed_arg $ interleave_seed_arg)

let analyze_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (written by $(b,record) or Recorder.save).")
  in
  let ranks_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ranks"; "n" ] ~docv:"N"
          ~doc:"Simulated rank count; defaults to the highest rank the trace mentions, plus one.")
  in
  let renumber reports =
    List.mapi
      (fun i r -> { r with Report.provenance = { r.Report.provenance with Report.id = i + 1 } })
      reports
  in
  let run obs tool_choice file ranks =
    with_diag ~workload:("analyze", [ ("tool", Toolbox.slug tool_choice); ("trace", file) ]) obs
    @@ fun () ->
    match Recorder.load ~path:file with
    | Error msg ->
        Printf.eprintf "analyze: cannot read %s: %s\n" file msg;
        exit 2
    | Ok events ->
        let nprocs =
          match ranks with Some n -> n | None -> Rma_trace.Post_mortem.nprocs_of events
        in
        (* Default config, not [config ()]: replay charges no observer
           cost, and the serve daemon builds its per-session tools the
           same way — the byte-identical-verdict contract hangs on it. *)
        let tool = Toolbox.make tool_choice ~nprocs () in
        let reports = renumber (Recorder.replay events ~tool) in
        Printf.printf "%s: %d events, %d ranks — %s\n" file (List.length events) nprocs
          (match List.length reports with
          | 0 -> "no race"
          | 1 -> "1 race"
          | n -> Printf.sprintf "%d races" n);
        List.iter (fun r -> print_endline ("  " ^ Report.to_message r)) reports;
        let b = tool.Tool.bst_summary () in
        if b.Tool.degraded_drops_total > 0 then
          Printf.printf "degraded_drops: %d\n" b.Tool.degraded_drops_total;
        Printf.printf "digest: %s\n" (Rma_report.Race_export.verdict_digest reports);
        reports
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Replay a recorded trace file through a detector offline and print its verdicts and \
          their digest. A $(b,serve) session fed the same trace streams field-identical race \
          objects and the same digest — the offline reference the churn test pins.")
    Term.(const run $ diag_term $ tool_arg $ file_arg $ ranks_opt_arg)

(* --- serve: the always-on analysis daemon --- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:
            "Listen on loopback TCP $(docv); 0 binds an ephemeral port, printed as \
             $(b,serve-port: N) on stderr for scripted callers. Default when $(b,--socket) is \
             not given.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) instead of TCP (unlinked first).")
  in
  let max_sessions_arg =
    Arg.(
      value & opt int 8
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Sessions allowed to stream concurrently; further handshakes wait in the queue.")
  in
  let accept_queue_arg =
    Arg.(
      value & opt int 16
      & info [ "accept-queue" ] ~docv:"N"
          ~doc:
            "Handshaken sessions allowed to wait for a streaming slot; beyond it connections are \
             answered with a $(b,load_shed) line and closed.")
  in
  let run obs port socket max_sessions accept_queue =
    with_diag ~workload:("serve", []) obs @@ fun () ->
    let module D = Rma_serve.Daemon in
    let addr =
      match (socket, port) with
      | Some path, _ -> D.Unix_path path
      | None, Some p -> D.Tcp p
      | None, None -> D.Tcp 0
    in
    let daemon = D.create ~config:{ D.addr; max_sessions; accept_queue } () in
    let stop _ = D.request_stop daemon in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    (match D.address daemon with
    | D.Tcp p -> Printf.printf "serving on 127.0.0.1:%d (max %d sessions, queue %d)\n%!" p max_sessions accept_queue
    | D.Unix_path path ->
        Printf.printf "serving on %s (max %d sessions, queue %d)\n%!" path max_sessions accept_queue);
    D.run daemon;
    let s = D.stats daemon in
    Printf.printf
      "serve: %d accepted, %d admitted, %d completed, %d shed, %d disconnected, %d failed — %d \
       races streamed over %d events\n"
      s.D.accepted s.D.admitted s.D.completed s.D.shed s.D.disconnected s.D.failed
      s.D.races_streamed s.D.events_ingested;
    []
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the always-on analysis daemon: accept concurrent trace sessions over TCP or a \
          Unix-domain socket (one handshake line, then a Codec stream each), analyse them \
          incrementally under per-session budgets and fault plans, and stream race verdicts back \
          as JSON lines. SIGINT/SIGTERM drain and stop it. Wire protocol and operations guide: \
          OPERATIONS.md.")
    Term.(
      const run $ diag_term $ port_arg $ socket_arg $ max_sessions_arg $ accept_queue_arg)

(* --- obs: journal analytics and crash replay --- *)

module Journal = Rma_obs.Journal
module Replay = Rma_report.Replay

let journal_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"JOURNAL"
        ~doc:"Event-journal JSON-lines file (written by $(b,--obs-events) / $(b,RMA_OBS_EVENTS)).")

(* Reading is total: a truncated or bit-flipped journal yields its
   decodable prefix plus an error naming the first bad line. The prefix
   is still served (with the cut point on stderr); only a journal with
   no readable events at all is a hard error. *)
let read_journal path =
  let r = Journal.read_file path in
  (match r.Journal.error with
  | Some e when r.Journal.events = [] ->
      Printf.eprintf "obs: cannot read %s: %s\n" path (Journal.error_to_string e);
      exit 2
  | Some e ->
      Printf.eprintf "obs: %s: %s — analysing the %d events before it\n" path
        (Journal.error_to_string e)
        (List.length r.Journal.events)
  | None -> ());
  r

let obs_query_cmd =
  let component_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "component"; "c" ] ~docv:"NAME"
          ~doc:"Keep only events from this component (analyzer, par, governor, diag, codec...).")
  in
  let level_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "level"; "l" ] ~docv:"LEVEL"
          ~doc:"Keep only events at or above $(docv): debug, info, warn or error.")
  in
  let shard_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard" ] ~docv:"N" ~doc:"Keep only events of shard $(docv) (-1 = main thread).")
  in
  let run_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run" ] ~docv:"RUN-ID" ~doc:"Keep only events of this run id.")
  in
  let since_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "since" ] ~docv:"SECONDS" ~doc:"Keep only events with ts >= $(docv).")
  in
  let until_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "until" ] ~docv:"SECONDS" ~doc:"Keep only events with ts <= $(docv).")
  in
  let run path component level shard run_id since until =
    let f_min_level =
      Option.map
        (fun s ->
          match Rma_obs.Events.level_of_string s with
          | Some l -> l
          | None ->
              Printf.eprintf "obs query: bad --level %S: expected debug, info, warn or error\n" s;
              exit 124)
        level
    in
    let filter =
      {
        Journal.f_component = component;
        f_min_level;
        f_shard = shard;
        f_run_id = run_id;
        f_since = since;
        f_until = until;
      }
    in
    let r = read_journal path in
    List.iter
      (fun ev -> print_endline (Rma_obs.Events.line ev))
      (Journal.filter_events filter r.Journal.events)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Filter a journal by component, level, shard, run id and time window; matching events \
          are reprinted as JSON lines (pipe into jq or back into $(b,obs stats)).")
    Term.(
      const run $ journal_arg $ component_arg $ level_arg $ shard_arg $ run_arg $ since_arg
      $ until_arg)

let obs_stats_cmd =
  let run path =
    let r = read_journal path in
    print_string
      (Journal.render_stats ~source:path ?error:r.Journal.error (Journal.stats_of r.Journal.events))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Aggregate a journal: event counts by component/level/shard, epoch-duration percentiles \
          (p50/p95/p99) overall and per rank, fault and degradation counts, the critical-path \
          total, and an events-per-second timeline.")
    Term.(const run $ journal_arg)

let obs_replay_cmd =
  let dry_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ] ~doc:"Print what would be replayed without re-running anything.")
  in
  let run path dry =
    let r = read_journal path in
    match Replay.extract r.Journal.events with
    | Error msg ->
        Printf.eprintf "obs replay: %s\n" msg;
        exit 2
    | Ok plan ->
        if dry then print_string (Replay.describe plan)
        else (
          match Replay.run plan with
          | Error msg ->
              Printf.eprintf "obs replay: %s\n" msg;
              exit 2
          | Ok outcome ->
              print_string (Replay.render plan outcome);
              if not (Replay.verdict plan outcome) then exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run the drill a journal records — same workload, parameters, shard count, fault \
          plan and budget — and check the re-run crashes at the identical (site, ordinal, seed) \
          coordinates and produces byte-identical verdicts. Exit 1 on mismatch.")
    Term.(const run $ journal_arg $ dry_arg)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "Post-mortem analytics over the structured event journal: query (filter), stats \
          (aggregate) and replay (deterministically re-run a crashed drill).")
    [ obs_query_cmd; obs_stats_cmd; obs_replay_cmd ]

(* --- explain --- *)

let explain_cmd =
  let id_arg =
    Arg.(
      value & pos 0 int 1
      & info [] ~docv:"RACE-ID"
          ~doc:"Race id as printed in the export (JSON $(b,id) field / SARIF $(b,raceId)).")
  in
  let from_arg =
    Arg.(
      value & opt string "races.json"
      & info [ "from"; "f" ] ~docv:"FILE"
          ~doc:"JSON race export to read (written by $(b,--races-json)).")
  in
  let journal_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Correlate the race with the event journal of the run that produced it: prints the \
             journal events sharing the export's run id (crashes, recoveries, degradations) \
             after the timeline. Requires a v2 export (written with diagnostics on).")
  in
  (* The export's run_id header is the correlation key; a v1 export (or
     a run without diagnostics) has none, so the journal cannot be tied
     to it and saying so beats guessing. *)
  let print_correlated ~path ~journal run_id =
    match run_id with
    | None ->
        Printf.eprintf
          "explain: %s carries no run_id (v1 export or run without diagnostics); cannot \
           correlate with %s\n"
          path journal
    | Some rid ->
        let r = read_journal journal in
        let events =
          Journal.filter_events { Journal.no_filter with Journal.f_run_id = Some rid }
            r.Journal.events
        in
        Printf.printf "\nJournal events of run %s (%d):\n" rid (List.length events);
        List.iter (fun ev -> print_endline ("  " ^ Rma_obs.Events.line ev)) events;
        if events = [] then
          Printf.eprintf "explain: %s has no events for run %s (different run?)\n" journal rid
  in
  let run id path journal =
    match Rma_report.Race_export.load_json_with_run_id ~path with
    | Error msg ->
        Printf.eprintf "explain: cannot read %s: %s\n" path msg;
        exit 2
    | Ok (reports, run_id) -> (
        match Rma_report.Race_export.find_race ~id reports with
        | None ->
            Printf.eprintf "explain: no race with id %d in %s (%d reports; ids run from 1)\n" id
              path (List.length reports);
            exit 2
        | Some r ->
            print_string (Rma_report.Race_export.explain r);
            Option.iter (fun j -> print_correlated ~path ~journal:j run_id) journal)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Render one exported race as a full timeline: the epoch it fired in, the Figure 3 \
          matrix cell, both surviving accesses and the flight-recorder history of every source \
          access merged into each side.")
    Term.(const run $ id_arg $ from_arg $ journal_flag)

let () =
  let doc = "Data race detection for MPI-RMA programs (SC-W 2023 reproduction)" in
  let info = Cmd.info "rma_race" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            suite_cmd;
            code_cmd;
            kernel_cmd;
            minivite_cmd;
            cfd_cmd;
            bfs_cmd;
            experiment_cmd;
            export_cmd;
            record_cmd;
            analyze_cmd;
            serve_cmd;
            obs_cmd;
            explain_cmd;
          ]))
