#!/usr/bin/env bash
# End-to-end smoke of the always-on analysis daemon — the exact
# transcript TUTORIAL.md section 7 walks through, kept runnable so CI
# replays it verbatim (the serve-smoke job):
#
#   1. record a racy and a clean kernel trace offline,
#   2. analyze both offline and keep their verdict digests,
#   3. boot `rma_race serve` on an ephemeral port with the event
#      journal and the /metrics endpoint on,
#   4. run two client sessions (racy, clean) plus one that hangs up
#      mid-stream, scraping /metrics while the daemon is live,
#   5. assert the streamed digests byte-equal the offline ones, and
#   6. shut the daemon down cleanly and check the journal saw it all.
#
# Usage: scripts/serve_smoke.sh [workdir]
#   DUNE="opam exec -- dune" scripts/serve_smoke.sh   # under opam (CI)

set -euo pipefail

DUNE=${DUNE:-dune}
WORK=${1:-$(mktemp -d)}
mkdir -p "$WORK"
echo "serve_smoke: working in $WORK"

RACY_KERNEL=rrb_lockall_remote_conflict_put_put_race
CLEAN_KERNEL=rrb_lockall_remote_disjoint_put_put_safe

# --- 1+2: offline reference ------------------------------------------------
$DUNE exec bin/rma_race_cli.exe -- record "$RACY_KERNEL" --out "$WORK/racy.rma"
$DUNE exec bin/rma_race_cli.exe -- record "$CLEAN_KERNEL" --out "$WORK/clean.rma"
$DUNE exec bin/rma_race_cli.exe -- analyze "$WORK/racy.rma" | tee "$WORK/racy.offline.txt"
$DUNE exec bin/rma_race_cli.exe -- analyze "$WORK/clean.rma" | tee "$WORK/clean.offline.txt"
RACY_DIGEST=$(sed -n 's/^digest: //p' "$WORK/racy.offline.txt")
CLEAN_DIGEST=$(sed -n 's/^digest: //p' "$WORK/clean.offline.txt")
test -n "$RACY_DIGEST" && test -n "$CLEAN_DIGEST"

# --- 3: boot the daemon -----------------------------------------------------
$DUNE exec bin/rma_race_cli.exe -- serve --port 0 --max-sessions 4 \
  --obs-events "$WORK/serve-events.jsonl" --obs-serve 0 \
  >"$WORK/serve-stdout.log" 2>"$WORK/serve-stderr.log" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 150); do
  PORT=$(sed -n 's/^serve-port: //p' "$WORK/serve-stderr.log" | head -n 1)
  [ -n "$PORT" ] && break
  sleep 0.2
done
test -n "$PORT"
echo "serve_smoke: daemon on port $PORT"

# --- 4: two sessions + one churn client ------------------------------------
$DUNE exec examples/serve_client.exe -- --port "$PORT" \
  --trace "$WORK/racy.rma" --session racy-smoke | tee "$WORK/racy.session.txt"
$DUNE exec examples/serve_client.exe -- --port "$PORT" \
  --trace "$WORK/clean.rma" --session clean-smoke | tee "$WORK/clean.session.txt"
# A client that vanishes mid-stream must not disturb anything else.
$DUNE exec examples/serve_client.exe -- --port "$PORT" \
  --trace "$WORK/racy.rma" --session churn-smoke --abort-after 7

# Scrape the coexisting telemetry endpoint while the daemon is live: the
# per-session run ids must be labelled, not clobbered.
OBS_PORT=$(sed -n 's/^obs-serve-port: //p' "$WORK/serve-stderr.log" | head -n 1)
if [ -n "$OBS_PORT" ] && command -v curl >/dev/null 2>&1; then
  curl -fsS "http://127.0.0.1:$OBS_PORT/metrics" >"$WORK/metrics.txt"
  grep -q '^rma_session_info{' "$WORK/metrics.txt"
  grep -q 'session="racy-smoke"' "$WORK/metrics.txt"
  grep -q 'state="closed:completed"' "$WORK/metrics.txt"
  echo "serve_smoke: /metrics labels sessions by run_id"
fi

# --- 5: verdict assertions ---------------------------------------------------
grep -q '"type":"race"' "$WORK/racy.session.txt"
grep -q "\"digest\":\"$RACY_DIGEST\"" "$WORK/racy.session.txt"
grep -q "\"digest\":\"$CLEAN_DIGEST\"" "$WORK/clean.session.txt"
if grep -q '"type":"race"' "$WORK/clean.session.txt"; then
  echo "serve_smoke: FAIL — clean session streamed a race" >&2
  exit 1
fi
echo "serve_smoke: streamed digests byte-equal the offline analyze path"

# --- 6: clean shutdown -------------------------------------------------------
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
grep -q 'serve: .* accepted' "$WORK/serve-stdout.log"
grep -q '"event":"serve_start"' "$WORK/serve-events.jsonl"
grep -q '"event":"session_admitted"' "$WORK/serve-events.jsonl"
grep -q '"event":"session_summary"' "$WORK/serve-events.jsonl"
grep -q '"reason":"disconnected"' "$WORK/serve-events.jsonl"
grep -q '"event":"serve_stop"' "$WORK/serve-events.jsonl"
echo "serve_smoke: OK"
