(* Tour of the 154-code microbenchmark suite (§5.2): run any code by
   name under the three detectors, or sample a few representative ones.

     dune exec examples/microbench_tour.exe                  -- the tour
     dune exec examples/microbench_tour.exe -- list          -- all names
     dune exec examples/microbench_tour.exe -- <code-name>   -- one code
*)

open Rma_microbench
open Rma_analysis
module Table = Rma_util.Text_table

let tools () =
  [
    ("RMA-Analyzer", Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect Rma_analyzer.Legacy);
    ("MUST-RMA", Must_rma.create ~nprocs:3 ());
    ( "Our Contribution",
      Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect Rma_analyzer.Contribution );
  ]

let show_code s =
  Printf.printf "\n%s  (ground truth: %s)\n" s.Scenario.name
    (if s.Scenario.racy then "DATA RACE" else "safe");
  List.iter
    (fun (name, tool) ->
      let v = Runner.run ~tool s in
      let verdict = if v.Runner.flagged then "error detected" else "no error found" in
      let judged = Runner.outcome_name (Runner.classify v) in
      Printf.printf "  %-18s %-16s [%s]\n" name verdict judged;
      match v.Runner.reports with
      | r :: _ when v.Runner.flagged && name = "Our Contribution" ->
          Printf.printf "      %s\n" (Report.to_message r)
      | _ -> ())
    (tools ())

let tour_codes =
  [
    "ll_get_load_outwindow_origin_race";
    "ll_get_get_inwindow_origin_safe";
    "ll_get_load_inwindow_origin_race";
    "ll_load_get_inwindow_origin_safe";
    "lt_put_put_inwindow_target_race";
    "lr_get_put_inwindow_origin_race";
    "ll_put_store_outwindow_origin_race";
  ]

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ "list" ] -> List.iter (fun s -> print_endline s.Scenario.name) Scenario.all
  | [ name ] -> (
      match Scenario.find name with
      | Some s -> show_code s
      | None ->
          Printf.eprintf "unknown code %S; try 'list'\n" name;
          exit 2)
  | _ ->
      Printf.printf "Microbenchmark suite: %d codes (%d racy, %d safe). A sample:\n"
        Scenario.count_total Scenario.count_racy Scenario.count_safe;
      List.iter
        (fun name ->
          match Scenario.find name with
          | Some s -> show_code s
          | None -> ())
        tour_codes;
      print_endline "\nRun with a code name to inspect any of the 154; 'list' prints them all."
