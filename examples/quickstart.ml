(* Quickstart: run a two-rank MPI-RMA program on the simulated runtime
   with the paper's race detector attached, and watch it catch the
   Figure 2a bug — reading a Get's origin buffer before the epoch
   closed.

     dune exec examples/quickstart.exe
*)

open Mpi_sim
open Rma_analysis

(* The buggy program: rank 0 Gets X from rank 1's window into [buf] and
   immediately Loads [buf] — but the Get completes asynchronously, any
   time up to the unlock, so the Load races with it. *)
let program () =
  let rank = Mpi.comm_rank () in
  let window = Mpi.alloc ~label:"X" ~exposed:true 8 in
  if rank = 1 then Mpi.store_i64 ~addr:window 9999L;
  let win = Mpi.win_create ~base:window ~size:8 in
  Mpi.barrier ();
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let buf = Mpi.alloc ~label:"buf" ~exposed:true 8 in
    Mpi.store_i64 ~loc:(Mpi.loc ~file:"quickstart.ml" ~line:28 "Store") ~addr:buf 1111L;
    Mpi.get win
      ~loc:(Mpi.loc ~file:"quickstart.ml" ~line:30 "MPI_Get")
      ~target:1 ~target_disp:0 ~origin_addr:buf ~len:8;
    (* BUG: buf may or may not hold the fetched value here. *)
    let observed =
      Bytes.get_int64_le
        (Mpi.load ~loc:(Mpi.loc ~file:"quickstart.ml" ~line:34 "Load") ~addr:buf ~len:8 ())
        0
    in
    Printf.printf "rank 0 observed buf = %Ld (could be 1111 or 9999!)\n" observed
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

let () =
  print_endline "1. Running WITHOUT a detector, several seeds — the bug is nondeterministic:";
  List.iter
    (fun seed -> ignore (Runtime.run ~nprocs:2 ~seed program))
    [ 1; 2; 3; 4; 5; 6 ];
  print_endline "";
  print_endline "2. Running WITH the paper's detector (abort-on-race, like the real tool):";
  let tool = Rma_analyzer.create ~nprocs:2 ~mode:Tool.Abort_on_race Rma_analyzer.Contribution in
  (try
     ignore (Runtime.run ~nprocs:2 ~seed:1 ~observer:tool.Tool.observer program);
     print_endline "no race detected (unexpected)"
   with Report.Race_abort report ->
     print_endline (Report.to_message report));
  print_endline "";
  print_endline "3. The legacy tool (order-insensitive) also flags the safe converse order;";
  print_endline "   the contribution does not:";
  let safe_program () =
    let rank = Mpi.comm_rank () in
    let window = Mpi.alloc ~label:"X" ~exposed:true 8 in
    let win = Mpi.win_create ~base:window ~size:8 in
    Mpi.win_lock_all win;
    if rank = 0 then begin
      let buf = Mpi.alloc ~label:"buf" ~exposed:true 8 in
      ignore (Mpi.load ~loc:(Mpi.loc ~file:"quickstart.ml" ~line:63 "Load") ~addr:buf ~len:8 ());
      Mpi.get win
        ~loc:(Mpi.loc ~file:"quickstart.ml" ~line:65 "MPI_Get")
        ~target:1 ~target_disp:0 ~origin_addr:buf ~len:8
    end;
    Mpi.win_unlock_all win;
    Mpi.win_free win
  in
  List.iter
    (fun (name, tool) ->
      tool.Tool.reset ();
      ignore (Runtime.run ~nprocs:2 ~seed:1 ~observer:tool.Tool.observer safe_program);
      Printf.printf "   %-16s -> %s\n" name
        (if Tool.flagged tool then "FALSE POSITIVE" else "correctly silent"))
    [
      ("RMA-Analyzer", Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect Rma_analyzer.Legacy);
      ( "Our Contribution",
        Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect Rma_analyzer.Contribution );
    ]
