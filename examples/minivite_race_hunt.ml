(* The Figure 9 experiment: run the MiniVite-like Louvain phase clean,
   then with the duplicated MPI_Put injected at dspl.hpp:612/614, and
   show the report the detector returns to the developer.

     dune exec examples/minivite_race_hunt.exe
     dune exec examples/minivite_race_hunt.exe -- --ranks 8 --vertices 32000
*)

open Rma_analysis

let () =
  let ranks = ref 4 and vertices = ref 12_800 in
  let rec parse = function
    | "--ranks" :: v :: rest ->
        ranks := int_of_string v;
        parse rest
    | "--vertices" :: v :: rest ->
        vertices := int_of_string v;
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let nprocs = !ranks in
  let params =
    {
      Minivite.Louvain.default_params with
      Minivite.Louvain.graph =
        { Minivite.Graph.default_params with Minivite.Graph.n_vertices = !vertices };
    }
  in
  Printf.printf "MiniVite-like Louvain phase: %d vertices on %d ranks\n\n" !vertices nprocs;

  let tool = Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Contribution in
  let _, summary = Minivite.Louvain.run params ~nprocs ~observer:tool.Tool.observer () in
  Printf.printf
    "clean run     : modularity %.3f, %d communities, %d ghost fetches, %d update puts — %s\n"
    summary.Minivite.Louvain.modularity summary.Minivite.Louvain.communities
    summary.Minivite.Louvain.ghost_fetches summary.Minivite.Louvain.update_puts
    (if Tool.flagged tool then "RACES REPORTED (unexpected)" else "no race reported");

  let injected = { params with Minivite.Louvain.inject_race = true } in
  tool.Tool.reset ();
  let _, _ = Minivite.Louvain.run injected ~nprocs ~observer:tool.Tool.observer () in
  Printf.printf "injected run  : duplicated MPI_Put (Code 3) -> %d reports\n\n"
    (tool.Tool.race_count ());
  (match tool.Tool.races () with
  | r :: _ -> print_endline (Report.to_message r)
  | [] -> print_endline "no report (unexpected)");

  (* The legacy tool finds it too (Figure 9: "Both RMA-Analyzer and our
     contribution detect the data race"). *)
  let legacy = Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Legacy in
  let _, _ = Minivite.Louvain.run injected ~nprocs ~observer:legacy.Tool.observer () in
  Printf.printf "\nlegacy RMA-Analyzer on the injected run: %d reports\n" (legacy.Tool.race_count ())
