(* Graph500-style BFS over MPI-RMA (the paper's §2.1 motivating
   workload), with active-target fence synchronisation and per-source
   inbox windows — run under the paper's detector to show a realistic
   fence-based code passing cleanly, then with a deliberately broken
   double-buffering to show the detector catching the bug.

     dune exec examples/bfs_frontier.exe
     dune exec examples/bfs_frontier.exe -- --ranks 8 --vertices 10000
*)

open Rma_analysis

let () =
  let ranks = ref 4 and vertices = ref 6_000 in
  let rec parse = function
    | "--ranks" :: v :: rest ->
        ranks := int_of_string v;
        parse rest
    | "--vertices" :: v :: rest ->
        vertices := int_of_string v;
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let nprocs = !ranks in
  let params =
    {
      Graph500.Bfs.default_params with
      Graph500.Bfs.graph =
        { Minivite.Graph.default_params with Minivite.Graph.n_vertices = !vertices };
    }
  in
  Printf.printf "BFS over MPI-RMA: %d vertices, %d ranks, fence-synchronised frontier exchange\n\n"
    !vertices nprocs;
  let tool = Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Contribution in
  let result, summary, levels =
    Graph500.Bfs.run_with_levels params ~nprocs ~observer:tool.Tool.observer ()
  in
  let reference = Graph500.Bfs.reference_bfs params.Graph500.Bfs.graph ~source:0 in
  let agree = ref 0 and total = ref 0 in
  Array.iteri
    (fun v expected ->
      incr total;
      if levels.(v) = expected then incr agree)
    reference;
  Printf.printf "reached %d vertices in %d levels; %d/%d levels match the sequential oracle\n"
    summary.Graph500.Bfs.reached summary.Graph500.Bfs.levels !agree !total;
  Printf.printf "parent checksum (recomputed from window memory): %Ld\n"
    summary.Graph500.Bfs.parent_checksum;
  Printf.printf "simulated time %.1f ms, %d instrumented accesses, detector reports: %d\n"
    (result.Mpi_sim.Runtime.makespan *. 1000.0)
    result.Mpi_sim.Runtime.accesses_emitted (tool.Tool.race_count ());

  (* Level histogram, the Graph500 staple. *)
  let max_level = Array.fold_left max 0 levels in
  Printf.printf "\nfrontier sizes by level:\n";
  for l = 0 to max_level do
    let n = Array.fold_left (fun acc x -> if x = l then acc + 1 else acc) 0 levels in
    Printf.printf "  level %2d: %6d %s\n" l n (String.make (min 60 (n / 25)) '#')
  done
