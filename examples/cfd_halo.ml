(* CFD-Proxy-style halo exchange under each detector: validates the
   exchanged data and prints the Figure 10 per-method epoch times and
   tree sizes.

     dune exec examples/cfd_halo.exe
     dune exec examples/cfd_halo.exe -- --ranks 8 --iterations 20
*)

open Rma_analysis
module Table = Rma_util.Text_table

let () =
  let ranks = ref 12 and iterations = ref 20 and cells = ref 64 in
  let rec parse = function
    | "--ranks" :: v :: rest ->
        ranks := int_of_string v;
        parse rest
    | "--iterations" :: v :: rest ->
        iterations := int_of_string v;
        parse rest
    | "--cells" :: v :: rest ->
        cells := int_of_string v;
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let nprocs = !ranks in
  let params =
    {
      Cfd_proxy.Halo.default_params with
      Cfd_proxy.Halo.iterations = !iterations;
      cells_per_chunk = !cells;
    }
  in
  Printf.printf "CFD-Proxy halo exchange: %d ranks, %d iterations, %d cells/chunk, 2 windows\n\n"
    nprocs !iterations !cells;
  let config = { Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 2.0 } in
  let t =
    Table.create
      ~columns:
        [ ("Method", Table.Left); ("Epoch time (s)", Table.Right); ("BST nodes", Table.Right);
          ("Reports", Table.Right); ("Checksum OK", Table.Center) ]
      ()
  in
  let reference = ref None in
  List.iter
    (fun (name, tool) ->
      let observer = Option.map (fun t -> t.Tool.observer) tool in
      let result, summary = Cfd_proxy.Halo.run params ~nprocs ~config ?observer () in
      let checksum = summary.Cfd_proxy.Halo.checksum in
      (match !reference with None -> reference := Some checksum | Some _ -> ());
      let ok = match !reference with Some c -> abs_float (c -. checksum) < 1e-6 | None -> false in
      let epoch = Array.fold_left ( +. ) 0.0 result.Mpi_sim.Runtime.epoch_times /. float_of_int nprocs in
      let nodes, reports =
        match tool with
        | None -> (0, 0)
        | Some t -> ((t.Tool.bst_summary ()).Tool.nodes_final_total, t.Tool.race_count ())
      in
      Table.add_row t
        [ name; Table.cell_float ~decimals:3 epoch; string_of_int nodes; string_of_int reports;
          (if ok then "yes" else "NO") ])
    [
      ("Baseline", None);
      ("RMA-Analyzer", Some (Rma_analyzer.create ~nprocs ~config ~mode:Tool.Collect Rma_analyzer.Legacy));
      ("MUST-RMA", Some (Must_rma.create ~nprocs ~config ()));
      ( "Our Contribution",
        Some (Rma_analyzer.create ~nprocs ~config ~mode:Tool.Collect Rma_analyzer.Contribution) );
    ];
  Table.print t;
  print_endline
    "\nNote: RMA-Analyzer's reports on this race-free code are its order-insensitivity false\n\
     positives (pack-then-put), the weakness §5.2 documents and the contribution fixes."
