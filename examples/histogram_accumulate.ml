(* Shared histogram via MPI_Accumulate: every rank bins its local data
   into one window with element-atomic one-sided reductions. Concurrent
   accumulates to the same bin are NOT a data race (the paper's §2.1
   atomicity property: "the atomicity of MPI-RMA communications is
   guaranteed at the MPI_Datatype level") — and the detector knows it,
   while the same program written with MPI_Put is flagged immediately.

     dune exec examples/histogram_accumulate.exe
*)

open Mpi_sim
open Rma_analysis

let bins = 16
let samples_per_rank = 4_000

let program ~use_put result () =
  let rank = Mpi.comm_rank () in
  let nprocs = Mpi.comm_size () in
  let base = Mpi.alloc ~label:"histogram" ~exposed:true (8 * bins) in
  let win = Mpi.win_create ~base ~size:(8 * bins) in
  let rng = Rma_util.Prng.create ~seed:(1000 + rank) in
  (* Local binning pass. *)
  let local = Array.make bins 0L in
  for _ = 1 to samples_per_rank do
    let v = Rma_util.Prng.int rng ~bound:1000 in
    let bin = v * bins / 1000 in
    local.(bin) <- Int64.add local.(bin) 1L
  done;
  let contrib = Mpi.alloc ~label:"contrib" ~exposed:true (8 * bins) in
  Array.iteri (fun i v -> Mpi.store_i64 ~addr:(contrib + (8 * i)) v) local;
  Mpi.win_lock_all win;
  (* All ranks reduce into rank 0's histogram — every bin is hit by every
     rank. *)
  for bin = 0 to bins - 1 do
    if use_put then
      Mpi.put win
        ~loc:(Mpi.loc ~file:"histogram.ml" ~line:35 "MPI_Put")
        ~target:0 ~target_disp:(8 * bin) ~origin_addr:(contrib + (8 * bin)) ~len:8
    else
      Mpi.accumulate win
        ~loc:(Mpi.loc ~file:"histogram.ml" ~line:39 "MPI_Accumulate")
        ~target:0 ~target_disp:(8 * bin) ~origin_addr:(contrib + (8 * bin)) ~len:8
        ~op:Runtime.Sum
  done;
  Mpi.win_unlock_all win;
  Mpi.barrier ();
  if rank = 0 then begin
    let total = ref 0L in
    for bin = 0 to bins - 1 do
      total := Int64.add !total (Mpi.load_i64 ~addr:(base + (8 * bin)) ())
    done;
    result := (!total, Int64.of_int (nprocs * samples_per_rank))
  end;
  Mpi.win_free win

let () =
  let nprocs = 6 in
  print_endline "1. Histogram with MPI_Accumulate (atomic, race-free):";
  let tool = Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Contribution in
  let result = ref (0L, 0L) in
  List.iter
    (fun seed -> ignore (Runtime.run ~nprocs ~seed ~observer:tool.Tool.observer (program ~use_put:false result)))
    [ 1; 2; 3 ];
  let total, expected = !result in
  Printf.printf "   every seed: total %Ld = expected %Ld; detector reports: %d\n" total expected
    (tool.Tool.race_count ());
  print_endline "";
  print_endline "2. Same program with MPI_Put (lost updates AND a reported race):";
  let tool2 = Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Contribution in
  let result2 = ref (0L, 0L) in
  ignore (Runtime.run ~nprocs ~seed:1 ~observer:tool2.Tool.observer (program ~use_put:true result2));
  let total2, expected2 = !result2 in
  Printf.printf "   total %Ld vs expected %Ld (updates lost); detector reports: %d\n" total2
    expected2 (tool2.Tool.race_count ());
  match tool2.Tool.races () with
  | r :: _ -> print_endline ("   " ^ Report.to_message r)
  | [] -> ()
