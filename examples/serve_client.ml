(* A reference client for the `rma_race serve` daemon: connect, send the
   one-line JSON handshake, stream a recorded trace file, and print every
   verdict line the server sends back. The CI smoke test and TUTORIAL.md
   section 7 drive the daemon with exactly this binary.

     rma_race record rrb_lockall_remote_conflict_put_put_race --out racy.rma
     rma_race serve --port 0            # note the serve-port: N line
     dune exec examples/serve_client.exe -- --port N --trace racy.rma

   Options mirror the handshake fields (OPERATIONS.md):
     --port N | --socket PATH    where the daemon listens
     --trace FILE                Codec format-2 trace to stream (required)
     --session NAME              display name (default: trace basename)
     --tool SLUG                 detector slug (default contribution)
     --nprocs N                  rank count (default: inferred from the trace)
     --jobs N --budget SPEC --fault SPEC --predictive --batch-inserts
     --abort-after N             disconnect after N trace lines (churn demo)

   Exit status: 0 after a summary line, 3 on error/load_shed, 2 on usage. *)

module Json = Rma_util.Json

let usage = "serve_client --port N|--socket PATH --trace FILE [options]"

let port = ref None
let socket = ref None
let trace = ref None
let session = ref None
let tool = ref None
let nprocs = ref None
let jobs = ref None
let budget = ref None
let fault = ref None
let predictive = ref false
let batch_inserts = ref false
let abort_after = ref None

let spec =
  [
    ("--port", Arg.Int (fun v -> port := Some v), "N  daemon TCP port on 127.0.0.1");
    ("--socket", Arg.String (fun v -> socket := Some v), "PATH  daemon Unix-domain socket");
    ("--trace", Arg.String (fun v -> trace := Some v), "FILE  trace file to stream");
    ("--session", Arg.String (fun v -> session := Some v), "NAME  session display name");
    ("--tool", Arg.String (fun v -> tool := Some v), "SLUG  detector (default contribution)");
    ("--nprocs", Arg.Int (fun v -> nprocs := Some v), "N  rank count (default: from the trace)");
    ("--jobs", Arg.Int (fun v -> jobs := Some v), "N  shard the session over N worker domains");
    ("--budget", Arg.String (fun v -> budget := Some v), "SPEC  per-session store budget");
    ("--fault", Arg.String (fun v -> fault := Some v), "SPEC  per-session fault plan");
    ("--predictive", Arg.Set predictive, " run the predictive analysis too");
    ("--batch-inserts", Arg.Set batch_inserts, " coalesce adjacent inserts");
    ("--abort-after", Arg.Int (fun v -> abort_after := Some v), "N  disconnect after N lines");
  ]

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let read_lines path =
  match open_in_bin path with
  | exception Sys_error e -> die "serve_client: %s" e
  | ic ->
      let rec go acc = match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> close_in ic; List.rev acc
      in
      go []

let hello_line ~session ~nprocs =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let flag name v = if v then [ (name, Json.Bool true) ] else [] in
  Json.to_string ~minify:true
    (Json.Obj
       ([ ("hello", Json.Int 1); ("session", Json.String session); ("nprocs", Json.Int nprocs) ]
       @ opt "tool" (fun s -> Json.String s) !tool
       @ opt "jobs" (fun j -> Json.Int j) !jobs
       @ opt "budget" (fun s -> Json.String s) !budget
       @ opt "fault" (fun s -> Json.String s) !fault
       @ flag "predictive" !predictive
       @ flag "batch_inserts" !batch_inserts))

let () =
  Arg.parse spec (fun a -> die "serve_client: unexpected argument %S" a) usage;
  let trace = match !trace with Some t -> t | None -> die "serve_client: --trace is required" in
  let lines = read_lines trace in
  let session =
    match !session with Some s -> s | None -> Filename.remove_extension (Filename.basename trace)
  in
  let nprocs =
    match !nprocs with
    | Some n -> n
    | None -> (
        match Rma_trace.Recorder.load ~path:trace with
        | Ok events -> Rma_trace.Post_mortem.nprocs_of events
        | Error e -> die "serve_client: cannot infer --nprocs from %s: %s" trace e)
  in
  let fd =
    match (!socket, !port) with
    | Some path, _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | None, Some p ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
        fd
    | None, None -> die "serve_client: one of --port or --socket is required"
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let out = Unix.out_channel_of_descr fd in
  let send line = output_string out line; output_char out '\n' in
  send (hello_line ~session ~nprocs);
  (* Stream the trace; an --abort-after client hangs up mid-stream, which
     the daemon records as a disconnect — the churn scenario. *)
  let sent = ref 0 in
  let aborted =
    try
      List.iter
        (fun line ->
          (match !abort_after with Some n when !sent >= n -> raise Exit | _ -> ());
          send line;
          incr sent)
        lines;
      false
    with Exit -> true
  in
  flush out;
  if aborted then begin
    Printf.printf "aborted after %d lines\n%!" !sent;
    Unix.close fd;
    exit 0
  end;
  (* Half-close: trace fully sent, now drain the server's verdict lines. *)
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let status = ref 3 in
  (try
     while true do
       let line = input_line ic in
       print_endline line;
       match Json.of_string line with
       | Ok j -> (
           match Option.bind (Json.member "type" j) Json.to_str with
           | Some "summary" -> status := 0
           | Some ("error" | "load_shed") -> status := 3
           | _ -> ())
       | Error _ -> ()
     done
   with End_of_file | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  exit !status
