(* Graceful-degradation drill: the CFD-Proxy halo exchange analyzed
   under a shrinking node budget with the Spill_oldest_epoch policy.

   An unbudgeted contribution-policy run is the reference; then the
   same workload re-runs with per-store caps well below the trees'
   natural size. The spill policy evicts completed-epoch nodes oldest
   first, so detection keeps working on a bounded store — the drill
   shows the verdicts staying identical while [degraded_drops] counts
   what governance threw away.

     dune exec examples/fault_drill.exe
     dune exec examples/fault_drill.exe -- --ranks 8 --iterations 30
     dune exec examples/fault_drill.exe -- --obs-events drill.jsonl --obs-level debug
     dune exec examples/fault_drill.exe -- --jobs 4 --fault-plan seed=7,worker_crash=0.05
*)

open Rma_analysis
module Table = Rma_util.Text_table
module Diag = Rma_report.Diag

let () =
  let ranks = ref 12 and iterations = ref 20 and cells = ref 64 in
  let diag = ref Diag.default in
  (* The same diagnostics knobs as the CLI subcommands (a subset with
     the journal/telemetry flags spelled out), so a drill run can emit
     an event journal or serve /metrics like any rma_race invocation. *)
  let rec parse = function
    | "--ranks" :: v :: rest ->
        ranks := int_of_string v;
        parse rest
    | "--iterations" :: v :: rest ->
        iterations := int_of_string v;
        parse rest
    | "--cells" :: v :: rest ->
        cells := int_of_string v;
        parse rest
    | "--obs-out" :: v :: rest ->
        diag := { !diag with Diag.obs_out = Some v };
        parse rest
    | "--obs-summary" :: rest ->
        diag := { !diag with Diag.obs_summary = true };
        parse rest
    | "--obs-events" :: v :: rest ->
        diag := { !diag with Diag.obs_events = Some v };
        parse rest
    | "--obs-level" :: v :: rest ->
        diag := { !diag with Diag.obs_level = Some v };
        parse rest
    | "--obs-serve" :: v :: rest ->
        diag := { !diag with Diag.obs_serve = Some (int_of_string v) };
        parse rest
    | "--jobs" :: v :: rest ->
        diag := { !diag with Diag.jobs = Some (int_of_string v) };
        parse rest
    | "--fault-plan" :: v :: rest ->
        diag := { !diag with Diag.fault_plan = Some v };
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let nprocs = !ranks in
  Diag.with_diag ~prog:"fault_drill" ~generator:"fault_drill" !diag @@ fun () ->
  let params =
    {
      Cfd_proxy.Halo.default_params with
      Cfd_proxy.Halo.iterations = !iterations;
      cells_per_chunk = !cells;
    }
  in
  let config = { Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 2.0 } in
  Printf.printf
    "Fault drill: CFD-Proxy halo exchange (%d ranks, %d iterations) under node budgets\n\
     (policy Spill_oldest_epoch: evict completed-epoch nodes, oldest sequence first).\n\
     Caps apply per (rank, window) store — %d stores here; the table sums them.\n\n"
    nprocs !iterations (2 * nprocs);
  let budget_of_spec spec =
    match Rma_fault.Budget.of_spec spec with
    | Ok b -> b
    | Error msg -> failwith (Printf.sprintf "bad budget spec %S: %s" spec msg)
  in
  let t =
    Table.create
      ~columns:
        [ ("Budget", Table.Left); ("Peak nodes", Table.Right); ("Final nodes", Table.Right);
          ("Degraded drops", Table.Right); ("Reports", Table.Right); ("Checksum OK", Table.Center) ]
      ()
  in
  let reference_checksum = ref None in
  let reference_reports = ref 0 in
  let verdicts_stable = ref true in
  List.iter
    (fun (label, budget) ->
      let tool =
        Rma_analyzer.create ~nprocs ~config ~mode:Tool.Collect ?budget Rma_analyzer.Contribution
      in
      let _result, summary = Cfd_proxy.Halo.run params ~nprocs ~config ~observer:tool.Tool.observer () in
      let checksum = summary.Cfd_proxy.Halo.checksum in
      (match !reference_checksum with
      | None ->
          reference_checksum := Some checksum;
          reference_reports := tool.Tool.race_count ()
      | Some _ -> ());
      let ok =
        match !reference_checksum with
        | Some c -> abs_float (c -. checksum) < 1e-6
        | None -> false
      in
      if tool.Tool.race_count () <> !reference_reports then verdicts_stable := false;
      let s = tool.Tool.bst_summary () in
      Table.add_row t
        [ label; string_of_int s.Tool.nodes_peak_total; string_of_int s.Tool.nodes_final_total;
          string_of_int s.Tool.degraded_drops_total; string_of_int (tool.Tool.race_count ());
          (if ok then "yes" else "NO") ])
    [
      ("unbounded", None);
      ("nodes=64,policy=spill", Some (budget_of_spec "nodes=64,policy=spill"));
      ("nodes=6,policy=spill", Some (budget_of_spec "nodes=6,policy=spill"));
      ("nodes=4,policy=spill", Some (budget_of_spec "nodes=4,policy=spill"));
    ];
  Table.print t;
  Printf.printf
    "\nVerdicts %s across budgets: the halo exchange is race-free and stays so on a\n\
     bounded store, because spilling only forgets completed-epoch intervals that can\n\
     no longer race with the open epoch. A non-zero \"Degraded drops\" column is the\n\
     honesty signal: detection was best-effort, and any race reported from such a\n\
     store carries provenance.degraded = true (SARIF level \"warning\" with a\n\
     confidence: downgraded property). The same caps are available everywhere via\n\
     --budget on the CLI and bench, or RMA_BUDGET in the environment.\n"
    (if !verdicts_stable then "identical" else "DIVERGED");
  []
