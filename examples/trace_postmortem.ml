(* Record a run's instrumentation stream to a trace file, then analyse
   it offline — the MC-Checker-style post-mortem workflow (§3 of the
   paper). Unlike the on-the-fly tools, which abort at the first
   conflict, the post-mortem pass enumerates every racy statement pair.

     dune exec examples/trace_postmortem.exe
     dune exec examples/trace_postmortem.exe -- /tmp/my_trace.txt
*)

open Mpi_sim
open Rma_trace

(* A program with two independent races. *)
let program () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 32 in
  let win = Mpi.win_create ~base ~size:32 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let src = Mpi.alloc ~exposed:true 16 in
    let put line disp off =
      Mpi.put win
        ~loc:(Mpi.loc ~file:"exchange.c" ~line "MPI_Put")
        ~target:1 ~target_disp:disp ~origin_addr:(src + off) ~len:8
    in
    put 21 0 0;
    put 22 0 0;
    (* duplicate: race 1 *)
    put 31 16 8;
    put 32 16 8 (* duplicate: race 2 *)
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

let () =
  let path =
    match Array.to_list Sys.argv with
    | _ :: p :: _ -> p
    | _ -> Filename.temp_file "rma_trace" ".txt"
  in
  let recorder = Recorder.create () in
  let _ = Runtime.run ~nprocs:2 ~seed:3 ~observer:(Recorder.observer recorder) program in
  Recorder.save recorder ~path;
  Printf.printf "recorded %d events to %s\n\n" (Recorder.length recorder) path;

  (match Recorder.load ~path with
  | Error e -> Printf.eprintf "reload failed: %s\n" e
  | Ok events ->
      Printf.printf "1. On-the-fly tool on the replayed trace (stops at the first conflict):\n";
      let tool =
        Rma_analysis.Rma_analyzer.create ~nprocs:2 ~mode:Rma_analysis.Tool.Collect
          Rma_analysis.Rma_analyzer.Contribution
      in
      let races = Recorder.replay events ~tool in
      List.iteri
        (fun i r -> if i < 3 then Printf.printf "   %s\n" (Rma_analysis.Report.to_message r))
        races;
      Printf.printf "   (%d reports)\n\n" (List.length races);

      Printf.printf "2. Post-mortem analysis (enumerates every racy statement pair):\n";
      let result = Post_mortem.analyze events in
      List.iter
        (fun r -> Printf.printf "   %s\n" (Rma_analysis.Report.to_message r))
        (Post_mortem.to_reports result);
      Printf.printf "   (%d distinct pairs from %d accesses, %d pair checks)\n"
        result.Post_mortem.distinct_pairs result.Post_mortem.accesses_checked
        result.Post_mortem.pairs_checked)
