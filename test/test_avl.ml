open Rma_access
open Rma_store

let dbg line = Debug_info.make ~file:"avl.c" ~line ~operation:"op"

let acc ?(issuer = 0) ~seq lo hi kind =
  Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer ~seq ~debug:(dbg seq)

let local_read ~seq lo hi = acc ~seq lo hi Access_kind.Local_read

let test_empty () =
  let t = Avl.create () in
  Alcotest.(check int) "size" 0 (Avl.size t);
  Alcotest.(check bool) "empty" true (Avl.is_empty t);
  Alcotest.(check (list pass)) "stab" [] (Avl.stab t (Interval.byte 0));
  Alcotest.(check bool) "invariants" true (Avl.invariants_ok t)

let test_insert_and_order () =
  let t = Avl.create () in
  List.iter (fun (lo, hi, seq) -> Avl.insert t (local_read ~seq lo hi))
    [ (5, 9, 1); (1, 2, 2); (7, 7, 3); (3, 3, 4); (0, 0, 5) ];
  Alcotest.(check int) "size" 5 (Avl.size t);
  let lows = List.map (fun a -> Interval.lo a.Access.interval) (Avl.to_list t) in
  Alcotest.(check (list int)) "in-order by lo" [ 0; 1; 3; 5; 7 ] lows;
  Alcotest.(check bool) "invariants" true (Avl.invariants_ok t)

let test_multiset_duplicates () =
  let t = Avl.create () in
  Avl.insert t (local_read ~seq:1 4 4);
  Avl.insert t (local_read ~seq:2 4 4);
  Avl.insert t (local_read ~seq:3 4 4);
  Alcotest.(check int) "all kept" 3 (Avl.size t);
  Alcotest.(check int) "stab finds all" 3 (List.length (Avl.stab t (Interval.byte 4)))

let test_stab_exact () =
  let t = Avl.create () in
  (* The Figure 5a layout: [4], then [2...12], then query [7]. *)
  Avl.insert t (local_read ~seq:1 4 4);
  Avl.insert t (acc ~seq:2 2 12 Access_kind.Rma_read);
  let hits = Avl.stab t (Interval.byte 7) in
  Alcotest.(check int) "wide off-path interval found" 1 (List.length hits);
  Alcotest.(check int) "it is [2...12]" 2 (Interval.lo (List.hd hits).Access.interval)

let test_search_path_misses_off_path () =
  (* The legacy lower-bound descent does NOT see [2...12] when looking up
     7 — the mechanism behind the Figure 5a false negative. *)
  let t = Avl.create () in
  Avl.insert t (local_read ~seq:1 4 4);
  Avl.insert t (acc ~seq:2 2 12 Access_kind.Rma_read);
  let path = Avl.search_path t (local_read ~seq:3 7 7) in
  let lows = List.map (fun a -> Interval.lo a.Access.interval) path in
  Alcotest.(check (list int)) "descent sees only the root" [ 4 ] lows

let test_remove () =
  let t = Avl.create () in
  let a = local_read ~seq:1 1 2 and b = local_read ~seq:2 3 4 and c = local_read ~seq:3 5 6 in
  List.iter (Avl.insert t) [ a; b; c ];
  Alcotest.(check bool) "remove present" true (Avl.remove t b);
  Alcotest.(check int) "size" 2 (Avl.size t);
  Alcotest.(check bool) "remove absent" false (Avl.remove t b);
  Alcotest.(check bool) "invariants" true (Avl.invariants_ok t);
  Alcotest.(check bool) "others intact" true
    (List.map (fun x -> x.Access.seq) (Avl.to_list t) = [ 1; 3 ])

let test_clear () =
  let t = Avl.create () in
  List.iter (Avl.insert t) [ local_read ~seq:1 1 2; local_read ~seq:2 3 4 ];
  Avl.clear t;
  Alcotest.(check int) "empty" 0 (Avl.size t);
  Alcotest.(check bool) "invariants" true (Avl.invariants_ok t)

let test_balance_sequential_inserts () =
  (* 1024 strictly increasing intervals: a plain BST would become a list;
     the AVL must stay logarithmic. *)
  let t = Avl.create () in
  for i = 0 to 1023 do
    Avl.insert t (local_read ~seq:i (i * 2) (i * 2))
  done;
  Alcotest.(check bool) "height <= 1.44 log2 n + 2" true (Avl.height t <= 16);
  Alcotest.(check bool) "invariants" true (Avl.invariants_ok t)

(* Property tests: random workloads preserve invariants and stab agrees
   with the naive scan. *)

let access_gen =
  QCheck.Gen.(
    let* lo = int_range 0 200 in
    let* len = int_range 1 30 in
    let* k = int_range 0 3 in
    let* seq = int_range 0 1_000_000 in
    return (acc ~seq lo (lo + len - 1) (List.nth Access_kind.all k)))

let arb_accesses =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map Access.to_string l))
    QCheck.Gen.(list_size (int_range 0 80) access_gen)

let prop_invariants_after_inserts =
  QCheck.Test.make ~name:"invariants hold after random inserts" ~count:200 arb_accesses
    (fun accesses ->
      let t = Avl.create () in
      List.iter (Avl.insert t) accesses;
      Avl.invariants_ok t && Avl.size t = List.length accesses)

let prop_stab_agrees_with_scan =
  QCheck.Test.make ~name:"stab equals naive overlap scan" ~count:200
    (QCheck.pair arb_accesses (QCheck.int_range 0 220))
    (fun (accesses, point) ->
      let t = Avl.create () in
      List.iter (Avl.insert t) accesses;
      let q = Interval.make ~lo:point ~hi:(point + 5) in
      let fast = List.sort compare (List.map (fun a -> a.Access.seq) (Avl.stab t q)) in
      let slow =
        List.sort compare
          (List.filter_map
             (fun a -> if Interval.overlaps a.Access.interval q then Some a.Access.seq else None)
             accesses)
      in
      fast = slow)

let prop_remove_inverse_of_insert =
  QCheck.Test.make ~name:"removing everything empties the tree" ~count:200 arb_accesses
    (fun accesses ->
      (* Give each access a distinct seq so removal is unambiguous. *)
      let accesses = List.mapi (fun i a -> { a with Access.seq = i }) accesses in
      let t = Avl.create () in
      List.iter (Avl.insert t) accesses;
      let all_removed = List.for_all (Avl.remove t) accesses in
      all_removed && Avl.is_empty t && Avl.invariants_ok t)

let prop_invariants_under_mixed_ops =
  QCheck.Test.make ~name:"invariants hold under interleaved insert/remove" ~count:100
    (QCheck.pair arb_accesses (QCheck.int_bound 1000))
    (fun (accesses, seed) ->
      let accesses = Array.of_list (List.mapi (fun i a -> { a with Access.seq = i }) accesses) in
      let rng = Rma_util.Prng.create ~seed in
      let t = Avl.create () in
      let live = ref [] in
      Array.iter
        (fun a ->
          Avl.insert t a;
          live := a :: !live;
          if Rma_util.Prng.bool rng then begin
            match !live with
            | victim :: rest ->
                ignore (Avl.remove t victim);
                live := rest
            | [] -> ()
          end)
        accesses;
      Avl.invariants_ok t && Avl.size t = List.length !live)

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "insert and in-order traversal" `Quick test_insert_and_order;
    Alcotest.test_case "multiset duplicates" `Quick test_multiset_duplicates;
    Alcotest.test_case "stab finds off-path wide intervals" `Quick test_stab_exact;
    Alcotest.test_case "search path misses off-path intervals (Fig 5a)" `Quick
      test_search_path_misses_off_path;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "balance under sequential inserts" `Quick test_balance_sequential_inserts;
    QCheck_alcotest.to_alcotest prop_invariants_after_inserts;
    QCheck_alcotest.to_alcotest prop_stab_agrees_with_scan;
    QCheck_alcotest.to_alcotest prop_remove_inverse_of_insert;
    QCheck_alcotest.to_alcotest prop_invariants_under_mixed_ops;
  ]
