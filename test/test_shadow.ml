open Rma_access
open Rma_vclock
open Rma_shadow

let dbg line = Debug_info.make ~file:"shadow.c" ~line ~operation:"op"

let standard_hb stamp clock = Vclock.stamp_observed stamp ~by:clock

let shadow () = Shadow.create ~happens_before:standard_hb ()

let iv lo hi = Interval.make ~lo ~hi

let record t ~thread ~clock ~kind ~line lo hi =
  Shadow.record_and_check t ~interval:(iv lo hi) ~thread ~clock ~kind ~issuer:thread
    ~debug:(dbg line)

let test_concurrent_write_write_races () =
  let t = shadow () in
  let c0 = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  let c1 = Vclock.tick (Vclock.create ~nprocs:2) 1 in
  Alcotest.(check bool) "first clean" true
    (record t ~thread:0 ~clock:c0 ~kind:Access_kind.Local_write ~line:1 0 7 = None);
  Alcotest.(check bool) "concurrent write races" true
    (record t ~thread:1 ~clock:c1 ~kind:Access_kind.Rma_write ~line:2 4 11 <> None)

let test_ordered_accesses_safe () =
  let t = shadow () in
  let c0 = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  ignore (record t ~thread:0 ~clock:c0 ~kind:Access_kind.Local_write ~line:1 0 7);
  (* Thread 1 learns thread 0's clock before accessing: ordered. *)
  let c1 = Vclock.tick (Vclock.merge (Vclock.create ~nprocs:2) c0) 1 in
  Alcotest.(check bool) "ordered write is safe" true
    (record t ~thread:1 ~clock:c1 ~kind:Access_kind.Rma_write ~line:2 0 7 = None)

let test_read_read_safe () =
  let t = shadow () in
  let c0 = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  let c1 = Vclock.tick (Vclock.create ~nprocs:2) 1 in
  ignore (record t ~thread:0 ~clock:c0 ~kind:Access_kind.Local_read ~line:1 0 7);
  Alcotest.(check bool) "concurrent reads safe" true
    (record t ~thread:1 ~clock:c1 ~kind:Access_kind.Rma_read ~line:2 0 7 = None)

let test_same_thread_safe () =
  let t = shadow () in
  let c = ref (Vclock.create ~nprocs:1) in
  for i = 1 to 10 do
    c := Vclock.tick !c 0;
    Alcotest.(check bool) "same thread never races" true
      (record t ~thread:0 ~clock:!c ~kind:Access_kind.Local_write ~line:i 0 7 = None)
  done

let test_disjoint_bytes_safe () =
  let t = shadow () in
  let c0 = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  let c1 = Vclock.tick (Vclock.create ~nprocs:2) 1 in
  ignore (record t ~thread:0 ~clock:c0 ~kind:Access_kind.Local_write ~line:1 0 3);
  (* Same 8-byte granule, disjoint bytes. *)
  Alcotest.(check bool) "same granule, no overlap" true
    (record t ~thread:1 ~clock:c1 ~kind:Access_kind.Rma_write ~line:2 4 7 = None)

let test_eviction_bounded () =
  let t = Shadow.create ~cells_per_granule:2 ~happens_before:standard_hb () in
  let clock thread = Vclock.tick (Vclock.create ~nprocs:8) thread in
  for thread = 0 to 5 do
    ignore (record t ~thread ~clock:(clock thread) ~kind:Access_kind.Local_read ~line:thread 0 7)
  done;
  Alcotest.(check int) "one granule" 1 (Shadow.granules t);
  Alcotest.(check int) "bounded cells" 2 (Shadow.cells t)

let test_race_reports_cells () =
  let t = shadow () in
  let c0 = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  let c1 = Vclock.tick (Vclock.create ~nprocs:2) 1 in
  ignore (record t ~thread:0 ~clock:c0 ~kind:Access_kind.Rma_write ~line:10 0 7);
  match record t ~thread:1 ~clock:c1 ~kind:Access_kind.Local_read ~line:20 0 7 with
  | None -> Alcotest.fail "expected race"
  | Some r ->
      Alcotest.(check int) "prior line" 10 r.Shadow.prior.Shadow.debug.Debug_info.line;
      Alcotest.(check int) "current line" 20 r.Shadow.current.Shadow.debug.Debug_info.line

let test_clear () =
  let t = shadow () in
  let c0 = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  ignore (record t ~thread:0 ~clock:c0 ~kind:Access_kind.Local_write ~line:1 0 7);
  Shadow.clear t;
  Alcotest.(check int) "no granules" 0 (Shadow.granules t)

let test_multi_granule_spans () =
  let t = shadow () in
  let c0 = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  let c1 = Vclock.tick (Vclock.create ~nprocs:2) 1 in
  ignore (record t ~thread:0 ~clock:c0 ~kind:Access_kind.Rma_write ~line:1 0 63);
  Alcotest.(check int) "eight granules" 8 (Shadow.granules t);
  Alcotest.(check bool) "overlap found in the middle" true
    (record t ~thread:1 ~clock:c1 ~kind:Access_kind.Local_read ~line:2 40 41 <> None)

let suite =
  [
    Alcotest.test_case "concurrent write/write races" `Quick test_concurrent_write_write_races;
    Alcotest.test_case "ordered accesses safe" `Quick test_ordered_accesses_safe;
    Alcotest.test_case "read/read safe" `Quick test_read_read_safe;
    Alcotest.test_case "same thread safe" `Quick test_same_thread_safe;
    Alcotest.test_case "disjoint bytes in a granule safe" `Quick test_disjoint_bytes_safe;
    Alcotest.test_case "eviction bounded" `Quick test_eviction_bounded;
    Alcotest.test_case "race reports both cells" `Quick test_race_reports_cells;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "multi-granule spans" `Quick test_multi_granule_spans;
  ]
