(* Predictive mode: the bidirectional schedule-differential harness.

   The weak-order analysis (--predictive) claims that an access pair it
   reports as [Predicted] is unordered under MPI synchronization
   semantics alone — i.e. SOME legal schedule overlaps it — and that a
   pair it stays silent on is ordered under EVERY legal schedule. Both
   directions are tested against the only ground truth available without
   a model checker: the observed analysis under a sweep of interleave
   seeds.

   - Soundness: every pair predicted at interleave seed 0 must be
     OBSERVED under at least one of N seeds. A prediction no schedule
     realises is a false alarm; the failure message prints the witness
     reordering so the bogus claim can be read.
   - Completeness: every pair the observed analysis reports under any of
     the N seeds must already be in seed 0's predictive report (observed
     ∪ predicted). A race that only some schedules surface and seed 0's
     predictive run missed is exactly the false negative the mode exists
     to close.

   N defaults to 25; RMA_PREDICTIVE_SEEDS overrides (CI uses 8). *)

open Rma_analysis
open Rma_store
open Rma_report
open Rma_microbench
module Json = Rma_util.Json

let mk_tool ~nprocs ?jobs ~predictive () =
  Rma_analyzer.create ~nprocs ~mode:Tool.Collect ?jobs ~predictive Rma_analyzer.Contribution

let with_recorder f =
  Flight_recorder.enable ();
  Fun.protect ~finally:Flight_recorder.disable f

let sweep_seeds () =
  match Sys.getenv_opt "RMA_PREDICTIVE_SEEDS" with
  | None -> 25
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 25)

let site_str (s : Runner.race_site) =
  Printf.sprintf "%s:%d %s" s.Runner.site_file s.Runner.site_line s.Runner.site_op

let pair_str (a, b) = Printf.sprintf "%s <-> %s" (site_str a) (site_str b)

(* The full labeled corpus: 27 base+hybrid kernels plus the prd_
   schedulable-race family. *)
let labeled_kernels () =
  Scenario.Kernel.all @ Scenario.Kernel.hybrid @ Scenario.Kernel.predictive

(* The witness reordering attached to the predicted report for [pair],
   for soundness-failure messages. *)
let reorder_for reports pair =
  List.find_map
    (fun (r : Report.t) ->
      match Runner.pairs_of_reports [ r ] with
      | [ p ] when Runner.pair_sites p = pair -> (
          match r.Report.provenance.Report.witness with
          | Some w -> Some w.Report.w_reorder
          | None -> None)
      | _ -> None)
    reports

(* --- prd_ corpus shape ----------------------------------------------- *)

let test_prd_corpus_shape () =
  let prd = Scenario.Kernel.predictive in
  Alcotest.(check bool) "at least 6 prd kernels" true (List.length prd >= 6);
  let names = List.map (fun k -> k.Scenario.Kernel.k_name) prd in
  Alcotest.(check int) "prd names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " carries the prd_ prefix") true
        (String.length n > 4 && String.sub n 0 4 = "prd_");
      Alcotest.(check bool) (n ^ " findable") true (Scenario.Kernel.find n <> None))
    names;
  Alcotest.(check bool) "both labels represented" true
    (List.exists (fun k -> k.Scenario.Kernel.k_racy) prd
    && List.exists (fun k -> not k.Scenario.Kernel.k_racy) prd)

(* --- satellite: the 27-kernel label matrix under --predictive --------- *)

(* Predictive mode must not cost a single label on the schedule-stable
   corpus: every base and hybrid kernel keeps its ground-truth verdict at
   jobs 1, 2 and 4, and produces no predicted pairs at all — their
   conflicts live inside one epoch, where the weak trees hold exactly
   the observed content and every conflict dedups against the observed
   report. *)
let test_matrix_labels_under_predictive () =
  let kernels = Scenario.Kernel.all @ Scenario.Kernel.hybrid in
  Alcotest.(check int) "base+hybrid kernel matrix has 27 kernels" 27 (List.length kernels);
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      List.iter
        (fun jobs ->
          let tool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~jobs ~predictive:true () in
          let v = Runner.run_kernel ~tool k in
          Alcotest.(check bool)
            (Printf.sprintf "%s (predictive, jobs=%d)" k.Scenario.Kernel.k_name jobs)
            k.Scenario.Kernel.k_racy v.Runner.k_flagged;
          List.iter
            (fun p ->
              if p.Runner.pair_predicted then
                Alcotest.failf "%s (predictive, jobs=%d): unexpected predicted pair %s"
                  k.Scenario.Kernel.k_name jobs
                  (pair_str (Runner.pair_sites p)))
            v.Runner.k_pairs)
        [ 1; 2; 4 ])
    kernels

(* --- prd_ labels ------------------------------------------------------ *)

(* The gap predictive mode closes is real: at interleave seed 0 the
   observed analysis misses every racy prd kernel (their conflicting
   epochs happen not to overlap under that schedule), while the
   predictive analysis flags each with predicted-only pairs. Safe
   controls stay silent under both. *)
let test_prd_labels_seed0 () =
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      let run predictive =
        let tool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~predictive () in
        Runner.run_kernel ~interleave_seed:0 ~tool k
      in
      let obs = run false and prd = run true in
      Alcotest.(check bool)
        (k.Scenario.Kernel.k_name ^ " (predictive seed 0)")
        k.Scenario.Kernel.k_racy prd.Runner.k_flagged;
      if k.Scenario.Kernel.k_racy then begin
        Alcotest.(check bool)
          (k.Scenario.Kernel.k_name ^ " observed-only misses it at seed 0")
          false obs.Runner.k_flagged;
        Alcotest.(check bool)
          (k.Scenario.Kernel.k_name ^ " prediction carries a witness")
          true
          (List.exists
             (fun (r : Report.t) ->
               r.Report.provenance.Report.predicted
               && r.Report.provenance.Report.witness <> None)
             prd.Runner.k_reports)
      end
      else begin
        Alcotest.(check int)
          (k.Scenario.Kernel.k_name ^ " safe control reports nothing (observed)")
          0
          (List.length obs.Runner.k_reports);
        Alcotest.(check int)
          (k.Scenario.Kernel.k_name ^ " safe control reports nothing (predictive)")
          0
          (List.length prd.Runner.k_reports)
      end)
    Scenario.Kernel.predictive

(* --- direction (a): soundness ----------------------------------------- *)

let test_soundness_sweep () =
  let n = sweep_seeds () in
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      let ptool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~predictive:true () in
      let v0 = Runner.run_kernel ~interleave_seed:0 ~tool:ptool k in
      let predicted = List.filter (fun p -> p.Runner.pair_predicted) v0.Runner.k_pairs in
      if predicted <> [] then begin
        let otool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~predictive:false () in
        let observed = Hashtbl.create 8 in
        for seed = 0 to n - 1 do
          let v = Runner.run_kernel ~interleave_seed:seed ~tool:otool k in
          List.iter
            (fun p -> Hashtbl.replace observed (Runner.pair_sites p) ())
            v.Runner.k_pairs
        done;
        List.iter
          (fun p ->
            let pair = Runner.pair_sites p in
            if not (Hashtbl.mem observed pair) then
              Alcotest.failf
                "%s: predicted race %s was not observed under any of %d interleave seeds — \
                 the prediction looks unrealisable.\nclaimed witness: %s"
                k.Scenario.Kernel.k_name (pair_str pair) n
                (Option.value ~default:"<none>" (reorder_for v0.Runner.k_reports pair)))
          predicted
      end)
    (labeled_kernels ())

(* --- direction (b): completeness -------------------------------------- *)

let test_completeness_sweep () =
  let n = sweep_seeds () in
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      let ptool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~predictive:true () in
      let v0 = Runner.run_kernel ~interleave_seed:0 ~tool:ptool k in
      (* Seed 0's full report: observed ∪ predicted. *)
      let union0 = List.map Runner.pair_sites v0.Runner.k_pairs in
      let otool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~predictive:false () in
      for seed = 0 to n - 1 do
        let v = Runner.run_kernel ~interleave_seed:seed ~tool:otool k in
        List.iter
          (fun p ->
            let pair = Runner.pair_sites p in
            if not (List.mem pair union0) then
              Alcotest.failf
                "%s: race %s observed at interleave seed %d is missing from seed 0's \
                 predictive report — predictive mode has a schedule-dependent false negative"
                k.Scenario.Kernel.k_name (pair_str pair) seed)
          v.Runner.k_pairs
      done)
    (labeled_kernels ())

(* --- 154-code suite differential --------------------------------------- *)

(* Every scenario of the Table 3 corpus runs its two operations inside a
   single lock_all epoch, so the weak trees never diverge from the
   observed ones: predictive mode must report exactly the observed pair
   set and nothing predicted, on all 154 codes. *)
let test_scenario_suite_differential () =
  let obs_tool = mk_tool ~nprocs:3 ~predictive:false () in
  let prd_tool = mk_tool ~nprocs:3 ~predictive:true () in
  List.iter
    (fun (s : Scenario.t) ->
      let vo = Runner.run ~tool:obs_tool s in
      let vp = Runner.run ~tool:prd_tool s in
      let po = Runner.pairs_of_reports vo.Runner.reports in
      let pp = Runner.pairs_of_reports vp.Runner.reports in
      List.iter
        (fun p ->
          if p.Runner.pair_predicted then
            Alcotest.failf "%s: unexpected predicted pair %s" s.Scenario.name
              (pair_str (Runner.pair_sites p)))
        pp;
      if po <> pp then
        Alcotest.failf "%s: predictive pair set differs from observed (%d vs %d pairs)"
          s.Scenario.name (List.length pp) (List.length po))
    Scenario.all

(* --- export byte-compatibility ----------------------------------------- *)

let test_observed_exports_byte_identical () =
  let k = List.find (fun k -> k.Scenario.Kernel.k_racy) Scenario.Kernel.all in
  let export predictive =
    let tool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~predictive () in
    let v = Runner.run_kernel ~interleave_seed:0 ~tool k in
    v.Runner.k_reports
  in
  let obs = with_recorder (fun () -> export false) in
  let prd = with_recorder (fun () -> export true) in
  Alcotest.(check bool) "kernel races" true (obs <> []);
  let observed_of_prd =
    List.filter (fun (r : Report.t) -> not r.Report.provenance.Report.predicted) prd
  in
  Alcotest.(check string)
    "observed JSON byte-identical with the predictive flag on"
    (Json.to_string (Race_export.to_json ~generator:"test" obs))
    (Json.to_string (Race_export.to_json ~generator:"test" observed_of_prd));
  Alcotest.(check string)
    "observed SARIF byte-identical with the predictive flag on"
    (Json.to_string (Race_export.to_sarif ~generator:"test" obs))
    (Json.to_string (Race_export.to_sarif ~generator:"test" observed_of_prd));
  Alcotest.(check int) "observed-only reports stay on schema v2" 2
    (Race_export.used_schema_version obs)

let predicted_race_reports () =
  match Scenario.Kernel.find "prd_lockall_remote_epochs_put_put_race" with
  | None -> Alcotest.fail "prd kernel missing"
  | Some k ->
      let tool = mk_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~predictive:true () in
      let v = Runner.run_kernel ~interleave_seed:0 ~tool k in
      v.Runner.k_reports

let test_predicted_schema_and_round_trip () =
  let reports = with_recorder predicted_race_reports in
  Alcotest.(check bool) "a predicted race is reported" true
    (List.exists (fun (r : Report.t) -> r.Report.provenance.Report.predicted) reports);
  Alcotest.(check int) "predicted reports bump the schema to v3" 3
    (Race_export.used_schema_version reports);
  let json = Race_export.to_json ~generator:"test" reports in
  match Race_export.of_json json with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok loaded ->
      Alcotest.(check int) "round trip keeps every report" (List.length reports)
        (List.length loaded);
      List.iter2
        (fun (a : Report.t) (b : Report.t) ->
          Alcotest.(check bool) "predicted flag round-trips" a.Report.provenance.Report.predicted
            b.Report.provenance.Report.predicted;
          Alcotest.(check bool) "witness round-trips" true
            (a.Report.provenance.Report.witness = b.Report.provenance.Report.witness))
        reports loaded;
      Alcotest.(check string) "byte-identical re-export" (Json.to_string json)
        (Json.to_string (Race_export.to_json ~generator:"test" loaded))

(* --- golden ------------------------------------------------------------ *)

let test_predicted_json_matches_golden () =
  let reports = with_recorder predicted_race_reports in
  let json = Json.to_string (Race_export.to_json ~generator:"test" reports) ^ "\n" in
  (* GOLDEN_OUT_PREDICTED=/abs/path (or GOLDEN_OUT_DIR, see
     test/golden_regen.ml) regenerates the golden file instead of
     comparing. *)
  Golden_regen.check ~name:"race_predicted.json"
    ~what:"predicted race JSON matches golden file" json

let suite =
  [
    Alcotest.test_case "prd corpus shape" `Quick test_prd_corpus_shape;
    Alcotest.test_case "27-kernel matrix labels under predictive (jobs 1/2/4)" `Slow
      test_matrix_labels_under_predictive;
    Alcotest.test_case "prd labels at seed 0: predictive closes the observed gap" `Quick
      test_prd_labels_seed0;
    Alcotest.test_case "soundness: every prediction observed under some seed" `Slow
      test_soundness_sweep;
    Alcotest.test_case "completeness: every observed race predicted at seed 0" `Slow
      test_completeness_sweep;
    Alcotest.test_case "154-code suite: predictive is a no-op" `Slow
      test_scenario_suite_differential;
    Alcotest.test_case "observed exports byte-identical under the flag" `Quick
      test_observed_exports_byte_identical;
    Alcotest.test_case "predicted reports: schema v3 and JSON round trip" `Quick
      test_predicted_schema_and_round_trip;
    Alcotest.test_case "predicted race JSON matches golden" `Quick
      test_predicted_json_matches_golden;
  ]
