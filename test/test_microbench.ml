open Rma_microbench
open Rma_analysis

let legacy () = Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect Rma_analyzer.Legacy
let contribution () = Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect Rma_analyzer.Contribution
let must () = Must_rma.create ~nprocs:3 ()

let test_suite_shape () =
  (* §5.2: "The suite contains 154 codes in total and is composed of 47
     codes containing a data race and 107 safe codes." *)
  Alcotest.(check int) "total" 154 Scenario.count_total;
  Alcotest.(check int) "racy" 47 Scenario.count_racy;
  Alcotest.(check int) "safe" 107 Scenario.count_safe

let test_names_unique () =
  let names = List.map (fun s -> s.Scenario.name) Scenario.all in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_named_codes_exist () =
  (* The four Table 2 codes. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Scenario.find name <> None))
    [
      "ll_get_load_outwindow_origin_race";
      "ll_get_get_inwindow_origin_safe";
      "ll_get_load_inwindow_origin_race";
      "ll_load_get_inwindow_origin_safe";
    ]

let test_ground_truth_consistent_with_names () =
  List.iter
    (fun s ->
      let expect_racy =
        let n = s.Scenario.name in
        String.length n >= 5 && String.sub n (String.length n - 4) 4 = "race"
      in
      Alcotest.(check bool) s.Scenario.name expect_racy s.Scenario.racy)
    Scenario.all

let test_disjoint_twins_safe () =
  List.iter
    (fun s ->
      if s.Scenario.variant = Scenario.Disjoint then
        Alcotest.(check bool) s.Scenario.name false s.Scenario.racy)
    Scenario.all

let run_one tool name =
  match Scenario.find name with
  | None -> Alcotest.failf "scenario %s not found" name
  | Some s -> Runner.run ~tool s

let test_table2_verdicts () =
  (* Table 2, all twelve cells. *)
  let check tool_name tool name expected =
    let v = run_one tool name in
    Alcotest.(check bool) (Printf.sprintf "%s on %s" tool_name name) expected v.Runner.flagged
  in
  let lg = legacy () and ct = contribution () and mu = must () in
  check "legacy" lg "ll_get_load_outwindow_origin_race" true;
  check "legacy" lg "ll_get_get_inwindow_origin_safe" false;
  check "legacy" lg "ll_get_load_inwindow_origin_race" true;
  check "legacy" lg "ll_load_get_inwindow_origin_safe" true;
  (* false positive *)
  check "must" mu "ll_get_load_outwindow_origin_race" true;
  check "must" mu "ll_get_get_inwindow_origin_safe" false;
  check "must" mu "ll_get_load_inwindow_origin_race" false;
  (* stack-array false negative *)
  check "must" mu "ll_load_get_inwindow_origin_safe" false;
  check "contribution" ct "ll_get_load_outwindow_origin_race" true;
  check "contribution" ct "ll_get_get_inwindow_origin_safe" false;
  check "contribution" ct "ll_get_load_inwindow_origin_race" true;
  check "contribution" ct "ll_load_get_inwindow_origin_safe" false

let test_table3_legacy () =
  let c = Runner.score ~tool:(legacy ()) Scenario.all in
  (* The paper's Table 3 prints TP=41/TN=107 alongside FP=6/FN=0, which
     cannot all hold over 47 racy + 107 safe codes; we pin the
     self-consistent version of its narrative: the six order-sensitivity
     false positives land on safe codes (cf. Table 2's
     ll_load_get_inwindow_origin_safe) and no race is missed. *)
  Alcotest.(check int) "FP" 6 c.Runner.fp;
  Alcotest.(check int) "FN" 0 c.Runner.fn;
  Alcotest.(check int) "TP" 47 c.Runner.tp;
  Alcotest.(check int) "TN" 101 c.Runner.tn

let test_table3_must () =
  let c = Runner.score ~tool:(must ()) Scenario.all in
  Alcotest.(check int) "FP" 0 c.Runner.fp;
  Alcotest.(check int) "FN" 15 c.Runner.fn;
  Alcotest.(check int) "TP" 32 c.Runner.tp;
  Alcotest.(check int) "TN" 107 c.Runner.tn

let test_table3_contribution () =
  let c = Runner.score ~tool:(contribution ()) Scenario.all in
  Alcotest.(check int) "FP" 0 c.Runner.fp;
  Alcotest.(check int) "FN" 0 c.Runner.fn;
  Alcotest.(check int) "TP" 47 c.Runner.tp;
  Alcotest.(check int) "TN" 107 c.Runner.tn

let test_legacy_fps_are_the_order_sensitivity_codes () =
  let tool = legacy () in
  let flagged_safe =
    List.filter
      (fun s -> (not s.Scenario.racy) && (Runner.run ~tool s).Runner.flagged)
      Scenario.all
  in
  let expected =
    List.sort String.compare
      (List.map (fun s -> s.Scenario.name) Scenario.expected_legacy_false_positives)
  in
  Alcotest.(check (list string)) "exact FP set" expected
    (List.sort String.compare (List.map (fun s -> s.Scenario.name) flagged_safe))

let test_must_fns_are_the_stack_codes () =
  let tool = must () in
  let missed =
    List.filter
      (fun s -> s.Scenario.racy && not (Runner.run ~tool s).Runner.flagged)
      Scenario.all
  in
  let expected =
    List.sort String.compare
      (List.map (fun s -> s.Scenario.name) Scenario.expected_must_false_negatives)
  in
  Alcotest.(check (list string)) "exact FN set" expected
    (List.sort String.compare (List.map (fun s -> s.Scenario.name) missed))

let test_verdicts_stable_across_seeds () =
  (* Cross-process conflicts are direction-independent, so the verdict
     must not depend on the scheduler interleaving. Spot-check a sample
     of scenarios across several seeds. *)
  let tool = contribution () in
  let sample = List.filteri (fun i _ -> i mod 13 = 0) Scenario.all in
  List.iter
    (fun s ->
      let verdicts = List.map (fun seed -> (Runner.run ~seed ~tool s).Runner.flagged) [ 1; 7; 23 ] in
      Alcotest.(check bool) s.Scenario.name true
        (List.for_all (fun v -> v = List.hd verdicts) verdicts))
    sample

let test_report_locations_point_at_scenario_source () =
  let tool = contribution () in
  let v = run_one tool "ll_get_load_outwindow_origin_race" in
  match v.Runner.reports with
  | [] -> Alcotest.fail "expected a report"
  | r :: _ ->
      let file = r.Report.incoming.Rma_access.Access.debug.Rma_access.Debug_info.file in
      Alcotest.(check string) "file name from scenario" "ll_get_load_outwindow_origin_race.c" file

let suite =
  [
    Alcotest.test_case "suite shape 154/47/107" `Quick test_suite_shape;
    Alcotest.test_case "scenario names unique" `Quick test_names_unique;
    Alcotest.test_case "Table 2 codes exist" `Quick test_named_codes_exist;
    Alcotest.test_case "names encode ground truth" `Quick test_ground_truth_consistent_with_names;
    Alcotest.test_case "disjoint twins are safe" `Quick test_disjoint_twins_safe;
    Alcotest.test_case "Table 2 verdicts" `Quick test_table2_verdicts;
    Alcotest.test_case "Table 3: legacy row" `Slow test_table3_legacy;
    Alcotest.test_case "Table 3: MUST-RMA row" `Slow test_table3_must;
    Alcotest.test_case "Table 3: contribution row" `Slow test_table3_contribution;
    Alcotest.test_case "legacy FPs are the order-sensitivity codes" `Slow
      test_legacy_fps_are_the_order_sensitivity_codes;
    Alcotest.test_case "MUST FNs are the stack codes" `Slow test_must_fns_are_the_stack_codes;
    Alcotest.test_case "verdicts stable across seeds" `Quick test_verdicts_stable_across_seeds;
    Alcotest.test_case "reports point at scenario source" `Quick
      test_report_locations_point_at_scenario_source;
  ]

let test_c_source_emission () =
  (* Every scenario renders to a plausible C translation unit. *)
  List.iter
    (fun s ->
      let src = C_source.emit s in
      let contains sub =
        let n = String.length src and m = String.length sub in
        let rec go i = i + m <= n && (String.sub src i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (s.Scenario.name ^ " has main") true (contains "int main");
      Alcotest.(check bool) (s.Scenario.name ^ " has epoch") true
        (contains "MPI_Win_lock_all" && contains "MPI_Win_unlock_all");
      Alcotest.(check bool)
        (s.Scenario.name ^ " ground truth in header")
        true
        (contains (if s.Scenario.racy then "DATA RACE" else "safe"));
      let has_rma = contains "MPI_Put" || contains "MPI_Get" in
      Alcotest.(check bool) (s.Scenario.name ^ " has an RMA op") true has_rma)
    Scenario.all

let test_c_source_stack_marker () =
  match Scenario.find "ll_get_load_inwindow_origin_race" with
  | None -> Alcotest.fail "missing scenario"
  | Some s ->
      let src = C_source.emit s in
      let contains sub =
        let n = String.length src and m = String.length sub in
        let rec go i = i + m <= n && (String.sub src i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "stack window array" true
        (contains "int win_mem[16]")

let suite =
  suite
  @ [
      Alcotest.test_case "C source emission" `Quick test_c_source_emission;
      Alcotest.test_case "C source stack marker" `Quick test_c_source_stack_marker;
    ]

(* --- RMARaceBench-shaped kernel corpus (ISSUE 3) --- *)

let kernel_tool ~nprocs ~batch () =
  Rma_analyzer.create ~nprocs ~mode:Tool.Collect ~batch_inserts:batch Rma_analyzer.Contribution

let test_kernel_corpus_shape () =
  let kernels = Scenario.Kernel.all in
  Alcotest.(check bool) "at least 10 kernels" true (List.length kernels >= 10);
  let names = List.map (fun k -> k.Scenario.Kernel.k_name) kernels in
  Alcotest.(check int) "kernel names unique"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  let has pred = List.exists pred kernels in
  let open Scenario.Kernel in
  Alcotest.(check bool) "has racy kernels" true (has (fun k -> k.k_racy));
  Alcotest.(check bool) "has safe kernels" true (has (fun k -> not k.k_racy));
  Alcotest.(check bool) "has fence sync" true (has (fun k -> k.k_sync = Fence));
  Alcotest.(check bool) "has lock sync" true (has (fun k -> k.k_sync = Lock_all));
  Alcotest.(check bool) "has flush sync" true (has (fun k -> k.k_sync = Flush_only));
  Alcotest.(check bool) "has remote conflicts" true (has (fun k -> k.k_locality = Remote));
  Alcotest.(check bool) "has local-buffer conflicts" true
    (has (fun k -> k.k_locality = Local_buffer))

(* The table-driven label check: the analyzer must reproduce every
   ground-truth verdict, with and without insert batching, and the two
   modes must agree report for report. *)
let test_kernel_labels () =
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      let run batch =
        let tool = kernel_tool ~nprocs:k.k_nprocs ~batch () in
        Runner.run_kernel ~tool k
      in
      let plain = run false and batched = run true in
      Alcotest.(check bool) (k.k_name ^ " (unbatched)") k.k_racy plain.Runner.k_flagged;
      Alcotest.(check bool) (k.k_name ^ " (batched)") k.k_racy batched.Runner.k_flagged;
      Alcotest.(check int)
        (k.k_name ^ " report count agrees")
        (List.length plain.Runner.k_reports)
        (List.length batched.Runner.k_reports);
      List.iter2
        (fun (a : Report.t) (b : Report.t) ->
          Alcotest.(check bool)
            (k.k_name ^ " report accesses agree")
            true
            (Rma_access.Access.equal a.Report.existing b.Report.existing
            && Rma_access.Access.equal a.Report.incoming b.Report.incoming))
        plain.Runner.k_reports batched.Runner.k_reports)
    Scenario.Kernel.all

let test_kernel_verdicts_stable_across_seeds () =
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      List.iter
        (fun seed ->
          let tool = kernel_tool ~nprocs:k.k_nprocs ~batch:true () in
          let v = Runner.run_kernel ~seed ~tool k in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d" k.k_name seed)
            k.k_racy v.Runner.k_flagged)
        [ 1; 7; 42 ])
    Scenario.Kernel.all

let suite =
  suite
  @ [
      Alcotest.test_case "kernel corpus shape" `Quick test_kernel_corpus_shape;
      Alcotest.test_case "kernel labels, batched and unbatched" `Quick test_kernel_labels;
      Alcotest.test_case "kernel verdicts stable across seeds" `Slow
        test_kernel_verdicts_stable_across_seeds;
    ]

(* --- Hybrid MPI+threads kernels (PR 8) --- *)

let hybrid_tool ~nprocs ~batch ~jobs () =
  Rma_analyzer.create ~nprocs ~mode:Tool.Collect ~batch_inserts:batch ~jobs
    Rma_analyzer.Contribution

let test_hybrid_corpus_shape () =
  let kernels = Scenario.Kernel.hybrid in
  Alcotest.(check bool) "at least 12 hybrid kernels" true (List.length kernels >= 12);
  let names = List.map (fun k -> k.Scenario.Kernel.k_name) kernels in
  Alcotest.(check int) "hybrid names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " has hyb_ prefix") true
        (String.length n > 4 && String.sub n 0 4 = "hyb_");
      Alcotest.(check bool) (n ^ " findable") true (Scenario.Kernel.find n <> None))
    names;
  let open Scenario.Kernel in
  let has pred = List.exists pred kernels in
  Alcotest.(check bool) "has racy hybrid kernels" true (has (fun k -> k.k_racy));
  Alcotest.(check bool) "has safe hybrid kernels" true (has (fun k -> not k.k_racy));
  Alcotest.(check bool) "has fence sync" true (has (fun k -> k.k_sync = Fence));
  Alcotest.(check bool) "has lock_all sync" true (has (fun k -> k.k_sync = Lock_all));
  Alcotest.(check bool) "has local-buffer conflicts" true
    (has (fun k -> k.k_locality = Local_buffer))

let test_hybrid_kernels_spawn_threads () =
  (* Every hybrid kernel genuinely exercises the thread layer. *)
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      let r =
        Mpi_sim.Runtime.run ~nprocs:k.Scenario.Kernel.k_nprocs ~seed:11
          k.Scenario.Kernel.k_program
      in
      Alcotest.(check bool)
        (k.Scenario.Kernel.k_name ^ " spawns a thread")
        true
        (r.Mpi_sim.Runtime.threads_spawned > 0))
    Scenario.Kernel.hybrid

(* The table-driven hybrid label check: ground truth must hold batched
   and unbatched, sequential and sharded, for each CI interleaving
   seed. *)
let test_hybrid_labels () =
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      List.iter
        (fun interleave_seed ->
          List.iter
            (fun (batch, jobs) ->
              let tool = hybrid_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~batch ~jobs () in
              let v = Runner.run_kernel ?interleave_seed ~tool k in
              Alcotest.(check bool)
                (Printf.sprintf "%s (batch=%b jobs=%d interleave=%s)" k.Scenario.Kernel.k_name
                   batch jobs
                   (match interleave_seed with None -> "-" | Some i -> string_of_int i))
                k.Scenario.Kernel.k_racy v.Runner.k_flagged)
            [ (false, 1); (true, 1); (false, 4); (true, 4) ])
        [ None; Some 13; Some 29 ])
    Scenario.Kernel.hybrid

let test_hybrid_race_reports_name_threads () =
  (* A hybrid race whose incoming side is a spawned thread's access must
     say so in the export pipeline's inputs. *)
  match Scenario.Kernel.find "hyb_lockall_local_tstore_put_unordered_race" with
  | None -> Alcotest.fail "missing hybrid kernel"
  | Some k ->
      let tool = hybrid_tool ~nprocs:k.Scenario.Kernel.k_nprocs ~batch:false ~jobs:1 () in
      let v = Runner.run_kernel ~tool k in
      Alcotest.(check bool) "flagged" true v.Runner.k_flagged;
      let names_thread (r : Report.t) =
        r.Report.existing.Rma_access.Access.thread.Rma_access.Access.tid <> 0
        || r.Report.incoming.Rma_access.Access.thread.Rma_access.Access.tid <> 0
      in
      Alcotest.(check bool) "some report carries a nonzero thread id" true
        (List.exists names_thread v.Runner.k_reports);
      List.iter
        (fun (r : Report.t) ->
          if names_thread r
             && r.Report.existing.Rma_access.Access.issuer
                = r.Report.incoming.Rma_access.Access.issuer
          then begin
            let cell = Report.matrix_cell r in
            let suffix = "(same process, different threads)" in
            let n = String.length cell and m = String.length suffix in
            Alcotest.(check bool)
              (Printf.sprintf "matrix cell %S names the threads" cell)
              true
              (n >= m && String.sub cell (n - m) m = suffix)
          end)
        v.Runner.k_reports

let suite =
  suite
  @ [
      Alcotest.test_case "hybrid corpus shape" `Quick test_hybrid_corpus_shape;
      Alcotest.test_case "hybrid kernels spawn threads" `Quick test_hybrid_kernels_spawn_threads;
      Alcotest.test_case "hybrid labels (batch x jobs x interleave)" `Slow test_hybrid_labels;
      Alcotest.test_case "hybrid race reports name threads" `Quick
        test_hybrid_race_reports_name_threads;
    ]
