open Rma_access
open Rma_store

(* Model-based testing: a deliberately naive per-byte reference model of
   the paper's semantics — every byte keeps its dominant access, the
   conflict rule is checked byte by byte against the full history of
   dominant accesses — and the real stores must agree with it.

   The model mirrors the abstraction the paper's algorithm commits to
   (one dominant access per byte, Table 1), not ideal race semantics;
   the dominance-absorption imprecision is therefore shared by model and
   implementation, which is exactly what makes them comparable. *)

module Oracle = struct
  type t = { bytes : (int, Access.t) Hashtbl.t; order_aware : bool }

  let create ?(order_aware = true) () = { bytes = Hashtbl.create 256; order_aware }

  let insert t access =
    let iv = access.Access.interval in
    let conflict = ref None in
    for b = Interval.lo iv to Interval.hi iv do
      if !conflict = None then begin
        match Hashtbl.find_opt t.bytes b with
        | Some existing
          when Race_rule.races ~order_aware:t.order_aware ~existing ~incoming:access ->
            conflict := Some existing
        | _ -> ()
      end
    done;
    match !conflict with
    | Some existing -> Store_intf.Race_detected { existing; incoming = access }
    | None ->
        for b = Interval.lo iv to Interval.hi iv do
          let winner =
            match Hashtbl.find_opt t.bytes b with
            | None -> Access.with_interval access (Interval.byte b)
            | Some existing ->
                Access.dominate ~older:existing ~newer:access (Interval.byte b)
          in
          Hashtbl.replace t.bytes b winner
        done;
        Store_intf.Inserted

  let kind_at t b = Option.map (fun a -> a.Access.kind) (Hashtbl.find_opt t.bytes b)
end

let dbg line = Debug_info.make ~file:"oracle.c" ~line ~operation:"op"

let build ?(single_issuer = false) program =
  List.mapi
    (fun i (lo, len, k, line, issuer) ->
      let kind = List.nth Access_kind.all k in
      let issuer = if single_issuer || Access_kind.is_local kind then 0 else issuer in
      Access.make
        ~interval:(Interval.make ~lo ~hi:(lo + len - 1))
        ~kind ~issuer ~seq:(i + 1) ~debug:(dbg line))
    program

let access_gen =
  QCheck.Gen.(
    let* lo = int_range 0 100 in
    let* len = int_range 1 16 in
    let* k = int_range 0 3 in
    let* line = int_range 1 4 in
    let* issuer = int_range 0 2 in
    return (lo, len, k, line, issuer))

let arb_program =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (a, b, c, d, e) -> Printf.sprintf "(%d,%d,%d,%d,%d)" a b c d e) l))
    QCheck.Gen.(list_size (int_range 1 50) access_gen)

(* Run both and compare the per-access verdict stream. Racy accesses are
   rejected by both (not inserted), so states stay comparable. *)
let verdict_stream insert accesses =
  List.map
    (fun a ->
      match insert a with Store_intf.Inserted -> false | Store_intf.Race_detected _ -> true)
    accesses

let prop_disjoint_matches_oracle =
  QCheck.Test.make ~name:"Disjoint_store verdicts match the per-byte model" ~count:500
    arb_program
    (fun program ->
      let accesses = build program in
      let oracle = Oracle.create () in
      let store = Disjoint_store.create () in
      verdict_stream (Oracle.insert oracle) accesses
      = verdict_stream (Disjoint_store.insert store) accesses)

let prop_disjoint_state_matches_oracle =
  QCheck.Test.make ~name:"Disjoint_store per-byte kinds match the model" ~count:300 arb_program
    (fun program ->
      let accesses = build program in
      let oracle = Oracle.create () in
      let store = Disjoint_store.create () in
      List.iter (fun a -> ignore (Oracle.insert oracle a)) accesses;
      List.iter (fun a -> ignore (Disjoint_store.insert store a)) accesses;
      let store_kind_at b =
        List.find_map
          (fun a ->
            if Interval.contains a.Access.interval b then Some a.Access.kind else None)
          (Disjoint_store.to_list store)
      in
      let ok = ref true in
      for b = 0 to 120 do
        match (Oracle.kind_at oracle b, store_kind_at b) with
        | None, None -> ()
        | Some ka, Some kb when Access_kind.equal ka kb -> ()
        | _ -> ok := false
      done;
      !ok)

let prop_order_blind_matches_oracle =
  QCheck.Test.make ~name:"order-blind store matches the order-blind model" ~count:300 arb_program
    (fun program ->
      let accesses = build program in
      let oracle = Oracle.create ~order_aware:false () in
      let store = Disjoint_store.create ~order_aware:false () in
      verdict_stream (Oracle.insert oracle) accesses
      = verdict_stream (Disjoint_store.insert store) accesses)

let prop_strided_matches_oracle =
  QCheck.Test.make ~name:"Strided_store verdicts match the per-byte model" ~count:300 arb_program
    (fun program ->
      let accesses = build program in
      let oracle = Oracle.create () in
      let store = Strided_store.create () in
      verdict_stream (Oracle.insert oracle) accesses
      = verdict_stream (Strided_store.insert store) accesses)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_disjoint_matches_oracle;
    QCheck_alcotest.to_alcotest prop_disjoint_state_matches_oracle;
    QCheck_alcotest.to_alcotest prop_order_blind_matches_oracle;
    QCheck_alcotest.to_alcotest prop_strided_matches_oracle;
  ]
