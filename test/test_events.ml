open Rma_access
open Rma_store

(* Rma_obs.Events: the structured JSON-lines journal — level filtering,
   the in-memory ring, sink files, golden stability of a seeded fault
   run, the Json round-trip of every emitted line, the telemetry
   collector, and the /metrics endpoint smoke test. *)

module Obs = Rma_obs.Obs
module Events = Rma_obs.Events
module Telemetry = Rma_obs.Telemetry
module Serve = Rma_obs.Serve
module Json = Rma_util.Json
module Plan = Rma_fault.Plan
module Budget = Rma_fault.Budget

(* Events shares Obs's process-global registry: pin a run id and a clean
   ring for the duration, restore the disabled default after. *)
let with_events ?(level = Events.Info) f =
  Obs.enable ();
  Obs.reset ();
  Events.close ();
  Events.clear ();
  Events.set_level level;
  Events.set_run_id "run-test";
  Fun.protect
    ~finally:(fun () ->
      Events.close ();
      Events.clear ();
      Events.set_level Events.Info;
      Obs.disable ();
      Obs.reset ())
    f

let with_plan plan f =
  let saved = Rma_fault.plan () in
  Rma_fault.install plan;
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Rma_fault.install p | None -> Rma_fault.clear ())
    f

(* --- levels ---------------------------------------------------------- *)

let test_levels () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Events.level_to_string l ^ " round-trips")
        true
        (Events.level_of_string (Events.level_to_string l) = Some l))
    [ Events.Debug; Events.Info; Events.Warn; Events.Error ];
  Alcotest.(check (option unit)) "unknown level rejected" None
    (Option.map ignore (Events.level_of_string "shout"));
  Alcotest.(check bool) "severity is strictly increasing" true
    (Events.severity Events.Debug < Events.severity Events.Info
    && Events.severity Events.Info < Events.severity Events.Warn
    && Events.severity Events.Warn < Events.severity Events.Error)

(* --- ring + filtering ------------------------------------------------ *)

let test_ring_and_filter () =
  with_events ~level:Events.Warn @@ fun () ->
  Events.emit ~kv:[ ("event", "ignored") ] Events.Info "test";
  Alcotest.(check int) "below-level event dropped" 0 (List.length (Events.recent ()));
  Events.emit ~kv:[ ("event", "kept") ] Events.Warn "test";
  (match Events.recent () with
  | [ ev ] ->
      Alcotest.(check string) "component" "test" ev.Events.component;
      Alcotest.(check string) "run id pinned" "run-test" ev.Events.run_id;
      Alcotest.(check int) "main domain is not a shard" (-1) ev.Events.shard;
      Alcotest.(check int) "no covering span" 0 ev.Events.span_id;
      Alcotest.(check (list (pair string string))) "kv" [ ("event", "kept") ] ev.Events.kv
  | l -> Alcotest.failf "expected one buffered event, got %d" (List.length l));
  (* The ring keeps the newest [cap] events, oldest first. *)
  Events.set_ring_cap 4;
  for i = 1 to 10 do
    Events.emit ~kv:[ ("i", string_of_int i) ] Events.Warn "test"
  done;
  let kept = List.map (fun ev -> List.assoc "i" ev.Events.kv) (Events.recent ()) in
  Alcotest.(check (list string)) "ring evicts oldest" [ "7"; "8"; "9"; "10" ] kept;
  Events.set_ring_cap 4096;
  (* Disabled registry: emission is a no-op, not a buffer. *)
  Obs.disable ();
  Events.emit Events.Error "test";
  Alcotest.(check int) "disabled emits nothing" 0 (List.length (Events.recent ()));
  Obs.enable ()

(* --- golden journal from a seeded fault run -------------------------- *)

let disjoint_access ~seq lo hi =
  Access.make
    ~interval:(Interval.make ~lo ~hi)
    ~kind:Access_kind.Rma_read ~issuer:1 ~seq
    ~debug:(Debug_info.make ~file:"events.c" ~line:seq ~operation:"MPI_Get")

(* Every journal line opens with the volatile timestamp; the rest of the
   record is deterministic under a pinned run id and plan seed. *)
let scrub_ts line =
  match String.index_opt line ',' with
  | Some i -> {|{"ts":0|} ^ String.sub line i (String.length line - i)
  | None -> line

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* A worker-crash fault plan at jobs=4 plus a budgeted store: the
   journal must contain the crash, the recovery, and the degradation,
   all correlated by the pinned run id, in a deterministic order (all
   of these events are emitted from the submitting thread; worker
   domains only emit Debug spawn events, filtered at Info). *)
let journal_of_seeded_run () =
  let path = Filename.temp_file "rma_events" ".jsonl" in
  with_events @@ fun () ->
  Events.set_run_id "run-golden";
  Events.set_sink path;
  let plan = { Plan.default with Plan.seed = 7; worker_crash = 0.3; max_retries = 2 } in
  with_plan plan (fun () ->
      let engine = Rma_par.create ~jobs:4 () in
      for i = 0 to 15 do
        Rma_par.submit engine ~shard:(i mod 4) (fun () -> ())
      done;
      Rma_par.barrier engine);
  let budget = { Budget.max_nodes = Some 4; max_bytes = None; policy = Budget.Spill_oldest_epoch } in
  let store = Disjoint_store.create ~budget () in
  List.iteri
    (fun i () -> ignore (Disjoint_store.insert store (disjoint_access ~seq:(i + 1) (i * 10) ((i * 10) + 3))))
    (List.init 8 (fun _ -> ()));
  Events.close ();
  let lines = List.map scrub_ts (read_lines path) in
  Sys.remove path;
  lines

let test_golden_journal () =
  let lines = journal_of_seeded_run () in
  let text = String.concat "\n" lines ^ "\n" in
  (* GOLDEN_OUT_EVENTS=/abs/path (or GOLDEN_OUT_DIR, see
     test/golden_regen.ml) regenerates the golden file instead of
     comparing. *)
  Golden_regen.check ~name:"events_journal.jsonl" ~what:"journal matches the golden file" text

let test_journal_correlation () =
  let lines = journal_of_seeded_run () in
  let events =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok j -> j
        | Error e -> Alcotest.failf "journal line is not JSON (%s): %s" e l)
      lines
  in
  let kv name j = Option.bind (Json.member "kv" j) (Json.member name) in
  let of_kind k = List.filter (fun j -> kv "event" j = Some (Json.String k)) events in
  let crashes = of_kind "worker_crash" in
  Alcotest.(check bool) "crash journaled" true (crashes <> []);
  Alcotest.(check bool) "crash resolved" true
    (of_kind "shard_recovery" <> [] || of_kind "sequential_fallback" <> []);
  Alcotest.(check bool) "degradation journaled" true (of_kind "budget_degradation" <> []);
  (* One run id across the whole journal, and crash events carry the
     shard plus the replayable fault coordinates. *)
  List.iter
    (fun j ->
      Alcotest.(check (option string)) "run id correlates" (Some "run-golden")
        (Option.bind (Json.member "run_id" j) Json.to_str))
    events;
  List.iter
    (fun j ->
      let shard = Option.bind (Json.member "shard" j) Json.to_int in
      Alcotest.(check bool) "crash names its shard" true
        (match shard with Some s -> s >= 0 && s < 4 | None -> false);
      Alcotest.(check bool) "crash carries site+ordinal" true
        (kv "site" j <> None && kv "ordinal" j <> None))
    crashes

(* --- every line round-trips through Json ----------------------------- *)

let arb_event =
  let open QCheck in
  let str_gen = Gen.string_size ~gen:Gen.printable (Gen.int_range 0 12) in
  let level_gen = Gen.oneofl [ Events.Debug; Events.Info; Events.Warn; Events.Error ] in
  make
    ~print:(fun ev -> Events.line ev)
    Gen.(
      let* level = level_gen in
      let* component = str_gen in
      let* run_id = str_gen in
      let* shard = int_range (-1) 64 in
      let* span_id = int_range 0 1000 in
      let* kv = list_size (int_range 0 4) (pair str_gen str_gen) in
      return { Events.ts = 0.25; level; component; run_id; shard; span_id; kv })

let prop_line_roundtrips =
  QCheck.Test.make ~name:"journal lines round-trip through Rma_util.Json" ~count:500 arb_event
    (fun ev ->
      match Json.of_string (Events.line ev) with
      | Error _ -> false
      | Ok j ->
          let str name = Option.bind (Json.member name j) Json.to_str in
          let int name = Option.bind (Json.member name j) Json.to_int in
          str "level" = Some (Events.level_to_string ev.Events.level)
          && str "component" = Some ev.Events.component
          && str "run_id" = Some ev.Events.run_id
          && int "shard" = Some ev.Events.shard
          && int "span_id" = Some ev.Events.span_id
          && Option.bind (Json.member "kv" j) Json.to_obj
             = Some (List.map (fun (k, v) -> (k, Json.String v)) ev.Events.kv))

(* --- telemetry ------------------------------------------------------- *)

let test_telemetry_collector () =
  with_events @@ fun () ->
  Telemetry.reset_rate ();
  let before = Telemetry.events_total () in
  let store = Disjoint_store.create () in
  for i = 1 to 100 do
    ignore (Disjoint_store.insert store (disjoint_access ~seq:i (i * 8) ((i * 8) + 3)))
  done;
  Alcotest.(check bool) "store inserts feed the event counter" true
    (Telemetry.events_total () - before >= 100);
  Alcotest.(check bool) "peak RSS is observable" true (Telemetry.peak_rss_bytes () > 0);
  Telemetry.sample ();
  let gauge name =
    match List.find_opt (fun (g : Obs.gauge) -> g.Obs.g_name = name) (Obs.all_gauges ()) with
    | Some g -> g.Obs.g_value
    | None -> Alcotest.failf "gauge %s not registered" name
  in
  Alcotest.(check bool) "telemetry.peak_rss_bytes gauge set" true
    (gauge "telemetry.peak_rss_bytes" > 0.0);
  Alcotest.(check bool) "telemetry.gc_live_words gauge set" true
    (gauge "telemetry.gc_live_words" > 0.0);
  Alcotest.(check bool) "telemetry.events_total gauge counts" true
    (gauge "telemetry.events_total" >= 100.0)

(* --- serve smoke ----------------------------------------------------- *)

let http_get port path =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        match Unix.read sock chunk 0 1024 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      Buffer.contents buf)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_serve_endpoint () =
  with_events @@ fun () ->
  Events.emit ~kv:[ ("event", "probe") ] Events.Info "test";
  let srv = Serve.start ~port:0 in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let port = Serve.port srv in
      Alcotest.(check bool) "ephemeral port resolved" true (port > 0);
      let metrics = http_get port "/metrics" in
      Alcotest.(check bool) "/metrics is 200" true (contains ~sub:"200 OK" metrics);
      Alcotest.(check bool) "/metrics carries the run id" true
        (contains ~sub:{|rma_run_info{run_id="run-test"} 1|} metrics);
      Alcotest.(check bool) "/metrics refreshes telemetry gauges" true
        (contains ~sub:"rma_telemetry_peak_rss_bytes" metrics);
      let health = http_get port "/healthz" in
      Alcotest.(check bool) "/healthz ok" true (contains ~sub:"ok" health);
      let events = http_get port "/events" in
      Alcotest.(check bool) "/events serves the ring" true
        (contains ~sub:{|"event":"probe"|} events);
      let missing = http_get port "/nope" in
      Alcotest.(check bool) "unknown path is 404" true (contains ~sub:"404" missing));
  (* stop is idempotent and frees the port for a new server. *)
  Serve.stop srv;
  let srv2 = Serve.start ~port:0 in
  Serve.stop srv2

let suite =
  [
    Alcotest.test_case "levels parse and order" `Quick test_levels;
    Alcotest.test_case "ring buffering and level filter" `Quick test_ring_and_filter;
    Alcotest.test_case "seeded fault run matches the golden journal" `Quick test_golden_journal;
    Alcotest.test_case "crash/recovery/degradation correlate by run id" `Quick
      test_journal_correlation;
    QCheck_alcotest.to_alcotest prop_line_roundtrips;
    Alcotest.test_case "telemetry collector feeds the gauges" `Quick test_telemetry_collector;
    Alcotest.test_case "telemetry endpoint serves metrics live" `Quick test_serve_endpoint;
  ]
