open Mpi_sim
open Rma_trace
open Rma_analysis

(* --- Codec --- *)

let sample_events () =
  (* Record a small real run for realistic event variety. *)
  let recorder = Recorder.create () in
  let _ =
    Runtime.run ~nprocs:2 ~seed:4 ~config:Config.quiet_network ~observer:(Recorder.observer recorder)
      (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 16 in
        let win = Mpi.win_create ~base ~size:16 in
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let src = Mpi.alloc ~exposed:true ~storage:Memory.Stack 8 in
          Mpi.store_i64 ~loc:(Mpi.loc ~file:"file with spaces.c" ~line:3 "Store") ~addr:src 5L;
          Mpi.put win ~loc:(Mpi.loc ~file:"t%09.c" ~line:4 "MPI_Put") ~target:1 ~target_disp:0
            ~origin_addr:src ~len:8
        end;
        Mpi.win_flush_all win;
        Mpi.barrier ();
        Mpi.win_unlock_all win;
        Mpi.allreduce_int 1 ~op:Runtime.Sum |> ignore;
        Mpi.win_free win)
  in
  Recorder.events recorder

let test_codec_roundtrip_real_run () =
  let events = sample_events () in
  Alcotest.(check bool) "has events" true (List.length events > 10);
  List.iter
    (fun e ->
      match Codec.decode_event (Codec.encode_event e) with
      | Ok d ->
          Alcotest.(check string) "roundtrip" (Codec.encode_event e) (Codec.encode_event d)
      | Error msg -> Alcotest.failf "decode failed: %s" msg)
    events

let test_codec_escaping () =
  List.iter
    (fun s -> Alcotest.(check string) "escape roundtrip" s (Codec.unescape (Codec.escape s)))
    [ "plain"; "with\ttab"; "with\nnewline"; "percent%09"; "%"; "" ]

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Codec.decode_event "Q\tnot\ta\tthing"));
  Alcotest.(check bool) "bad int rejected" true
    (Result.is_error (Codec.decode_event "Z\tnotanint\t0.0"));
  Alcotest.(check bool) "inverted interval rejected" true
    (Result.is_error
       (Codec.decode_event "A\t0\tLR\t9\t3\t0\t1\t-\t1\t0\t0.0\tf.c\t1\top"))

let test_save_load_file () =
  let recorder = Recorder.create () in
  List.iter (fun e -> ignore (Recorder.observer recorder e)) (sample_events ());
  let path = Filename.temp_file "rma_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Recorder.save recorder ~path;
      match Recorder.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok events ->
          Alcotest.(check int) "same length" (Recorder.length recorder) (List.length events);
          List.iter2
            (fun a b ->
              Alcotest.(check string) "same event" (Codec.encode_event a) (Codec.encode_event b))
            (Recorder.events recorder) events)

(* --- Replay --- *)

let racy_program () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 8 in
  let win = Mpi.win_create ~base ~size:8 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let buf = Mpi.alloc ~exposed:true 8 in
    Mpi.get win ~loc:(Mpi.loc ~file:"replay.c" ~line:10 "MPI_Get") ~target:1 ~target_disp:0
      ~origin_addr:buf ~len:8;
    ignore (Mpi.load ~loc:(Mpi.loc ~file:"replay.c" ~line:11 "Load") ~addr:buf ~len:8 ())
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

let record_run program =
  let recorder = Recorder.create () in
  let _ =
    Runtime.run ~nprocs:2 ~seed:2 ~config:Config.quiet_network
      ~observer:(Recorder.observer recorder) program
  in
  Recorder.events recorder

let test_replay_through_online_tool () =
  let events = record_run racy_program in
  let tool = Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let races = Recorder.replay events ~tool in
  Alcotest.(check bool) "race found on replay" true (races <> [])

let test_tee_records_and_forwards () =
  let recorder = Recorder.create () in
  let tool = Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let _ =
    Runtime.run ~nprocs:2 ~seed:2 ~config:Config.quiet_network
      ~observer:(Recorder.tee recorder tool.Tool.observer)
      racy_program
  in
  Alcotest.(check bool) "tool saw events" true (Tool.flagged tool);
  Alcotest.(check bool) "recorder saw events" true (Recorder.length recorder > 0)

(* --- Post-mortem --- *)

let test_post_mortem_finds_race () =
  let events = record_run racy_program in
  let result = Post_mortem.analyze events in
  Alcotest.(check bool) "found" true (result.Post_mortem.distinct_pairs >= 1);
  match Post_mortem.to_reports result with
  | [] -> Alcotest.fail "no report"
  | r :: _ ->
      Alcotest.(check string) "tool name" "MC-Checker (post-mortem)" r.Report.tool

let test_post_mortem_silent_on_safe_run () =
  let safe_program () =
    let rank = Mpi.comm_rank () in
    let base = Mpi.alloc ~exposed:true 8 in
    let win = Mpi.win_create ~base ~size:8 in
    Mpi.win_lock_all win;
    if rank = 0 then begin
      let buf = Mpi.alloc ~exposed:true 8 in
      ignore (Mpi.load ~addr:buf ~len:8 ());
      Mpi.get win ~target:1 ~target_disp:0 ~origin_addr:buf ~len:8
    end;
    Mpi.win_unlock_all win;
    Mpi.barrier ();
    if rank = 1 then ignore (Mpi.load ~addr:base ~len:8 ());
    Mpi.win_free win
  in
  let result = Post_mortem.analyze (record_run safe_program) in
  Alcotest.(check int) "no races" 0 result.Post_mortem.distinct_pairs

let test_post_mortem_enumerates_all_pairs () =
  (* Two independent races in one epoch: the on-the-fly tool reports the
     first and refuses the access; the post-mortem pass must find both
     statement pairs. *)
  let program () =
    let rank = Mpi.comm_rank () in
    let base = Mpi.alloc ~exposed:true 32 in
    let win = Mpi.win_create ~base ~size:32 in
    Mpi.win_lock_all win;
    if rank = 0 then begin
      let src = Mpi.alloc ~exposed:true 16 in
      Mpi.put win ~loc:(Mpi.loc ~file:"pm.c" ~line:1 "MPI_Put") ~target:1 ~target_disp:0
        ~origin_addr:src ~len:8;
      Mpi.put win ~loc:(Mpi.loc ~file:"pm.c" ~line:2 "MPI_Put") ~target:1 ~target_disp:0
        ~origin_addr:src ~len:8;
      Mpi.put win ~loc:(Mpi.loc ~file:"pm.c" ~line:3 "MPI_Put") ~target:1 ~target_disp:16
        ~origin_addr:(src + 8) ~len:8;
      Mpi.put win ~loc:(Mpi.loc ~file:"pm.c" ~line:4 "MPI_Put") ~target:1 ~target_disp:16
        ~origin_addr:(src + 8) ~len:8
    end;
    Mpi.win_unlock_all win;
    Mpi.win_free win
  in
  let result = Post_mortem.analyze (record_run program) in
  (* Pairs: (1,2) and (3,4) on the target window, plus origin-side
     RMA_read overlaps are read/read (safe). *)
  Alcotest.(check bool) "at least two distinct pairs" true
    (result.Post_mortem.distinct_pairs >= 2)

let test_post_mortem_suite_is_complete () =
  (* With full traces (no alias filter, no stack blindness), the
     post-mortem analysis classifies the entire 154-code suite
     perfectly. *)
  let confusion =
    List.fold_left
      (fun (fp, fn, tp, tn) s ->
        let recorder = Recorder.create () in
        (try
           ignore
             (Runtime.run ~nprocs:3 ~seed:11
                ~config:{ Config.default with Config.analysis_overhead_scale = 0.0 }
                ~observer:(Recorder.observer recorder)
                (Rma_microbench.Runner.program s))
         with Report.Race_abort _ -> ());
        let result = Post_mortem.analyze (Recorder.events recorder) in
        let flagged = result.Post_mortem.distinct_pairs > 0 in
        match (s.Rma_microbench.Scenario.racy, flagged) with
        | true, true -> (fp, fn, tp + 1, tn)
        | true, false -> (fp, fn + 1, tp, tn)
        | false, true -> (fp + 1, fn, tp, tn)
        | false, false -> (fp, fn, tp, tn + 1))
      (0, 0, 0, 0) Rma_microbench.Scenario.all
  in
  Alcotest.(check (list int)) "FP FN TP TN" [ 0; 0; 47; 107 ]
    (let fp, fn, tp, tn = confusion in
     [ fp; fn; tp; tn ])

let suite =
  [
    Alcotest.test_case "codec roundtrip on a real run" `Quick test_codec_roundtrip_real_run;
    Alcotest.test_case "codec escaping" `Quick test_codec_escaping;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "replay through an online tool" `Quick test_replay_through_online_tool;
    Alcotest.test_case "tee records and forwards" `Quick test_tee_records_and_forwards;
    Alcotest.test_case "post-mortem finds the race" `Quick test_post_mortem_finds_race;
    Alcotest.test_case "post-mortem silent on safe run" `Quick test_post_mortem_silent_on_safe_run;
    Alcotest.test_case "post-mortem enumerates all pairs" `Quick
      test_post_mortem_enumerates_all_pairs;
    Alcotest.test_case "post-mortem suite is complete" `Slow test_post_mortem_suite_is_complete;
  ]

(* --- Hybrid thread fields on access records (PR 8) --- *)

let hybrid_sample_events () =
  let recorder = Recorder.create () in
  let _ =
    Runtime.run ~nprocs:2 ~seed:4 ~config:Config.quiet_network
      ~observer:(Recorder.observer recorder) (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 16 in
        let win = Mpi.win_create ~base ~size:16 in
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let t =
            Mpi.thread_spawn (fun () ->
                ignore (Mpi.load ~loc:(Mpi.loc ~file:"hyb.c" ~line:7 "Load") ~addr:base ~len:8 ()))
          in
          Mpi.thread_join t
        end;
        Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  Recorder.events recorder

let test_codec_roundtrip_thread_fields () =
  let events = hybrid_sample_events () in
  let threaded =
    List.filter
      (fun e ->
        match e with
        | Event.Access a -> a.Event.access.Rma_access.Access.thread.Rma_access.Access.tid <> 0
        | _ -> false)
      events
  in
  Alcotest.(check bool) "run produced thread-issued accesses" true (threaded <> []);
  List.iter
    (fun e ->
      match Codec.decode_event (Codec.encode_event e) with
      | Ok d ->
          Alcotest.(check string) "thread-field roundtrip" (Codec.encode_event e)
            (Codec.encode_event d);
          (match (e, d) with
          | Event.Access a, Event.Access b ->
              Alcotest.(check bool) "decoded access equal" true
                (Rma_access.Access.equal a.Event.access b.Event.access)
          | _ -> ())
      | Error msg -> Alcotest.failf "decode failed: %s" msg)
    events

let test_codec_single_thread_arity_unchanged () =
  (* Thread-free runs must keep the 14-field A-record arity so existing
     trace files (and their consumers) are byte-stable. *)
  List.iter
    (fun e ->
      match e with
      | Event.Access _ ->
          let line = Codec.encode_event e in
          Alcotest.(check int)
            ("14 fields: " ^ line)
            14
            (List.length (String.split_on_char '\t' line))
      | _ -> ())
    (sample_events ());
  (* And thread-issued accesses carry exactly three extra fields. *)
  List.iter
    (fun e ->
      match e with
      | Event.Access a when a.Event.access.Rma_access.Access.thread.Rma_access.Access.tid <> 0 ->
          let line = Codec.encode_event e in
          Alcotest.(check int)
            ("17 fields: " ^ line)
            17
            (List.length (String.split_on_char '\t' line))
      | _ -> ())
    (hybrid_sample_events ())

let test_codec_rejects_bad_thread_fields () =
  Alcotest.(check bool) "partial thread fields rejected" true
    (Result.is_error
       (Codec.decode_event "A\t0\tLR\t3\t9\t0\t1\t-\t1\t0\t0.0\tf.c\t1\top\t1"));
  Alcotest.(check bool) "bad thread view rejected" true
    (Result.is_error
       (Codec.decode_event "A\t0\tLR\t3\t9\t0\t1\t-\t1\t0\t0.0\tf.c\t1\top\t1\t1\tnot-a-pair"))

let suite =
  suite
  @ [
      Alcotest.test_case "codec roundtrips thread fields" `Quick test_codec_roundtrip_thread_fields;
      Alcotest.test_case "codec arity: 14 plain / 17 threaded" `Quick
        test_codec_single_thread_arity_unchanged;
      Alcotest.test_case "codec rejects malformed thread fields" `Quick
        test_codec_rejects_bad_thread_fields;
    ]
