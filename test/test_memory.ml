open Mpi_sim
open Rma_access

(* Direct tests for the per-rank address space and the cost model. *)

let test_alloc_and_rw () =
  let m = Memory.create ~size:64 in
  let a = Memory.alloc m ~label:"x" 16 in
  Memory.write m ~addr:a ~data:(Bytes.of_string "hello world!!..,");
  Alcotest.(check string) "readback" "hello" (Bytes.to_string (Memory.read m ~addr:a ~len:5));
  Memory.write_int64 m ~addr:(a + 8) 77L;
  Alcotest.(check int64) "int64 rw" 77L (Memory.read_int64 m ~addr:(a + 8))

let test_alloc_rejects_nonpositive () =
  let m = Memory.create ~size:64 in
  Alcotest.check_raises "zero" (Invalid_argument "Memory.alloc: size must be positive") (fun () ->
      ignore (Memory.alloc m 0))

let test_bounds_checked () =
  let m = Memory.create ~size:64 in
  let a = Memory.alloc m 8 in
  Alcotest.(check bool) "oob read raises" true
    (match Memory.read m ~addr:(a + 4) ~len:8 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative addr raises" true
    (match Memory.read m ~addr:(-1) ~len:4 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_growth_preserves_contents () =
  let m = Memory.create ~size:16 in
  let a = Memory.alloc m 8 in
  Memory.write_int64 m ~addr:a 123L;
  (* Force several doublings. *)
  let _big = Memory.alloc m 10_000 in
  Alcotest.(check int64) "old data intact" 123L (Memory.read_int64 m ~addr:a)

let test_allocation_metadata () =
  let m = Memory.create ~size:64 in
  let s = Memory.alloc m ~label:"stack" ~storage:Memory.Stack ~exposed:false 8 in
  let h = Memory.alloc m ~label:"heap" ~storage:Memory.Heap ~exposed:true 8 in
  (match Memory.allocation_at m s with
  | Some al ->
      Alcotest.(check string) "label" "stack" al.Memory.label;
      Alcotest.(check bool) "storage" true (al.Memory.storage = Memory.Stack)
  | None -> Alcotest.fail "allocation not found");
  Alcotest.(check bool) "exposure query" true
    (Memory.interval_exposed m (Interval.of_range ~addr:h ~len:8));
  Alcotest.(check bool) "non-exposed" false
    (Memory.interval_exposed m (Interval.of_range ~addr:s ~len:8));
  Alcotest.(check bool) "stack query" true
    (Memory.interval_on_stack m (Interval.of_range ~addr:s ~len:8));
  Alcotest.(check bool) "heap not stack" false
    (Memory.interval_on_stack m (Interval.of_range ~addr:h ~len:8));
  Alcotest.(check bool) "gap has no allocation" true (Memory.allocation_at m 10_000 = None)

let test_partial_overlap_queries () =
  let m = Memory.create ~size:64 in
  let e = Memory.alloc m ~exposed:true 8 in
  (* An interval straddling the allocation boundary still counts. *)
  Alcotest.(check bool) "straddling exposed" true
    (Memory.interval_exposed m (Interval.make ~lo:(e + 6) ~hi:(e + 20)))

let test_message_cost_model () =
  let c = Config.default in
  Alcotest.(check bool) "monotone in size" true
    (Config.message_cost c ~bytes_count:10 < Config.message_cost c ~bytes_count:1_000_000);
  Alcotest.(check (float 1e-12)) "alpha at zero bytes" c.Config.alpha_msg
    (Config.message_cost c ~bytes_count:0);
  Alcotest.(check bool) "collective grows with ranks" true
    (Config.collective_cost c ~nprocs:4 ~bytes_count:8
    < Config.collective_cost c ~nprocs:256 ~bytes_count:8);
  Alcotest.(check (float 1e-12)) "quiet network is free" 0.0
    (Config.message_cost Config.quiet_network ~bytes_count:4096)

let suite =
  [
    Alcotest.test_case "alloc and read/write" `Quick test_alloc_and_rw;
    Alcotest.test_case "alloc rejects non-positive sizes" `Quick test_alloc_rejects_nonpositive;
    Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
    Alcotest.test_case "growth preserves contents" `Quick test_growth_preserves_contents;
    Alcotest.test_case "allocation metadata" `Quick test_allocation_metadata;
    Alcotest.test_case "partial overlap queries" `Quick test_partial_overlap_queries;
    Alcotest.test_case "message cost model" `Quick test_message_cost_model;
  ]
