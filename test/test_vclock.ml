open Rma_vclock

let test_create_and_get () =
  let c = Vclock.create ~nprocs:4 in
  for i = 0 to 3 do
    Alcotest.(check int) "zero" 0 (Vclock.get c i)
  done;
  Alcotest.(check int) "missing component" 0 (Vclock.get c 99)

let test_tick () =
  let c = Vclock.create ~nprocs:2 in
  let c = Vclock.tick c 0 in
  let c = Vclock.tick c 0 in
  let c = Vclock.tick c 1 in
  Alcotest.(check int) "component 0" 2 (Vclock.get c 0);
  Alcotest.(check int) "component 1" 1 (Vclock.get c 1)

let test_merge () =
  let a = Vclock.set (Vclock.set Vclock.empty 0 3) 1 1 in
  let b = Vclock.set (Vclock.set Vclock.empty 0 1) 2 5 in
  let m = Vclock.merge a b in
  Alcotest.(check int) "max of 0" 3 (Vclock.get m 0);
  Alcotest.(check int) "kept 1" 1 (Vclock.get m 1);
  Alcotest.(check int) "kept 2" 5 (Vclock.get m 2)

let test_happens_before () =
  let a = Vclock.set Vclock.empty 0 1 in
  let b = Vclock.set (Vclock.set Vclock.empty 0 1) 1 1 in
  Alcotest.(check bool) "a < b" true (Vclock.happens_before a b);
  Alcotest.(check bool) "b not < a" false (Vclock.happens_before b a);
  Alcotest.(check bool) "a not < a" false (Vclock.happens_before a a);
  Alcotest.(check bool) "not concurrent" false (Vclock.concurrent a b)

let test_concurrent () =
  let a = Vclock.set Vclock.empty 0 1 in
  let b = Vclock.set Vclock.empty 1 1 in
  Alcotest.(check bool) "concurrent" true (Vclock.concurrent a b);
  Alcotest.(check bool) "no hb" false (Vclock.happens_before a b || Vclock.happens_before b a)

let test_stamps () =
  let writer = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  let stamp = Vclock.stamp_of writer ~thread:0 in
  let ignorant = Vclock.create ~nprocs:2 in
  let informed = Vclock.merge ignorant writer in
  Alcotest.(check bool) "unknown to ignorant" false (Vclock.stamp_observed stamp ~by:ignorant);
  Alcotest.(check bool) "known after merge" true (Vclock.stamp_observed stamp ~by:informed)

let test_size_counts_nonzero () =
  let c = Vclock.set (Vclock.set (Vclock.create ~nprocs:8) 3 1) 5 2 in
  Alcotest.(check int) "two live components" 2 (Vclock.size c)

let clock_gen =
  QCheck.Gen.(
    let* entries = list_size (int_range 0 6) (pair (int_range 0 9) (int_range 1 5)) in
    return (List.fold_left (fun c (i, v) -> Vclock.set c i (max v (Vclock.get c i))) Vclock.empty entries))

let arb_clock = QCheck.make ~print:(fun c -> Format.asprintf "%a" Vclock.pp c) clock_gen

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge is an upper bound" ~count:300 (QCheck.pair arb_clock arb_clock)
    (fun (a, b) ->
      let m = Vclock.merge a b in
      Vclock.leq a m && Vclock.leq b m)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:300 (QCheck.pair arb_clock arb_clock)
    (fun (a, b) -> Vclock.equal (Vclock.merge a b) (Vclock.merge b a))

let prop_hb_irreflexive_antisymmetric =
  QCheck.Test.make ~name:"happens_before is a strict order" ~count:300
    (QCheck.pair arb_clock arb_clock)
    (fun (a, b) ->
      (not (Vclock.happens_before a a))
      && not (Vclock.happens_before a b && Vclock.happens_before b a))

let prop_exactly_one_relation =
  QCheck.Test.make ~name:"hb/concurrent/equal partition" ~count:300
    (QCheck.pair arb_clock arb_clock)
    (fun (a, b) ->
      let relations =
        [
          Vclock.happens_before a b;
          Vclock.happens_before b a;
          Vclock.equal a b;
          Vclock.concurrent a b;
        ]
      in
      List.length (List.filter (fun x -> x) relations) = 1)

let suite =
  [
    Alcotest.test_case "create and get" `Quick test_create_and_get;
    Alcotest.test_case "tick" `Quick test_tick;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "happens before" `Quick test_happens_before;
    Alcotest.test_case "concurrent" `Quick test_concurrent;
    Alcotest.test_case "stamps" `Quick test_stamps;
    Alcotest.test_case "size counts non-zero" `Quick test_size_counts_nonzero;
    QCheck_alcotest.to_alcotest prop_merge_upper_bound;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_hb_irreflexive_antisymmetric;
    QCheck_alcotest.to_alcotest prop_exactly_one_relation;
  ]

(* --- Rank x thread component keys and per-thread clocks (PR 8) --- *)

let test_rt_key_encoding () =
  (* Thread 0 is the plain rank id, so pre-hybrid clocks are unchanged. *)
  for rank = 0 to 5 do
    Alcotest.(check int) "thread 0 is the rank" rank (Vclock.rt_key ~rank ~thread:0)
  done;
  (* Round-trip for a spread of rank/thread pairs. *)
  List.iter
    (fun (rank, thread) ->
      let key = Vclock.rt_key ~rank ~thread in
      Alcotest.(check int) "rank round-trips" rank (Vclock.rt_rank key);
      Alcotest.(check int) "thread round-trips" thread (Vclock.rt_thread key);
      if thread > 0 then
        Alcotest.(check bool) "nonzero threads use negative keys" true (key < 0))
    [ (0, 0); (0, 1); (3, 0); (3, 7); (17, 1023); (1023, 1) ];
  (* Out-of-range thread ids are rejected, not silently aliased. *)
  Alcotest.check_raises "thread out of range"
    (Invalid_argument
       (Printf.sprintf "Vclock.rt_key: thread %d outside [0, %d)" Vclock.threads_per_rank
          Vclock.threads_per_rank))
    (fun () -> ignore (Vclock.rt_key ~rank:0 ~thread:Vclock.threads_per_rank))

let test_rt_key_injective () =
  (* No two (rank, thread) pairs share a key, and no thread>0 key ever
     collides with a plain rank id or a MUST-RMA virtual id (both are
     non-negative). *)
  let seen = Hashtbl.create 256 in
  for rank = 0 to 15 do
    for thread = 0 to 15 do
      let key = Vclock.rt_key ~rank ~thread in
      (match Hashtbl.find_opt seen key with
      | Some other ->
          Alcotest.failf "key %d collides: (%d,%d) and %s" key rank thread other
      | None -> ());
      Hashtbl.replace seen key (Printf.sprintf "(%d,%d)" rank thread)
    done
  done

(* Clocks over mixed rank-and-thread component keys. *)
let rt_clock_gen =
  QCheck.Gen.(
    let* entries =
      list_size (int_range 0 6)
        (triple (int_range 0 4) (int_range 0 3) (int_range 1 5))
    in
    return
      (List.fold_left
         (fun c (rank, thread, v) ->
           let key = Vclock.rt_key ~rank ~thread in
           Vclock.set c key (max v (Vclock.get c key)))
         Vclock.empty entries))

let arb_rt_clock = QCheck.make ~print:(fun c -> Format.asprintf "%a" Vclock.pp c) rt_clock_gen

let prop_rt_join_commutative =
  QCheck.Test.make ~name:"thread-keyed join commutative" ~count:300
    (QCheck.pair arb_rt_clock arb_rt_clock)
    (fun (a, b) -> Vclock.equal (Vclock.merge a b) (Vclock.merge b a))

let prop_rt_join_associative =
  QCheck.Test.make ~name:"thread-keyed join associative" ~count:300
    (QCheck.triple arb_rt_clock arb_rt_clock arb_rt_clock)
    (fun (a, b, c) ->
      Vclock.equal (Vclock.merge a (Vclock.merge b c)) (Vclock.merge (Vclock.merge a b) c))

let prop_rt_join_idempotent =
  QCheck.Test.make ~name:"thread-keyed join idempotent" ~count:300 arb_rt_clock (fun a ->
      Vclock.equal (Vclock.merge a a) a)

let prop_rt_hb_antisymmetric =
  QCheck.Test.make ~name:"thread-keyed happens_before antisymmetric" ~count:300
    (QCheck.pair arb_rt_clock arb_rt_clock)
    (fun (a, b) ->
      (not (Vclock.happens_before a a))
      && not (Vclock.happens_before a b && Vclock.happens_before b a))

let prop_rt_components_roundtrip =
  QCheck.Test.make ~name:"components round-trip thread keys" ~count:300 arb_rt_clock (fun a ->
      let comps = Vclock.components a in
      Vclock.equal a (Vclock.of_components comps)
      && List.for_all
           (fun (key, v) ->
             v > 0
             && Vclock.rt_key ~rank:(Vclock.rt_rank key) ~thread:(Vclock.rt_thread key) = key)
           comps)

let prop_rt_tick_monotone =
  QCheck.Test.make ~name:"tick on a thread key is strictly monotone" ~count:300
    (QCheck.triple arb_rt_clock (QCheck.int_range 0 4) (QCheck.int_range 0 3))
    (fun (a, rank, thread) ->
      let key = Vclock.rt_key ~rank ~thread in
      let t = Vclock.tick a key in
      Vclock.leq a t && Vclock.happens_before a t && Vclock.get t key = Vclock.get a key + 1)

let suite =
  suite
  @ [
      Alcotest.test_case "rt_key encoding round-trips" `Quick test_rt_key_encoding;
      Alcotest.test_case "rt_key injective, disjoint from rank ids" `Quick test_rt_key_injective;
      QCheck_alcotest.to_alcotest prop_rt_join_commutative;
      QCheck_alcotest.to_alcotest prop_rt_join_associative;
      QCheck_alcotest.to_alcotest prop_rt_join_idempotent;
      QCheck_alcotest.to_alcotest prop_rt_hb_antisymmetric;
      QCheck_alcotest.to_alcotest prop_rt_components_roundtrip;
      QCheck_alcotest.to_alcotest prop_rt_tick_monotone;
    ]
