open Rma_vclock

let test_create_and_get () =
  let c = Vclock.create ~nprocs:4 in
  for i = 0 to 3 do
    Alcotest.(check int) "zero" 0 (Vclock.get c i)
  done;
  Alcotest.(check int) "missing component" 0 (Vclock.get c 99)

let test_tick () =
  let c = Vclock.create ~nprocs:2 in
  let c = Vclock.tick c 0 in
  let c = Vclock.tick c 0 in
  let c = Vclock.tick c 1 in
  Alcotest.(check int) "component 0" 2 (Vclock.get c 0);
  Alcotest.(check int) "component 1" 1 (Vclock.get c 1)

let test_merge () =
  let a = Vclock.set (Vclock.set Vclock.empty 0 3) 1 1 in
  let b = Vclock.set (Vclock.set Vclock.empty 0 1) 2 5 in
  let m = Vclock.merge a b in
  Alcotest.(check int) "max of 0" 3 (Vclock.get m 0);
  Alcotest.(check int) "kept 1" 1 (Vclock.get m 1);
  Alcotest.(check int) "kept 2" 5 (Vclock.get m 2)

let test_happens_before () =
  let a = Vclock.set Vclock.empty 0 1 in
  let b = Vclock.set (Vclock.set Vclock.empty 0 1) 1 1 in
  Alcotest.(check bool) "a < b" true (Vclock.happens_before a b);
  Alcotest.(check bool) "b not < a" false (Vclock.happens_before b a);
  Alcotest.(check bool) "a not < a" false (Vclock.happens_before a a);
  Alcotest.(check bool) "not concurrent" false (Vclock.concurrent a b)

let test_concurrent () =
  let a = Vclock.set Vclock.empty 0 1 in
  let b = Vclock.set Vclock.empty 1 1 in
  Alcotest.(check bool) "concurrent" true (Vclock.concurrent a b);
  Alcotest.(check bool) "no hb" false (Vclock.happens_before a b || Vclock.happens_before b a)

let test_stamps () =
  let writer = Vclock.tick (Vclock.create ~nprocs:2) 0 in
  let stamp = Vclock.stamp_of writer ~thread:0 in
  let ignorant = Vclock.create ~nprocs:2 in
  let informed = Vclock.merge ignorant writer in
  Alcotest.(check bool) "unknown to ignorant" false (Vclock.stamp_observed stamp ~by:ignorant);
  Alcotest.(check bool) "known after merge" true (Vclock.stamp_observed stamp ~by:informed)

let test_size_counts_nonzero () =
  let c = Vclock.set (Vclock.set (Vclock.create ~nprocs:8) 3 1) 5 2 in
  Alcotest.(check int) "two live components" 2 (Vclock.size c)

let clock_gen =
  QCheck.Gen.(
    let* entries = list_size (int_range 0 6) (pair (int_range 0 9) (int_range 1 5)) in
    return (List.fold_left (fun c (i, v) -> Vclock.set c i (max v (Vclock.get c i))) Vclock.empty entries))

let arb_clock = QCheck.make ~print:(fun c -> Format.asprintf "%a" Vclock.pp c) clock_gen

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge is an upper bound" ~count:300 (QCheck.pair arb_clock arb_clock)
    (fun (a, b) ->
      let m = Vclock.merge a b in
      Vclock.leq a m && Vclock.leq b m)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:300 (QCheck.pair arb_clock arb_clock)
    (fun (a, b) -> Vclock.equal (Vclock.merge a b) (Vclock.merge b a))

let prop_hb_irreflexive_antisymmetric =
  QCheck.Test.make ~name:"happens_before is a strict order" ~count:300
    (QCheck.pair arb_clock arb_clock)
    (fun (a, b) ->
      (not (Vclock.happens_before a a))
      && not (Vclock.happens_before a b && Vclock.happens_before b a))

let prop_exactly_one_relation =
  QCheck.Test.make ~name:"hb/concurrent/equal partition" ~count:300
    (QCheck.pair arb_clock arb_clock)
    (fun (a, b) ->
      let relations =
        [
          Vclock.happens_before a b;
          Vclock.happens_before b a;
          Vclock.equal a b;
          Vclock.concurrent a b;
        ]
      in
      List.length (List.filter (fun x -> x) relations) = 1)

let suite =
  [
    Alcotest.test_case "create and get" `Quick test_create_and_get;
    Alcotest.test_case "tick" `Quick test_tick;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "happens before" `Quick test_happens_before;
    Alcotest.test_case "concurrent" `Quick test_concurrent;
    Alcotest.test_case "stamps" `Quick test_stamps;
    Alcotest.test_case "size counts non-zero" `Quick test_size_counts_nonzero;
    QCheck_alcotest.to_alcotest prop_merge_upper_bound;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_hb_irreflexive_antisymmetric;
    QCheck_alcotest.to_alcotest prop_exactly_one_relation;
  ]
