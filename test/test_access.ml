open Rma_access

let dbg ?(file = "test.c") ?(op = "op") line = Debug_info.make ~file ~line ~operation:op

let acc ?(issuer = 0) ?(seq = 0) ?(line = 1) ?(op = "op") lo hi kind =
  Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer ~seq ~debug:(dbg ~op line)

let kind = Alcotest.testable Access_kind.pp Access_kind.equal

let test_kind_predicates () =
  let open Access_kind in
  Alcotest.(check bool) "put target is rma write" true (is_rma Rma_write && is_write Rma_write);
  Alcotest.(check bool) "load is local read" true (is_local Local_read && is_read Local_read);
  Alcotest.(check bool) "store is local write" true (is_local Local_write && is_write Local_write);
  Alcotest.(check bool) "get target is rma read" true (is_rma Rma_read && is_read Rma_read)

let test_strength_ordering () =
  (* Table 1: RMA prevails over local, WRITE over READ. *)
  let open Access_kind in
  Alcotest.(check bool) "rma_w strongest" true (strength Rma_write > strength Rma_read);
  Alcotest.(check bool) "rma_r beats local_w" true (strength Rma_read > strength Local_write);
  Alcotest.(check bool) "local_w beats local_r" true (strength Local_write > strength Local_read)

let test_combine_table1 () =
  (* Every non-race cell of Table 1 resulting access type. *)
  let open Access_kind in
  Alcotest.check kind "LR+LW" Local_write (combine Local_read Local_write);
  Alcotest.check kind "LW+LR" Local_write (combine Local_write Local_read);
  Alcotest.check kind "LR+RR" Rma_read (combine Local_read Rma_read);
  Alcotest.check kind "LW+RR" Rma_read (combine Local_write Rma_read);
  Alcotest.check kind "LR+RW" Rma_write (combine Local_read Rma_write);
  Alcotest.check kind "RR+LR" Rma_read (combine Rma_read Local_read);
  Alcotest.check kind "same kind" Local_read (combine Local_read Local_read)

let test_dominate_keeps_winner_debug () =
  (* The debug info of the resulting fragment follows the access whose
     kind dominates (Table 1). *)
  let older = acc ~seq:1 ~line:10 ~op:"MPI_Put" 2 12 Access_kind.Rma_read in
  let newer = acc ~seq:2 ~line:20 ~op:"Load" 4 4 Access_kind.Local_read in
  let result = Access.dominate ~older ~newer (Interval.make ~lo:4 ~hi:4) in
  Alcotest.check kind "kind is rma_read" Access_kind.Rma_read result.Access.kind;
  Alcotest.(check int) "debug follows winner" 10 result.Access.debug.Debug_info.line

let test_dominate_tie_keeps_most_recent () =
  (* "if both accesses have the same access type, the debug information
     of the most recent access is kept" (§4.1). *)
  let older = acc ~seq:1 ~line:10 0 7 Access_kind.Rma_read in
  let newer = acc ~seq:2 ~line:20 4 9 Access_kind.Rma_read in
  let result = Access.dominate ~older ~newer (Interval.make ~lo:4 ~hi:7) in
  Alcotest.(check int) "most recent debug" 20 result.Access.debug.Debug_info.line;
  Alcotest.(check int) "most recent seq" 2 result.Access.seq

let test_mergeable () =
  let a = acc ~issuer:1 ~seq:1 ~line:5 ~op:"MPI_Get" 0 3 Access_kind.Rma_write in
  let b = acc ~issuer:1 ~seq:2 ~line:5 ~op:"MPI_Get" 4 7 Access_kind.Rma_write in
  Alcotest.(check bool) "same kind+debug merge" true (Access.mergeable a b);
  let c = { b with Access.debug = dbg ~op:"MPI_Get" 6 } in
  Alcotest.(check bool) "different line blocks merge" false (Access.mergeable a c);
  let d = Access.with_kind b Access_kind.Rma_read in
  Alcotest.(check bool) "different kind blocks merge" false (Access.mergeable a d);
  let e = { b with Access.issuer = 2 } in
  Alcotest.(check bool) "different issuer blocks merge" false (Access.mergeable a e)

(* Race rule: the Figure 3 matrix. *)

let races_aware ~same_process first second =
  let issuer2 = if same_process then 0 else 1 in
  let a = acc ~issuer:0 ~seq:1 0 7 first in
  let b = acc ~issuer:issuer2 ~seq:2 4 9 second in
  Race_rule.races ~order_aware:true ~existing:a ~incoming:b

let races_legacy ~same_process first second =
  let issuer2 = if same_process then 0 else 1 in
  let a = acc ~issuer:0 ~seq:1 0 7 first in
  let b = acc ~issuer:issuer2 ~seq:2 4 9 second in
  Race_rule.races ~order_aware:false ~existing:a ~incoming:b

let test_race_same_process () =
  let open Access_kind in
  (* RMA then local: racy when one is a write (Figure 2a). *)
  Alcotest.(check bool) "get then load on origin buffer" true
    (races_aware ~same_process:true Rma_write Local_read);
  Alcotest.(check bool) "put-origin-read then store" true
    (races_aware ~same_process:true Rma_read Local_write);
  Alcotest.(check bool) "rma read then local read safe" false
    (races_aware ~same_process:true Rma_read Local_read);
  (* Local then RMA: program order protects it (§5.2). *)
  Alcotest.(check bool) "load then get safe" false
    (races_aware ~same_process:true Local_read Rma_write);
  Alcotest.(check bool) "store then put safe" false
    (races_aware ~same_process:true Local_write Rma_read);
  (* RMA then RMA within an epoch is unordered. *)
  Alcotest.(check bool) "two puts overlap" true
    (races_aware ~same_process:true Rma_write Rma_write);
  Alcotest.(check bool) "put then get" true (races_aware ~same_process:true Rma_read Rma_write);
  Alcotest.(check bool) "two origin reads safe" false
    (races_aware ~same_process:true Rma_read Rma_read);
  (* Two local accesses are ordered by program order. *)
  Alcotest.(check bool) "load then store safe" false
    (races_aware ~same_process:true Local_read Local_write)

let test_race_cross_process () =
  let open Access_kind in
  (* No order between processes: every RMA+WRITE combination races. *)
  Alcotest.(check bool) "local write then remote read" true
    (races_aware ~same_process:false Local_write Rma_read);
  Alcotest.(check bool) "remote write then local read" true
    (races_aware ~same_process:false Rma_write Local_read);
  Alcotest.(check bool) "remote reads safe" false
    (races_aware ~same_process:false Rma_read Rma_read);
  Alcotest.(check bool) "two remote puts" true
    (races_aware ~same_process:false Rma_write Rma_write)

let test_legacy_order_insensitive () =
  let open Access_kind in
  (* Legacy flags Load-then-MPI_Get like MPI_Get-then-Load: the Table 2
     ll_load_get_inwindow_origin_safe false positive. *)
  Alcotest.(check bool) "legacy flags local-then-rma" true
    (races_legacy ~same_process:true Local_read Rma_write);
  Alcotest.(check bool) "aware does not" false
    (races_aware ~same_process:true Local_read Rma_write)

let test_no_race_without_overlap () =
  let a = acc ~issuer:0 ~seq:1 0 3 Access_kind.Rma_write in
  let b = acc ~issuer:1 ~seq:2 4 9 Access_kind.Rma_write in
  Alcotest.(check bool) "disjoint intervals never race" false
    (Race_rule.races ~order_aware:true ~existing:a ~incoming:b)

(* Exhaustive property: the order-aware rule equals the declarative
   Figure 3 specification on every kind pair / process combination. *)
let prop_matrix_matches_spec =
  let spec ~same_process first second =
    let open Access_kind in
    let has_rma = is_rma first || is_rma second in
    let has_write = is_write first || is_write second in
    let both_local = is_local first && is_local second in
    if both_local || not has_rma || not has_write then false
    else if same_process && is_local first && is_rma second then false
    else true
  in
  QCheck.Test.make ~name:"order-aware rule matches Figure 3 spec" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 3) bool)
    (fun (i, j, same_process) ->
      let nth n = List.nth Access_kind.all n in
      let first = nth i and second = nth j in
      let issuer2 = if same_process then 0 else 1 in
      let a = acc ~issuer:0 ~seq:1 0 7 first in
      let b = acc ~issuer:issuer2 ~seq:2 4 9 second in
      Race_rule.races ~order_aware:true ~existing:a ~incoming:b
      = spec ~same_process first second)

let suite =
  [
    Alcotest.test_case "kind predicates" `Quick test_kind_predicates;
    Alcotest.test_case "strength ordering" `Quick test_strength_ordering;
    Alcotest.test_case "combine follows Table 1" `Quick test_combine_table1;
    Alcotest.test_case "dominate keeps winner debug info" `Quick test_dominate_keeps_winner_debug;
    Alcotest.test_case "dominate tie keeps most recent" `Quick test_dominate_tie_keeps_most_recent;
    Alcotest.test_case "mergeable preconditions" `Quick test_mergeable;
    Alcotest.test_case "race rule within a process" `Quick test_race_same_process;
    Alcotest.test_case "race rule across processes" `Quick test_race_cross_process;
    Alcotest.test_case "legacy order insensitivity" `Quick test_legacy_order_insensitive;
    Alcotest.test_case "no race without overlap" `Quick test_no_race_without_overlap;
    QCheck_alcotest.to_alcotest prop_matrix_matches_spec;
  ]
