(* The serve daemon: wire protocol round-trips, admission control
   (queue then shed), per-session isolation under interleaved streams,
   and the churn soak — seeded clients that connect, abort or complete
   while the test pins byte-identical verdicts against the offline
   replay path and zero leaked sessions, pool domains or fault state. *)

module Daemon = Rma_serve.Daemon
module Protocol = Rma_serve.Protocol
module Codec = Rma_trace.Codec
module Recorder = Rma_trace.Recorder
module Kernel = Rma_microbench.Scenario.Kernel
module Json = Rma_util.Json
module Toolbox = Rma_analysis.Toolbox
module Tool = Rma_analysis.Tool
module Report = Rma_analysis.Report
module Race_export = Rma_report.Race_export
module Sessions = Rma_obs.Sessions

(* --- trace material ------------------------------------------------- *)

let record_kernel name =
  let k = Option.get (Kernel.find name) in
  let r = Recorder.create () in
  let config = { Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 0.0 } in
  ignore
    (Mpi_sim.Runtime.run ~nprocs:k.Kernel.k_nprocs ~seed:42 ~config
       ~observer:(Recorder.observer r) k.Kernel.k_program);
  (* Round-trip through the codec: both the daemon and the offline
     [analyze] path see decoded events, whose timestamps carry the
     codec's precision, not the recorder's. *)
  let events =
    List.map
      (fun e -> Result.get_ok (Codec.decode_event (Codec.encode_event e)))
      (Recorder.events r)
  in
  (k.Kernel.k_nprocs, events)

let trace_lines events =
  (Codec.header :: List.map Codec.encode_event events) @ [ Codec.footer (List.length events) ]

let racy_kernel = "rrb_lockall_remote_conflict_put_put_race"
let clean_kernel = "rrb_lockall_remote_disjoint_put_put_safe"

let with_id id (r : Report.t) =
  { r with Report.provenance = { r.Report.provenance with Report.id = id } }

(* The offline reference the daemon must match byte-for-byte: replay
   through the same tool construction, renumber to stream order, render
   with the same protocol constructor. *)
let offline ?jobs ?budget ~nprocs events =
  let tool = Toolbox.make Toolbox.Contribution ~nprocs ?jobs ?budget () in
  let reports = List.mapi (fun i r -> with_id (i + 1) r) (Recorder.replay events ~tool) in
  (List.map Protocol.race reports, Race_export.verdict_digest reports)

(* --- a minimal blocking client -------------------------------------- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let write_all fd s =
  let rec go off =
    if off < String.length s then go (off + Unix.write_substring fd s off (String.length s - off))
  in
  go 0

let send_lines fd lines = write_all fd (String.concat "\n" lines ^ "\n")

let recv_line fd =
  let b = Buffer.create 64 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | _ -> if Bytes.get byte 0 = '\n' then Some (Buffer.contents b) else (Buffer.add_bytes b byte; go ())
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        if Buffer.length b = 0 then None else Some (Buffer.contents b)
  in
  go ()

let recv_all fd =
  let rec go acc = match recv_line fd with None -> List.rev acc | Some l -> go (l :: acc) in
  go []

let line_type line =
  match Json.of_string line with
  | Ok j -> Option.value ~default:"?" (Option.bind (Json.member "type" j) Json.to_str)
  | Error _ -> "?"

let str_field name line =
  match Json.of_string line with
  | Ok j -> Option.bind (Json.member name j) Json.to_str
  | Error _ -> None

let int_field name line =
  match Json.of_string line with
  | Ok j -> Option.bind (Json.member name j) Json.to_int
  | Error _ -> None

let hello ?tool ?jobs ?budget ?fault ~session ~nprocs () =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.to_string ~minify:true
    (Json.Obj
       ([ ("hello", Json.Int Protocol.version); ("session", Json.String session);
          ("nprocs", Json.Int nprocs) ]
       @ opt "tool" (fun s -> Json.String s) tool
       @ opt "jobs" (fun j -> Json.Int j) jobs
       @ opt "budget" (fun s -> Json.String s) budget
       @ opt "fault" (fun s -> Json.String s) fault))

(* Run one complete session against a live daemon and return the server
   lines after the admission verdict. *)
let run_session ?tool ?jobs ?budget ?fault ~port ~session ~nprocs lines =
  let fd = connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) @@ fun () ->
  send_lines fd (hello ?tool ?jobs ?budget ?fault ~session ~nprocs () :: lines);
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  recv_all fd

(* Wait (bounded) for an asynchronous daemon-side transition, e.g. the
   loop noticing an aborted client's EOF. *)
let await ?(deadline = 5.0) what cond =
  let rec go left =
    if cond () then ()
    else if left <= 0.0 then Alcotest.failf "timed out waiting for %s" what
    else (
      Unix.sleepf 0.02;
      go (left -. 0.02))
  in
  go deadline

let with_daemon ?(max_sessions = 4) ?(accept_queue = 8) f =
  Sessions.reset ();
  let d =
    Daemon.create ~config:{ Daemon.addr = Daemon.Tcp 0; max_sessions; accept_queue } ()
  in
  Daemon.start d;
  Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f d (Daemon.port d));
  Daemon.stats d

(* --- tests ----------------------------------------------------------- *)

let test_byte_identical_verdicts () =
  let nprocs, events = record_kernel racy_kernel in
  let expected_races, expected_digest = offline ~nprocs events in
  let stats =
    with_daemon @@ fun _d port ->
    let lines = run_session ~port ~session:"racy" ~nprocs (trace_lines events) in
    (match lines with
    | admitted :: rest ->
        Alcotest.(check string) "admitted first" "admitted" (line_type admitted);
        let races, tail = List.partition (fun l -> line_type l = "race") rest in
        Alcotest.(check (list string)) "streamed race lines byte-equal offline" expected_races races;
        (match tail with
        | [ summary ] ->
            Alcotest.(check string) "summary last" "summary" (line_type summary);
            Alcotest.(check (option string)) "digest matches offline replay"
              (Some expected_digest) (str_field "digest" summary);
            Alcotest.(check (option int)) "event count" (Some (List.length events))
              (int_field "events" summary);
            Alcotest.(check (option int)) "race count" (Some (List.length expected_races))
              (int_field "races" summary)
        | other -> Alcotest.failf "expected one summary line, got %d" (List.length other))
    | [] -> Alcotest.fail "no server lines")
  in
  Alcotest.(check int) "one admitted" 1 stats.Daemon.admitted;
  Alcotest.(check int) "one completed" 1 stats.Daemon.completed;
  Alcotest.(check int) "no sessions leaked" 0 (Sessions.registered_count ())

let test_legacy_stream_and_errors () =
  let nprocs, events = record_kernel clean_kernel in
  let stats =
    with_daemon @@ fun _d port ->
    (* A legacy (format 1, unframed) stream completes at EOF. *)
    let legacy =
      Codec.legacy_header :: List.map Codec.encode_event events
    in
    let lines = run_session ~port ~session:"legacy" ~nprocs legacy in
    Alcotest.(check string) "legacy summary"
      "summary" (line_type (List.nth lines (List.length lines - 1)));
    (* A non-JSON handshake is answered with an error line and a close. *)
    let fd = connect port in
    send_lines fd [ "this is not a handshake" ];
    (match recv_all fd with
    | l :: _ -> Alcotest.(check string) "error line" "error" (line_type l)
    | [] -> Alcotest.fail "no error line");
    Unix.close fd;
    (* An undecodable trace line after a fine handshake, likewise. *)
    let fd = connect port in
    send_lines fd [ hello ~session:"bad-trace" ~nprocs (); Codec.header; "G\tnot\tan\tevent" ];
    let lines = recv_all fd in
    Alcotest.(check bool) "error after bad event" true
      (List.exists (fun l -> line_type l = "error") lines);
    Unix.close fd
  in
  Alcotest.(check int) "one completed" 1 stats.Daemon.completed;
  Alcotest.(check int) "two protocol failures" 2 stats.Daemon.failed;
  Alcotest.(check int) "no sessions leaked" 0 (Sessions.registered_count ())

let test_admission_queue_and_shed () =
  let nprocs, events = record_kernel racy_kernel in
  let lines = trace_lines events in
  let stats =
    with_daemon ~max_sessions:1 ~accept_queue:1 @@ fun _d port ->
    (* A fills the only streaming slot... *)
    let a = connect port in
    send_lines a [ hello ~session:"a" ~nprocs () ];
    Alcotest.(check (option string)) "a admitted" (Some "admitted")
      (Option.map line_type (recv_line a));
    (* ...B waits in the accept queue... *)
    let b = connect port in
    send_lines b [ hello ~session:"b" ~nprocs () ];
    let b_first = Option.get (recv_line b) in
    Alcotest.(check string) "b queued" "queued" (line_type b_first);
    Alcotest.(check (option int)) "b at position 1" (Some 1) (int_field "position" b_first);
    (* ...and C is shed. *)
    let c = connect port in
    send_lines c [ hello ~session:"c" ~nprocs () ];
    let c_lines = recv_all c in
    Alcotest.(check bool) "c shed" true
      (List.exists (fun l -> line_type l = "load_shed") c_lines);
    Unix.close c;
    (* A finishes; B is promoted into the freed slot and completes too. *)
    send_lines a lines;
    (try Unix.shutdown a Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    let a_rest = recv_all a in
    Alcotest.(check string) "a summary"
      "summary" (line_type (List.nth a_rest (List.length a_rest - 1)));
    Unix.close a;
    Alcotest.(check (option string)) "b admitted after a" (Some "admitted")
      (Option.map line_type (recv_line b));
    send_lines b lines;
    (try Unix.shutdown b Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    let b_rest = recv_all b in
    Alcotest.(check string) "b summary"
      "summary" (line_type (List.nth b_rest (List.length b_rest - 1)));
    Unix.close b
  in
  Alcotest.(check int) "two admitted" 2 stats.Daemon.admitted;
  Alcotest.(check int) "two completed" 2 stats.Daemon.completed;
  Alcotest.(check int) "one shed" 1 stats.Daemon.shed;
  Alcotest.(check int) "no sessions leaked" 0 (Sessions.registered_count ())

(* Two sessions streamed strictly interleaved, one line at a time — the
   round-robin slices alternate between them, so any cross-session
   leakage of detector, budget or fault state would corrupt a verdict. *)
let test_interleaved_sessions_isolated () =
  let nprocs_r, events_r = record_kernel racy_kernel in
  let nprocs_c, events_c = record_kernel clean_kernel in
  let races_r, digest_r = offline ~nprocs:nprocs_r events_r in
  let _, digest_c = offline ~jobs:2 ~nprocs:nprocs_c events_c in
  let stats =
    with_daemon @@ fun _d port ->
    let a = connect port in
    let b = connect port in
    send_lines a [ hello ~session:"racy" ~nprocs:nprocs_r () ];
    send_lines b
      [ hello ~session:"clean" ~jobs:2 ~fault:"seed=7" ~nprocs:nprocs_c () ];
    Alcotest.(check (option string)) "a admitted" (Some "admitted")
      (Option.map line_type (recv_line a));
    Alcotest.(check (option string)) "b admitted" (Some "admitted")
      (Option.map line_type (recv_line b));
    (* one line to A, one line to B, until both streams are done *)
    let rec zip xs ys =
      (match xs with x :: _ -> send_lines a [ x ] | [] -> ());
      (match ys with y :: _ -> send_lines b [ y ] | [] -> ());
      match (xs, ys) with
      | [], [] -> ()
      | _ -> zip (match xs with _ :: t -> t | [] -> []) (match ys with _ :: t -> t | [] -> [])
    in
    zip (trace_lines events_r) (trace_lines events_c);
    (try Unix.shutdown a Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    (try Unix.shutdown b Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    let ra = recv_all a and rb = recv_all b in
    Unix.close a;
    Unix.close b;
    let races = List.filter (fun l -> line_type l = "race") ra in
    Alcotest.(check (list string)) "interleaved racy session still byte-identical" races_r races;
    let summary_of lines = List.nth lines (List.length lines - 1) in
    Alcotest.(check (option string)) "racy digest" (Some digest_r)
      (str_field "digest" (summary_of ra));
    Alcotest.(check (option string)) "clean digest under jobs=2 + fault plan" (Some digest_c)
      (str_field "digest" (summary_of rb))
  in
  Alcotest.(check int) "both completed" 2 stats.Daemon.completed

(* The soak: seeded churn of connect / abort / complete clients, then
   the leak audit — no live sessions, no extra pool domains, and the
   offline path still produces the pre-daemon digest (global fault,
   budget and run-id state all restored). *)
let test_session_churn_soak () =
  let nprocs, events_r = record_kernel racy_kernel in
  let _, events_c = record_kernel clean_kernel in
  let racy_lines = trace_lines events_r and clean_lines = trace_lines events_c in
  let races_r, digest_r = offline ~nprocs events_r in
  let _, digest_c = offline ~nprocs events_c in
  let pool_before = Rma_par.pool_size () in
  let completed = ref 0 and aborted = ref 0 in
  let stats =
    with_daemon ~max_sessions:3 @@ fun d port ->
    let rng = Random.State.make [| 1105 |] in
    for i = 1 to 24 do
      let name = Printf.sprintf "churn-%d" i in
      match Random.State.int rng 3 with
      | 0 ->
          let lines = run_session ~port ~session:name ~nprocs racy_lines in
          Alcotest.(check (option string))
            (name ^ " digest") (Some digest_r)
            (str_field "digest" (List.nth lines (List.length lines - 1)));
          Alcotest.(check int)
            (name ^ " races")
            (List.length races_r)
            (List.length (List.filter (fun l -> line_type l = "race") lines));
          incr completed
      | 1 ->
          let budget = if i mod 2 = 0 then Some "4096:spill" else None in
          let lines = run_session ?budget ~port ~session:name ~nprocs clean_lines in
          Alcotest.(check (option string))
            (name ^ " digest") (Some digest_c)
            (str_field "digest" (List.nth lines (List.length lines - 1)));
          incr completed
      | _ ->
          (* Abort mid-stream: hello plus a truncated prefix, then a
             hard close with no footer. *)
          let fd = connect port in
          let cut = 1 + Random.State.int rng (List.length racy_lines - 2) in
          let prefix = List.filteri (fun j _ -> j < cut) racy_lines in
          send_lines fd (hello ~session:name ~nprocs () :: prefix);
          ignore (recv_line fd) (* admitted *);
          Unix.close fd;
          incr aborted
    done;
    (* The last aborts race the shutdown below: give the loop a round to
       see their EOFs, or they would close as daemon_shutdown instead. *)
    await "abort EOFs to be noticed" (fun () ->
        (Daemon.stats d).Daemon.disconnected = !aborted)
  in
  Alcotest.(check int) "every completing client got its summary" !completed
    stats.Daemon.completed;
  Alcotest.(check int) "every abort was seen as a disconnect" !aborted
    stats.Daemon.disconnected;
  Alcotest.(check int) "accepted = completed + aborted" (!completed + !aborted)
    stats.Daemon.accepted;
  Alcotest.(check int) "no live sessions after the churn" 0 (Sessions.registered_count ());
  Alcotest.(check int) "no worker domains leaked" pool_before (Rma_par.pool_size ());
  (* The offline reference, recomputed after all that churn, is
     unchanged — per-session budgets and fault plans never escaped. *)
  let _, digest_after = offline ~nprocs events_r in
  Alcotest.(check string) "offline digest unchanged after the churn" digest_r digest_after

let test_metrics_label_sessions () =
  let nprocs, events = record_kernel racy_kernel in
  let _ =
    with_daemon @@ fun _d port ->
    ignore (run_session ~port ~session:"metrics-probe" ~nprocs (trace_lines events));
    let text = Rma_obs.Prometheus.to_text ~filter:(fun n -> n = "session_info") () in
    Alcotest.(check bool) "rma_session_info series present" true
      (Astring.String.is_infix ~affix:"rma_session_info{" text);
    Alcotest.(check bool) "series carries the session name" true
      (Astring.String.is_infix ~affix:"session=\"metrics-probe\"" text);
    Alcotest.(check bool) "closed session labelled with its reason" true
      (Astring.String.is_infix ~affix:"state=\"closed:completed\"" text)
  in
  ()

let suite =
  [
    Alcotest.test_case "byte-identical verdicts vs offline replay" `Quick
      test_byte_identical_verdicts;
    Alcotest.test_case "legacy stream completes; bad handshake and bad event error out" `Quick
      test_legacy_stream_and_errors;
    Alcotest.test_case "admission: queue then shed, queued session promoted" `Quick
      test_admission_queue_and_shed;
    Alcotest.test_case "interleaved sessions stay isolated" `Quick
      test_interleaved_sessions_isolated;
    Alcotest.test_case "session churn soak leaks nothing" `Quick test_session_churn_soak;
    Alcotest.test_case "/metrics labels sessions by run id" `Quick test_metrics_label_sessions;
  ]
