open Rma_access

let iv lo hi = Interval.make ~lo ~hi

let test_make_and_accessors () =
  let i = iv 2 12 in
  Alcotest.(check int) "lo" 2 (Interval.lo i);
  Alcotest.(check int) "hi" 12 (Interval.hi i);
  Alcotest.(check int) "length" 11 (Interval.length i);
  Alcotest.(check int) "byte length" 1 (Interval.length (Interval.byte 7))

let test_make_rejects_inverted () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo 5 > hi 4") (fun () ->
      ignore (iv 5 4))

let test_of_range () =
  let i = Interval.of_range ~addr:10 ~len:4 in
  Alcotest.(check int) "lo" 10 (Interval.lo i);
  Alcotest.(check int) "hi" 13 (Interval.hi i);
  Alcotest.check_raises "len 0" (Invalid_argument "Interval.of_range: len 0 <= 0") (fun () ->
      ignore (Interval.of_range ~addr:0 ~len:0))

let test_contains () =
  let i = iv 3 7 in
  Alcotest.(check bool) "inside" true (Interval.contains i 5);
  Alcotest.(check bool) "lo edge" true (Interval.contains i 3);
  Alcotest.(check bool) "hi edge" true (Interval.contains i 7);
  Alcotest.(check bool) "below" false (Interval.contains i 2);
  Alcotest.(check bool) "above" false (Interval.contains i 8)

let test_overlaps () =
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (iv 0 2) (iv 4 6));
  Alcotest.(check bool) "adjacent do not overlap" false (Interval.overlaps (iv 0 2) (iv 3 6));
  Alcotest.(check bool) "single shared byte" true (Interval.overlaps (iv 0 3) (iv 3 6));
  Alcotest.(check bool) "nested" true (Interval.overlaps (iv 2 12) (iv 4 4));
  Alcotest.(check bool) "symmetric" true (Interval.overlaps (iv 4 4) (iv 2 12))

let test_adjacent () =
  Alcotest.(check bool) "touching" true (Interval.adjacent (iv 0 2) (iv 3 6));
  Alcotest.(check bool) "reversed" true (Interval.adjacent (iv 3 6) (iv 0 2));
  Alcotest.(check bool) "overlapping not adjacent" false (Interval.adjacent (iv 0 3) (iv 3 6));
  Alcotest.(check bool) "gap of one" false (Interval.adjacent (iv 0 2) (iv 4 6))

let opt_interval_testable =
  let print fmt = function
    | None -> Format.fprintf fmt "None"
    | Some i -> Interval.pp fmt i
  in
  let eq a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b -> Interval.equal a b
    | _ -> false
  in
  Alcotest.testable print eq

let check_opt_interval name expected actual =
  Alcotest.check opt_interval_testable name expected actual

let test_intersection () =
  check_opt_interval "plain" (Some (iv 4 6)) (Interval.intersection (iv 0 6) (iv 4 9));
  check_opt_interval "nested" (Some (iv 4 4)) (Interval.intersection (iv 2 12) (iv 4 4));
  check_opt_interval "disjoint" None (Interval.intersection (iv 0 2) (iv 4 6));
  check_opt_interval "adjacent" None (Interval.intersection (iv 0 2) (iv 3 6))

let test_remainders () =
  (* Fragmenting [2...12] around a cut [4...4]: left [2...3], right
     [5...12] — exactly the Figure 5b split. *)
  let outer = iv 2 12 and cut = iv 4 4 in
  check_opt_interval "left" (Some (iv 2 3)) (Interval.left_remainder ~outer ~cut);
  check_opt_interval "right" (Some (iv 5 12)) (Interval.right_remainder ~outer ~cut);
  check_opt_interval "no left" None (Interval.left_remainder ~outer:(iv 4 8) ~cut:(iv 2 5));
  check_opt_interval "no right" None (Interval.right_remainder ~outer:(iv 4 8) ~cut:(iv 6 12))

let test_hull_and_merge () =
  Alcotest.(check bool) "hull" true (Interval.equal (iv 0 9) (Interval.hull (iv 0 3) (iv 7 9)));
  check_opt_interval "merge adjacent" (Some (iv 0 6))
    (Interval.merge_adjacent_or_overlapping (iv 0 2) (iv 3 6));
  check_opt_interval "merge overlapping" (Some (iv 0 8))
    (Interval.merge_adjacent_or_overlapping (iv 0 5) (iv 4 8));
  check_opt_interval "no merge with gap" None
    (Interval.merge_adjacent_or_overlapping (iv 0 2) (iv 4 6))

let test_compare_lo () =
  Alcotest.(check bool) "by lo" true (Interval.compare_lo (iv 1 9) (iv 2 3) < 0);
  Alcotest.(check bool) "tie by hi" true (Interval.compare_lo (iv 1 3) (iv 1 9) < 0);
  Alcotest.(check int) "equal" 0 (Interval.compare_lo (iv 1 3) (iv 1 3))

let test_pp () =
  Alcotest.(check string) "range" "[2...12]" (Interval.to_string (iv 2 12));
  Alcotest.(check string) "single" "[4]" (Interval.to_string (iv 4 4))

(* Property tests. *)

let interval_gen =
  QCheck.Gen.(
    let* lo = int_range (-1000) 1000 in
    let* len = int_range 1 64 in
    return (Interval.make ~lo ~hi:(lo + len - 1)))

let arb_interval = QCheck.make ~print:Interval.to_string interval_gen

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlaps symmetric" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a)

let prop_intersection_within =
  QCheck.Test.make ~name:"intersection within both" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      match Interval.intersection a b with
      | None -> not (Interval.overlaps a b)
      | Some i ->
          Interval.lo i >= max (Interval.lo a) (Interval.lo b)
          && Interval.hi i <= min (Interval.hi a) (Interval.hi b))

let prop_remainders_partition =
  QCheck.Test.make ~name:"left + intersection + right partition the outer interval" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (outer, cut) ->
      QCheck.assume (Interval.overlaps outer cut);
      let pieces =
        List.filter_map
          (fun x -> x)
          [
            Interval.left_remainder ~outer ~cut;
            Interval.intersection outer cut;
            Interval.right_remainder ~outer ~cut;
          ]
      in
      let total = List.fold_left (fun acc i -> acc + Interval.length i) 0 pieces in
      let sorted = List.sort Interval.compare_lo pieces in
      let rec disjoint_adjacent = function
        | a :: (b :: _ as rest) -> Interval.hi a + 1 = Interval.lo b && disjoint_adjacent rest
        | _ -> true
      in
      total = Interval.length outer && disjoint_adjacent sorted)

let prop_adjacent_never_overlaps =
  QCheck.Test.make ~name:"adjacent implies not overlapping" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) -> (not (Interval.adjacent a b)) || not (Interval.overlaps a b))

let suite =
  [
    Alcotest.test_case "make and accessors" `Quick test_make_and_accessors;
    Alcotest.test_case "make rejects inverted bounds" `Quick test_make_rejects_inverted;
    Alcotest.test_case "of_range" `Quick test_of_range;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "overlaps" `Quick test_overlaps;
    Alcotest.test_case "adjacent" `Quick test_adjacent;
    Alcotest.test_case "intersection" `Quick test_intersection;
    Alcotest.test_case "remainders (Figure 5b split)" `Quick test_remainders;
    Alcotest.test_case "hull and merge" `Quick test_hull_and_merge;
    Alcotest.test_case "compare_lo" `Quick test_compare_lo;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    QCheck_alcotest.to_alcotest prop_intersection_within;
    QCheck_alcotest.to_alcotest prop_remainders_partition;
    QCheck_alcotest.to_alcotest prop_adjacent_never_overlaps;
  ]
