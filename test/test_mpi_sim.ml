open Mpi_sim

let contains_sub s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let run ?(nprocs = 2) ?(seed = 1) ?(config = Config.quiet_network) ?observer program =
  Runtime.run ~nprocs ~seed ~config ?observer program

let test_rank_and_size () =
  let seen = Array.make 4 (-1) in
  let _ = run ~nprocs:4 (fun () -> seen.(Mpi.comm_rank ()) <- Mpi.comm_size ()) in
  Alcotest.(check (array int)) "every rank ran" [| 4; 4; 4; 4 |] seen

let test_local_memory () =
  let witnessed = ref 0L in
  let _ =
    run ~nprocs:1 (fun () ->
        let a = Mpi.alloc ~label:"x" 16 in
        Mpi.store_i64 ~addr:a 77L;
        witnessed := Mpi.load_i64 ~addr:a ())
  in
  Alcotest.(check int64) "round trip" 77L !witnessed

let test_alloc_alignment_and_growth () =
  let ok = ref false in
  let _ =
    run ~nprocs:1 ~config:{ Config.quiet_network with Config.memory_size = 64 } (fun () ->
        let a = Mpi.alloc 3 in
        let b = Mpi.alloc 5 in
        (* 8-byte alignment and growth beyond the initial 64 bytes. *)
        let big = Mpi.alloc 4096 in
        Mpi.store_i64 ~addr:big 1L;
        ok := a mod 8 = 0 && b mod 8 = 0 && b >= a + 3)
  in
  Alcotest.(check bool) "alignment and growth" true !ok

let test_put_moves_data () =
  let received = ref 0L in
  let _ =
    run ~nprocs:2 (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 64 in
        let win = Mpi.win_create ~base ~size:64 in
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let src = Mpi.alloc ~exposed:true 8 in
          Mpi.store_i64 ~addr:src 4242L;
          Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
        end;
        Mpi.win_unlock_all win;
        Mpi.barrier ();
        if rank = 1 then received := Mpi.load_i64 ~addr:base ();
        Mpi.win_free win)
  in
  Alcotest.(check int64) "put landed in target window" 4242L !received

let test_get_moves_data () =
  let fetched = ref 0L in
  let _ =
    run ~nprocs:2 (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 64 in
        if rank = 1 then Mpi.store_i64 ~addr:base 1234L;
        let win = Mpi.win_create ~base ~size:64 in
        Mpi.barrier ();
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let dst = Mpi.alloc ~exposed:true 8 in
          Mpi.get win ~target:1 ~target_disp:0 ~origin_addr:dst ~len:8;
          Mpi.win_unlock_all win;
          fetched := Mpi.load_i64 ~addr:dst ()
        end
        else Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  Alcotest.(check int64) "get fetched target value" 1234L !fetched

let test_deferred_completion_nondeterminism () =
  (* A racy read of the origin buffer right after a Get: across seeds the
     observed value must vary between the old and the fetched one —
     the paper's Figure 2a "buf is either equal to X or loc". *)
  let observe seed =
    let result = ref 0L in
    let config = { Config.quiet_network with Config.apply_early_probability = 0.5 } in
    let _ =
      run ~nprocs:2 ~seed ~config (fun () ->
          let rank = Mpi.comm_rank () in
          let base = Mpi.alloc ~exposed:true 8 in
          if rank = 1 then Mpi.store_i64 ~addr:base 999L;
          let win = Mpi.win_create ~base ~size:8 in
          Mpi.barrier ();
          Mpi.win_lock_all win;
          if rank = 0 then begin
            let buf = Mpi.alloc ~exposed:true 8 in
            Mpi.store_i64 ~addr:buf 111L;
            Mpi.get win ~target:1 ~target_disp:0 ~origin_addr:buf ~len:8;
            (* Racy: reading buf before the epoch closes. *)
            result := Mpi.load_i64 ~addr:buf ()
          end;
          Mpi.win_unlock_all win;
          Mpi.win_free win)
    in
    !result
  in
  let values = List.init 20 observe in
  Alcotest.(check bool) "only old or new value observed" true
    (List.for_all (fun v -> v = 111L || v = 999L) values);
  Alcotest.(check bool) "both outcomes occur across seeds" true
    (List.mem 111L values && List.mem 999L values)

let test_barrier_does_not_complete_rma () =
  (* §6(1): per the MPI standard, MPI_Barrier does not terminate
     one-sided communications. With a seed forcing deferred application,
     the target must not yet see the data right after the barrier. *)
  let config = { Config.quiet_network with Config.apply_early_probability = 0.0 } in
  let after_barrier = ref (-1L) and after_unlock = ref (-1L) in
  let _ =
    run ~nprocs:2 ~config (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let src = Mpi.alloc ~exposed:true 8 in
          Mpi.store_i64 ~addr:src 55L;
          Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
        end;
        Mpi.barrier ();
        if rank = 1 then after_barrier := Mpi.load_i64 ~addr:base ();
        Mpi.barrier ();
        Mpi.win_unlock_all win;
        Mpi.barrier ();
        if rank = 1 then after_unlock := Mpi.load_i64 ~addr:base ();
        Mpi.win_free win)
  in
  Alcotest.(check int64) "invisible after barrier" 0L !after_barrier;
  Alcotest.(check int64) "visible after unlock_all" 55L !after_unlock

let test_flush_all_completes_own_ops () =
  let config = { Config.quiet_network with Config.apply_early_probability = 0.0 } in
  let seen = ref (-1L) in
  let _ =
    run ~nprocs:2 ~config (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let src = Mpi.alloc ~exposed:true 8 in
          Mpi.store_i64 ~addr:src 88L;
          Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
          Mpi.win_flush_all win
        end;
        Mpi.barrier ();
        if rank = 1 then seen := Mpi.load_i64 ~addr:base ();
        Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  Alcotest.(check int64) "flush_all applied the put" 88L !seen

let test_rma_outside_epoch_rejected () =
  Alcotest.check_raises "put outside epoch"
    (Runtime.Mpi_error "rank 0: RMA operation on window 0 outside an epoch") (fun () ->
      ignore
        (run ~nprocs:1 (fun () ->
             let base = Mpi.alloc ~exposed:true 8 in
             let win = Mpi.win_create ~base ~size:8 in
             Mpi.put win ~target:0 ~target_disp:0 ~origin_addr:base ~len:8)))

let test_put_bounds_checked () =
  Alcotest.check_raises "displacement beyond window"
    (Runtime.Mpi_error "rank 0: put displacement [4, 12) outside window of size 8") (fun () ->
      ignore
        (run ~nprocs:1 (fun () ->
             let base = Mpi.alloc ~exposed:true 8 in
             let win = Mpi.win_create ~base ~size:8 in
             Mpi.win_lock_all win;
             Mpi.put win ~target:0 ~target_disp:4 ~origin_addr:base ~len:8)))

let test_nested_lock_rejected () =
  Alcotest.check_raises "double lock_all" (Runtime.Mpi_error "rank 0: nested lock_all on window 0")
    (fun () ->
      ignore
        (run ~nprocs:1 (fun () ->
             let base = Mpi.alloc ~exposed:true 8 in
             let win = Mpi.win_create ~base ~size:8 in
             Mpi.win_lock_all win;
             Mpi.win_lock_all win)))

let test_send_recv () =
  let got = ref "" in
  let _ =
    run ~nprocs:2 (fun () ->
        if Mpi.comm_rank () = 0 then Mpi.send ~dst:1 ~tag:7 (Bytes.of_string "hello")
        else got := Bytes.to_string (Mpi.recv_data ~src:0 ~tag:7 ()))
  in
  Alcotest.(check string) "message delivered" "hello" !got

let test_recv_wildcards_and_ordering () =
  let order = ref [] in
  let _ =
    run ~nprocs:3 (fun () ->
        let rank = Mpi.comm_rank () in
        if rank > 0 then Mpi.send ~dst:0 ~tag:rank (Bytes.of_string (string_of_int rank))
        else begin
          let m1 = Mpi.recv ~src:1 () in
          let m2 = Mpi.recv () in
          order := [ m1.Runtime.src; m2.Runtime.src ]
        end)
  in
  match !order with
  | [ first; second ] ->
      Alcotest.(check int) "selective recv honoured src" 1 first;
      Alcotest.(check int) "wildcard recv got the other" 2 second
  | _ -> Alcotest.fail "expected two receives"

let test_allreduce () =
  let sums = Array.make 4 0 in
  let maxs = Array.make 4 0 in
  let floats = Array.make 4 0.0 in
  let _ =
    run ~nprocs:4 (fun () ->
        let rank = Mpi.comm_rank () in
        sums.(rank) <- Mpi.allreduce_int (rank + 1) ~op:Runtime.Sum;
        maxs.(rank) <- Mpi.allreduce_int rank ~op:Runtime.Max;
        floats.(rank) <- Mpi.allreduce_float (float_of_int rank +. 0.5) ~op:Runtime.Sum)
  in
  Alcotest.(check (array int)) "sum" [| 10; 10; 10; 10 |] sums;
  Alcotest.(check (array int)) "max" [| 3; 3; 3; 3 |] maxs;
  Alcotest.(check bool) "float sum" true (Array.for_all (fun f -> abs_float (f -. 8.0) < 1e-9) floats)

let test_deadlock_detection () =
  let raised =
    try
      ignore (run ~nprocs:2 (fun () -> if Mpi.comm_rank () = 0 then ignore (Mpi.recv ())));
      false
    with Runtime.Deadlock msg ->
      Alcotest.(check bool) "names the blocked rank" true
        (contains_sub msg "rank 0: waiting in recv");
      true
  in
  Alcotest.(check bool) "deadlock raised" true raised

let test_barrier_mismatch_deadlocks () =
  Alcotest.(check bool) "partial barrier deadlocks" true
    (try
       ignore (run ~nprocs:2 (fun () -> if Mpi.comm_rank () = 0 then Mpi.barrier ()));
       false
     with Runtime.Deadlock _ -> true)

let test_determinism_same_seed () =
  let trace seed =
    let events = ref [] in
    let observer ev =
      (match ev with
      | Event.Access a -> events := Rma_access.Access.to_string a.Event.access :: !events
      | _ -> ());
      0.0
    in
    let _ =
      run ~nprocs:3 ~seed ~observer (fun () ->
          let rank = Mpi.comm_rank () in
          let base = Mpi.alloc ~exposed:true 32 in
          let win = Mpi.win_create ~base ~size:32 in
          Mpi.win_lock_all win;
          let peer = (rank + 1) mod 3 in
          Mpi.put win ~target:peer ~target_disp:(8 * rank) ~origin_addr:base ~len:8;
          Mpi.win_unlock_all win;
          Mpi.win_free win)
    in
    !events
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 7 = trace 7);
  Alcotest.(check bool) "sanity: trace non-empty" true (List.length (trace 7) > 0)

let test_event_stream_for_put () =
  (* One Put must produce an origin-side RMA_Read and a target-side
     RMA_Write, both attributed to the origin rank. *)
  let accesses = ref [] in
  let observer ev =
    (match ev with
    | Event.Access a ->
        if Rma_access.Access_kind.is_rma a.Event.access.Rma_access.Access.kind then
          accesses := (a.Event.space, a.Event.access.Rma_access.Access.kind, a.Event.access.Rma_access.Access.issuer) :: !accesses
    | _ -> ());
    0.0
  in
  let _ =
    run ~nprocs:2 ~observer (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let src = Mpi.alloc ~exposed:true 8 in
          Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
        end;
        Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  let sorted = List.sort compare !accesses in
  Alcotest.(check bool) "origin read + target write" true
    (sorted = [ (0, Rma_access.Access_kind.Rma_read, 0); (1, Rma_access.Access_kind.Rma_write, 0) ])

let test_alias_filter_relevance () =
  (* Local accesses to non-exposed allocations are filtered; exposed and
     in-window accesses survive. *)
  let relevant = ref [] and filtered = ref [] in
  let observer ev =
    (match ev with
    | Event.Access a when Rma_access.Access_kind.is_local a.Event.access.Rma_access.Access.kind ->
        let label = Rma_access.Debug_info.to_string a.Event.access.Rma_access.Access.debug in
        if a.Event.relevant then relevant := label :: !relevant else filtered := label :: !filtered
    | _ -> ());
    0.0
  in
  let _ =
    run ~nprocs:1 ~observer (fun () ->
        let private_buf = Mpi.alloc 8 in
        let exposed_buf = Mpi.alloc ~exposed:true 8 in
        let window_buf = Mpi.alloc 8 in
        let _win = Mpi.win_create ~base:window_buf ~size:8 in
        Mpi.store_i64 ~loc:(Mpi.loc ~file:"t.c" ~line:1 "private") ~addr:private_buf 1L;
        Mpi.store_i64 ~loc:(Mpi.loc ~file:"t.c" ~line:2 "exposed") ~addr:exposed_buf 1L;
        Mpi.store_i64 ~loc:(Mpi.loc ~file:"t.c" ~line:3 "inwindow") ~addr:window_buf 1L)
  in
  let has l affix = List.exists (fun s -> contains_sub s affix) l in
  Alcotest.(check bool) "private filtered" true (has !filtered "private");
  Alcotest.(check bool) "exposed relevant" true (has !relevant "exposed");
  Alcotest.(check bool) "in-window relevant" true (has !relevant "inwindow")

let test_stack_flag_propagates () =
  let stacky = ref false and heapy = ref true in
  let observer ev =
    (match ev with
    | Event.Access a -> (
        match a.Event.access.Rma_access.Access.debug.Rma_access.Debug_info.operation with
        | "stack_store" -> stacky := a.Event.on_stack
        | "heap_store" -> heapy := a.Event.on_stack
        | _ -> ())
    | _ -> ());
    0.0
  in
  let _ =
    run ~nprocs:1 ~observer (fun () ->
        let st = Mpi.alloc ~storage:Memory.Stack ~exposed:true 8 in
        let he = Mpi.alloc ~storage:Memory.Heap ~exposed:true 8 in
        Mpi.store_i64 ~loc:(Mpi.loc ~file:"t.c" ~line:1 "stack_store") ~addr:st 1L;
        Mpi.store_i64 ~loc:(Mpi.loc ~file:"t.c" ~line:2 "heap_store") ~addr:he 1L)
  in
  Alcotest.(check bool) "stack access flagged" true !stacky;
  Alcotest.(check bool) "heap access not flagged" false !heapy

let test_epoch_time_accounting () =
  let config =
    { Config.default with Config.analysis_overhead_scale = 0.0; apply_early_probability = 1.0 }
  in
  let result =
    run ~nprocs:2 ~config (fun () ->
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        Mpi.compute 0.25;
        Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  Array.iter
    (fun t -> Alcotest.(check bool) "epoch time covers the compute" true (t >= 0.25 && t < 0.3))
    result.Runtime.epoch_times

let test_observer_protocol_cost_charged () =
  let observer = function Event.Epoch_closed _ -> 1.0 | _ -> 0.0 in
  let result =
    run ~nprocs:1 ~observer (fun () ->
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  Alcotest.(check bool) "protocol cost lands on the clock" true (result.Runtime.clocks.(0) >= 1.0)

let test_many_ranks_scale () =
  let result =
    run ~nprocs:64 (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 64 in
        let win = Mpi.win_create ~base ~size:64 in
        Mpi.win_lock_all win;
        let peer = (rank + 1) mod 64 in
        Mpi.put win ~target:peer ~target_disp:0 ~origin_addr:base ~len:8;
        Mpi.win_unlock_all win;
        let total = Mpi.allreduce_int 1 ~op:Runtime.Sum in
        assert (total = 64);
        Mpi.win_free win)
  in
  Alcotest.(check int) "64 ranks, 2 rma accesses each" 128 result.Runtime.accesses_emitted

let suite =
  [
    Alcotest.test_case "rank and size" `Quick test_rank_and_size;
    Alcotest.test_case "local load/store" `Quick test_local_memory;
    Alcotest.test_case "alloc alignment and growth" `Quick test_alloc_alignment_and_growth;
    Alcotest.test_case "put moves data" `Quick test_put_moves_data;
    Alcotest.test_case "get moves data" `Quick test_get_moves_data;
    Alcotest.test_case "deferred completion nondeterminism (Fig 2a)" `Quick
      test_deferred_completion_nondeterminism;
    Alcotest.test_case "barrier does not complete RMA (std semantics)" `Quick
      test_barrier_does_not_complete_rma;
    Alcotest.test_case "flush_all completes own ops" `Quick test_flush_all_completes_own_ops;
    Alcotest.test_case "RMA outside epoch rejected" `Quick test_rma_outside_epoch_rejected;
    Alcotest.test_case "put bounds checked" `Quick test_put_bounds_checked;
    Alcotest.test_case "nested lock rejected" `Quick test_nested_lock_rejected;
    Alcotest.test_case "send/recv" `Quick test_send_recv;
    Alcotest.test_case "recv wildcards and ordering" `Quick test_recv_wildcards_and_ordering;
    Alcotest.test_case "allreduce int/float" `Quick test_allreduce;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "barrier mismatch deadlocks" `Quick test_barrier_mismatch_deadlocks;
    Alcotest.test_case "determinism for equal seeds" `Quick test_determinism_same_seed;
    Alcotest.test_case "event stream for put" `Quick test_event_stream_for_put;
    Alcotest.test_case "alias filter relevance" `Quick test_alias_filter_relevance;
    Alcotest.test_case "stack flag propagates" `Quick test_stack_flag_propagates;
    Alcotest.test_case "epoch time accounting" `Quick test_epoch_time_accounting;
    Alcotest.test_case "observer protocol cost charged" `Quick test_observer_protocol_cost_charged;
    Alcotest.test_case "64 ranks scale" `Quick test_many_ranks_scale;
  ]

let test_flush_targets_only_one_rank () =
  (* win_flush ~rank completes only operations towards that target. *)
  let config = { Config.quiet_network with Config.apply_early_probability = 0.0 } in
  let seen1 = ref (-1L) and seen2 = ref (-1L) in
  let _ =
    run ~nprocs:3 ~config (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        if rank = 0 then begin
          let src = Mpi.alloc ~exposed:true 8 in
          Mpi.store_i64 ~addr:src 7L;
          Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
          Mpi.put win ~target:2 ~target_disp:0 ~origin_addr:src ~len:8;
          Mpi.win_flush win ~rank:1
        end;
        Mpi.barrier ();
        if rank = 1 then seen1 := Mpi.load_i64 ~addr:base ();
        if rank = 2 then seen2 := Mpi.load_i64 ~addr:base ();
        (* Keep rank 0's unlock_all (which would complete the second
           put) after every observation. *)
        Mpi.barrier ();
        Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  Alcotest.(check int64) "target 1 flushed" 7L !seen1;
  Alcotest.(check int64) "target 2 still pending" 0L !seen2

let test_double_win_free_rejected () =
  Alcotest.check_raises "double free" (Runtime.Mpi_error "window 0 already freed") (fun () ->
      ignore
        (run ~nprocs:1 (fun () ->
             let base = Mpi.alloc ~exposed:true 8 in
             let win = Mpi.win_create ~base ~size:8 in
             Mpi.win_free win;
             Mpi.win_free win)))

let test_win_free_with_open_epoch_rejected () =
  Alcotest.check_raises "free with open epoch"
    (Runtime.Mpi_error "rank 0: win_free with an open epoch on window 0") (fun () ->
      ignore
        (run ~nprocs:1 (fun () ->
             let base = Mpi.alloc ~exposed:true 8 in
             let win = Mpi.win_create ~base ~size:8 in
             Mpi.win_lock_all win;
             Mpi.win_free win)))

let test_send_to_self () =
  let got = ref 0L in
  let _ =
    run ~nprocs:1 (fun () ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 31L;
        Mpi.send ~dst:0 ~tag:0 b;
        got := Bytes.get_int64_le (Mpi.recv_data ()) 0)
  in
  Alcotest.(check int64) "self message" 31L !got

let test_allreduce_min () =
  let mins = Array.make 3 0 in
  let _ =
    run ~nprocs:3 (fun () ->
        let rank = Mpi.comm_rank () in
        mins.(rank) <- Mpi.allreduce_int (10 - rank) ~op:Runtime.Min)
  in
  Alcotest.(check (array int)) "min" [| 8; 8; 8 |] mins

let test_put_after_unlock_rejected () =
  Alcotest.check_raises "put after epoch closed"
    (Runtime.Mpi_error "rank 0: RMA operation on window 0 outside an epoch") (fun () ->
      ignore
        (run ~nprocs:1 (fun () ->
             let base = Mpi.alloc ~exposed:true 8 in
             let win = Mpi.win_create ~base ~size:8 in
             Mpi.win_lock_all win;
             Mpi.win_unlock_all win;
             Mpi.put win ~target:0 ~target_disp:0 ~origin_addr:base ~len:8)))

let test_two_windows_independent_epochs () =
  let ok = ref false in
  let _ =
    run ~nprocs:2 (fun () ->
        let a = Mpi.alloc ~exposed:true 16 in
        let b = Mpi.alloc ~exposed:true 16 in
        let win_a = Mpi.win_create ~base:a ~size:16 in
        let win_b = Mpi.win_create ~base:b ~size:16 in
        Mpi.win_lock_all win_a;
        Mpi.win_lock_all win_b;
        if Mpi.comm_rank () = 0 then begin
          Mpi.put win_a ~target:1 ~target_disp:0 ~origin_addr:a ~len:8;
          Mpi.put win_b ~target:1 ~target_disp:8 ~origin_addr:b ~len:8
        end;
        Mpi.win_unlock_all win_b;
        (* win_a's epoch is still open. *)
        if Mpi.comm_rank () = 0 then
          Mpi.put win_a ~target:1 ~target_disp:8 ~origin_addr:a ~len:8;
        Mpi.win_unlock_all win_a;
        Mpi.win_free win_a;
        Mpi.win_free win_b;
        ok := true)
  in
  Alcotest.(check bool) "completed" true !ok

let extra_suite =
  [
    Alcotest.test_case "flush targets only one rank" `Quick test_flush_targets_only_one_rank;
    Alcotest.test_case "double win_free rejected" `Quick test_double_win_free_rejected;
    Alcotest.test_case "win_free with open epoch rejected" `Quick
      test_win_free_with_open_epoch_rejected;
    Alcotest.test_case "send to self" `Quick test_send_to_self;
    Alcotest.test_case "allreduce min" `Quick test_allreduce_min;
    Alcotest.test_case "put after unlock rejected" `Quick test_put_after_unlock_rejected;
    Alcotest.test_case "two windows, independent epochs" `Quick
      test_two_windows_independent_epochs;
  ]

let suite = suite @ extra_suite

(* --- Active-target (fence) synchronisation --- *)

let test_fence_moves_data () =
  let config = { Config.quiet_network with Config.apply_early_probability = 0.0 } in
  let seen = ref (-1L) in
  let _ =
    run ~nprocs:2 ~config (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_fence win;
        if rank = 0 then begin
          let src = Mpi.alloc ~exposed:true 8 in
          Mpi.store_i64 ~addr:src 17L;
          Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
        end;
        Mpi.win_fence win;
        (* Fence is collective and completing: the data must be visible. *)
        if rank = 1 then seen := Mpi.load_i64 ~addr:base ();
        Mpi.win_fence win;
        Mpi.win_free win)
  in
  Alcotest.(check int64) "fence completed the put" 17L !seen

let test_fence_epochs_separate_for_detectors () =
  (* Two puts to the same location in different fence epochs are safe;
     in the same epoch they race. *)
  let open Rma_analysis in
  let run_with tool separate =
    tool.Tool.reset ();
    (try
       ignore
         (run ~nprocs:2 ~observer:tool.Tool.observer (fun () ->
              let rank = Mpi.comm_rank () in
              let base = Mpi.alloc ~exposed:true 8 in
              let win = Mpi.win_create ~base ~size:8 in
              Mpi.win_fence win;
              if rank = 0 then begin
                let src = Mpi.alloc ~exposed:true 8 in
                Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
                if not separate then
                  Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
              end;
              Mpi.win_fence win;
              if rank = 0 && separate then begin
                let src2 = Mpi.alloc ~exposed:true 8 in
                Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src2 ~len:8
              end;
              Mpi.win_fence win;
              Mpi.win_free win))
     with Report.Race_abort _ -> ());
    tool.Tool.race_count ()
  in
  let contribution () =
    Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect Rma_analyzer.Contribution
  in
  Alcotest.(check int) "separate epochs safe" 0 (run_with (contribution ()) true);
  Alcotest.(check bool) "same epoch races" true (run_with (contribution ()) false > 0);
  let must () = Must_rma.create ~nprocs:2 () in
  Alcotest.(check int) "must: separate epochs safe" 0 (run_with (must ()) true);
  Alcotest.(check bool) "must: same epoch races" true (run_with (must ()) false > 0)

let test_fence_mismatch_deadlocks () =
  Alcotest.(check bool) "partial fence deadlocks" true
    (try
       ignore
         (run ~nprocs:2 (fun () ->
              let base = Mpi.alloc ~exposed:true 8 in
              let win = Mpi.win_create ~base ~size:8 in
              if Mpi.comm_rank () = 0 then Mpi.win_fence win;
              Mpi.barrier ()));
       false
     with Runtime.Deadlock _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "fence moves data" `Quick test_fence_moves_data;
      Alcotest.test_case "fence epochs separate for detectors" `Quick
        test_fence_epochs_separate_for_detectors;
      Alcotest.test_case "fence mismatch deadlocks" `Quick test_fence_mismatch_deadlocks;
    ]

(* --- Per-target passive locks --- *)

let test_lock_put_unlock () =
  let config = { Config.quiet_network with Config.apply_early_probability = 0.0 } in
  let seen = ref 0L in
  let _ =
    run ~nprocs:2 ~config (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        if rank = 0 then begin
          Mpi.win_lock win ~rank:1;
          let src = Mpi.alloc ~exposed:true 8 in
          Mpi.store_i64 ~addr:src 23L;
          Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
          Mpi.win_unlock win ~rank:1
        end;
        Mpi.barrier ();
        if rank = 1 then seen := Mpi.load_i64 ~addr:base ();
        Mpi.win_free win)
  in
  Alcotest.(check int64) "unlock completed the put" 23L !seen

let test_exclusive_locks_mutually_exclude () =
  (* Two origins increment the same window cell under exclusive locks:
     with real mutual exclusion both increments land (no lost update),
     under any seed. *)
  let config = { Config.quiet_network with Config.apply_early_probability = 1.0 } in
  List.iter
    (fun seed ->
      let final = ref 0L in
      let _ =
        run ~nprocs:3 ~seed ~config (fun () ->
            let rank = Mpi.comm_rank () in
            let base = Mpi.alloc ~exposed:true 8 in
            let win = Mpi.win_create ~base ~size:8 in
            if rank = 1 || rank = 2 then begin
              Mpi.win_lock ~exclusive:true win ~rank:0;
              (* read-modify-write of rank 0's cell *)
              let tmp = Mpi.alloc ~exposed:true 8 in
              Mpi.get win ~target:0 ~target_disp:0 ~origin_addr:tmp ~len:8;
              Mpi.win_flush win ~rank:0;
              let v = Mpi.load_i64 ~addr:tmp () in
              Mpi.store_i64 ~addr:tmp (Int64.add v 1L);
              Mpi.put win ~target:0 ~target_disp:0 ~origin_addr:tmp ~len:8;
              Mpi.win_unlock win ~rank:0
            end;
            Mpi.barrier ();
            if rank = 0 then final := Mpi.load_i64 ~addr:base ();
            Mpi.win_free win)
      in
      Alcotest.(check int64) (Printf.sprintf "no lost update (seed %d)" seed) 2L !final)
    [ 1; 5; 9; 13 ]

let test_shared_locks_coexist () =
  let ok = ref false in
  let _ =
    run ~nprocs:3 (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 16 in
        let win = Mpi.win_create ~base ~size:16 in
        if rank > 0 then begin
          Mpi.win_lock win ~rank:0;
          let dst = Mpi.alloc ~exposed:true 8 in
          Mpi.get win ~target:0 ~target_disp:0 ~origin_addr:dst ~len:8;
          Mpi.win_unlock win ~rank:0
        end;
        Mpi.barrier ();
        ok := true;
        Mpi.win_free win)
  in
  Alcotest.(check bool) "no deadlock among shared lockers" true !ok

let test_unlock_without_lock_rejected () =
  Alcotest.check_raises "unlock without lock"
    (Runtime.Mpi_error "rank 0: unlock without a lock on window 0 target 0") (fun () ->
      ignore
        (run ~nprocs:1 (fun () ->
             let base = Mpi.alloc ~exposed:true 8 in
             let win = Mpi.win_create ~base ~size:8 in
             Mpi.win_unlock win ~rank:0)))

let test_lock_epoch_seen_by_detector () =
  (* A racy pair inside one per-target lock epoch is detected; the same
     pair split across two lock/unlock epochs of the SAME origin is not
     (the tree is per-epoch). *)
  let open Rma_analysis in
  let run_variant split =
    let tool = Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect Rma_analyzer.Contribution in
    (try
       ignore
         (run ~nprocs:2 ~observer:tool.Tool.observer (fun () ->
              let rank = Mpi.comm_rank () in
              let base = Mpi.alloc ~exposed:true 8 in
              let win = Mpi.win_create ~base ~size:8 in
              if rank = 0 then begin
                let src = Mpi.alloc ~exposed:true 8 in
                Mpi.win_lock win ~rank:1;
                Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
                if split then begin
                  Mpi.win_unlock win ~rank:1;
                  Mpi.win_lock win ~rank:1
                end;
                Mpi.put win ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
                Mpi.win_unlock win ~rank:1
              end;
              Mpi.barrier ();
              Mpi.win_free win))
     with Report.Race_abort _ -> ());
    tool.Tool.race_count ()
  in
  Alcotest.(check bool) "same epoch: duplicate put flagged" true (run_variant false > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "lock/put/unlock" `Quick test_lock_put_unlock;
      Alcotest.test_case "exclusive locks mutually exclude" `Quick
        test_exclusive_locks_mutually_exclude;
      Alcotest.test_case "shared locks coexist" `Quick test_shared_locks_coexist;
      Alcotest.test_case "unlock without lock rejected" `Quick test_unlock_without_lock_rejected;
      Alcotest.test_case "lock epoch seen by detector" `Quick test_lock_epoch_seen_by_detector;
    ]

(* --- MPI_Accumulate --- *)

let test_accumulate_sums_across_ranks () =
  (* Every rank accumulates its rank+1 into rank 0's cell; the final
     value must be the exact sum under every seed (element atomicity +
     commutativity). *)
  List.iter
    (fun seed ->
      let final = ref 0L in
      let config = { Config.quiet_network with Config.apply_early_probability = 0.5 } in
      let _ =
        run ~nprocs:5 ~seed ~config (fun () ->
            let rank = Mpi.comm_rank () in
            let base = Mpi.alloc ~exposed:true 8 in
            let win = Mpi.win_create ~base ~size:8 in
            Mpi.win_lock_all win;
            let src = Mpi.alloc ~exposed:true 8 in
            Mpi.store_i64 ~addr:src (Int64.of_int (rank + 1));
            Mpi.accumulate win ~target:0 ~target_disp:0 ~origin_addr:src ~len:8 ~op:Runtime.Sum;
            Mpi.win_unlock_all win;
            Mpi.barrier ();
            if rank = 0 then final := Mpi.load_i64 ~addr:base ();
            Mpi.win_free win)
      in
      Alcotest.(check int64) (Printf.sprintf "sum (seed %d)" seed) 15L !final)
    [ 1; 2; 3; 4; 5 ]

let test_accumulate_max () =
  let final = ref 0L in
  let _ =
    run ~nprocs:4 (fun () ->
        let rank = Mpi.comm_rank () in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        let src = Mpi.alloc ~exposed:true 8 in
        Mpi.store_i64 ~addr:src (Int64.of_int ((rank * 7) mod 19));
        Mpi.accumulate win ~target:0 ~target_disp:0 ~origin_addr:src ~len:8 ~op:Runtime.Max;
        Mpi.win_unlock_all win;
        Mpi.barrier ();
        if rank = 0 then final := Mpi.load_i64 ~addr:base ();
        Mpi.win_free win)
  in
  Alcotest.(check int64) "max of contributions" 14L !final

let accumulate_program ~second () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 8 in
  let win = Mpi.win_create ~base ~size:8 in
  Mpi.win_lock_all win;
  if rank > 0 then begin
    let src = Mpi.alloc ~exposed:true 8 in
    Mpi.store_i64 ~addr:src 1L;
    if rank = 1 || second = `Accumulate then
      Mpi.accumulate win ~loc:(Mpi.loc ~file:"acc.c" ~line:(10 * rank) "MPI_Accumulate")
        ~target:0 ~target_disp:0 ~origin_addr:src ~len:8 ~op:Runtime.Sum
    else
      Mpi.put win ~loc:(Mpi.loc ~file:"acc.c" ~line:(10 * rank) "MPI_Put") ~target:0
        ~target_disp:0 ~origin_addr:src ~len:8
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

let races_under tool program =
  let open Rma_analysis in
  (try ignore (run ~nprocs:3 ~observer:tool.Tool.observer program)
   with Report.Race_abort _ -> ());
  tool.Tool.race_count ()

let test_concurrent_accumulates_safe () =
  let open Rma_analysis in
  List.iter
    (fun (name, tool) ->
      Alcotest.(check int) (name ^ ": acc/acc safe") 0
        (races_under tool (accumulate_program ~second:`Accumulate)))
    [
      ( "contribution",
        Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect Rma_analyzer.Contribution );
      ("must", Must_rma.create ~nprocs:3 ());
    ]

let test_accumulate_vs_put_races () =
  let open Rma_analysis in
  List.iter
    (fun (name, tool) ->
      Alcotest.(check bool) (name ^ ": acc/put races") true
        (races_under tool (accumulate_program ~second:`Put) > 0))
    [
      ( "contribution",
        Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect Rma_analyzer.Contribution );
      ("must", Must_rma.create ~nprocs:3 ());
    ]

let test_accumulate_vs_local_read_races () =
  let open Rma_analysis in
  let tool = Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let program () =
    let rank = Mpi.comm_rank () in
    let base = Mpi.alloc ~exposed:true 8 in
    let win = Mpi.win_create ~base ~size:8 in
    Mpi.win_lock_all win;
    if rank = 1 then begin
      let src = Mpi.alloc ~exposed:true 8 in
      Mpi.accumulate win ~target:0 ~target_disp:0 ~origin_addr:src ~len:8 ~op:Runtime.Sum
    end
    else ignore (Mpi.load ~addr:base ~len:8 ());
    Mpi.win_unlock_all win;
    Mpi.win_free win
  in
  Alcotest.(check bool) "acc vs target load races" true (races_under tool program > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "accumulate sums across ranks" `Quick test_accumulate_sums_across_ranks;
      Alcotest.test_case "accumulate max" `Quick test_accumulate_max;
      Alcotest.test_case "concurrent accumulates are race-free" `Quick
        test_concurrent_accumulates_safe;
      Alcotest.test_case "accumulate vs put races" `Quick test_accumulate_vs_put_races;
      Alcotest.test_case "accumulate vs local read races" `Quick
        test_accumulate_vs_local_read_races;
    ]
