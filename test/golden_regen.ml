(* Central registry of every checked-in golden file under test/golden/
   and the environment hook that regenerates it.

   Each golden test calls [hook ~name] where it used to read its own
   GOLDEN_OUT_* variable: [Some path] means "write the freshly rendered
   bytes there instead of comparing" (an intentional format change),
   [None] means "compare against the checked-in file". Two ways to get
   [Some]:

   - the golden's dedicated variable, e.g.
       GOLDEN_OUT_HYBRID=$PWD/test/golden/race_hybrid.json dune runtest --force
   - the umbrella directory, regenerating EVERY registered golden in
     one run:
       GOLDEN_OUT_DIR=$PWD/test/golden dune runtest --force

   The [suite] below audits the registry against the checked-in
   directory in both directions, so a golden that is added without a
   regen hook — or a registry entry whose file was deleted — fails the
   ordinary test run. *)

type entry = {
  golden : string;  (** Path relative to the test runner's cwd. *)
  env : string;  (** Dedicated regeneration variable. *)
}

let entries =
  [
    { golden = "golden/race.sarif"; env = "GOLDEN_OUT" };
    { golden = "golden/race_degraded.sarif"; env = "GOLDEN_OUT_DEGRADED" };
    { golden = "golden/race_hybrid.json"; env = "GOLDEN_OUT_HYBRID" };
    { golden = "golden/race_predicted.json"; env = "GOLDEN_OUT_PREDICTED" };
    { golden = "golden/explain.txt"; env = "GOLDEN_OUT_EXPLAIN" };
    { golden = "golden/events_journal.jsonl"; env = "GOLDEN_OUT_EVENTS" };
    { golden = "golden/obs_stats.txt"; env = "GOLDEN_OUT_STATS" };
    { golden = "golden/prometheus_escaping.txt"; env = "GOLDEN_OUT_PROM" };
  ]

let find_entry name =
  List.find_opt (fun e -> String.equal (Filename.basename e.golden) name) entries

let hook ~name =
  match find_entry name with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Golden_regen.hook: %S is not in the registry — add it to Golden_regen.entries" name)
  | Some e -> (
      match Sys.getenv_opt e.env with
      | Some path -> Some path
      | None ->
          Option.map (fun dir -> Filename.concat dir name) (Sys.getenv_opt "GOLDEN_OUT_DIR"))

let write ~path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let read ~name =
  match find_entry name with
  | None ->
      invalid_arg (Printf.sprintf "Golden_regen.read: %S is not in the registry" name)
  | Some e ->
      let ic = open_in e.golden in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))

(* The standard write-or-compare bracket every golden test reduces to:
   regenerate when hooked, otherwise byte-compare against the
   checked-in file. *)
let check ~name ~what content =
  match hook ~name with
  | Some path -> write ~path content
  | None -> Alcotest.(check string) what (read ~name) content

(* ------------------------------------------------------------------ *)
(* Registry audit                                                      *)
(* ------------------------------------------------------------------ *)

let test_every_golden_is_registered () =
  (* A checked-in golden nobody can regenerate rots silently: any file
     in the golden/ directory must have a registry entry (and therefore
     a dedicated env hook plus GOLDEN_OUT_DIR coverage). *)
  let on_disk = Sys.readdir "golden" |> Array.to_list |> List.sort compare in
  List.iter
    (fun file ->
      match find_entry file with
      | Some _ -> ()
      | None ->
          Alcotest.failf
            "golden/%s is checked in but unreachable from the regen hook — register it in \
             test/golden_regen.ml"
            file)
    on_disk

let test_every_entry_exists () =
  List.iter
    (fun e ->
      if not (Sys.file_exists e.golden) then
        Alcotest.failf "registry names %s (%s) but no such golden is checked in" e.golden e.env)
    entries

let test_entries_are_unique () =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      List.iter
        (fun key ->
          if Hashtbl.mem seen key then Alcotest.failf "duplicate registry key %s" key
          else Hashtbl.replace seen key ())
        [ e.golden; e.env ])
    entries

let suite =
  [
    Alcotest.test_case "every checked-in golden has a regen hook" `Quick
      test_every_golden_is_registered;
    Alcotest.test_case "every registry entry is checked in" `Quick test_every_entry_exists;
    Alcotest.test_case "registry paths and env vars are unique" `Quick test_entries_are_unique;
  ]
