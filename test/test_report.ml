open Rma_report

(* Fast experiments only: the table/figure sweeps over many ranks run in
   the bench executable; here we pin the cheap ones end to end. *)

let test_table2_matches_paper () =
  let rows, rendered = Experiments.table2 () in
  Alcotest.(check int) "four codes" 4 (List.length rows);
  Alcotest.(check bool) "rendered" true (String.length rendered > 0);
  List.iter
    (fun (r : Experiments.verdict_row) ->
      let expect_l, expect_m, expect_c =
        match r.Experiments.code with
        | "ll_get_load_outwindow_origin_race" -> (true, true, true)
        | "ll_get_get_inwindow_origin_safe" -> (false, false, false)
        | "ll_get_load_inwindow_origin_race" -> (true, false, true)
        | "ll_load_get_inwindow_origin_safe" -> (true, false, false)
        | other -> Alcotest.failf "unexpected code %s" other
      in
      Alcotest.(check bool) (r.Experiments.code ^ " legacy") expect_l r.Experiments.legacy;
      Alcotest.(check bool) (r.Experiments.code ^ " must") expect_m r.Experiments.must;
      Alcotest.(check bool) (r.Experiments.code ^ " contribution") expect_c
        r.Experiments.contribution)
    rows

let test_table3_matches_paper () =
  let rows, _ = Experiments.table3 () in
  let find name =
    List.find (fun (r : Experiments.confusion_row) -> r.Experiments.tool = name) rows
  in
  let must = find "MUST-RMA" in
  Alcotest.(check bool) "MUST row exact" true
    (must.Experiments.fp = 0 && must.Experiments.fn = 15 && must.Experiments.tp = 32
   && must.Experiments.tn = 107);
  let contribution = find "Our Contribution" in
  Alcotest.(check bool) "contribution row exact" true
    (contribution.Experiments.fp = 0 && contribution.Experiments.fn = 0
    && contribution.Experiments.tp = 47 && contribution.Experiments.tn = 107);
  let legacy = find "RMA-Analyzer" in
  Alcotest.(check bool) "legacy FP/FN as published" true
    (legacy.Experiments.fp = 6 && legacy.Experiments.fn = 0)

let test_fig5_text_complete () =
  let text = Experiments.fig5 () in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "legacy misses" true (contains "no race seen");
  Alcotest.(check bool) "fragments listed" true (contains "[2...3]");
  Alcotest.(check bool) "race caught" true (contains "RACE against")

let test_fig8_matches_paper () =
  let result, _ = Experiments.fig8 () in
  Alcotest.(check int) "legacy node explosion" 5001 result.Experiments.legacy_nodes;
  Alcotest.(check int) "contribution merged" 2 result.Experiments.contribution_nodes;
  Alcotest.(check bool) "trailing get flagged" true result.Experiments.final_get_flagged

let test_fig9_report_format () =
  let text = Experiments.fig9 () in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "cites both lines" true
    (contains "dspl.hpp:612" && contains "dspl.hpp:614");
  Alcotest.(check bool) "paper wording" true
    (contains "Error when inserting memory access of type RMA_WRITE")

let test_ablation_shape () =
  let rows, _ = Experiments.ablation () in
  let find prefix =
    List.find
      (fun (r : Experiments.ablation_row) ->
        String.length r.Experiments.variant >= String.length prefix
        && String.sub r.Experiments.variant 0 (String.length prefix) = prefix)
      rows
  in
  let frag_only = find "Code2 / fragmentation-only" in
  let merged = find "Code2 / fragmentation+merging" in
  Alcotest.(check bool) "merging shrinks the loop tree" true
    (merged.Experiments.nodes * 100 < frag_only.Experiments.nodes);
  let blind = find "Suite FPs / order-blind" in
  let aware = find "Suite FPs / order-aware" in
  Alcotest.(check int) "order-blind brings the 6 FPs back" 6 blind.Experiments.races;
  Alcotest.(check int) "order-aware has none" 0 aware.Experiments.races

let test_harness_measure_baseline_free () =
  let workload ~config ~observer =
    Mpi_sim.Runtime.run ~nprocs:2 ~config ?observer (fun () -> Mpi_sim.Mpi.barrier ())
  in
  let m = Harness.measure ~nprocs:2 ~config:Mpi_sim.Config.quiet_network ~workload Harness.Baseline in
  Alcotest.(check int) "no races" 0 m.Harness.races;
  Alcotest.(check int) "no nodes" 0 m.Harness.nodes_final;
  Alcotest.(check string) "name" "Baseline" m.Harness.tool

let suite =
  [
    Alcotest.test_case "Table 2 matches the paper" `Slow test_table2_matches_paper;
    Alcotest.test_case "Table 3 matches the paper" `Slow test_table3_matches_paper;
    Alcotest.test_case "Figure 5 text complete" `Quick test_fig5_text_complete;
    Alcotest.test_case "Figure 8 matches the paper" `Quick test_fig8_matches_paper;
    Alcotest.test_case "Figure 9 report format" `Quick test_fig9_report_format;
    Alcotest.test_case "ablation shape" `Slow test_ablation_shape;
    Alcotest.test_case "harness baseline is free" `Quick test_harness_measure_baseline_free;
  ]

let test_csv_export () =
  let dir = Filename.temp_file "rma_export" "" in
  Sys.remove dir;
  Experiments.export ~dir [ "table2"; "ablation"; "suite" ];
  let lines path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with exception End_of_file -> List.rev acc | l -> go (l :: acc)
        in
        go [])
  in
  let table2 = lines (Filename.concat dir "table2.csv") in
  Alcotest.(check int) "table2: header + 4 rows" 5 (List.length table2);
  Alcotest.(check string) "table2 header" "code,rma_analyzer,must_rma,contribution"
    (List.hd table2);
  let c_files = Sys.readdir (Filename.concat dir "microbench_suite") in
  Alcotest.(check int) "all 154 codes emitted" 154 (Array.length c_files)

let test_csv_quoting () =
  Alcotest.(check string) "plain" "x" (Csv.escape_field "x");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b");
  Alcotest.(check string) "line" "a,\"b,c\",d" (Csv.line [ "a"; "b,c"; "d" ])

let suite =
  suite
  @ [
      Alcotest.test_case "csv export" `Slow test_csv_export;
      Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    ]
