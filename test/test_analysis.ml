open Mpi_sim
open Rma_analysis

(* Run [program] under [tool] (Collect mode recommended) and return the
   reported races. *)
let run_with ?(nprocs = 2) ?(seed = 3) tool program =
  tool.Tool.reset ();
  let config = { Config.default with Config.analysis_overhead_scale = 0.0 } in
  (try ignore (Runtime.run ~nprocs ~seed ~config ~observer:tool.Tool.observer program)
   with Report.Race_abort _ -> ());
  tool.Tool.races ()

let contribution ?(mode = Tool.Collect) ~nprocs () =
  Rma_analyzer.create ~nprocs ~mode Rma_analyzer.Contribution

let legacy ?(mode = Tool.Collect) ~nprocs () = Rma_analyzer.create ~nprocs ~mode Rma_analyzer.Legacy

let must ~nprocs () = Must_rma.create ~nprocs ()

let l file line op = Mpi.loc ~file ~line op

(* --- Programs --- *)

(* Figure 2a: MPI_Get followed by a Load of the origin buffer. *)
let get_then_load ~storage () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true ~label:"X" 8 in
  let win = Mpi.win_create ~base ~size:8 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let buf = Mpi.alloc ~storage ~exposed:true ~label:"buf" 8 in
    Mpi.get win ~loc:(l "fig2a.c" 10 "MPI_Get") ~target:1 ~target_disp:0 ~origin_addr:buf ~len:8;
    ignore (Mpi.load ~loc:(l "fig2a.c" 11 "Load") ~addr:buf ~len:8 ())
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

(* The safe converse: Load then MPI_Get (ll_load_get_inwindow_origin_safe). *)
let load_then_get () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 8 in
  let win = Mpi.win_create ~base ~size:8 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    ignore (Mpi.load ~loc:(l "safe.c" 10 "Load") ~addr:base ~len:8 ());
    Mpi.get win ~loc:(l "safe.c" 11 "MPI_Get") ~target:1 ~target_disp:0 ~origin_addr:base ~len:8
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

(* Figure 9 / Code 3: the same MPI_Put issued twice. *)
let duplicated_put () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 64 in
  let win = Mpi.win_create ~base ~size:64 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let src = Mpi.alloc ~exposed:true 8 in
    Mpi.put win ~loc:(l "dspl.hpp" 612 "MPI_Put") ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
    Mpi.put win ~loc:(l "dspl.hpp" 614 "MPI_Put") ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

(* Two epochs, each putting to the same target location: safe, because
   unlock_all completes the first put before the second epoch begins. *)
let two_epochs () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 8 in
  let win = Mpi.win_create ~base ~size:8 in
  for _i = 1 to 2 do
    Mpi.win_lock_all win;
    if rank = 0 then begin
      let src = Mpi.alloc ~exposed:true 8 in
      Mpi.put win ~loc:(l "loop.c" 5 "MPI_Put") ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
    end;
    Mpi.win_unlock_all win;
    Mpi.barrier ()
  done;
  Mpi.win_free win

(* Same but with only a flush_all + barrier between the puts: really
   synchronised, yet the tools do not instrument flush (§6(2)). *)
let flush_between_puts () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 8 in
  let win = Mpi.win_create ~base ~size:8 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let src = Mpi.alloc ~exposed:true 8 in
    Mpi.put win ~loc:(l "flush.c" 5 "MPI_Put") ~target:1 ~target_disp:0 ~origin_addr:src ~len:8;
    Mpi.win_flush_all win
  end;
  Mpi.barrier ();
  if rank = 0 then begin
    let src2 = Mpi.alloc ~exposed:true 8 in
    Mpi.put win ~loc:(l "flush.c" 9 "MPI_Put") ~target:1 ~target_disp:0 ~origin_addr:src2 ~len:8
  end;
  Mpi.win_unlock_all win;
  Mpi.win_free win

(* Remote put racing with the target's own load of its window. *)
let put_vs_target_load () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 8 in
  let win = Mpi.win_create ~base ~size:8 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let src = Mpi.alloc ~exposed:true 8 in
    Mpi.put win ~loc:(l "pvl.c" 5 "MPI_Put") ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
  end
  else ignore (Mpi.load ~loc:(l "pvl.c" 8 "Load") ~addr:base ~len:8 ());
  Mpi.win_unlock_all win;
  Mpi.win_free win

(* Target reads its window only after the origin unlocked and a barrier
   synchronised: race-free, and MUST must agree thanks to clock merging. *)
let put_then_synced_load () =
  let rank = Mpi.comm_rank () in
  let base = Mpi.alloc ~exposed:true 8 in
  let win = Mpi.win_create ~base ~size:8 in
  Mpi.win_lock_all win;
  if rank = 0 then begin
    let src = Mpi.alloc ~exposed:true 8 in
    Mpi.put win ~loc:(l "sync.c" 5 "MPI_Put") ~target:1 ~target_disp:0 ~origin_addr:src ~len:8
  end;
  Mpi.win_unlock_all win;
  Mpi.barrier ();
  if rank = 1 then ignore (Mpi.load ~loc:(l "sync.c" 9 "Load") ~addr:base ~len:8 ());
  Mpi.win_free win

(* --- Tests --- *)

let count = List.length

let test_contribution_detects_get_load () =
  let races = run_with (contribution ~nprocs:2 ()) (get_then_load ~storage:Memory.Heap) in
  Alcotest.(check bool) "flagged" true (count races >= 1);
  Alcotest.(check bool) "points at the Get" true
    (List.exists (fun r -> Report.involves_operation r "MPI_Get") races)

let test_legacy_detects_get_load () =
  let races = run_with (legacy ~nprocs:2 ()) (get_then_load ~storage:Memory.Heap) in
  Alcotest.(check bool) "flagged" true (count races >= 1)

let test_must_detects_get_load_heap () =
  let races = run_with (must ~nprocs:2 ()) (get_then_load ~storage:Memory.Heap) in
  Alcotest.(check bool) "flagged" true (count races >= 1)

let test_must_misses_get_load_stack () =
  (* ll_get_load_inwindow_origin_race with a stack array: the Table 2
     MUST-RMA false negative. *)
  let races = run_with (must ~nprocs:2 ()) (get_then_load ~storage:Memory.Stack) in
  Alcotest.(check int) "missed" 0 (count races)

let test_contribution_safe_on_load_get () =
  Alcotest.(check int) "no race" 0 (count (run_with (contribution ~nprocs:2 ()) load_then_get))

let test_legacy_fp_on_load_get () =
  (* The published order-insensitivity false positive (Table 2, row
     ll_load_get_inwindow_origin_safe). *)
  Alcotest.(check bool) "legacy flags the safe code" true
    (count (run_with (legacy ~nprocs:2 ()) load_then_get) >= 1)

let test_must_safe_on_load_get () =
  Alcotest.(check int) "must agrees it is safe" 0
    (count (run_with (must ~nprocs:2 ()) load_then_get))

let test_duplicated_put_detected () =
  let races = run_with (contribution ~nprocs:2 ()) duplicated_put in
  Alcotest.(check bool) "flagged" true (count races >= 1);
  let r = List.hd races in
  Alcotest.(check int) "conflict in the target's space" 1 r.Report.space;
  let msg = Report.to_message r in
  Alcotest.(check bool) "figure 9b wording" true
    (String.length msg > 0
    && String.sub msg 0 42 = "Error when inserting memory access of type");
  Alcotest.(check bool) "names both source lines" true
    (let has sub =
       let n = String.length msg and m = String.length sub in
       let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
       go 0
     in
     has "dspl.hpp:612" && has "dspl.hpp:614")

let test_duplicated_put_detected_by_must () =
  Alcotest.(check bool) "must flags it" true
    (count (run_with (must ~nprocs:2 ()) duplicated_put) >= 1)

let test_epoch_boundary_clears () =
  Alcotest.(check int) "two epochs are safe" 0
    (count (run_with (contribution ~nprocs:2 ()) two_epochs))

let test_flush_not_synchronising () =
  (* Pinned conservative behaviour (§6(2)): flush_all+barrier really
     synchronises the program, but no tool instruments flush, so the
     second put is still reported. *)
  Alcotest.(check bool) "contribution still flags across flush" true
    (count (run_with (contribution ~nprocs:2 ()) flush_between_puts) >= 1)

let test_put_vs_target_load () =
  Alcotest.(check bool) "contribution flags put vs target load" true
    (count (run_with (contribution ~nprocs:2 ()) put_vs_target_load) >= 1);
  Alcotest.(check bool) "must flags it too" true
    (count (run_with (must ~nprocs:2 ()) put_vs_target_load) >= 1)

let test_synced_load_is_safe () =
  Alcotest.(check int) "contribution: safe" 0
    (count (run_with (contribution ~nprocs:2 ()) put_then_synced_load));
  Alcotest.(check int) "must: safe thanks to clock merge" 0
    (count (run_with (must ~nprocs:2 ()) put_then_synced_load))

let test_abort_mode_raises () =
  let tool = contribution ~mode:Tool.Abort_on_race ~nprocs:2 () in
  let raised =
    try
      ignore
        (Runtime.run ~nprocs:2 ~seed:3
           ~config:{ Config.default with Config.analysis_overhead_scale = 0.0 }
           ~observer:tool.Tool.observer duplicated_put);
      false
    with Report.Race_abort _ -> true
  in
  Alcotest.(check bool) "abort raised" true raised

let test_bst_summary_populated () =
  let tool = contribution ~nprocs:2 () in
  let _ = run_with tool two_epochs in
  let summary = tool.Tool.bst_summary () in
  Alcotest.(check bool) "stores created" true (summary.Tool.stores >= 2);
  Alcotest.(check bool) "inserts recorded" true (summary.Tool.inserts_total > 0)

let test_alias_filter_skips_private_locals () =
  (* A local access to a non-exposed buffer inside an epoch must not be
     inserted into the analyzer's trees. *)
  let tool = contribution ~nprocs:1 () in
  let _ =
    run_with ~nprocs:1 tool (fun () ->
        let private_buf = Mpi.alloc 8 in
        let base = Mpi.alloc ~exposed:true 8 in
        let win = Mpi.win_create ~base ~size:8 in
        Mpi.win_lock_all win;
        Mpi.store_i64 ~addr:private_buf 1L;
        Mpi.win_unlock_all win;
        Mpi.win_free win)
  in
  let summary = tool.Tool.bst_summary () in
  Alcotest.(check int) "nothing inserted" 0 summary.Tool.inserts_total

let test_reset_clears_state () =
  let tool = contribution ~nprocs:2 () in
  let races = run_with tool duplicated_put in
  Alcotest.(check bool) "had races" true (count races >= 1);
  tool.Tool.reset ();
  Alcotest.(check int) "reset forgets" 0 (count (tool.Tool.races ()))

let suite =
  [
    Alcotest.test_case "contribution detects Get-Load (Fig 2a)" `Quick
      test_contribution_detects_get_load;
    Alcotest.test_case "legacy detects Get-Load" `Quick test_legacy_detects_get_load;
    Alcotest.test_case "MUST detects Get-Load on heap" `Quick test_must_detects_get_load_heap;
    Alcotest.test_case "MUST misses Get-Load on stack (Table 2 FN)" `Quick
      test_must_misses_get_load_stack;
    Alcotest.test_case "contribution safe on Load-Get" `Quick test_contribution_safe_on_load_get;
    Alcotest.test_case "legacy FP on Load-Get (Table 2)" `Quick test_legacy_fp_on_load_get;
    Alcotest.test_case "MUST safe on Load-Get" `Quick test_must_safe_on_load_get;
    Alcotest.test_case "duplicated put detected + Fig 9b report" `Quick test_duplicated_put_detected;
    Alcotest.test_case "duplicated put detected by MUST" `Quick test_duplicated_put_detected_by_must;
    Alcotest.test_case "epoch boundary clears the trees" `Quick test_epoch_boundary_clears;
    Alcotest.test_case "flush is not synchronising (pinned, §6)" `Quick test_flush_not_synchronising;
    Alcotest.test_case "put vs target load" `Quick test_put_vs_target_load;
    Alcotest.test_case "post-unlock synced load is safe" `Quick test_synced_load_is_safe;
    Alcotest.test_case "abort mode raises Race_abort" `Quick test_abort_mode_raises;
    Alcotest.test_case "bst summary populated" `Quick test_bst_summary_populated;
    Alcotest.test_case "alias filter skips private locals" `Quick
      test_alias_filter_skips_private_locals;
    Alcotest.test_case "reset clears state" `Quick test_reset_clears_state;
  ]

let test_flush_clearing_causes_false_negative () =
  (* §6(2): "simply cleaning the BST of the process calling
     MPI_Win_flush may lead to false negatives". Origin 1 puts and
     flushes; the flush only orders origin 1's operations, so origin 2's
     overlapping put still races — which the flush-clearing variant
     misses because origin 1's notification was wiped from the target's
     tree... here modelled on the target tree keyed by the caller. *)
  let program () =
    let rank = Mpi.comm_rank () in
    let base = Mpi.alloc ~exposed:true 8 in
    let win = Mpi.win_create ~base ~size:8 in
    Mpi.win_lock_all win;
    if rank = 1 then begin
      let src = Mpi.alloc ~exposed:true 8 in
      Mpi.put win ~loc:(Mpi.loc ~file:"flushfn.c" ~line:10 "MPI_Put") ~target:0 ~target_disp:0
        ~origin_addr:src ~len:8
    end;
    Mpi.barrier ();
    (* The target flushes its own window — clearing its tree in the
       broken variant. *)
    if rank = 0 then Mpi.win_flush_all win;
    Mpi.barrier ();
    if rank = 2 then begin
      let src = Mpi.alloc ~exposed:true 8 in
      Mpi.put win ~loc:(Mpi.loc ~file:"flushfn.c" ~line:20 "MPI_Put") ~target:0 ~target_disp:0
        ~origin_addr:src ~len:8
    end;
    Mpi.win_unlock_all win;
    Mpi.win_free win
  in
  let races ~flush_clears =
    (* Pinned observed-only: the ablation is about the OBSERVED trees.
       (Predictive mode would rightly predict this very race — the weak
       trees don't clear on flush — which is the feature, not the FN
       this test demonstrates.) *)
    let tool =
      Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect ~flush_clears ~predictive:false
        Rma_analyzer.Contribution
    in
    (try
       ignore
         (Runtime.run ~nprocs:3 ~seed:3
            ~config:{ Config.default with Config.analysis_overhead_scale = 0.0 }
            ~observer:tool.Tool.observer program)
     with Report.Race_abort _ -> ());
    tool.Tool.race_count ()
  in
  Alcotest.(check bool) "correct tool reports the put/put race" true (races ~flush_clears:false > 0);
  Alcotest.(check int) "flush-clearing variant misses it (the §6(2) FN)" 0
    (races ~flush_clears:true)

let suite =
  suite
  @ [
      Alcotest.test_case "flush-clearing causes false negatives (§6(2) ablation)" `Quick
        test_flush_clearing_causes_false_negative;
    ]

let test_toolbox_registry () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Toolbox.slug k ^ " roundtrips")
        true
        (Toolbox.of_slug (Toolbox.slug k) = Some k);
      let tool = Toolbox.make k ~nprocs:2 () in
      Alcotest.(check bool) "has a name" true (String.length tool.Tool.name > 0))
    Toolbox.all;
  Alcotest.(check bool) "unknown slug" true (Toolbox.of_slug "nonsense" = None);
  Alcotest.(check string) "display name" "Our Contribution" (Toolbox.name Toolbox.Contribution)

let suite =
  suite @ [ Alcotest.test_case "toolbox registry" `Quick test_toolbox_registry ]

(* Events fed straight to the observer, bypassing the runtime, so the
   schedule is exactly the pathological one. *)
let raw_put ~seq ~line =
  let open Rma_access in
  Event.Access
    {
      Event.space = 1;
      access =
        Access.make
          ~interval:(Interval.make ~lo:0 ~hi:7)
          ~kind:Access_kind.Rma_write ~issuer:0 ~seq
          ~debug:(Debug_info.make ~file:"closers.c" ~line ~operation:"MPI_Put");
      win = Some 0;
      relevant = true;
      on_stack = false;
      sim_time = float_of_int seq;
    }

let test_epoch_closers_count_distinct_ranks () =
  (* The §5.1 protocol clears a window's trees only once EVERY rank has
     closed its epoch. The regression: counting close events instead of
     distinct ranks lets rank 0, closing twice while rank 1's exposure
     epoch is still open, reach nprocs on its own and wipe rank 1's tree
     — hiding the race between the two overlapping puts it received. *)
  let tool = contribution ~nprocs:2 () in
  let feed e = ignore (tool.Tool.observer e) in
  feed (Event.Epoch_opened { win = 0; rank = 1; sim_time = 0.0 });
  feed (Event.Epoch_opened { win = 0; rank = 0; sim_time = 0.0 });
  feed (raw_put ~seq:1 ~line:10);
  feed (Event.Epoch_closed { win = 0; rank = 0; sim_time = 1.0 });
  feed (Event.Epoch_opened { win = 0; rank = 0; sim_time = 2.0 });
  feed (Event.Epoch_closed { win = 0; rank = 0; sim_time = 3.0 });
  (* Rank 1 never closed: the first put must still be in its tree. *)
  feed (raw_put ~seq:2 ~line:20);
  Alcotest.(check bool) "put/put race survives rank 0's double close" true
    (tool.Tool.race_count () >= 1)

let test_epoch_closers_still_clear_when_all_close () =
  (* The fix must not break the actual clear: after both ranks close,
     re-running the conflicting put races against nothing. *)
  let tool = contribution ~nprocs:2 () in
  let feed e = ignore (tool.Tool.observer e) in
  feed (Event.Epoch_opened { win = 0; rank = 1; sim_time = 0.0 });
  feed (raw_put ~seq:1 ~line:10);
  feed (Event.Epoch_closed { win = 0; rank = 1; sim_time = 1.0 });
  feed (Event.Epoch_closed { win = 0; rank = 0; sim_time = 1.0 });
  feed (Event.Epoch_opened { win = 0; rank = 1; sim_time = 2.0 });
  feed (raw_put ~seq:2 ~line:20);
  Alcotest.(check int) "trees cleared once every rank closed" 0 (tool.Tool.race_count ())

let test_max_reports_cap () =
  let tool =
    Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect ~max_reports:2 Rma_analyzer.Contribution
  in
  let feed e = ignore (tool.Tool.observer e) in
  feed (Event.Epoch_opened { win = 0; rank = 1; sim_time = 0.0 });
  for seq = 1 to 6 do
    feed (raw_put ~seq ~line:(100 + seq))
  done;
  Alcotest.(check int) "cap bounds stored reports" 2 (Tool.stored_races tool);
  Alcotest.(check bool) "every race still counted" true (tool.Tool.race_count () >= 5);
  Alcotest.(check bool) "truncation visible" true (Tool.dropped_races tool >= 3)

let suite =
  suite
  @ [
      Alcotest.test_case "epoch closers are distinct ranks (premature-clear regression)" `Quick
        test_epoch_closers_count_distinct_ranks;
      Alcotest.test_case "window still clears once all ranks close" `Quick
        test_epoch_closers_still_clear_when_all_close;
      Alcotest.test_case "max_reports caps stored, not counted" `Quick test_max_reports_cap;
    ]
