open Rma_analysis

let small_params =
  {
    Graph500.Bfs.default_params with
    Graph500.Bfs.graph =
      {
        Minivite.Graph.n_vertices = 3_000;
        avg_degree = 6;
        locality_window = 60;
        long_range_fraction = 0.15;
        hub_count = 4;
        seed = 31;
      };
    inbox_slots = 4_096;
    compute_per_edge = 0.0;
  }

let test_bfs_matches_reference () =
  let reference =
    Graph500.Bfs.reference_bfs small_params.Graph500.Bfs.graph
      ~source:small_params.Graph500.Bfs.source
  in
  let _, summary, levels = Graph500.Bfs.run_with_levels small_params ~nprocs:5 () in
  Alcotest.(check int) "no inbox overflow at this size" 0 summary.Graph500.Bfs.inbox_overflows;
  Alcotest.(check int) "reached count" (Array.fold_left (fun acc l -> if l >= 0 then acc + 1 else acc) 0 reference)
    summary.Graph500.Bfs.reached;
  Array.iteri
    (fun v expected ->
      if levels.(v) <> expected then
        Alcotest.failf "vertex %d: level %d, reference %d" v levels.(v) expected)
    reference

let test_bfs_deterministic_across_seeds () =
  (* The algorithm is level-synchronised: levels must not depend on the
     scheduler interleaving. *)
  let run seed =
    let _, summary, levels = Graph500.Bfs.run_with_levels small_params ~nprocs:4 ~seed () in
    (summary.Graph500.Bfs.reached, summary.Graph500.Bfs.parent_checksum, levels)
  in
  let r1, c1, l1 = run 3 and r2, c2, l2 = run 77 in
  Alcotest.(check int) "reached equal" r1 r2;
  Alcotest.(check int64) "checksum equal" c1 c2;
  Alcotest.(check bool) "levels equal" true (l1 = l2)

let test_bfs_parent_checksum_valid () =
  (* Parents land in window memory via the real Puts; every reached
     non-root vertex must have a reached parent one level up, so the
     checksum recomputed from the levels mirror must be plausible:
     recompute it from a second run capturing levels and parents via
     reference structure. *)
  let _, summary, levels = Graph500.Bfs.run_with_levels small_params ~nprocs:4 () in
  Alcotest.(check bool) "root reached" true (levels.(0) = 0);
  Alcotest.(check bool) "checksum nonzero" true (summary.Graph500.Bfs.parent_checksum <> 0L)

let test_bfs_scales_ranks () =
  (* Same answers at different rank counts. *)
  let run nprocs =
    let _, summary, _ = Graph500.Bfs.run_with_levels small_params ~nprocs () in
    (summary.Graph500.Bfs.reached, summary.Graph500.Bfs.levels)
  in
  Alcotest.(check (pair int int)) "2 vs 8 ranks" (run 2) (run 8)

let test_bfs_overflow_path_still_completes () =
  (* Tiny inboxes force the retry path; the reached set must still match
     the reference (levels may lag). *)
  let params = { small_params with Graph500.Bfs.inbox_slots = 16; max_levels = 200 } in
  let reference =
    Graph500.Bfs.reference_bfs params.Graph500.Bfs.graph ~source:params.Graph500.Bfs.source
  in
  let _, summary, levels = Graph500.Bfs.run_with_levels params ~nprocs:6 () in
  Alcotest.(check bool) "overflows happened" true (summary.Graph500.Bfs.inbox_overflows > 0);
  Array.iteri
    (fun v expected ->
      Alcotest.(check bool)
        (Printf.sprintf "vertex %d reachability" v)
        (expected >= 0)
        (levels.(v) >= 0))
    reference

let test_bfs_race_free_under_detectors () =
  List.iter
    (fun (name, tool) ->
      let _ = Graph500.Bfs.run small_params ~nprocs:4 ~observer:tool.Tool.observer () in
      Alcotest.(check int) (name ^ " silent") 0 (tool.Tool.race_count ()))
    [
      ( "contribution",
        Rma_analyzer.create ~nprocs:4 ~mode:Tool.Collect Rma_analyzer.Contribution );
      ("must", Must_rma.create ~nprocs:4 ());
    ]

let test_bfs_post_mortem_clean () =
  let recorder = Rma_trace.Recorder.create () in
  let _ =
    Graph500.Bfs.run small_params ~nprocs:3
      ~config:{ Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 0.0 }
      ~observer:(Rma_trace.Recorder.observer recorder) ()
  in
  let result = Rma_trace.Post_mortem.analyze (Rma_trace.Recorder.events recorder) in
  Alcotest.(check int) "no racy pair in the whole trace" 0 result.Rma_trace.Post_mortem.distinct_pairs

let suite =
  [
    Alcotest.test_case "bfs matches sequential reference" `Quick test_bfs_matches_reference;
    Alcotest.test_case "bfs deterministic across seeds" `Quick test_bfs_deterministic_across_seeds;
    Alcotest.test_case "bfs parent checksum valid" `Quick test_bfs_parent_checksum_valid;
    Alcotest.test_case "bfs scales with rank count" `Quick test_bfs_scales_ranks;
    Alcotest.test_case "bfs overflow path completes" `Quick test_bfs_overflow_path_still_completes;
    Alcotest.test_case "bfs race-free under detectors" `Quick test_bfs_race_free_under_detectors;
    Alcotest.test_case "bfs post-mortem clean" `Slow test_bfs_post_mortem_clean;
  ]
