open Rma_analysis

(* Small configurations so the whole suite stays quick. *)

let small_graph =
  {
    Minivite.Graph.n_vertices = 2_000;
    avg_degree = 6;
    locality_window = 50;
    long_range_fraction = 0.1;
    hub_count = 8;
    seed = 7;
  }

let small_minivite =
  { Minivite.Louvain.default_params with Minivite.Louvain.graph = small_graph; iterations = 3 }

let small_cfd =
  {
    Cfd_proxy.Halo.default_params with
    Cfd_proxy.Halo.iterations = 6;
    cells_per_chunk = 5;
    private_loads_per_iteration = 4;
    compute_per_iteration = 1e-4;
  }

(* --- Graph --- *)

let test_partition_covers_everything () =
  let n_global = 1003 and nprocs = 7 in
  let total = ref 0 in
  for rank = 0 to nprocs - 1 do
    let lo, hi = Minivite.Graph.partition ~n_global ~nprocs ~rank in
    total := !total + max 0 (hi - lo + 1);
    for v = lo to hi do
      Alcotest.(check int)
        (Printf.sprintf "owner of %d" v)
        rank
        (Minivite.Graph.owner_of ~n_global ~nprocs v)
    done
  done;
  Alcotest.(check int) "all vertices owned once" n_global !total

let test_graph_deterministic () =
  let a = Minivite.Graph.generate small_graph ~nprocs:4 ~rank:1 in
  let b = Minivite.Graph.generate small_graph ~nprocs:4 ~rank:1 in
  Alcotest.(check bool) "same adjacency" true (a.Minivite.Graph.adjacency = b.Minivite.Graph.adjacency)

let test_graph_no_self_loops () =
  let g = Minivite.Graph.generate small_graph ~nprocs:4 ~rank:2 in
  Array.iteri
    (fun i neigh ->
      let v = g.Minivite.Graph.owned_lo + i in
      Alcotest.(check bool) "no self loop" false (Array.exists (fun u -> u = v) neigh);
      Array.iter
        (fun u -> Alcotest.(check bool) "in range" true (u >= 0 && u < small_graph.Minivite.Graph.n_vertices))
        neigh)
    g.Minivite.Graph.adjacency

let test_ghosts_are_foreign () =
  let g = Minivite.Graph.generate small_graph ~nprocs:4 ~rank:0 in
  Array.iter
    (fun v -> Alcotest.(check bool) "not owned" false (Minivite.Graph.owned g v))
    (Minivite.Graph.ghosts g)

(* --- MiniVite --- *)

let prop_partition_owner_inverse =
  QCheck.Test.make ~name:"partition/owner_of inverse" ~count:200
    QCheck.(pair (int_range 1 10_000) (int_range 1 64))
    (fun (n_global, nprocs) ->
      let ok = ref true in
      for rank = 0 to nprocs - 1 do
        let lo, hi = Minivite.Graph.partition ~n_global ~nprocs ~rank in
        if lo <= hi then begin
          if Minivite.Graph.owner_of ~n_global ~nprocs lo <> rank then ok := false;
          if Minivite.Graph.owner_of ~n_global ~nprocs hi <> rank then ok := false
        end
      done;
      !ok)

let test_minivite_converges () =
  let _, summary = Minivite.Louvain.run small_minivite ~nprocs:4 () in
  Alcotest.(check bool) "modularity positive" true (summary.Minivite.Louvain.modularity > 0.5);
  Alcotest.(check bool) "communities formed" true
    (summary.Minivite.Louvain.communities < small_graph.Minivite.Graph.n_vertices / 2);
  Alcotest.(check bool) "labels moved" true (summary.Minivite.Louvain.total_changes > 0);
  Alcotest.(check bool) "communication happened" true
    (summary.Minivite.Louvain.ghost_fetches > 0 && summary.Minivite.Louvain.update_puts > 0)

let test_minivite_deterministic () =
  let _, a = Minivite.Louvain.run small_minivite ~nprocs:4 ~seed:3 () in
  let _, b = Minivite.Louvain.run small_minivite ~nprocs:4 ~seed:3 () in
  Alcotest.(check bool) "same summary" true (a = b)

let test_minivite_race_free_under_contribution () =
  let tool = Rma_analyzer.create ~nprocs:4 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let _ = Minivite.Louvain.run small_minivite ~nprocs:4 ~observer:tool.Tool.observer () in
  Alcotest.(check int) "no races" 0 (tool.Tool.race_count ())

let test_minivite_race_free_under_legacy () =
  let tool = Rma_analyzer.create ~nprocs:4 ~mode:Tool.Collect Rma_analyzer.Legacy in
  let _ = Minivite.Louvain.run small_minivite ~nprocs:4 ~observer:tool.Tool.observer () in
  Alcotest.(check int) "no false positives on minivite" 0 (tool.Tool.race_count ())

let test_minivite_race_free_under_must () =
  let tool = Must_rma.create ~nprocs:4 () in
  let _ = Minivite.Louvain.run small_minivite ~nprocs:4 ~observer:tool.Tool.observer () in
  Alcotest.(check int) "no races" 0 (tool.Tool.race_count ())

let test_minivite_injected_race_detected () =
  (* Figure 9: the duplicated MPI_Put at dspl.hpp:612/614. *)
  let params = { small_minivite with Minivite.Louvain.inject_race = true } in
  let check_tool name tool =
    let _ = Minivite.Louvain.run params ~nprocs:4 ~observer:tool.Tool.observer () in
    Alcotest.(check bool) (name ^ " flags the duplicate put") true (tool.Tool.race_count () > 0);
    match tool.Tool.races () with
    | [] -> Alcotest.fail "no report"
    | r :: _ ->
        let lines =
          ( r.Report.existing.Rma_access.Access.debug.Rma_access.Debug_info.line,
            r.Report.incoming.Rma_access.Access.debug.Rma_access.Debug_info.line )
        in
        Alcotest.(check bool) "report cites dspl.hpp 612/614" true
          (lines = (612, 614) || lines = (614, 612))
  in
  check_tool "contribution" (Rma_analyzer.create ~nprocs:4 ~mode:Tool.Collect Rma_analyzer.Contribution);
  check_tool "legacy" (Rma_analyzer.create ~nprocs:4 ~mode:Tool.Collect Rma_analyzer.Legacy)

let test_minivite_node_reduction_band () =
  (* Table 4's headline: the contribution's tree is barely smaller than
     legacy's on MiniVite (<10% here; the paper reports 0.04%-6.3%). *)
  let legacy = Rma_analyzer.create ~nprocs:4 ~mode:Tool.Collect Rma_analyzer.Legacy in
  let contribution = Rma_analyzer.create ~nprocs:4 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let _ = Minivite.Louvain.run small_minivite ~nprocs:4 ~observer:legacy.Tool.observer () in
  let _ = Minivite.Louvain.run small_minivite ~nprocs:4 ~observer:contribution.Tool.observer () in
  let nl = (legacy.Tool.bst_summary ()).Tool.nodes_final_total in
  let nc = (contribution.Tool.bst_summary ()).Tool.nodes_final_total in
  Alcotest.(check bool) "contribution not larger" true (nc <= nl);
  Alcotest.(check bool) "reduction below 10%" true
    (float_of_int (nl - nc) /. float_of_int (max 1 nl) < 0.10);
  Alcotest.(check bool) "trees are populated" true (nl > 1_000)

(* --- CFD-Proxy --- *)

let expected_cfd_checksum params ~nprocs =
  (* Every rank receives, per window and per peer, all iteration chunks
     that peer addressed to it; peers are symmetric in the ring. *)
  let open Cfd_proxy.Halo in
  let per_source src =
    let sum = ref 0.0 in
    for iter = 0 to params.iterations - 1 do
      for cell = 0 to params.cells_per_chunk - 1 do
        sum := !sum +. Int64.to_float (cell_value ~src ~iter ~cell)
      done
    done;
    !sum
  in
  let total = ref 0.0 in
  for rank = 0 to nprocs - 1 do
    let peers =
      List.concat_map
        (fun d ->
          if 2 * d >= nprocs then [] else [ (rank + d) mod nprocs; (rank - d + nprocs) mod nprocs ])
        (List.init params.neighbours (fun i -> i + 1))
      |> List.sort_uniq compare
      |> List.filter (fun p -> p <> rank)
    in
    List.iter (fun peer -> total := !total +. (float_of_int params.windows *. per_source peer)) peers
  done;
  !total

let test_cfd_checksum_correct () =
  (* The one-sided exchange really moves the data (deferred application
     included). *)
  let _, summary = Cfd_proxy.Halo.run small_cfd ~nprocs:6 () in
  let expected = expected_cfd_checksum small_cfd ~nprocs:6 in
  Alcotest.(check (float 1e-6)) "checksum" expected summary.Cfd_proxy.Halo.checksum

let test_cfd_checksum_stable_across_seeds () =
  let run seed =
    let _, s = Cfd_proxy.Halo.run small_cfd ~nprocs:6 ~seed () in
    s.Cfd_proxy.Halo.checksum
  in
  Alcotest.(check (float 1e-6)) "seed independent" (run 1) (run 99)

let test_cfd_race_free_under_contribution () =
  let tool = Rma_analyzer.create ~nprocs:6 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let _ = Cfd_proxy.Halo.run small_cfd ~nprocs:6 ~observer:tool.Tool.observer () in
  Alcotest.(check int) "no races" 0 (tool.Tool.race_count ())

let test_cfd_legacy_order_fp () =
  (* Legacy's order-insensitive rule flags every pack-then-put pair — the
     false-positive class the paper's §6 discussion circles around. *)
  let tool = Rma_analyzer.create ~nprocs:6 ~mode:Tool.Collect Rma_analyzer.Legacy in
  let _, summary = Cfd_proxy.Halo.run small_cfd ~nprocs:6 ~observer:tool.Tool.observer () in
  Alcotest.(check int) "one FP per halo put" summary.Cfd_proxy.Halo.halo_puts
    (tool.Tool.race_count ())

let test_cfd_must_race_free () =
  let tool = Must_rma.create ~nprocs:6 () in
  let _ = Cfd_proxy.Halo.run small_cfd ~nprocs:6 ~observer:tool.Tool.observer () in
  Alcotest.(check int) "no races" 0 (tool.Tool.race_count ())

let test_cfd_merging_collapses_tree () =
  (* Figure 10's companion claim: 99.9% node reduction on CFD-Proxy. *)
  let legacy = Rma_analyzer.create ~nprocs:6 ~mode:Tool.Collect Rma_analyzer.Legacy in
  let contribution = Rma_analyzer.create ~nprocs:6 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let _ = Cfd_proxy.Halo.run small_cfd ~nprocs:6 ~observer:legacy.Tool.observer () in
  let _ = Cfd_proxy.Halo.run small_cfd ~nprocs:6 ~observer:contribution.Tool.observer () in
  let nl = (legacy.Tool.bst_summary ()).Tool.nodes_peak_total in
  let nc = (contribution.Tool.bst_summary ()).Tool.nodes_peak_total in
  Alcotest.(check bool) "legacy explodes" true (nl > 1_000);
  Alcotest.(check bool) "contribution stays tiny" true (nc < nl / 10);
  Alcotest.(check bool) "merges happened" true
    ((contribution.Tool.bst_summary ()).Tool.merges_total > 0)

let test_cfd_epoch_times_ordering () =
  (* The Figure 10 ordering: baseline <= contribution <= legacy-ish; the
     detectors add real measured work to the simulated clock. *)
  let epoch_sum observer =
    let config = { Mpi_sim.Config.default with Mpi_sim.Config.analysis_overhead_scale = 5.0 } in
    let result, _ = Cfd_proxy.Halo.run small_cfd ~nprocs:6 ~config ?observer () in
    Array.fold_left ( +. ) 0.0 result.Mpi_sim.Runtime.epoch_times
  in
  let baseline = epoch_sum None in
  let contribution =
    epoch_sum
      (Some (Rma_analyzer.create ~nprocs:6 ~mode:Tool.Collect Rma_analyzer.Contribution).Tool.observer)
  in
  Alcotest.(check bool) "baseline cheapest" true (baseline < contribution)

let suite =
  [
    Alcotest.test_case "partition covers everything" `Quick test_partition_covers_everything;
    Alcotest.test_case "graph generation deterministic" `Quick test_graph_deterministic;
    Alcotest.test_case "graph has no self loops" `Quick test_graph_no_self_loops;
    Alcotest.test_case "ghosts are foreign" `Quick test_ghosts_are_foreign;
    QCheck_alcotest.to_alcotest prop_partition_owner_inverse;
    Alcotest.test_case "minivite converges" `Quick test_minivite_converges;
    Alcotest.test_case "minivite deterministic" `Quick test_minivite_deterministic;
    Alcotest.test_case "minivite race-free (contribution)" `Quick
      test_minivite_race_free_under_contribution;
    Alcotest.test_case "minivite race-free (legacy)" `Quick test_minivite_race_free_under_legacy;
    Alcotest.test_case "minivite race-free (MUST)" `Quick test_minivite_race_free_under_must;
    Alcotest.test_case "minivite injected race detected (Fig 9)" `Quick
      test_minivite_injected_race_detected;
    Alcotest.test_case "minivite node reduction band (Table 4)" `Quick
      test_minivite_node_reduction_band;
    Alcotest.test_case "cfd checksum correct" `Quick test_cfd_checksum_correct;
    Alcotest.test_case "cfd checksum seed-stable" `Quick test_cfd_checksum_stable_across_seeds;
    Alcotest.test_case "cfd race-free (contribution)" `Quick test_cfd_race_free_under_contribution;
    Alcotest.test_case "cfd legacy order FPs" `Quick test_cfd_legacy_order_fp;
    Alcotest.test_case "cfd race-free (MUST)" `Quick test_cfd_must_race_free;
    Alcotest.test_case "cfd merging collapses tree (Fig 10)" `Quick test_cfd_merging_collapses_tree;
    Alcotest.test_case "cfd epoch time ordering" `Quick test_cfd_epoch_times_ordering;
  ]
