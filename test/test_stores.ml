open Rma_access
open Rma_store

let dbg ?(file = "code.c") ?(op = "op") line = Debug_info.make ~file ~line ~operation:op

let acc ?(issuer = 0) ~seq ?(line = 1) ?(op = "op") lo hi kind =
  Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer ~seq ~debug:(dbg ~op line)

let is_race = function Store_intf.Race_detected _ -> true | Store_intf.Inserted -> false

let expect_inserted name outcome = Alcotest.(check bool) name false (is_race outcome)
let expect_race name outcome = Alcotest.(check bool) name true (is_race outcome)

(* --- Code 1 (Figure 8a): Load(4); MPI_Put(2,12); Store(7). --- *)

let code1_accesses =
  [
    acc ~seq:1 ~line:1 ~op:"Load" 4 4 Access_kind.Local_read;
    acc ~seq:2 ~line:2 ~op:"MPI_Put" 2 12 Access_kind.Rma_read;
    acc ~seq:3 ~line:3 ~op:"Store" 7 7 Access_kind.Local_write;
  ]

let test_legacy_misses_code1_race () =
  (* The published false negative (Figure 5a): the Store(7) conflicts with
     the Put's RMA_Read over [2...12], but that node sits off the
     lower-bound search path of 7. *)
  let store = Legacy_store.create () in
  List.iter (fun a -> expect_inserted "no race seen" (Legacy_store.insert store a)) code1_accesses;
  Alcotest.(check int) "all three nodes inserted" 3 (Legacy_store.size store)

let test_contribution_detects_code1_race () =
  let store = Disjoint_store.create () in
  let outcomes = List.map (Disjoint_store.insert store) code1_accesses in
  match outcomes with
  | [ first; second; third ] ->
      expect_inserted "load ok" first;
      expect_inserted "put ok" second;
      expect_race "store(7) races with the put" third
  | _ -> Alcotest.fail "expected three outcomes"

let test_code1_race_report_points_at_put () =
  let store = Disjoint_store.create () in
  let rec run = function
    | [] -> Alcotest.fail "race not detected"
    | a :: rest -> (
        match Disjoint_store.insert store a with
        | Store_intf.Inserted -> run rest
        | Store_intf.Race_detected { existing; incoming } ->
            Alcotest.(check string) "existing op" "MPI_Put" existing.Access.debug.Debug_info.operation;
            Alcotest.(check int) "existing line" 2 existing.Access.debug.Debug_info.line;
            Alcotest.(check string) "incoming op" "Store" incoming.Access.debug.Debug_info.operation)
  in
  run code1_accesses

let test_fragmentation_only_matches_figure_5b () =
  (* With merging disabled the tree after Load(4); Put(2,12) holds the
     three fragments of Figure 5b, all RMA_Read. *)
  let store = Disjoint_store.create ~merge:false () in
  expect_inserted "load" (Disjoint_store.insert store (List.nth code1_accesses 0));
  expect_inserted "put" (Disjoint_store.insert store (List.nth code1_accesses 1));
  let contents =
    List.map
      (fun a -> (Interval.lo a.Access.interval, Interval.hi a.Access.interval, a.Access.kind))
      (Disjoint_store.to_list store)
  in
  Alcotest.(check int) "three fragments" 3 (List.length contents);
  Alcotest.(check bool) "fragments are [2..3][4][5..12] all RMA_Read" true
    (contents
    = [
        (2, 3, Access_kind.Rma_read); (4, 4, Access_kind.Rma_read); (5, 12, Access_kind.Rma_read);
      ])

let test_merging_collapses_code1_put () =
  (* With merging on, the three fragments share kind and debug info (the
     Put dominates the Load on [4]) and collapse back to one node. *)
  let store = Disjoint_store.create () in
  expect_inserted "load" (Disjoint_store.insert store (List.nth code1_accesses 0));
  expect_inserted "put" (Disjoint_store.insert store (List.nth code1_accesses 1));
  Alcotest.(check int) "single node" 1 (Disjoint_store.size store);
  match Disjoint_store.to_list store with
  | [ only ] ->
      Alcotest.(check int) "lo" 2 (Interval.lo only.Access.interval);
      Alcotest.(check int) "hi" 12 (Interval.hi only.Access.interval);
      Alcotest.(check bool) "kind" true (Access_kind.equal only.Access.kind Access_kind.Rma_read)
  | _ -> Alcotest.fail "expected exactly one node"

(* --- Code 2 (Figure 8b): 1000 adjacent one-byte Gets in a loop. --- *)

let code2_run store_insert =
  (* Addresses: buf at 0..999, loop variable i at 5000. Emission per the
     paper's counting: one initial access of i, then per iteration the
     four accesses of i (condition read, index read, increment read and
     write) and the origin-side RMA_Write of buf[i]. *)
  let seq = ref 0 in
  let next () = incr seq; !seq in
  let i_addr = 5000 in
  let outcomes = ref [] in
  let emit a = outcomes := store_insert a :: !outcomes in
  emit (acc ~seq:(next ()) ~line:1 ~op:"Store" i_addr i_addr Access_kind.Local_write);
  for i = 0 to 999 do
    emit (acc ~seq:(next ()) ~line:1 ~op:"Load" i_addr i_addr Access_kind.Local_read);
    emit (acc ~seq:(next ()) ~line:2 ~op:"Load" i_addr i_addr Access_kind.Local_read);
    emit (acc ~seq:(next ()) ~line:2 ~op:"MPI_Get" i i Access_kind.Rma_write);
    emit (acc ~seq:(next ()) ~line:1 ~op:"Load" i_addr i_addr Access_kind.Local_read);
    emit (acc ~seq:(next ()) ~line:1 ~op:"Store" i_addr i_addr Access_kind.Local_write)
  done;
  List.rev !outcomes

let test_legacy_code2_node_explosion () =
  let store = Legacy_store.create () in
  let outcomes = code2_run (Legacy_store.insert store) in
  Alcotest.(check bool) "no race in the loop" true (List.for_all (fun o -> not (is_race o)) outcomes);
  (* 1 initial + 5 per iteration x 1000 = 5001 nodes (the paper's 5002
     includes the final duplicated Get issued after the loop). *)
  Alcotest.(check int) "one node per access" 5001 (Legacy_store.size store)

let test_contribution_code2_merges_to_two_nodes () =
  let store = Disjoint_store.create () in
  let outcomes = code2_run (Disjoint_store.insert store) in
  Alcotest.(check bool) "no race in the loop" true (List.for_all (fun o -> not (is_race o)) outcomes);
  Alcotest.(check int) "i + merged gets" 2 (Disjoint_store.size store);
  let spans =
    List.map
      (fun a -> (Interval.lo a.Access.interval, Interval.hi a.Access.interval))
      (Disjoint_store.to_list store)
  in
  Alcotest.(check bool) "gets merged into [0...999]" true (List.mem (0, 999) spans)

let test_contribution_code2_final_get_races () =
  (* The trailing MPI_Get(buf[0],1,X) writes buf[0] a second time from the
     same epoch: an origin-side RMA_Write/RMA_Write race (Figure 3,
     GET/GET cell). *)
  let store = Disjoint_store.create () in
  ignore (code2_run (Disjoint_store.insert store));
  let final = acc ~seq:99999 ~line:4 ~op:"MPI_Get" 0 0 Access_kind.Rma_write in
  expect_race "duplicate get on buf[0]" (Disjoint_store.insert store final)

(* --- Merging preconditions. --- *)

let test_merge_requires_same_debug_info () =
  (* Two adjacent RMA_Writes from different source lines must stay
     separate: "they will not be fixed in the same way" (§4.2). *)
  let store = Disjoint_store.create () in
  expect_inserted "first" (Disjoint_store.insert store (acc ~seq:1 ~line:10 ~op:"MPI_Get" 0 3 Access_kind.Rma_write));
  expect_inserted "second" (Disjoint_store.insert store (acc ~seq:2 ~line:20 ~op:"MPI_Get" 4 7 Access_kind.Rma_write));
  Alcotest.(check int) "not merged" 2 (Disjoint_store.size store)

let test_merge_requires_same_kind () =
  let store = Disjoint_store.create () in
  expect_inserted "first" (Disjoint_store.insert store (acc ~seq:1 ~line:10 0 3 Access_kind.Local_read));
  expect_inserted "second" (Disjoint_store.insert store (acc ~seq:2 ~line:10 4 7 Access_kind.Local_write));
  Alcotest.(check int) "not merged" 2 (Disjoint_store.size store)

let test_merge_chains_across_gap_filling () =
  (* [0..3] and [8..11] from the same line, then [4..7] arrives: all three
     coalesce. *)
  let store = Disjoint_store.create () in
  expect_inserted "left" (Disjoint_store.insert store (acc ~seq:1 ~line:5 ~op:"MPI_Put" 0 3 Access_kind.Rma_read));
  expect_inserted "right" (Disjoint_store.insert store (acc ~seq:2 ~line:5 ~op:"MPI_Put" 8 11 Access_kind.Rma_read));
  Alcotest.(check int) "separate before" 2 (Disjoint_store.size store);
  expect_inserted "middle" (Disjoint_store.insert store (acc ~seq:3 ~line:5 ~op:"MPI_Put" 4 7 Access_kind.Rma_read));
  Alcotest.(check int) "merged to one" 1 (Disjoint_store.size store);
  match Disjoint_store.to_list store with
  | [ only ] ->
      Alcotest.(check bool) "covers [0...11]" true
        (Interval.equal only.Access.interval (Interval.make ~lo:0 ~hi:11))
  | _ -> Alcotest.fail "expected one node"

let test_order_aware_flag () =
  (* Load then Get on the same buffer: safe for the contribution, flagged
     by the order-insensitive ablation (the legacy false positive). *)
  let load = acc ~seq:1 ~line:1 ~op:"Load" 0 7 Access_kind.Local_read in
  let get = acc ~seq:2 ~line:2 ~op:"MPI_Get" 0 7 Access_kind.Rma_write in
  let aware = Disjoint_store.create () in
  expect_inserted "load" (Disjoint_store.insert aware load);
  expect_inserted "get after load is safe" (Disjoint_store.insert aware get);
  let blind = Disjoint_store.create ~order_aware:false () in
  expect_inserted "load" (Disjoint_store.insert blind load);
  expect_race "order-insensitive flags it" (Disjoint_store.insert blind get)

let test_race_not_inserted () =
  let store = Disjoint_store.create () in
  expect_inserted "put" (Disjoint_store.insert store (acc ~seq:1 ~op:"MPI_Put" 0 7 Access_kind.Rma_write));
  expect_race "store races" (Disjoint_store.insert store (acc ~seq:2 ~op:"Store" 3 3 Access_kind.Local_write));
  Alcotest.(check int) "racy access not recorded" 1 (Disjoint_store.size store)

let test_clear_keeps_cumulative_stats () =
  let store = Disjoint_store.create () in
  expect_inserted "a" (Disjoint_store.insert store (acc ~seq:1 0 3 Access_kind.Local_read));
  Disjoint_store.clear store;
  Alcotest.(check int) "empty" 0 (Disjoint_store.size store);
  Alcotest.(check int) "inserts survive clear" 1 (Disjoint_store.stats store).Store_intf.inserts

let test_dominance_absorption_imprecision () =
  (* Inherited from the paper's Table 1 design: a byte keeps only its
     dominant access, so a Local_write absorbed by the owner's own
     RMA_Read (safe by program order) is no longer visible when a remote
     RMA_Read later touches the byte — the write/remote-read race goes
     unreported. We pin the behaviour so a future change is deliberate. *)
  let store = Disjoint_store.create () in
  expect_inserted "owner store"
    (Disjoint_store.insert store (acc ~issuer:0 ~seq:1 ~line:1 ~op:"Store" 0 7 Access_kind.Local_write));
  expect_inserted "owner get (safe by order)"
    (Disjoint_store.insert store (acc ~issuer:0 ~seq:2 ~line:2 ~op:"MPI_Get" 0 7 Access_kind.Rma_read));
  expect_inserted "remote read slips through"
    (Disjoint_store.insert store (acc ~issuer:1 ~seq:3 ~line:3 ~op:"MPI_Get" 0 7 Access_kind.Rma_read))

(* --- Insert fast path: finger cache and coalescing batch buffer. --- *)

let adjacent_run ?(n = 8) ?(lo0 = 0) ?(line = 2) store =
  for i = 0 to n - 1 do
    expect_inserted "run access"
      (Disjoint_store.insert store
         (acc ~seq:(i + 1) ~line ~op:"MPI_Get" (lo0 + i) (lo0 + i) Access_kind.Rma_write))
  done

let test_finger_absorbs_adjacent_run () =
  let store = Disjoint_store.create () in
  adjacent_run ~n:8 store;
  Alcotest.(check int) "one coalesced run" 1 (Disjoint_store.size store);
  let s = Disjoint_store.fast_path_stats store in
  Alcotest.(check int) "every extension is a finger hit" 7 s.Disjoint_store.finger_hits;
  Alcotest.(check int) "every extension coalesced" 7 s.Disjoint_store.batch_coalesced;
  Alcotest.(check bool) "fast-path invariants hold" true (Disjoint_store.self_check store)

let test_overlap_after_run_flushes_and_races () =
  (* Finger invalidation: an overlapping conflicting access after a
     coalesced run must flush the pending entry and race against the
     full hull, exactly as the unbatched store would. *)
  let store = Disjoint_store.create () in
  adjacent_run ~n:8 store;
  (match Disjoint_store.insert store (acc ~seq:50 ~line:9 ~op:"Store" 3 3 Access_kind.Local_write) with
  | Store_intf.Inserted -> Alcotest.fail "race against the pending run missed"
  | Store_intf.Race_detected { existing; _ } ->
      Alcotest.(check bool) "existing is the coalesced hull" true
        (Interval.equal existing.Access.interval (Interval.make ~lo:0 ~hi:7)));
  Alcotest.(check int) "run flushed, racy access not recorded" 1 (Disjoint_store.size store);
  Alcotest.(check int) "one flush event" 1
    (Disjoint_store.fast_path_stats store).Disjoint_store.batch_flushes;
  Alcotest.(check bool) "fast-path invariants hold" true (Disjoint_store.self_check store)

let test_clear_drops_pending_runs () =
  let store = Disjoint_store.create ~batch:true () in
  List.iter
    (fun a -> expect_inserted "run" (Disjoint_store.insert store a))
    [
      acc ~seq:1 ~line:1 ~op:"MPI_Get" 0 0 Access_kind.Rma_write;
      acc ~seq:2 ~line:1 ~op:"MPI_Get" 1 1 Access_kind.Rma_write;
      acc ~seq:3 ~line:2 ~op:"MPI_Put" 5000 5007 Access_kind.Rma_read;
    ];
  Alcotest.(check int) "two pending runs" 2 (Disjoint_store.size store);
  Disjoint_store.clear store;
  Alcotest.(check int) "clear drops pending runs too" 0 (Disjoint_store.size store);
  Alcotest.(check bool) "to_list is empty" true (Disjoint_store.to_list store = []);
  Alcotest.(check bool) "fast-path invariants hold" true (Disjoint_store.self_check store);
  expect_inserted "store usable after clear"
    (Disjoint_store.insert store (acc ~seq:4 ~line:3 ~op:"MPI_Get" 9 9 Access_kind.Rma_write));
  Alcotest.(check int) "fresh run" 1 (Disjoint_store.size store)

let test_merge_off_disables_fast_path () =
  (* [~merge:false] forces the fast path off — coalescing IS a merge —
     so the ablation takes exactly the slow path, tree op for tree op. *)
  let stream =
    List.init 8 (fun i -> acc ~seq:(i + 1) ~line:2 ~op:"MPI_Get" i i Access_kind.Rma_write)
  in
  let feed store = List.iter (fun a -> ignore (Disjoint_store.insert store a)) stream in
  let no_merge = Disjoint_store.create ~merge:false ~batch:true () in
  feed no_merge;
  Alcotest.(check bool) "batch request ignored without merging" false
    (Disjoint_store.batching no_merge);
  let s = Disjoint_store.fast_path_stats no_merge in
  Alcotest.(check int) "no finger hits" 0 s.Disjoint_store.finger_hits;
  Alcotest.(check int) "no coalesces" 0 s.Disjoint_store.batch_coalesced;
  Alcotest.(check int) "no flushes" 0 s.Disjoint_store.batch_flushes;
  Alcotest.(check int) "one node per access" 8 (Disjoint_store.size no_merge);
  let slow = Disjoint_store.create ~merge:false ~fast_path:false () in
  feed slow;
  Alcotest.(check int) "tree op count matches the explicit slow path"
    (Disjoint_store.stats slow).Store_intf.tree_ops
    (Disjoint_store.stats no_merge).Store_intf.tree_ops

let test_check_only_flushes_pending () =
  (* Regression: check_only with a non-empty batch buffer must flush it
     first — the probe's verdict is computed against exactly the nodes
     an unbatched store would hold — without inserting the probe or
     closing the buffer. *)
  let store = Disjoint_store.create ~batch:true () in
  adjacent_run ~n:6 store;
  (match
     Disjoint_store.check_only store (acc ~seq:50 ~line:9 ~op:"Store" 2 2 Access_kind.Local_write)
   with
  | Store_intf.Inserted -> Alcotest.fail "check_only missed the race against the pending run"
  | Store_intf.Race_detected { existing; _ } ->
      Alcotest.(check bool) "existing is the flushed hull" true
        (Interval.equal existing.Access.interval (Interval.make ~lo:0 ~hi:5)));
  Alcotest.(check int) "probe was not inserted" 1 (Disjoint_store.size store);
  Alcotest.(check int) "buffer flushed once" 1
    (Disjoint_store.fast_path_stats store).Disjoint_store.batch_flushes;
  Alcotest.(check bool) "buffer stays open after the flush" true (Disjoint_store.batching store)

let test_race_straddles_pending_flush () =
  (* Regression: a conflicting insert near one of several pending runs
     flushes only the interacting run, races against it, and leaves the
     other run buffered — final state identical to the unbatched store. *)
  let run_a = List.init 4 (fun i -> acc ~seq:(i + 1) ~line:1 ~op:"MPI_Get" i i Access_kind.Rma_write) in
  let run_b =
    List.init 4 (fun i ->
        acc ~seq:(i + 10) ~line:2 ~op:"MPI_Get" (5000 + i) (5000 + i) Access_kind.Rma_write)
  in
  let conflict = acc ~seq:20 ~line:5 ~op:"Store" 1 1 Access_kind.Local_write in
  let feed store =
    List.iter (fun a -> expect_inserted "run" (Disjoint_store.insert store a)) (run_a @ run_b);
    match Disjoint_store.insert store conflict with
    | Store_intf.Inserted -> Alcotest.fail "straddling conflict not flagged"
    | Store_intf.Race_detected { existing; _ } -> existing
  in
  let batched = Disjoint_store.create ~batch:true () in
  let existing = feed batched in
  Alcotest.(check bool) "race names the coalesced run" true
    (Interval.equal existing.Access.interval (Interval.make ~lo:0 ~hi:3));
  Alcotest.(check int) "only the straddled run was flushed" 1
    (Disjoint_store.fast_path_stats batched).Disjoint_store.batch_flushes;
  Alcotest.(check bool) "fast-path invariants hold" true (Disjoint_store.self_check batched);
  let reference = Disjoint_store.create ~fast_path:false () in
  let existing_ref = feed reference in
  Alcotest.(check bool) "batched and unbatched name the same node" true
    (Access.equal existing existing_ref);
  Disjoint_store.batch_flush batched;
  Alcotest.(check bool) "final interval sets agree" true
    (List.equal Access.equal (Disjoint_store.to_list reference) (Disjoint_store.to_list batched))

let test_recorder_sees_precoalesce_origins () =
  (* Regression: coalescing must not hide origins from the flight
     recorder, and the epoch counter must advance under note_epoch even
     with a non-empty batch buffer. *)
  Flight_recorder.enable ();
  Fun.protect ~finally:Flight_recorder.disable (fun () ->
      let store = Disjoint_store.create ~batch:true () in
      adjacent_run ~n:5 ~lo0:0 ~line:2 store;
      Disjoint_store.note_epoch store;
      adjacent_run ~n:3 ~lo0:10 ~line:3 store;
      let ring = Option.get (Disjoint_store.recorder store) in
      Alcotest.(check int) "every pre-coalesce origin recorded" 8 (Flight_recorder.length ring);
      Alcotest.(check int) "epoch advanced with a pending buffer" 1
        (Flight_recorder.current_epoch ring);
      let epochs =
        List.map
          (fun (o : Flight_recorder.origin) -> o.Flight_recorder.epoch)
          (Flight_recorder.to_list ring)
      in
      Alcotest.(check (list int)) "origins stamped with their insert epoch"
        [ 0; 0; 0; 0; 0; 1; 1; 1 ] epochs;
      let hits = Flight_recorder.history ring (Interval.make ~lo:2 ~hi:2) in
      Alcotest.(check int) "history pinpoints the one contributing origin" 1 (List.length hits))

(* --- Properties. --- *)

let access_gen =
  QCheck.Gen.(
    let* lo = int_range 0 100 in
    let* len = int_range 1 20 in
    let* k = int_range 0 3 in
    let* line = int_range 1 5 in
    let* issuer = int_range 0 2 in
    return (lo, len, k, line, issuer))

let arb_program =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (lo, len, k, line, p) -> Printf.sprintf "(%d,%d,%d,%d,%d)" lo len k line p) l))
    QCheck.Gen.(list_size (int_range 1 60) access_gen)

let build_accesses ?(single_issuer = false) program =
  List.mapi
    (fun i (lo, len, k, line, issuer) ->
      let kind = List.nth Access_kind.all k in
      (* Local accesses always belong to the owning process (rank 0): a
         process's BST only ever records its own loads and stores plus
         remote RMA accesses, never another process's locals. *)
      let issuer = if single_issuer || Access_kind.is_local kind then 0 else issuer in
      acc ~issuer ~seq:(i + 1) ~line ~op:"op" lo (lo + len - 1) kind)
    program

let feed_disjoint store accesses =
  List.iter (fun a -> ignore (Disjoint_store.insert store a)) accesses

let prop_disjoint_invariant =
  QCheck.Test.make ~name:"intervals stay pairwise disjoint" ~count:300 arb_program
    (fun program ->
      let store = Disjoint_store.create () in
      feed_disjoint store (build_accesses program);
      let rec pairwise_disjoint = function
        | a :: (b :: _ as rest) ->
            Interval.hi a.Access.interval < Interval.lo b.Access.interval && pairwise_disjoint rest
        | _ -> true
      in
      pairwise_disjoint (Disjoint_store.to_list store))

let prop_coverage_preserved =
  QCheck.Test.make ~name:"inserted bytes stay covered" ~count:300 arb_program
    (fun program ->
      let accesses = build_accesses program in
      let store = Disjoint_store.create () in
      let covered = Hashtbl.create 64 in
      List.iter
        (fun a ->
          match Disjoint_store.insert store a with
          | Store_intf.Inserted ->
              for b = Interval.lo a.Access.interval to Interval.hi a.Access.interval do
                Hashtbl.replace covered b ()
              done
          | Store_intf.Race_detected _ -> ())
        accesses;
      let store_covers b =
        List.exists (fun a -> Interval.contains a.Access.interval b) (Disjoint_store.to_list store)
      in
      Hashtbl.fold (fun b () ok -> ok && store_covers b) covered true)

let prop_strongest_kind_preserved =
  QCheck.Test.make ~name:"dominant kind per byte never weakens" ~count:300 arb_program
    (fun program ->
      let accesses = build_accesses program in
      let store = Disjoint_store.create () in
      let strongest = Hashtbl.create 64 in
      List.iter
        (fun a ->
          match Disjoint_store.insert store a with
          | Store_intf.Inserted ->
              for b = Interval.lo a.Access.interval to Interval.hi a.Access.interval do
                let s = Access_kind.strength a.Access.kind in
                let cur = Option.value (Hashtbl.find_opt strongest b) ~default:(-1) in
                if s > cur then Hashtbl.replace strongest b s
              done
          | Store_intf.Race_detected _ -> ())
        accesses;
      let kind_at b =
        List.find_map
          (fun a ->
            if Interval.contains a.Access.interval b then Some (Access_kind.strength a.Access.kind)
            else None)
          (Disjoint_store.to_list store)
      in
      Hashtbl.fold
        (fun b expected ok ->
          ok && match kind_at b with None -> false | Some s -> s >= expected)
        strongest true)

let prop_contribution_at_least_as_precise_as_legacy =
  (* Every race legacy reports on single-issuer programs is also reported
     by the contribution, except the order-insensitivity false positives
     (local access followed by RMA). *)
  QCheck.Test.make ~name:"no legacy-only true races" ~count:300 arb_program
    (fun program ->
      (* Single-issuer programs: with several issuers the Table 1
         dominance rule itself can absorb a local write into a stronger
         RMA fragment and hide it from later cross-process checks — an
         imprecision inherited from the paper, covered by its own unit
         test below. *)
      let accesses = build_accesses ~single_issuer:true program in
      let legacy = Legacy_store.create () in
      let contribution = Disjoint_store.create () in
      let legacy_races = ref [] and contribution_races = ref [] in
      List.iter
        (fun a ->
          (match Legacy_store.insert legacy a with
          | Store_intf.Race_detected { existing; incoming } ->
              legacy_races := (existing, incoming) :: !legacy_races
          | Store_intf.Inserted -> ());
          match Disjoint_store.insert contribution a with
          | Store_intf.Race_detected { existing; incoming } ->
              contribution_races := (existing, incoming) :: !contribution_races
          | Store_intf.Inserted -> ())
        accesses;
      (* Once either store reports a race the two diverge, so only compare
         up to the first contribution-reported race. *)
      match (!legacy_races, !contribution_races) with
      | [], _ -> true
      | (existing, incoming) :: _, [] ->
          (* Legacy-only report must be an order-insensitivity artefact:
             local first, RMA second, same process. *)
          Access_kind.is_local existing.Access.kind
          && Access_kind.is_rma incoming.Access.kind
          && Access.same_issuer existing incoming
      | _ :: _, _ :: _ -> true)

let prop_fragmentation_only_also_disjoint =
  QCheck.Test.make ~name:"merge-off store is still disjoint" ~count:200 arb_program
    (fun program ->
      let store = Disjoint_store.create ~merge:false () in
      feed_disjoint store (build_accesses program);
      let rec pairwise_disjoint = function
        | a :: (b :: _ as rest) ->
            Interval.hi a.Access.interval < Interval.lo b.Access.interval && pairwise_disjoint rest
        | _ -> true
      in
      pairwise_disjoint (Disjoint_store.to_list store))

let prop_merge_never_increases_nodes =
  QCheck.Test.make ~name:"merged store never larger than merge-off store" ~count:200 arb_program
    (fun program ->
      let accesses = build_accesses program in
      let merged = Disjoint_store.create () in
      let unmerged = Disjoint_store.create ~merge:false () in
      feed_disjoint merged accesses;
      feed_disjoint unmerged accesses;
      Disjoint_store.size merged <= Disjoint_store.size unmerged)

let suite =
  [
    Alcotest.test_case "legacy misses the Code 1 race (Fig 5a)" `Quick test_legacy_misses_code1_race;
    Alcotest.test_case "contribution detects the Code 1 race" `Quick
      test_contribution_detects_code1_race;
    Alcotest.test_case "Code 1 report names the MPI_Put" `Quick test_code1_race_report_points_at_put;
    Alcotest.test_case "fragmentation-only tree matches Figure 5b" `Quick
      test_fragmentation_only_matches_figure_5b;
    Alcotest.test_case "merging collapses the Code 1 fragments" `Quick
      test_merging_collapses_code1_put;
    Alcotest.test_case "legacy Code 2 node explosion (Fig 8b)" `Quick
      test_legacy_code2_node_explosion;
    Alcotest.test_case "contribution Code 2 merges to two nodes" `Quick
      test_contribution_code2_merges_to_two_nodes;
    Alcotest.test_case "Code 2 trailing duplicate Get races" `Quick
      test_contribution_code2_final_get_races;
    Alcotest.test_case "merge requires equal debug info" `Quick test_merge_requires_same_debug_info;
    Alcotest.test_case "merge requires equal kind" `Quick test_merge_requires_same_kind;
    Alcotest.test_case "merge chains when a gap is filled" `Quick test_merge_chains_across_gap_filling;
    Alcotest.test_case "order-aware flag" `Quick test_order_aware_flag;
    Alcotest.test_case "racy access is not recorded" `Quick test_race_not_inserted;
    Alcotest.test_case "clear keeps cumulative stats" `Quick test_clear_keeps_cumulative_stats;
    Alcotest.test_case "dominance absorption imprecision (pinned)" `Quick
      test_dominance_absorption_imprecision;
    Alcotest.test_case "finger cache absorbs an adjacent run" `Quick test_finger_absorbs_adjacent_run;
    Alcotest.test_case "overlap after a run flushes and races" `Quick
      test_overlap_after_run_flushes_and_races;
    Alcotest.test_case "clear drops pending runs" `Quick test_clear_drops_pending_runs;
    Alcotest.test_case "merge-off disables the fast path" `Quick test_merge_off_disables_fast_path;
    Alcotest.test_case "check_only flushes the pending buffer" `Quick
      test_check_only_flushes_pending;
    Alcotest.test_case "race straddling a pending flush" `Quick test_race_straddles_pending_flush;
    Alcotest.test_case "recorder sees pre-coalesce origins" `Quick
      test_recorder_sees_precoalesce_origins;
    QCheck_alcotest.to_alcotest prop_disjoint_invariant;
    QCheck_alcotest.to_alcotest prop_coverage_preserved;
    QCheck_alcotest.to_alcotest prop_strongest_kind_preserved;
    QCheck_alcotest.to_alcotest prop_contribution_at_least_as_precise_as_legacy;
    QCheck_alcotest.to_alcotest prop_fragmentation_only_also_disjoint;
    QCheck_alcotest.to_alcotest prop_merge_never_increases_nodes;
  ]
