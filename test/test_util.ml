open Rma_util

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_different_seeds_differ () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_prng_copy_independent () =
  let a = Prng.create ~seed:3 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays in [0, bound)" ~count:500
    QCheck.(pair (int_range 0 1000) (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Prng.int rng ~bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_int_in_range_bounds =
  QCheck.Test.make ~name:"Prng.int_in_range inclusive bounds" ~count:500
    QCheck.(triple (int_range 0 1000) (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, width) ->
      let rng = Prng.create ~seed in
      let hi = lo + width in
      let v = Prng.int_in_range rng ~lo ~hi in
      v >= lo && v <= hi)

let test_shuffle_is_permutation () =
  let rng = Prng.create ~seed:5 in
  let arr = Array.init 100 (fun i -> i) in
  Prng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 100 (fun i -> i));
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 100 (fun i -> i))

let test_bernoulli_extremes () =
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1" true (Prng.bernoulli rng ~p:1.0);
    Alcotest.(check bool) "p=0" false (Prng.bernoulli rng ~p:0.0)
  done

let test_split_streams_decorrelated () =
  let a = Prng.create ~seed:11 in
  let child = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 a = Prng.next_int64 child then incr same
  done;
  Alcotest.(check int) "no collisions" 0 !same

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stats.total s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max_value s);
  (* Sample variance of that classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0; 3.0 ];
  List.iter (Stats.add b) [ 10.0; 20.0 ];
  List.iter (Stats.add whole) [ 1.0; 2.0; 3.0; 10.0; 20.0 ];
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean whole) (Stats.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance whole) (Stats.variance merged)

let test_percentile () =
  let samples () = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "median" 35.0 (Stats.percentile (samples ()) ~p:50.0);
  Alcotest.(check (float 1e-9)) "p0" 15.0 (Stats.percentile (samples ()) ~p:0.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Stats.percentile (samples ()) ~p:100.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample array")
    (fun () -> ignore (Stats.percentile [||] ~p:50.0))

let prop_merge_matches_bulk =
  QCheck.Test.make ~name:"Stats.merge equals bulk accumulation" ~count:200
    QCheck.(pair (list (float_bound_exclusive 1000.0)) (list (float_bound_exclusive 1000.0)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      List.iter (Stats.add whole) (xs @ ys);
      let merged = Stats.merge a b in
      Stats.count merged = Stats.count whole
      && abs_float (Stats.mean merged -. Stats.mean whole) < 1e-6
      && abs_float (Stats.variance merged -. Stats.variance whole) < 1e-3)

(* --- Text_table --- *)

let test_table_render () =
  let t =
    Text_table.create ~title:"T"
      ~columns:[ ("a", Text_table.Left); ("bb", Text_table.Right) ]
      ()
  in
  Text_table.add_row t [ "x"; "1" ];
  Text_table.add_row t [ "yyyy"; "22" ];
  let rendered = Text_table.render t in
  Alcotest.(check bool) "contains title" true (String.length rendered > 0 && rendered.[0] = 'T');
  Alcotest.(check bool) "right-aligned number" true
    (let lines = String.split_on_char '\n' rendered in
     List.exists (fun l -> l = "| x    |  1 |") lines)

let test_table_arity_checked () =
  let t = Text_table.create ~columns:[ ("a", Text_table.Left) ] () in
  Alcotest.check_raises "arity" (Invalid_argument "Text_table.add_row: 2 cells for 1 columns")
    (fun () -> Text_table.add_row t [ "x"; "y" ])

let test_cell_helpers () =
  Alcotest.(check string) "float" "3.14" (Text_table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "percent" "12.34%" (Text_table.cell_percent 0.12341)

(* --- Timer --- *)

let test_timer_accumulator () =
  let acc = Timer.accumulator () in
  let v = Timer.record acc (fun () -> 42) in
  Alcotest.(check int) "passthrough" 42 v;
  Alcotest.(check bool) "non-negative" true (Timer.elapsed acc >= 0.0);
  Timer.reset acc;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Timer.elapsed acc)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_different_seeds_differ;
    Alcotest.test_case "prng copy independent" `Quick test_prng_copy_independent;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_int_in_range_bounds;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "split streams decorrelated" `Quick test_split_streams_decorrelated;
    Alcotest.test_case "stats basics" `Quick test_stats_basic;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    Alcotest.test_case "percentile" `Quick test_percentile;
    QCheck_alcotest.to_alcotest prop_merge_matches_bulk;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity checked" `Quick test_table_arity_checked;
    Alcotest.test_case "cell helpers" `Quick test_cell_helpers;
    Alcotest.test_case "timer accumulator" `Quick test_timer_accumulator;
  ]

(* --- Chart --- *)

let chart_suite =
  let test_bar_chart () =
    let rendered =
      Chart.bar_chart ~width:10 ~unit_label:"s" ~title:"T"
        [ ("a", 1.0); ("bb", 2.0); ("c", 0.0) ]
    in
    let lines = String.split_on_char '\n' rendered in
    Alcotest.(check bool) "title first" true (List.hd lines = "T");
    Alcotest.(check bool) "max bar full width" true
      (List.exists (fun l -> String.length l > 0 &&
         (let hashes = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l in
          hashes = 10)) lines);
    Alcotest.(check bool) "zero bar empty" true
      (List.exists (fun l -> String.length l > 3 && String.sub (String.trim l) 0 1 = "c"
         && not (String.contains l '#')) lines)
  in
  let test_grouped_chart_shares_scale () =
    let rendered =
      Chart.grouped_bar_chart ~width:8 ~title:"G" ~group_label:"n ="
        [ ("1", [ ("x", 4.0) ]); ("2", [ ("x", 8.0) ]) ]
    in
    let count_hashes l = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l in
    let lines = List.filter (fun l -> String.contains l '#') (String.split_on_char '\n' rendered) in
    Alcotest.(check (list int)) "4 then 8 hashes" [ 4; 8 ] (List.map count_hashes lines)
  in
  [
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
    Alcotest.test_case "grouped chart shares scale" `Quick test_grouped_chart_shares_scale;
  ]

let suite = suite @ chart_suite
