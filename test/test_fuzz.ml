open Mpi_sim
open Rma_analysis

(* Differential fuzzing: random structured MPI-RMA programs run under
   every detector. The programs may or may not race; the invariants are
   about tool behaviour, not ground truth:

   - nothing crashes, deadlocks or corrupts the simulator;
   - every tool's verdict is deterministic in the scheduler seed;
   - MUST-RMA is sound w.r.t. the post-mortem analysis (same
     happens-before model, strictly less information: stack-blind and
     shadow eviction) — if the post-mortem pass finds no race, MUST must
     not either;
   - legacy races on contribution-silent runs are explained by its two
     published deviations (order-insensitivity or the dominance
     absorption the contribution introduces). *)

type action =
  | Put of { target : int; disp : int; len : int }
  | Get of { target : int; disp : int; len : int }
  | Acc of { target : int; disp : int }
  | Load_win of { disp : int; len : int }
  | Store_win of { disp : int; len : int }
  | Load_buf of { off : int; len : int }
  | Store_buf of { off : int; len : int }

type round = { actions : action array array; barrier_after : bool }

type sync_style = Lock_all | Fence_rounds | One_epoch

type fuzz_program = { rounds : round list; sync : sync_style }

let nprocs = 3
let win_bytes = 64
let buf_bytes = 64

let action_gen =
  QCheck.Gen.(
    let* kind = int_range 0 6 in
    let* target = int_range 0 (nprocs - 1) in
    let* disp = int_range 0 (win_bytes - 9) in
    let* off = int_range 0 (buf_bytes - 9) in
    let* len = int_range 1 8 in
    return
      (match kind with
      | 0 -> Put { target; disp; len }
      | 1 -> Get { target; disp; len }
      | 2 -> Acc { target; disp = disp land lnot 7 }
      | 3 -> Load_win { disp; len }
      | 4 -> Store_win { disp; len }
      | 5 -> Load_buf { off; len }
      | _ -> Store_buf { off; len }))

let round_gen =
  QCheck.Gen.(
    let* actions =
      array_size (return nprocs) (array_size (int_range 0 3) action_gen)
    in
    let* barrier_after = bool in
    return { actions; barrier_after })

let program_gen =
  QCheck.Gen.(
    let* rounds = list_size (int_range 1 4) round_gen in
    let* sync = oneofl [ Lock_all; Fence_rounds; One_epoch ] in
    return { rounds; sync })

let print_action = function
  | Put { target; disp; len } -> Printf.sprintf "Put(t%d,%d,%d)" target disp len
  | Get { target; disp; len } -> Printf.sprintf "Get(t%d,%d,%d)" target disp len
  | Acc { target; disp } -> Printf.sprintf "Acc(t%d,%d)" target disp
  | Load_win { disp; len } -> Printf.sprintf "LoadW(%d,%d)" disp len
  | Store_win { disp; len } -> Printf.sprintf "StoreW(%d,%d)" disp len
  | Load_buf { off; len } -> Printf.sprintf "LoadB(%d,%d)" off len
  | Store_buf { off; len } -> Printf.sprintf "StoreB(%d,%d)" off len

let print_program p =
  String.concat " | "
    (List.map
       (fun r ->
         Printf.sprintf "[%s]%s"
           (String.concat " ; "
              (Array.to_list
                 (Array.map
                    (fun acts -> String.concat "," (Array.to_list (Array.map print_action acts)))
                    r.actions)))
           (if r.barrier_after then "B" else ""))
       p.rounds)
  ^
  match p.sync with
  | Lock_all -> " (lock_all/round)"
  | Fence_rounds -> " (fence rounds)"
  | One_epoch -> " (one epoch)"

let arb_program = QCheck.make ~print:print_program program_gen

(* Line numbers identify the (round, rank, index) of each action so
   reports are attributable. *)
let run_program p () =
  let rank = Mpi.comm_rank () in
  let win_base = Mpi.alloc ~label:"window" ~exposed:true win_bytes in
  let buf = Mpi.alloc ~label:"buffer" ~exposed:true buf_bytes in
  let win = Mpi.win_create ~base:win_base ~size:win_bytes in
  let act_line ri i = (ri * 100) + (rank * 10) + i in
  let run_action ri i a =
    let loc op = Mpi.loc ~file:"fuzz.c" ~line:(act_line ri i) op in
    match a with
    | Put { target; disp; len } ->
        Mpi.put ~loc:(loc "MPI_Put") win ~target ~target_disp:disp
          ~origin_addr:(buf + ((i * 8) mod (buf_bytes - len)))
          ~len
    | Get { target; disp; len } ->
        Mpi.get ~loc:(loc "MPI_Get") win ~target ~target_disp:disp
          ~origin_addr:(buf + ((i * 8) mod (buf_bytes - len)))
          ~len
    | Acc { target; disp } ->
        Mpi.accumulate ~loc:(loc "MPI_Accumulate") win ~target ~target_disp:disp
          ~origin_addr:(buf + (i * 8 mod (buf_bytes - 8)))
          ~len:8 ~op:Runtime.Sum
    | Load_win { disp; len } -> ignore (Mpi.load ~loc:(loc "Load") ~addr:(win_base + disp) ~len ())
    | Store_win { disp; len } ->
        Mpi.store ~loc:(loc "Store") ~addr:(win_base + disp) (Bytes.make len 'f')
    | Load_buf { off; len } -> ignore (Mpi.load ~loc:(loc "Load") ~addr:(buf + off) ~len ())
    | Store_buf { off; len } -> Mpi.store ~loc:(loc "Store") ~addr:(buf + off) (Bytes.make len 'f')
  in
  (match p.sync with
  | One_epoch -> Mpi.win_lock_all win
  | Fence_rounds -> Mpi.win_fence win
  | Lock_all -> ());
  List.iteri
    (fun ri r ->
      if p.sync = Lock_all then Mpi.win_lock_all win;
      Array.iteri (fun i a -> run_action ri i a) r.actions.(rank);
      (match p.sync with
      | Lock_all -> Mpi.win_unlock_all win
      | Fence_rounds -> Mpi.win_fence win
      | One_epoch -> ());
      if r.barrier_after then Mpi.barrier ())
    p.rounds;
  (match p.sync with One_epoch -> Mpi.win_unlock_all win | Fence_rounds | Lock_all -> ());
  Mpi.win_free win

let quiet = { Config.default with Config.analysis_overhead_scale = 0.0 }

let races_of tool p seed =
  tool.Tool.reset ();
  (try ignore (Runtime.run ~nprocs ~seed ~config:quiet ~observer:tool.Tool.observer (run_program p))
   with Report.Race_abort _ -> ());
  tool.Tool.race_count ()

let record p seed =
  let recorder = Rma_trace.Recorder.create () in
  ignore
    (Runtime.run ~nprocs ~seed ~config:quiet
       ~observer:(Rma_trace.Recorder.observer recorder)
       (run_program p));
  Rma_trace.Recorder.events recorder

let prop_no_crash_any_tool =
  QCheck.Test.make ~name:"fuzz: all tools survive random programs" ~count:150 arb_program
    (fun p ->
      let tools =
        [
          Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Legacy;
          Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Contribution;
          Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Fragmentation_only;
          Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Strided_extension;
          Must_rma.create ~nprocs ();
        ]
      in
      List.iter (fun tool -> ignore (races_of tool p 7)) tools;
      true)

let prop_verdict_deterministic =
  QCheck.Test.make ~name:"fuzz: verdicts deterministic per seed" ~count:75 arb_program
    (fun p ->
      let tool = Rma_analyzer.create ~nprocs ~mode:Tool.Collect Rma_analyzer.Contribution in
      let a = races_of tool p 13 and b = races_of tool p 13 in
      a = b)

let prop_must_sound_wrt_post_mortem =
  QCheck.Test.make ~name:"fuzz: post-mortem silent => MUST silent" ~count:100 arb_program
    (fun p ->
      let events = record p 5 in
      let pm = Rma_trace.Post_mortem.analyze events in
      if pm.Rma_trace.Post_mortem.distinct_pairs = 0 then begin
        let must = Must_rma.create ~nprocs () in
        races_of must p 5 = 0
      end
      else true)

let prop_post_mortem_deterministic_on_trace =
  QCheck.Test.make ~name:"fuzz: post-mortem is a pure function of the trace" ~count:75 arb_program
    (fun p ->
      let events = record p 9 in
      let a = (Rma_trace.Post_mortem.analyze events).Rma_trace.Post_mortem.distinct_pairs in
      let b = (Rma_trace.Post_mortem.analyze events).Rma_trace.Post_mortem.distinct_pairs in
      a = b)

(* --- codec totality under hostile bytes ----------------------------- *)

(* Write a recorded stream through the real framing writer (with any
   ambient fault plan cleared, so the base bytes are well-formed), then
   attack the bytes directly. The invariant is totality: [read_all]
   returns [Ok] or a structured [Error] — it never raises and never
   loops — and a complete parse is only reported for complete streams. *)

let without_fault_plan f =
  let saved = Rma_fault.plan () in
  Rma_fault.clear ();
  Fun.protect
    ~finally:(fun () -> match saved with Some pl -> Rma_fault.install pl | None -> ())
    f

let trace_bytes events =
  let path = Filename.temp_file "fuzz_codec" ".txt" in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> without_fault_plan (fun () -> Rma_trace.Codec.write_all oc events));
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  s

let read_trace_bytes s =
  let path = Filename.temp_file "fuzz_codec" ".txt" in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s);
  let ic = open_in path in
  let r = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Rma_trace.Codec.read_all ic) in
  Sys.remove path;
  r

let prop_truncated_trace_structured_error =
  QCheck.Test.make ~name:"fuzz: truncated traces yield Error, never raise"
    ~count:50
    QCheck.(pair arb_program small_nat)
    (fun (p, cut_seed) ->
      let events = record p 17 in
      let s = trace_bytes events in
      let n = List.length events in
      (* Several cuts per stream, spread deterministically. *)
      List.for_all
        (fun k ->
          let cut = (cut_seed + (k * 7919)) mod (String.length s + 1) in
          match read_trace_bytes (String.sub s 0 cut) with
          | Ok evs ->
              (* [Ok] may only report the complete stream — losing at
                 most the final newline, which carries no data. Any cut
                 that drops an event or the footer must be an error. *)
              cut >= String.length s - 1 && List.length evs = n
          | Error e -> e.Rma_trace.Codec.at_line >= 1)
        [ 0; 1; 2; 3 ])

let prop_bitflipped_trace_never_raises =
  QCheck.Test.make ~name:"fuzz: bit-flipped traces decode totally"
    ~count:50
    QCheck.(pair arb_program small_nat)
    (fun (p, flip_seed) ->
      let events = record p 29 in
      let s = trace_bytes events in
      List.for_all
        (fun k ->
          let pos = (flip_seed + (k * 6131)) mod String.length s in
          let bit = (flip_seed + k) mod 8 in
          let b = Bytes.of_string s in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          match read_trace_bytes (Bytes.to_string b) with
          | Ok evs -> List.length evs <= List.length events
          | Error e -> e.Rma_trace.Codec.at_line >= 1)
        [ 0; 1; 2; 3 ])

let prop_trace_roundtrip_preserves_analysis =
  QCheck.Test.make ~name:"fuzz: codec roundtrip preserves post-mortem result" ~count:50
    arb_program
    (fun p ->
      let events = record p 21 in
      let reencoded =
        List.map
          (fun e ->
            match Rma_trace.Codec.decode_event (Rma_trace.Codec.encode_event e) with
            | Ok d -> d
            | Error msg -> QCheck.Test.fail_reportf "codec failure: %s" msg)
          events
      in
      (Rma_trace.Post_mortem.analyze events).Rma_trace.Post_mortem.distinct_pairs
      = (Rma_trace.Post_mortem.analyze reencoded).Rma_trace.Post_mortem.distinct_pairs)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_no_crash_any_tool;
    QCheck_alcotest.to_alcotest prop_verdict_deterministic;
    QCheck_alcotest.to_alcotest prop_must_sound_wrt_post_mortem;
    QCheck_alcotest.to_alcotest prop_post_mortem_deterministic_on_trace;
    QCheck_alcotest.to_alcotest prop_trace_roundtrip_preserves_analysis;
    QCheck_alcotest.to_alcotest prop_truncated_trace_structured_error;
    QCheck_alcotest.to_alcotest prop_bitflipped_trace_never_raises;
  ]
