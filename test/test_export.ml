(* The race-provenance pipeline: flight recorder semantics, JSON/SARIF
   exports, and the bench perf-trajectory comparison. *)

open Rma_access
open Rma_store
open Rma_analysis
open Rma_report
module Event = Mpi_sim.Event
module Json = Rma_util.Json

let mk_access ~seq ~line ~op lo hi kind =
  Access.make
    ~interval:(Interval.make ~lo ~hi)
    ~kind ~issuer:0 ~seq
    ~debug:(Debug_info.make ~file:"code1.c" ~line ~operation:op)

let with_recorder f =
  Flight_recorder.enable ();
  Fun.protect ~finally:Flight_recorder.disable f

(* Figure 5's Code 1 against the contribution tool: Load(4) is dominated
   by the Put's fragment (Table 1) and every piece merges back into one
   [2..12] node carrying only the Put's debug info, then Store(7) races
   against it. The canonical provenance-loss case. *)
let code1_race_reports () =
  let tool = Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect Rma_analyzer.Contribution in
  let feed e = ignore (tool.Tool.observer e) in
  let access ~seq ~line ~op lo hi kind =
    Event.Access
      {
        Event.space = 0;
        access = mk_access ~seq ~line ~op lo hi kind;
        win = Some 0;
        relevant = true;
        on_stack = false;
        sim_time = float_of_int seq;
      }
  in
  feed (Event.Epoch_opened { win = 0; rank = 0; sim_time = 0.0 });
  feed (access ~seq:1 ~line:1 ~op:"Load" 4 4 Access_kind.Local_read);
  feed (access ~seq:2 ~line:2 ~op:"MPI_Put" 2 12 Access_kind.Rma_read);
  feed (access ~seq:3 ~line:3 ~op:"Store" 7 7 Access_kind.Local_write);
  tool.Tool.races ()

(* --- flight recorder ----------------------------------------------- *)

let test_recorder_disabled_noop () =
  Alcotest.(check bool) "recorder off by default" false (Flight_recorder.is_enabled ());
  Alcotest.(check bool) "create yields no ring" true (Flight_recorder.create () = None);
  let store = Disjoint_store.create () in
  ignore (Disjoint_store.insert store (mk_access ~seq:1 ~line:1 ~op:"Load" 0 7 Access_kind.Local_read));
  Alcotest.(check bool) "store carries no recorder" true (Disjoint_store.recorder store = None);
  let reports = code1_race_reports () in
  Alcotest.(check int) "code1 still races without the recorder" 1 (List.length reports);
  let r = List.hd reports in
  Alcotest.(check int) "no history recorded" 0
    (List.length r.Report.provenance.Report.existing_history)

let test_ring_eviction_keeps_newest () =
  let ring = Flight_recorder.create_exn ~capacity:4 () in
  for seq = 1 to 10 do
    Flight_recorder.record ring (mk_access ~seq ~line:seq ~op:"Load" seq seq Access_kind.Local_read)
  done;
  Alcotest.(check int) "length is the capacity" 4 (Flight_recorder.length ring);
  Alcotest.(check int) "total counts evictions" 10 (Flight_recorder.recorded_total ring);
  let seqs =
    List.map (fun (o : Flight_recorder.origin) -> o.Flight_recorder.access.Access.seq)
      (Flight_recorder.to_list ring)
  in
  Alcotest.(check (list int)) "newest four survive, oldest first" [ 7; 8; 9; 10 ] seqs;
  let hits = Flight_recorder.history ring (Interval.make ~lo:8 ~hi:9) in
  Alcotest.(check int) "history filters by overlap" 2 (List.length hits)

let test_recorder_epochs_stamp_origins () =
  let ring = Flight_recorder.create_exn () in
  Flight_recorder.note_epoch ring;
  Flight_recorder.record ring (mk_access ~seq:1 ~line:1 ~op:"Load" 0 0 Access_kind.Local_read);
  Flight_recorder.note_epoch ring;
  Flight_recorder.record ring (mk_access ~seq:2 ~line:2 ~op:"Load" 0 0 Access_kind.Local_read);
  let epochs =
    List.map (fun (o : Flight_recorder.origin) -> o.Flight_recorder.epoch)
      (Flight_recorder.to_list ring)
  in
  Alcotest.(check (list int)) "each origin stamped with its epoch" [ 1; 2 ] epochs;
  Flight_recorder.clear ring;
  Alcotest.(check int) "clear drops history" 0 (Flight_recorder.length ring);
  Alcotest.(check int) "clear keeps the epoch counter" 2 (Flight_recorder.current_epoch ring)

(* --- provenance through the analyzer ------------------------------- *)

let test_merged_race_names_both_sources () =
  (* The acceptance case: the surviving node says line 2, the recorder
     still names the dominated Load at line 1. *)
  let reports = with_recorder code1_race_reports in
  Alcotest.(check int) "one race" 1 (List.length reports);
  let r = List.hd reports in
  let lines = List.map (fun (d : Debug_info.t) -> d.Debug_info.line) (Report.contributing_debugs r) in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "line %d implicated" line)
        true (List.mem line lines))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "existing history holds both merged sources" true
    (List.length r.Report.provenance.Report.existing_history >= 2);
  Alcotest.(check int) "race id assigned" 1 r.Report.provenance.Report.id;
  Alcotest.(check (option int)) "epoch recorded" (Some 1) r.Report.provenance.Report.epoch

(* --- JSON ----------------------------------------------------------- *)

let test_json_round_trip () =
  let reports = with_recorder code1_race_reports in
  let json = Race_export.to_json ~generator:"test" reports in
  let text = Json.to_string json in
  match Json.of_string text with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok reparsed -> (
      match Race_export.of_json reparsed with
      | Error msg -> Alcotest.failf "decode failed: %s" msg
      | Ok reports' ->
          Alcotest.(check int) "report count survives" (List.length reports)
            (List.length reports');
          (* Identity on every exported field: re-serialising the decoded
             reports reproduces the bytes. *)
          Alcotest.(check string) "byte-identical re-export" text
            (Json.to_string (Race_export.to_json ~generator:"test" reports')))

(* A race detected on a budget-degraded store: a Coarsen budget of two
   nodes collapses six adjacent same-kind reads with distinct source
   lines (which regular merging refuses), then a local write lands on
   the coarse node. The report must carry [degraded = true] end-to-end:
   JSON round-trip, and downgraded confidence in SARIF. *)
let degraded_race_reports () =
  let budget =
    {
      Rma_fault.Budget.max_nodes = Some 2;
      max_bytes = None;
      policy = Rma_fault.Budget.Coarsen;
    }
  in
  let tool = Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect ~budget Rma_analyzer.Contribution in
  let feed e = ignore (tool.Tool.observer e) in
  let access ~seq ~line ~op lo hi kind =
    Event.Access
      {
        Event.space = 0;
        access = mk_access ~seq ~line ~op lo hi kind;
        win = Some 0;
        relevant = true;
        on_stack = false;
        sim_time = float_of_int seq;
      }
  in
  feed (Event.Epoch_opened { win = 0; rank = 0; sim_time = 0.0 });
  for i = 0 to 5 do
    feed
      (access ~seq:(i + 1) ~line:(i + 1) ~op:"MPI_Get"
         (i * 4)
         ((i * 4) + 3)
         Access_kind.Rma_read)
  done;
  feed (access ~seq:7 ~line:9 ~op:"Store" 5 5 Access_kind.Local_write);
  (tool.Tool.races (), (tool.Tool.bst_summary ()).Tool.degraded_drops_total)

let test_degraded_race_flagged () =
  let reports, drops = degraded_race_reports () in
  Alcotest.(check bool) "the coarsen budget degraded the store" true (drops > 0);
  Alcotest.(check int) "the write still races" 1 (List.length reports);
  let r = List.hd reports in
  Alcotest.(check bool) "provenance carries the degradation" true
    r.Report.provenance.Report.degraded;
  (* The flag survives the JSON round trip... *)
  let text = Json.to_string (Race_export.to_json ~generator:"test" reports) in
  (match Result.bind (Json.of_string text) Race_export.of_json with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok reports' ->
      Alcotest.(check bool) "degraded survives JSON" true
        (List.hd reports').Report.provenance.Report.degraded);
  (* ...and a schema-v1 file without the field still loads, as exact. *)
  let clean = with_recorder code1_race_reports in
  let stripped =
    match Json.of_string (Json.to_string (Race_export.to_json ~generator:"test" clean)) with
    | Ok (Json.Obj fields) ->
        Json.Obj
          (List.map
             (function
               | "races", Json.List rs ->
                   ( "races",
                     Json.List
                       (List.map
                          (function
                            | Json.Obj f ->
                                Json.Obj (List.filter (fun (k, _) -> k <> "degraded") f)
                            | j -> j)
                          rs) )
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "re-parse failed"
  in
  match Race_export.of_json stripped with
  | Error msg -> Alcotest.failf "pre-governance file rejected: %s" msg
  | Ok loaded ->
      Alcotest.(check bool) "missing field defaults to exact" false
        (List.hd loaded).Report.provenance.Report.degraded

let test_json_rejects_bad_version () =
  let json =
    Json.Obj [ ("schema_version", Json.Int 999); ("races", Json.List []) ]
  in
  match Race_export.of_json json with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema version 999 accepted"

(* --- SARIF ----------------------------------------------------------- *)

let test_sarif_matches_golden () =
  let reports = with_recorder code1_race_reports in
  let sarif = Json.to_string (Race_export.to_sarif ~generator:"test" reports) ^ "\n" in
  (* GOLDEN_OUT=/abs/path (or GOLDEN_OUT_DIR, see test/golden_regen.ml)
     regenerates the golden file instead of comparing (after an
     intentional format change). *)
  Golden_regen.check ~name:"race.sarif" ~what:"SARIF export matches golden file" sarif

let test_degraded_sarif_matches_golden () =
  let reports, _ = degraded_race_reports () in
  let sarif = Json.to_string (Race_export.to_sarif ~generator:"test" reports) ^ "\n" in
  (* The downgrade is asserted structurally before any golden diff, so a
     blind regeneration cannot launder it away. *)
  Alcotest.(check bool) "degraded result downgraded to warning" true
    (Astring.String.is_infix ~affix:"\"level\": \"warning\"" sarif);
  Alcotest.(check bool) "confidence property present" true
    (Astring.String.is_infix ~affix:"\"confidence\": \"downgraded\"" sarif);
  Golden_regen.check ~name:"race_degraded.sarif" ~what:"degraded SARIF matches golden file"
    sarif

let test_sarif_lists_all_locations () =
  let reports = with_recorder code1_race_reports in
  let sarif = Json.to_string (Race_export.to_sarif ~generator:"test" reports) in
  Alcotest.(check bool) "SARIF version marker present" true
    (Astring.String.is_infix ~affix:"\"2.1.0\"" sarif);
  (* Lines 1 (merged-away Load), 2 (surviving Put) and 3 (incoming
     Store) must all be named somewhere in the result. *)
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "startLine %d exported" line)
        true
        (Astring.String.is_infix ~affix:(Printf.sprintf "\"startLine\": %d" line) sarif))
    [ 1; 2; 3 ]

let test_explain_names_merged_source () =
  let reports = with_recorder code1_race_reports in
  let text = Race_export.explain (List.hd reports) in
  Alcotest.(check bool) "explain shows the merged-away Load" true
    (Astring.String.is_infix ~affix:"code1.c:1" text);
  Alcotest.(check bool) "explain shows the matrix cell" true
    (Astring.String.is_infix ~affix:"Figure 3 cell" text)

(* --- perf trajectory ------------------------------------------------- *)

let sample name wall metrics =
  {
    Perf_trajectory.name;
    wall_seconds = wall;
    peak_rss_bytes = 0.0;
    events_per_sec = 0.0;
    critical_path_ms = 0.0;
    metrics;
  }

let record samples =
  {
    Perf_trajectory.schema_version = Perf_trajectory.schema_version;
    generator = "test";
    scale = 0.1;
    samples;
    counters = [ ("events", 42) ];
  }

let test_perf_json_round_trip () =
  let r = record [ sample "fig10" 1.5 [ ("nodes", 100.0); ("races", 3.0) ] ] in
  match Perf_trajectory.of_json (Perf_trajectory.to_json r) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok r' ->
      Alcotest.(check string) "round-trips"
        (Json.to_string (Perf_trajectory.to_json r))
        (Json.to_string (Perf_trajectory.to_json r'))

let test_compare_identical_is_clean () =
  let r = record [ sample "fig10" 1.5 [ ("nodes", 100.0); ("races", 3.0) ] ] in
  let deltas = Perf_trajectory.compare_records r r in
  Alcotest.(check int) "every metric compared" 3 (List.length deltas);
  List.iter
    (fun (d : Perf_trajectory.delta) ->
      Alcotest.(check (float 1e-9)) "ratio 1.0" 1.0 d.Perf_trajectory.ratio)
    deltas;
  Alcotest.(check int) "no regressions on identical records" 0
    (List.length (Perf_trajectory.regressions deltas))

let test_compare_flags_regression () =
  let old_r = record [ sample "fig10" 1.0 [ ("nodes", 100.0); ("modularity", 0.4) ] ] in
  let new_r = record [ sample "fig10" 2.0 [ ("nodes", 200.0); ("modularity", 0.1) ] ] in
  let regs = Perf_trajectory.(regressions (compare_records old_r new_r)) in
  let metrics = List.map (fun (d : Perf_trajectory.delta) -> d.Perf_trajectory.metric) regs in
  Alcotest.(check bool) "2x wall time flagged" true (List.mem "wall_seconds" metrics);
  Alcotest.(check bool) "2x node count flagged" true (List.mem "nodes" metrics);
  Alcotest.(check bool) "modularity is not lower-is-better" false (List.mem "modularity" metrics)

let test_compare_threshold_is_configurable () =
  let old_r = record [ sample "fig10" 1.0 [] ] in
  let new_r = record [ sample "fig10" 2.0 [] ] in
  Alcotest.(check int) "2x passes a 1.5 (=+150%) threshold" 0
    (List.length Perf_trajectory.(regressions (compare_records ~threshold:1.5 old_r new_r)));
  Alcotest.(check int) "2x fails a 0.5 (=+50%) threshold" 1
    (List.length Perf_trajectory.(regressions (compare_records ~threshold:0.5 old_r new_r)))

let test_compare_ignores_sub_ms_noise () =
  let old_r = record [ sample "micro" 1e-5 [] ] in
  let new_r = record [ sample "micro" 9e-4 [] ] in
  Alcotest.(check int) "sub-millisecond wall times never regress" 0
    (List.length Perf_trajectory.(regressions (compare_records old_r new_r)))

let test_compare_fails_on_missing_baseline_experiment () =
  (* A baseline predating the "par" experiment: the comparison must fail
     with a message naming the missing experiment, not skip it silently
     and not raise. *)
  let old_r = record [ sample "fig10" 1.0 [ ("nodes", 100.0) ] ] in
  let new_r =
    record [ sample "fig10" 1.0 [ ("nodes", 100.0) ]; sample "par" 0.5 [ ("par_j4_speedup", 1.9) ] ]
  in
  Alcotest.(check (list string))
    "missing experiment detected" [ "par" ]
    (Perf_trajectory.missing_from_baseline ~old_record:old_r ~new_record:new_r);
  let body, failed =
    Perf_trajectory.render_comparison ~old_record:old_r ~new_record:new_r ()
  in
  Alcotest.(check bool) "comparison fails" true failed;
  Alcotest.(check bool) "message names the experiment" true
    (Astring.String.is_infix ~affix:"par" body && Astring.String.is_infix ~affix:"baseline" body);
  (* The reverse direction fails too: a candidate that never ran a
     baseline experiment dropped coverage — those metrics would silently
     stop being tracked if the comparison passed. *)
  Alcotest.(check (list string))
    "dropped experiment detected" [ "par" ]
    (Perf_trajectory.missing_from_candidate ~old_record:new_r ~new_record:old_r);
  let body', failed' =
    Perf_trajectory.render_comparison ~old_record:new_r ~new_record:old_r ()
  in
  Alcotest.(check bool) "candidate missing a baseline experiment fails" true failed';
  Alcotest.(check bool) "and the verdict names the dropped experiment" true
    (Astring.String.is_infix ~affix:"par" body'
    && Astring.String.is_infix ~affix:"missing" body')

let suite =
  [
    Alcotest.test_case "disabled recorder is a no-op" `Quick test_recorder_disabled_noop;
    Alcotest.test_case "ring eviction keeps the newest origins" `Quick
      test_ring_eviction_keeps_newest;
    Alcotest.test_case "origins are epoch-stamped; clear keeps the counter" `Quick
      test_recorder_epochs_stamp_origins;
    Alcotest.test_case "merged-node race names both source accesses" `Quick
      test_merged_race_names_both_sources;
    Alcotest.test_case "race JSON round-trips byte-identically" `Quick test_json_round_trip;
    Alcotest.test_case "race JSON rejects unknown schema versions" `Quick
      test_json_rejects_bad_version;
    Alcotest.test_case "degraded store flags its races end-to-end" `Quick
      test_degraded_race_flagged;
    Alcotest.test_case "SARIF export matches the golden file" `Quick test_sarif_matches_golden;
    Alcotest.test_case "degraded SARIF downgraded and golden-stable" `Quick
      test_degraded_sarif_matches_golden;
    Alcotest.test_case "SARIF names every contributing location" `Quick
      test_sarif_lists_all_locations;
    Alcotest.test_case "explain renders the merged-away source" `Quick
      test_explain_names_merged_source;
    Alcotest.test_case "perf record JSON round-trips" `Quick test_perf_json_round_trip;
    Alcotest.test_case "compare: identical records are clean" `Quick
      test_compare_identical_is_clean;
    Alcotest.test_case "compare: 2x growth on lower-is-better metrics flagged" `Quick
      test_compare_flags_regression;
    Alcotest.test_case "compare: threshold is configurable" `Quick
      test_compare_threshold_is_configurable;
    Alcotest.test_case "compare: sub-millisecond wall noise ignored" `Quick
      test_compare_ignores_sub_ms_noise;
    Alcotest.test_case "compare: missing baseline experiment is a clear failure" `Quick
      test_compare_fails_on_missing_baseline_experiment;
  ]

(* --- Hybrid thread fields in race exports (PR 8) --- *)

let read_golden path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Back-compat pin: a single-thread race export must not contain thread
   fields anywhere — byte-identical to the schema-v2 shape the pre-hybrid
   tool wrote. *)
let test_single_thread_json_has_no_thread_fields () =
  let reports = with_recorder code1_race_reports in
  Alcotest.(check bool) "have reports" true (reports <> []);
  let json = Json.to_string (Race_export.to_json ~generator:"test" reports) in
  Alcotest.(check bool) "no thread field in single-thread export" false
    (Astring.String.is_infix ~affix:"thread" json);
  let sarif = Json.to_string (Race_export.to_sarif ~generator:"test" reports) in
  Alcotest.(check bool) "no thread field in single-thread SARIF" false
    (Astring.String.is_infix ~affix:"thread" sarif)

(* A report whose accesses carry a real thread identity round-trips it
   exactly through the JSON codec. *)
let test_threaded_json_round_trip () =
  let thread =
    { Access.tid = 2; tstamp = 3; tview = [ (0, 3); (-1024, 1); (-1026, 3) ] }
  in
  let threaded seq line op lo hi kind =
    Access.make_threaded ~thread
      ~interval:(Interval.make ~lo ~hi)
      ~kind ~issuer:0 ~seq
      ~debug:(Debug_info.make ~file:"hyb.c" ~line ~operation:op)
  in
  let r =
    Report.make ~tool:"contribution" ~space:0 ~win:(Some 0)
      ~existing:(threaded 1 4 "Store" 2 9 Access_kind.Local_write)
      ~incoming:(mk_access ~seq:2 ~line:5 ~op:"MPI_Put" 2 9 Access_kind.Rma_read)
      ~sim_time:1.0 ()
  in
  let json = Race_export.to_json ~generator:"test" [ r ] in
  Alcotest.(check bool) "thread fields present" true
    (Astring.String.is_infix ~affix:"thread_view" (Json.to_string json));
  match Race_export.of_json json with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok [ loaded ] ->
      Alcotest.(check bool) "existing round-trips with thread" true
        (Access.equal r.Report.existing loaded.Report.existing);
      Alcotest.(check bool) "incoming round-trips default thread" true
        (Access.equal r.Report.incoming loaded.Report.incoming);
      Alcotest.(check string) "byte-identical re-export"
        (Json.to_string json)
        (Json.to_string (Race_export.to_json ~generator:"test" [ loaded ]))
  | Ok l -> Alcotest.failf "expected 1 report, got %d" (List.length l)

(* End-to-end golden: the canonical unordered-sibling-store hybrid race
   exported as JSON. GOLDEN_OUT_HYBRID=/abs/path regenerates. *)
let hybrid_race_reports () =
  let k =
    match
      Rma_microbench.Scenario.Kernel.find "hyb_lockall_local_tstore_put_unordered_race"
    with
    | Some k -> k
    | None -> Alcotest.fail "hybrid kernel missing"
  in
  let tool =
    Rma_analyzer.create ~nprocs:k.Rma_microbench.Scenario.Kernel.k_nprocs ~mode:Tool.Collect
      Rma_analyzer.Contribution
  in
  let v = Rma_microbench.Runner.run_kernel ~interleave_seed:13 ~tool k in
  v.Rma_microbench.Runner.k_reports

let test_hybrid_json_matches_golden () =
  let reports = with_recorder hybrid_race_reports in
  Alcotest.(check bool) "hybrid race found" true (reports <> []);
  let json = Json.to_string (Race_export.to_json ~generator:"test" reports) ^ "\n" in
  Golden_regen.check ~name:"race_hybrid.json" ~what:"hybrid race JSON matches golden file" json

let test_explain_names_thread () =
  let reports = with_recorder hybrid_race_reports in
  let threaded =
    List.filter
      (fun (r : Report.t) ->
        r.Report.existing.Access.thread.Access.tid <> 0
        || r.Report.incoming.Access.thread.Access.tid <> 0)
      reports
  in
  Alcotest.(check bool) "a report involves a spawned thread" true (threaded <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "explain mentions the thread" true
        (Astring.String.is_infix ~affix:"thread 1" (Race_export.explain r)))
    threaded

let suite =
  suite
  @ [
      Alcotest.test_case "single-thread exports carry no thread fields" `Quick
        test_single_thread_json_has_no_thread_fields;
      Alcotest.test_case "threaded race JSON round-trips" `Quick test_threaded_json_round_trip;
      Alcotest.test_case "hybrid race JSON matches the golden file" `Quick
        test_hybrid_json_matches_golden;
      Alcotest.test_case "explain names the racing thread" `Quick test_explain_names_thread;
    ]
