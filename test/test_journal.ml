(* Rma_obs.Journal + Rma_report.Replay: totality of the journal reader
   under truncation and bit flips, the prefix-stop contract, the
   [obs stats] golden report over the seeded-drill journal, and the
   replay round trip — re-running a journaled crash drill reproduces
   the identical crash coordinates and byte-identical verdicts. *)

module Obs = Rma_obs.Obs
module Events = Rma_obs.Events
module Journal = Rma_obs.Journal
module Diag = Rma_report.Diag
module Replay = Rma_report.Replay
module Tool = Rma_analysis.Tool
module Toolbox = Rma_analysis.Toolbox

(* --- line-level totality --------------------------------------------- *)

let arb_event =
  let open QCheck in
  let str_gen = Gen.string_size ~gen:Gen.printable (Gen.int_range 0 12) in
  let level_gen = Gen.oneofl [ Events.Debug; Events.Info; Events.Warn; Events.Error ] in
  make
    ~print:(fun ev -> Events.line ev)
    Gen.(
      let* level = level_gen in
      let* component = str_gen in
      let* run_id = str_gen in
      let* shard = int_range (-1) 64 in
      let* span_id = int_range 0 1000 in
      let* ts = Gen.map (fun i -> float_of_int i *. 0.125) (int_range 0 100) in
      let* kv = list_size (int_range 0 4) (pair str_gen str_gen) in
      return { Events.ts; level; component; run_id; shard; span_id; kv })

let prop_parse_line_total =
  QCheck.Test.make ~name:"parse_line is total under single bit flips" ~count:500
    QCheck.(pair arb_event (pair small_nat small_nat))
    (fun (ev, (byte_seed, bit)) ->
      let line = Bytes.of_string (Events.line ev) in
      let i = byte_seed mod Bytes.length line in
      Bytes.set line i (Char.chr (Char.code (Bytes.get line i) lxor (1 lsl (bit mod 8))));
      (* Flipping any one bit must never raise: the reader answers
         [Ok] (the flip kept the record well-formed) or [Error]. *)
      match Journal.parse_line (Bytes.to_string line) with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "parse_line raised %s" (Printexc.to_string e))

let prop_parse_line_roundtrip =
  QCheck.Test.make ~name:"parse_line inverts Events.line" ~count:500 arb_event (fun ev ->
      match Journal.parse_line (Events.line ev) with
      | Error msg -> QCheck.Test.fail_reportf "valid line rejected: %s" msg
      | Ok got ->
          got.Events.level = ev.Events.level
          && got.Events.component = ev.Events.component
          && got.Events.run_id = ev.Events.run_id
          && got.Events.shard = ev.Events.shard
          && got.Events.span_id = ev.Events.span_id
          && got.Events.kv = ev.Events.kv)

(* --- file-level totality: truncation and mid-file garbage ------------- *)

let with_temp_journal text f =
  let path = Filename.temp_file "rma_journal" ".jsonl" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let events_equal a b = Events.line a = Events.line b

(* Cutting a journal at any byte offset keeps the reader total and the
   decoded events a positional prefix of the originals: every complete
   line before the cut decodes, and only a non-empty partial tail can
   produce an error (naming the first bad line). *)
let prop_truncation =
  QCheck.Test.make ~name:"read_file survives truncation at any offset" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 8) arb_event) small_nat)
    (fun (evs, cut_seed) ->
      let text = String.concat "" (List.map (fun ev -> Events.line ev ^ "\n") evs) in
      let cut = cut_seed mod (String.length text + 1) in
      with_temp_journal (String.sub text 0 cut) @@ fun path ->
      let r = Journal.read_file path in
      let n = List.length r.Journal.events in
      n <= List.length evs
      && List.for_all2 events_equal r.Journal.events
           (List.filteri (fun i _ -> i < n) evs)
      && (match r.Journal.error with
         | None -> true
         | Some e -> e.Journal.at_line = n + 1))

(* Flipping one bit of line [i] leaves lines 1..i-1 intact; reading
   stops at [i] (or sails past it when the flip kept the line valid),
   never earlier and never with an exception. *)
let prop_bit_flip =
  QCheck.Test.make ~name:"read_file stops at the first flipped line" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 8) arb_event) (pair small_nat (pair small_nat small_nat)))
    (fun (evs, (line_seed, (byte_seed, bit))) ->
      let lines = List.map Events.line evs in
      let target = line_seed mod List.length lines in
      let flipped =
        List.mapi
          (fun i l ->
            if i <> target then l
            else begin
              let b = Bytes.of_string l in
              let j = byte_seed mod Bytes.length b in
              Bytes.set b j (Char.chr (Char.code (Bytes.get b j) lxor (1 lsl (bit mod 8))));
              Bytes.to_string b
            end)
          lines
      in
      with_temp_journal (String.concat "" (List.map (fun l -> l ^ "\n") flipped)) @@ fun path ->
      let r = Journal.read_file path in
      let n = List.length r.Journal.events in
      let prefix_ok =
        List.for_all2 events_equal
          (List.filteri (fun i _ -> i < min n target) r.Journal.events)
          (List.filteri (fun i _ -> i < min n target) evs)
      in
      prefix_ok
      &&
      match r.Journal.error with
      | Some e -> n = target && e.Journal.at_line = target + 1
      | None -> n = List.length evs)

let test_unreadable_file () =
  let r = Journal.read_file "/nonexistent/journal.jsonl" in
  Alcotest.(check int) "no events" 0 (List.length r.Journal.events);
  match r.Journal.error with
  | Some e -> Alcotest.(check int) "at_line 0 marks an unopenable file" 0 e.Journal.at_line
  | None -> Alcotest.fail "expected an error for an unopenable path"

(* --- stats golden over the seeded-drill journal ----------------------- *)

(* The same golden journal test_events pins (run-golden, plan seed 7,
   jobs 4, budget 4:spill — timestamps scrubbed to 0), aggregated into
   the [obs stats] report. GOLDEN_OUT_STATS=/abs/path regenerates. *)
let test_stats_golden () =
  let r = Journal.read_file "golden/events_journal.jsonl" in
  Alcotest.(check bool) "golden journal reads clean" true (r.Journal.error = None);
  let text =
    Journal.render_stats ~source:"golden/events_journal.jsonl"
      (Journal.stats_of r.Journal.events)
  in
  Golden_regen.check ~name:"obs_stats.txt" ~what:"stats match the golden report" text

let test_stats_counts () =
  let r = Journal.read_file "golden/events_journal.jsonl" in
  let s = Journal.stats_of r.Journal.events in
  Alcotest.(check int) "every event counted" (List.length r.Journal.events) s.Journal.total;
  Alcotest.(check (list string)) "one run id" [ "run-golden" ] s.Journal.run_ids;
  Alcotest.(check bool) "crashes surface" true (s.Journal.crashes > 0);
  Alcotest.(check bool) "crash resolution surfaces" true
    (s.Journal.recoveries > 0 || s.Journal.fallbacks > 0);
  Alcotest.(check bool) "budget degradations surface" true (s.Journal.degradations > 0)

(* --- replay round trip ------------------------------------------------ *)

(* A small injected-race MiniVite drill under a crashy fault plan,
   journaled through the same Diag bracket the CLI uses; the journal
   alone must then reproduce the run: same (site, ordinal, seed) crash
   sequence, byte-identical verdict digest. *)
let drill_params = [ ("tool", "contribution"); ("ranks", "4"); ("seed", "5"); ("vertices", "2000"); ("inject", "true") ]

let run_drill () =
  let config =
    {
      Mpi_sim.Config.default with
      Mpi_sim.Config.analysis_overhead_scale = 2.0;
      analysis_self_timed = true;
    }
  in
  let params =
    {
      Minivite.Louvain.default_params with
      Minivite.Louvain.graph =
        { Minivite.Graph.default_params with Minivite.Graph.n_vertices = 2000 };
      inject_race = true;
    }
  in
  let tool = Toolbox.make Toolbox.Contribution ~nprocs:4 ~config () in
  let _ = Minivite.Louvain.run params ~nprocs:4 ~seed:5 ~config ~observer:tool.Tool.observer () in
  tool.Tool.races ()

let test_replay_roundtrip () =
  let journal = Filename.temp_file "rma_replay_test" ".jsonl" in
  let prev_budget = Rma_fault.Budget.default () in
  let restore () =
    Events.close ();
    Events.clear ();
    Events.set_level Events.Info;
    Obs.disable ();
    Obs.reset ();
    Rma_fault.clear ();
    Rma_fault.Budget.set_default prev_budget;
    Rma_par.set_default_jobs 1;
    try Sys.remove journal with Sys_error _ -> ()
  in
  Fun.protect ~finally:restore @@ fun () ->
  Diag.with_diag ~prog:"test" ~generator:"test"
    ~workload:("minivite", drill_params)
    {
      Diag.default with
      Diag.obs_events = Some journal;
      jobs = Some 2;
      fault_plan = Some "seed=11,worker_crash=0.2";
    }
    run_drill;
  let r = Journal.read_file journal in
  Alcotest.(check bool) "drill journal reads clean" true (r.Journal.error = None);
  let plan =
    match Replay.extract r.Journal.events with
    | Ok p -> p
    | Error msg -> Alcotest.failf "extract failed: %s" msg
  in
  Alcotest.(check string) "workload recovered" "minivite" plan.Replay.r_workload;
  Alcotest.(check int) "jobs recovered" 2 plan.Replay.r_jobs;
  Alcotest.(check bool) "fault spec recovered" true (plan.Replay.r_fault <> None);
  Alcotest.(check bool) "the drill crashed at least once" true (plan.Replay.r_crashes <> []);
  Alcotest.(check bool) "run_summary landed" true (plan.Replay.r_digest <> None);
  List.iter
    (fun c -> Alcotest.(check int) "crash carries the plan seed" 11 c.Replay.c_seed)
    plan.Replay.r_crashes;
  let outcome =
    match Replay.run plan with
    | Ok o -> o
    | Error msg -> Alcotest.failf "replay failed: %s" msg
  in
  Alcotest.(check bool) "crash coordinates replay identically" true outcome.Replay.o_crash_match;
  Alcotest.(check (option bool)) "verdicts are byte-identical" (Some true)
    outcome.Replay.o_digest_match;
  Alcotest.(check bool) "races reproduce" true
    (Some outcome.Replay.o_races = plan.Replay.r_races && outcome.Replay.o_races > 0);
  Alcotest.(check bool) "replay verdict holds" true (Replay.verdict plan outcome);
  (* The contract is falsifiable: a journal claiming a different digest
     or crash schedule must fail the verdict. *)
  Alcotest.(check bool) "tampered digest fails" false
    (Replay.verdict plan { outcome with Replay.o_digest_match = Some false });
  Alcotest.(check bool) "tampered crash sequence fails" false
    (Replay.verdict plan { outcome with Replay.o_crash_match = false })

let test_extract_requires_header () =
  match Replay.extract [] with
  | Ok _ -> Alcotest.fail "empty journal must not extract"
  | Error msg ->
      Alcotest.(check bool) "error names the missing run_start" true
        (Astring.String.is_infix ~affix:"run_start" msg)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_parse_line_total;
    QCheck_alcotest.to_alcotest prop_parse_line_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncation;
    QCheck_alcotest.to_alcotest prop_bit_flip;
    Alcotest.test_case "unopenable path is a line-0 error" `Quick test_unreadable_file;
    Alcotest.test_case "obs stats matches the golden report" `Quick test_stats_golden;
    Alcotest.test_case "stats aggregate the seeded drill" `Quick test_stats_counts;
    Alcotest.test_case "journaled drill replays byte-identically" `Quick test_replay_roundtrip;
    Alcotest.test_case "extract demands a run_start header" `Quick test_extract_requires_header;
  ]
