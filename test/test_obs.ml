(* Rma_obs: histogram quantile accuracy, Chrome-trace span export, and
   the disabled-registry no-op guarantee that keeps the instrumented hot
   paths free when observability is off. *)

module Obs = Rma_obs.Obs
module Histogram = Rma_obs.Histogram

(* Obs is process-global; every test starts from a clean enabled
   registry and leaves it disabled for the suites that follow. *)
let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Obs.set_sampling ~keep_one_in:1;
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_sampling ~keep_one_in:1)
    f

let test_histogram_percentiles () =
  with_obs @@ fun () ->
  let h = Obs.histogram ~unit_:"ms" "test.latency" in
  for i = 1 to 1000 do
    Obs.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check (float 1e-6)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-6)) "max" 1000.0 (Histogram.max_value h);
  Alcotest.(check (float 0.5)) "mean" 500.5 (Histogram.mean h);
  (* Log-scale buckets at 2^(1/4) spacing bound the quantile error by
     the half-bucket ratio, ~9%; allow 15% slack. *)
  List.iter
    (fun (q, expect) ->
      let v = Histogram.quantile h q in
      let err = Float.abs (v -. expect) /. expect in
      Alcotest.(check bool)
        (Printf.sprintf "p%g=%g within 15%% of %g" (q *. 100.0) v expect)
        true (err <= 0.15))
    [ (0.5, 500.0); (0.95, 950.0); (0.99, 990.0) ]

let test_histogram_constant_and_empty () =
  with_obs @@ fun () ->
  let h = Obs.histogram "test.constant" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.quantile h 0.5);
  for _ = 1 to 10 do
    Obs.observe h 42.0
  done;
  (* Clamping to the observed [min,max] makes constant streams exact. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "constant p%g" (q *. 100.0))
        42.0 (Histogram.quantile h q))
    [ 0.5; 0.95; 0.99 ];
  (* Zero (per-insert fragment counts when nothing fragments) lands in
     the underflow bucket, not on the log scale. *)
  let z = Obs.histogram "test.zeroes" in
  Obs.observe z 0.0;
  Obs.observe z 0.0;
  Alcotest.(check (float 1e-9)) "all-zero quantile" 0.0 (Histogram.quantile z 0.99)

let test_chrome_trace_spans () =
  with_obs @@ fun () ->
  (* Nested spans on a simulated-time track, recorded out of order. *)
  Obs.emit_span ~cat:"epoch" ~pid:2 ~tid:0 ~t0:1.0 ~t1:2.0 "inner";
  Obs.emit_span ~cat:"rank" ~pid:2 ~tid:0 ~t0:0.0 ~t1:4.0 "outer";
  let spans = Obs.all_spans () in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  (* all_spans sorts by (pid, tid, t0): the enclosing span comes first,
     which is also the order Perfetto wants for nesting. *)
  (match spans with
  | [ a; b ] ->
      Alcotest.(check string) "outer sorts first" "outer" a.Obs.sp_name;
      Alcotest.(check string) "inner second" "inner" b.Obs.sp_name;
      Alcotest.(check bool) "inner nested inside outer" true
        (b.Obs.sp_t0 >= a.Obs.sp_t0 && b.Obs.sp_t1 <= a.Obs.sp_t1)
  | _ -> Alcotest.fail "expected exactly two spans");
  let json = Rma_obs.Chrome_trace.to_json () in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  let index_of needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = if i + nl > hl then -1 else if String.sub json i nl = needle then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "traceEvents array" true (contains "\"traceEvents\":[");
  Alcotest.(check bool) "complete events" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "process metadata" true (contains "\"process_name\"");
  Alcotest.(check bool) "rank thread metadata" true (contains "rank 0");
  (* outer: ts 0, dur 4s = 4e6 us; inner: ts 1e6 us, dur 1e6 us. *)
  Alcotest.(check bool) "outer duration in us" true (contains "\"dur\":4e+06");
  Alcotest.(check bool) "outer precedes inner in the event stream" true
    (let o = index_of "\"name\":\"outer\"" and i = index_of "\"name\":\"inner\"" in
     o >= 0 && i >= 0 && o < i)

let test_chrome_trace_histogram_metadata () =
  with_obs @@ fun () ->
  let h = Obs.histogram ~unit_:"s" "test.insert_seconds" in
  Obs.observe h 0.5;
  let json = Rma_obs.Chrome_trace.to_json () in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "histogram instant event" true (contains "hist:test.insert_seconds");
  Alcotest.(check bool) "global instant scope" true (contains "\"s\":\"g\"");
  Alcotest.(check bool) "p99 in args" true (contains "\"p99\":")

let test_disabled_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "test.noop_counter" in
  let h = Obs.histogram "test.noop_hist" in
  let g = Obs.gauge "test.noop_gauge" in
  Obs.incr c;
  Obs.add c 10;
  Obs.observe h 1.0;
  Obs.set_gauge g 3.0;
  Alcotest.(check int) "counter untouched" 0 c.Obs.c_value;
  Alcotest.(check int) "histogram untouched" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 g.Obs.g_value;
  Alcotest.(check bool) "start_span yields None" true
    (Obs.start_span ~pid:Obs.wall_pid ~tid:0 "nope" = None);
  Obs.emit_span ~pid:Obs.wall_pid ~tid:0 ~t0:0.0 ~t1:1.0 "nope";
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.all_spans ()));
  (* time_span still measures (callers rely on the duration) but stores
     nothing. *)
  let x, dt = Obs.time_span "quiet" (fun () -> 7) in
  Alcotest.(check int) "thunk result" 7 x;
  Alcotest.(check bool) "duration measured" true (dt >= 0.0);
  Alcotest.(check int) "still no spans" 0 (List.length (Obs.all_spans ()))

let test_span_sampling_and_cap () =
  with_obs @@ fun () ->
  Obs.set_sampling ~keep_one_in:2;
  for i = 1 to 6 do
    let sp = Obs.start_span ~pid:Obs.wall_pid ~tid:0 (Printf.sprintf "s%d" i) in
    Obs.finish_span sp
  done;
  Alcotest.(check int) "half the spans kept" 3 (List.length (Obs.all_spans ()));
  Obs.set_sampling ~keep_one_in:1;
  Obs.reset ();
  Obs.set_span_cap 2;
  for i = 1 to 5 do
    Obs.emit_span ~pid:Obs.wall_pid ~tid:0 ~t0:(float_of_int i) ~t1:(float_of_int i +. 0.5)
      (Printf.sprintf "c%d" i)
  done;
  Alcotest.(check int) "cap enforced" 2 (List.length (Obs.all_spans ()));
  Obs.set_span_cap 1_000_000

let test_time_span_categories () =
  with_obs @@ fun () ->
  let (), d1 = Obs.time_span ~cat:"phase" "a" (fun () -> ()) in
  let (), d2 = Obs.time_span ~cat:"phase" "b" (fun () -> ()) in
  let total = Obs.category_seconds "phase" in
  Alcotest.(check bool) "category accumulates both spans" true
    (total >= 0.0 && total +. 1e-9 >= d1 +. d2 -. 1e-6);
  Alcotest.(check int) "both spans stored" 2 (List.length (Obs.all_spans ()))

let test_prometheus_and_summary () =
  with_obs @@ fun () ->
  let c = Obs.counter ~help:"events seen" "test.events" in
  Obs.add c 5;
  let h = Obs.histogram ~unit_:"s" "test.latency_seconds" in
  Obs.observe h 0.25;
  let text = Rma_obs.Prometheus.to_text () in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter sample" true (contains text "rma_test_events 5");
  Alcotest.(check bool) "quantile sample" true
    (contains text "rma_test_latency_seconds{quantile=\"0.99\"}");
  Alcotest.(check bool) "count sample" true (contains text "rma_test_latency_seconds_count 1");
  let summary = Rma_obs.Summary.to_string () in
  Alcotest.(check bool) "summary names the histogram" true (contains summary "test.latency_seconds");
  Alcotest.(check bool) "summary names the counter" true (contains summary "test.events")

let test_prometheus_escaping () =
  with_obs @@ fun () ->
  let module Prometheus = Rma_obs.Prometheus in
  let module Events = Rma_obs.Events in
  (* Unit behaviour first: HELP escapes backslash and newline; label
     values additionally escape the double quote (exposition format). *)
  Alcotest.(check string) "help escaping" {|a\\b\nc "quoted"|}
    (Prometheus.escape_help "a\\b\nc \"quoted\"");
  Alcotest.(check string) "label value escaping" {|a\\b\nc \"quoted\"|}
    (Prometheus.escape_label_value "a\\b\nc \"quoted\"");
  (* Then end-to-end: a run id and HELP strings stuffed with every
     special character must render as the golden exposition text. *)
  let saved_run_id = Events.run_id () in
  Fun.protect
    ~finally:(fun () -> Events.set_run_id saved_run_id)
    (fun () ->
      Events.set_run_id "run\"esc\\7\nnext";
      let c = Obs.counter ~help:"seen at C:\\tmp \"races\"\nsecond line" "esc.events" in
      Obs.add c 3;
      let g = Obs.gauge ~help:"gauge with a \\ and a\nbreak" "esc.depth" in
      Obs.set_gauge g 1.5;
      let text =
        Prometheus.to_text
          ~filter:(fun name ->
            name = "run_info" || String.length name >= 4 && String.sub name 0 4 = "esc.")
          ()
      in
      (* GOLDEN_OUT_PROM=/abs/path (or GOLDEN_OUT_DIR, see
         test/golden_regen.ml) regenerates the golden file instead of
         comparing. *)
      Golden_regen.check ~name:"prometheus_escaping.txt"
        ~what:"exposition text matches the golden file" text)

let suite =
  [
    Alcotest.test_case "histogram percentiles (log buckets)" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram constant/empty/zero streams" `Quick
      test_histogram_constant_and_empty;
    Alcotest.test_case "chrome trace span nesting and order" `Quick test_chrome_trace_spans;
    Alcotest.test_case "chrome trace histogram metadata" `Quick
      test_chrome_trace_histogram_metadata;
    Alcotest.test_case "disabled registry is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "span sampling and cap" `Quick test_span_sampling_and_cap;
    Alcotest.test_case "time_span feeds category accumulators" `Quick test_time_span_categories;
    Alcotest.test_case "prometheus + summary exporters" `Quick test_prometheus_and_summary;
    Alcotest.test_case "prometheus exposition escaping (golden)" `Quick test_prometheus_escaping;
  ]
