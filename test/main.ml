let () =
  Alcotest.run "rma_race"
    [
      ("interval", Test_interval.suite);
      ("access", Test_access.suite);
      ("avl", Test_avl.suite);
      ("stores", Test_stores.suite);
      ("mpi_sim", Test_mpi_sim.suite);
      ("analysis", Test_analysis.suite);
      ("microbench", Test_microbench.suite);
      ("apps", Test_apps.suite);
      ("util", Test_util.suite);
      ("vclock", Test_vclock.suite);
      ("shadow", Test_shadow.suite);
      ("report", Test_report.suite);
      ("strided", Test_strided.suite);
      ("trace", Test_trace.suite);
      ("fuzz", Test_fuzz.suite);
      ("differential", Test_differential.suite);
      ("par", Test_par.suite);
      ("oracle", Test_oracle.suite);
      ("graph500", Test_graph500.suite);
      ("memory", Test_memory.suite);
      ("obs", Test_obs.suite);
      ("events", Test_events.suite);
      ("journal", Test_journal.suite);
      ("export", Test_export.suite);
      ("fault", Test_fault.suite);
      ("predictive", Test_predictive.suite);
      ("serve", Test_serve.suite);
      ("golden_regen", Golden_regen.suite);
    ]
