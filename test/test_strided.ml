open Rma_access
open Rma_store

(* The §6(3) future-work extension: strided (non-adjacent) merging. *)

let dbg ?(file = "strided.c") ?(op = "op") line = Debug_info.make ~file ~line ~operation:op

let acc ?(issuer = 0) ~seq ?(line = 1) ?(op = "op") lo hi kind =
  Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer ~seq ~debug:(dbg ~op line)

let is_race = function Store_intf.Race_detected _ -> true | Store_intf.Inserted -> false

let insert_all store accesses =
  List.map (Strided_store.insert store) accesses

let minivite_like_stream ~n ~stride ~len =
  (* Equally-shaped Gets at a constant stride — MiniVite's record reads. *)
  List.init n (fun i ->
      acc ~seq:(i + 1) ~line:501 ~op:"MPI_Get" (i * stride)
        ((i * stride) + len - 1)
        Access_kind.Rma_read)

let test_strided_stream_collapses () =
  let store = Strided_store.create () in
  let outcomes = insert_all store (minivite_like_stream ~n:1000 ~stride:16 ~len:8) in
  Alcotest.(check bool) "no races" true (List.for_all (fun o -> not (is_race o)) outcomes);
  Alcotest.(check int) "one region" 1 (Strided_store.size store);
  match Strided_store.regions store with
  | [ r ] ->
      Alcotest.(check int) "stride" 16 r.Strided_store.stride;
      Alcotest.(check int) "count" 1000 r.Strided_store.count;
      Alcotest.(check int) "len" 8 r.Strided_store.len;
      Alcotest.(check int) "covered bytes" 8000 (Strided_store.covered_bytes store)
  | _ -> Alcotest.fail "expected one region"

let test_dense_stream_is_stride_len () =
  (* Adjacent accesses are the stride = len special case (plain merging). *)
  let store = Strided_store.create () in
  let _ = insert_all store (minivite_like_stream ~n:100 ~stride:8 ~len:8) in
  Alcotest.(check int) "one region" 1 (Strided_store.size store);
  match Strided_store.regions store with
  | [ r ] -> Alcotest.(check int) "dense stride" 8 r.Strided_store.stride
  | _ -> Alcotest.fail "expected one region"

let test_gap_access_coexists () =
  (* An access landing in a gap is NOT part of the region and must not
     be absorbed (gaps are uncovered). *)
  let store = Strided_store.create () in
  let _ = insert_all store (minivite_like_stream ~n:10 ~stride:16 ~len:8) in
  let gap = acc ~seq:100 ~line:9 ~op:"Store" 8 15 Access_kind.Local_write in
  Alcotest.(check bool) "gap insert ok" false (is_race (Strided_store.insert store gap));
  Alcotest.(check int) "region + gap node" 2 (Strided_store.size store)

let test_gap_write_no_false_race () =
  (* The region is RMA_Read; a local write in a gap touches no covered
     byte — flagging it would be a false positive. *)
  let store = Strided_store.create () in
  let _ = insert_all store (minivite_like_stream ~n:10 ~stride:16 ~len:8) in
  let outcome =
    Strided_store.insert store (acc ~seq:50 ~line:7 ~op:"Store" 10 13 Access_kind.Local_write)
  in
  Alcotest.(check bool) "no race on gap bytes" false (is_race outcome)

let test_covered_byte_race_detected () =
  (* A conflicting access on a covered element must still race, even
     deep inside the region. *)
  let store = Strided_store.create () in
  let _ = insert_all store (minivite_like_stream ~n:100 ~stride:16 ~len:8) in
  let outcome =
    Strided_store.insert store
      (acc ~issuer:1 ~seq:999 ~line:8 ~op:"MPI_Put" 803 805 Access_kind.Rma_write)
  in
  (* 803 is inside element 50 ([800..807]). *)
  Alcotest.(check bool) "race detected" true (is_race outcome)

let test_stride_requires_same_shape () =
  let store = Strided_store.create () in
  ignore (Strided_store.insert store (acc ~seq:1 ~line:5 ~op:"MPI_Get" 0 7 Access_kind.Rma_read));
  (* Different length: no region extension. *)
  ignore (Strided_store.insert store (acc ~seq:2 ~line:5 ~op:"MPI_Get" 16 19 Access_kind.Rma_read));
  Alcotest.(check int) "two regions" 2 (Strided_store.size store)

let test_stride_requires_same_debug () =
  let store = Strided_store.create () in
  ignore (Strided_store.insert store (acc ~seq:1 ~line:5 ~op:"MPI_Get" 0 7 Access_kind.Rma_read));
  ignore (Strided_store.insert store (acc ~seq:2 ~line:6 ~op:"MPI_Get" 16 23 Access_kind.Rma_read));
  Alcotest.(check int) "two regions" 2 (Strided_store.size store)

let test_irregular_position_starts_new_region () =
  let store = Strided_store.create () in
  let _ = insert_all store (minivite_like_stream ~n:5 ~stride:16 ~len:8) in
  (* Next slot would be 80; 96 breaks the stride. *)
  ignore (Strided_store.insert store (acc ~seq:50 ~line:501 ~op:"MPI_Get" 96 103 Access_kind.Rma_read));
  Alcotest.(check int) "second region opens" 2 (Strided_store.size store)

let test_exact_repeat_falls_back_without_explosion_of_races () =
  (* Re-reading the same covered element (same kind) is race-free; the
     store must absorb it via the fallback path. *)
  let store = Strided_store.create () in
  let _ = insert_all store (minivite_like_stream ~n:10 ~stride:16 ~len:8) in
  let outcome =
    Strided_store.insert store (acc ~issuer:2 ~seq:77 ~line:501 ~op:"MPI_Get" 32 39 Access_kind.Rma_read)
  in
  Alcotest.(check bool) "repeat read safe" false (is_race outcome)

let test_extension_never_tunnels_under_covered_bytes () =
  (* Regression (QCHECK_SEED=11 shrinkage of the oracle property): an
     access that is a legal stride continuation of one region may ALSO
     land on bytes another region already covers. Extending then records
     those bytes twice — the new element plus the stale other region —
     and the stale copy later produces a false race. The extension fast
     path must yield to the fragmentation fallback whenever any region
     covers part of the incoming interval. *)
  let store = Strided_store.create () in
  (* Seed region: a Get at [9..14] (len 6). *)
  ignore (Strided_store.insert store (acc ~seq:1 ~line:3 ~op:"MPI_Get" 9 14 Access_kind.Rma_read));
  (* Unrelated local write claims [39..53]. *)
  ignore
    (Strided_store.insert store (acc ~seq:2 ~line:4 ~op:"Store" 39 53 Access_kind.Local_write));
  (* Same shape and debug info as the seed Get, 39 bytes later: a valid
     stride-2 continuation, but [48..53] sits inside the local write. *)
  Alcotest.(check bool) "overlapping continuation inserts" false
    (is_race (Strided_store.insert store (acc ~seq:3 ~line:3 ~op:"MPI_Get" 48 53 Access_kind.Rma_read)));
  (* The Get dominates those bytes now; a second remote read of them is
     race-free. Before the fix the stale LOCAL_WRITE copy flagged it. *)
  Alcotest.(check bool) "re-read of absorbed bytes safe" false
    (is_race
       (Strided_store.insert store
          (acc ~issuer:2 ~seq:4 ~line:4 ~op:"MPI_Get" 48 52 Access_kind.Rma_read)))

let test_order_aware_in_strided () =
  let store = Strided_store.create () in
  ignore (Strided_store.insert store (acc ~seq:1 ~line:1 ~op:"Load" 0 7 Access_kind.Local_read));
  Alcotest.(check bool) "local-then-rma safe" false
    (is_race (Strided_store.insert store (acc ~seq:2 ~line:2 ~op:"MPI_Get" 0 7 Access_kind.Rma_write)));
  let blind = Strided_store.create ~order_aware:false () in
  ignore (Strided_store.insert blind (acc ~seq:1 ~line:1 ~op:"Load" 0 7 Access_kind.Local_read));
  Alcotest.(check bool) "order-blind flags" true
    (is_race (Strided_store.insert blind (acc ~seq:2 ~line:2 ~op:"MPI_Get" 0 7 Access_kind.Rma_write)))

(* Property: the strided store agrees with the plain disjoint store on
   race verdicts for random single-issuer streams. *)
let access_gen =
  QCheck.Gen.(
    let* lo = int_range 0 120 in
    let* len = int_range 1 12 in
    let* k = int_range 0 3 in
    let* line = int_range 1 4 in
    return (lo, len, k, line))

let arb_program =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (lo, len, k, line) -> Printf.sprintf "(%d,%d,%d,%d)" lo len k line) l))
    QCheck.Gen.(list_size (int_range 1 40) access_gen)

let prop_verdicts_agree_with_disjoint =
  QCheck.Test.make ~name:"strided verdicts match disjoint store (first race)" ~count:300
    arb_program
    (fun program ->
      let accesses =
        List.mapi
          (fun i (lo, len, k, line) ->
            acc ~seq:(i + 1) ~line lo (lo + len - 1) (List.nth Access_kind.all k))
          program
      in
      let d = Disjoint_store.create () in
      let s = Strided_store.create () in
      let rec first_race insert = function
        | [] -> None
        | a :: rest -> (
            match insert a with
            | Store_intf.Race_detected _ -> Some a.Access.seq
            | Store_intf.Inserted -> first_race insert rest)
      in
      first_race (Disjoint_store.insert d) accesses
      = first_race (Strided_store.insert s) accesses)

let prop_coverage_preserved =
  (* Race-relevant soundness: every byte recorded as covered by the
     plain disjoint store is also covered by some region element in the
     strided store (gaps may only appear where nothing was inserted).
     Node-count-wise the strided store can be slightly larger on
     adversarial random overlap streams — its win is on disciplined
     strided patterns — so we do not compare sizes here. *)
  QCheck.Test.make ~name:"strided store covers every inserted byte" ~count:200 arb_program
    (fun program ->
      (* Only read accesses: race-free by construction. *)
      let accesses =
        List.mapi
          (fun i (lo, len, _, line) ->
            acc ~seq:(i + 1) ~line lo (lo + len - 1) Access_kind.Local_read)
          program
      in
      let s = Strided_store.create () in
      List.iter (fun a -> ignore (Strided_store.insert s a)) accesses;
      let covered byte =
        List.exists
          (fun r -> Strided_store.region_covers r (Interval.byte byte))
          (Strided_store.regions s)
      in
      List.for_all
        (fun a ->
          let iv = a.Access.interval in
          let rec all b = b > Interval.hi iv || (covered b && all (b + 1)) in
          all (Interval.lo iv))
        accesses)

let suite =
  [
    Alcotest.test_case "strided stream collapses to one region" `Quick test_strided_stream_collapses;
    Alcotest.test_case "dense stream is the stride=len case" `Quick test_dense_stream_is_stride_len;
    Alcotest.test_case "gap access coexists" `Quick test_gap_access_coexists;
    Alcotest.test_case "gap write is not a false race" `Quick test_gap_write_no_false_race;
    Alcotest.test_case "covered byte race detected" `Quick test_covered_byte_race_detected;
    Alcotest.test_case "stride requires same shape" `Quick test_stride_requires_same_shape;
    Alcotest.test_case "stride requires same debug info" `Quick test_stride_requires_same_debug;
    Alcotest.test_case "irregular position starts a new region" `Quick
      test_irregular_position_starts_new_region;
    Alcotest.test_case "exact repeat handled by fallback" `Quick
      test_exact_repeat_falls_back_without_explosion_of_races;
    Alcotest.test_case "extension never tunnels under covered bytes" `Quick
      test_extension_never_tunnels_under_covered_bytes;
    Alcotest.test_case "order awareness preserved" `Quick test_order_aware_in_strided;
    QCheck_alcotest.to_alcotest prop_verdicts_agree_with_disjoint;
    QCheck_alcotest.to_alcotest prop_coverage_preserved;
  ]

let test_strided_suite_score () =
  (* The extension keeps the contribution's perfect Table 3 score: gaps
     are uncovered, so no false positive sneaks in, and covered-byte
     checks keep every true positive. *)
  let tool =
    Rma_analysis.Rma_analyzer.create ~nprocs:3 ~mode:Rma_analysis.Tool.Collect
      Rma_analysis.Rma_analyzer.Strided_extension
  in
  let c = Rma_microbench.Runner.score ~tool Rma_microbench.Scenario.all in
  Alcotest.(check bool) "perfect score" true
    (c.Rma_microbench.Runner.fp = 0 && c.Rma_microbench.Runner.fn = 0
   && c.Rma_microbench.Runner.tp = 47 && c.Rma_microbench.Runner.tn = 107)

let suite = suite @ [ Alcotest.test_case "strided suite score" `Slow test_strided_suite_score ]
