(* The fault-injection and resource-governance layer ([Rma_fault],
   [Rma_store.Governor], [Rma_par] recovery, [Rma_trace.Codec]
   injection): spec parsing, deterministic replay of fault schedules,
   budget enforcement on all three stores under each policy, shard
   crash/overflow recovery, and the 500-plan soak proving faults are
   either recovered with identical verdicts or reported as degradation
   — never silent verdict changes (DESIGN.md §11). *)

open Rma_access
open Rma_store
open Rma_analysis
module Event = Mpi_sim.Event
module Json = Rma_util.Json
module Race_export = Rma_report.Race_export
module Plan = Rma_fault.Plan
module Budget = Rma_fault.Budget

(* The suite may run under a CI-installed RMA_FAULT plan; every test
   that touches the process-global plan saves and restores it so the
   rest of the test binary keeps the environment's behaviour. *)
let with_plan plan f =
  let saved = Rma_fault.plan () in
  Rma_fault.install plan;
  Fun.protect
    ~finally:(fun () ->
      match saved with Some p -> Rma_fault.install p | None -> Rma_fault.clear ())
    f

let without_plan f =
  let saved = Rma_fault.plan () in
  Rma_fault.clear ();
  Fun.protect
    ~finally:(fun () -> match saved with Some p -> Rma_fault.install p | None -> ())
    f

let mk_access ?(issuer = 0) ?(kind = Access_kind.Rma_read) ~seq ~line lo hi =
  Access.make
    ~interval:(Interval.make ~lo ~hi)
    ~kind ~issuer ~seq
    ~debug:(Debug_info.make ~file:"fault.c" ~line ~operation:"op")

(* --- spec parsing ---------------------------------------------------- *)

let test_plan_spec () =
  (match Plan.of_spec "seed=42,worker_crash=0.05,trace_truncate=0.1" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok p ->
      Alcotest.(check int) "seed parsed" 42 p.Plan.seed;
      Alcotest.(check (float 0.0)) "worker_crash parsed" 0.05 p.Plan.worker_crash;
      Alcotest.(check (float 0.0)) "trace_truncate parsed" 0.1 p.Plan.trace_truncate;
      Alcotest.(check int) "max_retries defaulted" 3 p.Plan.max_retries;
      (* to_spec/of_spec is a round trip. *)
      Alcotest.(check bool) "spec round-trips" true (Plan.of_spec (Plan.to_spec p) = Ok p));
  Alcotest.(check bool) "empty spec is the default plan" true (Plan.of_spec "" = Ok Plan.default);
  List.iter
    (fun bad ->
      match Plan.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad spec %S accepted" bad)
    [ "bogus=1"; "worker_crash=1.5"; "worker_crash=-0.1"; "seed=abc"; "worker_crash"; "max_retries=-1" ]

let test_budget_spec () =
  (match Budget.of_spec "nodes=4096,policy=spill" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok b ->
      Alcotest.(check (option int)) "node cap parsed" (Some 4096) b.Budget.max_nodes;
      Alcotest.(check bool) "spill policy" true (b.Budget.policy = Budget.Spill_oldest_epoch);
      Alcotest.(check bool) "spec round-trips" true (Budget.of_spec (Budget.to_spec b) = Ok b));
  (match Budget.of_spec "4096:coarsen" with
  | Error e -> Alcotest.failf "shorthand rejected: %s" e
  | Ok b ->
      Alcotest.(check (option int)) "shorthand node cap" (Some 4096) b.Budget.max_nodes;
      Alcotest.(check bool) "shorthand policy" true (b.Budget.policy = Budget.Coarsen));
  (match Budget.of_spec "bytes=1048576,policy=fail" with
  | Error e -> Alcotest.failf "byte spec rejected: %s" e
  | Ok b ->
      Alcotest.(check (option int)) "byte cap parsed" (Some 1048576) b.Budget.max_bytes;
      Alcotest.(check bool) "fail alias" true (b.Budget.policy = Budget.Fail_fast));
  Alcotest.(check bool) "empty spec is unbounded" true (Budget.of_spec "" = Ok Budget.unbounded);
  List.iter
    (fun bad ->
      match Budget.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad budget %S accepted" bad)
    [ "nodes=0"; "nodes=-5"; "policy=wat"; "0:spill"; "4096:wat"; "stuff=1" ]

(* --- deterministic firing -------------------------------------------- *)

let test_fire_deterministic () =
  let plan = { Plan.default with Plan.seed = 42; worker_crash = 0.5; trace_corrupt = 0.25 } in
  let record site n = List.init n (fun _ -> Rma_fault.fire site) in
  let crashes1, corrupts1, hits1 =
    with_plan plan (fun () ->
        let c = record Rma_fault.Worker_crash 200 in
        let t = record Rma_fault.Trace_corrupt 100 in
        (c, t, Rma_fault.fired Rma_fault.Worker_crash))
  in
  (* Same plan, opposite interleaving: each site's schedule depends only
     on its own ordinals, so the answers are identical. *)
  let crashes2, corrupts2, hits2 =
    with_plan plan (fun () ->
        let t = record Rma_fault.Trace_corrupt 100 in
        let c = record Rma_fault.Worker_crash 200 in
        (c, t, Rma_fault.fired Rma_fault.Worker_crash))
  in
  Alcotest.(check (list bool)) "crash schedule replays" crashes1 crashes2;
  Alcotest.(check (list bool)) "corrupt schedule replays" corrupts1 corrupts2;
  Alcotest.(check int) "fired counts the trues" hits1
    (List.length (List.filter Fun.id crashes1));
  Alcotest.(check int) "fired agrees across runs" hits1 hits2;
  Alcotest.(check bool) "a 0.5 rate fires sometimes" true (hits1 > 0);
  Alcotest.(check bool) "a 0.5 rate misses sometimes" true (hits1 < 200);
  (* A different seed produces a different schedule. *)
  let crashes3 =
    with_plan { plan with Plan.seed = 43 } (fun () -> record Rma_fault.Worker_crash 200)
  in
  Alcotest.(check bool) "seed changes the schedule" false (crashes1 = crashes3);
  without_plan (fun () ->
      Alcotest.(check bool) "no plan, no faults" false (Rma_fault.fire Rma_fault.Worker_crash);
      Alcotest.(check int) "no plan, no counts" 0 (Rma_fault.fired Rma_fault.Worker_crash))

(* --- budget governance on the stores --------------------------------- *)

let spill_budget cap =
  { Budget.max_nodes = Some cap; max_bytes = None; policy = Budget.Spill_oldest_epoch }

let test_disjoint_spill () =
  let cap = 8 in
  let store = Disjoint_store.create ~budget:(spill_budget cap) () in
  (* 32 pairwise-distant same-kind accesses (gaps prevent merging) over
     four epochs. *)
  for i = 1 to 32 do
    (match Disjoint_store.insert store (mk_access ~seq:i ~line:i (i * 10) ((i * 10) + 3)) with
    | Store_intf.Inserted -> ()
    | Store_intf.Race_detected _ -> Alcotest.fail "reads cannot race");
    if i mod 8 = 0 then Disjoint_store.note_epoch store
  done;
  let st = Disjoint_store.stats store in
  Alcotest.(check bool) "node count capped" true (st.Store_intf.nodes <= cap);
  Alcotest.(check int) "every insert accepted" 32 st.Store_intf.inserts;
  Alcotest.(check int) "evictions reported as degraded drops" (32 - st.Store_intf.nodes)
    st.Store_intf.degraded_drops;
  (* Oldest-first: the survivors are the newest accesses. *)
  let seqs = List.map (fun a -> a.Access.seq) (Disjoint_store.to_list store) in
  List.iter
    (fun seq -> Alcotest.(check bool) (Printf.sprintf "seq %d survived" seq) true (seq > 32 - cap))
    seqs

let test_disjoint_fail_fast () =
  let budget = { Budget.max_nodes = Some 4; max_bytes = None; policy = Budget.Fail_fast } in
  let store = Disjoint_store.create ~budget () in
  let insert i = ignore (Disjoint_store.insert store (mk_access ~seq:i ~line:i (i * 10) (i * 10))) in
  for i = 1 to 4 do insert i done;
  (match insert 5 with
  | () -> Alcotest.fail "insert past a fail-fast budget did not raise"
  | exception Budget.Exhausted _ -> ());
  (* Still over budget, so the next insert keeps failing: the analysis
     cannot silently continue past the first Exhausted. *)
  match insert 6 with
  | () -> Alcotest.fail "insert after Exhausted did not raise again"
  | exception Budget.Exhausted _ ->
      Alcotest.(check int) "no degraded drops under fail-fast" 0
        (Disjoint_store.stats store).Store_intf.degraded_drops

let test_disjoint_coarsen () =
  let budget = { Budget.max_nodes = Some 4; max_bytes = None; policy = Budget.Coarsen } in
  let store = Disjoint_store.create ~budget () in
  (* Adjacent same-kind same-issuer accesses with distinct source lines:
     regular merging refuses them (debug info differs), coarsening
     collapses them. *)
  for i = 0 to 11 do
    ignore (Disjoint_store.insert store (mk_access ~seq:(i + 1) ~line:(i + 1) i i))
  done;
  let st = Disjoint_store.stats store in
  Alcotest.(check bool) "coarsened under the cap" true (st.Store_intf.nodes <= 4);
  Alcotest.(check bool) "coarsening reported as degraded drops" true
    (st.Store_intf.degraded_drops > 0);
  (* Coverage is exact: the coarse node(s) span the same bytes. *)
  let covered =
    List.fold_left
      (fun acc a -> acc + Interval.length a.Access.interval)
      0 (Disjoint_store.to_list store)
  in
  Alcotest.(check int) "no byte lost or invented" 12 covered;
  (* The coarse node still races like the originals would. *)
  match
    Disjoint_store.insert store
      (mk_access ~kind:Access_kind.Local_write ~issuer:0 ~seq:99 ~line:99 5 5)
  with
  | Store_intf.Race_detected _ -> ()
  | Store_intf.Inserted -> Alcotest.fail "write over a coarsened read did not race"

let test_legacy_and_strided_budgets () =
  (* Byte caps translate per store: 448 bytes / 112 per node = 4 nodes in
     the legacy store. *)
  let budget = { Budget.max_nodes = None; max_bytes = Some 448; policy = Budget.Fail_fast } in
  let store = Legacy_store.create ~budget () in
  let insert i = ignore (Legacy_store.insert store (mk_access ~seq:i ~line:i (i * 10) (i * 10))) in
  (for i = 1 to 4 do insert i done);
  (match insert 5 with
  | () -> Alcotest.fail "legacy store ignored its byte budget"
  | exception Budget.Exhausted _ -> ());
  let strided = Strided_store.create ~budget:(spill_budget 4) () in
  for i = 1 to 16 do
    ignore (Strided_store.insert strided (mk_access ~seq:i ~line:i (i * 100) ((i * 100) + 3)));
    if i mod 4 = 0 then Strided_store.note_epoch strided
  done;
  let st = Strided_store.stats strided in
  Alcotest.(check bool) "strided regions capped" true (st.Store_intf.nodes <= 4);
  Alcotest.(check bool) "strided spills reported" true (st.Store_intf.degraded_drops > 0)

(* --- parallel engine recovery ---------------------------------------- *)

(* Submit [n] order-tagged tasks across the engine's shards and assert
   every task ran exactly once, in submission order per shard. *)
let run_tagged_tasks engine ~jobs ~n =
  let logs = Array.init jobs (fun _ -> ref []) in
  for i = 0 to n - 1 do
    let shard = i mod jobs in
    Rma_par.submit engine ~shard (fun () -> logs.(shard) := i :: !(logs.(shard)))
  done;
  Rma_par.barrier engine;
  Array.iteri
    (fun shard log ->
      let got = List.rev !log in
      let expected = List.init (n / jobs) (fun k -> (k * jobs) + shard) in
      Alcotest.(check (list int))
        (Printf.sprintf "shard %d ran every task in order" shard)
        expected got)
    logs

let test_par_crash_recovery () =
  with_plan { Plan.default with Plan.seed = 11; worker_crash = 0.3; max_retries = 5 }
  @@ fun () ->
  let e = Rma_par.create ~jobs:2 () in
  run_tagged_tasks e ~jobs:2 ~n:200;
  let s = Rma_par.recovery_stats e in
  Alcotest.(check bool) "crashes were injected" true (s.Rma_par.crashes > 0);
  Alcotest.(check bool) "every crash was recovered or degraded" true
    (s.Rma_par.recoveries > 0 || s.Rma_par.fallbacks > 0)

let test_par_retries_exhaust_to_inline () =
  (* Rate 1.0: the shard crashes on every submit and every replay, so
     recovery must exhaust its retries and degrade to inline execution —
     still running every task, in order. *)
  with_plan { Plan.default with Plan.seed = 5; worker_crash = 1.0; max_retries = 2 }
  @@ fun () ->
  let e = Rma_par.create ~jobs:2 () in
  run_tagged_tasks e ~jobs:2 ~n:40;
  let s = Rma_par.recovery_stats e in
  Alcotest.(check bool) "fallback engaged" true (s.Rma_par.fallbacks > 0);
  Alcotest.(check bool) "crashes counted" true (s.Rma_par.crashes > 0)

let test_par_queue_overflow_degrades_inline () =
  with_plan { Plan.default with Plan.seed = 3; queue_overflow = 1.0 }
  @@ fun () ->
  let e = Rma_par.create ~jobs:2 () in
  run_tagged_tasks e ~jobs:2 ~n:40;
  let s = Rma_par.recovery_stats e in
  Alcotest.(check int) "every submit overflowed to inline" 40 s.Rma_par.overflows;
  Alcotest.(check int) "no crashes involved" 0 s.Rma_par.crashes

(* --- trace codec injection ------------------------------------------- *)

let sample_events =
  [
    Event.Win_created { win = 0; rank = 0; base = 0; size = 256; sim_time = 0.0 };
    Event.Epoch_opened { win = 0; rank = 0; sim_time = 1.0 };
    Event.Access
      {
        Event.space = 0;
        access = mk_access ~seq:1 ~line:7 0 7;
        win = Some 0;
        relevant = true;
        on_stack = false;
        sim_time = 2.0;
      };
    Event.Epoch_closed { win = 0; rank = 0; sim_time = 3.0 };
  ]

let write_trace events =
  let path = Filename.temp_file "fault_trace" ".txt" in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Rma_trace.Codec.write_all oc events);
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  s

let read_trace s =
  let path = Filename.temp_file "fault_trace" ".txt" in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s);
  let ic = open_in path in
  let r = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Rma_trace.Codec.read_all ic) in
  Sys.remove path;
  r

let test_codec_truncation_detected () =
  let clean = without_plan (fun () -> write_trace sample_events) in
  (match read_trace clean with
  | Ok evs -> Alcotest.(check int) "clean trace round-trips" 4 (List.length evs)
  | Error e -> Alcotest.failf "clean trace rejected: %s" (Rma_trace.Codec.error_to_string e));
  let truncated =
    with_plan { Plan.default with Plan.seed = 9; trace_truncate = 1.0 } (fun () ->
        let s = write_trace sample_events in
        Alcotest.(check bool) "truncation fired" true (Rma_fault.fired Rma_fault.Trace_truncate > 0);
        s)
  in
  Alcotest.(check bool) "truncated stream is shorter" true
    (String.length truncated < String.length clean);
  match read_trace truncated with
  | Ok _ -> Alcotest.fail "truncated trace read back as complete"
  | Error e ->
      Alcotest.(check bool) "error is structured with a line number" true (e.Rma_trace.Codec.at_line >= 1)

let test_codec_corruption_deterministic_and_total () =
  let plan = { Plan.default with Plan.seed = 13; trace_corrupt = 1.0 } in
  let corrupted1 = with_plan plan (fun () -> write_trace sample_events) in
  let corrupted2 = with_plan plan (fun () -> write_trace sample_events) in
  Alcotest.(check string) "same plan writes identical corruption" corrupted1 corrupted2;
  let clean = without_plan (fun () -> write_trace sample_events) in
  Alcotest.(check bool) "corruption changed the bytes" false (String.equal clean corrupted1);
  (* Totality: a corrupted stream decodes to Ok or a structured Error —
     never an exception. *)
  match read_trace corrupted1 with
  | Ok evs -> Alcotest.(check bool) "no events invented" true (List.length evs <= 4)
  | Error _ -> ()

(* --- soak: 500 seeded plans, no silent verdict change ---------------- *)

(* A deterministic event stream (8 ranks would be overkill here; 4 ranks
   x 2 windows keeps 500 runs fast) with epoch cycling, modelled on
   test_par's soak generator. *)
let soak_events ~nprocs ~wins ~n =
  let seed = ref 246_813_579 in
  let rand m =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod m
  in
  let events = ref [] in
  let push e = events := e :: !events in
  for w = 0 to wins - 1 do
    push (Event.Win_created { win = w; rank = 0; base = 0; size = 4096; sim_time = 0.0 });
    for r = 0 to nprocs - 1 do
      push (Event.Epoch_opened { win = w; rank = r; sim_time = 0.0 })
    done
  done;
  for i = 1 to n do
    let sim_time = float_of_int i in
    if i mod 53 = 0 then begin
      let win = rand wins and rank = rand nprocs in
      push (Event.Epoch_closed { win; rank; sim_time });
      push (Event.Epoch_opened { win; rank; sim_time })
    end
    else begin
      let kind = List.nth Access_kind.all (rand 5) in
      let space = rand nprocs in
      let issuer = if Access_kind.is_local kind then space else rand nprocs in
      let lo = rand 192 in
      let access =
        Access.make
          ~interval:(Interval.make ~lo ~hi:(lo + rand 8))
          ~kind ~issuer ~seq:i
          ~debug:(Debug_info.make ~file:"soak.c" ~line:(1 + rand 30) ~operation:"op")
      in
      push
        (Event.Access
           { space; access; win = Some (rand wins); relevant = true; on_stack = false; sim_time })
    end
  done;
  for w = 0 to wins - 1 do
    for r = 0 to nprocs - 1 do
      push (Event.Epoch_closed { win = w; rank = r; sim_time = float_of_int (n + 1) })
    done
  done;
  List.rev !events

let soak_plans = 500

let test_soak_500_plans_no_silent_change () =
  let nprocs = 4 in
  let events = soak_events ~nprocs ~wins:2 ~n:400 in
  let run ?budget ~jobs () =
    let tool = Rma_analyzer.create ~nprocs ~mode:Tool.Collect ~jobs ?budget Rma_analyzer.Contribution in
    List.iter (fun e -> ignore (tool.Tool.observer e)) events;
    let json = Json.to_string (Race_export.to_json ~generator:"fault-soak" (tool.Tool.races ())) in
    (json, (tool.Tool.bst_summary ()).Tool.degraded_drops_total)
  in
  let clean_json, clean_drops = without_plan (fun () -> run ~jobs:1 ()) in
  Alcotest.(check int) "clean run is not degraded" 0 clean_drops;
  let budget = spill_budget 48 in
  let silent = ref [] in
  for seed = 1 to soak_plans do
    let plan =
      { Plan.default with Plan.seed; worker_crash = 0.05; queue_overflow = 0.03; max_retries = 2 }
    in
    with_plan plan (fun () ->
        if seed mod 3 = 0 then begin
          (* Budgeted leg: the verdict may legitimately change, but only
             with the degradation reported. *)
          let json, drops = run ~budget ~jobs:2 () in
          if (not (String.equal json clean_json)) && drops = 0 then
            silent := (seed, "budgeted verdict changed with zero degraded_drops") :: !silent
        end
        else begin
          (* Fault-only leg: engine crashes and overflows are recovered;
             the verdict must be byte-identical. *)
          let json, drops = run ~jobs:2 () in
          if not (String.equal json clean_json) then
            silent := (seed, "engine faults changed the verdict") :: !silent;
          if drops <> 0 then silent := (seed, "unbudgeted run claimed degradation") :: !silent
        end)
  done;
  match !silent with
  | [] -> ()
  | (seed, why) :: _ ->
      Alcotest.failf "%d of %d plans violated the contract; first: seed %d (%s)"
        (List.length !silent) soak_plans seed why

let suite =
  [
    Alcotest.test_case "fault-plan specs parse and round-trip" `Quick test_plan_spec;
    Alcotest.test_case "budget specs parse and round-trip" `Quick test_budget_spec;
    Alcotest.test_case "fire replays per-site deterministic schedules" `Quick
      test_fire_deterministic;
    Alcotest.test_case "disjoint store spills oldest epochs at the cap" `Quick test_disjoint_spill;
    Alcotest.test_case "fail-fast budget raises Exhausted" `Quick test_disjoint_fail_fast;
    Alcotest.test_case "coarsen merges past debug info, coverage-exact" `Quick
      test_disjoint_coarsen;
    Alcotest.test_case "legacy byte cap and strided spill budgets" `Quick
      test_legacy_and_strided_budgets;
    Alcotest.test_case "crashed shards replay their journal at the barrier" `Quick
      test_par_crash_recovery;
    Alcotest.test_case "exhausted retries degrade to inline, tasks intact" `Quick
      test_par_retries_exhaust_to_inline;
    Alcotest.test_case "queue overflow degrades single submits inline" `Quick
      test_par_queue_overflow_degrades_inline;
    Alcotest.test_case "trace truncation is detected on read-back" `Quick
      test_codec_truncation_detected;
    Alcotest.test_case "trace corruption is deterministic; decoding total" `Quick
      test_codec_corruption_deterministic_and_total;
    Alcotest.test_case "soak: 500 fault plans, zero silent verdict changes" `Quick
      test_soak_500_plans_no_silent_change;
  ]
