(* The sharded parallel engine ([Rma_par]) and its analyzer
   integration: the engine contract (clamping, shard stability, FIFO
   order, barrier drain, exception stashing, critical-path accounting),
   a soak test under maximum back-pressure (queue_capacity = 1, batch
   buffers on), byte-identity sweeps of the full 154-code suite and the
   kernel corpus at jobs = 4, and golden-file stability of the
   provenance pipeline under sharded execution. *)

open Rma_access
open Rma_analysis
open Rma_microbench
module Event = Mpi_sim.Event
module Json = Rma_util.Json
module Race_export = Rma_report.Race_export

(* --- engine contract ------------------------------------------------ *)

let with_default_jobs f =
  let saved = Rma_par.default_jobs () in
  Fun.protect ~finally:(fun () -> Rma_par.set_default_jobs saved) f

let test_jobs_clamped () =
  with_default_jobs @@ fun () ->
  Rma_par.set_default_jobs 0;
  Alcotest.(check int) "0 clamps to 1" 1 (Rma_par.default_jobs ());
  Rma_par.set_default_jobs 999;
  Alcotest.(check int) "999 clamps to max_jobs" Rma_par.max_jobs (Rma_par.default_jobs ());
  Rma_par.set_default_jobs 3;
  Alcotest.(check int) "in-range value kept" 3 (Rma_par.default_jobs ());
  Alcotest.(check int) "create honours the default" 3 (Rma_par.jobs (Rma_par.create ()));
  Alcotest.(check int) "create clamps explicit jobs" Rma_par.max_jobs
    (Rma_par.jobs (Rma_par.create ~jobs:123 ()))

let test_shard_of_stable () =
  let e = Rma_par.create ~jobs:4 () in
  let e' = Rma_par.create ~jobs:4 () in
  let hit = Array.make 4 false in
  for space = 0 to 32 do
    for win = 0 to 7 do
      let s = Rma_par.shard_of e ~space ~win in
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < 4);
      Alcotest.(check int) "same key, same shard on a fresh engine" s
        (Rma_par.shard_of e' ~space ~win);
      hit.(s) <- true
    done
  done;
  Alcotest.(check bool) "the key mix reaches every shard" true (Array.for_all Fun.id hit)

let test_fifo_order_and_barrier () =
  let e = Rma_par.create ~jobs:4 ~queue_capacity:2 () in
  let logs = Array.init 4 (fun _ -> ref []) in
  for i = 0 to 199 do
    let shard = i mod 4 in
    Rma_par.submit e ~shard (fun () -> logs.(shard) := i :: !(logs.(shard)))
  done;
  Rma_par.barrier e;
  Alcotest.(check int) "nothing pending after the barrier" 0 (Rma_par.pending e);
  Array.iteri
    (fun shard log ->
      let got = List.rev !log in
      let expected = List.init 50 (fun k -> (k * 4) + shard) in
      Alcotest.(check (list int))
        (Printf.sprintf "shard %d ran its tasks in submission order" shard)
        expected got)
    logs

exception Boom

let test_exception_stashed_until_barrier () =
  let e = Rma_par.create ~jobs:2 () in
  let other_ran = ref false in
  Rma_par.submit e ~shard:0 (fun () -> raise Boom);
  Rma_par.submit e ~shard:1 (fun () -> other_ran := true);
  (match Rma_par.barrier e with
  | () -> Alcotest.fail "barrier swallowed the task exception"
  | exception Boom -> ());
  Alcotest.(check bool) "the other shard's task still ran" true !other_ran;
  (* The failure is consumed: the engine keeps working afterwards. *)
  let ran = ref false in
  Rma_par.submit e ~shard:0 (fun () -> ran := true);
  Rma_par.barrier e;
  Alcotest.(check bool) "engine usable after a failed barrier" true !ran

let test_take_work_seconds_resets () =
  let e = Rma_par.create ~jobs:2 () in
  Rma_par.submit e ~shard:1 (fun () ->
      (* Burn a measurable ~1ms so the microsecond timer cannot read 0. *)
      let t0 = Rma_util.Timer.now () in
      while Rma_util.Timer.now () -. t0 < 0.001 do
        ignore (Sys.opaque_identity 0)
      done);
  Rma_par.barrier e;
  let w = Rma_par.take_work_seconds e in
  Alcotest.(check bool) "busiest shard's work measured" true (w >= 0.001);
  Alcotest.(check (float 0.0)) "take resets the accumulators" 0.0 (Rma_par.take_work_seconds e)

(* --- soak: maximum back-pressure vs the sequential twin ------------- *)

(* A deterministic pseudo-random event stream over 8 ranks × 4 windows
   with epoch cycling, replayed in lockstep on the sequential analyzer
   and on a 4-shard engine throttled to one in-flight task per shard
   with the coalescing batch buffers on. Comparing [bst_summary] at
   every epoch close proves each barrier really drains both the shard
   queues and the per-store batch buffers; the test terminating at all
   proves the back-pressure protocol cannot deadlock against the
   barrier. *)
let soak_events ~nprocs ~wins ~n =
  let seed = ref 987_654_321 in
  let rand m =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod m
  in
  let events = ref [] in
  let push e = events := e :: !events in
  for w = 0 to wins - 1 do
    push (Event.Win_created { win = w; rank = 0; base = 0; size = 4096; sim_time = 0.0 });
    for r = 0 to nprocs - 1 do
      push (Event.Epoch_opened { win = w; rank = r; sim_time = 0.0 })
    done
  done;
  for i = 1 to n do
    let sim_time = float_of_int i in
    if i mod 97 = 0 then begin
      let win = rand wins and rank = rand nprocs in
      push (Event.Epoch_closed { win; rank; sim_time });
      push (Event.Epoch_opened { win; rank; sim_time })
    end
    else begin
      let kind = List.nth Access_kind.all (rand 5) in
      let space = rand nprocs in
      let issuer = if Access_kind.is_local kind then space else rand nprocs in
      let lo = rand 256 in
      let access =
        Access.make
          ~interval:(Interval.make ~lo ~hi:(lo + rand 8))
          ~kind ~issuer ~seq:i
          ~debug:(Debug_info.make ~file:"soak.c" ~line:(1 + rand 40) ~operation:"op")
      in
      push
        (Event.Access
           { space; access; win = Some (rand wins); relevant = true; on_stack = false; sim_time })
    end
  done;
  for w = 0 to wins - 1 do
    for r = 0 to nprocs - 1 do
      push (Event.Epoch_closed { win = w; rank = r; sim_time = float_of_int (n + 1) })
    done
  done;
  List.rev !events

let test_soak_backpressure_matches_sequential () =
  let nprocs = 8 in
  let events = soak_events ~nprocs ~wins:4 ~n:4000 in
  let mk ~jobs ~queue_capacity ~batch =
    Rma_analyzer.create ~nprocs ~mode:Tool.Collect ~batch_inserts:batch ~jobs ~queue_capacity
      Rma_analyzer.Contribution
  in
  let seq = mk ~jobs:1 ~queue_capacity:1024 ~batch:false in
  let par = mk ~jobs:4 ~queue_capacity:1 ~batch:true in
  List.iter
    (fun e ->
      ignore (seq.Tool.observer e);
      ignore (par.Tool.observer e);
      match e with
      | Event.Epoch_closed _ ->
          (* Sampled mid-stream: equality here means the barrier drained
             the shard queues and the batch buffers before the close
             finished. *)
          if par.Tool.bst_summary () <> seq.Tool.bst_summary () then
            Alcotest.failf "bst_summary diverged mid-stream at %s"
              (Format.asprintf "%a" Event.pp_event e)
      | _ -> ())
    events;
  Alcotest.(check int) "race counts agree" (seq.Tool.race_count ()) (par.Tool.race_count ());
  let json t =
    Json.to_string (Race_export.to_json ~generator:"soak" (t.Tool.races ()))
  in
  Alcotest.(check string) "reports byte-identical" (json seq) (json par)

(* --- byte-identity sweeps over the full corpora --------------------- *)

let reports_json reports =
  Json.to_string (Race_export.to_json ~generator:"sweep" reports)

let test_suite_sweep_jobs4 () =
  Rma_store.Flight_recorder.enable ();
  Fun.protect ~finally:Rma_store.Flight_recorder.disable @@ fun () ->
  let tool1 = Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect ~jobs:1 Rma_analyzer.Contribution in
  let tool4 = Rma_analyzer.create ~nprocs:3 ~mode:Tool.Collect ~jobs:4 Rma_analyzer.Contribution in
  List.iter
    (fun sc ->
      let v1 = Runner.run ~tool:tool1 sc in
      let v4 = Runner.run ~tool:tool4 sc in
      if Bool.not (Bool.equal v1.Runner.flagged v4.Runner.flagged) then
        Alcotest.failf "%s: verdicts diverge (jobs=1 %b, jobs=4 %b)" sc.Scenario.name
          v1.Runner.flagged v4.Runner.flagged;
      let j1 = reports_json v1.Runner.reports and j4 = reports_json v4.Runner.reports in
      if not (String.equal j1 j4) then
        Alcotest.failf "%s: reports not byte-identical at jobs=4" sc.Scenario.name)
    Scenario.all;
  Alcotest.(check int) "whole suite swept" 154 (List.length Scenario.all)

let test_kernel_sweep_jobs4 () =
  Rma_store.Flight_recorder.enable ();
  Fun.protect ~finally:Rma_store.Flight_recorder.disable @@ fun () ->
  List.iter
    (fun k ->
      let mk jobs =
        Rma_analyzer.create ~nprocs:k.Scenario.Kernel.k_nprocs ~mode:Tool.Collect ~jobs
          Rma_analyzer.Contribution
      in
      let v1 = Runner.run_kernel ~tool:(mk 1) k in
      let v4 = Runner.run_kernel ~tool:(mk 4) k in
      if Bool.not (Bool.equal v1.Runner.k_flagged v4.Runner.k_flagged) then
        Alcotest.failf "%s: kernel verdicts diverge" k.Scenario.Kernel.k_name;
      let j1 = reports_json v1.Runner.k_reports and j4 = reports_json v4.Runner.k_reports in
      if not (String.equal j1 j4) then
        Alcotest.failf "%s: kernel reports not byte-identical at jobs=4" k.Scenario.Kernel.k_name)
    Scenario.Kernel.all

(* --- golden stability under sharded execution ----------------------- *)

(* The Code 1 provenance scenario of test_export.ml, parameterised over
   the shard count. *)
let code1_reports ~jobs () =
  let tool =
    Rma_analyzer.create ~nprocs:2 ~mode:Tool.Collect ~jobs Rma_analyzer.Contribution
  in
  let feed e = ignore (tool.Tool.observer e) in
  let access ~seq ~line ~op lo hi kind =
    Event.Access
      {
        Event.space = 0;
        access =
          Access.make
            ~interval:(Interval.make ~lo ~hi)
            ~kind ~issuer:0 ~seq
            ~debug:(Debug_info.make ~file:"code1.c" ~line ~operation:op);
        win = Some 0;
        relevant = true;
        on_stack = false;
        sim_time = float_of_int seq;
      }
  in
  feed (Event.Epoch_opened { win = 0; rank = 0; sim_time = 0.0 });
  feed (access ~seq:1 ~line:1 ~op:"Load" 4 4 Access_kind.Local_read);
  feed (access ~seq:2 ~line:2 ~op:"MPI_Put" 2 12 Access_kind.Rma_read);
  feed (access ~seq:3 ~line:3 ~op:"Store" 7 7 Access_kind.Local_write);
  feed (Event.Epoch_closed { win = 0; rank = 0; sim_time = 4.0 });
  tool.Tool.races ()

let with_recorder f =
  Rma_store.Flight_recorder.enable ();
  Fun.protect ~finally:Rma_store.Flight_recorder.disable f

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_explain_matches_golden () =
  let explain_of reports = Race_export.explain (List.hd reports) ^ "\n" in
  let seq = with_recorder (code1_reports ~jobs:1) in
  Alcotest.(check int) "one race" 1 (List.length seq);
  (* GOLDEN_OUT_EXPLAIN=/abs/path (or GOLDEN_OUT_DIR, see
     test/golden_regen.ml) regenerates the golden file instead of
     comparing (after an intentional format change). *)
  match Golden_regen.hook ~name:"explain.txt" with
  | Some path -> Golden_regen.write ~path (explain_of seq)
  | None ->
      let golden = read_file "golden/explain.txt" in
      Alcotest.(check string) "explain matches the golden file" golden (explain_of seq);
      let par = with_recorder (code1_reports ~jobs:4) in
      Alcotest.(check string) "explain stable at jobs=4" golden (explain_of par)

let test_sarif_golden_stable_at_jobs4 () =
  let reports = with_recorder (code1_reports ~jobs:4) in
  let sarif = Json.to_string (Race_export.to_sarif ~generator:"test" reports) ^ "\n" in
  let golden = read_file "golden/race.sarif" in
  Alcotest.(check string) "SARIF golden reproduced by the sharded engine" golden sarif

let suite =
  [
    Alcotest.test_case "jobs defaults and clamping" `Quick test_jobs_clamped;
    Alcotest.test_case "shard_of is stable and covers every shard" `Quick test_shard_of_stable;
    Alcotest.test_case "per-shard FIFO order; barrier drains" `Quick test_fifo_order_and_barrier;
    Alcotest.test_case "task exceptions surface at the barrier" `Quick
      test_exception_stashed_until_barrier;
    Alcotest.test_case "take_work_seconds measures and resets" `Quick
      test_take_work_seconds_resets;
    Alcotest.test_case "soak: queue_capacity=1 + batching matches sequential" `Quick
      test_soak_backpressure_matches_sequential;
    Alcotest.test_case "154-code suite byte-identical at jobs=4" `Quick test_suite_sweep_jobs4;
    Alcotest.test_case "kernel corpus byte-identical at jobs=4" `Quick test_kernel_sweep_jobs4;
    Alcotest.test_case "explain output matches the golden file, jobs 1 and 4" `Quick
      test_explain_matches_golden;
    Alcotest.test_case "SARIF golden stable at jobs=4" `Quick test_sarif_golden_stable_at_jobs4;
  ]
