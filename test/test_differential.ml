(* ISSUE 3: property-based differential harness for the disjoint store's
   insert fast path.

   Random access streams — interleaved inserts, mid-stream race checks,
   epoch notes, buffer flushes and window clears — are replayed against
   three configurations of [Disjoint_store]:

   - the reference: [~fast_path:false], Algorithm 1 against the tree on
     every insert;
   - the finger cache (default creation, one pending run);
   - the coalescing batch buffer ([~batch:true], several pending runs);

   asserting identical per-step race verdicts (same existing/incoming
   accesses), identical final interval sets, identical node counts and
   identical Algorithm 1 statistics, with the fast-path invariants
   ([Disjoint_store.self_check]) holding after every step. A second
   property checks [Legacy_store] agreement on the stream class where
   the paper predicts it (identical-interval, RMA-only accesses: no
   Figure 5a off-path misses, no order-sensitivity false positives, no
   accumulate atomicity). *)

open Rma_access
open Rma_store

let acc ~issuer ~seq ~line ~lo ~hi kind =
  Access.make
    ~interval:(Interval.make ~lo ~hi)
    ~kind ~issuer ~seq
    ~debug:(Debug_info.make ~file:"diff.c" ~line ~operation:"op")

(* --- step language --- *)

type step =
  | Insert of Access.t
  | Check of Access.t
  | Note_epoch
  | Batch_flush
  | Clear

let decode_steps raw =
  List.mapi
    (fun i (t, lo, len, k, x) ->
      let kind = List.nth Access_kind.all (k mod 5) in
      let issuer = if Access_kind.is_local kind then 0 else x mod 3 in
      let line = 1 + (t mod 4) in
      let a = acc ~issuer ~seq:(i + 1) ~line ~lo ~hi:(lo + len - 1) kind in
      match t mod 12 with
      | 9 -> Check a
      | 10 -> if x mod 2 = 0 then Note_epoch else Batch_flush
      | 11 when x mod 4 = 0 -> Clear
      | _ -> Insert a)
    raw

let step_gen =
  QCheck.Gen.(
    let* t = int_range 0 1000 in
    let* lo = int_range 0 96 in
    let* len = int_range 1 8 in
    let* k = int_range 0 1000 in
    let* x = int_range 0 1000 in
    return (t, lo, len, k, x))

let print_raw l =
  String.concat ";"
    (List.map (fun (t, lo, len, k, x) -> Printf.sprintf "(%d,%d,%d,%d,%d)" t lo len k x) l)

let arb_stream =
  QCheck.make ~print:print_raw
    ~shrink:QCheck.Shrink.(list)
    QCheck.Gen.(list_size (int_range 1 50) step_gen)

(* --- replay --- *)

type verdict = V_inserted | V_race of Access.t * Access.t | V_quiet

let verdict_of = function
  | Store_intf.Inserted -> V_inserted
  | Store_intf.Race_detected { existing; incoming } -> V_race (existing, incoming)

let verdict_equal a b =
  match (a, b) with
  | V_inserted, V_inserted | V_quiet, V_quiet -> true
  | V_race (e1, i1), V_race (e2, i2) -> Access.equal e1 e2 && Access.equal i1 i2
  | _ -> false

let verdict_str = function
  | V_inserted -> "inserted"
  | V_quiet -> "quiet"
  | V_race (e, i) -> Format.asprintf "race(%a vs %a)" Access.pp e Access.pp i

(* Replays [steps] on [store], checking [self_check] after every step,
   and returns the per-step verdicts. *)
let replay store steps =
  List.map
    (fun step ->
      let v =
        match step with
        | Insert a -> verdict_of (Disjoint_store.insert store a)
        | Check a -> verdict_of (Disjoint_store.check_only store a)
        | Note_epoch ->
            Disjoint_store.note_epoch store;
            V_quiet
        | Batch_flush ->
            Disjoint_store.batch_flush store;
            V_quiet
        | Clear ->
            Disjoint_store.clear store;
            V_quiet
      in
      if not (Disjoint_store.self_check store) then
        QCheck.Test.fail_reportf "fast-path invariants violated after a step";
      v)
    steps

let final_state store =
  Disjoint_store.batch_flush store;
  let stats = Disjoint_store.stats store in
  (Disjoint_store.to_list store, stats)

let check_against_reference ~name reference_verdicts ref_state store_verdicts store_state =
  List.iteri
    (fun i (vr, vs) ->
      if not (verdict_equal vr vs) then
        QCheck.Test.fail_reportf "%s: step %d verdict differs: reference %s, got %s" name i
          (verdict_str vr) (verdict_str vs))
    (List.combine reference_verdicts store_verdicts);
  let ref_list, ref_stats = ref_state and got_list, got_stats = store_state in
  if not (List.equal Access.equal ref_list got_list) then
    QCheck.Test.fail_reportf "%s: final interval sets differ (%d vs %d nodes)" name
      (List.length ref_list) (List.length got_list);
  let open Store_intf in
  let pairs =
    [
      ("nodes", ref_stats.nodes, got_stats.nodes);
      ("peak_nodes", ref_stats.peak_nodes, got_stats.peak_nodes);
      ("inserts", ref_stats.inserts, got_stats.inserts);
      ("fragments_created", ref_stats.fragments_created, got_stats.fragments_created);
      ("merges_performed", ref_stats.merges_performed, got_stats.merges_performed);
      ("race_checks", ref_stats.race_checks, got_stats.race_checks);
    ]
  in
  List.iter
    (fun (what, a, b) ->
      if a <> b then QCheck.Test.fail_reportf "%s: %s differ: reference %d, got %d" name what a b)
    pairs

let prop_batched_equals_unbatched =
  QCheck.Test.make ~name:"differential: batched = unbatched disjoint store" ~count:700 arb_stream
    (fun raw ->
      let steps = decode_steps raw in
      let reference = Disjoint_store.create ~fast_path:false () in
      let ref_verdicts = replay reference steps in
      let ref_state = final_state reference in
      let finger = Disjoint_store.create ~batch:false () in
      let finger_verdicts = replay finger steps in
      check_against_reference ~name:"finger" ref_verdicts ref_state finger_verdicts
        (final_state finger);
      let batched = Disjoint_store.create ~batch:true () in
      let batched_verdicts = replay batched steps in
      check_against_reference ~name:"batched" ref_verdicts ref_state batched_verdicts
        (final_state batched);
      true)

(* --- legacy agreement --- *)

(* Identical-interval RMA-only streams: the legacy search path always
   contains the most recent node, every access pair is order-insensitive
   and the Table 1 dominance rule loses nothing detection-relevant, so
   the paper predicts verdict-for-verdict agreement (node counts still
   differ — that is Figure 8). *)
let legacy_raw_gen =
  QCheck.Gen.(
    let* w = int_range 0 1 in
    let* x = int_range 0 1000 in
    return (w, x))

let arb_legacy_stream =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (w, x) -> Printf.sprintf "(%d,%d)" w x) l))
    ~shrink:QCheck.Shrink.(list)
    QCheck.Gen.(list_size (int_range 1 40) legacy_raw_gen)

let prop_legacy_agreement =
  QCheck.Test.make ~name:"differential: legacy agreement on RMA-only same-interval streams"
    ~count:400 arb_legacy_stream (fun raw ->
      let accesses =
        List.mapi
          (fun i (w, x) ->
            let kind = if w = 0 then Access_kind.Rma_read else Access_kind.Rma_write in
            acc ~issuer:(x mod 3) ~seq:(i + 1) ~line:1 ~lo:16 ~hi:23 kind)
          raw
      in
      let legacy = Legacy_store.create () in
      let unbatched = Disjoint_store.create ~fast_path:false () in
      let batched = Disjoint_store.create ~batch:true () in
      List.iter
        (fun a ->
          let flagged outcome =
            match outcome with Store_intf.Inserted -> false | Store_intf.Race_detected _ -> true
          in
          let vl = flagged (Legacy_store.insert legacy a) in
          let vu = flagged (Disjoint_store.insert unbatched a) in
          let vb = flagged (Disjoint_store.insert batched a) in
          if vl <> vu || vl <> vb then
            QCheck.Test.fail_reportf "verdicts diverge on %s: legacy %b unbatched %b batched %b"
              (Format.asprintf "%a" Access.pp a)
              vl vu vb)
        accesses;
      true)

(* --- analyzer determinism across shard counts --- *)

(* Seeded event streams straight into the observer (no runtime): random
   interleavings of accesses on 3 ranks × 2 windows with epoch cycling
   and flushes, replayed on the sequential analyzer and on the sharded
   engine at jobs ∈ {2, 4} (plus jobs = 4 with the coalescing batch
   buffer). The engine's claim is byte-identity, so the comparison is
   total: race count, every report (via the serialized JSON and SARIF
   exports, which carry ids, provenance and flight-recorder histories),
   the Algorithm 1 statistics, and the full per-tree interval state. *)

let par_nprocs = 3
let par_wins = 2

let decode_events raw =
  let events = ref [] in
  let push e = events := e :: !events in
  for w = 0 to par_wins - 1 do
    push
      (Mpi_sim.Event.Win_created { win = w; rank = 0; base = 0; size = 4096; sim_time = 0.0 });
    for r = 0 to par_nprocs - 1 do
      push (Mpi_sim.Event.Epoch_opened { win = w; rank = r; sim_time = 0.0 })
    done
  done;
  List.iteri
    (fun i (t, lo, len, k, x) ->
      let rank = x mod par_nprocs and win = k mod par_wins in
      let sim_time = float_of_int (i + 1) in
      match t mod 10 with
      | 8 ->
          push (Mpi_sim.Event.Epoch_closed { win; rank; sim_time });
          push (Mpi_sim.Event.Epoch_opened { win; rank; sim_time })
      | 9 -> push (Mpi_sim.Event.Flushed { win; rank; target = None; sim_time })
      | _ ->
          let kind = List.nth Access_kind.all (k mod 5) in
          let issuer = if Access_kind.is_local kind then rank else x mod par_nprocs in
          let a = acc ~issuer ~seq:(i + 1) ~line:(1 + (t mod 6)) ~lo ~hi:(lo + len - 1) kind in
          push
            (Mpi_sim.Event.Access
               { space = rank; access = a; win = Some win; relevant = true; on_stack = false; sim_time }))
    raw;
  for w = 0 to par_wins - 1 do
    for r = 0 to par_nprocs - 1 do
      push (Mpi_sim.Event.Epoch_closed { win = w; rank = r; sim_time = 1e6 })
    done;
    push (Mpi_sim.Event.Win_freed { win = w; rank = 0; sim_time = 1e6 })
  done;
  List.rev !events

type analyzer_snapshot = {
  s_count : int;
  s_summary : Rma_analysis.Tool.bst_summary;
  s_trees : ((int * Mpi_sim.Event.win_id) * Access.t list) list;
  s_json : string;
  s_sarif : string;
}

let analyzer_replay ~jobs ~batch events =
  let tool, dump =
    Rma_analysis.Rma_analyzer.create_inspectable ~nprocs:par_nprocs
      ~mode:Rma_analysis.Tool.Collect ~batch_inserts:batch ~jobs ~queue_capacity:4
      Rma_analysis.Rma_analyzer.Contribution
  in
  List.iter (fun e -> ignore (tool.Rma_analysis.Tool.observer e)) events;
  let races = tool.Rma_analysis.Tool.races () in
  {
    s_count = tool.Rma_analysis.Tool.race_count ();
    s_summary = tool.Rma_analysis.Tool.bst_summary ();
    s_trees = dump ();
    s_json = Rma_util.Json.to_string (Rma_report.Race_export.to_json ~generator:"diff" races);
    s_sarif = Rma_util.Json.to_string (Rma_report.Race_export.to_sarif ~generator:"diff" races);
  }

let check_snapshot_equal ~name reference got =
  if got.s_count <> reference.s_count then
    QCheck.Test.fail_reportf "%s: race count differs: jobs=1 %d, got %d" name reference.s_count
      got.s_count;
  if got.s_summary <> reference.s_summary then
    QCheck.Test.fail_reportf "%s: bst_summary differs (nodes %d vs %d, inserts %d vs %d)" name
      reference.s_summary.Rma_analysis.Tool.nodes_final_total
      got.s_summary.Rma_analysis.Tool.nodes_final_total
      reference.s_summary.Rma_analysis.Tool.inserts_total
      got.s_summary.Rma_analysis.Tool.inserts_total;
  let trees_equal =
    List.equal
      (fun (k1, l1) (k2, l2) -> k1 = k2 && List.equal Access.equal l1 l2)
      reference.s_trees got.s_trees
  in
  if not trees_equal then
    QCheck.Test.fail_reportf "%s: interval state differs (%d vs %d trees)" name
      (List.length reference.s_trees) (List.length got.s_trees);
  if not (String.equal reference.s_json got.s_json) then
    QCheck.Test.fail_reportf "%s: JSON export not byte-identical:@.%s@.vs@.%s" name
      reference.s_json got.s_json;
  if not (String.equal reference.s_sarif got.s_sarif) then
    QCheck.Test.fail_reportf "%s: SARIF export not byte-identical" name

let prop_analyzer_jobs_deterministic =
  QCheck.Test.make ~name:"differential: analyzer byte-identical at jobs 1/2/4" ~count:150
    arb_stream (fun raw ->
      let events = decode_events raw in
      let reference = analyzer_replay ~jobs:1 ~batch:false events in
      List.iter
        (fun (jobs, batch) ->
          let name = Printf.sprintf "jobs=%d%s" jobs (if batch then "+batch" else "") in
          check_snapshot_equal ~name reference (analyzer_replay ~jobs ~batch events))
        [ (2, false); (4, false); (4, true) ];
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_batched_equals_unbatched;
    QCheck_alcotest.to_alcotest prop_legacy_agreement;
    QCheck_alcotest.to_alcotest prop_analyzer_jobs_deterministic;
  ]

(* ------------------------------------------------------------------ *)
(* Interleaving determinism (PR 8): the hybrid kernels under a swept    *)
(* interleave seed.                                                     *)
(* ------------------------------------------------------------------ *)

module Scenario = Rma_microbench.Scenario
module Runner = Rma_microbench.Runner

let hybrid_verdict ~interleave_seed ~jobs ~batch (k : Scenario.Kernel.t) =
  let tool =
    Rma_analysis.Rma_analyzer.create ~nprocs:k.Scenario.Kernel.k_nprocs
      ~mode:Rma_analysis.Tool.Collect ~batch_inserts:batch ~jobs
      Rma_analysis.Rma_analyzer.Contribution
  in
  let v = Runner.run_kernel ~interleave_seed ~tool k in
  let reports = v.Runner.k_reports in
  ( v.Runner.k_flagged,
    Rma_report.Race_export.verdict_digest reports,
    Rma_util.Json.to_string (Rma_report.Race_export.to_json ~generator:"diff" reports) )

(* Same interleave seed => byte-identical verdicts, digests and JSON
   exports whether the analyzer shards across 1, 2 or 4 workers and
   whether inserts are batched. *)
let test_interleave_determinism_across_jobs () =
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      List.iter
        (fun interleave_seed ->
          let reference = hybrid_verdict ~interleave_seed ~jobs:1 ~batch:false k in
          List.iter
            (fun (jobs, batch) ->
              let flagged_r, digest_r, json_r = reference in
              let flagged, digest, json = hybrid_verdict ~interleave_seed ~jobs ~batch k in
              let label =
                Printf.sprintf "%s interleave=%d jobs=%d batch=%b" k.Scenario.Kernel.k_name
                  interleave_seed jobs batch
              in
              Alcotest.(check bool) (label ^ " flagged") flagged_r flagged;
              Alcotest.(check string) (label ^ " digest") digest_r digest;
              Alcotest.(check string) (label ^ " json") json_r json)
            [ (2, false); (4, false); (4, true) ])
        [ 13; 29 ])
    Scenario.Kernel.hybrid

(* Ground-truth labels survive a 50-seed interleaving sweep: no hybrid
   kernel's verdict depends on the schedule. *)
let test_interleave_label_stable_across_seeds () =
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      for interleave_seed = 1 to 50 do
        let flagged, _, _ = hybrid_verdict ~interleave_seed ~jobs:1 ~batch:true k in
        Alcotest.(check bool)
          (Printf.sprintf "%s interleave=%d" k.Scenario.Kernel.k_name interleave_seed)
          k.Scenario.Kernel.k_racy flagged
      done)
    Scenario.Kernel.hybrid

(* A decoupled interleave seed must not change data-level behaviour for
   thread-free programs: the whole pre-hybrid corpus keeps its verdict
   under an aggressive schedule shuffle. *)
let test_interleave_preserves_single_thread_verdicts () =
  List.iter
    (fun (k : Scenario.Kernel.t) ->
      let reference, _, _ = hybrid_verdict ~interleave_seed:13 ~jobs:1 ~batch:false k in
      Alcotest.(check bool) k.Scenario.Kernel.k_name k.Scenario.Kernel.k_racy reference)
    Scenario.Kernel.all

let suite =
  suite
  @ [
      Alcotest.test_case "interleave: same seed byte-identical across jobs" `Slow
        test_interleave_determinism_across_jobs;
      Alcotest.test_case "interleave: hybrid labels stable over 50 seeds" `Slow
        test_interleave_label_stable_across_seeds;
      Alcotest.test_case "interleave: single-thread kernels keep verdicts" `Slow
        test_interleave_preserves_single_thread_verdicts;
    ]
