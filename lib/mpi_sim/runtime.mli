open Rma_access

(** The simulated MPI runtime.

    [run ~nprocs program] executes [nprocs] copies of [program], each as
    an effect-handler fiber owning its own address space, under a
    deterministic seeded scheduler. All MPI-like operations are
    performed through the {!Mpi} wrappers, which raise the runtime's
    effect; the scheduler services requests one at a time, interleaving
    ranks pseudo-randomly, tracking a simulated clock per rank with the
    {!Config} cost model, and streaming instrumentation events to the
    observer.

    MPI-RMA semantics follow the MPI-4 standard as the paper reads it
    (§6): one-sided data movement is {e deferred} — each Put/Get is
    applied either eagerly at issue or lazily at the origin's next
    flush/unlock, chosen by seeded coin — so racy programs genuinely
    produce different memory contents under different seeds;
    [MPI_Barrier] does {e not} complete outstanding RMA operations. *)

exception Mpi_error of string
(** Misuse of the interface by a rank program: RMA outside an epoch,
    out-of-bounds window displacement, double lock, mismatched
    collectives... *)

exception Deadlock of string
(** No rank can make progress; the message lists each blocked rank. *)

(* The request/reply protocol between a rank fiber and the scheduler.
   Rank programs never use these directly; the Mpi module wraps them. *)

type reduce_op = Sum | Max | Min

type message = { src : int; tag : int; data : Bytes.t; sent_at : float }

type request =
  | R_rank
  | R_size
  | R_wtime
  | R_compute of float
  | R_alloc of { size : int; label : string; storage : Memory.storage; exposed : bool }
  | R_load of { addr : int; len : int; loc : Debug_info.t }
  | R_store of { addr : int; data : Bytes.t; loc : Debug_info.t }
  | R_win_create of { base : int; size : int }
  | R_win_free of { win : Event.win_id }
  | R_lock_all of { win : Event.win_id; loc : Debug_info.t }
  | R_unlock_all of { win : Event.win_id; loc : Debug_info.t }
  | R_lock of { win : Event.win_id; target : int; exclusive : bool; loc : Debug_info.t }
  | R_unlock of { win : Event.win_id; target : int; loc : Debug_info.t }
  | R_flush_all of { win : Event.win_id; loc : Debug_info.t }
  | R_fence of { win : Event.win_id; loc : Debug_info.t }
  | R_flush of { win : Event.win_id; target : int; loc : Debug_info.t }
  | R_put of {
      win : Event.win_id;
      target : int;
      target_disp : int;
      origin_addr : int;
      len : int;
      loc : Debug_info.t;
    }
  | R_get of {
      win : Event.win_id;
      target : int;
      target_disp : int;
      origin_addr : int;
      len : int;
      loc : Debug_info.t;
    }
  | R_accumulate of {
      win : Event.win_id;
      target : int;
      target_disp : int;
      origin_addr : int;
      len : int;
      op : reduce_op;
      loc : Debug_info.t;
    }
  | R_send of { dst : int; tag : int; data : Bytes.t }
  | R_recv of { src : int option; tag : int option }
  | R_barrier
  | R_allreduce of { value : int64; op : reduce_op; as_float : bool }
  | R_thread_spawn of { body : unit -> unit }
  | R_thread_join of { tid : int }
  | R_thread_self
  | R_signal of { sig_id : int }
  | R_wait of { sig_id : int }

type reply =
  | RUnit
  | RInt of int
  | RFloat of float
  | RI64 of int64
  | RBytes of Bytes.t
  | RMsg of message

type _ Effect.t += Op : request -> reply Effect.t

type result = {
  clocks : float array;  (** Final simulated time per rank. *)
  epoch_times : float array;
      (** Cumulative simulated time each rank spent inside passive-target
          epochs — the Figure 10 metric. *)
  makespan : float;  (** Max of [clocks]. *)
  wall_seconds : float;  (** Real time the whole simulation took. *)
  events_emitted : int;
  accesses_emitted : int;
  threads_spawned : int;
      (** Intra-rank threads created across all ranks (main threads not
          counted); 0 for every pre-hybrid program. *)
}

val default_interleave_seed : unit -> int option
(** The [RMA_INTERLEAVE_SEED] environment variable, parsed. [Runtime.run]
    itself never reads it — harnesses (e.g. the microbench runner) use it
    to default their [?interleave_seed] so CI can sweep schedules without
    perturbing traces produced by direct [run] callers. *)

val run :
  nprocs:int ->
  ?seed:int ->
  ?interleave_seed:int ->
  ?config:Config.t ->
  ?observer:Event.observer ->
  (unit -> unit) ->
  result
(** Runs the program on every rank. Raises [Mpi_error]/[Deadlock] on
    misuse, and lets any exception raised by the observer (e.g. a
    detector's race-abort) or by a rank program propagate to the
    caller.

    [?interleave_seed] decouples the scheduler's runnable-fiber picks
    from the data-level coin flips (deferred-RMA application, payloads):
    two runs with the same [seed] but different interleave seeds explore
    different thread/rank schedules over identical data behaviour. When
    omitted, scheduling draws from the [seed] stream exactly as before,
    so existing traces are byte-identical. *)
