open Rma_access

type win = Event.win_id

let loc ~file ~line operation = Debug_info.make ~file ~line ~operation

let default_loc operation = Debug_info.make ~file:"<unlocated>" ~line:0 ~operation

let op req = Effect.perform (Runtime.Op req)

let protocol_bug what =
  invalid_arg (Printf.sprintf "Mpi.%s: unexpected reply from the runtime" what)

let comm_rank () = match op Runtime.R_rank with Runtime.RInt r -> r | _ -> protocol_bug "comm_rank"
let comm_size () = match op Runtime.R_size with Runtime.RInt n -> n | _ -> protocol_bug "comm_size"
let wtime () = match op Runtime.R_wtime with Runtime.RFloat t -> t | _ -> protocol_bug "wtime"

let compute seconds =
  match op (Runtime.R_compute seconds) with Runtime.RUnit -> () | _ -> protocol_bug "compute"

let alloc ?(label = "") ?(storage = Memory.Heap) ?(exposed = false) size =
  match op (Runtime.R_alloc { size; label; storage; exposed }) with
  | Runtime.RInt addr -> addr
  | _ -> protocol_bug "alloc"

let load ?loc:(l = default_loc "Load") ~addr ~len () =
  match op (Runtime.R_load { addr; len; loc = l }) with
  | Runtime.RBytes b -> b
  | _ -> protocol_bug "load"

let store ?loc:(l = default_loc "Store") ~addr data =
  match op (Runtime.R_store { addr; data; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "store"

let load_i64 ?loc ~addr () =
  let b = load ?loc ~addr ~len:8 () in
  Bytes.get_int64_le b 0

let store_i64 ?loc ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store ?loc ~addr b

let win_create ~base ~size =
  match op (Runtime.R_win_create { base; size }) with
  | Runtime.RInt id -> id
  | _ -> protocol_bug "win_create"

let win_free win =
  match op (Runtime.R_win_free { win }) with Runtime.RUnit -> () | _ -> protocol_bug "win_free"

let win_lock_all ?loc:(l = default_loc "MPI_Win_lock_all") win =
  match op (Runtime.R_lock_all { win; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "win_lock_all"

let win_unlock_all ?loc:(l = default_loc "MPI_Win_unlock_all") win =
  match op (Runtime.R_unlock_all { win; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "win_unlock_all"

let win_flush_all ?loc:(l = default_loc "MPI_Win_flush_all") win =
  match op (Runtime.R_flush_all { win; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "win_flush_all"

let win_lock ?loc:(l = default_loc "MPI_Win_lock") ?(exclusive = false) win ~rank =
  match op (Runtime.R_lock { win; target = rank; exclusive; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "win_lock"

let win_unlock ?loc:(l = default_loc "MPI_Win_unlock") win ~rank =
  match op (Runtime.R_unlock { win; target = rank; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "win_unlock"

let win_fence ?loc:(l = default_loc "MPI_Win_fence") win =
  match op (Runtime.R_fence { win; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "win_fence"

let win_flush ?loc:(l = default_loc "MPI_Win_flush") win ~rank =
  match op (Runtime.R_flush { win; target = rank; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "win_flush"

let put ?loc:(l = default_loc "MPI_Put") win ~target ~target_disp ~origin_addr ~len =
  match op (Runtime.R_put { win; target; target_disp; origin_addr; len; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "put"

let get ?loc:(l = default_loc "MPI_Get") win ~target ~target_disp ~origin_addr ~len =
  match op (Runtime.R_get { win; target; target_disp; origin_addr; len; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "get"

let accumulate ?loc:(l = default_loc "MPI_Accumulate") win ~target ~target_disp ~origin_addr ~len
    ~op:o =
  match op (Runtime.R_accumulate { win; target; target_disp; origin_addr; len; op = o; loc = l }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "accumulate"

let send ~dst ~tag data =
  match op (Runtime.R_send { dst; tag; data }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "send"

let recv ?src ?tag () =
  match op (Runtime.R_recv { src; tag }) with
  | Runtime.RMsg m -> m
  | _ -> protocol_bug "recv"

let recv_data ?src ?tag () = (recv ?src ?tag ()).Runtime.data

let barrier () =
  match op Runtime.R_barrier with Runtime.RUnit -> () | _ -> protocol_bug "barrier"

let allreduce_i64 value ~op:o =
  match op (Runtime.R_allreduce { value; op = o; as_float = false }) with
  | Runtime.RI64 v -> v
  | _ -> protocol_bug "allreduce_i64"

let allreduce_int value ~op = Int64.to_int (allreduce_i64 (Int64.of_int value) ~op)

let allreduce_float value ~op:o =
  match op (Runtime.R_allreduce { value = Int64.bits_of_float value; op = o; as_float = true }) with
  | Runtime.RI64 v -> Int64.float_of_bits v
  | _ -> protocol_bug "allreduce_float"

let thread_spawn body =
  match op (Runtime.R_thread_spawn { body }) with
  | Runtime.RInt tid -> tid
  | _ -> protocol_bug "thread_spawn"

let thread_join tid =
  match op (Runtime.R_thread_join { tid }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "thread_join"

let thread_self () =
  match op Runtime.R_thread_self with Runtime.RInt t -> t | _ -> protocol_bug "thread_self"

let signal sig_id =
  match op (Runtime.R_signal { sig_id }) with
  | Runtime.RUnit -> ()
  | _ -> protocol_bug "signal"

let wait sig_id =
  match op (Runtime.R_wait { sig_id }) with Runtime.RUnit -> () | _ -> protocol_bug "wait"
