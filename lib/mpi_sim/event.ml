open Rma_access

(** Instrumentation events streamed from the simulated runtime to a
    detector, mirroring what the PMPI interface plus the LLVM
    instrumentation pass deliver in the real RMA-Analyzer (§5.1). *)

type win_id = int

type access_event = {
  space : int;
      (** Rank whose address space is touched. An [MPI_Put] from rank 2
          into rank 0's window yields one event with [space = 2] (the
          origin-buffer read) and one with [space = 0] (the window
          write); both carry [issuer = 2] inside [access]. *)
  access : Access.t;
  win : win_id option;  (** Window involved, when the access is RMA. *)
  relevant : bool;
      (** Survives the static alias filter: RMA accesses always, local
          accesses only when they may touch RMA-exposed memory. *)
  on_stack : bool;
      (** Touches stack storage — invisible to the TSan-style backend. *)
  sim_time : float;
}

type collective_kind = Barrier | Allreduce | Fence

type event =
  | Access of access_event
  | Collective of { kind : collective_kind; rank : int; sim_time : float }
      (** Emitted once per participating rank when a barrier/allreduce
          releases; happens-before-based detectors merge clocks here. *)
  | Win_created of { win : win_id; rank : int; base : int; size : int; sim_time : float }
  | Win_freed of { win : win_id; rank : int; sim_time : float }
  | Epoch_opened of { win : win_id; rank : int; sim_time : float }
  | Epoch_closed of { win : win_id; rank : int; sim_time : float }
  | Flushed of { win : win_id; rank : int; target : int option; sim_time : float }
  | Finished of { rank : int; sim_time : float }

(** A detector consumes events and returns the {e simulated} cost of its
    own communication protocol for this event (notification sends,
    end-of-epoch reductions, vector-clock piggybacking...). Its real
    computational cost is measured by the runtime around this call and
    charged to the triggering rank's simulated clock, so heavier
    detectors genuinely slow the simulated run down. *)
type observer = event -> float

let null_observer : observer = fun _ -> 0.0

let pp_event fmt = function
  | Access a ->
      Format.fprintf fmt "@[access space=%d %a%s%s@]" a.space Access.pp a.access
        (if a.relevant then "" else " (filtered)")
        (if a.on_stack then " (stack)" else "")
  | Collective c ->
      Format.fprintf fmt "collective %s rank=%d"
        (match c.kind with Barrier -> "barrier" | Allreduce -> "allreduce" | Fence -> "fence")
        c.rank
  | Win_created w -> Format.fprintf fmt "win_created win=%d rank=%d base=%d size=%d" w.win w.rank w.base w.size
  | Win_freed w -> Format.fprintf fmt "win_freed win=%d rank=%d" w.win w.rank
  | Epoch_opened e -> Format.fprintf fmt "epoch_opened win=%d rank=%d" e.win e.rank
  | Epoch_closed e -> Format.fprintf fmt "epoch_closed win=%d rank=%d" e.win e.rank
  | Flushed f ->
      Format.fprintf fmt "flushed win=%d rank=%d target=%s" f.win f.rank
        (match f.target with None -> "all" | Some t -> string_of_int t)
  | Finished f -> Format.fprintf fmt "finished rank=%d" f.rank
