open Rma_access

(** Per-rank address space.

    Each simulated rank owns a flat byte array plus a bump allocator.
    Allocations carry two properties the detectors care about:

    - [storage]: [Stack] or [Heap]. ThreadSanitizer does not instrument
      stack arrays (the MUST-RMA false negatives of Table 2/3), so the
      TSan-style filter needs to know where a byte lives.
    - [exposed]: whether the allocation may be involved in RMA — the
      result the LLVM alias analysis would compute statically. Local
      accesses to non-exposed allocations are filtered out for the
      RMA-Analyzer-family tools but still instrumented by
      ThreadSanitizer (which instruments everything), reproducing the
      over-instrumentation overhead gap of §5.3. *)

type storage = Stack | Heap

type allocation = {
  addr : int;
  len : int;
  storage : storage;
  exposed : bool;
  label : string;
}

type t

val create : size:int -> t

val size : t -> int

val alloc : t -> ?label:string -> ?storage:storage -> ?exposed:bool -> int -> int
(** [alloc t n] reserves [n] bytes and returns the base address. Defaults:
    [storage = Heap], [exposed = false], 8-byte alignment. The backing
    array grows on demand. *)

val allocation_at : t -> int -> allocation option
(** The allocation containing an address, if any. *)

val read : t -> addr:int -> len:int -> Bytes.t
(** Raises [Invalid_argument] when out of bounds of the reserved space. *)

val write : t -> addr:int -> data:Bytes.t -> unit

val read_int64 : t -> addr:int -> int64
val write_int64 : t -> addr:int -> int64 -> unit

val interval_exposed : t -> Interval.t -> bool
(** Does the interval intersect any [exposed] allocation? *)

val interval_on_stack : t -> Interval.t -> bool
(** Does the interval intersect any [Stack] allocation? *)
