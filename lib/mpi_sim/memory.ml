open Rma_access

type storage = Stack | Heap

type allocation = {
  addr : int;
  len : int;
  storage : storage;
  exposed : bool;
  label : string;
}

type t = {
  mutable data : Bytes.t;
  mutable brk : int;  (* next free address *)
  mutable allocations : allocation list;  (* most recent first *)
}

let create ~size = { data = Bytes.make size '\000'; brk = 0; allocations = [] }

let size t = t.brk

let grow t needed =
  let cur = Bytes.length t.data in
  if needed > cur then begin
    let target = ref (max cur 1024) in
    while !target < needed do
      target := !target * 2
    done;
    let next = Bytes.make !target '\000' in
    Bytes.blit t.data 0 next 0 cur;
    t.data <- next
  end

let alloc t ?(label = "") ?(storage = Heap) ?(exposed = false) n =
  if n <= 0 then invalid_arg "Memory.alloc: size must be positive";
  let addr = (t.brk + 7) land lnot 7 in
  grow t (addr + n);
  t.brk <- addr + n;
  t.allocations <- { addr; len = n; storage; exposed; label } :: t.allocations;
  addr

let allocation_at t a =
  List.find_opt (fun al -> al.addr <= a && a < al.addr + al.len) t.allocations

let check_bounds t ~addr ~len ~what =
  if len < 0 || addr < 0 || addr + len > t.brk then
    invalid_arg (Printf.sprintf "Memory.%s: [%d, %d) outside reserved [0, %d)" what addr (addr + len) t.brk)

let read t ~addr ~len =
  check_bounds t ~addr ~len ~what:"read";
  Bytes.sub t.data addr len

let write t ~addr ~data =
  check_bounds t ~addr ~len:(Bytes.length data) ~what:"write";
  Bytes.blit data 0 t.data addr (Bytes.length data)

let read_int64 t ~addr =
  check_bounds t ~addr ~len:8 ~what:"read_int64";
  Bytes.get_int64_le t.data addr

let write_int64 t ~addr v =
  check_bounds t ~addr ~len:8 ~what:"write_int64";
  Bytes.set_int64_le t.data addr v

let intersects_allocation iv al =
  let al_iv = Interval.of_range ~addr:al.addr ~len:al.len in
  Interval.overlaps iv al_iv

let interval_exposed t iv =
  List.exists (fun al -> al.exposed && intersects_allocation iv al) t.allocations

let interval_on_stack t iv =
  List.exists (fun al -> al.storage = Stack && intersects_allocation iv al) t.allocations
