open Rma_access
module Obs = Rma_obs.Obs
module Vclock = Rma_vclock.Vclock

exception Mpi_error of string
exception Deadlock of string

type reduce_op = Sum | Max | Min

type message = { src : int; tag : int; data : Bytes.t; sent_at : float }

type request =
  | R_rank
  | R_size
  | R_wtime
  | R_compute of float
  | R_alloc of { size : int; label : string; storage : Memory.storage; exposed : bool }
  | R_load of { addr : int; len : int; loc : Debug_info.t }
  | R_store of { addr : int; data : Bytes.t; loc : Debug_info.t }
  | R_win_create of { base : int; size : int }
  | R_win_free of { win : Event.win_id }
  | R_lock_all of { win : Event.win_id; loc : Debug_info.t }
  | R_unlock_all of { win : Event.win_id; loc : Debug_info.t }
  | R_lock of { win : Event.win_id; target : int; exclusive : bool; loc : Debug_info.t }
  | R_unlock of { win : Event.win_id; target : int; loc : Debug_info.t }
  | R_flush_all of { win : Event.win_id; loc : Debug_info.t }
  | R_fence of { win : Event.win_id; loc : Debug_info.t }
  | R_flush of { win : Event.win_id; target : int; loc : Debug_info.t }
  | R_put of {
      win : Event.win_id;
      target : int;
      target_disp : int;
      origin_addr : int;
      len : int;
      loc : Debug_info.t;
    }
  | R_get of {
      win : Event.win_id;
      target : int;
      target_disp : int;
      origin_addr : int;
      len : int;
      loc : Debug_info.t;
    }
  | R_accumulate of {
      win : Event.win_id;
      target : int;
      target_disp : int;
      origin_addr : int;
      len : int;
      op : reduce_op;
      loc : Debug_info.t;
    }
  | R_send of { dst : int; tag : int; data : Bytes.t }
  | R_recv of { src : int option; tag : int option }
  | R_barrier
  | R_allreduce of { value : int64; op : reduce_op; as_float : bool }
  | R_thread_spawn of { body : unit -> unit }
  | R_thread_join of { tid : int }
  | R_thread_self
  | R_signal of { sig_id : int }
  | R_wait of { sig_id : int }

type reply =
  | RUnit
  | RInt of int
  | RFloat of float
  | RI64 of int64
  | RBytes of Bytes.t
  | RMsg of message

type _ Effect.t += Op : request -> reply Effect.t

type result = {
  clocks : float array;
  epoch_times : float array;
  makespan : float;
  wall_seconds : float;
  events_emitted : int;
  accesses_emitted : int;
  threads_spawned : int;
}

let default_interleave_seed () =
  match Sys.getenv_opt "RMA_INTERLEAVE_SEED" with
  | None -> None
  | Some v -> int_of_string_opt (String.trim v)

(* ------------------------------------------------------------------ *)
(* Scheduler state                                                      *)
(* ------------------------------------------------------------------ *)

type continuation = (reply, unit) Effect.Deep.continuation

(* A deferred one-sided data movement: [apply] performs the memcpy when
   the operation "completes"; [completion] is when the network would have
   delivered it. *)
type pending_rma = { apply : unit -> unit; completion : float; target : int }

type epoch_kind = Lock_all | Fence | Per_target
type epoch = {
  opened_at : float;
  kind : epoch_kind;
  mutable lock_count : int;  (* live per-target locks backing a Per_target epoch *)
  mutable pending : pending_rma list;
}

type lock_request = { l_origin : int; l_exclusive : bool; l_k : continuation }

type window = {
  win_size : int;
  bases : int array;  (* per-rank base address of the window region *)
  mutable freed : bool;
  lock_holders : (int * int, bool) Hashtbl.t;
      (* (target, origin) -> exclusive: live per-target locks *)
  lock_waiters : (int, lock_request Queue.t) Hashtbl.t;  (* per target *)
}

(* One intra-rank thread: an effect-handler fiber sharing the rank's
   address space, MPI state and simulated clock, with its own intra-rank
   vector clock. The clock ticks only at synchronisation points
   (spawn/join/signal/wait), so in a single-threaded rank every access
   carries the same virgin stamp — the thread-oblivious degenerate
   case. *)
type thread_state = {
  tid : int;
  mutable tclock : Vclock.t;
  mutable tview : (int * int) list;  (* cached Vclock.components tclock *)
  mutable town : int;  (* cached own component of tclock *)
  mutable t_done : bool;
  mutable joiners : (int * continuation) list;  (* threads blocked joining this one *)
}

(* A counting semaphore used for task-style signal/wait ordering inside
   one rank. The slot accumulates the merged clock of every signaller so
   a released waiter observes all of them. *)
type signal_slot = {
  mutable sig_count : int;
  mutable sig_clock : Vclock.t;
  sig_waiters : (int * continuation) Queue.t;
}

type rank_state = {
  rank : int;
  memory : Memory.t;
  mutable clock : float;
  mutable epoch_time : float;
  mutable epochs : (Event.win_id * epoch) list;  (* open epochs *)
  mailbox : message Queue.t;
  mutable recv_waiter : (int option * int option * continuation) option;
  mutable done_ : bool;
  threads : (int, thread_state) Hashtbl.t;
  mutable next_tid : int;
  mutable live_threads : int;
  signals : (int, signal_slot) Hashtbl.t;
}

(* A collective in progress: ranks that arrived, their payloads and
   continuations; released when the last rank arrives. *)
type gather = { mutable arrived : (int * int64 * continuation) list }

type scheduler = {
  nprocs : int;
  config : Config.t;
  observer : Event.observer;
  rng : Rma_util.Prng.t;
  ranks : rank_state array;
  windows : (Event.win_id, window) Hashtbl.t;
  mutable next_win : Event.win_id;
  mutable seq : int;
  mutable barrier_state : gather;
  mutable allreduce_state : gather;
  mutable win_create_state : (int * int * int64 * continuation) list;
      (* rank, base, size packed separately: (rank, base, size-as-int64? ) *)
  mutable win_free_state : gather;
  fence_states : (Event.win_id, gather) Hashtbl.t;
  runnable : (unit -> unit) Queue.t;
  mutable current : int;  (* rank whose fiber is executing *)
  mutable pending_request : (int * int * request * continuation) option;
      (* rank, thread, request, continuation *)
  mutable events_emitted : int;
  mutable accesses_emitted : int;
  mutable threads_spawned : int;
  mutable live : int;  (* ranks not yet finished *)
  interleave : Rma_util.Prng.t;
      (* Drives only the runnable-fiber pick. Physically equal to [rng]
         unless an explicit interleave seed decouples scheduling choices
         from the data-level coin flips. *)
}

let fresh_gather () = { arrived = [] }

(* ------------------------------------------------------------------ *)
(* Event emission                                                       *)
(* ------------------------------------------------------------------ *)

let obs_events = Obs.counter ~help:"Events dispatched to the observer" "sim.events_dispatched"

let obs_observer_seconds =
  Obs.histogram ~help:"Wall time of one observer call (detector work per event)"
    "sim.observer_seconds"

let obs_protocol_cost =
  Obs.histogram ~help:"Simulated protocol cost reported by the observer per event"
    "sim.protocol_cost_seconds"

let obs_messages = Obs.counter ~help:"Point-to-point messages sent" "sim.messages_sent"

let obs_collectives =
  Obs.counter ~help:"Collective releases (barrier, allreduce, fence)" "sim.collective_releases"

let obs_rma_ops = Obs.counter ~help:"One-sided operations issued (put/get/accumulate)" "sim.rma_ops"

(* The observer's real computational work is measured and charged to the
   triggering rank's simulated clock (scaled), together with whatever
   simulated protocol cost the observer reports. This is how detector
   overhead becomes visible in the Figure 10-12 metrics. *)
let dispatch s ~charge_to event =
  s.events_emitted <- s.events_emitted + 1;
  let t0 = Rma_util.Timer.now () in
  let protocol_cost = s.observer event in
  let wall = Rma_util.Timer.now () -. t0 in
  Obs.incr obs_events;
  Obs.observe obs_observer_seconds wall;
  Obs.observe obs_protocol_cost protocol_cost;
  let rk = s.ranks.(charge_to) in
  (* Self-timed observers (the sharded parallel analyzer) fold their own
     modelled analysis seconds into [protocol_cost]; charging the inline
     wall time too would double-bill them. *)
  let wall_charge =
    if s.config.Config.analysis_self_timed then 0.0
    else wall *. s.config.Config.analysis_overhead_scale
  in
  rk.clock <- rk.clock +. wall_charge +. protocol_cost

let next_seq s =
  s.seq <- s.seq + 1;
  s.seq

(* ------------------------------------------------------------------ *)
(* Intra-rank threads                                                   *)
(* ------------------------------------------------------------------ *)

let refresh_thread_caches ~rank th =
  th.tview <- Vclock.components th.tclock;
  th.town <- Vclock.get th.tclock (Vclock.rt_key ~rank ~thread:th.tid)

let make_thread ~rank ~tid tclock =
  let th = { tid; tclock; tview = []; town = 0; t_done = false; joiners = [] } in
  refresh_thread_caches ~rank th;
  th

let thread_of rk tid =
  match Hashtbl.find_opt rk.threads tid with
  | Some th -> th
  | None -> raise (Mpi_error (Printf.sprintf "rank %d: unknown thread %d" rk.rank tid))

let thread_info_of (th : thread_state) =
  { Access.tid = th.tid; tstamp = th.town; tview = th.tview }

(* Joiner merges the joined thread's final clock, then ticks its own
   component: subsequent accesses are ordered after everything the
   joined thread did. *)
let absorb_into ~rank joiner other_clock =
  joiner.tclock <-
    Vclock.tick (Vclock.merge joiner.tclock other_clock) (Vclock.rt_key ~rank ~thread:joiner.tid);
  refresh_thread_caches ~rank joiner

let signal_slot_of rk sig_id =
  match Hashtbl.find_opt rk.signals sig_id with
  | Some slot -> slot
  | None ->
      let slot = { sig_count = 0; sig_clock = Vclock.empty; sig_waiters = Queue.create () } in
      Hashtbl.replace rk.signals sig_id slot;
      slot

let window_of_rank_region s rank iv =
  (* The window (if any) whose region on [rank] contains the interval. *)
  Hashtbl.fold
    (fun id w acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if w.freed then None
          else begin
            let base = w.bases.(rank) in
            let region = Interval.of_range ~addr:base ~len:w.win_size in
            if Interval.overlaps iv region then Some id else None
          end)
    s.windows None

let emit_access s ~space ~issuer ~thread ~interval ~kind ~win ~loc =
  s.accesses_emitted <- s.accesses_emitted + 1;
  let mem = s.ranks.(space).memory in
  let relevant =
    match kind with
    | Access_kind.Rma_read | Access_kind.Rma_write | Access_kind.Rma_accumulate -> true
    | Access_kind.Local_read | Access_kind.Local_write ->
        Memory.interval_exposed mem interval || window_of_rank_region s space interval <> None
  in
  let win =
    match win with Some _ -> win | None -> window_of_rank_region s space interval
  in
  let access = Access.make_threaded ~thread ~interval ~kind ~issuer ~seq:(next_seq s) ~debug:loc in
  let ev =
    Event.Access
      {
        Event.space;
        access;
        win;
        relevant;
        on_stack = Memory.interval_on_stack mem interval;
        sim_time = s.ranks.(issuer).clock;
      }
  in
  dispatch s ~charge_to:issuer ev

(* ------------------------------------------------------------------ *)
(* Continuation plumbing                                                *)
(* ------------------------------------------------------------------ *)

let resume s rank k reply =
  Queue.add
    (fun () ->
      s.current <- rank;
      Effect.Deep.continue k reply)
    s.runnable

let resume_error s rank k msg =
  Queue.add
    (fun () ->
      s.current <- rank;
      Effect.Deep.discontinue k (Mpi_error msg))
    s.runnable

(* ------------------------------------------------------------------ *)
(* Request handling                                                     *)
(* ------------------------------------------------------------------ *)

let get_window s id =
  match Hashtbl.find_opt s.windows id with
  | Some w when not w.freed -> w
  | Some _ -> raise (Mpi_error (Printf.sprintf "window %d already freed" id))
  | None -> raise (Mpi_error (Printf.sprintf "unknown window %d" id))

let find_epoch rk win = List.assoc_opt win rk.epochs

let require_epoch rk win =
  match find_epoch rk win with
  | Some e -> e
  | None ->
      raise
        (Mpi_error
           (Printf.sprintf "rank %d: RMA operation on window %d outside an epoch" rk.rank win))

let message_matches ~src ~tag (m : message) =
  (match src with None -> true | Some s -> s = m.src)
  && match tag with None -> true | Some t -> t = m.tag

let try_deliver s rank =
  let rk = s.ranks.(rank) in
  match rk.recv_waiter with
  | None -> ()
  | Some (src, tag, k) ->
      (* Find the first matching message in arrival order. *)
      let found = ref None in
      let rest = Queue.create () in
      Queue.iter
        (fun m ->
          if !found = None && message_matches ~src ~tag m then found := Some m
          else Queue.add m rest)
        rk.mailbox;
      (match !found with
      | None -> ()
      | Some m ->
          Queue.clear rk.mailbox;
          Queue.transfer rest rk.mailbox;
          rk.recv_waiter <- None;
          rk.clock <-
            Float.max rk.clock
              (m.sent_at +. Config.message_cost s.config ~bytes_count:(Bytes.length m.data));
          resume s rank k (RMsg m))

let apply_pending s rk epoch ~only_target =
  let applied, kept =
    List.partition
      (fun p -> match only_target with None -> true | Some t -> p.target = t)
      epoch.pending
  in
  (* Completion order of one-sided operations is unspecified within an
     epoch: apply in a seeded-random order. *)
  let arr = Array.of_list applied in
  Rma_util.Prng.shuffle_in_place s.rng arr;
  Array.iter (fun p -> p.apply ()) arr;
  let latest = Array.fold_left (fun acc p -> Float.max acc p.completion) rk.clock arr in
  rk.clock <- latest;
  epoch.pending <- kept


(* Per-target passive locks: grant immediately when compatible, park the
   requester otherwise. A per-target lock also opens (or references) a
   Per_target epoch at the origin so one-sided calls are legal. *)
let lock_compatible w ~target ~exclusive =
  let holders = Hashtbl.fold (fun (t, _) excl acc -> if t = target then excl :: acc else acc) w.lock_holders [] in
  match holders with
  | [] -> true
  | _ when exclusive -> false
  | holders -> not (List.exists (fun e -> e) holders)

let open_per_target_epoch s rk win =
  match find_epoch rk win with
  | Some epoch ->
      if epoch.kind <> Per_target then
        raise
          (Mpi_error
             (Printf.sprintf "rank %d: per-target lock while another epoch is open on window %d"
                rk.rank win));
      epoch.lock_count <- epoch.lock_count + 1
  | None ->
      rk.clock <- rk.clock +. s.config.Config.alpha_sync;
      rk.epochs <-
        (win, { opened_at = rk.clock; kind = Per_target; lock_count = 1; pending = [] })
        :: rk.epochs;
      dispatch s ~charge_to:rk.rank (Event.Epoch_opened { win; rank = rk.rank; sim_time = rk.clock })

let grant_lock s w win ~origin ~target ~exclusive k =
  Hashtbl.replace w.lock_holders (target, origin) exclusive;
  let rk = s.ranks.(origin) in
  open_per_target_epoch s rk win;
  resume s origin k RUnit

let release_waiters s w win ~target =
  match Hashtbl.find_opt w.lock_waiters target with
  | None -> ()
  | Some q ->
      (* Grant the head (and, for shared requests, every following shared
         request) as far as compatibility allows. *)
      let rec grant_front () =
        match Queue.peek_opt q with
        | Some r when lock_compatible w ~target ~exclusive:r.l_exclusive ->
            ignore (Queue.pop q);
            grant_lock s w win ~origin:r.l_origin ~target ~exclusive:r.l_exclusive r.l_k;
            if not r.l_exclusive then grant_front ()
        | _ -> ()
      in
      grant_front ()

let reduce_combine ~as_float op a b =
  if as_float then begin
    let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
    let r = match op with Sum -> fa +. fb | Max -> Float.max fa fb | Min -> Float.min fa fb in
    Int64.bits_of_float r
  end
  else
    match op with
    | Sum -> Int64.add a b
    | Max -> if Int64.compare a b >= 0 then a else b
    | Min -> if Int64.compare a b <= 0 then a else b

let release_gather s gather ~cost ~value =
  let members = gather.arrived in
  let latest = List.fold_left (fun acc (r, _, _) -> Float.max acc s.ranks.(r).clock) 0.0 members in
  List.iter
    (fun (r, _, k) ->
      s.ranks.(r).clock <- latest +. cost;
      resume s r k (value r))
    members

(* One fiber = one intra-rank thread. The effect handler parks the
   thread's request for the trampoline; the return continuation retires
   the thread, releases its joiners and — when it was the rank's last
   live thread — finishes the rank. With one thread per rank this is
   exactly the historical per-rank fiber. *)
let spawn_fiber s rank tid program =
  let handler =
    {
      Effect.Deep.retc =
        (fun () ->
          let rk = s.ranks.(rank) in
          let th = thread_of rk tid in
          th.t_done <- true;
          rk.live_threads <- rk.live_threads - 1;
          let joiners = List.rev th.joiners in
          th.joiners <- [];
          List.iter
            (fun (jtid, jk) ->
              absorb_into ~rank (thread_of rk jtid) th.tclock;
              resume s rank jk RUnit)
            joiners;
          if rk.live_threads = 0 then begin
            rk.done_ <- true;
            s.live <- s.live - 1;
            dispatch s ~charge_to:rank (Event.Finished { rank; sim_time = rk.clock })
          end);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Op req ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  s.pending_request <- Some (rank, tid, req, k))
          | _ -> None);
    }
  in
  Queue.add
    (fun () ->
      s.current <- rank;
      Effect.Deep.match_with program () handler)
    s.runnable

let no_double_gather ~what rank present =
  if present then
    raise
      (Mpi_error
         (Printf.sprintf "rank %d: concurrent %s from two threads of the same rank" rank what))

let handle_request s rank tid req k =
  let rk = s.ranks.(rank) in
  let th = thread_of rk tid in
  let tinfo = thread_info_of th in
  let cfg = s.config in
  match req with
  | R_rank -> resume s rank k (RInt rank)
  | R_size -> resume s rank k (RInt s.nprocs)
  | R_wtime -> resume s rank k (RFloat rk.clock)
  | R_compute c ->
      rk.clock <- rk.clock +. Float.max 0.0 c;
      resume s rank k RUnit
  | R_alloc { size; label; storage; exposed } ->
      let addr = Memory.alloc rk.memory ~label ~storage ~exposed size in
      resume s rank k (RInt addr)
  | R_load { addr; len; loc } ->
      let data = Memory.read rk.memory ~addr ~len in
      emit_access s ~space:rank ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr ~len)
        ~kind:Access_kind.Local_read ~win:None ~loc;
      resume s rank k (RBytes data)
  | R_store { addr; data; loc } ->
      Memory.write rk.memory ~addr ~data;
      emit_access s ~space:rank ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr ~len:(Bytes.length data))
        ~kind:Access_kind.Local_write ~win:None ~loc;
      resume s rank k RUnit
  | R_win_create { base; size } ->
      no_double_gather ~what:"win_create" rank
        (List.exists (fun (r, _, _, _) -> r = rank) s.win_create_state);
      s.win_create_state <- (rank, base, Int64.of_int size, k) :: s.win_create_state;
      if List.length s.win_create_state = s.nprocs then begin
        let members = s.win_create_state in
        s.win_create_state <- [];
        let sizes =
          List.sort_uniq Int64.compare (List.map (fun (_, _, sz, _) -> sz) members)
        in
        (match sizes with
        | [ _ ] -> ()
        | _ -> raise (Mpi_error "win_create: ranks disagree on window size"));
        let win_size = size in
        let bases = Array.make s.nprocs 0 in
        List.iter (fun (r, b, _, _) -> bases.(r) <- b) members;
        let id = s.next_win in
        s.next_win <- id + 1;
        Hashtbl.replace s.windows id
          {
            win_size;
            bases;
            freed = false;
            lock_holders = Hashtbl.create 8;
            lock_waiters = Hashtbl.create 8;
          };
        let latest =
          List.fold_left (fun acc (r, _, _, _) -> Float.max acc s.ranks.(r).clock) 0.0 members
        in
        let cost = Config.collective_cost cfg ~nprocs:s.nprocs ~bytes_count:16 in
        List.iter
          (fun (r, _, _, k) ->
            s.ranks.(r).clock <- latest +. cost;
            dispatch s ~charge_to:r
              (Event.Win_created
                 { win = id; rank = r; base = bases.(r); size = win_size; sim_time = s.ranks.(r).clock });
            resume s r k (RInt id))
          members
      end
  (* Every close path accrues epoch_time AFTER the Epoch_closed
     dispatch: the close-side protocol work the observer charges (the
     end-of-epoch MPI_Reduce, a parallel analyzer's barrier drain) is
     part of the epoch being closed, not of the gap to the next one. *)
  | R_win_free { win } ->
      let w = get_window s win in
      (match find_epoch rk win with
      | Some epoch when epoch.kind = Fence && epoch.pending = [] ->
          (* A trailing fence leaves an empty epoch open; close it
             implicitly, as MPI_Win_free does after a final fence. *)
          rk.epochs <- List.remove_assoc win rk.epochs;
          dispatch s ~charge_to:rank (Event.Epoch_closed { win; rank; sim_time = rk.clock });
          rk.epoch_time <- rk.epoch_time +. (rk.clock -. epoch.opened_at)
      | Some _ ->
          raise
            (Mpi_error (Printf.sprintf "rank %d: win_free with an open epoch on window %d" rank win))
      | None -> ());
      no_double_gather ~what:"win_free" rank
        (List.exists (fun (r, _, _) -> r = rank) s.win_free_state.arrived);
      s.win_free_state.arrived <- (rank, Int64.of_int win, k) :: s.win_free_state.arrived;
      if List.length s.win_free_state.arrived = s.nprocs then begin
        let ids =
          List.sort_uniq Int64.compare (List.map (fun (_, v, _) -> v) s.win_free_state.arrived)
        in
        (match ids with
        | [ _ ] -> ()
        | _ -> raise (Mpi_error "win_free: ranks freeing different windows"));
        w.freed <- true;
        let gather = s.win_free_state in
        s.win_free_state <- fresh_gather ();
        List.iter
          (fun (r, _, _) ->
            dispatch s ~charge_to:r (Event.Win_freed { win; rank = r; sim_time = s.ranks.(r).clock }))
          gather.arrived;
        release_gather s gather
          ~cost:(Config.collective_cost cfg ~nprocs:s.nprocs ~bytes_count:8)
          ~value:(fun _ -> RUnit)
      end
  | R_lock_all { win; loc = _ } ->
      ignore (get_window s win);
      if find_epoch rk win <> None then
        raise (Mpi_error (Printf.sprintf "rank %d: nested lock_all on window %d" rank win));
      rk.clock <- rk.clock +. cfg.Config.alpha_sync;
      rk.epochs <- (win, { opened_at = rk.clock; kind = Lock_all; lock_count = 0; pending = [] }) :: rk.epochs;
      dispatch s ~charge_to:rank (Event.Epoch_opened { win; rank; sim_time = rk.clock });
      resume s rank k RUnit
  | R_unlock_all { win; loc = _ } ->
      ignore (get_window s win);
      let epoch = require_epoch rk win in
      apply_pending s rk epoch ~only_target:None;
      rk.clock <- rk.clock +. cfg.Config.alpha_sync;
      rk.epochs <- List.remove_assoc win rk.epochs;
      dispatch s ~charge_to:rank (Event.Epoch_closed { win; rank; sim_time = rk.clock });
      rk.epoch_time <- rk.epoch_time +. (rk.clock -. epoch.opened_at);
      resume s rank k RUnit
  | R_flush_all { win; loc = _ } ->
      ignore (get_window s win);
      let epoch = require_epoch rk win in
      apply_pending s rk epoch ~only_target:None;
      dispatch s ~charge_to:rank (Event.Flushed { win; rank; target = None; sim_time = rk.clock });
      resume s rank k RUnit
  | R_lock { win; target; exclusive; loc = _ } ->
      let w = get_window s win in
      if target < 0 || target >= s.nprocs then
        raise (Mpi_error (Printf.sprintf "rank %d: lock target %d out of range" rank target));
      if Hashtbl.mem w.lock_holders (target, rank) then
        raise (Mpi_error (Printf.sprintf "rank %d: already holds a lock on window %d target %d" rank win target));
      if lock_compatible w ~target ~exclusive then
        grant_lock s w win ~origin:rank ~target ~exclusive k
      else begin
        let q =
          match Hashtbl.find_opt w.lock_waiters target with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace w.lock_waiters target q;
              q
        in
        Queue.add { l_origin = rank; l_exclusive = exclusive; l_k = k } q
      end
  | R_unlock { win; target; loc = _ } ->
      let w = get_window s win in
      if not (Hashtbl.mem w.lock_holders (target, rank)) then
        raise
          (Mpi_error (Printf.sprintf "rank %d: unlock without a lock on window %d target %d" rank win target));
      let epoch = require_epoch rk win in
      (* Unlock completes the caller's operations towards the target. *)
      apply_pending s rk epoch ~only_target:(Some target);
      Hashtbl.remove w.lock_holders (target, rank);
      epoch.lock_count <- epoch.lock_count - 1;
      if epoch.lock_count <= 0 then begin
        apply_pending s rk epoch ~only_target:None;
        rk.clock <- rk.clock +. cfg.Config.alpha_sync;
        rk.epochs <- List.remove_assoc win rk.epochs;
        dispatch s ~charge_to:rank (Event.Epoch_closed { win; rank; sim_time = rk.clock });
        rk.epoch_time <- rk.epoch_time +. (rk.clock -. epoch.opened_at)
      end;
      release_waiters s w win ~target;
      resume s rank k RUnit
  | R_fence { win; loc = _ } ->
      ignore (get_window s win);
      let gather =
        match Hashtbl.find_opt s.fence_states win with
        | Some g -> g
        | None ->
            let g = fresh_gather () in
            Hashtbl.replace s.fence_states win g;
            g
      in
      no_double_gather ~what:"win_fence" rank
        (List.exists (fun (r, _, _) -> r = rank) gather.arrived);
      gather.arrived <- (rank, 0L, k) :: gather.arrived;
      if List.length gather.arrived = s.nprocs then begin
        Obs.incr obs_collectives;
        Hashtbl.remove s.fence_states win;
        (* MPI_Win_fence is collective: it completes every outstanding
           one-sided operation on the window and separates epochs. *)
        List.iter
          (fun (r, _, _) ->
            let rk = s.ranks.(r) in
            match find_epoch rk win with
            | Some epoch ->
                apply_pending s rk epoch ~only_target:None;
                rk.clock <- rk.clock +. cfg.Config.alpha_sync;
                rk.epochs <- List.remove_assoc win rk.epochs;
                dispatch s ~charge_to:r (Event.Epoch_closed { win; rank = r; sim_time = rk.clock });
                rk.epoch_time <- rk.epoch_time +. (rk.clock -. epoch.opened_at)
            | None -> ())
          gather.arrived;
        let latest =
          List.fold_left (fun acc (r, _, _) -> Float.max acc s.ranks.(r).clock) 0.0 gather.arrived
        in
        let cost = Config.collective_cost cfg ~nprocs:s.nprocs ~bytes_count:0 in
        List.iter
          (fun (r, _, _) ->
            dispatch s ~charge_to:r
              (Event.Collective { kind = Event.Fence; rank = r; sim_time = s.ranks.(r).clock }))
          gather.arrived;
        List.iter
          (fun (r, _, k) ->
            let rk = s.ranks.(r) in
            rk.clock <- latest +. cost;
            rk.epochs <- (win, { opened_at = rk.clock; kind = Fence; lock_count = 0; pending = [] }) :: rk.epochs;
            dispatch s ~charge_to:r (Event.Epoch_opened { win; rank = r; sim_time = rk.clock });
            resume s r k RUnit)
          gather.arrived
      end
  | R_flush { win; target; loc = _ } ->
      ignore (get_window s win);
      let epoch = require_epoch rk win in
      apply_pending s rk epoch ~only_target:(Some target);
      dispatch s ~charge_to:rank
        (Event.Flushed { win; rank; target = Some target; sim_time = rk.clock });
      resume s rank k RUnit
  | R_put { win; target; target_disp; origin_addr; len; loc } ->
      let w = get_window s win in
      let epoch = require_epoch rk win in
      if target < 0 || target >= s.nprocs then
        raise (Mpi_error (Printf.sprintf "rank %d: put target %d out of range" rank target));
      if target_disp < 0 || target_disp + len > w.win_size then
        raise
          (Mpi_error
             (Printf.sprintf "rank %d: put displacement [%d, %d) outside window of size %d" rank
                target_disp (target_disp + len) w.win_size));
      Obs.incr obs_rma_ops;
      rk.clock <- rk.clock +. cfg.Config.alpha_rma;
      let target_addr = w.bases.(target) + target_disp in
      (* Origin side: the Put reads the origin buffer (RMA_Read); target
         side: it writes the window (RMA_Write). Both recorded eagerly,
         as RMA-Analyzer's notification sends do. *)
      emit_access s ~space:rank ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr:origin_addr ~len)
        ~kind:Access_kind.Rma_read ~win:(Some win) ~loc;
      emit_access s ~space:target ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr:target_addr ~len)
        ~kind:Access_kind.Rma_write ~win:(Some win) ~loc;
      let origin_mem = rk.memory and target_mem = s.ranks.(target).memory in
      let apply () =
        Memory.write target_mem ~addr:target_addr ~data:(Memory.read origin_mem ~addr:origin_addr ~len)
      in
      let completion = rk.clock +. Config.message_cost cfg ~bytes_count:len in
      if Rma_util.Prng.bernoulli s.rng ~p:cfg.Config.apply_early_probability then apply ()
      else epoch.pending <- { apply; completion; target } :: epoch.pending;
      resume s rank k RUnit
  | R_get { win; target; target_disp; origin_addr; len; loc } ->
      let w = get_window s win in
      let epoch = require_epoch rk win in
      if target < 0 || target >= s.nprocs then
        raise (Mpi_error (Printf.sprintf "rank %d: get target %d out of range" rank target));
      if target_disp < 0 || target_disp + len > w.win_size then
        raise
          (Mpi_error
             (Printf.sprintf "rank %d: get displacement [%d, %d) outside window of size %d" rank
                target_disp (target_disp + len) w.win_size));
      Obs.incr obs_rma_ops;
      rk.clock <- rk.clock +. cfg.Config.alpha_rma;
      let target_addr = w.bases.(target) + target_disp in
      (* Origin side: the Get writes the origin buffer (RMA_Write);
         target side: it reads the window (RMA_Read). *)
      emit_access s ~space:rank ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr:origin_addr ~len)
        ~kind:Access_kind.Rma_write ~win:(Some win) ~loc;
      emit_access s ~space:target ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr:target_addr ~len)
        ~kind:Access_kind.Rma_read ~win:(Some win) ~loc;
      let origin_mem = rk.memory and target_mem = s.ranks.(target).memory in
      let apply () =
        Memory.write origin_mem ~addr:origin_addr ~data:(Memory.read target_mem ~addr:target_addr ~len)
      in
      let completion = rk.clock +. Config.message_cost cfg ~bytes_count:len in
      if Rma_util.Prng.bernoulli s.rng ~p:cfg.Config.apply_early_probability then apply ()
      else epoch.pending <- { apply; completion; target } :: epoch.pending;
      resume s rank k RUnit
  | R_accumulate { win; target; target_disp; origin_addr; len; op; loc } ->
      let w = get_window s win in
      let epoch = require_epoch rk win in
      if target < 0 || target >= s.nprocs then
        raise (Mpi_error (Printf.sprintf "rank %d: accumulate target %d out of range" rank target));
      if target_disp < 0 || target_disp + len > w.win_size then
        raise
          (Mpi_error
             (Printf.sprintf "rank %d: accumulate displacement [%d, %d) outside window of size %d"
                rank target_disp (target_disp + len) w.win_size));
      if len mod 8 <> 0 then
        raise (Mpi_error (Printf.sprintf "rank %d: accumulate length %d not a multiple of 8" rank len));
      Obs.incr obs_rma_ops;
      rk.clock <- rk.clock +. cfg.Config.alpha_rma;
      let target_addr = w.bases.(target) + target_disp in
      emit_access s ~space:rank ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr:origin_addr ~len)
        ~kind:Access_kind.Rma_read ~win:(Some win) ~loc;
      emit_access s ~space:target ~issuer:rank ~thread:tinfo
        ~interval:(Interval.of_range ~addr:target_addr ~len)
        ~kind:Access_kind.Rma_accumulate ~win:(Some win) ~loc;
      let origin_mem = rk.memory and target_mem = s.ranks.(target).memory in
      let apply () =
        (* Element-atomic read-modify-write over 8-byte datatypes — the
           §2.1 atomicity property holds by construction (one thunk). *)
        for e = 0 to (len / 8) - 1 do
          let contribution = Memory.read_int64 origin_mem ~addr:(origin_addr + (8 * e)) in
          let current = Memory.read_int64 target_mem ~addr:(target_addr + (8 * e)) in
          Memory.write_int64 target_mem ~addr:(target_addr + (8 * e))
            (reduce_combine ~as_float:false op current contribution)
        done
      in
      let completion = rk.clock +. Config.message_cost cfg ~bytes_count:len in
      if Rma_util.Prng.bernoulli s.rng ~p:cfg.Config.apply_early_probability then apply ()
      else epoch.pending <- { apply; completion; target } :: epoch.pending;
      resume s rank k RUnit
  | R_send { dst; tag; data } ->
      if dst < 0 || dst >= s.nprocs then
        raise (Mpi_error (Printf.sprintf "rank %d: send destination %d out of range" rank dst));
      Obs.incr obs_messages;
      rk.clock <- rk.clock +. cfg.Config.alpha_msg;
      Queue.add { src = rank; tag; data = Bytes.copy data; sent_at = rk.clock } s.ranks.(dst).mailbox;
      try_deliver s dst;
      resume s rank k RUnit
  | R_recv { src; tag } ->
      if rk.recv_waiter <> None then
        raise (Mpi_error (Printf.sprintf "rank %d: concurrent recv" rank));
      rk.recv_waiter <- Some (src, tag, k);
      try_deliver s rank
  | R_barrier ->
      no_double_gather ~what:"barrier" rank
        (List.exists (fun (r, _, _) -> r = rank) s.barrier_state.arrived);
      s.barrier_state.arrived <- (rank, 0L, k) :: s.barrier_state.arrived;
      if List.length s.barrier_state.arrived = s.nprocs then begin
        Obs.incr obs_collectives;
        let gather = s.barrier_state in
        s.barrier_state <- fresh_gather ();
        List.iter
          (fun (r, _, _) ->
            dispatch s ~charge_to:r
              (Event.Collective { kind = Event.Barrier; rank = r; sim_time = s.ranks.(r).clock }))
          gather.arrived;
        release_gather s gather
          ~cost:(Config.collective_cost cfg ~nprocs:s.nprocs ~bytes_count:0)
          ~value:(fun _ -> RUnit)
      end
  | R_allreduce { value; op; as_float } ->
      no_double_gather ~what:"allreduce" rank
        (List.exists (fun (r, _, _) -> r = rank) s.allreduce_state.arrived);
      s.allreduce_state.arrived <- (rank, value, k) :: s.allreduce_state.arrived;
      if List.length s.allreduce_state.arrived = s.nprocs then begin
        Obs.incr obs_collectives;
        let gather = s.allreduce_state in
        s.allreduce_state <- fresh_gather ();
        let combined =
          (* Combine in rank order so float sums are deterministic. *)
          let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) gather.arrived in
          match sorted with
          | [] -> assert false
          | (_, v0, _) :: rest ->
              List.fold_left (fun acc (_, v, _) -> reduce_combine ~as_float op acc v) v0 rest
        in
        List.iter
          (fun (r, _, _) ->
            dispatch s ~charge_to:r
              (Event.Collective { kind = Event.Allreduce; rank = r; sim_time = s.ranks.(r).clock }))
          gather.arrived;
        release_gather s gather
          ~cost:(Config.collective_cost cfg ~nprocs:s.nprocs ~bytes_count:8)
          ~value:(fun _ -> RI64 combined)
      end
  | R_thread_spawn { body } ->
      if rk.next_tid >= Vclock.threads_per_rank then
        raise
          (Mpi_error
             (Printf.sprintf "rank %d: thread limit %d reached" rank Vclock.threads_per_rank));
      let child_tid = rk.next_tid in
      rk.next_tid <- child_tid + 1;
      (* The child is born with the parent's clock plus its own birth
         tick; the parent ticks its own component so accesses after the
         spawn are unordered with the child's. *)
      let child =
        make_thread ~rank ~tid:child_tid
          (Vclock.tick th.tclock (Vclock.rt_key ~rank ~thread:child_tid))
      in
      th.tclock <- Vclock.tick th.tclock (Vclock.rt_key ~rank ~thread:tid);
      refresh_thread_caches ~rank th;
      Hashtbl.replace rk.threads child_tid child;
      rk.live_threads <- rk.live_threads + 1;
      s.threads_spawned <- s.threads_spawned + 1;
      spawn_fiber s rank child_tid body;
      resume s rank k (RInt child_tid)
  | R_thread_self -> resume s rank k (RInt tid)
  | R_thread_join { tid = target } ->
      if target = tid then
        raise (Mpi_error (Printf.sprintf "rank %d: thread %d joining itself" rank tid));
      let tgt = thread_of rk target in
      if tgt.t_done then begin
        absorb_into ~rank th tgt.tclock;
        resume s rank k RUnit
      end
      else tgt.joiners <- (tid, k) :: tgt.joiners
  | R_signal { sig_id } ->
      let slot = signal_slot_of rk sig_id in
      (* Publish the signaller's clock before its own post-signal tick:
         the waiter observes everything up to the signal, nothing
         after. *)
      slot.sig_clock <- Vclock.merge slot.sig_clock th.tclock;
      th.tclock <- Vclock.tick th.tclock (Vclock.rt_key ~rank ~thread:tid);
      refresh_thread_caches ~rank th;
      (match Queue.take_opt slot.sig_waiters with
      | Some (wtid, wk) ->
          absorb_into ~rank (thread_of rk wtid) slot.sig_clock;
          resume s rank wk RUnit
      | None -> slot.sig_count <- slot.sig_count + 1);
      resume s rank k RUnit
  | R_wait { sig_id } ->
      let slot = signal_slot_of rk sig_id in
      if slot.sig_count > 0 then begin
        slot.sig_count <- slot.sig_count - 1;
        absorb_into ~rank th slot.sig_clock;
        resume s rank k RUnit
      end
      else Queue.add (tid, k) slot.sig_waiters

(* ------------------------------------------------------------------ *)
(* The trampoline                                                       *)
(* ------------------------------------------------------------------ *)

let describe_blocked s =
  let blocked = ref [] in
  Array.iter
    (fun rk ->
      if not rk.done_ then begin
        let why =
          if rk.recv_waiter <> None then "waiting in recv"
          else if List.exists (fun (r, _, _) -> r = rk.rank) s.barrier_state.arrived then
            "waiting in barrier"
          else if List.exists (fun (r, _, _) -> r = rk.rank) s.allreduce_state.arrived then
            "waiting in allreduce"
          else if List.exists (fun (r, _, _, _) -> r = rk.rank) s.win_create_state then
            "waiting in win_create"
          else if List.exists (fun (r, _, _) -> r = rk.rank) s.win_free_state.arrived then
            "waiting in win_free"
          else if
            Hashtbl.fold
              (fun _ g acc -> acc || List.exists (fun (r, _, _) -> r = rk.rank) g.arrived)
              s.fence_states false
          then "waiting in win_fence"
          else if
            Hashtbl.fold
              (fun _ w acc ->
                acc
                || Hashtbl.fold
                     (fun _ q acc ->
                       acc
                       || Queue.fold (fun acc r -> acc || r.l_origin = rk.rank) false q)
                     w.lock_waiters acc)
              s.windows false
          then "waiting for a window lock"
          else begin
            let thread_why = ref None in
            Hashtbl.iter
              (fun _ th ->
                List.iter
                  (fun (jtid, _) ->
                    if !thread_why = None then
                      thread_why :=
                        Some
                          (Printf.sprintf "thread %d waiting to join thread %d" jtid th.tid))
                  th.joiners)
              rk.threads;
            Hashtbl.iter
              (fun sig_id slot ->
                Queue.iter
                  (fun (wtid, _) ->
                    if !thread_why = None then
                      thread_why :=
                        Some (Printf.sprintf "thread %d waiting on signal %d" wtid sig_id))
                  slot.sig_waiters)
              rk.signals;
            match !thread_why with Some w -> w | None -> "blocked"
          end
        in
        blocked := Printf.sprintf "rank %d: %s" rk.rank why :: !blocked
      end)
    s.ranks;
  String.concat "; " (List.rev !blocked)

let run ~nprocs ?(seed = 42) ?interleave_seed ?(config = Config.default)
    ?(observer = Event.null_observer) program =
  if nprocs <= 0 then invalid_arg "Runtime.run: nprocs must be positive";
  let rng = Rma_util.Prng.create ~seed in
  (* Without an explicit interleave seed the scheduling picks draw from
     the same stream as the data-level coin flips — physically the same
     PRNG — reproducing the exact pre-hybrid schedules byte for byte. *)
  let interleave =
    match interleave_seed with None -> rng | Some i -> Rma_util.Prng.create ~seed:i
  in
  let s =
    {
      nprocs;
      config;
      observer;
      rng;
      interleave;
      ranks =
        Array.init nprocs (fun rank ->
            {
              rank;
              memory = Memory.create ~size:config.Config.memory_size;
              clock = 0.0;
              epoch_time = 0.0;
              epochs = [];
              mailbox = Queue.create ();
              recv_waiter = None;
              done_ = false;
              threads =
                (let tbl = Hashtbl.create 4 in
                 Hashtbl.replace tbl 0
                   (make_thread ~rank ~tid:0
                      (Vclock.tick Vclock.empty (Vclock.rt_key ~rank ~thread:0)));
                 tbl);
              next_tid = 1;
              live_threads = 1;
              signals = Hashtbl.create 4;
            });
      windows = Hashtbl.create 8;
      next_win = 0;
      seq = 0;
      barrier_state = fresh_gather ();
      allreduce_state = fresh_gather ();
      win_create_state = [];
      win_free_state = fresh_gather ();
      fence_states = Hashtbl.create 4;
      runnable = Queue.create ();
      current = -1;
      pending_request = None;
      events_emitted = 0;
      accesses_emitted = 0;
      threads_spawned = 0;
      live = nprocs;
    }
  in
  Obs.begin_sim_run ();
  let wall0 = Rma_util.Timer.now () in
  for rank = 0 to nprocs - 1 do
    spawn_fiber s rank 0 program
  done;
  (* Trampoline: run one fiber step, then service the request it left
     behind (if any). Picking a random runnable thunk interleaves ranks
     non-deterministically but reproducibly. *)
  let scratch = ref [] in
  let pick_runnable () =
    (* Reservoir-free random pick: drain the queue into a scratch list at
       a random split point. Cheap because the queue stays small (at most
       one entry per rank). *)
    let n = Queue.length s.runnable in
    let idx = if n <= 1 then 0 else Rma_util.Prng.int s.interleave ~bound:n in
    scratch := [];
    for _ = 1 to idx do
      scratch := Queue.pop s.runnable :: !scratch
    done;
    let chosen = Queue.pop s.runnable in
    List.iter (fun t -> Queue.add t s.runnable) !scratch;
    chosen
  in
  while not (Queue.is_empty s.runnable) do
    let step = pick_runnable () in
    step ();
    match s.pending_request with
    | None -> ()
    | Some (rank, tid, req, k) -> (
        s.pending_request <- None;
        match handle_request s rank tid req k with
        | () -> ()
        | exception Mpi_error msg ->
            (* Deliver interface misuse into the offending rank so its
               program (or the caller) sees a meaningful backtrace. *)
            resume_error s rank k msg)
  done;
  if s.live > 0 then raise (Deadlock (describe_blocked s));
  let clocks = Array.map (fun rk -> rk.clock) s.ranks in
  let wall1 = Rma_util.Timer.now () in
  if Obs.is_enabled () then begin
    (* One wall-clock span for the whole run, and one simulated-time span
       per rank so the trace shows simulated vs wall durations side by
       side. Epoch spans (from the analyzer) nest inside the rank spans. *)
    Obs.emit_span ~cat:"run" ~pid:Obs.wall_pid ~tid:0
      ~t0:(Obs.rel_time wall0) ~t1:(Obs.rel_time wall1)
      ~args:
        [
          ("nprocs", string_of_int nprocs);
          ("events", string_of_int s.events_emitted);
          ("accesses", string_of_int s.accesses_emitted);
        ]
      "Runtime.run";
    Array.iter
      (fun rk ->
        Obs.emit_span ~cat:"rank" ~pid:(Obs.sim_pid ()) ~tid:rk.rank ~t0:0.0 ~t1:rk.clock
          ~args:
            [
              ("sim_seconds", Printf.sprintf "%.9f" rk.clock);
              ("epoch_seconds", Printf.sprintf "%.9f" rk.epoch_time);
              ("wall_seconds_whole_run", Printf.sprintf "%.9f" (wall1 -. wall0));
            ]
          (Printf.sprintf "rank %d (simulated)" rk.rank))
      s.ranks
  end;
  {
    clocks;
    epoch_times = Array.map (fun rk -> rk.epoch_time) s.ranks;
    makespan = Array.fold_left Float.max 0.0 clocks;
    wall_seconds = wall1 -. wall0;
    events_emitted = s.events_emitted;
    accesses_emitted = s.accesses_emitted;
    threads_spawned = s.threads_spawned;
  }
