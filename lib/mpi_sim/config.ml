type t = {
  alpha_msg : float;
  beta_byte : float;
  alpha_rma : float;
  alpha_sync : float;
  apply_early_probability : float;
  analysis_overhead_scale : float;
  analysis_self_timed : bool;
  memory_size : int;
}

let default =
  {
    alpha_msg = 1.5e-6;
    beta_byte = 4.0e-11;
    alpha_rma = 0.8e-6;
    alpha_sync = 2.0e-6;
    apply_early_probability = 0.5;
    analysis_overhead_scale = 1.0;
    analysis_self_timed = false;
    memory_size = 1 lsl 20;
  }

let quiet_network =
  {
    default with
    alpha_msg = 0.0;
    beta_byte = 0.0;
    alpha_rma = 0.0;
    alpha_sync = 0.0;
    analysis_overhead_scale = 0.0;
  }

let message_cost t ~bytes_count = t.alpha_msg +. (t.beta_byte *. float_of_int bytes_count)

let collective_cost t ~nprocs ~bytes_count =
  let steps = int_of_float (Float.ceil (Float.log2 (float_of_int (max 2 nprocs)))) in
  float_of_int steps *. message_cost t ~bytes_count
