open Rma_access

(** MPI-flavoured interface for rank programs.

    Every function here may only be called from inside a program passed
    to {!Runtime.run}; each call performs the runtime's effect and is
    serviced by the scheduler. Names and shapes follow the MPI calls
    they stand in for ([comm_rank], [win_lock_all], [put], ...).

    Functions touching memory take a [?loc] debug location; pass
    [loc ~file ~line "MPI_Put"]-style values so detector reports point
    at your source, exactly like the compiler instrumentation does for
    the real tool. *)

type win = Event.win_id

val loc : file:string -> line:int -> string -> Debug_info.t
(** Convenience constructor for debug locations. *)

val comm_rank : unit -> int
val comm_size : unit -> int

val wtime : unit -> float
(** Simulated seconds on the calling rank's clock. *)

val compute : float -> unit
(** Advance the simulated clock by [seconds] of application work. *)

val alloc : ?label:string -> ?storage:Memory.storage -> ?exposed:bool -> int -> int
(** Reserve memory in the calling rank's address space; returns the base
    address. [~exposed:true] marks the allocation as possibly-RMA (what
    the static alias analysis would report); [~storage:Stack] makes it
    invisible to the TSan-style backend. *)

val load : ?loc:Debug_info.t -> addr:int -> len:int -> unit -> Bytes.t
(** Instrumented local read. *)

val store : ?loc:Debug_info.t -> addr:int -> Bytes.t -> unit
(** Instrumented local write. *)

val load_i64 : ?loc:Debug_info.t -> addr:int -> unit -> int64
val store_i64 : ?loc:Debug_info.t -> addr:int -> int64 -> unit
(** 8-byte convenience accessors over [load]/[store]. *)

val win_create : base:int -> size:int -> win
(** Collective. Every rank contributes a [size]-byte region of its own
    memory starting at [base]; sizes must agree. *)

val win_free : win -> unit
(** Collective; epochs must be closed. *)

val win_lock_all : ?loc:Debug_info.t -> win -> unit
(** Open a passive-target epoch on every rank's window region. *)

val win_unlock_all : ?loc:Debug_info.t -> win -> unit
(** Close the epoch: completes (and applies) all of the calling rank's
    outstanding one-sided operations on this window. *)

val win_flush_all : ?loc:Debug_info.t -> win -> unit
(** Complete the calling rank's outstanding operations without closing
    the epoch. Per §6 of the paper this orders only the {e caller}'s
    operations — detectors must not treat it as a global
    synchronisation. *)

val win_flush : ?loc:Debug_info.t -> win -> rank:int -> unit
(** Complete the calling rank's outstanding operations towards one
    target. *)

val win_lock : ?loc:Debug_info.t -> ?exclusive:bool -> win -> rank:int -> unit
(** Per-target passive lock (MPI_Win_lock). [~exclusive:true] is
    MPI_LOCK_EXCLUSIVE (default shared): the call blocks while an
    incompatible lock on that target is held by another origin. Opens a
    per-target access epoch at the caller on first lock. *)

val win_unlock : ?loc:Debug_info.t -> win -> rank:int -> unit
(** Completes the caller's operations towards [rank], releases the lock
    and closes the per-target epoch when no other lock of this caller
    remains on the window. *)

val win_fence : ?loc:Debug_info.t -> win -> unit
(** Active-target synchronisation: collective over all ranks, completes
    every outstanding one-sided operation on the window and separates
    epochs (detectors see an epoch close + open on every rank). The
    first fence opens the first epoch; a trailing empty fence epoch is
    closed implicitly by [win_free]. *)

val put :
  ?loc:Debug_info.t -> win -> target:int -> target_disp:int -> origin_addr:int -> len:int -> unit
(** One-sided write of [len] bytes from the origin buffer into the
    target's window. Completion is deferred: the data lands at an
    unspecified point before the next flush/unlock. *)

val get :
  ?loc:Debug_info.t -> win -> target:int -> target_disp:int -> origin_addr:int -> len:int -> unit
(** One-sided read from the target's window into the origin buffer. *)

val accumulate :
  ?loc:Debug_info.t ->
  win ->
  target:int ->
  target_disp:int ->
  origin_addr:int ->
  len:int ->
  op:Runtime.reduce_op ->
  unit
(** One-sided element-atomic reduction of 8-byte integer elements into
    the target window (MPI_Accumulate with the same-op assumption).
    Unlike Put, concurrent accumulates to the same location do not race
    (the §2.1 atomicity property) — and the detectors know it. *)

val send : dst:int -> tag:int -> Bytes.t -> unit
(** Two-sided eager send. *)

val recv : ?src:int -> ?tag:int -> unit -> Runtime.message
(** Blocking receive; [?src]/[?tag] [None] act as wildcards. *)

val recv_data : ?src:int -> ?tag:int -> unit -> Bytes.t

val barrier : unit -> unit
(** Synchronises all ranks. Per the MPI standard (and §6 of the paper)
    it does NOT complete outstanding one-sided operations. *)

val allreduce_i64 : int64 -> op:Runtime.reduce_op -> int64
val allreduce_int : int -> op:Runtime.reduce_op -> int
val allreduce_float : float -> op:Runtime.reduce_op -> float
(** Float allreduce via bit-carrying of binary64 (exact for Max/Min on
    non-negative values; Sum combines with float addition). *)

(** {1 Intra-rank threads (hybrid MPI+threads)}

    A rank program may spawn cooperative threads that share the rank's
    address space, windows and MPI state (MPI_THREAD_MULTIPLE-style;
    collectives may still be entered by only one thread of a rank at a
    time). Thread clocks advance only at the synchronisation points
    below; accesses carry their issuing thread's identity so the
    detectors can distinguish program-ordered from merely same-rank
    access pairs. *)

val thread_spawn : (unit -> unit) -> int
(** Start a new thread of the calling rank running [body]; returns its
    thread id. The spawn is a synchronisation edge: the child observes
    everything the parent did before the call (but not vice versa). *)

val thread_join : int -> unit
(** Block until the thread with the given id finishes; a synchronisation
    edge from the child's last action to the caller's next. *)

val thread_self : unit -> int
(** The calling thread's id within its rank; 0 for the main thread. *)

val signal : int -> unit
(** Post one count on the given intra-rank signal slot (a counting
    semaphore), releasing one waiter if any is blocked. The released (or
    future) waiter observes everything every signaller did before
    signalling. *)

val wait : int -> unit
(** Consume one count from the signal slot, blocking until one is
    available. *)
