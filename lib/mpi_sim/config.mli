(** Cost model of the simulated machine.

    Simulated time is tracked per rank in seconds. Communication follows
    a LogP-flavoured alpha/beta model: a message of [n] bytes costs
    [alpha + beta * n] end to end. Collectives pay a logarithmic tree.
    The defaults loosely mimic an InfiniBand HDR cluster (the paper's
    testbed): ~1.5 us latency, ~25 GB/s links.

    [analysis_overhead_scale] converts the detector's {e measured}
    wall-clock seconds into simulated seconds: the detectors do their
    real data-structure work inside this process, and that measured cost
    is injected into the simulated clock of the rank that triggered it.
    1.0 means one real second of analysis = one simulated second. *)

type t = {
  alpha_msg : float;  (** Per-message latency (s). *)
  beta_byte : float;  (** Per-byte transfer cost (s/byte). *)
  alpha_rma : float;  (** Origin-side issue overhead of Put/Get (s). *)
  alpha_sync : float;  (** Epoch open/close bookkeeping cost (s). *)
  apply_early_probability : float;
      (** Probability that a Put/Get's data movement is applied at issue
          time rather than at epoch completion — the source of observable
          nondeterminism for racy programs. *)
  analysis_overhead_scale : float;
  analysis_self_timed : bool;
      (** When false (the default), the runtime measures each observer
          call's wall time and charges [wall * analysis_overhead_scale]
          to the triggering rank. When true the runtime charges only the
          observer's returned protocol cost, and the observer is
          responsible for folding its own modelled analysis seconds into
          that return value — the contract the sharded parallel analyzer
          uses: on a single simulator process the inline wall clock
          would bill one rank for work that conceptually ran
          concurrently on [jobs] domains, so the analyzer instead
          reports the critical-path maximum over shards at each epoch
          barrier (see {!Rma_par.take_work_seconds}). *)
  memory_size : int;  (** Initial per-rank address-space size in bytes. *)
}

val default : t

val quiet_network : t
(** Zero communication costs; useful in unit tests asserting pure
    ordering behaviour. *)

val message_cost : t -> bytes_count:int -> float
(** [alpha_msg + beta_byte * bytes]. *)

val collective_cost : t -> nprocs:int -> bytes_count:int -> float
(** Tree collective: [ceil(log2 P)] message steps. *)
