(** Deterministic fault injection and resource governance.

    Long-running HPC jobs hand the analyzer hostile conditions — bounded
    memory, truncated or corrupted traces, failing workers — and a race
    detector's verdicts are only trustworthy when its behaviour under
    those conditions is explicit. This module is the single point of
    truth for both halves of that story:

    - {e Injection} ({!Plan}, {!fire}): a seeded plan of failure
      probabilities for a fixed set of {!type:site}s. Instrumented code
      asks {!fire} at each opportunity; the answer is a deterministic
      function of the plan seed, the site, and the per-site ordinal of
      the ask, so a given plan replays the identical fault schedule on
      every run regardless of timing (see DESIGN.md §11).
    - {e Governance} ({!Budget}): a node/byte budget with an explicit
      degradation policy that the access stores enforce (see
      {!Rma_store.Governor}), so memory pressure produces either a clean
      failure or a {e reported} degradation — never a silent one.

    Both are process-global opt-ins in the style of
    {!Rma_obs.Obs.enable}: nothing fires until {!install} is called (or
    the [RMA_FAULT] environment variable supplies a plan at startup),
    and uninstrumented runs pay one option match per site visit.

    {b Thread safety}: {!install}, {!clear} and {!fire} must be called
    from the main (caller) thread only. Worker domains never draw from
    the plan — the parallel engine decides worker-crash and
    queue-overflow faults on the submitting thread, which is what makes
    the schedule deterministic under any interleaving. *)

(** {1 Injection sites} *)

(** Where a fault can be injected.

    - [Trace_corrupt] — flip one bit of an encoded trace line as
      {!Rma_trace.Codec.write_all} emits it.
    - [Trace_truncate] — stop a trace write mid-stream (possibly
      mid-line), losing the footer.
    - [Worker_crash] — kill a {!Rma_par} shard at a task boundary; the
      engine journals and replays its queued work (DESIGN.md §11).
    - [Queue_overflow] — overflow a shard's submit queue, forcing the
      engine to degrade that task to inline execution. *)
type site = Trace_corrupt | Trace_truncate | Worker_crash | Queue_overflow

val site_name : site -> string
(** Stable lowercase name, as used in {!Plan} specs and Obs counters
    ([fault.injected.<site>]). *)

val all_sites : site list

(** {1 Fault plans} *)

module Plan : sig
  (** A seeded schedule of failure probabilities.

      The per-site rates are probabilities in [\[0, 1\]] applied
      independently at each visit of the site. [max_retries] and
      [backoff] parameterise {!Rma_par} shard recovery: a crashed shard
      is restarted and its journal replayed up to [max_retries] times
      (sleeping [backoff] seconds between attempts) before the engine
      degrades the remaining work to sequential inline execution. *)
  type t = {
    seed : int;  (** Root of every random draw; same seed = same faults. *)
    trace_corrupt : float;  (** Bit-flip probability per encoded trace line. *)
    trace_truncate : float;  (** Truncation probability per encoded trace line. *)
    worker_crash : float;  (** Crash probability per submitted shard task. *)
    queue_overflow : float;  (** Overflow probability per submitted shard task. *)
    max_retries : int;  (** Shard restarts before sequential fallback. Default 3. *)
    backoff : float;  (** Seconds between shard restart attempts. Default 0. *)
  }

  val default : t
  (** Seed 1, every rate [0.0], [max_retries = 3], [backoff = 0.0] — an
      installed default plan injects nothing. *)

  val rate : t -> site -> float

  val of_spec : string -> (t, string) result
  (** Parse a comma-separated [key=value] spec over {!default}, e.g.
      ["seed=42,worker_crash=0.05,trace_truncate=0.1"]. Keys are the
      field names above; unknown keys, malformed numbers and rates
      outside [\[0, 1\]] yield [Error]. The empty string is
      {!default}. *)

  val to_spec : t -> string
  (** Inverse of {!of_spec} (canonical field order, default fields
      included). *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Installing and firing} *)

val install : Plan.t -> unit
(** Make [plan] the process-global active plan and zero every per-site
    ordinal counter, so the fault schedule restarts from the beginning.
    Replaces any previously installed plan. *)

val clear : unit -> unit
(** Remove the active plan; {!fire} returns [false] everywhere. *)

val active : unit -> bool

val plan : unit -> Plan.t option

val fire : site -> bool
(** [fire site] asks whether the fault fires at this visit of [site].

    Deterministic: the k-th call for a given site under a given plan
    always returns the same answer (each call consumes one per-site
    ordinal and seeds a fresh {!Rma_util.Prng} from
    [(plan.seed, site, ordinal)]), independent of calls to other sites
    and of wall-clock interleaving. Always [false] when no plan is
    installed or the site's rate is [0]. Fired faults are counted on the
    [fault.injected.<site>] Obs counters. Main thread only. *)

val fired : site -> int
(** How many times {!fire} has returned [true] for [site] since the
    current plan was installed (0 when no plan is active). *)

val ordinal : site -> int
(** How many times {!fire} has been {e asked} for [site] under the
    current plan — i.e. the ordinal of the next ask. The visit that just
    fired has ordinal [ordinal site - 1]; the event journal records it
    so a fault occurrence can be replayed from [(seed, site, ordinal)]
    alone. 0 when no plan is active. *)

(** {1 Saving and restoring the installed state}

    A long-running process multiplexing several analyses (the [serve]
    daemon) gives each session its own plan while sharing the one
    process-global slot. {!snapshot} captures the full installed state —
    plan {e and} per-site ordinals/hit counts — and {!restore} puts it
    back, so interleaving session A's visits between two slices of
    session B leaves B's fault schedule exactly where it stopped. Both
    copy the mutable counters, so a snapshot is immutable: restoring it
    twice replays the same schedule twice. Main thread only. *)

type snapshot

val snapshot : unit -> snapshot
(** Capture the active plan and its counters ({!install}ed or not). *)

val restore : snapshot -> unit
(** Reinstate a captured state, replacing whatever is installed. Unlike
    {!install} this does {e not} zero the ordinals — the schedule
    resumes from where the snapshot was taken. *)

(** {1 Resource budgets} *)

module Budget : sig
  (** A memory budget for an access store, with the policy applied when
      the store grows past it. Enforcement lives in the stores (via
      {!Rma_store.Governor}); this module only names the contract. See
      DESIGN.md §11 for the exact degradation semantics. *)

  (** What a store does on the insert that finds it over budget:
      - [Fail_fast] — raise {!Exhausted}; the analysis stops cleanly.
      - [Spill_oldest_epoch] — evict recorded accesses oldest-first,
        preferring accesses from already-completed epochs; every evicted
        node counts in the store's [degraded_drops] statistic
        ({!Rma_store.Store_intf.stats}). May miss races whose older
        side was evicted — the non-zero drop count is the explicit
        record of that risk.
      - [Coarsen] — merge adjacent same-kind, same-issuer accesses
        {e ignoring debug-info inequality}, trading report provenance
        for memory; coarsened merges also count in [degraded_drops],
        and reports from a coarsened store carry downgraded confidence
        in SARIF output. Falls back to spilling when coarsening alone
        cannot fit the budget. *)
  type policy = Fail_fast | Spill_oldest_epoch | Coarsen

  type t = {
    max_nodes : int option;  (** Cap on store nodes; [None] = unbounded. *)
    max_bytes : int option;
        (** Cap on {e approximate} store memory; each store converts
            this to a node cap via its per-node byte estimate. *)
    policy : policy;
  }

  exception Exhausted of string
  (** Raised by a [Fail_fast] store on the insert exceeding the budget. *)

  val unbounded : t
  (** No caps ([Fail_fast] policy, vacuously). *)

  val is_unbounded : t -> bool

  val policy_name : policy -> string
  (** ["fail_fast"], ["spill_oldest_epoch"], ["coarsen"]. *)

  val of_spec : string -> (t, string) result
  (** Parse ["nodes=4096,policy=spill"] / ["bytes=1048576,policy=coarsen"]
      style specs, or the shorthand ["4096:spill"] (node cap + policy).
      Policies accept short aliases [fail], [spill], [coarsen]. Caps
      must be positive. *)

  val to_spec : t -> string

  val set_default : t option -> unit
  (** Process-wide default budget picked up by stores created without an
      explicit [?budget] (the CLI's [--budget]); initialised from the
      [RMA_BUDGET] environment variable when present. *)

  val default : unit -> t option

  val pp : Format.formatter -> t -> unit
end
