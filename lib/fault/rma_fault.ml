module Obs = Rma_obs.Obs
module Prng = Rma_util.Prng

type site = Trace_corrupt | Trace_truncate | Worker_crash | Queue_overflow

let site_name = function
  | Trace_corrupt -> "trace_corrupt"
  | Trace_truncate -> "trace_truncate"
  | Worker_crash -> "worker_crash"
  | Queue_overflow -> "queue_overflow"

let site_index = function
  | Trace_corrupt -> 0
  | Trace_truncate -> 1
  | Worker_crash -> 2
  | Queue_overflow -> 3

let all_sites = [ Trace_corrupt; Trace_truncate; Worker_crash; Queue_overflow ]
let n_sites = List.length all_sites

module Plan = struct
  type t = {
    seed : int;
    trace_corrupt : float;
    trace_truncate : float;
    worker_crash : float;
    queue_overflow : float;
    max_retries : int;
    backoff : float;
  }

  let default =
    {
      seed = 1;
      trace_corrupt = 0.0;
      trace_truncate = 0.0;
      worker_crash = 0.0;
      queue_overflow = 0.0;
      max_retries = 3;
      backoff = 0.0;
    }

  let rate t = function
    | Trace_corrupt -> t.trace_corrupt
    | Trace_truncate -> t.trace_truncate
    | Worker_crash -> t.worker_crash
    | Queue_overflow -> t.queue_overflow

  let parse_rate key v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | Some _ -> Error (Printf.sprintf "%s: rate %s outside [0, 1]" key v)
    | None -> Error (Printf.sprintf "%s: malformed rate %S" key v)

  let of_spec spec =
    let fields =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let parse_field acc field =
      match acc with
      | Error _ as e -> e
      | Ok t -> (
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "expected key=value, got %S" field)
          | Some i -> (
              let key = String.sub field 0 i in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              match key with
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some s -> Ok { t with seed = s }
                  | None -> Error (Printf.sprintf "seed: malformed integer %S" v))
              | "trace_corrupt" ->
                  Result.map (fun r -> { t with trace_corrupt = r }) (parse_rate key v)
              | "trace_truncate" ->
                  Result.map (fun r -> { t with trace_truncate = r }) (parse_rate key v)
              | "worker_crash" ->
                  Result.map (fun r -> { t with worker_crash = r }) (parse_rate key v)
              | "queue_overflow" ->
                  Result.map (fun r -> { t with queue_overflow = r }) (parse_rate key v)
              | "max_retries" -> (
                  match int_of_string_opt v with
                  | Some r when r >= 0 -> Ok { t with max_retries = r }
                  | _ -> Error (Printf.sprintf "max_retries: expected non-negative integer, got %S" v))
              | "backoff" -> (
                  match float_of_string_opt v with
                  | Some b when b >= 0.0 -> Ok { t with backoff = b }
                  | _ -> Error (Printf.sprintf "backoff: expected non-negative seconds, got %S" v))
              | _ -> Error (Printf.sprintf "unknown fault-plan key %S" key)))
    in
    List.fold_left parse_field (Ok default) fields

  let to_spec t =
    Printf.sprintf
      "seed=%d,trace_corrupt=%g,trace_truncate=%g,worker_crash=%g,queue_overflow=%g,max_retries=%d,backoff=%g"
      t.seed t.trace_corrupt t.trace_truncate t.worker_crash t.queue_overflow t.max_retries
      t.backoff

  let pp fmt t = Format.pp_print_string fmt (to_spec t)
end

(* Active plan plus, per site, the ordinal of the next [fire] call and
   the count of fired faults. Ordinals make the schedule a pure function
   of (seed, site, visit number): the k-th visit of a site draws the
   same verdict whatever happened at other sites in between. *)
type installed = { p : Plan.t; ordinals : int array; hits : int array }

let state : installed option ref = ref None

let install p = state := Some { p; ordinals = Array.make n_sites 0; hits = Array.make n_sites 0 }
let clear () = state := None
let active () = !state <> None
let plan () = match !state with None -> None | Some i -> Some i.p

let obs_injected =
  Array.of_list
    (List.map
       (fun s ->
         Obs.counter
           ~help:(Printf.sprintf "Faults injected at the %s site" (site_name s))
           (Printf.sprintf "fault.injected.%s" (site_name s)))
       all_sites)

(* Avalanche the (seed, site, ordinal) triple into one PRNG seed; the
   constants are the usual 32-bit hash multipliers, mixed in 63-bit
   native ints (wrap-around is fine — we only need dispersion). *)
let mix seed site ord =
  let h = (seed * 0x9E3779B1) + ((site + 1) * 0x85EBCA77) + ((ord + 1) * 0xC2B2AE3D) in
  h lxor (h lsr 29)

let fire site =
  match !state with
  | None -> false
  | Some inst ->
      let i = site_index site in
      let ord = inst.ordinals.(i) in
      inst.ordinals.(i) <- ord + 1;
      let rate = Plan.rate inst.p site in
      rate > 0.0
      &&
      let g = Prng.create ~seed:(mix inst.p.Plan.seed i ord) in
      let hit = Prng.bernoulli g ~p:rate in
      if hit then begin
        inst.hits.(i) <- inst.hits.(i) + 1;
        Obs.incr obs_injected.(i)
      end;
      hit

let fired site = match !state with None -> 0 | Some inst -> inst.hits.(site_index site)
let ordinal site = match !state with None -> 0 | Some inst -> inst.ordinals.(site_index site)

type snapshot = installed option

let snapshot () =
  match !state with
  | None -> None
  | Some i -> Some { i with ordinals = Array.copy i.ordinals; hits = Array.copy i.hits }

let restore = function
  | None -> state := None
  | Some i ->
      state := Some { i with ordinals = Array.copy i.ordinals; hits = Array.copy i.hits }

module Budget = struct
  type policy = Fail_fast | Spill_oldest_epoch | Coarsen
  type t = { max_nodes : int option; max_bytes : int option; policy : policy }

  exception Exhausted of string

  let unbounded = { max_nodes = None; max_bytes = None; policy = Fail_fast }
  let is_unbounded t = t.max_nodes = None && t.max_bytes = None

  let policy_name = function
    | Fail_fast -> "fail_fast"
    | Spill_oldest_epoch -> "spill_oldest_epoch"
    | Coarsen -> "coarsen"

  let policy_of_string = function
    | "fail" | "fail_fast" -> Ok Fail_fast
    | "spill" | "spill_oldest_epoch" -> Ok Spill_oldest_epoch
    | "coarsen" -> Ok Coarsen
    | s -> Error (Printf.sprintf "unknown budget policy %S (fail|spill|coarsen)" s)

  let parse_cap key v =
    match int_of_string_opt v with
    | Some n when n > 0 -> Ok n
    | _ -> Error (Printf.sprintf "%s: expected positive integer, got %S" key v)

  let of_spec spec =
    let spec = String.trim spec in
    (* Shorthand: "<nodes>:<policy>". *)
    match String.index_opt spec ':' with
    | Some i when not (String.contains spec '=') ->
        let n = String.sub spec 0 i in
        let pol = String.sub spec (i + 1) (String.length spec - i - 1) in
        Result.bind (parse_cap "nodes" n) (fun cap ->
            Result.map
              (fun policy -> { unbounded with max_nodes = Some cap; policy })
              (policy_of_string pol))
    | _ ->
        let fields =
          String.split_on_char ',' spec
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        let parse_field acc field =
          match acc with
          | Error _ as e -> e
          | Ok t -> (
              match String.index_opt field '=' with
              | None -> Error (Printf.sprintf "expected key=value, got %S" field)
              | Some i -> (
                  let key = String.sub field 0 i in
                  let v = String.sub field (i + 1) (String.length field - i - 1) in
                  match key with
                  | "nodes" ->
                      Result.map (fun n -> { t with max_nodes = Some n }) (parse_cap key v)
                  | "bytes" ->
                      Result.map (fun n -> { t with max_bytes = Some n }) (parse_cap key v)
                  | "policy" -> Result.map (fun policy -> { t with policy }) (policy_of_string v)
                  | _ -> Error (Printf.sprintf "unknown budget key %S" key)))
        in
        List.fold_left parse_field (Ok unbounded) fields

  let to_spec t =
    let caps =
      (match t.max_nodes with Some n -> [ Printf.sprintf "nodes=%d" n ] | None -> [])
      @ match t.max_bytes with Some n -> [ Printf.sprintf "bytes=%d" n ] | None -> []
    in
    String.concat "," (caps @ [ "policy=" ^ policy_name t.policy ])

  let pp fmt t = Format.pp_print_string fmt (to_spec t)

  let default_budget : t option ref = ref None
  let set_default b = default_budget := b
  let default () = !default_budget
end

(* Environment opt-ins, matching the RMA_JOBS / RMA_BATCH_INSERTS
   pattern: a malformed spec warns and is ignored rather than failing
   module initialisation. *)
let () =
  (match Sys.getenv_opt "RMA_FAULT" with
  | None -> ()
  | Some spec -> (
      match Plan.of_spec spec with
      | Ok p -> install p
      | Error e -> Printf.eprintf "RMA_FAULT ignored: %s\n%!" e));
  match Sys.getenv_opt "RMA_BUDGET" with
  | None -> ()
  | Some spec -> (
      match Budget.of_spec spec with
      | Ok b -> Budget.set_default (Some b)
      | Error e -> Printf.eprintf "RMA_BUDGET ignored: %s\n%!" e)
