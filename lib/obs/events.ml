module Json = Rma_util.Json
module Timer = Rma_util.Timer

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type t = {
  ts : float;
  level : level;
  component : string;
  run_id : string;
  shard : int;
  span_id : int;
  kv : (string * string) list;
}

(* One mutex serialises everything below: worker domains emit
   concurrently (crash/recovery events come from inside Rma_par worker
   loops) and the telemetry server reads the ring from its own domain. *)
let mu = Mutex.create ()

let min_level = ref Info
let sink : out_channel option ref = ref None
let sink_path = ref ""
let ring_cap = ref 4096
let ring : t option array ref = ref (Array.make 4096 None)
let ring_len = ref 0
let ring_next = ref 0
let run_id_ref = ref ""
let emitted = Atomic.make 0

(* Shard identity is domain-local: worker domains stamp it once per
   spawn (Rma_par), so Governor degradation fired from inside a worker
   lands on the right shard without threading ids through the stores. *)
let shard_key = Domain.DLS.new_key (fun () -> -1)
let set_current_shard s = Domain.DLS.set shard_key s
let current_shard () = Domain.DLS.get shard_key

let set_level l = min_level := l
let level () = !min_level

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let set_run_id id = locked (fun () -> run_id_ref := id)

let with_run_id id f =
  let saved = locked (fun () -> !run_id_ref) in
  locked (fun () -> run_id_ref := id);
  Fun.protect ~finally:(fun () -> locked (fun () -> run_id_ref := saved)) f

let run_id_locked () =
  if !run_id_ref = "" then
    run_id_ref :=
      Printf.sprintf "run-%d-%04x" (Unix.getpid ())
        (int_of_float (Unix.gettimeofday () *. 1000.0) land 0xffff);
  !run_id_ref

let run_id () = locked run_id_locked

let close_sink_locked () =
  (match !sink with Some oc -> close_out_noerr oc | None -> ());
  sink := None;
  sink_path := ""

let close () = locked close_sink_locked

let set_sink path =
  locked (fun () ->
      close_sink_locked ();
      sink := Some (open_out path);
      sink_path := path)

let sink_file () = locked (fun () -> if !sink = None then None else Some !sink_path)

let set_ring_cap n =
  let n = max 1 n in
  locked (fun () ->
      ring_cap := n;
      ring := Array.make n None;
      ring_len := 0;
      ring_next := 0)

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      ring_len := 0;
      ring_next := 0;
      Atomic.set emitted 0)

let emitted_total () = Atomic.get emitted

(* Field order is part of the journal contract (golden tests diff raw
   lines): ts, level, component, run_id, shard, span_id, kv. *)
let to_json ev =
  Json.Obj
    [
      ("ts", Json.Float ev.ts);
      ("level", Json.String (level_to_string ev.level));
      ("component", Json.String ev.component);
      ("run_id", Json.String ev.run_id);
      ("shard", Json.Int ev.shard);
      ("span_id", Json.Int ev.span_id);
      ("kv", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ev.kv));
    ]

let line ev = Json.to_string ~minify:true (to_json ev)

let push_ring_locked ev =
  let a = !ring in
  a.(!ring_next) <- Some ev;
  ring_next := (!ring_next + 1) mod Array.length a;
  if !ring_len < Array.length a then ring_len := !ring_len + 1

let emit ?shard ?(span_id = 0) ?(kv = []) lvl component =
  if Obs.is_enabled () && severity lvl >= severity !min_level then begin
    let ts = Obs.rel_time (Timer.now ()) in
    let shard = match shard with Some s -> s | None -> current_shard () in
    Atomic.incr emitted;
    locked (fun () ->
        let ev = { ts; level = lvl; component; run_id = run_id_locked (); shard; span_id; kv } in
        match !sink with
        | Some oc ->
            output_string oc (line ev);
            output_char oc '\n';
            flush oc
        | None -> push_ring_locked ev)
  end

let recent () =
  locked (fun () ->
      let a = !ring and n = !ring_len in
      let start = (!ring_next - n + Array.length a) mod Array.length a in
      List.init n (fun i ->
          match a.((start + i) mod Array.length a) with
          | Some ev -> ev
          | None -> assert false))

let configure_from_env () =
  (match Sys.getenv_opt "RMA_OBS_EVENTS" with
  | Some path when path <> "" ->
      Obs.enable ();
      set_sink path
  | _ -> ());
  match Option.bind (Sys.getenv_opt "RMA_OBS_LEVEL") level_of_string with
  | Some l -> set_level l
  | None -> ()
