module Timer = Rma_util.Timer

(* Event throughput is counted with one plain [int ref] per domain
   (registered in [cells] on first use) instead of a shared Atomic: the
   stores call {!note_events} on every insert from up to eight worker
   domains, and a contended fetch-and-add there would serialise exactly
   the hot path the bench measures. Per-domain stores are unsynchronised
   on purpose — readers aggregate slightly stale values, never torn
   ones. *)
let cells_mu = Mutex.create ()
let cells : int ref list ref = ref []

let cell_key =
  Domain.DLS.new_key (fun () ->
      let r = ref 0 in
      Mutex.lock cells_mu;
      cells := r :: !cells;
      Mutex.unlock cells_mu;
      r)

let note_events n =
  let r = Domain.DLS.get cell_key in
  r := !r + n

let note_event () = note_events 1

let events_total () =
  Mutex.lock cells_mu;
  let t = List.fold_left (fun acc r -> acc + !r) 0 !cells in
  Mutex.unlock cells_mu;
  t

(* VmHWM is the kernel's high-water RSS mark for the process; on
   platforms without /proc we fall back to the GC's top-of-heap words,
   which undercounts (no stacks, no malloc'd C blocks) but keeps the
   field meaningful. *)
let proc_peak_rss_bytes () =
  match open_in "/proc/self/status" with
  | exception _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let digits = String.to_seq line |> Seq.filter (fun c -> c >= '0' && c <= '9') in
              let s = String.of_seq digits in
              if s = "" then None else Some (int_of_string s * 1024)
            else scan ()
      in
      let r = scan () in
      close_in_noerr ic;
      r

let gc_heap_bytes () =
  let st = Gc.quick_stat () in
  st.Gc.top_heap_words * (Sys.word_size / 8)

let peak_rss_bytes () =
  match proc_peak_rss_bytes () with Some b -> b | None -> gc_heap_bytes ()

(* Gauges fed by sample(); registered once at module init. *)
let g_minor_words = Obs.gauge ~help:"GC minor words allocated" "telemetry.gc_minor_words"
let g_major_words = Obs.gauge ~help:"GC major words allocated" "telemetry.gc_major_words"
let g_live_words = Obs.gauge ~help:"GC live words at last sample" "telemetry.gc_live_words"
let g_peak_rss = Obs.gauge ~help:"peak resident set size in bytes" "telemetry.peak_rss_bytes"

let g_events_per_sec =
  Obs.gauge ~help:"store events processed per second (since last sample)"
    "telemetry.events_per_sec"

let g_events_total = Obs.gauge ~help:"store events processed since start" "telemetry.events_total"

(* ------------------------------------------------------------------ *)
(* Epoch-close latency SLO                                             *)
(* ------------------------------------------------------------------ *)

let h_epoch_close_ns =
  Obs.histogram ~unit_:"ns" ~help:"Wall time the analyzer spent handling each epoch close"
    "analyzer.epoch_close_ns"

let g_slo_p99 =
  Obs.gauge ~help:"p99 epoch-close handling latency at last sample (ms)"
    "slo.epoch_close_p99_ms"

let c_slo_burn =
  Obs.counter ~help:"Epoch closes slower than the RMA_SLO_EPOCH_CLOSE_MS threshold"
    "slo.epoch_close_burn_total"

let default_slo_ms = 100.0

let slo_threshold_ms =
  ref
    (match Option.bind (Sys.getenv_opt "RMA_SLO_EPOCH_CLOSE_MS") float_of_string_opt with
    | Some ms when ms > 0.0 -> ms
    | _ -> default_slo_ms)

let set_slo_epoch_close_ms ms = if ms > 0.0 then slo_threshold_ms := ms
let slo_epoch_close_ms () = !slo_threshold_ms

let note_epoch_close seconds =
  if Obs.is_enabled () then begin
    Obs.observe h_epoch_close_ns (seconds *. 1e9);
    if seconds *. 1000.0 > !slo_threshold_ms then Obs.incr c_slo_burn
  end

(* Last-sample state for the rate gauge; sampled from the main domain
   and from the telemetry server's domain, hence the mutex. *)
let sample_mu = Mutex.create ()
let last_t = ref 0.0
let last_events = ref 0

let sample () =
  if Obs.is_enabled () then begin
    let now = Timer.now () in
    let total = events_total () in
    let st = Gc.quick_stat () in
    Obs.set_gauge g_minor_words st.Gc.minor_words;
    Obs.set_gauge g_major_words st.Gc.major_words;
    Obs.set_gauge g_live_words (float_of_int st.Gc.live_words);
    Obs.set_gauge g_peak_rss (float_of_int (peak_rss_bytes ()));
    Obs.set_gauge g_events_total (float_of_int total);
    if Histogram.count h_epoch_close_ns > 0 then
      Obs.set_gauge g_slo_p99 (Histogram.quantile h_epoch_close_ns 0.99 /. 1e6);
    Mutex.lock sample_mu;
    let dt = now -. !last_t and de = total - !last_events in
    if !last_t > 0.0 && dt > 1e-6 then Obs.set_gauge g_events_per_sec (float_of_int de /. dt);
    last_t := now;
    last_events := total;
    Mutex.unlock sample_mu
  end

let reset_rate () =
  Mutex.lock sample_mu;
  last_t := 0.0;
  last_events := 0;
  Mutex.unlock sample_mu
