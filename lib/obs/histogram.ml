(* Bucket i >= 1 holds values in (lo_bound * 2^((i-1)/4), lo_bound * 2^(i/4)];
   bucket 0 is the underflow bucket for values <= lo_bound (zeros included). *)

let sub_per_octave = 4
let lo_bound = 1e-9
let n_buckets = 224 (* reaches lo_bound * 2^(223/4) ~ 6e7, enough for hours *)

type t = {
  h_name : string;
  h_help : string;
  h_unit : string;
  counts : int array;
  mutable total : int;
  mutable h_sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(help = "") ?(unit_ = "s") name =
  {
    h_name = name;
    h_help = help;
    h_unit = unit_;
    counts = Array.make n_buckets 0;
    total = 0;
    h_sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let bucket_of v =
  if v <= lo_bound then 0
  else begin
    let idx = 1 + int_of_float (Float.log2 (v /. lo_bound) *. float_of_int sub_per_octave) in
    if idx >= n_buckets then n_buckets - 1 else idx
  end

let observe t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.h_sum <- t.h_sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.h_sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let name t = t.h_name
let help t = t.h_help
let unit_label t = t.h_unit
let count t = t.total
let sum t = t.h_sum
let mean t = if t.total = 0 then 0.0 else t.h_sum /. float_of_int t.total
let min_value t = if t.total = 0 then 0.0 else t.min_v
let max_value t = if t.total = 0 then 0.0 else t.max_v

(* Geometric midpoint of a bucket — the estimator that bounds relative
   error by the square root of the bucket ratio (~9%). The underflow
   bucket reports 0: its occupants are zeros (or sub-nanosecond noise),
   and "1e-09" in a percentile table reads as a real latency. *)
let bucket_mid i =
  if i = 0 then 0.0
  else lo_bound *. Float.exp2 ((float_of_int (i - 1) +. 0.5) /. float_of_int sub_per_octave)

let quantile t q =
  if t.total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
    let rec walk i cum =
      if i >= n_buckets then t.max_v
      else begin
        let cum = cum + t.counts.(i) in
        if cum >= rank then Float.max t.min_v (Float.min t.max_v (bucket_mid i))
        else walk (i + 1) cum
      end
    in
    walk 0 0
  end
