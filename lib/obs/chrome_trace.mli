(** Chrome [trace_event] JSON export of the registry — loadable in
    [chrome://tracing] and Perfetto (ui.perfetto.dev).

    Spans become complete ("X") events with microsecond [ts]/[dur];
    counters become counter ("C") samples; histograms become global
    instant ("i") events whose [args] carry count, p50/p95/p99, max and
    mean — the "insert-latency histogram metadata" of the trace. *)

val to_json : unit -> string
(** The full trace as one JSON document. *)

val write : path:string -> unit -> unit
(** Write {!to_json} to [path]. *)
