(** Log-scale histogram for latency-like positive values.

    Buckets are spaced at factors of [2^(1/4)] (~19% resolution) from
    1e-9 upwards, so quantile estimates carry at most ~9% relative
    error — plenty for p50/p95/p99 reporting while keeping [observe]
    allocation-free (one array increment plus scalar updates). Values at
    or below 1e-9 (in particular 0, common for per-insert fragment and
    merge counts) land in a dedicated underflow bucket. *)

type t

val create : ?help:string -> ?unit_:string -> string -> t
(** [create name] makes an empty histogram. [unit_] is a display label
    ("s", "count", "nodes"...), defaulting to ["s"]. *)

val observe : t -> float -> unit
(** Record one value. Never allocates. *)

val reset : t -> unit
(** Drop all recorded values, keeping the registration. *)

val name : t -> string
val help : t -> string
val unit_label : t -> string
val count : t -> int
val sum : t -> float
val mean : t -> float

val min_value : t -> float
(** 0.0 when empty. *)

val max_value : t -> float
(** 0.0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0,1]: the estimated q-quantile — the
    geometric midpoint of the bucket holding the q-th ranked value,
    clamped to the exact observed [min,max]. 0.0 when empty. *)
