module Table = Rma_util.Text_table

let cell v = Printf.sprintf "%.4g" v

let histogram_table () =
  let populated = List.filter (fun h -> Histogram.count h > 0) (Obs.all_histograms ()) in
  if populated = [] then None
  else begin
    let t =
      Table.create ~title:"Histograms (log-scale buckets, ~9% quantile resolution)"
        ~columns:
          [ ("Metric", Table.Left); ("Unit", Table.Left); ("Count", Table.Right);
            ("p50", Table.Right); ("p95", Table.Right); ("p99", Table.Right);
            ("Max", Table.Right); ("Mean", Table.Right) ]
        ()
    in
    List.iter
      (fun h ->
        Table.add_row t
          [
            Histogram.name h; Histogram.unit_label h; string_of_int (Histogram.count h);
            cell (Histogram.quantile h 0.50); cell (Histogram.quantile h 0.95);
            cell (Histogram.quantile h 0.99); cell (Histogram.max_value h);
            cell (Histogram.mean h);
          ])
      populated;
    Some (Table.render t)
  end

let counter_table () =
  let counters = List.filter (fun (c : Obs.counter) -> c.Obs.c_value <> 0) (Obs.all_counters ()) in
  let gauges = List.filter (fun (g : Obs.gauge) -> g.Obs.g_value <> 0.0) (Obs.all_gauges ()) in
  if counters = [] && gauges = [] then None
  else begin
    let t =
      Table.create ~title:"Counters and gauges"
        ~columns:[ ("Metric", Table.Left); ("Value", Table.Right) ]
        ()
    in
    List.iter
      (fun (c : Obs.counter) -> Table.add_row t [ c.Obs.c_name; string_of_int c.Obs.c_value ])
      counters;
    if counters <> [] && gauges <> [] then Table.add_rule t;
    List.iter (fun (g : Obs.gauge) -> Table.add_row t [ g.Obs.g_name; cell g.Obs.g_value ]) gauges;
    Some (Table.render t)
  end

let category_table () =
  let cats = List.filter (fun (_, s) -> s > 0.0) (Obs.all_categories ()) in
  if cats = [] then None
  else begin
    let t =
      Table.create ~title:"Wall seconds by span category"
        ~columns:[ ("Category", Table.Left); ("Seconds", Table.Right) ]
        ()
    in
    List.iter (fun (cat, s) -> Table.add_row t [ cat; Printf.sprintf "%.6f" s ]) cats;
    Some (Table.render t)
  end

let phase_table () =
  let phases =
    List.filter (fun (sp : Obs.span) -> String.equal sp.Obs.sp_cat "phase") (Obs.all_spans ())
    |> List.sort (fun (a : Obs.span) b -> compare a.Obs.sp_t0 b.Obs.sp_t0)
  in
  if phases = [] then None
  else begin
    let t =
      Table.create ~title:"Wall-clock phases"
        ~columns:
          [ ("Phase", Table.Left); ("Start (s)", Table.Right); ("Duration (s)", Table.Right) ]
        ()
    in
    List.iter
      (fun (sp : Obs.span) ->
        Table.add_row t
          [
            sp.Obs.sp_name; Printf.sprintf "%.6f" sp.Obs.sp_t0;
            Printf.sprintf "%.6f" (sp.Obs.sp_t1 -. sp.Obs.sp_t0);
          ])
      phases;
    Some (Table.render t)
  end

let to_string () =
  let sections = List.filter_map Fun.id [ histogram_table (); counter_table (); category_table (); phase_table () ] in
  let n_spans = List.length (Obs.all_spans ()) in
  let body = if sections = [] then "observability: no metrics recorded\n" else String.concat "\n" sections in
  body ^ Printf.sprintf "\n(%d spans recorded)\n" n_spans
