(** Human-readable summary of the registry, rendered with
    {!Rma_util.Text_table}: a percentile table for every populated
    histogram, counter and gauge tables, wall seconds per span
    category, and the recorded wall-clock phases. *)

val to_string : unit -> string
