let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "rma_" ^ Bytes.to_string b

(* Exposition-format escaping: HELP text escapes backslash and newline;
   label values additionally escape the double quote. *)
let escape ~quote s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help = escape ~quote:false
let escape_label_value = escape ~quote:true

let num v = if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

let to_text ?(filter = fun _ -> true) () =
  let b = Buffer.create 4096 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  if filter "run_info" then begin
    header "rma_run_info" "journal run id correlating this process's events" "gauge";
    Buffer.add_string b
      (Printf.sprintf "rma_run_info{run_id=\"%s\"} 1\n" (escape_label_value (Events.run_id ())))
  end;
  (* Multiplexed runs (serve sessions) each get their own labelled
     series rather than fighting over the single rma_run_info gauge. *)
  (if filter "session_info" then
     match Sessions.snapshot () with
     | [] -> ()
     | entries ->
         header "rma_session_info" "per-session run ids multiplexed in this process" "gauge";
         List.iter
           (fun (run_id, session, state) ->
             Buffer.add_string b
               (Printf.sprintf "rma_session_info{run_id=\"%s\",session=\"%s\",state=\"%s\"} 1\n"
                  (escape_label_value run_id) (escape_label_value session)
                  (escape_label_value state)))
           entries);
  List.iter
    (fun (c : Obs.counter) ->
      if filter c.Obs.c_name then begin
        let name = sanitize c.Obs.c_name in
        header name c.Obs.c_help "counter";
        Buffer.add_string b (Printf.sprintf "%s %d\n" name c.Obs.c_value)
      end)
    (Obs.all_counters ());
  List.iter
    (fun (g : Obs.gauge) ->
      if filter g.Obs.g_name then begin
        let name = sanitize g.Obs.g_name in
        header name g.Obs.g_help "gauge";
        Buffer.add_string b (Printf.sprintf "%s %s\n" name (num g.Obs.g_value))
      end)
    (Obs.all_gauges ());
  List.iter
    (fun h ->
      if filter (Histogram.name h) then begin
        let name = sanitize (Histogram.name h) in
        header name (Histogram.help h) "summary";
        List.iter
          (fun q ->
            Buffer.add_string b
              (Printf.sprintf "%s{quantile=\"%g\"} %s\n" name q (num (Histogram.quantile h q))))
          [ 0.5; 0.95; 0.99 ];
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (num (Histogram.sum h)));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name (Histogram.count h))
      end)
    (Obs.all_histograms ());
  Buffer.contents b

let write ~path () =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_text ()))
