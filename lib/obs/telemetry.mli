(** Live resource telemetry: a sampling collector for GC pressure,
    peak RSS and event throughput, feeding the {!Obs} gauge registry
    (and from there the Prometheus endpoint, the summary exporter and
    the bench trajectory).

    Throughput accounting ({!note_events}) is always on and costs one
    domain-local increment per call — the stores invoke it on every
    insert from worker domains, so it deliberately avoids shared-cache
    contention. Everything else ({!sample}) is pull-based and gated on
    {!Obs.is_enabled}. *)

val note_events : int -> unit
(** Count [n] processed store events on the calling domain. *)

val note_event : unit -> unit

val events_total : unit -> int
(** Events counted across all domains (readers may see a slightly
    stale sum while workers are running; never a torn one). *)

val peak_rss_bytes : unit -> int
(** High-water resident set size: [VmHWM] from [/proc/self/status],
    falling back to the GC top-of-heap size where /proc is absent. *)

val sample : unit -> unit
(** Take one sample: refresh the GC/RSS/throughput gauges
    ([telemetry.*]). The events/sec gauge covers the window since the
    previous sample. No-op when {!Obs} is disabled. *)

val reset_rate : unit -> unit
(** Forget the rate window (next {!sample} only primes it). *)
