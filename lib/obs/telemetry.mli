(** Live resource telemetry: a sampling collector for GC pressure,
    peak RSS and event throughput, feeding the {!Obs} gauge registry
    (and from there the Prometheus endpoint, the summary exporter and
    the bench trajectory).

    Throughput accounting ({!note_events}) is always on and costs one
    domain-local increment per call — the stores invoke it on every
    insert from worker domains, so it deliberately avoids shared-cache
    contention. Everything else ({!sample}) is pull-based and gated on
    {!Obs.is_enabled}. *)

val note_events : int -> unit
(** Count [n] processed store events on the calling domain. *)

val note_event : unit -> unit

val events_total : unit -> int
(** Events counted across all domains (readers may see a slightly
    stale sum while workers are running; never a torn one). *)

val peak_rss_bytes : unit -> int
(** High-water resident set size: [VmHWM] from [/proc/self/status],
    falling back to the GC top-of-heap size where /proc is absent. *)

val sample : unit -> unit
(** Take one sample: refresh the GC/RSS/throughput gauges
    ([telemetry.*]) and the [slo.epoch_close_p99_ms] gauge. The
    events/sec gauge covers the window since the previous sample. No-op
    when {!Obs} is disabled. *)

(** {1 Epoch-close latency SLO}

    The analyzer times its handling of every epoch-close event and
    reports it here; the p99 lands on [/metrics] as the
    [slo.epoch_close_p99_ms] gauge (refreshed by {!sample}), and each
    close slower than the threshold increments the
    [slo.epoch_close_burn_total] burn counter — the pair a scrape-based
    alert needs (current level + budget burn). *)

val note_epoch_close : float -> unit
(** Record one epoch-close handling duration (seconds). Feeds the
    [analyzer.epoch_close_ns] histogram; increments the burn counter
    when the duration exceeds the threshold. No-op when {!Obs} is
    disabled. *)

val slo_epoch_close_ms : unit -> float
(** The burn threshold in milliseconds (default 100, or
    [RMA_SLO_EPOCH_CLOSE_MS] from the environment at startup). *)

val set_slo_epoch_close_ms : float -> unit
(** Override the threshold; non-positive values are ignored. *)

val reset_rate : unit -> unit
(** Forget the rate window (next {!sample} only primes it). *)
