(** Process-wide observability registry: counters, gauges, log-scale
    histograms and a span tracer, shared by the simulator, the stores,
    the detectors and the benchmark harness.

    Everything is a no-op until {!enable} is called: each mutating entry
    point checks {!is_enabled} before doing any work, so instrumented
    hot paths (store inserts, event dispatch) pay one boolean load when
    observability is off. Handle creation ({!counter}, {!gauge},
    {!histogram}) happens once at module initialisation and is exempt
    from the rule.

    Spans live on tracks identified by a Chrome-trace (pid, tid) pair:
    [wall_pid] carries wall-clock phases (harness experiments, runtime
    invocations, one tid), and each {!Mpi_sim.Runtime.run} allocates a
    fresh simulated-time pid via {!begin_sim_run} whose tids are MPI
    ranks and whose timestamps are simulated seconds. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric, drop all spans and restart the trace
    clock. Registered handles stay valid. *)

(** {1 Counters and gauges} *)

type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

val counter : ?help:string -> string -> counter
(** Find-or-register by name; call it once at module init and keep the
    handle. *)

val incr : counter -> unit
val add : counter -> int -> unit
val gauge : ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit

(** {1 Histograms} *)

val histogram : ?help:string -> ?unit_:string -> string -> Histogram.t
(** Find-or-register by name (same discipline as {!counter}). *)

val observe : Histogram.t -> float -> unit
val observe_int : Histogram.t -> int -> unit

(** {1 Spans} *)

type span = {
  sp_id : int;  (** Unique per process; 0 never occurs. *)
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_t0 : float;  (** Seconds in the track's time domain. *)
  mutable sp_t1 : float;
  mutable sp_args : (string * string) list;
  mutable sp_trace_id : int;
      (** Causal id this span {e originates} (a barrier span scheduling
          shard work); 0 = none. Rendered as a Chrome-trace flow start. *)
  mutable sp_parent_id : int;
      (** Causal id this span {e binds to} (the trace_id of the span
          that scheduled it); 0 = none. Rendered as a flow finish. *)
}

val wall_pid : int
(** Track of wall-clock phases; timestamps relative to the trace epoch. *)

val sim_pid : unit -> int
(** Track of the current simulated run; timestamps are simulated
    seconds. *)

val begin_sim_run : unit -> unit
(** Start a fresh simulated-time track so successive runs in one
    process do not overlay each other in the trace. *)

val rel_time : float -> float
(** Convert an absolute {!Rma_util.Timer.now} reading to trace-relative
    seconds. *)

val set_sampling : keep_one_in:int -> unit
(** Record only every n-th {!start_span} span (phase and emitted spans
    are never sampled out). Default 1 = keep everything. *)

val set_span_cap : int -> unit
(** Hard bound on stored spans (default 1_000_000); beyond it new spans
    are dropped. *)

val fresh_id : unit -> int
(** Next id from the shared span/trace-id sequence (never 0). Use to
    mint a trace id ahead of the span that will originate it. *)

val span_id : span option -> int
(** The span's unique id, or 0 for [None] (disabled / sampled out). *)

val start_span :
  ?cat:string -> ?args:(string * string) list -> ?trace_id:int -> ?parent_id:int -> pid:int ->
  tid:int -> ?at:float -> string -> span option
(** Open a span; [None] when disabled, sampled out, or over the cap.
    [at] gives an explicit domain timestamp (e.g. simulated time);
    without it the trace-relative wall clock is read. The span is only
    stored once {!finish_span} runs. [trace_id] marks the span as the
    origin of a causal flow; [parent_id] binds it to one (0 = none for
    both, the default). *)

val finish_span : ?at:float -> ?args:(string * string) list -> span option -> unit

val emit_span :
  ?cat:string -> ?args:(string * string) list -> ?trace_id:int -> ?parent_id:int -> pid:int ->
  tid:int -> t0:float -> t1:float -> string -> unit
(** Record an already-measured span (e.g. a per-rank simulated-time
    interval reconstructed after a run). *)

val time_span :
  ?cat:string -> ?args:(string * string) list -> ?pid:int -> ?tid:int -> string ->
  (unit -> 'a) -> 'a * float
(** Run the thunk, return its result with elapsed wall seconds, and —
    when enabled — record the interval as a span. The duration is
    always measured so callers (e.g. {!Report.Harness.measure}) can use
    the {e same} number in tables and in the exported trace. Also feeds
    the span's category accumulator (see {!category_seconds}). Re-raises
    the thunk's exception after recording the partial span. *)

val category_seconds : string -> float
(** Total wall seconds accumulated by {!time_span} under a category
    (backed by {!Rma_util.Timer.accumulator}). *)

(** {1 Snapshots for exporters} *)

val all_counters : unit -> counter list
val all_gauges : unit -> gauge list
val all_histograms : unit -> Histogram.t list

val all_spans : unit -> span list
(** Sorted by (pid, tid, start time). *)

val all_categories : unit -> (string * float) list
(** Categories seen by {!time_span} with their accumulated seconds. *)
