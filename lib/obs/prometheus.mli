(** Prometheus text-format dump of the registry: counters and gauges as
    single samples, histograms as summaries with p50/p95/p99 quantile
    labels plus [_sum]/[_count], and an [rma_run_info] gauge carrying
    the journal's run id as a label. Metric names are sanitised to the
    Prometheus charset with an [rma_] prefix; HELP text and label
    values are escaped per the exposition format. *)

val to_text : ?filter:(string -> bool) -> unit -> string
(** [filter] receives the {e raw} registry name (plus ["run_info"] and
    ["session_info"] for the synthetic metrics) and selects which
    families to render; default keeps everything. When the {!Sessions}
    registry is non-empty, one [rma_session_info{run_id,session,state}]
    series is rendered per registered run, so processes multiplexing
    many sessions (the [serve] daemon) label each instead of clobbering
    the single [rma_run_info] gauge. *)

val write : path:string -> unit -> unit

val escape_help : string -> string
(** Escape backslash and newline for [# HELP] lines. *)

val escape_label_value : string -> string
(** Escape backslash, newline and double quote for label values. *)
