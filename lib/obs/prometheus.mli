(** Prometheus text-format dump of the registry: counters and gauges as
    single samples, histograms as summaries with p50/p95/p99 quantile
    labels plus [_sum]/[_count]. Metric names are sanitised to the
    Prometheus charset with an [rma_] prefix. *)

val to_text : unit -> string

val write : path:string -> unit -> unit
