(** Prometheus text-format dump of the registry: counters and gauges as
    single samples, histograms as summaries with p50/p95/p99 quantile
    labels plus [_sum]/[_count], and an [rma_run_info] gauge carrying
    the journal's run id as a label. Metric names are sanitised to the
    Prometheus charset with an [rma_] prefix; HELP text and label
    values are escaped per the exposition format. *)

val to_text : ?filter:(string -> bool) -> unit -> string
(** [filter] receives the {e raw} registry name (plus ["run_info"] for
    the synthetic metric) and selects which families to render; default
    keeps everything. *)

val write : path:string -> unit -> unit

val escape_help : string -> string
(** Escape backslash and newline for [# HELP] lines. *)

val escape_label_value : string -> string
(** Escape backslash, newline and double quote for label values. *)
