(* A process can now host many logical runs at once (the serve daemon:
   one per client session) while the journal keeps a single "current"
   run_id. This registry is the observability-side record of that
   multiplexing: whoever owns a run registers it here so /metrics can
   label one series per live run instead of clobbering the single
   rma_run_info gauge. *)

type state = Queued | Active | Closed of string

let state_label = function
  | Queued -> "queued"
  | Active -> "active"
  | Closed reason -> "closed:" ^ reason

type entry = { run_id : string; session : string; mutable state : state }

let mu = Mutex.create ()
let live : (string, entry) Hashtbl.t = Hashtbl.create 16

(* Closed sessions stay visible to one more scrape cycle via a bounded
   FIFO so an operator can see how a session ended; beyond the cap the
   oldest closure ages out. *)
let recent_cap = 64
let recent_closed : entry Queue.t = Queue.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let register ~run_id ~session ~state =
  locked (fun () -> Hashtbl.replace live run_id { run_id; session; state })

let set_state ~run_id state =
  locked (fun () ->
      match Hashtbl.find_opt live run_id with
      | Some e -> (
          e.state <- state;
          match state with
          | Closed _ ->
              Hashtbl.remove live run_id;
              Queue.push e recent_closed;
              if Queue.length recent_closed > recent_cap then ignore (Queue.pop recent_closed)
          | Queued | Active -> ())
      | None -> ())

let active_count () =
  locked (fun () ->
      Hashtbl.fold (fun _ e acc -> match e.state with Active -> acc + 1 | _ -> acc) live 0)

let registered_count () = locked (fun () -> Hashtbl.length live)

let snapshot () =
  locked (fun () ->
      let render e = (e.run_id, e.session, state_label e.state) in
      let open_sessions = Hashtbl.fold (fun _ e acc -> render e :: acc) live [] in
      let closed = Queue.fold (fun acc e -> render e :: acc) [] recent_closed in
      List.sort compare open_sessions @ List.rev closed)

let reset () =
  locked (fun () ->
      Hashtbl.reset live;
      Queue.clear recent_closed)
