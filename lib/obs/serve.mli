(** Live telemetry endpoint: a minimal HTTP responder on a loopback
    port, answered from a background domain so the detector can be
    inspected {e while} a run is in progress ([--obs-serve PORT]).

    Routes: [/metrics] (Prometheus text, gauges refreshed per scrape;
    includes one [rma_session_info] series per {!Sessions} entry),
    [/healthz] ([ok]), and [/events] (the journal's in-memory ring,
    streamed as [application/x-ndjson] — one write per record, body
    delimited by connection close rather than Content-Length).
    [/events?run=<run_id>] restricts the dump to one multiplexed
    session's records. Anything else is 404. One request per
    connection; requests are served sequentially. *)

type t

val start : port:int -> t
(** Bind 127.0.0.1:[port] ([0] picks an ephemeral port, see {!port})
    and spawn the serving domain. An ephemeral request additionally
    prints [obs-serve-port: <port>] on stderr so scripted callers can
    scrape the resolved port. Raises [Unix.Unix_error] when the bind
    fails (port taken). *)

val port : t -> int
(** The bound port (resolves an ephemeral request). *)

val stop : t -> unit
(** Shut the listener down and join the serving domain. Idempotent. *)
