let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v =
  (* JSON has no inf/nan literals; clamp pathological values to 0. *)
  if Float.is_finite v then Printf.sprintf "%.6g" v else "0"

let args_obj pairs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) pairs)
  ^ "}"

(* One trace event as a JSON object; [extra] are pre-rendered fields. *)
let event ~name ~ph ~pid ~tid ?(cat = "") ?(ts = 0.0) ?(extra = []) () =
  let fields =
    [
      Printf.sprintf "\"name\":\"%s\"" (escape name);
      Printf.sprintf "\"ph\":\"%s\"" ph;
      Printf.sprintf "\"pid\":%d" pid;
      Printf.sprintf "\"tid\":%d" tid;
      Printf.sprintf "\"ts\":%s" (num ts);
    ]
    @ (if cat = "" then [] else [ Printf.sprintf "\"cat\":\"%s\"" (escape cat) ])
    @ extra
  in
  "{" ^ String.concat "," fields ^ "}"

let span_event (sp : Obs.span) =
  let ts = sp.Obs.sp_t0 *. 1e6 in
  let dur =
    let d = (sp.Obs.sp_t1 -. sp.Obs.sp_t0) *. 1e6 in
    if Float.is_finite d && d > 0.0 then d else 0.0
  in
  event ~name:sp.Obs.sp_name ~ph:"X" ~pid:sp.Obs.sp_pid ~tid:sp.Obs.sp_tid ~cat:sp.Obs.sp_cat ~ts
    ~extra:
      ([ Printf.sprintf "\"dur\":%s" (num dur) ]
      @ if sp.Obs.sp_args = [] then [] else [ "\"args\":" ^ args_obj sp.Obs.sp_args ])
    ()

(* Causal flows: a span with [sp_trace_id] originates arrow id
   [sp_trace_id] (flow start "s"), a span with [sp_parent_id] terminates
   that arrow (flow finish "f", bound to the enclosing slice). Both are
   timestamped at the span midpoint so the binding slice is
   unambiguous. Name and category must match across the pair for
   Perfetto to draw the arrow. *)
let flow_events (sp : Obs.span) =
  let mid =
    let t1 = if Float.is_finite sp.Obs.sp_t1 then sp.Obs.sp_t1 else sp.Obs.sp_t0 in
    (sp.Obs.sp_t0 +. t1) /. 2.0 *. 1e6
  in
  let flow ph id extra =
    event ~name:"sched" ~ph ~pid:sp.Obs.sp_pid ~tid:sp.Obs.sp_tid ~cat:"flow" ~ts:mid
      ~extra:(Printf.sprintf "\"id\":%d" id :: extra)
      ()
  in
  (if sp.Obs.sp_trace_id > 0 then [ flow "s" sp.Obs.sp_trace_id [] ] else [])
  @ if sp.Obs.sp_parent_id > 0 then [ flow "f" sp.Obs.sp_parent_id [ "\"bp\":\"e\"" ] ] else []

let histogram_event h =
  let q p = num (Histogram.quantile h p) in
  event
    ~name:("hist:" ^ Histogram.name h)
    ~ph:"i" ~pid:Obs.wall_pid ~tid:0 ~cat:"histogram"
    ~extra:
      [
        "\"s\":\"g\"";
        "\"args\":"
        ^ args_obj
            [
              ("unit", Histogram.unit_label h);
              ("count", string_of_int (Histogram.count h));
              ("p50", q 0.50);
              ("p95", q 0.95);
              ("p99", q 0.99);
              ("max", num (Histogram.max_value h));
              ("mean", num (Histogram.mean h));
            ];
      ]
    ()

let counter_event (c : Obs.counter) =
  event ~name:c.Obs.c_name ~ph:"C" ~pid:Obs.wall_pid ~tid:0 ~cat:"counter"
    ~extra:[ Printf.sprintf "\"args\":{\"value\":%d}" c.Obs.c_value ]
    ()

let gauge_event (g : Obs.gauge) =
  event ~name:g.Obs.g_name ~ph:"C" ~pid:Obs.wall_pid ~tid:0 ~cat:"gauge"
    ~extra:[ Printf.sprintf "\"args\":{\"value\":%s}" (num g.Obs.g_value) ]
    ()

let metadata_events spans =
  let name_proc pid label =
    event ~name:"process_name" ~ph:"M" ~pid ~tid:0
      ~extra:[ "\"args\":" ^ args_obj [ ("name", label) ] ]
      ()
  in
  let name_thread pid tid label =
    event ~name:"thread_name" ~ph:"M" ~pid ~tid
      ~extra:[ "\"args\":" ^ args_obj [ ("name", label) ] ]
      ()
  in
  let sim_tracks =
    List.sort_uniq compare
      (List.filter_map
         (fun (sp : Obs.span) ->
           if sp.Obs.sp_pid >= 2 then Some (sp.Obs.sp_pid, sp.Obs.sp_tid) else None)
         spans)
  in
  let sim_pids = List.sort_uniq compare (List.map fst sim_tracks) in
  (* Wall-clock tracks: tid 0 is the harness main thread; higher tids
     are parallel shards (tid = shard index + 1, see Rma_par). *)
  let wall_tids =
    List.sort_uniq compare
      (List.filter_map
         (fun (sp : Obs.span) ->
           if sp.Obs.sp_pid = Obs.wall_pid && sp.Obs.sp_tid > 0 then Some sp.Obs.sp_tid else None)
         spans)
  in
  (name_proc Obs.wall_pid "harness (wall clock)"
  :: List.map
       (fun pid -> name_proc pid (Printf.sprintf "simulated run %d (sim clock)" (pid - 1)))
       sim_pids)
  @ List.map
      (fun tid -> name_thread Obs.wall_pid tid (Printf.sprintf "shard %d" (tid - 1)))
      wall_tids
  @ List.map (fun (pid, tid) -> name_thread pid tid (Printf.sprintf "rank %d" tid)) sim_tracks

let to_json () =
  let spans = Obs.all_spans () in
  let events =
    metadata_events spans
    @ List.map span_event spans
    @ List.concat_map flow_events spans
    @ List.map histogram_event (List.filter (fun h -> Histogram.count h > 0) (Obs.all_histograms ()))
    @ List.map counter_event (Obs.all_counters ())
    @ List.map gauge_event (Obs.all_gauges ())
  in
  "{\"traceEvents\":[\n" ^ String.concat ",\n" events ^ "\n],\"displayTimeUnit\":\"ms\"}\n"

let write ~path () =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json ()))
