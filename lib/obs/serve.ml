(* A deliberately tiny HTTP/1.0-style responder: one background domain,
   sequential accept loop, three GET routes. It exists so an operator
   (or the CI smoke leg) can curl the detector while a run is in
   progress; it is not a web server. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  mutable dom : unit Domain.t option;
}

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | 0 -> ()
      | w -> go (off + w)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let http_response ?(status = "200 OK") ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

(* The one query parameter any route understands: [?run=<run_id>]
   restricts /events to a single multiplexed session's journal lines.
   Parsing is deliberately naive (no URL-decoding) — run ids are
   generated from [-a-z0-9] only. *)
let run_filter_of_query query =
  String.split_on_char '&' query
  |> List.find_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i when String.sub kv 0 i = "run" ->
             Some (String.sub kv (i + 1) (String.length kv - i - 1))
         | _ -> None)

let respond fd path query =
  match path with
  | "/metrics" ->
      (* Refresh the resource gauges so a scrape always sees current
         GC/RSS numbers, not the last explicit sample. *)
      Telemetry.sample ();
      write_all fd
        (http_response ~content_type:"text/plain; version=0.0.4; charset=utf-8"
           (Prometheus.to_text ()))
  | "/healthz" -> write_all fd (http_response ~content_type:"text/plain; charset=utf-8" "ok\n")
  | "/events" ->
      (* Streamed, not buffered: no Content-Length — the close delimits
         the body (HTTP/1.0 framing), and each record goes out as its
         own write so a reader sees journal lines as they drain instead
         of one ring-sized blob. *)
      write_all fd
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson; charset=utf-8\r\n\
         Connection: close\r\n\r\n";
      let keep =
        match run_filter_of_query query with
        | None -> fun _ -> true
        | Some run -> fun (ev : Events.t) -> ev.Events.run_id = run
      in
      List.iter
        (fun ev -> if keep ev then write_all fd (Events.line ev ^ "\n"))
        (Events.recent ())
  | _ ->
      write_all fd
        (http_response ~status:"404 Not Found" ~content_type:"text/plain; charset=utf-8"
           "not found\n")

let handle_client fd =
  let buf = Bytes.create 2048 in
  let n = try Unix.read fd buf 0 2048 with Unix.Unix_error _ -> 0 in
  if n > 0 then begin
    let req = Bytes.sub_string buf 0 n in
    let path, query =
      match String.split_on_char ' ' req with
      | _meth :: path :: _ -> (
          match String.index_opt path '?' with
          | Some i ->
              (String.sub path 0 i, String.sub path (i + 1) (String.length path - i - 1))
          | None -> (path, ""))
      | _ -> ("/", "")
    in
    respond fd path query
  end

let accept_loop t () =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.accept t.sock with
      | fd, _addr ->
          (try handle_client fd with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

let start ~port:requested =
  let port = requested in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { sock; port; stopping = Atomic.make false; dom = None } in
  t.dom <- Some (Domain.spawn (accept_loop t));
  (* An ephemeral bind is only useful if the caller can learn the
     resolved port; a stable stderr line lets a CI smoke job scrape it
     without racing other jobs for a fixed port. *)
  if requested = 0 then Printf.eprintf "obs-serve-port: %d\n%!" port;
  Events.emit ~kv:[ ("port", string_of_int port) ] Events.Info "serve";
  t

let port t = t.port

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (* shutdown on the listening socket fails the blocked accept (the
       loop then re-checks [stopping] and exits); a self-connection is
       the portable fallback where shutdown doesn't wake it. The fd is
       closed only after the join so accept never races a reused fd. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try
       let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect c (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
        with Unix.Unix_error _ -> ());
       Unix.close c
     with Unix.Unix_error _ -> ());
    (match t.dom with
    | Some d ->
        Domain.join d;
        t.dom <- None
    | None -> ());
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
