(** Typed reader and analytics for the JSON-lines event journal.

    This is the consumption half of the journal contract {!Events}
    writes: a {e total} reader in the style of the trace codec's
    ([Ok]/[Error { at_line; reason }], never an exception) that
    tolerates the two failure shapes a journal from a crashed or
    fault-injected run actually has — a truncated final line and
    bit-flipped garbage mid-file — plus the filter and aggregation
    passes behind the [rma_race obs query] and [rma_race obs stats]
    subcommands.

    Reading stops at the first undecodable line: the events before it
    are the trustworthy prefix (journal lines are appended and flushed
    one at a time, so corruption never precedes intact records from the
    same run), and the error names the line so the operator knows how
    much of the run the analytics cover. *)

type error = { at_line : int; reason : string }
(** [at_line] is 1-based; 0 means the file itself was unreadable. *)

val error_to_string : error -> string

type read = {
  events : Events.t list;  (** The decodable prefix, in file order. *)
  lines : int;  (** Total lines consumed, including the failing one. *)
  error : error option;  (** [None] iff every line decoded. *)
}

val parse_line : string -> (Events.t, string) result
(** Decode one journal line. Total: malformed JSON, missing fields,
    unknown levels and ill-typed [kv] values all come back as [Error]. *)

val read_channel : in_channel -> read

val read_file : string -> read
(** Total: an unopenable path yields [{ events = []; lines = 0;
    error = Some { at_line = 0; _ } }]. *)

(** {1 Filtering} *)

type filter = {
  f_component : string option;
  f_min_level : Events.level option;
  f_shard : int option;
  f_run_id : string option;
  f_since : float option;  (** Inclusive lower bound on [ts]. *)
  f_until : float option;  (** Inclusive upper bound on [ts]. *)
}

val no_filter : filter
val matches : filter -> Events.t -> bool
val filter_events : filter -> Events.t list -> Events.t list

(** {1 Statistics} *)

type percentiles = {
  p_count : int;
  p50 : float;
  p95 : float;
  p99 : float;  (** Exact nearest-rank percentiles, not histogram bins. *)
}

val percentiles_of : float list -> percentiles option
(** [None] on the empty list. *)

type stats = {
  total : int;
  run_ids : string list;  (** Distinct, in order of first appearance. *)
  t_min : float;
  t_max : float;
  by_component : (string * int) list;  (** Sorted by component name. *)
  by_level : (Events.level * int) list;
  by_shard : (int * int) list;  (** Sorted by shard; -1 = main. *)
  epoch_overall : percentiles option;
      (** Wall-clock epoch handling durations reconstructed by pairing
          [epoch_open]/[epoch_close] events through their shared
          [span_id] (seconds). *)
  epoch_by_rank : (int * percentiles) list;
  crashes : int;
  recoveries : int;
  fallbacks : int;
  overflows : int;
  degradations : int;
  read_errors : int;
  barriers : int;
  critical_path_ms : float;
      (** Sum of the per-epoch [critical_path_ms] values the parallel
          engine journals at each barrier (see DESIGN.md §13); 0 when
          the run was sequential or the journal predates barrier
          events. *)
  timeline : (int * int) list;
      (** Events per whole second of journal time, sparse, sorted. *)
}

val stats_of : Events.t list -> stats

val render_stats : ?source:string -> ?error:error -> stats -> string
(** The [rma_race obs stats] text report. [source] names the journal in
    the header; [error] appends the truncation point when the read was
    partial. *)
