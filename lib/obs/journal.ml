module Json = Rma_util.Json

type error = { at_line : int; reason : string }

let error_to_string e =
  if e.at_line = 0 then e.reason else Printf.sprintf "line %d: %s" e.at_line e.reason

type read = { events : Events.t list; lines : int; error : error option }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let parse_line line =
  let* j = Json.of_string line in
  let* ts = field "ts" Json.to_float j in
  let* level_name = field "level" Json.to_str j in
  let* level =
    match Events.level_of_string level_name with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "unknown level %S" level_name)
  in
  let* component = field "component" Json.to_str j in
  let* run_id = field "run_id" Json.to_str j in
  let* shard = field "shard" Json.to_int j in
  let* span_id = field "span_id" Json.to_int j in
  let* kv_obj = field "kv" Json.to_obj j in
  let* kv =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match Json.to_str v with
        | Some s -> Ok ((k, s) :: acc)
        | None -> Error (Printf.sprintf "ill-typed kv value for %S" k))
      (Ok []) kv_obj
  in
  Ok { Events.ts; level; component; run_id; shard; span_id; kv = List.rev kv }

let read_channel ic =
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file -> { events = List.rev acc; lines = lineno - 1; error = None }
    | line -> (
        (* A flushed-but-empty trailing line is normal, not corruption. *)
        if String.trim line = "" then go acc (lineno + 1)
        else
          match parse_line line with
          | Ok ev -> go (ev :: acc) (lineno + 1)
          | Error reason ->
              { events = List.rev acc; lines = lineno; error = Some { at_line = lineno; reason } })
  in
  go [] 1

let read_file path =
  match open_in path with
  | exception Sys_error msg -> { events = []; lines = 0; error = Some { at_line = 0; reason = msg } }
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_channel ic)

(* ------------------------------------------------------------------ *)
(* Filtering                                                           *)
(* ------------------------------------------------------------------ *)

type filter = {
  f_component : string option;
  f_min_level : Events.level option;
  f_shard : int option;
  f_run_id : string option;
  f_since : float option;
  f_until : float option;
}

let no_filter =
  { f_component = None; f_min_level = None; f_shard = None; f_run_id = None;
    f_since = None; f_until = None }

let matches f (ev : Events.t) =
  let opt cond = function None -> true | Some v -> cond v in
  opt (String.equal ev.Events.component) f.f_component
  && opt (fun l -> Events.severity ev.Events.level >= Events.severity l) f.f_min_level
  && opt (Int.equal ev.Events.shard) f.f_shard
  && opt (String.equal ev.Events.run_id) f.f_run_id
  && opt (fun t -> ev.Events.ts >= t) f.f_since
  && opt (fun t -> ev.Events.ts <= t) f.f_until

let filter_events f events = List.filter (matches f) events

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type percentiles = { p_count : int; p50 : float; p95 : float; p99 : float }

let percentiles_of values =
  match values with
  | [] -> None
  | _ ->
      let a = Array.of_list values in
      Array.sort compare a;
      let n = Array.length a in
      (* Nearest-rank: the smallest value with at least q*n values at or
         below it. *)
      let at q = a.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))) in
      Some { p_count = n; p50 = at 0.5; p95 = at 0.95; p99 = at 0.99 }

type stats = {
  total : int;
  run_ids : string list;
  t_min : float;
  t_max : float;
  by_component : (string * int) list;
  by_level : (Events.level * int) list;
  by_shard : (int * int) list;
  epoch_overall : percentiles option;
  epoch_by_rank : (int * percentiles) list;
  crashes : int;
  recoveries : int;
  fallbacks : int;
  overflows : int;
  degradations : int;
  read_errors : int;
  barriers : int;
  critical_path_ms : float;
  timeline : (int * int) list;
}

let kv_find (ev : Events.t) key = List.assoc_opt key ev.Events.kv
let kind_of ev = kv_find ev "event"

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_bindings tbl cmp =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort (fun (a, _) (b, _) -> cmp a b)

let stats_of events =
  let by_component = Hashtbl.create 8 in
  let by_level = Hashtbl.create 4 in
  let by_shard = Hashtbl.create 8 in
  let timeline = Hashtbl.create 16 in
  let run_ids = ref [] in
  let t_min = ref infinity and t_max = ref neg_infinity in
  (* Epoch durations: an [epoch_open] parks its timestamp under the
     epoch span id; the [epoch_close] sharing that span id closes the
     pair. Span id 0 (journal written without spans) cannot be paired. *)
  let open_epochs : (int, float * int) Hashtbl.t = Hashtbl.create 32 in
  let durations = ref [] in
  let durations_by_rank : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let crashes = ref 0 and recoveries = ref 0 and fallbacks = ref 0 in
  let overflows = ref 0 and degradations = ref 0 and read_errors = ref 0 in
  let barriers = ref 0 and critical_ms = ref 0.0 in
  List.iter
    (fun (ev : Events.t) ->
      bump by_component ev.Events.component 1;
      bump by_level ev.Events.level 1;
      bump by_shard ev.Events.shard 1;
      bump timeline (int_of_float (Float.max 0.0 ev.Events.ts)) 1;
      if not (List.mem ev.Events.run_id !run_ids) then run_ids := ev.Events.run_id :: !run_ids;
      if ev.Events.ts < !t_min then t_min := ev.Events.ts;
      if ev.Events.ts > !t_max then t_max := ev.Events.ts;
      let rank = Option.bind (kv_find ev "rank") int_of_string_opt in
      (match kind_of ev with
      | Some "epoch_open" when ev.Events.span_id <> 0 ->
          Hashtbl.replace open_epochs ev.Events.span_id
            (ev.Events.ts, Option.value ~default:(-1) rank)
      | Some "epoch_close" when ev.Events.span_id <> 0 -> (
          match Hashtbl.find_opt open_epochs ev.Events.span_id with
          | None -> ()
          | Some (t0, rank) ->
              Hashtbl.remove open_epochs ev.Events.span_id;
              let d = Float.max 0.0 (ev.Events.ts -. t0) in
              durations := d :: !durations;
              let per =
                match Hashtbl.find_opt durations_by_rank rank with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.replace durations_by_rank rank l;
                    l
              in
              per := d :: !per)
      | Some "worker_crash" -> incr crashes
      | Some "shard_recovery" -> incr recoveries
      | Some "sequential_fallback" -> incr fallbacks
      | Some "queue_overflow" -> incr overflows
      | Some "budget_degradation" -> incr degradations
      | Some "read_error" -> incr read_errors
      | Some "barrier" ->
          incr barriers;
          (match Option.bind (kv_find ev "critical_path_ms") float_of_string_opt with
          | Some ms -> critical_ms := !critical_ms +. ms
          | None -> ())
      | _ -> ()))
    events;
  {
    total = List.length events;
    run_ids = List.rev !run_ids;
    t_min = (if !t_min = infinity then 0.0 else !t_min);
    t_max = (if !t_max = neg_infinity then 0.0 else !t_max);
    by_component = sorted_bindings by_component String.compare;
    by_level = sorted_bindings by_level (fun a b -> compare (Events.severity a) (Events.severity b));
    by_shard = sorted_bindings by_shard Int.compare;
    epoch_overall = percentiles_of !durations;
    epoch_by_rank =
      sorted_bindings durations_by_rank Int.compare
      |> List.filter_map (fun (rank, l) ->
             Option.map (fun p -> (rank, p)) (percentiles_of !l));
    crashes = !crashes;
    recoveries = !recoveries;
    fallbacks = !fallbacks;
    overflows = !overflows;
    degradations = !degradations;
    read_errors = !read_errors;
    barriers = !barriers;
    critical_path_ms = !critical_ms;
    timeline = sorted_bindings timeline Int.compare;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_stats ?source ?error s =
  let module Table = Rma_util.Text_table in
  let buf = Buffer.create 2048 in
  let say fmt = Printf.ksprintf (fun str -> Buffer.add_string buf str; Buffer.add_char buf '\n') fmt in
  say "journal stats%s" (match source with Some p -> ": " ^ p | None -> "");
  say "  events:   %d%s" s.total
    (if s.total = 0 then "" else Printf.sprintf " over %.3f s" (Float.max 0.0 (s.t_max -. s.t_min)));
  say "  run ids:  %s" (if s.run_ids = [] then "(none)" else String.concat ", " s.run_ids);
  (match error with
  | Some e -> say "  TRUNCATED: journal unreadable past %s" (error_to_string e)
  | None -> ());
  if s.by_component <> [] then begin
    let t =
      Table.create ~title:"Events by component"
        ~columns:[ ("Component", Table.Left); ("Events", Table.Right) ]
        ()
    in
    List.iter (fun (c, n) -> Table.add_row t [ c; string_of_int n ]) s.by_component;
    Buffer.add_string buf (Table.render t)
  end;
  if s.by_shard <> [] then begin
    let t =
      Table.create ~title:"Events by shard (-1 = main thread)"
        ~columns:[ ("Shard", Table.Right); ("Events", Table.Right) ]
        ()
    in
    List.iter (fun (sh, n) -> Table.add_row t [ string_of_int sh; string_of_int n ]) s.by_shard;
    Buffer.add_string buf (Table.render t)
  end;
  let pct_row label p =
    [
      label; string_of_int p.p_count;
      Printf.sprintf "%.3f" (p.p50 *. 1000.0);
      Printf.sprintf "%.3f" (p.p95 *. 1000.0);
      Printf.sprintf "%.3f" (p.p99 *. 1000.0);
    ]
  in
  (match s.epoch_overall with
  | None -> say "  epochs:   none reconstructed (journal below debug level, or span ids absent)"
  | Some overall ->
      let t =
        Table.create ~title:"Epoch handling durations from span-id-paired open/close (ms)"
          ~columns:
            [ ("Rank", Table.Left); ("Epochs", Table.Right); ("p50", Table.Right);
              ("p95", Table.Right); ("p99", Table.Right) ]
          ()
      in
      Table.add_row t (pct_row "all" overall);
      List.iter
        (fun (rank, p) -> Table.add_row t (pct_row (string_of_int rank) p))
        s.epoch_by_rank;
      Buffer.add_string buf (Table.render t));
  let t =
    Table.create ~title:"Faults and degradations"
      ~columns:[ ("Kind", Table.Left); ("Count", Table.Right) ]
      ()
  in
  List.iter
    (fun (k, n) -> Table.add_row t [ k; string_of_int n ])
    [
      ("worker crashes", s.crashes); ("shard recoveries", s.recoveries);
      ("sequential fallbacks", s.fallbacks); ("queue overflows", s.overflows);
      ("budget degradations", s.degradations); ("codec read errors", s.read_errors);
    ];
  Buffer.add_string buf (Table.render t);
  if s.barriers > 0 then
    say "  critical path: %.3f ms over %d epoch barriers (longest shard chain per epoch, \
         DESIGN.md \xc2\xa713)"
      s.critical_path_ms s.barriers
  else say "  critical path: no barrier events (sequential run, or journal above debug level)";
  if s.timeline <> [] then begin
    let t =
      Table.create ~title:"Throughput timeline (events per journal second)"
        ~columns:[ ("Second", Table.Right); ("Events", Table.Right) ]
        ()
    in
    List.iter
      (fun (sec, n) -> Table.add_row t [ string_of_int sec; string_of_int n ])
      s.timeline;
    Buffer.add_string buf (Table.render t)
  end;
  Buffer.contents buf
