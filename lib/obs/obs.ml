module Timer = Rma_util.Timer

type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

type span = {
  sp_id : int;
  sp_name : string;
  sp_cat : string;
  sp_pid : int;
  sp_tid : int;
  sp_t0 : float;
  mutable sp_t1 : float;
  mutable sp_args : (string * string) list;
  mutable sp_trace_id : int;
  mutable sp_parent_id : int;
}

let enabled = ref false
let trace_epoch = ref 0.0

(* The registry tables are written on creation only (find-or-register,
   normally at module init) but read by the telemetry server from a
   background domain; the mutex covers exactly those two sides. Metric
   mutation (c_value, bucket counts) stays lock-free: OCaml int and
   pointer stores are atomic, so a concurrent reader sees a slightly
   stale value, never a torn one. *)
let registry_mu = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32
let categories : (string, Timer.accumulator) Hashtbl.t = Hashtbl.create 8

let spans_rev : span list ref = ref []
let span_count = ref 0
let span_cap = ref 1_000_000
let keep_one_in = ref 1
let span_seq = ref 0
let next_id = ref 0
let sim_pid_current = ref 2
let sim_runs = ref 0

(* Span/trace ids share one sequence so a flow id can never collide
   with a span id; 0 is reserved for "none". *)
let fresh_id () =
  next_id := !next_id + 1;
  !next_id

let wall_pid = 1
let sim_pid () = !sim_pid_current

let begin_sim_run () =
  if !enabled then begin
    sim_runs := !sim_runs + 1;
    (* Pid 2 for the first run so single-run traces stay tidy. *)
    sim_pid_current := 1 + !sim_runs
  end

let enable () =
  if not !enabled then begin
    enabled := true;
    if !trace_epoch = 0.0 then trace_epoch := Timer.now ()
  end

let disable () = enabled := false
let is_enabled () = !enabled
let rel_time t = t -. !trace_epoch

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges;
  Hashtbl.iter (fun _ h -> Histogram.reset h) histograms;
  Hashtbl.iter (fun _ acc -> Timer.reset acc) categories;
  spans_rev := [];
  span_count := 0;
  span_seq := 0;
  next_id := 0;
  sim_pid_current := 2;
  sim_runs := 0;
  trace_epoch := Timer.now ()

let registered find create =
  Mutex.lock registry_mu;
  let v = match find () with Some v -> v | None -> create () in
  Mutex.unlock registry_mu;
  v

let counter ?(help = "") name =
  registered
    (fun () -> Hashtbl.find_opt counters name)
    (fun () ->
      let c = { c_name = name; c_help = help; c_value = 0 } in
      Hashtbl.replace counters name c;
      c)

let incr c = if !enabled then c.c_value <- c.c_value + 1
let add c n = if !enabled then c.c_value <- c.c_value + n

let gauge ?(help = "") name =
  registered
    (fun () -> Hashtbl.find_opt gauges name)
    (fun () ->
      let g = { g_name = name; g_help = help; g_value = 0.0 } in
      Hashtbl.replace gauges name g;
      g)

let set_gauge g v = if !enabled then g.g_value <- v

let histogram ?(help = "") ?(unit_ = "s") name =
  registered
    (fun () -> Hashtbl.find_opt histograms name)
    (fun () ->
      let h = Histogram.create ~help ~unit_ name in
      Hashtbl.replace histograms name h;
      h)

let observe h v = if !enabled then Histogram.observe h v
let observe_int h n = if !enabled then Histogram.observe h (float_of_int n)

let set_sampling ~keep_one_in:n = keep_one_in := max 1 n
let set_span_cap n = span_cap := max 0 n

let record_span sp =
  if !span_count < !span_cap then begin
    spans_rev := sp :: !spans_rev;
    span_count := !span_count + 1
  end

let start_span ?(cat = "span") ?(args = []) ?(trace_id = 0) ?(parent_id = 0) ~pid ~tid ?at name =
  if not !enabled then None
  else begin
    span_seq := !span_seq + 1;
    if !keep_one_in > 1 && !span_seq mod !keep_one_in <> 0 then None
    else if !span_count >= !span_cap then None
    else begin
      let t0 = match at with Some t -> t | None -> rel_time (Timer.now ()) in
      Some { sp_id = fresh_id (); sp_name = name; sp_cat = cat; sp_pid = pid; sp_tid = tid;
             sp_t0 = t0; sp_t1 = Float.nan; sp_args = args; sp_trace_id = trace_id;
             sp_parent_id = parent_id }
    end
  end

let finish_span ?at ?(args = []) = function
  | None -> ()
  | Some sp ->
      sp.sp_t1 <- (match at with Some t -> t | None -> rel_time (Timer.now ()));
      if args <> [] then sp.sp_args <- sp.sp_args @ args;
      record_span sp

let emit_span ?(cat = "span") ?(args = []) ?(trace_id = 0) ?(parent_id = 0) ~pid ~tid ~t0 ~t1 name =
  if !enabled then
    record_span { sp_id = fresh_id (); sp_name = name; sp_cat = cat; sp_pid = pid; sp_tid = tid;
                  sp_t0 = t0; sp_t1 = t1; sp_args = args; sp_trace_id = trace_id;
                  sp_parent_id = parent_id }

let span_id = function None -> 0 | Some sp -> sp.sp_id

let category_acc cat =
  match Hashtbl.find_opt categories cat with
  | Some acc -> acc
  | None ->
      let acc = Timer.accumulator () in
      Hashtbl.replace categories cat acc;
      acc

let category_seconds cat =
  match Hashtbl.find_opt categories cat with Some acc -> Timer.elapsed acc | None -> 0.0

let time_span ?(cat = "phase") ?(args = []) ?(pid = wall_pid) ?(tid = 0) name f =
  let t0 = Timer.now () in
  let finish () =
    let t1 = Timer.now () in
    if !enabled then begin
      Timer.add (category_acc cat) (t1 -. t0);
      record_span { sp_id = fresh_id (); sp_name = name; sp_cat = cat; sp_pid = pid; sp_tid = tid;
                    sp_t0 = rel_time t0; sp_t1 = rel_time t1; sp_args = args; sp_trace_id = 0;
                    sp_parent_id = 0 }
    end;
    t1 -. t0
  in
  match f () with
  | result -> (result, finish ())
  | exception e ->
      ignore (finish ());
      raise e

let snapshot fold =
  Mutex.lock registry_mu;
  let l = fold () in
  Mutex.unlock registry_mu;
  l

let all_counters () =
  snapshot (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) counters [])
  |> List.sort (fun a b -> String.compare a.c_name b.c_name)

let all_gauges () =
  snapshot (fun () -> Hashtbl.fold (fun _ g acc -> g :: acc) gauges [])
  |> List.sort (fun a b -> String.compare a.g_name b.g_name)

let all_histograms () =
  snapshot (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) histograms [])
  |> List.sort (fun a b -> String.compare (Histogram.name a) (Histogram.name b))

let all_spans () =
  List.sort
    (fun a b -> compare (a.sp_pid, a.sp_tid, a.sp_t0) (b.sp_pid, b.sp_tid, b.sp_t0))
    !spans_rev

let all_categories () =
  Hashtbl.fold (fun cat acc l -> (cat, Timer.elapsed acc) :: l) categories []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
