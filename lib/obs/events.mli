(** Structured event journal: JSON-lines lifecycle records from the
    runtime's load-bearing seams — analyzer epoch open/close, governor
    budget degradation, parallel-shard spawn/crash/recovery/overflow,
    and codec read errors.

    Each record is one minified JSON object with a {e stable field
    order}: [{ts; level; component; run_id; shard; span_id; kv}].
    [ts] is trace-relative seconds (same clock as {!Obs} spans),
    [run_id] correlates every event of one process run, [shard] is the
    parallel shard the event concerns (-1 when not shard-scoped),
    [span_id] links the event to the {!Obs.span} covering it (0 when
    none), and [kv] carries event-specific string pairs.

    Like the rest of {!Obs}, emission is a no-op until {!Obs.enable}
    runs; below that gate a per-event level filter applies. With a file
    sink set ([--obs-events FILE] / [RMA_OBS_EVENTS]) lines are
    appended and flushed as they happen; without one they land in a
    bounded in-memory ring readable via {!recent} (and served by the
    telemetry endpoint's [/events]). Emission is safe from any domain. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option
val severity : level -> int

type t = {
  ts : float;
  level : level;
  component : string;
  run_id : string;
  shard : int;
  span_id : int;
  kv : (string * string) list;
}

val set_level : level -> unit
(** Minimum level kept (default [Info]; [Debug] admits per-epoch
    events). *)

val level : unit -> level

val set_sink : string -> unit
(** Route events to a fresh JSON-lines file (truncates), replacing any
    previous sink. *)

val close : unit -> unit
(** Close the file sink (if any) and fall back to the ring. *)

val sink_file : unit -> string option

val set_ring_cap : int -> unit
(** Resize the no-sink ring (default 4096 events); drops buffered
    events. *)

val clear : unit -> unit
(** Drop buffered ring events and zero {!emitted_total}. *)

val set_run_id : string -> unit
(** Override the process-generated run id (tests pin it for golden
    journals). *)

val with_run_id : string -> (unit -> 'a) -> 'a
(** Run the thunk with the given run id current, restoring the previous
    one afterwards (exception-safe). The serve daemon brackets each
    session's processing slice with this so interleaved sessions label
    their journal records correctly; events emitted by worker domains
    mid-slice pick up the slice's id, which is the intended attribution
    (workers only run work submitted by the current slice). *)

val run_id : unit -> string
(** The current run id, generating one on first use. *)

val set_current_shard : int -> unit
(** Stamp the calling domain's shard identity ([Rma_par] workers call
    this once per spawn); -1 = not a shard. *)

val current_shard : unit -> int

val emit :
  ?shard:int -> ?span_id:int -> ?kv:(string * string) list -> level -> string -> unit
(** [emit lvl component] records one event; [shard] defaults to the
    calling domain's {!current_shard}. No-op when {!Obs.is_enabled} is
    false or [lvl] is below {!level}. *)

val recent : unit -> t list
(** Buffered ring events, oldest first (empty while a sink is set). *)

val emitted_total : unit -> int
(** Events emitted (sink or ring) since start/{!clear}. *)

val to_json : t -> Rma_util.Json.t
val line : t -> string
(** The minified JSON-lines form (no trailing newline). *)

val configure_from_env : unit -> unit
(** Apply [RMA_OBS_EVENTS] (enables {!Obs} and sets the sink) and
    [RMA_OBS_LEVEL]. *)
