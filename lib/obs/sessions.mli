(** Registry of logical runs multiplexed inside one process.

    Historically one process was one run: {!Events.run_id} named it and
    [/metrics] exposed it as the single [rma_run_info] series. The
    [serve] daemon breaks that assumption — every client session is its
    own run with its own run_id threaded through the journal. Session
    owners register here, and {!Prometheus.to_text} renders one
    [rma_session_info{run_id,session,state}] series per entry, so the
    [--obs-serve] endpoint and the daemon coexist instead of the last
    writer clobbering the label.

    Thread-safe (one internal mutex): the daemon registers from the
    main thread while the telemetry endpoint snapshots from its serving
    domain. *)

(** Lifecycle of a registered run. [Closed reason] keeps the entry
    visible in a bounded recent-closures window (the reason is rendered
    into the state label, e.g. ["closed:completed"]). *)
type state = Queued | Active | Closed of string

val state_label : state -> string
(** ["queued"], ["active"], or ["closed:<reason>"]. *)

val register : run_id:string -> session:string -> state:state -> unit
(** Add (or replace) the entry for [run_id]. [session] is the
    client-chosen session name. *)

val set_state : run_id:string -> state -> unit
(** Update an entry's state. Transitioning to [Closed] moves it from
    the live table into the bounded recent-closures window (capacity
    64, oldest evicted). Unknown run ids are ignored. *)

val active_count : unit -> int
(** Entries currently in state [Active]. *)

val registered_count : unit -> int
(** Live (non-closed) entries — the leak-check number: zero once every
    session has drained. *)

val snapshot : unit -> (string * string * string) list
(** Every visible entry as [(run_id, session, state_label)]: live ones
    sorted by run_id, then recent closures oldest-first. *)

val reset : unit -> unit
(** Drop everything (tests). *)
