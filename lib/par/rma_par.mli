(** Sharded parallel execution engine for the analyzers.

    The paper's detector state is partitioned by (rank, window) key —
    independent interval trees that never interact except through epoch
    synchronisation (§3, Figure 3). This module exploits that: an engine
    owns [jobs] shards, each shard is pinned to one OCaml 5 domain of a
    process-global worker pool, and work submitted for one shard runs on
    that shard's domain in submission order (a bounded FIFO queue per
    shard). Barriers drain every queue, aligning with the analyzer's
    epoch events.

    Determinism contract: a key always maps to the same shard
    ({!shard_of}), a shard's tasks run in submission order on a single
    domain, and {!barrier} completes only when every submitted task has
    run — so per-store operation sequences are exactly the sequential
    ones, and any cross-shard result (e.g. race reports) can be restored
    to the sequential order by tagging submissions on the caller's side.

    Thread discipline: {!submit}, {!barrier}, {!take_work_seconds} and
    the accessors are caller-thread only (the simulator's scheduler is
    single-threaded); task closures run on worker domains and must touch
    only shard-private state. All Obs metrics ([par.shard_inserts],
    [par.queue_depth], [par.barrier_wait_ns], [par.barriers]) are
    recorded on the calling thread — the Obs registry is not
    thread-safe, so tasks must never log to it.

    {b Fault tolerance} (DESIGN.md §11): when an {!Rma_fault} plan is
    installed, every {!submit} passes the [Worker_crash] and
    [Queue_overflow] injection points {e on the calling thread} — which
    is what keeps the fault schedule deterministic under any worker
    interleaving. A crashed shard journals its unexecuted tasks in
    submission order; the next {!barrier} restarts the shard and
    replays the journal, retrying up to the plan's [max_retries]
    (waiting [backoff] seconds between attempts) before degrading the
    remaining journal to inline sequential execution. An overflowed
    submit degrades that single task to inline execution after the
    shard drains. Every degradation path preserves per-shard submission
    order and runs each task exactly once, so engine-level faults are
    always verdict-preserving — recoveries are visible on the
    [par.worker_crashes], [par.shard_recoveries],
    [par.recovery_fallbacks] and [par.queue_overflows] Obs counters, in
    {!recovery_stats}, and as structured {!Rma_obs.Events} journal
    records (component ["par"], carrying the fault site and ordinal so
    an occurrence replays from the plan seed alone).

    {b Causal tracing}: each {!barrier} records an ["epoch barrier"]
    span originating a flow id, and each shard that ran tasks in the
    following inter-barrier window records one ["shard work"] span
    (wall pid, tid = shard + 1) bound to that id — the Chrome-trace
    exporter renders the pair as an arrow from the barrier that
    scheduled the work to the shard that ran it, making a slow barrier
    attributable to its slowest shard. Worker domains also stamp
    {!Rma_obs.Events.set_current_shard} so events emitted from inside
    tasks carry their shard. *)

type t

val max_jobs : int
(** Hard cap on worker domains (the pool is process-global and
    append-only, so it is bounded far below the OCaml runtime's domain
    limit). Requests beyond it are clamped. *)

val default_jobs : unit -> int
(** Process-wide default shard count used by {!Rma_analyzer.create}
    when [?jobs] is omitted. Initialised from the [RMA_JOBS]
    environment variable (clamped to [1 .. max_jobs]; unset, empty or
    unparsable means 1 = sequential). *)

val set_default_jobs : int -> unit
(** Override the process-wide default (the CLI's [--jobs]). Clamped to
    [1 .. max_jobs]. *)

val pool_size : unit -> int
(** Worker domains spawned into the process-global pool so far. The
    pool is append-only and bounded by {!max_jobs}, so a long-running
    service can assert it does not leak domains across sessions: the
    value may grow up to the largest [jobs] ever requested and must
    then stay constant. *)

val create : ?jobs:int -> ?queue_capacity:int -> unit -> t
(** An engine with [jobs] shards (default {!default_jobs}, clamped to
    [1 .. max_jobs]) and at most [queue_capacity] (default 1024,
    minimum 1) in-flight tasks per shard. Worker domains are lazily
    spawned into the global pool and reused by every engine — creating
    engines is cheap and never leaks domains. *)

val jobs : t -> int

val shard_of : t -> space:int -> win:int -> int
(** Deterministic shard for a (rank address space, window) store key:
    depends only on the key and [jobs t]. *)

val submit : t -> shard:int -> (unit -> unit) -> unit
(** Enqueue a task on the shard's domain. Blocks the calling thread
    while the shard already has [queue_capacity] tasks in flight
    (back-pressure); never blocks a worker, so barriers cannot
    deadlock. A task that raises stashes its exception for the next
    {!barrier} instead of killing the worker. Under an installed
    {!Rma_fault} plan this is also the crash/overflow injection point
    (see the module preamble); tasks journaled by a crashed shard run
    at the next {!barrier}. *)

val barrier : t -> unit
(** Wait until every task submitted to this engine has completed —
    recovering crashed shards and replaying their journals first — then
    re-raise the first stashed task exception, if any. Records the wait
    in [par.barrier_wait_ns]. *)

val pending : t -> int
(** Tasks submitted but not yet completed (diagnostic; caller thread).
    Journaled tasks of a crashed shard are not counted — they run at
    the next {!barrier}. *)

type recovery_stats = {
  crashes : int;  (** Injected worker crashes (including during replay). *)
  recoveries : int;  (** Successful restart-and-replay cycles. *)
  fallbacks : int;  (** Shards degraded to inline sequential execution. *)
  overflows : int;  (** Submits degraded to inline execution by queue overflow. *)
}

val recovery_stats : t -> recovery_stats
(** Cumulative fault-recovery counters for this engine (caller
    thread); all zero when no fault plan ever fired. *)

val critical_path_seconds : t -> float
(** Accumulated critical path of this engine's epochs: at each
    {!barrier}, the longest single-shard busy window of the closing
    inter-barrier interval plus the barrier overhead after it (drain
    wakeups, crash recovery, journal replay) — the chain a perfectly
    parallel epoch cannot beat (DESIGN.md §13). Accrued whether or not
    {!Rma_obs.Obs} is enabled; caller thread. *)

val critical_path_total : unit -> float
(** Process-wide sum of {!critical_path_seconds} across every engine —
    the harness reads deltas of this around a workload so attribution
    works even when the workload creates its engines internally. *)

val reset_critical_path_total : unit -> unit

val current_flow_id : t -> int
(** The causal-flow id minted by this engine's latest barrier span — the
    id the next window's ["shard work"] spans bind to; 0 before the
    first barrier. Exposed so external attribution (the [obs stats]
    critical-path walk) can join journal events to the trace flow. *)

val take_work_seconds : t -> float
(** Critical-path cost model: the maximum over shards of wall-clock
    seconds spent running this engine's tasks since the previous take,
    and reset the accumulators. Meaningful only right after {!barrier}.
    With [jobs] balanced shards this models the per-event analysis time
    of a run whose detector work really were spread over [jobs] cores —
    which a single simulator process cannot measure directly — and is
    what {!Mpi_sim.Config.t.analysis_self_timed} charges to the
    simulated clocks. *)
