module Obs = Rma_obs.Obs
module Events = Rma_obs.Events

let obs_shard_inserts =
  Obs.counter ~help:"Work items routed to shard queues" "par.shard_inserts"

let obs_queue_depth =
  Obs.histogram ~unit_:"items" ~help:"Shard queue depth sampled at each submit" "par.queue_depth"

let obs_barrier_wait_ns =
  Obs.histogram ~unit_:"ns" ~help:"Wall time the caller waited at each epoch barrier"
    "par.barrier_wait_ns"

let obs_barriers = Obs.counter ~help:"Epoch barriers completed" "par.barriers"

let obs_worker_crashes =
  Obs.counter ~help:"Injected shard-worker crashes (Rma_fault Worker_crash site)"
    "par.worker_crashes"

let obs_shard_recoveries =
  Obs.counter ~help:"Crashed shards successfully restarted and their journals replayed"
    "par.shard_recoveries"

let obs_recovery_fallbacks =
  Obs.counter ~help:"Shards degraded to inline sequential execution after exhausting retries"
    "par.recovery_fallbacks"

let obs_queue_overflows =
  Obs.counter ~help:"Injected queue overflows degraded to inline execution"
    "par.queue_overflows"

let obs_critical_path_ms =
  Obs.gauge
    ~help:"Accumulated critical path: per-barrier longest shard chain plus barrier overhead (ms)"
    "par.critical_path_ms"

(* Process-wide critical-path accumulator (caller thread only, like the
   engines themselves): the harness reads deltas of this around a
   workload so attribution works even when the workload creates its
   engines internally. *)
let critical_total = ref 0.0
let critical_path_total () = !critical_total
let reset_critical_path_total () = critical_total := 0.0

(* The pool is deliberately small: the analyzer's shards are coarse
   (whole interval trees), and the OCaml runtime caps live domains, so a
   process must never spawn domains per engine. *)
let max_jobs = 8

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let env_jobs () =
  match Sys.getenv_opt "RMA_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with Some j -> clamp_jobs j | None -> 1)

let default = ref (env_jobs ())
let default_jobs () = !default
let set_default_jobs j = default := clamp_jobs j

(* ------------------------------------------------------------------ *)
(* Global worker pool: one FIFO queue + one domain per worker slot,     *)
(* spawned on first use and reused by every engine. Workers never       *)
(* terminate; they block on their queue's condition variable, which     *)
(* releases the domain lock, so idle workers cost nothing and never     *)
(* stall the GC.                                                        *)
(* ------------------------------------------------------------------ *)

type worker = {
  w_queue : (unit -> unit) Queue.t;
  w_mu : Mutex.t;
  w_nonempty : Condition.t;
}

let workers =
  Array.init max_jobs (fun _ ->
      { w_queue = Queue.create (); w_mu = Mutex.create (); w_nonempty = Condition.create () })

let spawn_mu = Mutex.create ()
let spawned = ref 0

let worker_loop w =
  while true do
    Mutex.lock w.w_mu;
    while Queue.is_empty w.w_queue do
      Condition.wait w.w_nonempty w.w_mu
    done;
    let task = Queue.pop w.w_queue in
    Mutex.unlock w.w_mu;
    task ()
  done

let pool_size () = !spawned

let ensure_workers n =
  if !spawned < n then begin
    Mutex.lock spawn_mu;
    while !spawned < n do
      let idx = !spawned in
      let w = workers.(idx) in
      ignore
        (Domain.spawn (fun () ->
             (* Stamp the domain's shard identity so events emitted from
                inside tasks (governor degradation, budget exhaustion)
                carry the right shard without plumbing. *)
             Events.set_current_shard idx;
             worker_loop w));
      Events.emit ~shard:idx
        ~kv:[ ("event", "worker_spawn"); ("worker", string_of_int idx) ]
        Events.Debug "par";
      incr spawned
    done;
    Mutex.unlock spawn_mu
  end

(* ------------------------------------------------------------------ *)
(* Engines                                                              *)
(* ------------------------------------------------------------------ *)

type shard = {
  mutable inflight : int;  (* guarded by the engine mutex *)
  mutable work_seconds : float;
      (* Written only by the shard's worker, between tasks; read by the
         caller after a barrier. Both sides order their access through
         the engine mutex (the worker's completion decrement, the
         caller's barrier wait), so no torn or stale reads. *)
  mutable crashed : bool;
      (* Caller-thread only: an injected Worker_crash was decided at a
         submit boundary. While set, new tasks go to the journal instead
         of the worker; the next barrier replays them. *)
  journal : (unit -> unit) Queue.t;
      (* Caller-thread only: tasks submitted at or after the crash, in
         submission order — exactly the work queued since the last
         barrier that the dead worker never ran. *)
  mutable win_t0 : float;
      (* Absolute start of the first task and end of the last task this
         shard ran since the previous barrier (0.0 = no work yet).
         Written like work_seconds (worker, between tasks; ordered
         through the engine mutex), read and reset by the caller at the
         barrier to emit one "shard work" span per inter-barrier
         window. *)
  mutable win_t1 : float;
}

type recovery_stats = { crashes : int; recoveries : int; fallbacks : int; overflows : int }

type t = {
  n_jobs : int;
  queue_capacity : int;
  mu : Mutex.t;
  changed : Condition.t;  (* any inflight decrement; pending reaching 0 *)
  shards : shard array;
  mutable pend : int;
  mutable failure : exn option;
  mutable crashes : int;  (* caller-thread only, like the rest below *)
  mutable recoveries : int;
  mutable fallbacks : int;
  mutable overflows : int;
  mutable sched_trace : int;
      (* Causal-flow id minted by the latest barrier span: shard work
         spans of the following inter-barrier window bind to it, which
         is what draws barrier→shard arrows in the Chrome trace. 0
         until the first barrier. *)
  mutable critical_seconds : float;
      (* Caller-thread only: sum over this engine's barriers of the
         longest shard busy window plus the barrier overhead after it
         (see DESIGN.md §13). *)
}

let create ?jobs ?(queue_capacity = 1024) () =
  let n_jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  ensure_workers n_jobs;
  {
    n_jobs;
    queue_capacity = max 1 queue_capacity;
    mu = Mutex.create ();
    changed = Condition.create ();
    shards =
      Array.init n_jobs (fun _ ->
          {
            inflight = 0;
            work_seconds = 0.0;
            crashed = false;
            journal = Queue.create ();
            win_t0 = 0.0;
            win_t1 = 0.0;
          });
    pend = 0;
    failure = None;
    crashes = 0;
    recoveries = 0;
    fallbacks = 0;
    overflows = 0;
    sched_trace = 0;
    critical_seconds = 0.0;
  }

let jobs t = t.n_jobs

let shard_of t ~space ~win =
  (* Fibonacci-ish mixing keeps consecutive windows of one rank from
     piling onto one shard; the result depends only on (key, jobs). *)
  let h = (space * 0x9e3779b1) lxor (win * 0x85ebca77) in
  (h land max_int) mod t.n_jobs

let dispatch t ~shard f =
  let sh = t.shards.(shard) in
  Mutex.lock t.mu;
  while sh.inflight >= t.queue_capacity do
    Condition.wait t.changed t.mu
  done;
  sh.inflight <- sh.inflight + 1;
  t.pend <- t.pend + 1;
  let depth = sh.inflight in
  Mutex.unlock t.mu;
  if Obs.is_enabled () then begin
    Obs.incr obs_shard_inserts;
    Obs.observe_int obs_queue_depth depth
  end;
  let task () =
    let t0 = Rma_util.Timer.now () in
    let err = (try f (); None with e -> Some e) in
    let t1 = Rma_util.Timer.now () in
    sh.work_seconds <- sh.work_seconds +. (t1 -. t0);
    if sh.win_t0 = 0.0 then sh.win_t0 <- t0;
    sh.win_t1 <- t1;
    Mutex.lock t.mu;
    (match (err, t.failure) with Some e, None -> t.failure <- Some e | _ -> ());
    sh.inflight <- sh.inflight - 1;
    t.pend <- t.pend - 1;
    Condition.broadcast t.changed;
    Mutex.unlock t.mu
  in
  let w = workers.(shard) in
  Mutex.lock w.w_mu;
  Queue.push task w.w_queue;
  Condition.signal w.w_nonempty;
  Mutex.unlock w.w_mu

(* Run a task on the calling thread with worker semantics: time is
   charged to the shard's accumulator and an exception is stashed for
   the next barrier rather than raised at the submit site. *)
let run_inline t sh f =
  let t0 = Rma_util.Timer.now () in
  let err = (try f (); None with e -> Some e) in
  let t1 = Rma_util.Timer.now () in
  sh.work_seconds <- sh.work_seconds +. (t1 -. t0);
  if sh.win_t0 = 0.0 then sh.win_t0 <- t0;
  sh.win_t1 <- t1;
  match (err, t.failure) with Some e, None -> t.failure <- Some e | _ -> ()

let wait_shard_idle t sh =
  Mutex.lock t.mu;
  while sh.inflight > 0 do
    Condition.wait t.changed t.mu
  done;
  Mutex.unlock t.mu

let drain t =
  Mutex.lock t.mu;
  while t.pend > 0 do
    Condition.wait t.changed t.mu
  done;
  Mutex.unlock t.mu

let crash_shard t ~shard sh f =
  sh.crashed <- true;
  t.crashes <- t.crashes + 1;
  Obs.incr obs_worker_crashes;
  (* The ordinal that produced this crash is the one the fire call just
     consumed; with the plan seed — journaled alongside it — the
     coordinates replay the fault exactly ([rma_race obs replay]). *)
  let seed =
    match Rma_fault.plan () with Some p -> p.Rma_fault.Plan.seed | None -> 0
  in
  Events.emit ~shard
    ~kv:
      [
        ("event", "worker_crash");
        ("site", Rma_fault.site_name Rma_fault.Worker_crash);
        ("ordinal", string_of_int (Rma_fault.ordinal Rma_fault.Worker_crash - 1));
        ("seed", string_of_int seed);
      ]
    Events.Warn "par";
  Queue.push f sh.journal

let submit t ~shard f =
  let sh = t.shards.(shard) in
  if sh.crashed then Queue.push f sh.journal
  else if not (Rma_fault.active ()) then dispatch t ~shard f
  else if Rma_fault.fire Rma_fault.Worker_crash then crash_shard t ~shard sh f
  else if Rma_fault.fire Rma_fault.Queue_overflow then begin
    (* Overflow degrades this one task to inline execution; draining the
       shard first preserves the per-shard submission order. *)
    t.overflows <- t.overflows + 1;
    Obs.incr obs_queue_overflows;
    Events.emit ~shard
      ~kv:
        [
          ("event", "queue_overflow");
          ("site", Rma_fault.site_name Rma_fault.Queue_overflow);
          ("ordinal", string_of_int (Rma_fault.ordinal Rma_fault.Queue_overflow - 1));
        ]
      Events.Warn "par";
    wait_shard_idle t sh;
    run_inline t sh f
  end
  else dispatch t ~shard f

(* Busy-wait backoff: the engine has no Unix dependency and the delays
   in a fault plan are tiny test knobs, not production sleeps. *)
let backoff_wait seconds =
  if seconds > 0.0 then begin
    let until = Rma_util.Timer.now () +. seconds in
    while Rma_util.Timer.now () < until do
      Domain.cpu_relax ()
    done
  end

(* Restart every crashed shard and replay its journal, retrying up to
   the plan's [max_retries]; replayed submissions pass through the
   Worker_crash injection point again, so a replay can deterministically
   re-crash. Exhausted retries run the remaining journal inline on the
   calling thread (sequential degrade) — analysis always completes, and
   because the journal preserves submission order the verdicts are the
   sequential ones either way. Caller thread only, called at barriers. *)
let recover t =
  let plan = match Rma_fault.plan () with Some p -> p | None -> Rma_fault.Plan.default in
  Array.iteri
    (fun shard sh ->
      if sh.crashed then begin
        let attempts = ref 0 in
        while sh.crashed && !attempts < plan.Rma_fault.Plan.max_retries do
          incr attempts;
          backoff_wait plan.Rma_fault.Plan.backoff;
          sh.crashed <- false;
          let replay = Queue.create () in
          Queue.transfer sh.journal replay;
          Queue.iter
            (fun f ->
              if sh.crashed then Queue.push f sh.journal
              else if Rma_fault.fire Rma_fault.Worker_crash then crash_shard t ~shard sh f
              else dispatch t ~shard f)
            replay;
          drain t;
          if not sh.crashed then begin
            t.recoveries <- t.recoveries + 1;
            Obs.incr obs_shard_recoveries;
            Events.emit ~shard
              ~kv:[ ("event", "shard_recovery"); ("attempts", string_of_int !attempts) ]
              Events.Info "par"
          end
        done;
        if sh.crashed then begin
          (* Sequential fallback: no more injection, the work must land. *)
          sh.crashed <- false;
          t.fallbacks <- t.fallbacks + 1;
          Obs.incr obs_recovery_fallbacks;
          Events.emit ~shard
            ~kv:
              [
                ("event", "sequential_fallback");
                ("reason", "retries_exhausted");
                ("journaled", string_of_int (Queue.length sh.journal));
              ]
            Events.Warn "par";
          while not (Queue.is_empty sh.journal) do
            run_inline t sh (Queue.pop sh.journal)
          done
        end
      end)
    t.shards

let has_crashed t = Array.exists (fun sh -> sh.crashed) t.shards

(* Emit one "shard work" span per shard that ran tasks since the last
   barrier (wall pid, tid = shard + 1), bound by parent_id to the flow
   the previous barrier span originated — that is the arrow from the
   barrier that scheduled the work to the shard that ran it. Caller
   thread, after drain: no task is concurrently writing the window. *)
let emit_shard_windows t =
  Array.iteri
    (fun shard sh ->
      if sh.win_t0 > 0.0 then
        Obs.emit_span ~cat:"shard" ~parent_id:t.sched_trace
          ~args:[ ("shard", string_of_int shard) ]
          ~pid:Obs.wall_pid ~tid:(shard + 1) ~t0:(Obs.rel_time sh.win_t0)
          ~t1:(Obs.rel_time sh.win_t1) "shard work")
    t.shards

let ms seconds = Printf.sprintf "%.3f" (seconds *. 1000.0)

let barrier t =
  let t0 = Rma_util.Timer.now () in
  drain t;
  if has_crashed t then recover t;
  Mutex.lock t.mu;
  let err = t.failure in
  t.failure <- None;
  Mutex.unlock t.mu;
  let t1 = Rma_util.Timer.now () in
  (* Critical path of the inter-barrier window that just closed: the
     longest shard busy window — the chain a perfectly parallel epoch
     cannot beat — plus the overhead between the last shard finishing
     and the barrier completing (drain wakeups, recovery, replay). With
     no shard windows the whole barrier wait is overhead. Accrued
     whether or not Obs is on, so the bench attributes the speedup
     ceiling without paying for tracing. *)
  let longest = ref 0.0 and last_end = ref 0.0 in
  Array.iter
    (fun sh ->
      if sh.win_t0 > 0.0 then begin
        let d = sh.win_t1 -. sh.win_t0 in
        if d > !longest then longest := d;
        if sh.win_t1 > !last_end then last_end := sh.win_t1
      end)
    t.shards;
  let overhead =
    if !last_end > 0.0 then Float.max 0.0 (t1 -. !last_end) else Float.max 0.0 (t1 -. t0)
  in
  let chain = !longest +. overhead in
  t.critical_seconds <- t.critical_seconds +. chain;
  critical_total := !critical_total +. chain;
  if Obs.is_enabled () then begin
    Obs.incr obs_barriers;
    Obs.observe obs_barrier_wait_ns ((t1 -. t0) *. 1e9);
    Obs.set_gauge obs_critical_path_ms (!critical_total *. 1000.0);
    emit_shard_windows t;
    (* The barrier span originates the causal flow that the next
       window's shard spans will bind to. *)
    let trace = Obs.fresh_id () in
    Obs.emit_span ~cat:"barrier" ~trace_id:trace
      ~args:[ ("critical_path_ms", ms chain) ]
      ~pid:Obs.wall_pid ~tid:0 ~t0:(Obs.rel_time t0) ~t1:(Obs.rel_time t1) "epoch barrier";
    t.sched_trace <- trace;
    (* Debug, not Info: the values are wall-clock and would churn the
       golden journal, and per-barrier records are only post-mortem
       material ([obs stats] sums critical_path_ms from them). *)
    Events.emit
      ~kv:
        [
          ("event", "barrier");
          ("critical_path_ms", ms chain);
          ("longest_ms", ms !longest);
          ("overhead_ms", ms overhead);
          ("wait_ms", ms (t1 -. t0));
          ("flow", string_of_int trace);
        ]
      Events.Debug "par"
  end;
  Array.iter
    (fun sh ->
      sh.win_t0 <- 0.0;
      sh.win_t1 <- 0.0)
    t.shards;
  match err with Some e -> raise e | None -> ()

let critical_path_seconds t = t.critical_seconds
let current_flow_id t = t.sched_trace

let recovery_stats t =
  { crashes = t.crashes; recoveries = t.recoveries; fallbacks = t.fallbacks; overflows = t.overflows }

let pending t =
  Mutex.lock t.mu;
  let p = t.pend in
  Mutex.unlock t.mu;
  p

let take_work_seconds t =
  let worst = ref 0.0 in
  Array.iter
    (fun sh ->
      if sh.work_seconds > !worst then worst := sh.work_seconds;
      sh.work_seconds <- 0.0)
    t.shards;
  !worst
