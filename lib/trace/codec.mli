(** Text serialisation of instrumentation event streams.

    One event per line, tab-separated, with a versioned header — stable
    enough to archive traces and replay them through any detector later
    (the post-mortem workflow of MC-Checker, §3 of the paper). Strings
    are percent-escaped so file names with tabs or newlines round-trip. *)

val header : string
(** First line of every trace file. *)

val encode_event : Mpi_sim.Event.event -> string
(** One line, no trailing newline. *)

val decode_event : string -> (Mpi_sim.Event.event, string) result

val write_all : out_channel -> Mpi_sim.Event.event list -> unit
(** Header plus one line per event. *)

val read_all : in_channel -> (Mpi_sim.Event.event list, string) result
(** Validates the header; stops at the first malformed line. *)

val escape : string -> string
val unescape : string -> string
