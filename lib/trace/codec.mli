(** Text serialisation of instrumentation event streams.

    One event per line, tab-separated, with a versioned header and a
    counting footer — stable enough to archive traces and replay them
    through any detector later (the post-mortem workflow of MC-Checker,
    §3 of the paper). Strings are percent-escaped so file names with
    tabs or newlines round-trip.

    Format 2 frames the stream: the first line is {!header}, each event
    is one line, and the last line is [rma-trace-end <count>]. The
    footer is what makes truncation — a killed writer, a full disk, an
    injected [Trace_truncate] fault — detectable even when the cut
    falls exactly on a line boundary. {!read_all} still accepts
    format-1 traces (no footer) for archived streams.

    Decoding is {e total}: {!decode_event} and {!read_all} return
    [Error] on any malformed, truncated or bit-flipped input and never
    raise or loop — the fuzz suite in [test/test_fuzz.ml] holds them to
    that. When an {!Rma_fault} plan is installed, {!write_all} is the
    injection point for the [Trace_corrupt] (one flipped bit in an
    encoded line) and [Trace_truncate] (stream cut mid-line, footer
    lost) sites. *)

val header : string
(** First line of every trace file (format 2). *)

val legacy_header : string
(** The format-1 header, still accepted by {!read_all}. *)

val footer : int -> string
(** [footer n] is the closing line of a stream carrying [n] events. *)

(** {1 Decoding errors} *)

type error = {
  at_line : int;  (** 1-based line number in the stream; the header is line 1. *)
  reason : string;
}

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Events} *)

val encode_event : Mpi_sim.Event.event -> string
(** One line, no trailing newline. *)

val decode_event : string -> (Mpi_sim.Event.event, string) result
(** Total: any input yields [Ok] or [Error], never an exception. *)

val write_all : out_channel -> Mpi_sim.Event.event list -> unit
(** Header, one line per event, footer. Under an installed fault plan,
    each line first passes the [Trace_truncate] site (fires: the stream
    stops after a prefix of that line and the footer is never written)
    and then the [Trace_corrupt] site (fires: one deterministic bit of
    the line is flipped). *)

val read_all : in_channel -> (Mpi_sim.Event.event list, error) result
(** Validates the header, decodes every line, and — on a format-2
    stream — requires the footer and checks its count; a missing or
    mismatching footer reports truncation. Stops at the first
    malformed line. Blank lines are ignored. *)

val escape : string -> string
val unescape : string -> string
