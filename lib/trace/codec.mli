(** Text serialisation of instrumentation event streams.

    One event per line, tab-separated, with a versioned header and a
    counting footer — stable enough to archive traces and replay them
    through any detector later (the post-mortem workflow of MC-Checker,
    §3 of the paper). Strings are percent-escaped so file names with
    tabs or newlines round-trip.

    Format 2 frames the stream: the first line is {!header}, each event
    is one line, and the last line is [rma-trace-end <count>]. The
    footer is what makes truncation — a killed writer, a full disk, an
    injected [Trace_truncate] fault — detectable even when the cut
    falls exactly on a line boundary. {!read_all} still accepts
    format-1 traces (no footer) for archived streams.

    Decoding is {e total}: {!decode_event} and {!read_all} return
    [Error] on any malformed, truncated or bit-flipped input and never
    raise or loop — the fuzz suite in [test/test_fuzz.ml] holds them to
    that. When an {!Rma_fault} plan is installed, {!write_all} is the
    injection point for the [Trace_corrupt] (one flipped bit in an
    encoded line) and [Trace_truncate] (stream cut mid-line, footer
    lost) sites. *)

val header : string
(** First line of every trace file (format 2). *)

val legacy_header : string
(** The format-1 header, still accepted by {!read_all}. *)

val footer : int -> string
(** [footer n] is the closing line of a stream carrying [n] events. *)

(** {1 Decoding errors} *)

type error = {
  at_line : int;  (** 1-based line number in the stream; the header is line 1. *)
  reason : string;
}

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Events} *)

val encode_event : Mpi_sim.Event.event -> string
(** One line, no trailing newline. *)

val decode_event : string -> (Mpi_sim.Event.event, string) result
(** Total: any input yields [Ok] or [Error], never an exception. *)

val write_all : out_channel -> Mpi_sim.Event.event list -> unit
(** Header, one line per event, footer. Under an installed fault plan,
    each line first passes the [Trace_truncate] site (fires: the stream
    stops after a prefix of that line and the footer is never written)
    and then the [Trace_corrupt] site (fires: one deterministic bit of
    the line is flipped). *)

val read_all : in_channel -> (Mpi_sim.Event.event list, error) result
(** Validates the header, decodes every line, and — on a format-2
    stream — requires the footer and checks its count; a missing or
    mismatching footer reports truncation. Stops at the first
    malformed line. Blank lines are ignored. *)

(** {1 Incremental decoding}

    The [serve] daemon receives one Codec stream per socket session and
    must make progress a line at a time, interleaved with other
    sessions. {!Incremental} is the same total grammar as {!read_all},
    refactored into a push decoder: hand it each complete line (without
    its newline) as it arrives and it yields decoded events until the
    footer closes the frame. *)

module Incremental : sig
  type t
  (** Mutable framing state for one stream. *)

  (** Result of feeding one line:
      - [Event e] — the line decoded to an event.
      - [Skip] — the line carried no event (header, blank line, or any
        line after a completed frame).
      - [Complete n] — the line was a valid footer for the [n] events
        seen; the frame is complete. *)
  type step = Event of Mpi_sim.Event.event | Skip | Complete of int

  val create : unit -> t
  (** A fresh decoder expecting the header line first (format 2 or the
      legacy format-1 header). *)

  val feed : t -> string -> (step, error) result
  (** Consume one line. Total, like {!decode_event}: malformed input
      yields [Error] with the 1-based line number (header = line 1),
      never an exception. After the first [Error] the decoder state is
      unspecified — abandon the stream. *)

  val finish : t -> (int, error) result
  (** Signal end-of-input. [Ok n] when the frame completed ([n] events)
      or the stream used the unframed legacy header; [Error] when a
      format-2 stream ended without its footer (truncation) or no
      header was ever seen. *)

  val events_seen : t -> int
  (** Events decoded so far. *)

  val complete : t -> bool
  (** Whether the frame has closed (footer seen, or legacy EOF via
      {!finish}). *)
end

val escape : string -> string
val unescape : string -> string
