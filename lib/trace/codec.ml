open Rma_access
module Event = Mpi_sim.Event

let header = "rma-trace 1"

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\t' -> Buffer.add_string buf "%09"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '%' && i + 2 < n then begin
      let hex = String.sub s (i + 1) 2 in
      match int_of_string_opt ("0x" ^ hex) with
      | Some code ->
          Buffer.add_char buf (Char.chr code);
          go (i + 3)
      | None ->
          Buffer.add_char buf s.[i];
          go (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let bool_str = function true -> "1" | false -> "0"

let kind_str = function
  | Access_kind.Local_read -> "LR"
  | Access_kind.Local_write -> "LW"
  | Access_kind.Rma_read -> "RR"
  | Access_kind.Rma_write -> "RW"
  | Access_kind.Rma_accumulate -> "RA"

let kind_of_str = function
  | "LR" -> Ok Access_kind.Local_read
  | "LW" -> Ok Access_kind.Local_write
  | "RR" -> Ok Access_kind.Rma_read
  | "RW" -> Ok Access_kind.Rma_write
  | "RA" -> Ok Access_kind.Rma_accumulate
  | other -> Error (Printf.sprintf "unknown access kind %S" other)

let opt_int = function None -> "-" | Some i -> string_of_int i

let opt_int_of_str = function
  | "-" -> Ok None
  | s -> ( match int_of_string_opt s with Some i -> Ok (Some i) | None -> Error ("bad int " ^ s))

let encode_event event =
  let join = String.concat "\t" in
  match event with
  | Event.Access a ->
      let acc = a.Event.access in
      join
        [
          "A";
          string_of_int a.Event.space;
          kind_str acc.Access.kind;
          string_of_int (Interval.lo acc.Access.interval);
          string_of_int (Interval.hi acc.Access.interval);
          string_of_int acc.Access.issuer;
          string_of_int acc.Access.seq;
          opt_int a.Event.win;
          bool_str a.Event.relevant;
          bool_str a.Event.on_stack;
          Printf.sprintf "%.9f" a.Event.sim_time;
          escape acc.Access.debug.Debug_info.file;
          string_of_int acc.Access.debug.Debug_info.line;
          escape acc.Access.debug.Debug_info.operation;
        ]
  | Event.Collective { kind; rank; sim_time } ->
      join
        [
          "C";
          (match kind with
          | Event.Barrier -> "barrier"
          | Event.Allreduce -> "allreduce"
          | Event.Fence -> "fence");
          string_of_int rank;
          Printf.sprintf "%.9f" sim_time;
        ]
  | Event.Win_created { win; rank; base; size; sim_time } ->
      join
        [ "W"; string_of_int win; string_of_int rank; string_of_int base; string_of_int size;
          Printf.sprintf "%.9f" sim_time ]
  | Event.Win_freed { win; rank; sim_time } ->
      join [ "X"; string_of_int win; string_of_int rank; Printf.sprintf "%.9f" sim_time ]
  | Event.Epoch_opened { win; rank; sim_time } ->
      join [ "O"; string_of_int win; string_of_int rank; Printf.sprintf "%.9f" sim_time ]
  | Event.Epoch_closed { win; rank; sim_time } ->
      join [ "E"; string_of_int win; string_of_int rank; Printf.sprintf "%.9f" sim_time ]
  | Event.Flushed { win; rank; target; sim_time } ->
      join
        [ "L"; string_of_int win; string_of_int rank; opt_int target; Printf.sprintf "%.9f" sim_time ]
  | Event.Finished { rank; sim_time } ->
      join [ "Z"; string_of_int rank; Printf.sprintf "%.9f" sim_time ]

let ( let* ) r f = Result.bind r f

let int_field s =
  match int_of_string_opt s with Some i -> Ok i | None -> Error ("bad int " ^ s)

let float_field s =
  match float_of_string_opt s with Some f -> Ok f | None -> Error ("bad float " ^ s)

let bool_field = function
  | "1" -> Ok true
  | "0" -> Ok false
  | s -> Error ("bad bool " ^ s)

let decode_event line =
  match String.split_on_char '\t' line with
  | [ "A"; space; kind; lo; hi; issuer; seq; win; relevant; on_stack; time; file; lnum; op ] ->
      let* space = int_field space in
      let* kind = kind_of_str kind in
      let* lo = int_field lo in
      let* hi = int_field hi in
      let* issuer = int_field issuer in
      let* seq = int_field seq in
      let* win = opt_int_of_str win in
      let* relevant = bool_field relevant in
      let* on_stack = bool_field on_stack in
      let* sim_time = float_field time in
      let* line_number = int_field lnum in
      if lo > hi then Error (Printf.sprintf "inverted interval [%s...%s]" (string_of_int lo) (string_of_int hi))
      else begin
        let debug =
          Debug_info.make ~file:(unescape file) ~line:line_number ~operation:(unescape op)
        in
        let access =
          Access.make ~interval:(Interval.make ~lo ~hi) ~kind ~issuer ~seq ~debug
        in
        Ok (Event.Access { Event.space; access; win; relevant; on_stack; sim_time })
      end
  | [ "C"; kind; rank; time ] ->
      let* kind =
        match kind with
        | "barrier" -> Ok Event.Barrier
        | "allreduce" -> Ok Event.Allreduce
        | "fence" -> Ok Event.Fence
        | other -> Error ("unknown collective " ^ other)
      in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Collective { kind; rank; sim_time })
  | [ "W"; win; rank; base; size; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* base = int_field base in
      let* size = int_field size in
      let* sim_time = float_field time in
      Ok (Event.Win_created { win; rank; base; size; sim_time })
  | [ "X"; win; rank; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Win_freed { win; rank; sim_time })
  | [ "O"; win; rank; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Epoch_opened { win; rank; sim_time })
  | [ "E"; win; rank; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Epoch_closed { win; rank; sim_time })
  | [ "L"; win; rank; target; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* target = opt_int_of_str target in
      let* sim_time = float_field time in
      Ok (Event.Flushed { win; rank; target; sim_time })
  | [ "Z"; rank; time ] ->
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Finished { rank; sim_time })
  | _ -> Error (Printf.sprintf "malformed trace line %S" line)

let write_all oc events =
  output_string oc header;
  output_char oc '\n';
  List.iter
    (fun e ->
      output_string oc (encode_event e);
      output_char oc '\n')
    events

let read_all ic =
  match input_line ic with
  | exception End_of_file -> Error "empty trace"
  | first when first <> header -> Error (Printf.sprintf "bad header %S" first)
  | _ ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line when String.trim line = "" -> go acc
        | line -> (
            match decode_event line with Ok e -> go (e :: acc) | Error e -> Error e)
      in
      go []
