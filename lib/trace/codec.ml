open Rma_access
module Event = Mpi_sim.Event

let header = "rma-trace 2"
let legacy_header = "rma-trace 1"
let footer_prefix = "rma-trace-end"
let footer n = Printf.sprintf "%s %d" footer_prefix n

type error = { at_line : int; reason : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.at_line e.reason
let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\t' -> Buffer.add_string buf "%09"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '%' && i + 2 < n then begin
      let hex = String.sub s (i + 1) 2 in
      match int_of_string_opt ("0x" ^ hex) with
      | Some code ->
          Buffer.add_char buf (Char.chr code);
          go (i + 3)
      | None ->
          Buffer.add_char buf s.[i];
          go (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let bool_str = function true -> "1" | false -> "0"

let kind_str = function
  | Access_kind.Local_read -> "LR"
  | Access_kind.Local_write -> "LW"
  | Access_kind.Rma_read -> "RR"
  | Access_kind.Rma_write -> "RW"
  | Access_kind.Rma_accumulate -> "RA"

let kind_of_str = function
  | "LR" -> Ok Access_kind.Local_read
  | "LW" -> Ok Access_kind.Local_write
  | "RR" -> Ok Access_kind.Rma_read
  | "RW" -> Ok Access_kind.Rma_write
  | "RA" -> Ok Access_kind.Rma_accumulate
  | other -> Error (Printf.sprintf "unknown access kind %S" other)

let opt_int = function None -> "-" | Some i -> string_of_int i

let opt_int_of_str = function
  | "-" -> Ok None
  | s -> ( match int_of_string_opt s with Some i -> Ok (Some i) | None -> Error ("bad int " ^ s))

let encode_event event =
  let join = String.concat "\t" in
  match event with
  | Event.Access a ->
      let acc = a.Event.access in
      join
        ([
           "A";
           string_of_int a.Event.space;
           kind_str acc.Access.kind;
           string_of_int (Interval.lo acc.Access.interval);
           string_of_int (Interval.hi acc.Access.interval);
           string_of_int acc.Access.issuer;
           string_of_int acc.Access.seq;
           opt_int a.Event.win;
           bool_str a.Event.relevant;
           bool_str a.Event.on_stack;
           Printf.sprintf "%.9f" a.Event.sim_time;
           escape acc.Access.debug.Debug_info.file;
           string_of_int acc.Access.debug.Debug_info.line;
           escape acc.Access.debug.Debug_info.operation;
         ]
        @
        (* Trailing thread fields, present only for a non-default issuing
           thread: tid, own stamp, and the thread-view as comma-separated
           component:value pairs. Single-thread traces keep the 14-field
           arity and stay byte-identical. *)
        if Access.is_default_thread acc then []
        else
          [
            string_of_int acc.Access.thread.Access.tid;
            string_of_int acc.Access.thread.Access.tstamp;
            String.concat ","
              (List.map
                 (fun (c, v) -> Printf.sprintf "%d:%d" c v)
                 acc.Access.thread.Access.tview);
          ])
  | Event.Collective { kind; rank; sim_time } ->
      join
        [
          "C";
          (match kind with
          | Event.Barrier -> "barrier"
          | Event.Allreduce -> "allreduce"
          | Event.Fence -> "fence");
          string_of_int rank;
          Printf.sprintf "%.9f" sim_time;
        ]
  | Event.Win_created { win; rank; base; size; sim_time } ->
      join
        [ "W"; string_of_int win; string_of_int rank; string_of_int base; string_of_int size;
          Printf.sprintf "%.9f" sim_time ]
  | Event.Win_freed { win; rank; sim_time } ->
      join [ "X"; string_of_int win; string_of_int rank; Printf.sprintf "%.9f" sim_time ]
  | Event.Epoch_opened { win; rank; sim_time } ->
      join [ "O"; string_of_int win; string_of_int rank; Printf.sprintf "%.9f" sim_time ]
  | Event.Epoch_closed { win; rank; sim_time } ->
      join [ "E"; string_of_int win; string_of_int rank; Printf.sprintf "%.9f" sim_time ]
  | Event.Flushed { win; rank; target; sim_time } ->
      join
        [ "L"; string_of_int win; string_of_int rank; opt_int target; Printf.sprintf "%.9f" sim_time ]
  | Event.Finished { rank; sim_time } ->
      join [ "Z"; string_of_int rank; Printf.sprintf "%.9f" sim_time ]

let ( let* ) r f = Result.bind r f

let int_field s =
  match int_of_string_opt s with Some i -> Ok i | None -> Error ("bad int " ^ s)

let float_field s =
  match float_of_string_opt s with Some f -> Ok f | None -> Error ("bad float " ^ s)

let bool_field = function
  | "1" -> Ok true
  | "0" -> Ok false
  | s -> Error ("bad bool " ^ s)

let tview_field s =
  let pair p =
    match String.split_on_char ':' p with
    | [ c; v ] -> (
        match (int_of_string_opt c, int_of_string_opt v) with
        | Some c, Some v -> Ok (c, v)
        | _ -> Error ("bad thread-view pair " ^ p))
    | _ -> Error ("bad thread-view pair " ^ p)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
        let* cv = pair p in
        go (cv :: acc) rest
  in
  if s = "" then Ok [] else go [] (String.split_on_char ',' s)

let decode_event_exn line =
  match String.split_on_char '\t' line with
  | "A" :: space :: kind :: lo :: hi :: issuer :: seq :: win :: relevant :: on_stack :: time
    :: file :: lnum :: op :: thread_fields ->
      let* space = int_field space in
      let* kind = kind_of_str kind in
      let* lo = int_field lo in
      let* hi = int_field hi in
      let* issuer = int_field issuer in
      let* seq = int_field seq in
      let* win = opt_int_of_str win in
      let* relevant = bool_field relevant in
      let* on_stack = bool_field on_stack in
      let* sim_time = float_field time in
      let* line_number = int_field lnum in
      if lo > hi then Error (Printf.sprintf "inverted interval [%s...%s]" (string_of_int lo) (string_of_int hi))
      else begin
        let debug =
          Debug_info.make ~file:(unescape file) ~line:line_number ~operation:(unescape op)
        in
        let* thread =
          match thread_fields with
          | [] -> Ok (Access.default_thread ~issuer)
          | [ tid; tstamp; tview ] ->
              let* tid = int_field tid in
              let* tstamp = int_field tstamp in
              let* tview = tview_field tview in
              Ok { Access.tid; tstamp; tview }
          | _ -> Error "malformed thread fields on access record"
        in
        let access =
          Access.make_threaded ~thread ~interval:(Interval.make ~lo ~hi) ~kind ~issuer ~seq ~debug
        in
        Ok (Event.Access { Event.space; access; win; relevant; on_stack; sim_time })
      end
  | [ "C"; kind; rank; time ] ->
      let* kind =
        match kind with
        | "barrier" -> Ok Event.Barrier
        | "allreduce" -> Ok Event.Allreduce
        | "fence" -> Ok Event.Fence
        | other -> Error ("unknown collective " ^ other)
      in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Collective { kind; rank; sim_time })
  | [ "W"; win; rank; base; size; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* base = int_field base in
      let* size = int_field size in
      let* sim_time = float_field time in
      Ok (Event.Win_created { win; rank; base; size; sim_time })
  | [ "X"; win; rank; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Win_freed { win; rank; sim_time })
  | [ "O"; win; rank; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Epoch_opened { win; rank; sim_time })
  | [ "E"; win; rank; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Epoch_closed { win; rank; sim_time })
  | [ "L"; win; rank; target; time ] ->
      let* win = int_field win in
      let* rank = int_field rank in
      let* target = opt_int_of_str target in
      let* sim_time = float_field time in
      Ok (Event.Flushed { win; rank; target; sim_time })
  | [ "Z"; rank; time ] ->
      let* rank = int_field rank in
      let* sim_time = float_field time in
      Ok (Event.Finished { rank; sim_time })
  | _ -> Error (Printf.sprintf "malformed trace line %S" line)

(* The grammar above is already total over well-formed OCaml strings,
   but "never raises" is a contract the fuzz suite enforces against
   arbitrary bytes — the catch-all keeps it robust against any future
   field parser that throws. *)
let decode_event line =
  match decode_event_exn line with
  | r -> r
  | exception e -> Error (Printf.sprintf "decode failure: %s" (Printexc.to_string e))

(* Mutate one encoded line the way a flaky link or disk would: flip the
   low bit of the middle byte. Tab-separated printable bytes stay in
   the printable range, so the corruption never forges a line break —
   it yields a malformed field (or, rarely, a silently different valid
   one, which is exactly why framed traces still deserve checksums
   upstream). *)
let corrupt_line line =
  if line = "" then line
  else begin
    let b = Bytes.of_string line in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  end

let write_all oc events =
  output_string oc header;
  output_char oc '\n';
  let faulty = Rma_fault.active () in
  let truncated = ref false in
  let written = ref 0 in
  List.iter
    (fun e ->
      if not !truncated then begin
        let line = encode_event e in
        if faulty && Rma_fault.fire Rma_fault.Trace_truncate then begin
          (* Cut mid-line: half the bytes land, the newline and the
             footer never do. *)
          truncated := true;
          output_string oc (String.sub line 0 (String.length line / 2))
        end
        else begin
          let line = if faulty && Rma_fault.fire Rma_fault.Trace_corrupt then corrupt_line line else line in
          output_string oc line;
          output_char oc '\n';
          incr written
        end
      end)
    events;
  if not !truncated then begin
    output_string oc (footer !written);
    output_char oc '\n'
  end

let parse_footer line =
  match String.split_on_char ' ' line with
  | [ p; n ] when p = footer_prefix -> int_of_string_opt n
  | _ -> None

let read_all_raw ic =
  match input_line ic with
  | exception End_of_file -> Error { at_line = 1; reason = "empty trace" }
  | first when first <> header && first <> legacy_header ->
      Error { at_line = 1; reason = Printf.sprintf "bad header %S" first }
  | first ->
      let framed = first = header in
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file ->
            if framed then
              Error { at_line = lineno; reason = "truncated trace: missing rma-trace-end footer" }
            else Ok (List.rev acc)
        | line when framed && String.length line >= String.length footer_prefix
                    && String.sub line 0 (String.length footer_prefix) = footer_prefix -> (
            match parse_footer line with
            | Some n when n = List.length acc -> Ok (List.rev acc)
            | Some n ->
                Error
                  {
                    at_line = lineno;
                    reason =
                      Printf.sprintf "footer count %d disagrees with %d decoded events" n
                        (List.length acc);
                  }
            | None -> Error { at_line = lineno; reason = "malformed rma-trace-end footer" })
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
            match decode_event line with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error reason -> Error { at_line = lineno; reason })
      in
      go 2 []

module Incremental = struct
  type phase = Awaiting_header | Streaming | Finished of int

  type t = {
    mutable phase : phase;
    mutable framed : bool;
    mutable lineno : int;  (* 1-based line number of the next [feed]. *)
    mutable count : int;
  }

  type step = Event of Event.event | Skip | Complete of int

  let create () = { phase = Awaiting_header; framed = false; lineno = 1; count = 0 }
  let events_seen t = t.count
  let complete t = match t.phase with Finished _ -> true | _ -> false

  let is_footer line =
    String.length line >= String.length footer_prefix
    && String.sub line 0 (String.length footer_prefix) = footer_prefix

  let feed t line =
    let here = t.lineno in
    t.lineno <- here + 1;
    match t.phase with
    | Finished _ ->
        (* Mirror [read_all_raw], which stops reading at the footer:
           trailing bytes after a complete frame are ignored. *)
        Ok Skip
    | Awaiting_header ->
        if line = header || line = legacy_header then begin
          t.framed <- line = header;
          t.phase <- Streaming;
          Ok Skip
        end
        else Error { at_line = here; reason = Printf.sprintf "bad header %S" line }
    | Streaming ->
        if String.trim line = "" then Ok Skip
        else if t.framed && is_footer line then
          match parse_footer line with
          | Some n when n = t.count ->
              t.phase <- Finished n;
              Ok (Complete n)
          | Some n ->
              Error
                {
                  at_line = here;
                  reason =
                    Printf.sprintf "footer count %d disagrees with %d decoded events" n t.count;
                }
          | None -> Error { at_line = here; reason = "malformed rma-trace-end footer" }
        else
          match decode_event line with
          | Ok e ->
              t.count <- t.count + 1;
              Ok (Event e)
          | Error reason -> Error { at_line = here; reason }

  let finish t =
    match t.phase with
    | Finished n -> Ok n
    | Awaiting_header -> Error { at_line = 1; reason = "empty trace" }
    | Streaming ->
        if t.framed then
          Error { at_line = t.lineno; reason = "truncated trace: missing rma-trace-end footer" }
        else begin
          (* Legacy (format-1) streams have no footer: EOF is the frame. *)
          t.phase <- Finished t.count;
          Ok t.count
        end
end

let read_all ic =
  match read_all_raw ic with
  | Ok _ as ok -> ok
  | Error e as err ->
      (* A rejected trace is an operational incident (corrupted file,
         interrupted writer), not just a return value: journal it. *)
      Rma_obs.Events.emit
        ~kv:
          [ ("event", "read_error"); ("at_line", string_of_int e.at_line); ("reason", e.reason) ]
        Rma_obs.Events.Error "codec";
      err
