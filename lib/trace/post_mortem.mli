(** Offline (post-mortem) data-race analysis of a recorded trace, in the
    spirit of MC-Checker (§3 of the paper): happens-before regions are
    reconstructed from the synchronisation events, then every pair of
    overlapping accesses in each address space is checked — so unlike
    the on-the-fly tools, which stop at (or step over) the first
    conflict, the post-mortem pass enumerates {e every} racy statement
    pair of the execution.

    The happens-before model matches the MUST-RMA baseline's: one
    concurrent region per one-sided operation, retired into its origin
    at epoch close; collectives merge clocks; local accesses follow
    program order. *)

type race_pair = {
  space : int;  (** Address space holding the conflict. *)
  win : Mpi_sim.Event.win_id option;  (** Window involved, when known. *)
  first : Rma_access.Access.t;
  second : Rma_access.Access.t;
  first_clock : Rma_vclock.Vclock.t;
      (** Reconstructed happens-before clock at each access, kept so
          {!to_reports} can fill the same provenance fields the
          on-the-fly tools emit. *)
  second_clock : Rma_vclock.Vclock.t;
}

type result = {
  races : race_pair list;  (** Distinct (statement-pair, space) races. *)
  distinct_pairs : int;  (** = List.length races (before any capping). *)
  accesses_checked : int;
  pairs_checked : int;
}

val nprocs_of : Mpi_sim.Event.event list -> int
(** Smallest rank-universe containing every event: max over all ranks
    and access spaces/issuers, plus one (minimum 1). The [analyze]
    subcommand and the serve daemon use it to size detector state when
    a trace arrives without out-of-band rank metadata. *)

val analyze : ?max_reports:int -> Mpi_sim.Event.event list -> result
(** Default cap 10 000 distinct pairs. Duplicate races from the same
    statement pair (same file/line/operation on both sides) in the same
    space are reported once. *)

val to_reports : result -> Rma_analysis.Report.t list
(** As standard reports, tool name "MC-Checker (post-mortem)", carrying
    the same provenance fields as the on-the-fly tools: sequential race
    ids, the second access's clock snapshot, and both accesses as their
    own single-origin histories. *)
