(** Capture an instrumentation event stream for later offline analysis —
    the front half of the MC-Checker-style post-mortem workflow. *)

type t

val create : unit -> t
(** In-memory recorder. *)

val observer : t -> Mpi_sim.Event.observer
(** Attach to {!Mpi_sim.Runtime.run}; records every event at zero
    simulated protocol cost. Compose with another tool's observer via
    {!tee} to record and detect in one run. *)

val tee : t -> Mpi_sim.Event.observer -> Mpi_sim.Event.observer
(** Records, then forwards to the wrapped observer (returning its
    cost). *)

val events : t -> Mpi_sim.Event.event list
(** Chronological. *)

val length : t -> int

val clear : t -> unit

val save : t -> path:string -> unit
(** Write the trace file ({!Codec.write_all}: framed format 2; the
    [Trace_corrupt]/[Trace_truncate] fault sites live inside). *)

val load : path:string -> (Mpi_sim.Event.event list, string) result
(** Read a trace file back; [Error] renders the structured
    {!Codec.error} (line number + reason) as text. Never raises on
    malformed input. *)

val replay : Mpi_sim.Event.event list -> tool:Rma_analysis.Tool.t -> Rma_analysis.Report.t list
(** Feed a recorded stream through any detector (reset first) and
    return its reports; Race_abort from an aborting tool is caught. *)
