open Rma_access
module Event = Mpi_sim.Event
module Vclock = Rma_vclock.Vclock

type race_pair = {
  space : int;
  win : Event.win_id option;
  first : Access.t;
  second : Access.t;
  first_clock : Vclock.t;
  second_clock : Vclock.t;
}

type result = {
  races : race_pair list;
  distinct_pairs : int;
  accesses_checked : int;
  pairs_checked : int;
}

(* One recorded access with its reconstructed happens-before identity. *)
type stamped = {
  access : Access.t;
  space : int;
  win : Event.win_id option;
  thread : int;  (** Real rank for local accesses, virtual id for RMA. *)
  clock : Vclock.t;  (** Snapshot when the access happened. *)
  order : int;  (** Trace position, for deterministic pair direction. *)
}

type vid_info = { origin : int; mutable joined_at : int option }

let nprocs_of events =
  List.fold_left
    (fun acc e ->
      match e with
      | Event.Access a ->
          max acc (max (a.Event.space + 1) (a.Event.access.Access.issuer + 1))
      | Event.Collective { rank; _ }
      | Event.Win_created { rank; _ }
      | Event.Win_freed { rank; _ }
      | Event.Epoch_opened { rank; _ }
      | Event.Epoch_closed { rank; _ }
      | Event.Flushed { rank; _ }
      | Event.Finished { rank; _ } -> max acc (rank + 1))
    1 events

(* Phase 1: replay the synchronisation structure, stamping every access
   with its thread and clock — the same region model as the MUST-RMA
   baseline (virtual region per one-sided operation, retired at epoch
   close; collectives merge). *)
let stamp_accesses events =
  let nprocs = nprocs_of events in
  let clocks = Array.init nprocs (fun _ -> Vclock.create ~nprocs) in
  let vids : (int, vid_info) Hashtbl.t = Hashtbl.create 1024 in
  let epoch_vids : (int * Event.win_id, int list) Hashtbl.t = Hashtbl.create 16 in
  let next_vid = ref nprocs in
  let collective_buffer = ref [] in
  let stamped = ref [] in
  let order = ref 0 in
  let on_sync rank =
    collective_buffer := rank :: !collective_buffer;
    if List.length !collective_buffer = nprocs then begin
      let merged = Array.fold_left Vclock.merge Vclock.empty clocks in
      Array.iteri (fun r _ -> clocks.(r) <- Vclock.tick merged r) clocks;
      collective_buffer := []
    end
  in
  List.iter
    (fun event ->
      match event with
      | Event.Access a ->
          incr order;
          let access = a.Event.access in
          let issuer = access.Access.issuer in
          let thread, clock =
            if Access_kind.is_local access.Access.kind then begin
              clocks.(issuer) <- Vclock.tick clocks.(issuer) issuer;
              (issuer, clocks.(issuer))
            end
            else begin
              let vid = !next_vid in
              incr next_vid;
              Hashtbl.replace vids vid { origin = issuer; joined_at = None };
              (match a.Event.win with
              | Some w ->
                  let key = (issuer, w) in
                  let existing = Option.value (Hashtbl.find_opt epoch_vids key) ~default:[] in
                  Hashtbl.replace epoch_vids key (vid :: existing)
              | None -> ());
              (vid, Vclock.set clocks.(issuer) vid 1)
            end
          in
          stamped :=
            { access; space = a.Event.space; win = a.Event.win; thread; clock; order = !order }
            :: !stamped
      | Event.Epoch_opened { rank; _ } -> clocks.(rank) <- Vclock.tick clocks.(rank) rank
      | Event.Epoch_closed { win; rank; _ } ->
          let key = (rank, win) in
          let joined = Option.value (Hashtbl.find_opt epoch_vids key) ~default:[] in
          Hashtbl.remove epoch_vids key;
          clocks.(rank) <- Vclock.tick clocks.(rank) rank;
          let tick = Vclock.get clocks.(rank) rank in
          List.iter
            (fun vid ->
              match Hashtbl.find_opt vids vid with
              | Some info -> info.joined_at <- Some tick
              | None -> ())
            joined
      | Event.Collective { rank; _ } | Event.Win_created { rank; _ } | Event.Win_freed { rank; _ }
        -> on_sync rank
      | Event.Flushed _ | Event.Finished _ -> ())
    events;
  (nprocs, vids, List.rev !stamped)

let happens_before ~nprocs ~vids earlier later =
  if earlier.thread = later.thread then true
  else if earlier.thread < nprocs then
    Vclock.stamp_observed (Vclock.stamp_of earlier.clock ~thread:earlier.thread) ~by:later.clock
  else begin
    match Hashtbl.find_opt vids earlier.thread with
    | None -> false
    | Some info -> (
        match info.joined_at with
        | None -> false
        | Some tick -> Vclock.get later.clock info.origin >= tick)
  end

let conflicting a b =
  let ka = a.access.Access.kind and kb = b.access.Access.kind in
  (Access_kind.is_rma ka || Access_kind.is_rma kb)
  && (Access_kind.is_write ka || Access_kind.is_write kb)
  && (not (Access_kind.is_local ka && Access_kind.is_local kb))
  && not (Access_kind.is_accumulate ka && Access_kind.is_accumulate kb)

let statement_pair_key space a b =
  let side access =
    ( access.Access.debug.Debug_info.file,
      access.Access.debug.Debug_info.line,
      access.Access.debug.Debug_info.operation,
      Access_kind.to_string access.Access.kind )
  in
  (* Order-independent key so (a,b) and (b,a) collapse. *)
  let sa = side a and sb = side b in
  if sa <= sb then (space, sa, sb) else (space, sb, sa)

let analyze ?(max_reports = 10_000) events =
  let nprocs, vids, stamped = stamp_accesses events in
  (* Group by address space, sort by interval lower bound, and sweep with
     an active list pruned by upper bound. *)
  let by_space = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let existing = Option.value (Hashtbl.find_opt by_space s.space) ~default:[] in
      Hashtbl.replace by_space s.space (s :: existing))
    stamped;
  let seen = Hashtbl.create 256 in
  let races = ref [] in
  let distinct = ref 0 in
  let pairs_checked = ref 0 in
  let accesses_checked = List.length stamped in
  Hashtbl.iter
    (fun space accesses ->
      let sorted =
        List.sort
          (fun a b -> Interval.compare_lo a.access.Access.interval b.access.Access.interval)
          accesses
      in
      let active = ref [] in
      List.iter
        (fun current ->
          let lo = Interval.lo current.access.Access.interval in
          active := List.filter (fun a -> Interval.hi a.access.Access.interval >= lo) !active;
          List.iter
            (fun prior ->
              if Interval.overlaps prior.access.Access.interval current.access.Access.interval
              then begin
                incr pairs_checked;
                let a, b =
                  if prior.order <= current.order then (prior, current) else (current, prior)
                in
                if
                  conflicting a b
                  && (not (happens_before ~nprocs ~vids a b))
                  && not (happens_before ~nprocs ~vids b a)
                then begin
                  let key = statement_pair_key space a.access b.access in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    incr distinct;
                    if !distinct <= max_reports then begin
                      let win = match a.win with Some _ as w -> w | None -> b.win in
                      races :=
                        {
                          space;
                          win;
                          first = a.access;
                          second = b.access;
                          first_clock = a.clock;
                          second_clock = b.clock;
                        }
                        :: !races
                    end
                  end
                end
              end)
            !active;
          active := current :: !active)
        sorted)
    by_space;
  {
    races = List.rev !races;
    distinct_pairs = !distinct;
    accesses_checked;
    pairs_checked = !pairs_checked;
  }

let to_reports result =
  (* Same provenance shape as the on-the-fly tools: sequential race ids,
     the second access's reconstructed clock as the detection snapshot,
     and each side carried as its own single-origin history (the
     post-mortem sweep never fragments, so the original accesses ARE the
     history). *)
  List.mapi
    (fun i (r : race_pair) ->
      let provenance =
        {
          Rma_analysis.Report.empty_provenance with
          Rma_analysis.Report.id = i + 1;
          vclock = Some (Vclock.components r.second_clock);
          existing_history =
            [ { Rma_store.Flight_recorder.access = r.first; epoch = 0 } ];
          incoming_history =
            [ { Rma_store.Flight_recorder.access = r.second; epoch = 0 } ];
        }
      in
      Rma_analysis.Report.make ~tool:"MC-Checker (post-mortem)" ~space:r.space ~win:r.win
        ~existing:r.first ~incoming:r.second ~sim_time:0.0 ~provenance ())
    result.races
