type t = { mutable events : Mpi_sim.Event.event list; mutable count : int }

let create () = { events = []; count = 0 }

let record t e =
  t.events <- e :: t.events;
  t.count <- t.count + 1

let observer t e =
  record t e;
  0.0

let tee t inner e =
  record t e;
  inner e

let events t = List.rev t.events

let length t = t.count

let clear t =
  t.events <- [];
  t.count <- 0

let save t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Codec.write_all oc (events t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Result.map_error Codec.error_to_string (Codec.read_all ic))

let replay events ~tool =
  tool.Rma_analysis.Tool.reset ();
  (try List.iter (fun e -> ignore (tool.Rma_analysis.Tool.observer e)) events
   with Rma_analysis.Report.Race_abort _ -> ());
  tool.Rma_analysis.Tool.races ()
