(** The data-race predicate (Figure 3 of the paper).

    Two accesses to overlapping address ranges race when at least one of
    them is an RMA access and at least one is a WRITE — except that
    program order protects one direction inside a single process: a
    local access *followed by* an RMA operation issued by the same
    process cannot race (the local access completed before the one-sided
    call was even issued), whereas an RMA operation *followed by* a
    local access can (the RMA may complete at any point up to the end of
    the epoch). Legacy RMA-Analyzer ignored this asymmetry and flagged
    both directions, producing the six false positives of Table 3; the
    paper's contribution fixes it (§5.2). The [order_aware] flag selects
    between the two behaviours so both tools can share this module. *)

type verdict =
  | No_race
  | Race of { first : Access.t; second : Access.t }
      (** Observed race: the conflict fired in the order the run took. *)
  | Predicted of { first : Access.t; second : Access.t }
      (** Schedulable race: the pair is unordered under MPI
          synchronization semantics alone, so {e some} legal schedule
          overlaps it, even if the observed run did not. Produced only
          by {!check_weak}; {!check} never returns it. *)

val conflict_kinds_ordered : order_aware:bool -> program_ordered:bool ->
  first:Access_kind.t -> second:Access_kind.t -> bool
(** Kind-level conflict table, ignoring intervals. [first] is the access
    already recorded (issued earlier), [second] the newcomer.
    [program_ordered] says whether [first] is known to happen-before
    [second] inside one process (same thread, or threads synchronised by
    a spawn/join/signal/wait edge); accesses of different processes are
    never ordered, so any RMA+WRITE combination conflicts there. Two
    local accesses never conflict. *)

val conflict_kinds : order_aware:bool -> same_process:bool ->
  first:Access_kind.t -> second:Access_kind.t -> bool
(** {!conflict_kinds_ordered} under the single-thread assumption
    [program_ordered = same_process] — the thread-oblivious table every
    pre-hybrid caller used. A local access by one thread followed by an
    RMA call by a {e different, unsynchronised} thread of the same rank
    needs the ordered variant: it is [same_process = true] but
    [program_ordered = false], and conflicts. *)

val check : order_aware:bool -> existing:Access.t -> incoming:Access.t -> verdict
(** Full predicate: overlap of intervals plus [conflict_kinds], with
    [same_process] derived from the issuer ranks and [program_ordered]
    from {!Access.thread_ordered} over the carried thread identities. *)

val races : order_aware:bool -> existing:Access.t -> incoming:Access.t -> bool
(** [check] collapsed to a boolean. *)

val check_weak : order_aware:bool -> existing:Access.t -> incoming:Access.t -> verdict
(** {!check} evaluated under the weak (synchronization-only) order the
    predictive analyzer maintains. Same-rank conflicts are excused —
    they are either already reported by the observed rule (same phase)
    or ordered by the rank's own completion edges (unlock/flush/fence)
    under every schedule — and the Figure 3 local-then-RMA exception is
    preserved unchanged, because thread views advance only at real
    synchronization edges. Cross-rank conflicts return {!Predicted};
    never {!Race}. *)
