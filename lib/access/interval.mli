(** Closed byte-address intervals.

    The paper stores each memory access as the exact interval of
    addresses it touches, written [[lo...hi]] with both bounds included
    (Figure 5 notes a node as [([2...12], RMA_Read)]). All arithmetic
    here follows that closed-interval convention: a single byte at
    address [a] is [[a...a]], and two intervals are adjacent when one
    ends exactly one byte before the other starts. *)

type t = private { lo : int; hi : int }
(** Invariant: [lo <= hi]. *)

val make : lo:int -> hi:int -> t
(** Raises [Invalid_argument] if [lo > hi]. *)

val of_range : addr:int -> len:int -> t
(** [[addr ... addr+len-1]]. Raises [Invalid_argument] if [len <= 0]. *)

val byte : int -> t
(** Single-byte interval. *)

val lo : t -> int
val hi : t -> int

val length : t -> int
(** Number of bytes covered. *)

val contains : t -> int -> bool

val overlaps : t -> t -> bool
(** True when the intervals share at least one byte. *)

val adjacent : t -> t -> bool
(** True when they touch without overlapping ([a.hi + 1 = b.lo] or the
    converse). *)

val intersection : t -> t -> t option
(** Shared bytes, when any. *)

val left_remainder : outer:t -> cut:t -> t option
(** Bytes of [outer] strictly before [cut]; [None] when empty. *)

val right_remainder : outer:t -> cut:t -> t option
(** Bytes of [outer] strictly after [cut]; [None] when empty. *)

val hull : t -> t -> t
(** Smallest interval covering both. *)

val merge_adjacent_or_overlapping : t -> t -> t option
(** [hull] when the two intervals overlap or are adjacent, else [None]. *)

val compare_lo : t -> t -> int
(** Order by lower bound, then by upper bound — the BST key order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Paper notation: [[2...12]], or [[4]] for single bytes. *)

val to_string : t -> string
