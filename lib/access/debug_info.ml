type t = { file : string; line : int; operation : string }

let make ~file ~line ~operation = { file; line; operation }

let unknown = { file = "<unknown>"; line = 0; operation = "?" }

let equal a b = a.line = b.line && String.equal a.file b.file && String.equal a.operation b.operation

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.operation b.operation

let pp fmt t = Format.fprintf fmt "%s:%d (%s)" t.file t.line t.operation

let to_string t = Format.asprintf "%a" pp t
