type verdict = No_race | Race of { first : Access.t; second : Access.t }

let conflict_kinds_ordered ~order_aware ~program_ordered ~first ~second =
  let open Access_kind in
  if is_local first && is_local second then false
  else if is_accumulate first && is_accumulate second then
    (* The §2.1 atomicity property: accumulates are atomic at the
       datatype level and order-independent (same-op assumption), so two
       accumulates on the same location do not race. *)
    false
  else begin
    let has_rma = is_rma first || is_rma second in
    let has_write = is_write first || is_write second in
    if not (has_rma && has_write) then false
    else if program_ordered && order_aware && is_local first && is_rma second then
      (* Program order: the local access finished before the RMA call was
         issued by the same thread of the same process — or by a thread
         that had already joined/observed it (§5.2). A local access by a
         *different, unsynchronised* thread of the same rank gets no such
         protection: that is the hybrid MPI+threads race family. *)
      false
    else true
  end

(* Without thread information, same-process accesses are assumed to be
   program-ordered (the single-thread degenerate case). *)
let conflict_kinds ~order_aware ~same_process ~first ~second =
  conflict_kinds_ordered ~order_aware ~program_ordered:same_process ~first ~second

let check ~order_aware ~existing ~incoming =
  if not (Interval.overlaps existing.Access.interval incoming.Access.interval) then No_race
  else begin
    let program_ordered = Access.thread_ordered ~prior:existing ~later:incoming in
    if
      conflict_kinds_ordered ~order_aware ~program_ordered ~first:existing.Access.kind
        ~second:incoming.Access.kind
    then Race { first = existing; second = incoming }
    else No_race
  end

let races ~order_aware ~existing ~incoming =
  match check ~order_aware ~existing ~incoming with No_race -> false | Race _ -> true
