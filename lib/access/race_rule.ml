type verdict =
  | No_race
  | Race of { first : Access.t; second : Access.t }
  | Predicted of { first : Access.t; second : Access.t }

let conflict_kinds_ordered ~order_aware ~program_ordered ~first ~second =
  let open Access_kind in
  if is_local first && is_local second then false
  else if is_accumulate first && is_accumulate second then
    (* The §2.1 atomicity property: accumulates are atomic at the
       datatype level and order-independent (same-op assumption), so two
       accumulates on the same location do not race. *)
    false
  else begin
    let has_rma = is_rma first || is_rma second in
    let has_write = is_write first || is_write second in
    if not (has_rma && has_write) then false
    else if program_ordered && order_aware && is_local first && is_rma second then
      (* Program order: the local access finished before the RMA call was
         issued by the same thread of the same process — or by a thread
         that had already joined/observed it (§5.2). A local access by a
         *different, unsynchronised* thread of the same rank gets no such
         protection: that is the hybrid MPI+threads race family. *)
      false
    else true
  end

(* Without thread information, same-process accesses are assumed to be
   program-ordered (the single-thread degenerate case). *)
let conflict_kinds ~order_aware ~same_process ~first ~second =
  conflict_kinds_ordered ~order_aware ~program_ordered:same_process ~first ~second

let check ~order_aware ~existing ~incoming =
  if not (Interval.overlaps existing.Access.interval incoming.Access.interval) then No_race
  else begin
    let program_ordered = Access.thread_ordered ~prior:existing ~later:incoming in
    if
      conflict_kinds_ordered ~order_aware ~program_ordered ~first:existing.Access.kind
        ~second:incoming.Access.kind
    then Race { first = existing; second = incoming }
    else No_race
  end

let races ~order_aware ~existing ~incoming =
  match check ~order_aware ~existing ~incoming with
  | No_race -> false
  | Race _ | Predicted _ -> true

(* The same conflict rule evaluated under the WEAK order — the order MPI
   synchronization semantics alone guarantee, independent of the
   schedule the run happened to take. Two refinements over [check]:

   - the Figure 3 local-then-RMA exception is judged by
     [Access.thread_ordered] exactly as in the observed rule, because
     thread views only advance at real synchronization edges
     (spawn/join/signal/wait), never at incidental scheduling — the
     exception is already weak-order sound;

   - conflicts whose two sides were issued by the SAME rank are excused:
     a same-rank pair either shares a synchronization phase (in which
     case the observed rule has already reported it) or is separated by
     one of the rank's own completion edges (unlock/flush/fence), which
     orders the rank's earlier operations before its later accesses
     under every schedule. Only cross-rank conflicts are schedulable
     races, and they surface as [Predicted]. *)
let check_weak ~order_aware ~existing ~incoming =
  match check ~order_aware ~existing ~incoming with
  | No_race -> No_race
  | Race { first; second } | Predicted { first; second } ->
      if Access.same_issuer first second then No_race else Predicted { first; second }
