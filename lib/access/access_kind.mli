(** The four memory-access kinds of the paper (§2.1).

    An access is local to the process ([Local_*]) or part of a one-sided
    communication ([Rma_*]), and reads or writes. The RMA duality: an
    [MPI_Put] is an [Rma_read] of the origin's buffer and an [Rma_write]
    into the target's window; an [MPI_Get] is an [Rma_read] of the
    target's window and an [Rma_write] into the origin's buffer. *)

type t = Local_read | Local_write | Rma_read | Rma_write | Rma_accumulate

val is_rma : t -> bool
val is_local : t -> bool
val is_write : t -> bool
val is_read : t -> bool

val is_accumulate : t -> bool

val strength : t -> int
(** Dominance ranking for the Table 1 combination rule:
    [Rma_accumulate (4) > Rma_write (3) > Rma_read (2) > Local_write (1)
    > Local_read (0)]. RMA accesses prevail over local accesses and
    writes over reads; accumulates (an extension beyond the paper's four
    kinds, following its §2.1 atomicity property) sit on top. *)

val combine : t -> t -> t
(** [combine a b] is the stronger of the two kinds (Table 1's resulting
    access type); on a tie it is that same kind. *)

val all : t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
