(** Source provenance attached to every recorded access.

    The paper keeps debug information (file and line of the access) in
    each BST node so race reports point at the conflicting statements
    (Figure 9b), and the merging algorithm only coalesces accesses whose
    debug information is equal — two accesses from different source
    lines "will not be fixed in the same way" (§4.2). *)

type t = { file : string; line : int; operation : string }
(** [operation] names the MPI call or load/store, e.g. ["MPI_Put"]. *)

val make : file:string -> line:int -> operation:string -> t

val unknown : t
(** Placeholder provenance for synthetic accesses in tests. *)

val equal : t -> t -> bool
(** Structural equality — the merging precondition. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Renders ["file:line (operation)"]. *)

val to_string : t -> string
