type thread_info = { tid : int; tstamp : int; tview : (int * int) list }

type t = {
  interval : Interval.t;
  kind : Access_kind.t;
  issuer : int;
  seq : int;
  debug : Debug_info.t;
  thread : thread_info;
}

(* The thread identity every access carries when the issuing rank never
   spawned a thread: tid 0 with the virgin clock a main thread is born
   with (own component ticked once). Deriving it from the issuer alone
   lets serializers omit the whole field for single-thread traces and
   reconstruct it exactly on decode. *)
let default_thread ~issuer =
  { tid = 0; tstamp = 1; tview = [ (Rma_vclock.Vclock.rt_key ~rank:issuer ~thread:0, 1) ] }

let thread_equal a b = a.tid = b.tid && a.tstamp = b.tstamp && a.tview = b.tview

let is_default_thread t = thread_equal t.thread (default_thread ~issuer:t.issuer)

let make_threaded ~thread ~interval ~kind ~issuer ~seq ~debug =
  { interval; kind; issuer; seq; debug; thread }

let make ~interval ~kind ~issuer ~seq ~debug =
  make_threaded ~thread:(default_thread ~issuer) ~interval ~kind ~issuer ~seq ~debug

let with_interval t interval = { t with interval }

let with_kind t kind = { t with kind }

let same_issuer a b = a.issuer = b.issuer

(* Did [prior] happen-before [later] in the issuing process's program
   order — same thread, or [later]'s thread had observed [prior]'s
   thread clock through a spawn/join/signal/wait edge when it issued? *)
let thread_ordered ~prior ~later =
  prior.issuer = later.issuer
  && (prior.thread.tid = later.thread.tid
     ||
     let key = Rma_vclock.Vclock.rt_key ~rank:prior.issuer ~thread:prior.thread.tid in
     match List.assoc_opt key later.thread.tview with
     | Some v -> v >= prior.thread.tstamp
     | None -> false)

let mergeable a b =
  a.issuer = b.issuer && Access_kind.equal a.kind b.kind && Debug_info.equal a.debug b.debug
  && thread_equal a.thread b.thread

let most_recent a b = if a.seq >= b.seq then a else b

let dominate ~older ~newer interval =
  let sa = Access_kind.strength older.kind and sb = Access_kind.strength newer.kind in
  let winner =
    if sa > sb then older else if sb > sa then newer else most_recent older newer
  in
  { winner with interval }

let pp fmt t =
  if t.thread.tid = 0 then
    Format.fprintf fmt "(%a, %a, rank %d, %a)" Interval.pp t.interval Access_kind.pp t.kind
      t.issuer Debug_info.pp t.debug
  else
    Format.fprintf fmt "(%a, %a, rank %d thread %d, %a)" Interval.pp t.interval Access_kind.pp
      t.kind t.issuer t.thread.tid Debug_info.pp t.debug

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  Interval.equal a.interval b.interval
  && Access_kind.equal a.kind b.kind
  && a.issuer = b.issuer && a.seq = b.seq
  && Debug_info.equal a.debug b.debug
  && thread_equal a.thread b.thread
