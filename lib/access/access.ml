type t = {
  interval : Interval.t;
  kind : Access_kind.t;
  issuer : int;
  seq : int;
  debug : Debug_info.t;
}

let make ~interval ~kind ~issuer ~seq ~debug = { interval; kind; issuer; seq; debug }

let with_interval t interval = { t with interval }

let with_kind t kind = { t with kind }

let same_issuer a b = a.issuer = b.issuer

let mergeable a b =
  a.issuer = b.issuer && Access_kind.equal a.kind b.kind && Debug_info.equal a.debug b.debug

let most_recent a b = if a.seq >= b.seq then a else b

let dominate ~older ~newer interval =
  let sa = Access_kind.strength older.kind and sb = Access_kind.strength newer.kind in
  let winner =
    if sa > sb then older else if sb > sa then newer else most_recent older newer
  in
  { winner with interval }

let pp fmt t =
  Format.fprintf fmt "(%a, %a, rank %d, %a)" Interval.pp t.interval Access_kind.pp t.kind
    t.issuer Debug_info.pp t.debug

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  Interval.equal a.interval b.interval
  && Access_kind.equal a.kind b.kind
  && a.issuer = b.issuer && a.seq = b.seq
  && Debug_info.equal a.debug b.debug
