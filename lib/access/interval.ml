type t = { lo : int; hi : int }

let make ~lo ~hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo %d > hi %d" lo hi);
  { lo; hi }

let of_range ~addr ~len =
  if len <= 0 then invalid_arg (Printf.sprintf "Interval.of_range: len %d <= 0" len);
  { lo = addr; hi = addr + len - 1 }

let byte a = { lo = a; hi = a }

let lo t = t.lo
let hi t = t.hi
let length t = t.hi - t.lo + 1

let contains t a = t.lo <= a && a <= t.hi

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let adjacent a b = a.hi + 1 = b.lo || b.hi + 1 = a.lo

let intersection a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let left_remainder ~outer ~cut =
  if outer.lo < cut.lo then Some { lo = outer.lo; hi = min outer.hi (cut.lo - 1) } else None

let right_remainder ~outer ~cut =
  if outer.hi > cut.hi then Some { lo = max outer.lo (cut.hi + 1); hi = outer.hi } else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let merge_adjacent_or_overlapping a b =
  if overlaps a b || adjacent a b then Some (hull a b) else None

let compare_lo a b =
  let c = compare a.lo b.lo in
  if c <> 0 then c else compare a.hi b.hi

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp fmt t =
  if t.lo = t.hi then Format.fprintf fmt "[%d]" t.lo
  else Format.fprintf fmt "[%d...%d]" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t
