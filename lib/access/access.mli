(** A recorded memory access: the unit stored in the per-window BST.

    Carries the exact interval of addresses touched, the access kind,
    the rank that issued the operation (an [MPI_Put] from rank 2 into
    rank 0's window is recorded in rank 0's tree with [issuer = 2]), a
    monotone sequence number that orders the accesses as the analyzer
    observed them, and debug information for reports and merging. *)

type t = {
  interval : Interval.t;
  kind : Access_kind.t;
  issuer : int;  (** Rank whose operation produced the access. *)
  seq : int;  (** Observation order within the analyzer; higher = later. *)
  debug : Debug_info.t;
}

val make :
  interval:Interval.t -> kind:Access_kind.t -> issuer:int -> seq:int -> debug:Debug_info.t -> t

val with_interval : t -> Interval.t -> t
(** Same access restricted (or extended) to another interval — used by
    fragmentation to carve an access into sub-intervals. *)

val with_kind : t -> Access_kind.t -> t

val same_issuer : t -> t -> bool

val mergeable : t -> t -> bool
(** The §4.2 merging precondition minus adjacency: equal access kind and
    equal debug information (and same issuer, which equal debug info
    implies for distinct processes only by convention — we require it
    explicitly). *)

val most_recent : t -> t -> t
(** The access with the larger sequence number. *)

val dominate : older:t -> newer:t -> Interval.t -> t
(** Table 1 combination for an intersection fragment: the resulting kind
    is the stronger of the two; the debug info (and issuer/seq) follow
    the access whose kind wins, with ties keeping the most recent. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal : t -> t -> bool
(** Full structural equality (including [seq]). *)
