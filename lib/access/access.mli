(** A recorded memory access: the unit stored in the per-window BST.

    Carries the exact interval of addresses touched, the access kind,
    the rank that issued the operation (an [MPI_Put] from rank 2 into
    rank 0's window is recorded in rank 0's tree with [issuer = 2]), a
    monotone sequence number that orders the accesses as the analyzer
    observed them, debug information for reports and merging, and the
    identity of the issuing {e intra-rank thread} for hybrid
    MPI+threads programs. *)

type thread_info = {
  tid : int;  (** Intra-rank thread id; 0 is the rank's main thread. *)
  tstamp : int;  (** The issuing thread's own clock component at issue. *)
  tview : (int * int) list;
      (** Snapshot of the issuing thread's intra-rank vector clock
          ({!Rma_vclock.Vclock.components} over {!Rma_vclock.Vclock.rt_key}
          component ids), refreshed only at spawn/join/signal/wait. *)
}

type t = {
  interval : Interval.t;
  kind : Access_kind.t;
  issuer : int;  (** Rank whose operation produced the access. *)
  seq : int;  (** Observation order within the analyzer; higher = later. *)
  debug : Debug_info.t;
  thread : thread_info;  (** Issuing thread within [issuer]. *)
}

val default_thread : issuer:int -> thread_info
(** The thread identity of any access issued by a rank that never
    spawned a thread: tid 0 under the virgin clock a main thread is
    born with. Serializers omit exactly this value, keeping
    single-thread traces byte-identical to the thread-oblivious
    schema. *)

val thread_equal : thread_info -> thread_info -> bool

val is_default_thread : t -> bool
(** Does the access carry {!default_thread} for its issuer? *)

val make :
  interval:Interval.t -> kind:Access_kind.t -> issuer:int -> seq:int -> debug:Debug_info.t -> t
(** Carries {!default_thread}[ ~issuer]. *)

val make_threaded :
  thread:thread_info ->
  interval:Interval.t ->
  kind:Access_kind.t ->
  issuer:int ->
  seq:int ->
  debug:Debug_info.t ->
  t
(** [make] with an explicit issuing-thread identity. *)

val with_interval : t -> Interval.t -> t
(** Same access restricted (or extended) to another interval — used by
    fragmentation to carve an access into sub-intervals. *)

val with_kind : t -> Access_kind.t -> t

val same_issuer : t -> t -> bool

val thread_ordered : prior:t -> later:t -> bool
(** Did [prior] happen-before [later] in its process's program order:
    same issuer and either the same thread, or [later]'s thread had
    observed [prior]'s clock position through a spawn/join/signal/wait
    synchronisation edge. Single-thread accesses of one rank are always
    ordered (the degenerate case). *)

val mergeable : t -> t -> bool
(** The §4.2 merging precondition minus adjacency: equal access kind and
    equal debug information (and same issuer, which equal debug info
    implies for distinct processes only by convention — we require it
    explicitly), plus equal thread identity so coalescing cannot erase
    the evidence the hybrid order test needs. *)

val most_recent : t -> t -> t
(** The access with the larger sequence number. *)

val dominate : older:t -> newer:t -> Interval.t -> t
(** Table 1 combination for an intersection fragment: the resulting kind
    is the stronger of the two; the debug info (and issuer/seq/thread)
    follow the access whose kind wins, with ties keeping the most
    recent. *)

val pp : Format.formatter -> t -> unit
(** Prints the thread id only when it is nonzero, so single-thread
    renderings (reports, explain output) are unchanged. *)

val to_string : t -> string

val equal : t -> t -> bool
(** Full structural equality (including [seq] and the thread info). *)
