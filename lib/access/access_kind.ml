type t = Local_read | Local_write | Rma_read | Rma_write | Rma_accumulate

let is_rma = function
  | Rma_read | Rma_write | Rma_accumulate -> true
  | Local_read | Local_write -> false
let is_local t = not (is_rma t)
let is_write = function
  | Local_write | Rma_write | Rma_accumulate -> true
  | Local_read | Rma_read -> false
let is_read t = not (is_write t)

let is_accumulate = function Rma_accumulate -> true | _ -> false

let strength = function
  | Local_read -> 0
  | Local_write -> 1
  | Rma_read -> 2
  | Rma_write -> 3
  | Rma_accumulate -> 4

let combine a b = if strength a >= strength b then a else b

let all = [ Local_read; Local_write; Rma_read; Rma_write; Rma_accumulate ]

let equal a b = a = b
let compare a b = Stdlib.compare (strength a) (strength b)

let to_string = function
  | Local_read -> "LOCAL_READ"
  | Local_write -> "LOCAL_WRITE"
  | Rma_read -> "RMA_READ"
  | Rma_write -> "RMA_WRITE"
  | Rma_accumulate -> "RMA_ACCUMULATE"

let pp fmt t = Format.pp_print_string fmt (to_string t)
