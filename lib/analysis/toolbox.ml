type kind = Baseline | Legacy | Must | Contribution | Fragmentation_only | Order_blind | Strided

let all = [ Baseline; Legacy; Must; Contribution; Fragmentation_only; Order_blind; Strided ]

let name = function
  | Baseline -> "Baseline"
  | Legacy -> "RMA-Analyzer"
  | Must -> "MUST-RMA"
  | Contribution -> "Our Contribution"
  | Fragmentation_only -> "Fragmentation-only"
  | Order_blind -> "Order-blind"
  | Strided -> "Strided extension"

let slug = function
  | Baseline -> "baseline"
  | Legacy -> "legacy"
  | Must -> "must"
  | Contribution -> "contribution"
  | Fragmentation_only -> "frag-only"
  | Order_blind -> "order-blind"
  | Strided -> "strided"

let of_slug s = List.find_opt (fun k -> String.equal (slug k) s) all

let make kind ~nprocs ?(config = Mpi_sim.Config.default) ?(mode = Tool.Collect) ?batch_inserts
    ?jobs ?budget ?predictive () =
  let analyzer =
    Rma_analyzer.create ~nprocs ~config ~mode ?batch_inserts ?jobs ?budget ?predictive
  in
  match kind with
  | Baseline -> Tool.baseline
  | Legacy -> analyzer Rma_analyzer.Legacy
  | Must -> Must_rma.create ~nprocs ~config ~mode ()
  | Contribution -> analyzer Rma_analyzer.Contribution
  | Fragmentation_only -> analyzer Rma_analyzer.Fragmentation_only
  | Order_blind -> analyzer Rma_analyzer.Order_blind
  | Strided -> analyzer Rma_analyzer.Strided_extension
