(** One registry for every detector configuration, shared by the CLI,
    the experiment harness and the examples. *)

type kind =
  | Baseline
  | Legacy  (** Published RMA-Analyzer. *)
  | Must  (** MUST-RMA-style happens-before baseline. *)
  | Contribution  (** The paper's algorithm. *)
  | Fragmentation_only  (** Ablation: §4.1 without §4.2. *)
  | Order_blind  (** Ablation: contribution with the legacy conflict rule. *)
  | Strided  (** The §6(3) future-work strided-merging extension. *)

val all : kind list

val name : kind -> string
(** Display name, e.g. ["Our Contribution"]. *)

val slug : kind -> string
(** Command-line identifier, e.g. ["contribution"]. *)

val of_slug : string -> kind option

val make :
  kind ->
  nprocs:int ->
  ?config:Mpi_sim.Config.t ->
  ?mode:Tool.mode ->
  ?batch_inserts:bool ->
  ?jobs:int ->
  ?budget:Rma_fault.Budget.t ->
  ?predictive:bool ->
  unit ->
  Tool.t
(** Defaults: [config = Mpi_sim.Config.default], [mode = Collect],
    [batch_inserts], [jobs], [budget] and [predictive] from the
    process-wide defaults (see {!Rma_analyzer.create});
    [batch_inserts] only affects the disjoint-store policies, [jobs] the
    analyzer family ([Baseline] and [Must] ignore it), [budget] every
    store-backed tool, and [predictive] the analyzer family (the
    weak-order schedulable-race analysis of DESIGN.md §15). *)
