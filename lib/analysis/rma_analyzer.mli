(** The RMA-Analyzer family of detectors.

    One constructor covers the published legacy tool, the paper's
    contribution, and the two ablations in between, differing only in
    the store policy:

    - [Legacy] — non-disjoint multiset store, conflict check along the
      lower-bound search path only, order-insensitive rule. Reproduces
      the published tool with its Figure 5a false negatives and Table 3
      false positives.
    - [Contribution] — Algorithm 1: exact overlap check, fragmentation,
      merging, order-aware rule.
    - [Fragmentation_only] — contribution without merging (§4.1 alone);
      shows the node explosion merging exists to fix.
    - [Order_blind] — contribution with the legacy conflict rule;
      isolates the order-awareness fix.

    Protocol costs mirror §5.1: every remote access charges the
    notification send, every epoch close charges the MPI_Reduce. *)

type policy =
  | Legacy
  | Contribution
  | Fragmentation_only
  | Order_blind
  | Strided_extension
      (** The paper's §6(3) future work: merging extended to non-adjacent
          strided accesses via {!Rma_store.Strided_store}. *)

val policy_name : policy -> string

val set_default_predictive : bool -> unit
(** Process-wide default for [?predictive] (the CLI's [--predictive]
    flag); wins over the [RMA_PREDICTIVE] environment variable. *)

val default_predictive : unit -> bool
(** The default [?predictive]: {!set_default_predictive} if called, else
    [RMA_PREDICTIVE] ([1]/[true]/[yes]/[on]), else [false]. *)

val create :
  nprocs:int ->
  ?config:Mpi_sim.Config.t ->
  ?mode:Tool.mode ->
  ?flush_clears:bool ->
  ?max_reports:int ->
  ?batch_inserts:bool ->
  ?jobs:int ->
  ?queue_capacity:int ->
  ?budget:Rma_fault.Budget.t ->
  ?predictive:bool ->
  policy ->
  Tool.t
(** Defaults: [config = Mpi_sim.Config.default], [mode = Abort_on_race],
    [flush_clears = false], [max_reports = 1000], [batch_inserts] from
    {!Rma_store.Disjoint_store.batch_default_enabled} (the CLI's
    [--batch-inserts] / the [RMA_BATCH_INSERTS] environment variable),
    [jobs] from {!Rma_par.default_jobs} (the CLI's [--jobs] / the
    [RMA_JOBS] environment variable), [budget] from
    {!Rma_fault.Budget.default} (the CLI's [--budget] / the
    [RMA_BUDGET] environment variable).

    A bounded [budget] applies to every (rank, window) store the
    analyzer creates; when governance drops or coarsens nodes, the sum
    appears in {!Tool.bst_summary.degraded_drops_total} and races
    detected on a degraded store carry
    [provenance.degraded = true] (downgraded confidence in SARIF).
    Under [Fail_fast] the racing insert raises
    {!Rma_fault.Budget.Exhausted} through the observer. See DESIGN.md
    §11.

    [jobs > 1] runs every store operation on a sharded
    {!Rma_par} engine: (rank, window) trees are partitioned over [jobs]
    worker domains, inserts stream to their shard's bounded FIFO queue
    ([queue_capacity], default 1024), and epoch events act as barriers.
    Race reports are merged back into the exact sequential order (see
    DESIGN.md §10), so verdicts, statistics, report ids and serialized
    exports are byte-identical to [jobs = 1]. [Abort_on_race] forces
    [jobs = 1]: aborting mid-stream inside the racing event cannot be
    reproduced asynchronously. When
    [config.analysis_self_timed] is set, the observer returns the
    engine's critical-path cost model (busiest shard per barrier
    interval) as simulated protocol seconds.

    [batch_inserts:true] opens each disjoint store's coalescing write
    buffer (see {!Rma_store.Disjoint_store.batch_begin}); the analyzer
    drains it on every [Epoch_closed] before sampling node counts, so
    verdicts and Table 4 metrics are identical with and without it.

    [max_reports] bounds the reports kept for {!Tool.t.races}; counting
    ({!Tool.t.race_count}) is never truncated, and
    {!Tool.dropped_races} exposes how many reports were not stored.

    [flush_clears:true] is the negative ablation of §6(2): it treats
    [MPI_Win_flush]/[flush_all] as if they synchronised the epoch and
    clears the caller's trees — which is wrong, because a flush only
    orders the {e caller}'s operations; the paper shows this produces
    false negatives for conflicts with other origins, which is why the
    real tool leaves flush uninstrumented.

    [predictive:true] (default {!default_predictive}) runs the weak-order
    analysis of DESIGN.md §15 alongside the observed one: a second set of
    (rank, window) trees cleared only at true synchronization edges
    (fence completion; barriers/allreduces with no unflushed one-sided
    traffic on the window) instead of the schedule-dependent
    all-ranks-closed point. Cross-rank conflicts surviving there but not
    observed are appended to {!Tool.t.races} as {e predicted}
    (schedulable) races — [provenance.predicted = true] plus a
    [provenance.witness] describing the reordering that realizes them,
    ids numbered after the observed reports, counted by
    {!Tool.t.race_count}, never aborting even under [Abort_on_race].
    With [predictive:false] every observable output is byte-identical to
    a build without the feature. *)

val create_inspectable :
  nprocs:int ->
  ?config:Mpi_sim.Config.t ->
  ?mode:Tool.mode ->
  ?flush_clears:bool ->
  ?max_reports:int ->
  ?batch_inserts:bool ->
  ?jobs:int ->
  ?queue_capacity:int ->
  ?budget:Rma_fault.Budget.t ->
  ?predictive:bool ->
  policy ->
  Tool.t * (unit -> ((int * Mpi_sim.Event.win_id) * Rma_access.Access.t list) list)
(** {!create} plus a dump of the analyzer's interval state: for each
    (rank, window) tree, the stored accesses in store order, keys
    sorted. The dump synchronises the parallel engine first, so it is
    safe mid-stream. Built for the differential determinism tests, which
    assert interval sets equal across [jobs] values. *)
