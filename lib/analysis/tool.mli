(** Common shape of a race-detection tool pluggable into the simulated
    runtime. *)

type mode =
  | Abort_on_race
      (** Raise {!Report.Race_abort} at the first race — the published
          RMA-Analyzer behaviour. *)
  | Collect  (** Record every race and keep running (harness mode). *)

type bst_summary = {
  stores : int;  (** Number of (rank, window) trees created. *)
  nodes_final_total : int;
      (** Sum over trees of the node count at the last epoch close (or
          now, for trees whose epoch is still open) — the paper's
          "number of nodes in the BST" (Table 4). *)
  nodes_peak_total : int;
  inserts_total : int;
  fragments_total : int;
  merges_total : int;
  degraded_drops_total : int;
      (** Sum over trees of nodes evicted or coarsened away by budget
          governance ({!Rma_store.Governor}); non-zero means the run
          degraded and its verdicts may be incomplete — surfaced as
          [degraded_drops] in {!Rma_report.Harness.metrics}. *)
}

val empty_bst_summary : bst_summary

type t = {
  name : string;
  observer : Mpi_sim.Event.observer;
  races : unit -> Report.t list;
      (** Chronological; capped at the tool's [max_reports] (1000 by
          default) — compare with [race_count] to spot truncation, or
          use {!dropped_races}. *)
  race_count : unit -> int;  (** Total reported, including uncapped. *)
  bst_summary : unit -> bst_summary;
      (** All-zero for tools that do not use interval trees. *)
  reset : unit -> unit;  (** Forget all state (fresh run). *)
}

val flagged : t -> bool
(** At least one race recorded. *)

val stored_races : t -> int
(** Number of reports actually kept ([List.length (races ())]). *)

val dropped_races : t -> int
(** Reports counted but not stored because the tool's [max_reports] cap
    was hit; 0 when nothing was truncated. *)

val baseline : t
(** The no-tool configuration: observes nothing, costs nothing. *)
