open Rma_access
module Flight_recorder = Rma_store.Flight_recorder

type witness = {
  w_phase : int;
  w_existing_clock : (int * int) list;
  w_incoming_clock : (int * int) list;
  w_observed_existing : (int * int) list;
  w_observed_incoming : (int * int) list;
  w_reorder : string;
}

type provenance = {
  id : int;
  epoch : int option;
  vclock : (int * int) list option;
  existing_history : Flight_recorder.origin list;
  incoming_history : Flight_recorder.origin list;
  degraded : bool;
  predicted : bool;
  witness : witness option;
}

let empty_provenance =
  {
    id = 0;
    epoch = None;
    vclock = None;
    existing_history = [];
    incoming_history = [];
    degraded = false;
    predicted = false;
    witness = None;
  }

type t = {
  tool : string;
  space : int;
  win : Mpi_sim.Event.win_id option;
  existing : Access.t;
  incoming : Access.t;
  sim_time : float;
  provenance : provenance;
}

exception Race_abort of t

let make ~tool ~space ~win ~existing ~incoming ~sim_time ?(provenance = empty_provenance) () =
  { tool; space; win; existing; incoming; sim_time; provenance }

let to_message t =
  Printf.sprintf
    "Error when inserting memory access of type %s from file %s:%d with already inserted \
     interval of type %s from file %s:%d. The program will be exiting now with MPI_Abort."
    (Access_kind.to_string t.incoming.Access.kind)
    t.incoming.Access.debug.Debug_info.file t.incoming.Access.debug.Debug_info.line
    (Access_kind.to_string t.existing.Access.kind)
    t.existing.Access.debug.Debug_info.file t.existing.Access.debug.Debug_info.line

let pp fmt t =
  Format.fprintf fmt "[%s] rank %d%s: %s" t.tool t.space
    (match t.win with None -> "" | Some w -> Printf.sprintf " (window %d)" w)
    (to_message t)

let involves_operation t operation =
  String.equal t.existing.Access.debug.Debug_info.operation operation
  || String.equal t.incoming.Access.debug.Debug_info.operation operation

let matrix_cell t =
  Printf.sprintf "%s x %s (%s)"
    (Access_kind.to_string t.existing.Access.kind)
    (Access_kind.to_string t.incoming.Access.kind)
    (if t.existing.Access.issuer <> t.incoming.Access.issuer then "different processes"
     else if t.existing.Access.thread.Access.tid = t.incoming.Access.thread.Access.tid then
       "same process"
     else "same process, different threads")

let contributing_debugs t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add (d : Debug_info.t) =
    let key = (d.Debug_info.file, d.Debug_info.line, d.Debug_info.operation) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      out := d :: !out
    end
  in
  add t.existing.Access.debug;
  add t.incoming.Access.debug;
  List.iter
    (fun (o : Flight_recorder.origin) -> add o.Flight_recorder.access.Access.debug)
    (t.provenance.existing_history @ t.provenance.incoming_history);
  List.rev !out
