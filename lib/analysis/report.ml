open Rma_access

type t = {
  tool : string;
  space : int;
  win : Mpi_sim.Event.win_id option;
  existing : Access.t;
  incoming : Access.t;
  sim_time : float;
}

exception Race_abort of t

let make ~tool ~space ~win ~existing ~incoming ~sim_time =
  { tool; space; win; existing; incoming; sim_time }

let to_message t =
  Printf.sprintf
    "Error when inserting memory access of type %s from file %s:%d with already inserted \
     interval of type %s from file %s:%d. The program will be exiting now with MPI_Abort."
    (Access_kind.to_string t.incoming.Access.kind)
    t.incoming.Access.debug.Debug_info.file t.incoming.Access.debug.Debug_info.line
    (Access_kind.to_string t.existing.Access.kind)
    t.existing.Access.debug.Debug_info.file t.existing.Access.debug.Debug_info.line

let pp fmt t =
  Format.fprintf fmt "[%s] rank %d%s: %s" t.tool t.space
    (match t.win with None -> "" | Some w -> Printf.sprintf " (window %d)" w)
    (to_message t)

let involves_operation t operation =
  String.equal t.existing.Access.debug.Debug_info.operation operation
  || String.equal t.incoming.Access.debug.Debug_info.operation operation
