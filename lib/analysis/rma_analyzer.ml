open Rma_access
open Rma_store
module Event = Mpi_sim.Event
module Config = Mpi_sim.Config
module Obs = Rma_obs.Obs
module Events = Rma_obs.Events
module Telemetry = Rma_obs.Telemetry
module Vclock = Rma_vclock.Vclock

(* Telemetry sampling rides the epoch-close path (the natural heartbeat
   of a run) but is rate-limited so epoch-dense workloads don't pay a
   /proc read per epoch. *)
let telemetry_interval = 0.25
let last_telemetry = ref 0.0

let sample_telemetry () =
  let now = Rma_util.Timer.now () in
  if now -. !last_telemetry >= telemetry_interval then begin
    last_telemetry := now;
    Telemetry.sample ()
  end

type policy = Legacy | Contribution | Fragmentation_only | Order_blind | Strided_extension

(* Predictive mode default: the CLI's [--predictive] flag (via
   [set_default_predictive]) wins over the [RMA_PREDICTIVE] environment
   variable, mirroring how batch inserts and jobs resolve theirs. *)
let default_predictive_override = ref None

let set_default_predictive b = default_predictive_override := Some b

let env_predictive () =
  match Sys.getenv_opt "RMA_PREDICTIVE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let default_predictive () =
  match !default_predictive_override with Some b -> b | None -> env_predictive ()

let policy_name = function
  | Legacy -> "RMA-Analyzer"
  | Contribution -> "Our Contribution"
  | Fragmentation_only -> "Fragmentation-only (ablation)"
  | Order_blind -> "Order-blind (ablation)"
  | Strided_extension -> "Strided-merging extension"

(* The store implementations behind one dispatch. *)
type store = L of Legacy_store.t | D of Disjoint_store.t | S of Strided_store.t

let store_insert = function
  | L s -> Legacy_store.insert s
  | D s -> Disjoint_store.insert s
  | S s -> Strided_store.insert s
let store_stats = function
  | L s -> Legacy_store.stats s
  | D s -> Disjoint_store.stats s
  | S s -> Strided_store.stats s
let store_size = function
  | L s -> Legacy_store.size s
  | D s -> Disjoint_store.size s
  | S s -> Strided_store.size s
let store_clear = function
  | L s -> Legacy_store.clear s
  | D s -> Disjoint_store.clear s
  | S s -> Strided_store.clear s
let store_to_list = function
  | L s -> Legacy_store.to_list s
  | D s -> Disjoint_store.to_list s
  | S s -> Strided_store.to_list s

(* Flight-recorder hooks: only the disjoint store keeps interval
   history. The legacy store never merges (every access stays its own
   node, so its debug info survives unmodified), and the strided store's
   regions keep one uniform debug info by construction. *)
let store_recorder = function D s -> Disjoint_store.recorder s | L _ | S _ -> None

(* Every store tracks epoch boundaries now: the disjoint store stamps
   its flight recorder, and all three move the governance watermark
   that [Spill_oldest_epoch] eviction keys on. *)
let store_note_epoch = function
  | D s -> Disjoint_store.note_epoch s
  | L s -> Legacy_store.note_epoch s
  | S s -> Strided_store.note_epoch s

(* Has budget governance ever dropped or coarsened a node of this
   store? Races detected afterwards carry downgraded confidence. *)
let store_degraded store = (store_stats store).Store_intf.degraded_drops > 0

(* Only the disjoint store buffers inserts; the buffer must be drained
   before anything samples the tree (epoch-close node counts) so the
   observable state matches an unbatched run byte for byte. *)
let store_flush_batch = function D s -> Disjoint_store.batch_flush s | L _ | S _ -> ()

type tree = {
  store : store;
  mutable epoch_open : bool;
  mutable nodes_at_last_close : int option;
  mutable epoch_span : Obs.span option;  (* open Epoch_opened..Epoch_closed trace span *)
}

(* A race detected on a worker domain, parked until the next barrier.
   Everything the sequential [record_race] needs is captured at
   detection time — in particular the flight-recorder histories, which
   must be read before later inserts evolve the recorder's ring — except
   the race id, which is globally ordered and therefore assigned on the
   caller thread during the merge. *)
type pending_race = {
  p_tag : int;  (** Global submission index — the sequential insert order. *)
  p_space : int;
  p_win : Event.win_id;
  p_existing : Access.t;
  p_incoming : Access.t;
  p_sim_time : float;
  p_prov : Report.provenance;  (** [id = 0]; patched during the merge. *)
  p_predicted : bool;
      (** Fired in a weak (synchronization-only) tree: replayed through
          the predictive classifier, not [record_race]. *)
}

(* Canonical source-site pair of a conflict, the dedup key between the
   observed and the weak analysis: the same pair of source lines must
   not be reported both as an observed and as a predicted race, and a
   weak tree (which is cleared more rarely) must not re-report a pair
   against several surviving older nodes. *)
type site = string * int * string

let site_of (a : Access.t) =
  ( a.Access.debug.Debug_info.file,
    a.Access.debug.Debug_info.line,
    a.Access.debug.Debug_info.operation )

let pair_key_of a b : site * site =
  let sa = site_of a and sb = site_of b in
  if sa <= sb then (sa, sb) else (sb, sa)

(* Parallel half of the analyzer: the engine plus per-shard race
   buffers. A buffer is written only by its shard's worker domain and
   drained by the caller right after a barrier, so no locking beyond the
   engine's own is needed. *)
type par = {
  engine : Rma_par.t;
  mutable next_tag : int;
  shard_races : pending_race list ref array;  (** Newest first, per shard. *)
}

(* Predictive half of the analyzer (DESIGN.md §15): a second set of
   (space, window) trees sharing the store machinery but cleared only at
   TRUE synchronization edges — fence completion, and collective
   barriers whose outstanding one-sided traffic was flushed — never at
   the schedule-dependent all-ranks-closed point the observed trees
   clear at. Conflicts surviving in a weak tree are unordered under MPI
   semantics alone: some legal schedule overlaps them ("schedulable
   races", reported as [predicted] with a witness reordering). *)
type predictive = {
  weak_trees : (int * Event.win_id, tree) Hashtbl.t;
  weak_phase : (Event.win_id, int) Hashtbl.t;
      (* Synchronization phases of a window: bumped on every weak clear.
         Two accesses in the same phase are weak-concurrent. *)
  last_closed : (int, Event.win_id) Hashtbl.t;
      (* rank -> window of the rank's most recent Epoch_closed.
         [Collective Fence] events carry no window id, so a fence
         arrival is attributed to the rank's last-closed window (the
         runtime dispatches a fence batch as close-all / fence-all /
         reopen-all, so the correlation is exact for the common
         single-window-per-fence shape; multi-window fence programs are
         a documented approximation). *)
  fence_arrivals : (Event.win_id, (int, unit) Hashtbl.t) Hashtbl.t;
      (* Distinct ranks whose fence arrival named the window; at
         [nprocs] the fence has completed and the window's weak trees
         clear — fence completion orders every rank's operations. *)
  coll_arrivals : (int, unit) Hashtbl.t;
      (* Distinct ranks inside the current Barrier/Allreduce. *)
  unflushed : (Event.win_id * int, unit) Hashtbl.t;
      (* (window, issuer) pairs with one-sided operations not yet
         completed by that issuer's flush / unlock / fence. A barrier
         orders ranks but completes nothing: it only clears a window's
         weak trees when no rank holds unflushed traffic on it
         (flush-then-barrier is the MiniVite-style sync idiom). *)
  clocks : Vclock.Dual.t array;
      (* Per-rank observed/weak clock pair, witness evidence only. *)
  observed_pairs : (site * site, unit) Hashtbl.t;
  predicted_pairs : (site * site, unit) Hashtbl.t;
  mutable predicted : Report.t list;  (* newest first; ids assigned on read *)
  mutable predicted_count : int;
}

type state = {
  nprocs : int;
  config : Config.t;
  mode : Tool.mode;
  flush_clears : bool;
  batch_inserts : bool;
  budget : Rma_fault.Budget.t option;
      (* Explicit per-tool budget; [None] defers to the process default
         at store creation (see Governor.create). *)
  policy : policy;
  name : string;
  max_reports : int;
  par : par option;  (** [None] = today's sequential path, byte for byte. *)
  trees : (int * Event.win_id, tree) Hashtbl.t;  (* (space, window) *)
  epoch_closers : (Event.win_id, (int, unit) Hashtbl.t) Hashtbl.t;
      (* The DISTINCT ranks that closed an epoch on a window since the
         last global clear. The §5.1 protocol ends every epoch with an
         MPI_Reduce and a wait for pending remote-access notifications,
         so a window's trees are only cleared once EVERY rank has closed
         — otherwise a target would drop remote accesses from origins
         still inside their epoch. A per-window set (not a close-event
         count): one rank closing several epochs before the others close
         any must not reach [nprocs] on its own. *)
  mutable races : Report.t list;
  mutable race_count : int;
  predictive : predictive option;  (** [None] = observed-only, byte for byte. *)
}

let new_store ~batch ?budget policy =
  match policy with
  | Legacy -> L (Legacy_store.create ?budget ())
  | Contribution -> D (Disjoint_store.create ~batch ?budget ())
  | Fragmentation_only -> D (Disjoint_store.create ~merge:false ~batch ?budget ())
  | Order_blind -> D (Disjoint_store.create ~order_aware:false ~batch ?budget ())
  | Strided_extension -> S (Strided_store.create ?budget ())

let tree_for st key =
  match Hashtbl.find_opt st.trees key with
  | Some t -> t
  | None ->
      let t =
        { store = new_store ~batch:st.batch_inserts ?budget:st.budget st.policy;
          epoch_open = false; nodes_at_last_close = None; epoch_span = None }
      in
      Hashtbl.replace st.trees key t;
      t

let obs_races = Obs.counter ~help:"Race reports recorded by the analyzer" "analyzer.races"

let obs_nodes_at_close =
  Obs.histogram ~unit_:"nodes" ~help:"Tree size sampled at each epoch close (Table 4 metric)"
    "analyzer.nodes_at_close"

let obs_tree_nodes =
  Obs.gauge ~help:"Tree size at the most recent epoch close" "analyzer.tree_nodes"

let obs_epoch_closes = Obs.counter ~help:"Epoch close events observed" "analyzer.epoch_closes"

let obs_window_clears =
  Obs.counter ~help:"Global window clears (all ranks closed)" "analyzer.window_clears"

let record_race st ~space ~win ~existing ~incoming ~sim_time ~provenance =
  let report = Report.make ~tool:st.name ~space ~win ~existing ~incoming ~sim_time ~provenance () in
  (match st.predictive with
  | Some p -> Hashtbl.replace p.observed_pairs (pair_key_of existing incoming) ()
  | None -> ());
  st.race_count <- st.race_count + 1;
  Obs.incr obs_races;
  if st.race_count <= st.max_reports then st.races <- report :: st.races;
  match st.mode with
  | Tool.Abort_on_race -> raise (Report.Race_abort report)
  | Tool.Collect -> ()

(* Provenance of a conflict inside one tree: the next race id, plus —
   when the flight recorder is on — the tree's epoch and the original
   accesses behind each side's byte range. *)
let provenance_of st tree ~existing ~incoming =
  let id = st.race_count + 1 in
  let degraded = store_degraded tree.store in
  match store_recorder tree.store with
  | None -> { Report.empty_provenance with Report.id; degraded }
  | Some r ->
      {
        Report.empty_provenance with
        Report.id;
        epoch = Some (Flight_recorder.current_epoch r);
        existing_history = Flight_recorder.history r existing.Access.interval;
        incoming_history = Flight_recorder.history r incoming.Access.interval;
        degraded;
      }

(* Worker-side provenance: like [provenance_of] minus the race id,
   which only exists once races are merged back into global order. *)
let worker_provenance tree ~existing ~incoming =
  let degraded = store_degraded tree.store in
  match store_recorder tree.store with
  | None -> { Report.empty_provenance with Report.degraded = degraded }
  | Some r ->
      {
        Report.empty_provenance with
        Report.epoch = Some (Flight_recorder.current_epoch r);
        existing_history = Flight_recorder.history r existing.Access.interval;
        incoming_history = Flight_recorder.history r incoming.Access.interval;
        degraded;
      }

(* ---- Predictive (weak-order) half, DESIGN.md §15 ---- *)

let obs_predicted =
  Obs.counter ~help:"Predicted (schedulable) races recorded by the analyzer"
    "analyzer.predicted_races"

let weak_tree_for st p key =
  match Hashtbl.find_opt p.weak_trees key with
  | Some t -> t
  | None ->
      let t =
        { store = new_store ~batch:st.batch_inserts ?budget:st.budget st.policy;
          epoch_open = false; nodes_at_last_close = None; epoch_span = None }
      in
      Hashtbl.replace p.weak_trees key t;
      t

let weak_clear_window p win =
  Hashtbl.iter (fun (_, w) t -> if w = win then store_clear t.store) p.weak_trees;
  let phase = Option.value (Hashtbl.find_opt p.weak_phase win) ~default:0 in
  Hashtbl.replace p.weak_phase win (phase + 1)

(* A conflict surfaced by a weak tree. [Race_rule.check_weak] excuses
   same-rank pairs (ordered by the rank's own completion edges under
   every schedule — or already observed, since a weak tree is only
   cleared when its observed counterpart also cleared); what survives is
   deduplicated against the observed reports and previously predicted
   pairs by canonical source-site pair, then recorded with a witness.
   Predicted races never abort: the observed run did NOT take the racing
   schedule, so there is nothing to stop. *)
let consider_predicted st p ~space ~win ~existing ~incoming ~sim_time ~prov_base =
  let order_aware =
    match st.policy with Legacy | Order_blind -> false | _ -> true
  in
  match Race_rule.check_weak ~order_aware ~existing ~incoming with
  | Race_rule.No_race | Race_rule.Race _ -> ()
  | Race_rule.Predicted _ ->
      let key = pair_key_of existing incoming in
      if (not (Hashtbl.mem p.observed_pairs key)) && not (Hashtbl.mem p.predicted_pairs key)
      then begin
        Hashtbl.replace p.predicted_pairs key ();
        let phase = Option.value (Hashtbl.find_opt p.weak_phase win) ~default:0 in
        let clock_of (a : Access.t) which =
          if a.Access.issuer >= 0 && a.Access.issuer < Array.length p.clocks then
            Vclock.components (which p.clocks.(a.Access.issuer))
          else []
        in
        let describe (a : Access.t) =
          Printf.sprintf "%s by rank %d at %s:%d"
            (Access_kind.to_string a.Access.kind)
            a.Access.issuer a.Access.debug.Debug_info.file a.Access.debug.Debug_info.line
        in
        let reorder =
          Printf.sprintf
            "hold rank %d before its next epoch close so the %s is still in flight when the %s \
             executes; no fence or fully flushed barrier on window %d separates the two accesses \
             (weak phase %d)"
            existing.Access.issuer (describe existing) (describe incoming) win phase
        in
        let witness =
          {
            Report.w_phase = phase;
            w_existing_clock = clock_of existing Vclock.Dual.weak;
            w_incoming_clock = clock_of incoming Vclock.Dual.weak;
            w_observed_existing = clock_of existing Vclock.Dual.observed;
            w_observed_incoming = clock_of incoming Vclock.Dual.observed;
            w_reorder = reorder;
          }
        in
        let provenance =
          { prov_base with Report.predicted = true; witness = Some witness }
        in
        let report =
          Report.make ~tool:st.name ~space ~win:(Some win) ~existing ~incoming ~sim_time
            ~provenance ()
        in
        p.predicted <- report :: p.predicted;
        p.predicted_count <- p.predicted_count + 1;
        Obs.incr obs_predicted
      end

let insert_into st key access ~sim_time =
  let tree = tree_for st key in
  match st.par with
  | None -> (
      match store_insert tree.store access with
      | Store_intf.Inserted -> ()
      | Store_intf.Race_detected { existing; incoming } ->
          let space, win = key in
          let provenance = provenance_of st tree ~existing ~incoming in
          record_race st ~space ~win:(Some win) ~existing ~incoming ~sim_time ~provenance)
  | Some p ->
      (* The tree is resolved (and created) here on the caller thread;
         the worker only runs the store operation. The tag is the global
         submission index: sorting merged races by it reproduces the
         exact sequential detection order, so ids, the [max_reports]
         truncation point and the report list are all byte-identical. *)
      let space, win = key in
      let tag = p.next_tag in
      p.next_tag <- tag + 1;
      let shard = Rma_par.shard_of p.engine ~space ~win in
      let buf = p.shard_races.(shard) in
      Rma_par.submit p.engine ~shard (fun () ->
          match store_insert tree.store access with
          | Store_intf.Inserted -> ()
          | Store_intf.Race_detected { existing; incoming } ->
              let p_prov = worker_provenance tree ~existing ~incoming in
              buf :=
                {
                  p_tag = tag;
                  p_space = space;
                  p_win = win;
                  p_existing = existing;
                  p_incoming = incoming;
                  p_sim_time = sim_time;
                  p_prov;
                  p_predicted = false;
                }
                :: !buf)

(* Weak-tree counterpart of [insert_into]: same store machinery, same
   shard (the weak tree of a (space, win) key hashes identically, so its
   operations are FIFO-ordered after the observed insert of the same
   access — the observed race of a pair always merges before the weak
   conflict, which the dedup in [consider_predicted] relies on). *)
let weak_insert_into st p key access ~sim_time =
  let tree = weak_tree_for st p key in
  match st.par with
  | None -> (
      match store_insert tree.store access with
      | Store_intf.Inserted -> ()
      | Store_intf.Race_detected { existing; incoming } ->
          let space, win = key in
          let prov_base = worker_provenance tree ~existing ~incoming in
          consider_predicted st p ~space ~win ~existing ~incoming ~sim_time ~prov_base)
  | Some par ->
      let space, win = key in
      let tag = par.next_tag in
      par.next_tag <- tag + 1;
      let shard = Rma_par.shard_of par.engine ~space ~win in
      let buf = par.shard_races.(shard) in
      Rma_par.submit par.engine ~shard (fun () ->
          match store_insert tree.store access with
          | Store_intf.Inserted -> ()
          | Store_intf.Race_detected { existing; incoming } ->
              let p_prov = worker_provenance tree ~existing ~incoming in
              buf :=
                {
                  p_tag = tag;
                  p_space = space;
                  p_win = win;
                  p_existing = existing;
                  p_incoming = incoming;
                  p_sim_time = sim_time;
                  p_prov;
                  p_predicted = true;
                }
                :: !buf)

(* Drain the shard race buffers (caller thread, after a barrier) and
   replay them through [record_race] in submission order. *)
let merge_pending st p =
  let pending =
    Array.fold_left
      (fun acc buf ->
        let races = !buf in
        buf := [];
        List.rev_append races acc)
      [] p.shard_races
  in
  match pending with
  | [] -> ()
  | pending ->
      let pending = List.sort (fun a b -> compare a.p_tag b.p_tag) pending in
      List.iter
        (fun pr ->
          if pr.p_predicted then
            match st.predictive with
            | Some p ->
                consider_predicted st p ~space:pr.p_space ~win:pr.p_win ~existing:pr.p_existing
                  ~incoming:pr.p_incoming ~sim_time:pr.p_sim_time ~prov_base:pr.p_prov
            | None -> ()
          else
            let provenance = { pr.p_prov with Report.id = st.race_count + 1 } in
            record_race st ~space:pr.p_space ~win:(Some pr.p_win) ~existing:pr.p_existing
              ~incoming:pr.p_incoming ~sim_time:pr.p_sim_time ~provenance)
        pending

(* Epoch barrier: wait for every in-flight store operation, restore the
   sequential race order, and — when the config says the analyzer times
   itself — return the critical-path cost model's simulated seconds:
   the busiest shard's measured work since the last barrier, scaled
   exactly like the runtime scales inline observer time. *)
let sync st =
  match st.par with
  | None -> 0.0
  | Some p ->
      Rma_par.barrier p.engine;
      merge_pending st p;
      let work = Rma_par.take_work_seconds p.engine in
      if st.config.Config.analysis_self_timed then
        work *. st.config.Config.analysis_overhead_scale
      else 0.0

(* Which trees receive a local access: the window containing it when its
   epoch is open, otherwise every open epoch of the rank (the analyzer
   only collects accesses "contained within each epoch", §5.1). *)
let local_targets st ~space ~win =
  match win with
  | Some w -> (
      match Hashtbl.find_opt st.trees (space, w) with
      | Some t when t.epoch_open -> [ (space, w) ]
      | _ -> [])
  | None ->
      Hashtbl.fold
        (fun (sp, w) t acc -> if sp = space && t.epoch_open then (sp, w) :: acc else acc)
        st.trees []

let on_access st (a : Event.access_event) =
  if not a.Event.relevant then 0.0 (* filtered out by the alias analysis *)
  else begin
    let access = a.Event.access in
    let is_rma = Access_kind.is_rma access.Access.kind in
    let keys =
      if is_rma then
        match a.Event.win with Some w -> [ (a.Event.space, w) ] | None -> []
      else local_targets st ~space:a.Event.space ~win:a.Event.win
    in
    List.iter (fun key -> insert_into st key access ~sim_time:a.Event.sim_time) keys;
    (match st.predictive with
    | Some p ->
        (* The issuer now has uncompleted one-sided traffic on the
           window, until its next flush / unlock / fence: a barrier
           reached before that cannot weakly synchronise the window. *)
        if is_rma then
          List.iter (fun (_, w) -> Hashtbl.replace p.unflushed (w, access.Access.issuer) ()) keys;
        List.iter (fun key -> weak_insert_into st p key access ~sim_time:a.Event.sim_time) keys
    | None -> ());
    (* The origin's notification MPI_Send towards the target (§5.1):
       charged on the target-side event of cross-rank operations. *)
    if is_rma && a.Event.space <> access.Access.issuer then
      Config.message_cost st.config ~bytes_count:32
    else 0.0
  end

(* True-synchronization edges for the weak order (everything else —
   epoch closes included — is schedule-induced and leaves weak trees
   alone). A fence completion orders every rank's operations on its
   window; the fence [Collective] event carries no window id, so the
   arrival is attributed to the rank's last-closed window (exact for the
   runtime's close-all / fence-all / reopen-all dispatch). A barrier or
   allreduce orders ranks but completes no one-sided traffic: it clears
   a window only when no rank holds unflushed operations on it — the
   flush-then-barrier idiom MiniVite uses. *)
let predictive_collective st p ~kind ~rank =
  match kind with
  | Event.Fence -> (
      match Hashtbl.find_opt p.last_closed rank with
      | None -> ()
      | Some win ->
          let arrivals =
            match Hashtbl.find_opt p.fence_arrivals win with
            | Some set -> set
            | None ->
                let set = Hashtbl.create st.nprocs in
                Hashtbl.replace p.fence_arrivals win set;
                set
          in
          Hashtbl.replace arrivals rank ();
          if Hashtbl.length arrivals >= st.nprocs then begin
            Hashtbl.remove p.fence_arrivals win;
            weak_clear_window p win;
            Vclock.Dual.sync_step p.clocks
          end)
  | Event.Barrier | Event.Allreduce ->
      Hashtbl.replace p.coll_arrivals rank ();
      if Hashtbl.length p.coll_arrivals >= st.nprocs then begin
        Hashtbl.reset p.coll_arrivals;
        let wins = Hashtbl.create 4 in
        Hashtbl.iter (fun (_, w) _ -> Hashtbl.replace wins w ()) p.weak_trees;
        Hashtbl.iter
          (fun w () ->
            let flushed = ref true in
            for r = 0 to st.nprocs - 1 do
              if Hashtbl.mem p.unflushed (w, r) then flushed := false
            done;
            if !flushed then weak_clear_window p w)
          wins;
        if Hashtbl.length p.unflushed = 0 then Vclock.Dual.sync_step p.clocks
      end

let observer st event =
  (* Parallel engines synchronise exactly where the sequential analyzer
     touches whole trees: epoch boundaries (note_epoch / batch flush /
     size sampling / window clears) and the flush-clears ablation. The
     barrier drains every shard queue first, so the main-thread code
     below always sees the same store states a sequential run would. *)
  let barrier_cost =
    match (st.par, event) with
    | Some _, (Event.Epoch_opened _ | Event.Epoch_closed _) -> sync st
    | Some _, Event.Flushed _ when st.flush_clears -> sync st
    (* Weak clears at collectives touch whole weak trees; drain in-flight
       shard operations first, exactly like epoch boundaries do. *)
    | Some _, Event.Collective _ when st.predictive <> None -> sync st
    | _ -> 0.0
  in
  barrier_cost
  +.
  match event with
  | Event.Access a -> on_access st a
  | Event.Epoch_opened { win; rank; sim_time } ->
      let tree = tree_for st (rank, win) in
      tree.epoch_open <- true;
      store_note_epoch tree.store;
      if Obs.is_enabled () then begin
        tree.epoch_span <-
          Obs.start_span ~cat:"epoch" ~pid:(Obs.sim_pid ()) ~tid:rank ~at:sim_time
            (Printf.sprintf "epoch win=%d" win);
        Events.emit
          ~span_id:(Obs.span_id tree.epoch_span)
          ~kv:
            [ ("event", "epoch_open"); ("win", string_of_int win); ("rank", string_of_int rank) ]
          Events.Debug "analyzer"
      end;
      0.0
  | Event.Epoch_closed { win; rank; sim_time } ->
      (* Wall time of the whole close handling (batch flush, journal,
         window clear) feeds the epoch-close latency SLO; timed only
         under Obs so the sequential hot path stays clock-free. *)
      let close_t0 = if Obs.is_enabled () then Rma_util.Timer.now () else 0.0 in
      let tree = tree_for st (rank, win) in
      tree.epoch_open <- false;
      store_flush_batch tree.store;
      let nodes = store_size tree.store in
      tree.nodes_at_last_close <- Some nodes;
      if Obs.is_enabled () then begin
        Events.emit
          ~span_id:(Obs.span_id tree.epoch_span)
          ~kv:
            [
              ("event", "epoch_close");
              ("win", string_of_int win);
              ("rank", string_of_int rank);
              ("nodes", string_of_int nodes);
            ]
          Events.Debug "analyzer";
        Obs.finish_span ~at:sim_time ~args:[ ("nodes", string_of_int nodes) ] tree.epoch_span;
        tree.epoch_span <- None;
        Obs.observe_int obs_nodes_at_close nodes;
        Obs.set_gauge obs_tree_nodes (float_of_int nodes);
        Obs.incr obs_epoch_closes;
        sample_telemetry ()
      end;
      let closers =
        match Hashtbl.find_opt st.epoch_closers win with
        | Some set -> set
        | None ->
            let set = Hashtbl.create st.nprocs in
            Hashtbl.replace st.epoch_closers win set;
            set
      in
      Hashtbl.replace closers rank ();
      if Hashtbl.length closers >= st.nprocs then begin
        Hashtbl.remove st.epoch_closers win;
        Obs.incr obs_window_clears;
        (* NOT mirrored on the weak trees: this point depends on the
           schedule the run took (unlock_all is not collective), which is
           exactly the gap the predictive analysis exists to close. *)
        Hashtbl.iter (fun (_, w) t -> if w = win then store_clear t.store) st.trees
      end;
      (match st.predictive with
      | Some p ->
          Hashtbl.replace p.last_closed rank win;
          (* The rank's own unlock/complete finishes its one-sided
             operations on the window. *)
          Hashtbl.remove p.unflushed (win, rank);
          if rank >= 0 && rank < Array.length p.clocks then
            Vclock.Dual.local_step p.clocks.(rank) ~rank
      | None -> ());
      (* The end-of-epoch MPI_Reduce counting remote accesses (§5.1). *)
      let cost = Config.collective_cost st.config ~nprocs:st.nprocs ~bytes_count:8 in
      if close_t0 > 0.0 then Telemetry.note_epoch_close (Rma_util.Timer.now () -. close_t0);
      cost
  | Event.Flushed { win; rank; _ } ->
      (* Deliberately untreated by default: MPI_Win_flush only orders the
         caller's operations, so clearing the tree here causes false
         negatives for third-party origins (§6(2)). [flush_clears] exists
         as the negative ablation demonstrating exactly that. *)
      if st.flush_clears then begin
        match Hashtbl.find_opt st.trees (rank, win) with
        | Some tree -> store_clear tree.store
        | None -> ()
      end;
      (* For the weak order a flush DOES matter — not as a clear (it
         orders only the caller's operations, §6(2)) but as completion:
         the caller no longer holds unflushed traffic on the window, so
         a subsequent barrier can weakly synchronise it. *)
      (match st.predictive with
      | Some p -> Hashtbl.remove p.unflushed (win, rank)
      | None -> ());
      0.0
  | Event.Collective { kind; rank; _ } ->
      (match st.predictive with
      | Some p -> predictive_collective st p ~kind ~rank
      | None -> ());
      0.0
  | Event.Win_created _ | Event.Win_freed _ | Event.Finished _ -> 0.0

let bst_summary st () =
  Hashtbl.fold
    (fun _ tree acc ->
      let stats = store_stats tree.store in
      let final =
        match tree.nodes_at_last_close with
        | Some n when not tree.epoch_open -> n
        | _ -> stats.Store_intf.nodes
      in
      {
        Tool.stores = acc.Tool.stores + 1;
        nodes_final_total = acc.Tool.nodes_final_total + final;
        nodes_peak_total = acc.Tool.nodes_peak_total + stats.Store_intf.peak_nodes;
        inserts_total = acc.Tool.inserts_total + stats.Store_intf.inserts;
        fragments_total = acc.Tool.fragments_total + stats.Store_intf.fragments_created;
        merges_total = acc.Tool.merges_total + stats.Store_intf.merges_performed;
        degraded_drops_total = acc.Tool.degraded_drops_total + stats.Store_intf.degraded_drops;
      })
    st.trees Tool.empty_bst_summary

let make_state ~nprocs ?(config = Config.default) ?(mode = Tool.Abort_on_race)
    ?(flush_clears = false) ?(max_reports = 1000) ?batch_inserts ?jobs ?queue_capacity ?budget
    ?predictive policy =
  let batch_inserts =
    match batch_inserts with Some b -> b | None -> Disjoint_store.batch_default_enabled ()
  in
  let predictive_on =
    match predictive with Some b -> b | None -> default_predictive ()
  in
  let jobs = match jobs with Some j -> j | None -> Rma_par.default_jobs () in
  (* Abort_on_race must raise from inside the racing insert's event —
     mid-stream, before later events run — which an asynchronous engine
     cannot reproduce; it stays on the sequential path regardless of
     [jobs]. *)
  let jobs = match mode with Tool.Abort_on_race -> 1 | Tool.Collect -> max 1 jobs in
  let par =
    if jobs <= 1 then None
    else
      Some
        {
          engine = Rma_par.create ~jobs ?queue_capacity ();
          next_tag = 0;
          shard_races = Array.init jobs (fun _ -> ref []);
        }
  in
  {
    nprocs;
    config;
    mode;
    flush_clears;
    batch_inserts;
    budget;
    policy;
    name = policy_name policy;
    max_reports;
    par;
    trees = Hashtbl.create 16;
    epoch_closers = Hashtbl.create 4;
    races = [];
    race_count = 0;
    predictive =
      (if not predictive_on then None
       else
         Some
           {
             weak_trees = Hashtbl.create 16;
             weak_phase = Hashtbl.create 4;
             last_closed = Hashtbl.create 8;
             fence_arrivals = Hashtbl.create 4;
             coll_arrivals = Hashtbl.create 8;
             unflushed = Hashtbl.create 16;
             clocks = Array.init nprocs (fun _ -> Vclock.Dual.create ());
             observed_pairs = Hashtbl.create 16;
             predicted_pairs = Hashtbl.create 16;
             predicted = [];
             predicted_count = 0;
           });
  }

(* Predicted reports in detection order, re-filtered against the pairs
   the observed analysis ended up reporting (a pair predicted early in
   the run may be observed later, e.g. across loop iterations; observed
   wins) and numbered after the observed races. Recomputed on every
   read — reads are idempotent. *)
let predicted_reports st =
  match st.predictive with
  | None -> []
  | Some p ->
      List.rev p.predicted
      |> List.filter (fun r ->
             not (Hashtbl.mem p.observed_pairs (pair_key_of r.Report.existing r.Report.incoming)))
      |> List.mapi (fun i r ->
             { r with Report.provenance = { r.Report.provenance with Report.id = st.race_count + i + 1 } })

(* Every externally observable read syncs first: a caller sampling races
   or tree statistics mid-stream must see exactly the sequential state. *)
let tool_of_state st =
  let settle () = ignore (sync st) in
  {
    Tool.name = st.name;
    observer = observer st;
    races =
      (fun () ->
        settle ();
        List.rev st.races @ predicted_reports st);
    race_count =
      (fun () ->
        settle ();
        st.race_count + List.length (predicted_reports st));
    bst_summary =
      (fun () ->
        settle ();
        bst_summary st ());
    reset =
      (fun () ->
        settle ();
        (match st.par with Some p -> p.next_tag <- 0 | None -> ());
        Hashtbl.reset st.trees;
        Hashtbl.reset st.epoch_closers;
        st.races <- [];
        st.race_count <- 0;
        match st.predictive with
        | None -> ()
        | Some p ->
            Hashtbl.reset p.weak_trees;
            Hashtbl.reset p.weak_phase;
            Hashtbl.reset p.last_closed;
            Hashtbl.reset p.fence_arrivals;
            Hashtbl.reset p.coll_arrivals;
            Hashtbl.reset p.unflushed;
            Array.iter Vclock.Dual.reset p.clocks;
            Hashtbl.reset p.observed_pairs;
            Hashtbl.reset p.predicted_pairs;
            p.predicted <- [];
            p.predicted_count <- 0);
  }

let create ~nprocs ?config ?mode ?flush_clears ?max_reports ?batch_inserts ?jobs ?queue_capacity
    ?budget ?predictive policy =
  tool_of_state
    (make_state ~nprocs ?config ?mode ?flush_clears ?max_reports ?batch_inserts ?jobs
       ?queue_capacity ?budget ?predictive policy)

let create_inspectable ~nprocs ?config ?mode ?flush_clears ?max_reports ?batch_inserts ?jobs
    ?queue_capacity ?budget ?predictive policy =
  let st =
    make_state ~nprocs ?config ?mode ?flush_clears ?max_reports ?batch_inserts ?jobs
      ?queue_capacity ?budget ?predictive policy
  in
  let dump () =
    ignore (sync st);
    Hashtbl.fold (fun key tree acc -> (key, store_to_list tree.store) :: acc) st.trees []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (tool_of_state st, dump)
