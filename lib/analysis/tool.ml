type mode = Abort_on_race | Collect

type bst_summary = {
  stores : int;
  nodes_final_total : int;
  nodes_peak_total : int;
  inserts_total : int;
  fragments_total : int;
  merges_total : int;
  degraded_drops_total : int;
}

let empty_bst_summary =
  {
    stores = 0;
    nodes_final_total = 0;
    nodes_peak_total = 0;
    inserts_total = 0;
    fragments_total = 0;
    merges_total = 0;
    degraded_drops_total = 0;
  }

type t = {
  name : string;
  observer : Mpi_sim.Event.observer;
  races : unit -> Report.t list;
  race_count : unit -> int;
  bst_summary : unit -> bst_summary;
  reset : unit -> unit;
}

let flagged t = t.race_count () > 0

let stored_races t = List.length (t.races ())

let dropped_races t = max 0 (t.race_count () - stored_races t)

let baseline =
  {
    name = "Baseline";
    observer = Mpi_sim.Event.null_observer;
    races = (fun () -> []);
    race_count = (fun () -> 0);
    bst_summary = (fun () -> empty_bst_summary);
    reset = (fun () -> ());
  }
