(** MUST-RMA-style baseline: vector-clock happens-before plus a
    ThreadSanitizer-style shadow memory (Schwitanski et al. 2022).

    Modelled behaviour (and the modelled sources of its published
    weaknesses and overheads):

    - every access is instrumented — no alias filtering — so the tool
      pays shadow work even for accesses the RMA-Analyzer family
      filters out (the §5.3 over-instrumentation overhead);
    - accesses touching stack allocations are invisible (TSan does not
      instrument stack arrays), yielding the Table 3 false negatives;
    - each one-sided operation runs on a fresh {e virtual thread} whose
      clock snapshots the origin at issue; the virtual thread joins the
      origin at epoch close, and other ranks only learn about it through
      later synchronisation — MUST's concurrent-region construction;
    - collectives merge clocks and charge a piggyback cost growing with
      the clock size, reproducing the rank-count scaling of Figures
      11/12. *)

val create :
  nprocs:int -> ?config:Mpi_sim.Config.t -> ?mode:Tool.mode -> ?max_reports:int -> unit -> Tool.t
(** Defaults: [config = Mpi_sim.Config.default], [mode = Collect] (TSan
    reports races and keeps running), [max_reports = 1000] (bound on the
    reports stored for {!Tool.t.races}; {!Tool.t.race_count} keeps
    counting past it). *)
