open Rma_access

(** Race reports, rendered in the style the paper shows for the MiniVite
    injection (Figure 9b), extended with machine-readable provenance for
    the JSON/SARIF exporters and the [explain] subcommand. *)

type witness = {
  w_phase : int;
      (** Weak synchronization phase (count of fence / flushed-barrier
          edges since the window's last true synchronization) both sides
          fall into. *)
  w_existing_clock : (int * int) list;
      (** Weak-clock components at the existing side's issue point. *)
  w_incoming_clock : (int * int) list;
      (** Weak-clock components at the incoming side's issue point. *)
  w_observed_existing : (int * int) list;
      (** Observed-clock components at the same points — the schedule
          edges that separated the pair in the run actually taken. *)
  w_observed_incoming : (int * int) list;
  w_reorder : string;
      (** Human-readable witness reordering: which rank's progress must
          be delayed (or advanced) for the two accesses to overlap. *)
}
(** Evidence attached to a predicted (schedulable) race: the weak-order
    state proving the pair unordered under MPI semantics alone, plus the
    reordering that realizes the overlap. *)

type provenance = {
  id : int;
      (** Stable 1-based identifier within the producing tool's run —
          the race id the CLI's [explain] subcommand takes. 0 = unset. *)
  epoch : int option;
      (** Store epoch (per (rank, window) tree) active at detection,
          when the flight recorder tracked it. *)
  vclock : (int * int) list option;
      (** Non-zero vector-clock components observed at detection, for
          the happens-before based tools. *)
  existing_history : Rma_store.Flight_recorder.origin list;
      (** Original (pre-fragmentation) accesses overlapping the existing
          side's interval — the source accesses that were fragmented or
          merged into the node the race fired against. Empty without the
          flight recorder. *)
  incoming_history : Rma_store.Flight_recorder.origin list;
      (** Same for the incoming side's byte range. *)
  degraded : bool;
      (** The detecting store had already dropped or coarsened nodes
          under budget governance ([degraded_drops] in
          {!Rma_store.Store_intf.stats}) when this race fired: the
          report is real, but its provenance (and the completeness of
          the surrounding run) is weakened. Exported as downgraded
          confidence in SARIF (level [warning] plus a
          [confidence: downgraded] property). *)
  predicted : bool;
      (** This is a {e schedulable} race from the predictive analysis:
          the observed run kept the two accesses apart, but no MPI
          synchronization edge orders them, so some legal schedule
          overlaps them. Observed races carry [false]. *)
  witness : witness option;
      (** Present exactly when [predicted] — the weak-order evidence. *)
}

val empty_provenance : provenance

type t = {
  tool : string;
  space : int;  (** Rank whose address space holds the conflict. *)
  win : Mpi_sim.Event.win_id option;
  existing : Access.t;
  incoming : Access.t;
  sim_time : float;
  provenance : provenance;
}

exception Race_abort of t
(** Raised by a tool running in [Abort_on_race] mode — the simulated
    equivalent of the MPI_Abort the real tool issues. *)

val make :
  tool:string ->
  space:int ->
  win:Mpi_sim.Event.win_id option ->
  existing:Access.t ->
  incoming:Access.t ->
  sim_time:float ->
  ?provenance:provenance ->
  unit ->
  t

val to_message : t -> string
(** Figure 9b wording: "Error when inserting memory access of type
    RMA_WRITE from file ./dspl.hpp:614 with already inserted interval of
    type RMA_WRITE from file ./dspl.hpp:612. ..." *)

val pp : Format.formatter -> t -> unit

val involves_operation : t -> string -> bool
(** Does either side's debug info carry this operation name? Convenience
    for tests. *)

val matrix_cell : t -> string
(** The Figure 3 conflict-matrix cell that fired, e.g.
    ["RMA_WRITE x LOCAL_READ (same process)"]. *)

val contributing_debugs : t -> Debug_info.t list
(** Every distinct source location implicated in the race: the two
    surviving sides plus all flight-recorder history origins, in first
    appearance order. This is what the SARIF export lists as related
    locations — with the recorder on, it names source accesses whose
    debug info merging had discarded from the tree. *)
