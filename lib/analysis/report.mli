open Rma_access

(** Race reports, rendered in the style the paper shows for the MiniVite
    injection (Figure 9b). *)

type t = {
  tool : string;
  space : int;  (** Rank whose address space holds the conflict. *)
  win : Mpi_sim.Event.win_id option;
  existing : Access.t;
  incoming : Access.t;
  sim_time : float;
}

exception Race_abort of t
(** Raised by a tool running in [Abort_on_race] mode — the simulated
    equivalent of the MPI_Abort the real tool issues. *)

val make :
  tool:string ->
  space:int ->
  win:Mpi_sim.Event.win_id option ->
  existing:Access.t ->
  incoming:Access.t ->
  sim_time:float ->
  t

val to_message : t -> string
(** Figure 9b wording: "Error when inserting memory access of type
    RMA_WRITE from file ./dspl.hpp:614 with already inserted interval of
    type RMA_WRITE from file ./dspl.hpp:612. ..." *)

val pp : Format.formatter -> t -> unit

val involves_operation : t -> string -> bool
(** Does either side's debug info carry this operation name? Convenience
    for tests. *)
