open Rma_access
module Event = Mpi_sim.Event
module Config = Mpi_sim.Config
module Vclock = Rma_vclock.Vclock
module Shadow = Rma_shadow.Shadow

(* Every one-sided operation runs on its own virtual thread (concurrent
   region). Instead of folding virtual ids into the vector clocks —
   which would grow them with the operation count — each virtual thread
   is retired through [vid_info]: at epoch close the origin ticks its
   own clock component and the vid records that tick value. An event
   stamped by a vid then happens-before a later access iff the access's
   clock has seen the origin at or past the join tick. This mirrors how
   TSan retires thread segments and keeps clocks O(nprocs). *)
type vid_info = { origin : int; mutable joined_at : int option }

type state = {
  nprocs : int;
  config : Config.t;
  mode : Tool.mode;
  max_reports : int;
  mutable clocks : Vclock.t array;  (* per rank *)
  shadows : Shadow.t array;  (* per address space *)
  mutable next_vid : int;
  vids : (int, vid_info) Hashtbl.t;
  epoch_vids : (int * Event.win_id, int list) Hashtbl.t;
      (* virtual threads of the one-sided ops an origin has issued in
         its currently-open epoch on a window *)
  mutable outstanding : int;  (* unjoined virtual threads, all ranks *)
  mutable collective_buffer : int list;  (* ranks seen in the current sync *)
  mutable races : Report.t list;
  mutable race_count : int;
}

let name = "MUST-RMA"

let access_of_cell (c : Shadow.cell) =
  Access.make
    ~interval:(Interval.make ~lo:c.Shadow.lo ~hi:c.Shadow.hi)
    ~kind:c.Shadow.kind ~issuer:c.Shadow.issuer ~seq:0 ~debug:c.Shadow.debug

let record_race st ~space ~win ~(race : Shadow.race) ~clock ~sim_time =
  let provenance =
    {
      Report.empty_provenance with
      Report.id = st.race_count + 1;
      vclock = Some (Vclock.components clock);
    }
  in
  let report =
    Report.make ~tool:name ~space ~win
      ~existing:(access_of_cell race.Shadow.prior)
      ~incoming:(access_of_cell race.Shadow.current)
      ~sim_time ~provenance ()
  in
  st.race_count <- st.race_count + 1;
  if st.race_count <= st.max_reports then st.races <- report :: st.races;
  match st.mode with
  | Tool.Abort_on_race -> raise (Report.Race_abort report)
  | Tool.Collect -> ()

(* The happens-before test behind the shadow memory: real ranks use the
   plain stamp check; virtual threads are ordered once joined and the
   observer has seen the origin's join tick. *)
let happens_before st stamp clock =
  let thread = stamp.Vclock.thread in
  if thread < st.nprocs then Vclock.stamp_observed stamp ~by:clock
  else begin
    match Hashtbl.find_opt st.vids thread with
    | None -> false
    | Some info -> (
        match info.joined_at with
        | None -> false
        | Some tick -> Vclock.get clock info.origin >= tick)
  end

(* Piggyback cost of shipping this rank's clock plus the descriptors of
   outstanding concurrent regions in a synchronising message: grows with
   rank count and with unfinished one-sided operations (§5.3). *)
let piggyback_cost st =
  Config.collective_cost st.config ~nprocs:st.nprocs
    ~bytes_count:(8 * (st.nprocs + st.outstanding))

let on_sync st rank =
  st.collective_buffer <- rank :: st.collective_buffer;
  if List.length st.collective_buffer = st.nprocs then begin
    let merged = Array.fold_left Vclock.merge Vclock.empty st.clocks in
    st.clocks <- Array.mapi (fun r _ -> Vclock.tick merged r) st.clocks;
    st.collective_buffer <- []
  end;
  piggyback_cost st

let on_access st (a : Event.access_event) =
  let access = a.Event.access in
  let local = Access_kind.is_local access.Access.kind in
  if a.Event.on_stack && local then
    (* ThreadSanitizer does not instrument stack arrays; one-sided
       operations are still annotated through the PMPI layer, so only
       the compiler-instrumented local accesses go missing. *)
    0.0
  else begin
    let issuer = access.Access.issuer in
    let interval = access.Access.interval in
    let kind = access.Access.kind in
    let check ~thread ~clock =
      Shadow.record_and_check st.shadows.(a.Event.space) ~interval ~thread ~clock ~kind ~issuer
        ~debug:access.Access.debug
    in
    let race, clock_used =
      if local then begin
        (* TSan ticks the thread epoch on every access, keeping
           same-thread accesses ordered. *)
        st.clocks.(issuer) <- Vclock.tick st.clocks.(issuer) issuer;
        (check ~thread:issuer ~clock:st.clocks.(issuer), st.clocks.(issuer))
      end
      else begin
        (* One-sided operation: fresh virtual thread snapshotting the
           origin; retired at epoch close. The two events of one MPI
           call (origin-buffer side, target side) arrive back to back
           and get separate regions, which is harmless: they can never
           overlap, living in different address spaces. *)
        let vid = st.next_vid in
        st.next_vid <- vid + 1;
        Hashtbl.replace st.vids vid { origin = issuer; joined_at = None };
        st.outstanding <- st.outstanding + 1;
        (match a.Event.win with
        | Some w ->
            let key = (issuer, w) in
            let existing = Option.value (Hashtbl.find_opt st.epoch_vids key) ~default:[] in
            Hashtbl.replace st.epoch_vids key (vid :: existing)
        | None -> ());
        let clock = Vclock.set st.clocks.(issuer) vid 1 in
        (check ~thread:vid ~clock, clock)
      end
    in
    (match race with
    | Some r ->
        record_race st ~space:a.Event.space ~win:a.Event.win ~race:r ~clock:clock_used
          ~sim_time:a.Event.sim_time
    | None -> ());
    (* Clock piggyback on the internal notification for remote accesses. *)
    if (not local) && a.Event.space <> issuer then
      Config.message_cost st.config ~bytes_count:(8 * st.nprocs)
    else 0.0
  end

let observer st event =
  match event with
  | Event.Access a -> on_access st a
  | Event.Epoch_opened { rank; _ } ->
      st.clocks.(rank) <- Vclock.tick st.clocks.(rank) rank;
      0.0
  | Event.Epoch_closed { win; rank; _ } ->
      (* Retire the epoch's virtual threads: one tick on the origin
         orders every operation of the epoch before whatever observes
         that tick. *)
      let key = (rank, win) in
      let vids = Option.value (Hashtbl.find_opt st.epoch_vids key) ~default:[] in
      Hashtbl.remove st.epoch_vids key;
      st.clocks.(rank) <- Vclock.tick st.clocks.(rank) rank;
      let tick = Vclock.get st.clocks.(rank) rank in
      List.iter
        (fun vid ->
          match Hashtbl.find_opt st.vids vid with
          | Some info ->
              info.joined_at <- Some tick;
              st.outstanding <- st.outstanding - 1
          | None -> ())
        vids;
      piggyback_cost st
  | Event.Collective { rank; _ } -> on_sync st rank
  | Event.Win_created { rank; _ } -> on_sync st rank
  | Event.Win_freed { rank; _ } -> on_sync st rank
  | Event.Flushed _ ->
      (* Like the other tools, MUST-RMA does not instrument
         MPI_Win_flush correctly (§6(2)). *)
      0.0
  | Event.Finished _ -> 0.0

let create ~nprocs ?(config = Config.default) ?(mode = Tool.Collect) ?(max_reports = 1000) () =
  let fresh_clocks () = Array.init nprocs (fun _ -> Vclock.create ~nprocs) in
  (* The shadow memories need the state's happens-before test before the
     state exists; tie the knot through a reference. *)
  let hb_ref = ref (fun _ _ -> false) in
  let st =
    {
      nprocs;
      config;
      mode;
      max_reports;
      clocks = fresh_clocks ();
      shadows =
        Array.init nprocs (fun _ ->
            Shadow.create ~happens_before:(fun s c -> !hb_ref s c) ());
      next_vid = nprocs;
      vids = Hashtbl.create 4096;
      epoch_vids = Hashtbl.create 16;
      outstanding = 0;
      collective_buffer = [];
      races = [];
      race_count = 0;
    }
  in
  hb_ref := happens_before st;
  {
    Tool.name;
    observer = observer st;
    races = (fun () -> List.rev st.races);
    race_count = (fun () -> st.race_count);
    bst_summary = (fun () -> Tool.empty_bst_summary);
    reset =
      (fun () ->
        st.clocks <- fresh_clocks ();
        Array.iter Shadow.clear st.shadows;
        st.next_vid <- nprocs;
        Hashtbl.reset st.vids;
        Hashtbl.reset st.epoch_vids;
        st.outstanding <- 0;
        st.collective_buffer <- [];
        st.races <- [];
        st.race_count <- 0);
  }
