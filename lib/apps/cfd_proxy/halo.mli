(** CFD-Proxy-like workload: iterative ghost-cell (halo) exchange for an
    unstructured-mesh flow solver, with the communication structure the
    paper describes (§5.3): passive-target synchronisation, {e two
    windows per rank} and {e one epoch per window} spanning all
    iterations, with [MPI_Win_flush_all] + [MPI_Barrier] between
    iterations (the §6(1) pattern).

    Each rank talks to a ring neighbourhood. Every iteration it fills a
    fresh chunk of its send region with instrumented stores (the flow
    variables being packed), then Puts the chunk into its dedicated slot
    in each neighbour's window. Per-iteration chunks are laid out
    back-to-back, so on each rank the contribution's merging collapses
    the whole run into a handful of nodes — one per (peer, window)
    stream — while the legacy store keeps one node per access: the
    90 004-nodes-versus-54 contrast behind Figure 10.

    Window layout (per window, per rank): [nprocs] reception slots of
    [iterations * chunk_bytes] each; rank [s] writes iteration [i] at
    offset [s * iterations * chunk + i * chunk]. *)

type params = {
  iterations : int;  (** The paper runs 50. *)
  neighbours : int;  (** Ring peers on each side wired per window. *)
  cells_per_chunk : int;  (** 8-byte cells packed (stored) per iteration. *)
  windows : int;  (** CFD-Proxy has two windows per rank. *)
  private_loads_per_iteration : int;
      (** Instrumented gradient-computation loads on non-exposed memory
          (alias-filtered for the RMA-Analyzer family, visible to
          ThreadSanitizer). *)
  compute_per_iteration : float;  (** Simulated solver seconds. *)
}

val default_params : params
(** 50 iterations, 1 neighbour each side, 432 cells per chunk, 2 windows
    — calibrated so each (rank, window) tree of the legacy store reaches
    ~90 000 nodes on a 12-rank run, the BST population the paper
    reports for CFD-Proxy. *)

type summary = {
  checksum : float;  (** Sum over received halo cells, for validation. *)
  halo_puts : int;
  cells_exchanged : int;
}

val program : params -> summary ref -> unit -> unit

val run :
  params ->
  nprocs:int ->
  ?seed:int ->
  ?config:Mpi_sim.Config.t ->
  ?observer:Mpi_sim.Event.observer ->
  unit ->
  Mpi_sim.Runtime.result * summary

val cell_value : src:int -> iter:int -> cell:int -> int64
(** The value stored in halo cell [cell] of iteration [iter] by rank
    [src]; exposed so tests can compute expected checksums. *)
