open Mpi_sim

type params = {
  iterations : int;
  neighbours : int;
  cells_per_chunk : int;
  windows : int;
  private_loads_per_iteration : int;
  compute_per_iteration : float;
}

let default_params =
  {
    iterations = 50;
    neighbours = 1;
    cells_per_chunk = 432;
    windows = 2;
    private_loads_per_iteration = 300;
    compute_per_iteration = 4.0e-3;
  }

type summary = { checksum : float; halo_puts : int; cells_exchanged : int }

let src_file = "./exchange.c"

let cell_value ~src ~iter ~cell = Int64.of_int ((src * 1_000_000) + (iter * 1_000) + cell)

type shared = { mutable puts : int; mutable cells : int; mutable checksum : float }

let program_with_shared params shared summary_out () =
  let rank = Mpi.comm_rank () in
  let nprocs = Mpi.comm_size () in
  let chunk_bytes = 8 * params.cells_per_chunk in
  let region_bytes = params.iterations * chunk_bytes in
  let win_bytes = nprocs * region_bytes in
  (* Ring neighbourhood: [neighbours] peers on each side. *)
  let peers =
    List.concat_map
      (fun d -> if 2 * d >= nprocs then [] else [ (rank + d) mod nprocs; (rank - d + nprocs) mod nprocs ])
      (List.init params.neighbours (fun i -> i + 1))
    |> List.sort_uniq compare
    |> List.filter (fun p -> p <> rank)
  in
  let windows =
    List.init params.windows (fun w ->
        let base = Mpi.alloc ~label:(Printf.sprintf "halo_win_%d" w) ~exposed:true win_bytes in
        (w, base, Mpi.win_create ~base ~size:win_bytes))
  in
  (* Send streams: per window, per peer, iterations laid back-to-back so
     successive chunks are adjacent. *)
  let send_base =
    Mpi.alloc ~label:"send_buffer" ~exposed:true
      (max 8 (params.windows * List.length peers * region_bytes))
  in
  let gradients = Mpi.alloc ~label:"gradients" (max 8 (8 * 4096)) in
  Mpi.barrier ();
  List.iter
    (fun (w, _, win) ->
      Mpi.win_lock_all ~loc:(Mpi.loc ~file:src_file ~line:(100 + w) "MPI_Win_lock_all") win)
    windows;
  for iter = 0 to params.iterations - 1 do
    Mpi.compute params.compute_per_iteration;
    (* Gradient sweep: private accesses the alias analysis filtered down
       to this residue. *)
    for k = 0 to params.private_loads_per_iteration - 1 do
      ignore
        (Mpi.load
           ~loc:(Mpi.loc ~file:src_file ~line:210 "Load")
           ~addr:(gradients + (8 * (((iter * 13) + k) mod 4096)))
           ~len:8 ())
    done;
    List.iter
      (fun (w, _, win) ->
        List.iteri
          (fun pi peer ->
            (* Pack this iteration's chunk for [peer] — fresh bytes right
               after the previous iteration's chunk. *)
            let stream_off = ((w * List.length peers) + pi) * region_bytes in
            let chunk_addr = send_base + stream_off + (iter * chunk_bytes) in
            for cell = 0 to params.cells_per_chunk - 1 do
              Mpi.store_i64
                ~loc:(Mpi.loc ~file:src_file ~line:302 "Store")
                ~addr:(chunk_addr + (8 * cell))
                (cell_value ~src:rank ~iter ~cell)
            done;
            (* One-sided halo exchange into our slot at the peer. *)
            let target_disp = (rank * region_bytes) + (iter * chunk_bytes) in
            Mpi.put
              ~loc:(Mpi.loc ~file:src_file ~line:318 "MPI_Put")
              win ~target:peer ~target_disp ~origin_addr:chunk_addr ~len:chunk_bytes;
            shared.puts <- shared.puts + 1;
            shared.cells <- shared.cells + params.cells_per_chunk)
          peers)
      windows;
    (* Complete our operations and synchronise: the §6(1) pattern. *)
    List.iter
      (fun (_, _, win) ->
        Mpi.win_flush_all ~loc:(Mpi.loc ~file:src_file ~line:330 "MPI_Win_flush_all") win)
      windows;
    Mpi.barrier ()
  done;
  List.iter
    (fun (w, _, win) ->
      Mpi.win_unlock_all ~loc:(Mpi.loc ~file:src_file ~line:(400 + w) "MPI_Win_unlock_all") win)
    windows;
  Mpi.barrier ();
  (* Validation: sum every received halo cell. *)
  let local_sum = ref 0.0 in
  List.iter
    (fun (_, base, _) ->
      List.iter
        (fun peer ->
          let region = Mpi.load ~addr:(base + (peer * region_bytes)) ~len:region_bytes () in
          for cell = 0 to (region_bytes / 8) - 1 do
            local_sum := !local_sum +. Int64.to_float (Bytes.get_int64_le region (cell * 8))
          done)
        peers)
    windows;
  let total = Mpi.allreduce_float !local_sum ~op:Runtime.Sum in
  List.iter (fun (_, _, win) -> Mpi.win_free win) windows;
  if rank = 0 then begin
    shared.checksum <- total;
    summary_out :=
      { checksum = shared.checksum; halo_puts = shared.puts; cells_exchanged = shared.cells }
  end

let empty_summary = { checksum = 0.0; halo_puts = 0; cells_exchanged = 0 }

let program params summary_ref =
  let shared = { puts = 0; cells = 0; checksum = 0.0 } in
  let cell = ref empty_summary in
  fun () ->
    program_with_shared params shared cell ();
    summary_ref := !cell

let run params ~nprocs ?(seed = 9) ?(config = Config.default) ?observer () =
  let shared = { puts = 0; cells = 0; checksum = 0.0 } in
  let cell = ref empty_summary in
  let result =
    Runtime.run ~nprocs ~seed ~config ?observer (program_with_shared params shared cell)
  in
  (result, !cell)
