(** Graph500-style distributed breadth-first search over MPI-RMA — the
    paper's §2.1 motivating workload ("Scalable Graph500 design with
    MPI-3 RMA", Li et al. 2014, got a 2x speedup from one-sided
    communication).

    Level-synchronised BFS with active-target (fence) synchronisation:
    each rank owns a contiguous vertex range (reusing the MiniVite graph
    generator); every level, discovered remote vertices are pushed with
    one MPI_Put per (owner, vertex) into per-source inbox slots of the
    owner's window, fences separate the levels, and owners drain their
    inboxes between fences. Parent data flows through the simulated
    window memory itself — the checksum below validates the real bytes
    moved by the Puts.

    Window layout per rank: [nprocs] inbox segments of
    [inbox_slots] 16-byte entries each ([vertex, parent]); rank [s]
    writes its k-th discovery of the level into segment [s], slot [k].
    Slots are reused across levels — safe because fences separate the
    epochs, which the detectors understand. *)

type params = {
  graph : Minivite.Graph.params;
  inbox_slots : int;  (** Per-source inbox capacity per level. *)
  source : int;  (** BFS root vertex. *)
  compute_per_edge : float;
  max_levels : int;
}

val default_params : params

type summary = {
  reached : int;  (** Vertices with a finite BFS level. *)
  levels : int;  (** Levels until the frontier emptied. *)
  edge_relaxations : int;
  parent_checksum : int64;
      (** Sum over reached non-root vertices of (vertex xor parent),
          computed from window memory — validates the data movement. *)
  inbox_overflows : int;  (** Discoveries dropped to capacity (retried next level). *)
}

val program : params -> summary ref -> unit -> unit

val run :
  params ->
  nprocs:int ->
  ?seed:int ->
  ?config:Mpi_sim.Config.t ->
  ?observer:Mpi_sim.Event.observer ->
  unit ->
  Mpi_sim.Runtime.result * summary

val run_with_levels :
  params ->
  nprocs:int ->
  ?seed:int ->
  ?config:Mpi_sim.Config.t ->
  ?observer:Mpi_sim.Event.observer ->
  unit ->
  Mpi_sim.Runtime.result * summary * int array
(** Also returns the per-vertex BFS levels ([-1] = unreached). *)

val reference_bfs : Minivite.Graph.params -> source:int -> int array
(** Sequential BFS levels over the same generated graph (one adjacency
    per owner, like the distributed run sees it); [-1] = unreachable.
    Oracle for tests. *)
