open Mpi_sim
module Graph = Minivite.Graph

type params = {
  graph : Graph.params;
  inbox_slots : int;
  source : int;
  compute_per_edge : float;
  max_levels : int;
}

let default_params =
  {
    graph = { Graph.default_params with Graph.n_vertices = 20_000 };
    inbox_slots = 2_048;
    source = 0;
    compute_per_edge = 1.0e-7;
    max_levels = 64;
  }

type summary = {
  reached : int;
  levels : int;
  edge_relaxations : int;
  parent_checksum : int64;
  inbox_overflows : int;
}

let src_file = "./bfs_rma.c"

let entry_bytes = 16

(* Window layout per rank:
   - two inbox banks (level parity ping-pong), each [nprocs] segments of
     [1 + inbox_slots] 16-byte entries (slot 0 = count);
   - the parent region: 8 bytes per owned vertex.
   Writers fill one bank while owners drain the other; fences separate
   the banks' roles, so no location is written and read in the same
   epoch. *)
let segment_bytes params = (1 + params.inbox_slots) * entry_bytes

let bank_bytes params nprocs = nprocs * segment_bytes params

let inbox_off params nprocs ~parity ~source ~slot =
  (parity * bank_bytes params nprocs) + (source * segment_bytes params) + (slot * entry_bytes)

let parent_off params nprocs ~local_index = (2 * bank_bytes params nprocs) + (8 * local_index)

type shared = {
  mutable relaxations : int;
  mutable overflows : int;
  levels : int array;  (* host mirror for validation; owners write their range *)
}

let program_with_shared params shared summary_out () =
  let rank = Mpi.comm_rank () in
  let nprocs = Mpi.comm_size () in
  let graph = Graph.generate params.graph ~nprocs ~rank in
  let n_own = max 0 (graph.Graph.owned_hi - graph.Graph.owned_lo + 1) in
  let win_size = (2 * bank_bytes params nprocs) + (8 * max 1 n_own) in
  let win_base = Mpi.alloc ~label:"bfs_win" ~exposed:true win_size in
  (* The outgoing pool mirrors the two inbox banks: each entry is written
     once per level and read by exactly one Put, so no origin buffer is
     ever modified while an operation that reads it is in flight. *)
  let send_pool = Mpi.alloc ~label:"send_pool" ~exposed:true (2 * bank_bytes params nprocs) in
  let win = Mpi.win_create ~base:win_base ~size:win_size in
  let level = Array.make (max 1 n_own) (-1) in
  let local_index v = v - graph.Graph.owned_lo in
  let owner_of v = Graph.owner_of ~n_global:graph.Graph.n_global ~nprocs v in
  let store_parent v parent =
    Mpi.store_i64
      ~loc:(Mpi.loc ~file:src_file ~line:88 "Store")
      ~addr:(win_base + parent_off params nprocs ~local_index:(local_index v))
      (Int64.of_int parent)
  in
  let frontier = ref [] in
  let accept v parent lvl =
    let i = local_index v in
    if level.(i) < 0 then begin
      level.(i) <- lvl;
      shared.levels.(v) <- lvl;
      store_parent v parent;
      frontier := v :: !frontier
    end
  in
  (* carried: remote discoveries that overflowed their inbox segment this
     level; retried next level. *)
  let carried = ref [] in
  Mpi.win_fence ~loc:(Mpi.loc ~file:src_file ~line:41 "MPI_Win_fence") win;
  if Graph.owned graph params.source then accept params.source params.source 0;
  let current_level = ref 0 in
  let continue_bfs = ref true in
  let levels_used = ref 0 in
  while !continue_bfs && !current_level < params.max_levels do
    let parity = !current_level land 1 in
    let out_parity = 1 - parity in
    (* Per-target slot cursors for this level's outgoing bank. *)
    let cursors = Array.make nprocs 0 in
    let sent = ref 0 in
    let push_remote v parent =
      let owner = owner_of v in
      if cursors.(owner) >= params.inbox_slots then begin
        shared.overflows <- shared.overflows + 1;
        carried := (v, parent) :: !carried
      end
      else begin
        cursors.(owner) <- cursors.(owner) + 1;
        let slot = cursors.(owner) in
        let entry = send_pool + inbox_off params nprocs ~parity:out_parity ~source:owner ~slot in
        Mpi.store_i64 ~loc:(Mpi.loc ~file:src_file ~line:61 "Store") ~addr:entry (Int64.of_int v);
        Mpi.store_i64
          ~loc:(Mpi.loc ~file:src_file ~line:62 "Store")
          ~addr:(entry + 8) (Int64.of_int parent);
        Mpi.put
          ~loc:(Mpi.loc ~file:src_file ~line:63 "MPI_Put")
          win ~target:owner
          ~target_disp:(inbox_off params nprocs ~parity:out_parity ~source:rank ~slot)
          ~origin_addr:entry ~len:entry_bytes;
        incr sent
      end
    in
    (* Retry what overflowed last level. *)
    let retries = !carried in
    carried := [];
    List.iter (fun (v, parent) -> push_remote v parent) retries;
    (* Relax the current frontier. *)
    let this_frontier = !frontier in
    frontier := [];
    List.iter
      (fun u ->
        let neigh = graph.Graph.adjacency.(local_index u) in
        Mpi.compute (params.compute_per_edge *. float_of_int (Array.length neigh));
        Array.iter
          (fun v ->
            shared.relaxations <- shared.relaxations + 1;
            if Graph.owned graph v then begin
              if level.(local_index v) < 0 then accept v u (!current_level + 1)
            end
            else push_remote v u)
          neigh)
      this_frontier;
    (* Publish per-target counts for the bank we just filled. *)
    for target = 0 to nprocs - 1 do
      if cursors.(target) > 0 then begin
        let count_src =
          send_pool + inbox_off params nprocs ~parity:out_parity ~source:target ~slot:0
        in
        Mpi.store_i64 ~loc:(Mpi.loc ~file:src_file ~line:79 "Store") ~addr:count_src
          (Int64.of_int cursors.(target));
        Mpi.put
          ~loc:(Mpi.loc ~file:src_file ~line:80 "MPI_Put")
          win ~target
          ~target_disp:(inbox_off params nprocs ~parity:out_parity ~source:rank ~slot:0)
          ~origin_addr:count_src ~len:8
      end
    done;
    Mpi.win_fence ~loc:(Mpi.loc ~file:src_file ~line:83 "MPI_Win_fence") win;
    (* Drain the bank written during this level (parity [out_parity]):
       the fence completed every Put. *)
    let lvl = !current_level + 1 in
    for source = 0 to nprocs - 1 do
      let count_addr = win_base + inbox_off params nprocs ~parity:out_parity ~source ~slot:0 in
      let count =
        Int64.to_int (Mpi.load_i64 ~loc:(Mpi.loc ~file:src_file ~line:90 "Load") ~addr:count_addr ())
      in
      for slot = 1 to min count params.inbox_slots do
        let addr = win_base + inbox_off params nprocs ~parity:out_parity ~source ~slot in
        let v =
          Int64.to_int (Mpi.load_i64 ~loc:(Mpi.loc ~file:src_file ~line:93 "Load") ~addr ())
        in
        let parent =
          Int64.to_int
            (Mpi.load_i64 ~loc:(Mpi.loc ~file:src_file ~line:94 "Load") ~addr:(addr + 8) ())
        in
        if Graph.owned graph v then accept v parent lvl
      done;
      (* Reset the drained count locally for the reuse two levels on. *)
      Mpi.store_i64 ~loc:(Mpi.loc ~file:src_file ~line:97 "Store") ~addr:count_addr 0L
    done;
    let pending = List.length !frontier + !sent + List.length !carried in
    let global_pending = Mpi.allreduce_int pending ~op:Runtime.Sum in
    incr current_level;
    if global_pending = 0 then continue_bfs := false else levels_used := !current_level
  done;
  Mpi.win_fence ~loc:(Mpi.loc ~file:src_file ~line:104 "MPI_Win_fence") win;
  (* Validation: parent data really sits in window memory. *)
  let checksum = ref 0L in
  let reached_local = ref 0 in
  for i = 0 to n_own - 1 do
    if level.(i) >= 0 then begin
      incr reached_local;
      let v = graph.Graph.owned_lo + i in
      let parent =
        Mpi.load_i64
          ~loc:(Mpi.loc ~file:src_file ~line:112 "Load")
          ~addr:(win_base + parent_off params nprocs ~local_index:i)
          ()
      in
      checksum := Int64.add !checksum (Int64.logxor (Int64.of_int v) parent)
    end
  done;
  let reached = Mpi.allreduce_int !reached_local ~op:Runtime.Sum in
  let checksum_total = Mpi.allreduce_i64 !checksum ~op:Runtime.Sum in
  let levels_total = Mpi.allreduce_int !levels_used ~op:Runtime.Max in
  Mpi.win_free win;
  if rank = 0 then
    summary_out :=
      {
        reached;
        levels = levels_total;
        edge_relaxations = shared.relaxations;
        parent_checksum = checksum_total;
        inbox_overflows = shared.overflows;
      }

let empty_summary =
  { reached = 0; levels = 0; edge_relaxations = 0; parent_checksum = 0L; inbox_overflows = 0 }

let program params summary_ref =
  let shared =
    { relaxations = 0; overflows = 0; levels = Array.make params.graph.Graph.n_vertices (-1) }
  in
  let cell = ref empty_summary in
  fun () ->
    program_with_shared params shared cell ();
    summary_ref := !cell

let run_with_levels params ~nprocs ?(seed = 7) ?(config = Config.default) ?observer () =
  let shared =
    { relaxations = 0; overflows = 0; levels = Array.make params.graph.Graph.n_vertices (-1) }
  in
  let cell = ref empty_summary in
  let result =
    Runtime.run ~nprocs ~seed ~config ?observer (program_with_shared params shared cell)
  in
  (result, !cell, shared.levels)

let run params ~nprocs ?seed ?config ?observer () =
  let result, summary, _ = run_with_levels params ~nprocs ?seed ?config ?observer () in
  (result, summary)

let reference_bfs graph_params ~source =
  let full = Graph.generate graph_params ~nprocs:1 ~rank:0 in
  let n = graph_params.Graph.n_vertices in
  let level = Array.make n (-1) in
  level.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v q
        end)
      full.Graph.adjacency.(u)
  done;
  level
