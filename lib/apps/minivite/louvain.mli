(** MiniVite-like workload: one phase of distributed Louvain community
    detection (label-propagation sweep) over the simulated MPI-RMA
    runtime, following the communication structure the paper describes
    for miniVite (§5.3): passive-target synchronisation, ghost-community
    fetches with MPI_Get, and per-peer update messages with MPI_Put into
    a communication window (the Figure 9 [commwin]).

    Window layout on each rank (all offsets in bytes):
    - [0 .. 16*n_own)        — per-owned-vertex records: pastComm in the
      first 8 bytes (remote ranks Get these), currComm in the second 8
      (owner-local) — the attributes-of-adjacent-objects pattern that
      keeps merging rare on this workload (§5.3);
    - [16*n_own ..]          — one 16-byte inbox slot per source rank,
      written remotely by MPI_Put each iteration.

    One lock_all/unlock_all epoch per iteration; every one-sided
    operation of an epoch lands in a fresh or disjoint slot, so the
    phase is race-free: the detectors must stay silent unless
    [inject_race] duplicates one MPI_Put, reproducing the paper's
    Figure 9 fault injection at dspl.hpp:612/614.

    Algorithmic values flow through a shared host-side mirror of the
    community array (the simulator is single-threaded); the simulated
    memory still carries the real bytes, and the instrumented access
    stream — RMA calls, window accesses, sampled private compute loads —
    is what the detectors consume, mirroring what the LLVM pass +
    PMPI interface deliver for the C++ application. *)

type params = {
  graph : Graph.params;
  iterations : int;
  compute_per_edge : float;  (** Simulated seconds of work per edge visit. *)
  private_loads_every : int;
      (** Emit one instrumented private (non-exposed) load every N edge
          visits — the residue the alias analysis could not discard.
          ThreadSanitizer instruments all of them. *)
  inject_race : bool;  (** Duplicate one MPI_Put (Figure 9 / Code 3). *)
}

val default_params : params

type summary = {
  modularity : float;
  total_changes : int;  (** Vertices that switched communities. *)
  communities : int;  (** Distinct communities at the end. *)
  ghost_fetches : int;  (** MPI_Get operations issued, all ranks. *)
  update_puts : int;  (** MPI_Put operations issued, all ranks. *)
}

val program : params -> summary ref -> unit -> unit
(** Rank program for {!Mpi_sim.Runtime.run}; the last rank to finish
    writes the summary. *)

val run :
  params ->
  nprocs:int ->
  ?seed:int ->
  ?config:Mpi_sim.Config.t ->
  ?observer:Mpi_sim.Event.observer ->
  unit ->
  Mpi_sim.Runtime.result * summary
