type t = {
  n_global : int;
  nprocs : int;
  rank : int;
  owned_lo : int;
  owned_hi : int;
  adjacency : int array array;
  n_edges_local : int;
}

type params = {
  n_vertices : int;
  avg_degree : int;
  locality_window : int;
  long_range_fraction : float;
  hub_count : int;
  seed : int;
}

let default_params =
  {
    n_vertices = 64_000;
    avg_degree = 8;
    locality_window = 400;
    long_range_fraction = 0.1;
    hub_count = 8;
    seed = 2023;
  }

let partition ~n_global ~nprocs ~rank =
  let chunk = n_global / nprocs and rem = n_global mod nprocs in
  let lo = (rank * chunk) + min rank rem in
  let size = chunk + if rank < rem then 1 else 0 in
  (lo, lo + size - 1)

let owner_of ~n_global ~nprocs v =
  (* Inverse of [partition]; the first [rem] ranks own one extra vertex. *)
  let chunk = n_global / nprocs and rem = n_global mod nprocs in
  if chunk = 0 then min v (nprocs - 1)
  else begin
    let boundary = rem * (chunk + 1) in
    if v < boundary then v / (chunk + 1) else rem + ((v - boundary) / chunk)
  end

(* Degree varies around the average; hubs get long-range edges pointed at
   them, producing vertices many ranks re-read every iteration. *)
let neighbours_of params v =
  let rng = Rma_util.Prng.create ~seed:(params.seed + (v * 2654435761)) in
  let n = params.n_vertices in
  let deg = max 1 (Rma_util.Prng.int_in_range rng ~lo:(params.avg_degree / 2) ~hi:(params.avg_degree * 3 / 2)) in
  let pick_neighbour () =
    if Rma_util.Prng.bernoulli rng ~p:params.long_range_fraction then begin
      if params.hub_count > 0 && Rma_util.Prng.bernoulli rng ~p:0.5 then begin
        (* Hubs are spread evenly over the vertex range. *)
        let h = Rma_util.Prng.int rng ~bound:params.hub_count in
        h * (n / max 1 params.hub_count)
      end
      else Rma_util.Prng.int rng ~bound:n
    end
    else begin
      let w = params.locality_window in
      let delta = Rma_util.Prng.int_in_range rng ~lo:(-w) ~hi:w in
      (v + delta + n) mod n
    end
  in
  let seen = Hashtbl.create (deg * 2) in
  let out = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length seen < deg && !attempts < deg * 4 do
    incr attempts;
    let u = pick_neighbour () in
    if u <> v && not (Hashtbl.mem seen u) then begin
      Hashtbl.add seen u ();
      out := u :: !out
    end
  done;
  Array.of_list (List.rev !out)

let generate params ~nprocs ~rank =
  let n_global = params.n_vertices in
  let owned_lo, owned_hi = partition ~n_global ~nprocs ~rank in
  let n_own = max 0 (owned_hi - owned_lo + 1) in
  let adjacency = Array.init n_own (fun i -> neighbours_of params (owned_lo + i)) in
  let n_edges_local = Array.fold_left (fun acc a -> acc + Array.length a) 0 adjacency in
  { n_global; nprocs; rank; owned_lo; owned_hi; adjacency; n_edges_local }

let owned t v = v >= t.owned_lo && v <= t.owned_hi

let ghosts t =
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun neigh -> Array.iter (fun u -> if not (owned t u) then Hashtbl.replace seen u ()) neigh)
    t.adjacency;
  let out = Hashtbl.fold (fun v () acc -> v :: acc) seen [] in
  let arr = Array.of_list out in
  Array.sort compare arr;
  arr

let total_edges t = t.n_edges_local
