open Mpi_sim

type params = {
  graph : Graph.params;
  iterations : int;
  compute_per_edge : float;
  private_loads_every : int;
  inject_race : bool;
}

let default_params =
  {
    graph = Graph.default_params;
    iterations = 4;
    compute_per_edge = 2.0e-8;
    private_loads_every = 4;
    inject_race = false;
  }

type summary = {
  modularity : float;
  total_changes : int;
  communities : int;
  ghost_fetches : int;
  update_puts : int;
}

let record_stride = 16

let src_file = "./dspl.hpp"

(* Host-side mirror shared by all rank fibers: the current community of
   every vertex. The simulator is single-threaded, so this is just the
   algorithm's state; simulated memory carries the same values for the
   owned records' initial communities, moved by the real Gets/Puts. *)
type shared = {
  community : int array;
  mutable changes : int;
  mutable gets : int;
  mutable puts : int;
}

let neighbour_ranks graph ghosts =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun g ->
      let r = Graph.owner_of ~n_global:graph.Graph.n_global ~nprocs:graph.Graph.nprocs g in
      Hashtbl.replace seen r ())
    ghosts;
  let out = Hashtbl.fold (fun r () acc -> r :: acc) seen [] in
  let arr = Array.of_list out in
  Array.sort compare arr;
  arr

let best_community counts self =
  (* Most frequent neighbouring community; ties towards the smaller id. *)
  Hashtbl.fold
    (fun comm freq (best_comm, best_freq) ->
      if freq > best_freq || (freq = best_freq && comm < best_comm) then (comm, freq)
      else (best_comm, best_freq))
    counts (self, 0)

let make_shared params =
  {
    community = Array.init params.graph.Graph.n_vertices (fun v -> v);
    changes = 0;
    gets = 0;
    puts = 0;
  }

(* Per-rank window layout:
   [0 .. 16*n_own)  vertex records: pastComm bytes [0..7] of each 16-byte
                    record (remote ranks Get these), currComm bytes
                    [8..15] (the owner's working attribute) — two fields
                    of the same object that are never part of one access,
                    the paper's non-adjacency pattern (§5.3);
   [16*n_own ..]    one 16-byte inbox slot per source rank, receiving
                    that rank's per-iteration update digest via MPI_Put
                    (the Figure 9 commwin write).
   Update marks live in a separate exposed array at stride 16. *)
let program_with_shared params shared summary_out () =
  let rank = Mpi.comm_rank () in
  let nprocs = Mpi.comm_size () in
  let graph = Graph.generate params.graph ~nprocs ~rank in
  let n_own = max 0 (graph.Graph.owned_hi - graph.Graph.owned_lo + 1) in
  let ghosts = Graph.ghosts graph in
  let n_ghost = Array.length ghosts in
  let nbr_ranks = neighbour_ranks graph ghosts in
  let iters = params.iterations in
  let inbox_off = record_stride * n_own in
  let win_size = inbox_off + (record_stride * nprocs) in
  let win_base = Mpi.alloc ~label:"commwin" ~exposed:true (max win_size record_stride) in
  (* Origin-side buffers: fresh 16-byte slots for Get landing zones (one
     per fetch, never reused) and per-(iteration, neighbour) Put source
     digests. *)
  let ghost_buf =
    Mpi.alloc ~label:"ghost_comms" ~exposed:true
      (max record_stride (record_stride * (n_ghost * (iters + 1))))
  in
  let scdata =
    Mpi.alloc ~label:"scdata" ~exposed:true
      (max record_stride (record_stride * iters * max 1 (Array.length nbr_ranks)))
  in
  (* Per-vertex update marks: 8 bytes used out of a 16-byte stride, so
     marks of neighbouring vertices are never adjacent — the attributes-
     of-adjacent-objects pattern the paper blames for MiniVite's low
     merging rate (§5.3, discussion (3)). *)
  let updated_buf = Mpi.alloc ~label:"updated" ~exposed:true (max 16 (16 * n_own)) in
  (* Private compute state the alias analysis proved RMA-free. *)
  let adjacency_buf = Mpi.alloc ~label:"adjacency" (max 8 (8 * graph.Graph.n_edges_local)) in
  (* Initial communities land in the window before any epoch opens. *)
  for i = 0 to n_own - 1 do
    Mpi.store_i64
      ~loc:(Mpi.loc ~file:src_file ~line:402 "Store")
      ~addr:(win_base + (i * record_stride))
      (Int64.of_int (graph.Graph.owned_lo + i))
  done;
  let win = Mpi.win_create ~base:win_base ~size:(max win_size record_stride) in
  Mpi.barrier ();
  let record_disp g =
    let owner = Graph.owner_of ~n_global:graph.Graph.n_global ~nprocs g in
    let lo, _ = Graph.partition ~n_global:graph.Graph.n_global ~nprocs ~rank:owner in
    (owner, (g - lo) * record_stride)
  in
  let my_changes = ref 0 in
  let edge_visits = ref 0 in
  (* Delta fetching, as the application's update tracking does: iteration
     0 fetches every ghost; later iterations only re-fetch ghosts whose
     community changed since this rank last saw them. *)
  let last_seen = Hashtbl.create (max 16 n_ghost) in
  let fetch_count = ref 0 in
  let counts = Hashtbl.create 16 in
  for iter = 0 to iters - 1 do
    Mpi.win_lock_all ~loc:(Mpi.loc ~file:src_file ~line:455 "MPI_Win_lock_all") win;
    (* Ghost community fetch. *)
    Array.iter
      (fun g ->
        let current = shared.community.(g) in
        let stale =
          match Hashtbl.find_opt last_seen g with None -> true | Some seen -> seen <> current
        in
        if stale then begin
          Hashtbl.replace last_seen g current;
          let owner, disp = record_disp g in
          let origin_addr = ghost_buf + (record_stride * !fetch_count) in
          incr fetch_count;
          Mpi.get
            ~loc:(Mpi.loc ~file:src_file ~line:501 "MPI_Get")
            win ~target:owner ~target_disp:disp ~origin_addr ~len:8;
          shared.gets <- shared.gets + 1
        end)
      ghosts;
    (* Label-propagation sweep over owned vertices. *)
    for i = 0 to n_own - 1 do
      let v = graph.Graph.owned_lo + i in
      (* The owner works on the currComm attribute (second half of the
         record); remote ranks Get the pastComm attribute (first half) —
         two fields of the same object, never part of one access. *)
      ignore
        (Mpi.load
           ~loc:(Mpi.loc ~file:src_file ~line:478 "Load")
           ~addr:(win_base + (i * record_stride) + 8)
           ~len:8 ());
      Hashtbl.reset counts;
      let neigh = graph.Graph.adjacency.(i) in
      Array.iteri
        (fun j u ->
          incr edge_visits;
          if !edge_visits mod params.private_loads_every = 0 then
            ignore
              (Mpi.load
                 ~loc:(Mpi.loc ~file:src_file ~line:523 "Load")
                 ~addr:(adjacency_buf + (8 * (((i * 7) + j) mod max 1 graph.Graph.n_edges_local)))
                 ~len:8 ());
          let c = shared.community.(u) in
          Hashtbl.replace counts c (1 + Option.value (Hashtbl.find_opt counts c) ~default:0))
        neigh;
      Mpi.compute (params.compute_per_edge *. float_of_int (Array.length neigh));
      let self = shared.community.(v) in
      let self_freq = Option.value (Hashtbl.find_opt counts self) ~default:0 in
      let best, freq = best_community counts self in
      if freq > self_freq && best <> self then begin
        shared.community.(v) <- best;
        incr my_changes;
        (* Mark the vertex as updated. *)
        Mpi.store_i64
          ~loc:(Mpi.loc ~file:src_file ~line:489 "Store")
          ~addr:(updated_buf + (16 * i))
          (Int64.of_int (iter + 1))
      end
    done;
    (* Update digests: one 16-byte message per neighbouring rank into our
       inbox slot there (the Figure 9 commwin Put). *)
    Array.iteri
      (fun ni nr ->
        let origin_addr = scdata + (record_stride * ((iter * max 1 (Array.length nbr_ranks)) + ni)) in
        let target_disp = inbox_off + (record_stride * rank) in
        let put line =
          Mpi.put
            ~loc:(Mpi.loc ~file:src_file ~line "MPI_Put")
            win ~target:nr ~target_disp ~origin_addr ~len:16;
          shared.puts <- shared.puts + 1
        in
        put 612;
        if params.inject_race && iter = 0 && ni = 0 then put 614)
      nbr_ranks;
    Mpi.win_unlock_all ~loc:(Mpi.loc ~file:src_file ~line:702 "MPI_Win_unlock_all") win;
    Mpi.barrier ()
  done;
  (* Post-phase: modularity-style quality metric — the fraction of edge
     endpoints whose communities agree, reduced across ranks. *)
  let agree = ref 0 in
  for i = 0 to n_own - 1 do
    let v = graph.Graph.owned_lo + i in
    Array.iter
      (fun u -> if shared.community.(v) = shared.community.(u) then incr agree)
      graph.Graph.adjacency.(i)
  done;
  let agree_total = Mpi.allreduce_int !agree ~op:Runtime.Sum in
  let edges_total = Mpi.allreduce_int graph.Graph.n_edges_local ~op:Runtime.Sum in
  let changes_total = Mpi.allreduce_int !my_changes ~op:Runtime.Sum in
  Mpi.win_free win;
  if rank = 0 then begin
    let communities =
      let seen = Hashtbl.create 1024 in
      Array.iter (fun c -> Hashtbl.replace seen c ()) shared.community;
      Hashtbl.length seen
    in
    summary_out :=
      {
        modularity = float_of_int agree_total /. float_of_int (max 1 edges_total);
        total_changes = changes_total;
        communities;
        ghost_fetches = shared.gets;
        update_puts = shared.puts;
      }
  end

let empty_summary =
  { modularity = 0.0; total_changes = 0; communities = 0; ghost_fetches = 0; update_puts = 0 }

let program params summary_ref =
  let shared = make_shared params in
  let cell = ref empty_summary in
  fun () ->
    program_with_shared params shared cell ();
    summary_ref := !cell

let run params ~nprocs ?(seed = 5) ?(config = Config.default) ?observer () =
  let shared = make_shared params in
  let cell = ref empty_summary in
  let result =
    Runtime.run ~nprocs ~seed ~config ?observer (program_with_shared params shared cell)
  in
  (result, !cell)
