(** Distributed synthetic graphs for the MiniVite workload.

    Vertices [0 .. n_global-1] are 1-D partitioned into contiguous
    chunks; each rank stores the adjacency of its owned vertices only.
    The generator mimics the locality structure of the random geometric
    graphs miniVite is usually driven with: most edges stay within a
    window around the vertex (so ghost vertices concentrate at partition
    boundaries), a configurable fraction jump uniformly — and a few
    hub vertices attract long-range edges, giving the cross-rank
    repeated-read pattern community detection exhibits. Generation is
    deterministic in (seed, vertex), so ranks can be generated
    independently. *)

type t = {
  n_global : int;
  nprocs : int;
  rank : int;
  owned_lo : int;  (** First owned vertex (inclusive). *)
  owned_hi : int;  (** Last owned vertex (inclusive). *)
  adjacency : int array array;  (** Per owned vertex, global neighbour ids. *)
  n_edges_local : int;
}

type params = {
  n_vertices : int;
  avg_degree : int;
  locality_window : int;  (** Half-width of the local edge window. *)
  long_range_fraction : float;  (** Edges escaping the window. *)
  hub_count : int;  (** Vertices attracting long-range edges. *)
  seed : int;
}

val default_params : params
(** 64 000 vertices, average degree 8 — one tenth of the paper's
    640 000-vertex MiniVite input, so a full Figure 11 sweep runs in CI
    time. Scale [n_vertices] up for the paper-size experiment. *)

val partition : n_global:int -> nprocs:int -> rank:int -> int * int
(** [lo, hi] owned range (inclusive; empty ranges return [lo > hi]). *)

val owner_of : n_global:int -> nprocs:int -> int -> int

val generate : params -> nprocs:int -> rank:int -> t

val owned : t -> int -> bool

val ghosts : t -> int array
(** Distinct non-owned vertices adjacent to owned ones, sorted. *)

val total_edges : t -> int
(** Local edge endpoints (each undirected edge counted from both sides
    across ranks). *)
