(** Sparse vector clocks for the MUST-RMA-style happens-before baseline.

    Clock components are identified by integer thread ids. Real MPI
    ranks use ids [0 .. nprocs-1]; every one-sided operation (or epoch)
    gets a fresh {e virtual} thread id above that range, mirroring how
    MUST-RMA models the asynchronous window between an RMA call and its
    completing synchronisation as a concurrent region. Sparse storage
    keeps unbounded virtual ids affordable while still costing O(live
    components) per merge — the growth with process count that the paper
    blames for MUST-RMA's scaling behaviour (§5.3). *)

type t

val empty : t

val create : nprocs:int -> t
(** Components [0 .. nprocs-1] at 0. *)

val get : t -> int -> int
(** Missing components read as 0. *)

val tick : t -> int -> t
(** Increment one component. *)

val set : t -> int -> int -> t

val merge : t -> t -> t
(** Componentwise max — the receive/join operation. *)

val size : t -> int
(** Number of non-zero components (what a piggybacked message would
    carry). *)

val leq : t -> t -> bool
(** Componentwise [<=]. *)

val happens_before : t -> t -> bool
(** [leq a b && a <> b]. *)

val concurrent : t -> t -> bool

val threads_per_rank : int
(** Upper bound on intra-rank thread ids accepted by {!rt_key}. *)

val rt_key : rank:int -> thread:int -> int
(** Component id for intra-rank thread [thread] of [rank]. Thread 0 maps
    to the plain rank id (so a single-threaded clock is exactly the
    rank-indexed clock used everywhere else); spawned threads map to
    negative keys disjoint from both rank ids and the virtual ids
    MUST-RMA allocates above [nprocs]. Raises [Invalid_argument] outside
    [0, threads_per_rank). *)

val rt_rank : int -> int
(** Rank of a component id produced by {!rt_key}. *)

val rt_thread : int -> int
(** Thread of a component id produced by {!rt_key} (0 for rank ids). *)

type stamp = { thread : int; epoch : int }
(** Identity of a single event: the thread it ran on and that thread's
    clock value when it ran. *)

val stamp_of : t -> thread:int -> stamp
(** Stamp an event happening now on [thread] under clock [t]. *)

val stamp_observed : stamp -> by:t -> bool
(** [stamp_observed s ~by] — does clock [by] already know about the
    event, i.e. did the event happen-before the point where [by] was
    taken? This is the O(1) TSan-style HB test. *)

val components : t -> (int * int) list
(** Non-zero [(thread, value)] components in increasing thread order —
    the serializable snapshot race provenance carries. *)

val of_components : (int * int) list -> t
(** Inverse of {!components} (zero values are dropped). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** [{ 0:2, 1:1 }] rendering of {!components}; [{}] when empty. *)

(** Dual observed/weak clocks for the predictive analyzer: the observed
    clock advances on every scheduler-visible progress point of its
    rank, the weak clock only on edges MPI synchronization semantics
    guarantee under {e every} legal schedule (fences; barriers whose
    outstanding one-sided traffic was flushed). Accesses separated in
    the observed order but concurrent in the weak order are the
    "schedulable race" class a different interleaving could overlap. *)
module Dual : sig
  type clock = t

  type t

  val create : unit -> t

  val observed : t -> clock

  val weak : t -> clock

  val reset : t -> unit

  val local_step : t -> rank:int -> unit
  (** Scheduler-induced progress (an epoch close the one observed run
      happened to take): ticks the observed clock only. *)

  val sync_step : t array -> unit
  (** A real synchronization edge joining every rank (fence release,
      fully flushed barrier): both clocks of every rank merge
      componentwise and tick their own component, barrier-style. *)
end
