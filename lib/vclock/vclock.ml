module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty

let create ~nprocs =
  let rec go acc i = if i >= nprocs then acc else go (Imap.add i 0 acc) (i + 1) in
  go Imap.empty 0

let get t i = Option.value (Imap.find_opt i t) ~default:0

let tick t i = Imap.add i (get t i + 1) t

let set t i v = Imap.add i v t

let merge a b = Imap.union (fun _ x y -> Some (max x y)) a b

let size t = Imap.fold (fun _ v acc -> if v > 0 then acc + 1 else acc) t 0

let leq a b = Imap.for_all (fun i v -> v <= get b i) a

let equal a b = leq a b && leq b a

let happens_before a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let components t = Imap.fold (fun i v acc -> if v > 0 then (i, v) :: acc else acc) t [] |> List.rev

let of_components comps =
  List.fold_left (fun acc (i, v) -> if v > 0 then Imap.add i v acc else acc) Imap.empty comps

(* Rank x thread component encoding. Thread 0 of a rank maps to the
   plain rank id, so single-thread clocks are indistinguishable from the
   rank-indexed clocks every existing caller builds. Spawned threads
   (tid >= 1) map to negative keys, which can collide neither with rank
   ids nor with the virtual ids MUST-RMA allocates above [nprocs]. *)
let threads_per_rank = 1024

let rt_key ~rank ~thread =
  if rank < 0 then invalid_arg "Vclock.rt_key: negative rank";
  if thread < 0 || thread >= threads_per_rank then
    invalid_arg (Printf.sprintf "Vclock.rt_key: thread %d outside [0, %d)" thread threads_per_rank);
  if thread = 0 then rank else -((rank * threads_per_rank) + thread)

let rt_rank key = if key >= 0 then key else -key / threads_per_rank

let rt_thread key = if key >= 0 then 0 else -key mod threads_per_rank

type stamp = { thread : int; epoch : int }

let stamp_of t ~thread = { thread; epoch = get t thread }

let stamp_observed s ~by = s.epoch <= get by s.thread

let pp fmt t =
  Format.fprintf fmt "{";
  Imap.iter (fun i v -> if v > 0 then Format.fprintf fmt "%d:%d " i v) t;
  Format.fprintf fmt "}"

let to_string t =
  let comps = components t in
  if comps = [] then "{}"
  else
    "{ " ^ String.concat ", " (List.map (fun (i, v) -> Printf.sprintf "%d:%d" i v) comps) ^ " }"

(* Dual clocks for the predictive analysis: each rank carries an
   OBSERVED clock advanced on every scheduler-visible progress point
   (epoch closes — the incidental order the one simulated run happened
   to take) and a WEAK clock advanced only on edges MPI semantics
   guarantee under every legal schedule (fences, globally flushed
   barriers). Two accesses separated in the observed order but not in
   the weak order are exactly the "schedulable race" class: a different
   interleaving could have overlapped them. *)
module Dual = struct
  type clock = t

  type nonrec t = { mutable observed : clock; mutable weak : clock }

  let create () = { observed = empty; weak = empty }

  let observed d = d.observed

  let weak d = d.weak

  let reset d =
    d.observed <- empty;
    d.weak <- empty

  let local_step d ~rank = d.observed <- tick d.observed rank

  (* A true synchronization edge joining every participant: both orders
     gather (componentwise max over all ranks) and each rank ticks its
     own component past the merge — the same shape as a barrier in a
     classic vector-clock analysis. *)
  let sync_step ds =
    let merged_obs = Array.fold_left (fun acc d -> merge acc d.observed) empty ds in
    let merged_weak = Array.fold_left (fun acc d -> merge acc d.weak) empty ds in
    Array.iteri
      (fun rank d ->
        d.observed <- tick merged_obs rank;
        d.weak <- tick merged_weak rank)
      ds
end
