module Obs = Rma_obs.Obs
module Events = Rma_obs.Events
module Sessions = Rma_obs.Sessions
module Tool = Rma_analysis.Tool
module Toolbox = Rma_analysis.Toolbox
module Report = Rma_analysis.Report
module Codec = Rma_trace.Codec
module Race_export = Rma_report.Race_export

type addr = Tcp of int | Unix_path of string

type config = { addr : addr; max_sessions : int; accept_queue : int }

let default_config = { addr = Tcp 0; max_sessions = 8; accept_queue = 16 }

(* Metrics are pre-created at module load (main thread): the Obs
   registry is not thread-safe, and the daemon loop may run on a
   background domain. Incrementing an existing counter is a plain field
   update and safe enough for monitoring. *)
let obs_admitted = Obs.counter ~help:"Serve sessions admitted to streaming" "serve.sessions_admitted"
let obs_completed = Obs.counter ~help:"Serve sessions completed (summary sent)" "serve.sessions_completed"
let obs_shed = Obs.counter ~help:"Serve sessions refused by admission control" "serve.sessions_shed"
let obs_races = Obs.counter ~help:"Race verdicts streamed to serve clients" "serve.races_streamed"
let obs_events = Obs.counter ~help:"Trace events ingested by the serve daemon" "serve.events_ingested"
let obs_active = Obs.gauge ~help:"Serve sessions currently streaming" "serve.active_sessions"

type stats = {
  accepted : int;
  admitted : int;
  completed : int;
  shed : int;
  disconnected : int;
  failed : int;
  races_streamed : int;
  events_ingested : int;
  active : int;
  queued : int;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  bound : addr;
  daemon_run_id : string;
  mutable sessions : Session.t list;  (* accept order; loop thread only *)
  mutable next_id : int;
  mutable rotate : int;
  stopping : bool Atomic.t;
  mutable dom : unit Domain.t option;
  c_accepted : int Atomic.t;
  c_admitted : int Atomic.t;
  c_completed : int Atomic.t;
  c_shed : int Atomic.t;
  c_disconnected : int Atomic.t;
  c_failed : int Atomic.t;
  c_races : int Atomic.t;
  c_events : int Atomic.t;
  g_active : int Atomic.t;
  g_queued : int Atomic.t;
}

let stats t =
  {
    accepted = Atomic.get t.c_accepted;
    admitted = Atomic.get t.c_admitted;
    completed = Atomic.get t.c_completed;
    shed = Atomic.get t.c_shed;
    disconnected = Atomic.get t.c_disconnected;
    failed = Atomic.get t.c_failed;
    races_streamed = Atomic.get t.c_races;
    events_ingested = Atomic.get t.c_events;
    active = Atomic.get t.g_active;
    queued = Atomic.get t.g_queued;
  }

let address t = t.bound
let port t = match t.bound with Tcp p -> p | Unix_path _ -> 0

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* Closing a socket with unread bytes in its receive buffer makes TCP
   reset the connection, which can discard a verdict line still in
   flight to the client — a shed or errored client would never see its
   answer. Flush our side with a half-close, then drain whatever input
   already arrived (non-blocking, so a slow client cannot stall the
   loop) before closing for real. *)
let graceful_close fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try
     Unix.set_nonblock fd;
     let buf = Bytes.create 4096 in
     let rec drain () = if Unix.read fd buf 0 4096 > 0 then drain () in
     drain ()
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let with_id id (r : Report.t) =
  { r with Report.provenance = { r.Report.provenance with Report.id = id } }

(* Bracket one session's processing slice: its private fault schedule
   is restored before and re-captured after (so interleaved sessions
   never perturb each other's deterministic ordinals), and its run_id
   labels every journal record emitted inside. The daemon's own fault
   state — whatever the operator installed process-wide — is put back
   on exit. *)
let with_session_env (s : Session.t) f =
  let saved = Rma_fault.snapshot () in
  (match s.Session.fault_snap with
  | Some snap -> Rma_fault.restore snap
  | None -> Rma_fault.clear ());
  let leave () =
    s.Session.fault_snap <- Some (Rma_fault.snapshot ());
    Rma_fault.restore saved
  in
  match Events.with_run_id s.Session.run_id f with
  | v ->
      leave ();
      v
  | exception e ->
      leave ();
      raise e

let rec close_session t (s : Session.t) reason =
  if Session.is_open s then begin
    let was_streaming = s.Session.phase = Session.Streaming in
    let was_queued = s.Session.phase = Session.Queued in
    s.Session.phase <- Session.Closed reason;
    if s.Session.run_id <> "" then begin
      Sessions.set_state ~run_id:s.Session.run_id
        (Sessions.Closed (Session.reason_label reason));
      Events.with_run_id s.Session.run_id (fun () ->
          Events.emit
            ~kv:
              [
                ("event", "session_closed");
                ("session", Option.value (Session.session_name s) ~default:"");
                ("reason", Session.reason_label reason);
                ("events", string_of_int s.Session.events_fed);
                ("races", string_of_int s.Session.races_streamed);
              ]
            Events.Info "serve")
    end;
    s.Session.tool <- None;
    s.Session.fault_snap <- None;
    s.Session.inbox <- [];
    graceful_close s.Session.fd;
    t.sessions <- List.filter (fun x -> x != s) t.sessions;
    if was_streaming then Atomic.decr t.g_active;
    if was_queued then Atomic.decr t.g_queued;
    (match reason with
    | Session.Completed ->
        Atomic.incr t.c_completed;
        Obs.incr obs_completed
    | Session.Shed ->
        Atomic.incr t.c_shed;
        Obs.incr obs_shed
    | Session.Protocol_error _ -> Atomic.incr t.c_failed
    | Session.Disconnected -> Atomic.incr t.c_disconnected
    | Session.Daemon_shutdown -> ());
    Obs.set_gauge obs_active (float_of_int (Atomic.get t.g_active));
    if was_streaming then promote_queued t
  end

and send t (s : Session.t) line =
  match write_all s.Session.fd (line ^ "\n") with
  | () -> true
  | exception Unix.Unix_error _ ->
      close_session t s Session.Disconnected;
      false

and admit t (s : Session.t) (h : Protocol.hello) =
  s.Session.run_id <- Printf.sprintf "%s-s%d" t.daemon_run_id s.Session.id;
  (* Give the session a private fault schedule starting at ordinal 0,
     without disturbing the daemon's own installed state. *)
  let saved = Rma_fault.snapshot () in
  (match h.Protocol.fault with Some p -> Rma_fault.install p | None -> Rma_fault.clear ());
  s.Session.fault_snap <- Some (Rma_fault.snapshot ());
  Rma_fault.restore saved;
  s.Session.tool <-
    Some
      (Toolbox.make h.Protocol.tool ~nprocs:h.Protocol.nprocs
         ?batch_inserts:h.Protocol.batch_inserts ?jobs:h.Protocol.jobs
         ?budget:h.Protocol.budget ?predictive:h.Protocol.predictive ());
  if s.Session.phase = Session.Queued then Atomic.decr t.g_queued;
  s.Session.phase <- Session.Streaming;
  Atomic.incr t.g_active;
  Atomic.incr t.c_admitted;
  Obs.incr obs_admitted;
  Obs.set_gauge obs_active (float_of_int (Atomic.get t.g_active));
  Sessions.register ~run_id:s.Session.run_id ~session:h.Protocol.session
    ~state:Sessions.Active;
  Events.with_run_id s.Session.run_id (fun () ->
      Events.emit
        ~kv:
          [
            ("event", "session_admitted");
            ("session", h.Protocol.session);
            ("tool", Toolbox.slug h.Protocol.tool);
            ("nprocs", string_of_int h.Protocol.nprocs);
          ]
        Events.Info "serve");
  if send t s (Protocol.admitted ~session:h.Protocol.session ~run_id:s.Session.run_id) then
    drain t s

and promote_queued t =
  if (not (Atomic.get t.stopping)) && Atomic.get t.g_active < t.cfg.max_sessions then
    match List.find_opt (fun s -> s.Session.phase = Session.Queued) t.sessions with
    | Some ({ Session.hello = Some h; _ } as s) ->
        admit t s h;
        promote_queued t
    | _ -> ()

and on_hello t (s : Session.t) line =
  match Protocol.parse_hello line with
  | Error reason ->
      if send t s (Protocol.error reason) then close_session t s (Session.Protocol_error reason)
  | Ok h ->
      s.Session.hello <- Some h;
      if Atomic.get t.g_active < t.cfg.max_sessions then admit t s h
      else if Atomic.get t.g_queued < t.cfg.accept_queue then begin
        s.Session.phase <- Session.Queued;
        Atomic.incr t.g_queued;
        ignore
          (send t s
             (Protocol.queued ~session:h.Protocol.session ~position:(Atomic.get t.g_queued)))
      end
      else begin
        ignore
          (send t s
             (Protocol.load_shed ~session:h.Protocol.session ~active:(Atomic.get t.g_active)
                ~queued:(Atomic.get t.g_queued) ()));
        close_session t s Session.Shed
      end

and flush_races t (s : Session.t) =
  match s.Session.tool with
  | None -> ()
  | Some tool ->
      (* race_count is a cheap int; only rebuild the stored list when it
         moved (it also moves for reports dropped past the tool's cap,
         in which case the stored list is simply unchanged). *)
      let rc = tool.Tool.race_count () in
      if rc <> s.Session.last_race_count then begin
        s.Session.last_race_count <- rc;
        let stored = tool.Tool.races () in
        let n = List.length stored in
        if n > s.Session.races_streamed then begin
          let fresh = drop s.Session.races_streamed stored in
          List.iteri
            (fun i r ->
              if Session.is_open s then begin
                (* Stream order is final order (the stored list is
                   chronological and append-only), so the 1-based stream
                   index is exactly the id the offline export's
                   renumbering would assign. *)
                let r = with_id (s.Session.races_streamed + i + 1) r in
                if send t s (Protocol.race r) then begin
                  Atomic.incr t.c_races;
                  Obs.incr obs_races
                end
              end)
            fresh;
          s.Session.races_streamed <- n
        end
      end

and finish_session t (s : Session.t) n_events =
  match s.Session.tool with
  | None -> close_session t s (Session.Protocol_error "stream completed without a tool")
  | Some tool ->
      flush_races t s;
      if Session.is_open s then begin
        let reports = List.mapi (fun i r -> with_id (i + 1) r) (tool.Tool.races ()) in
        let digest = Race_export.verdict_digest reports in
        let degraded = (tool.Tool.bst_summary ()).Tool.degraded_drops_total in
        let session = Option.value (Session.session_name s) ~default:"" in
        Events.emit
          ~kv:
            [
              ("event", "session_summary");
              ("session", session);
              ("events", string_of_int n_events);
              ("races", string_of_int (List.length reports));
              ("digest", digest);
            ]
          Events.Info "serve";
        if
          send t s
            (Protocol.summary ~session ~events:n_events ~races:(List.length reports) ~digest
               ~degraded_drops:degraded)
        then close_session t s Session.Completed
      end

and feed_line t (s : Session.t) line =
  match Codec.Incremental.feed s.Session.decoder line with
  | Ok Codec.Incremental.Skip -> ()
  | Ok (Codec.Incremental.Event e) ->
      s.Session.events_fed <- s.Session.events_fed + 1;
      Atomic.incr t.c_events;
      Obs.incr obs_events;
      (match s.Session.tool with
      | None -> ()
      | Some tool -> (
          try ignore (tool.Tool.observer e) with
          | Report.Race_abort _ -> ()
          | Rma_fault.Budget.Exhausted msg ->
              let reason = "budget exhausted: " ^ msg in
              ignore (send t s (Protocol.error ?session:(Session.session_name s) reason));
              close_session t s (Session.Protocol_error reason)));
      if Session.is_open s then flush_races t s
  | Ok (Codec.Incremental.Complete n) -> finish_session t s n
  | Error err ->
      let reason = Codec.error_to_string err in
      ignore (send t s (Protocol.error ?session:(Session.session_name s) reason));
      close_session t s (Session.Protocol_error reason)

and drain t (s : Session.t) =
  match s.Session.inbox with
  | [] -> ()
  | line :: rest -> (
      match s.Session.phase with
      | Session.Queued | Session.Closed _ -> ()
      | Session.Handshaking ->
          s.Session.inbox <- rest;
          on_hello t s line;
          drain t s
      | Session.Streaming ->
          s.Session.inbox <- rest;
          with_session_env s (fun () -> feed_line t s line);
          drain t s)

let accept_new t =
  match Unix.accept t.lsock with
  | exception Unix.Unix_error _ -> ()
  | fd, _addr ->
      Atomic.incr t.c_accepted;
      if List.length t.sessions >= t.cfg.max_sessions + t.cfg.accept_queue then begin
        (* Accept-time load shed: even the bounded queue is full, so
           answer with a verdict the client can act on and close. *)
        let line =
          Protocol.load_shed ~active:(Atomic.get t.g_active) ~queued:(Atomic.get t.g_queued) ()
        in
        (try write_all fd (line ^ "\n") with Unix.Unix_error _ -> ());
        graceful_close fd;
        Atomic.incr t.c_shed;
        Obs.incr obs_shed
      end
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        t.sessions <- t.sessions @ [ Session.create ~id ~fd ]
      end

let service t (s : Session.t) =
  let buf = Bytes.create 8192 in
  match Unix.read s.Session.fd buf 0 8192 with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> close_session t s Session.Disconnected
  | 0 ->
      (* EOF. A legacy (format-1) stream is delimited by it; a framed
         stream ending here lost its footer — the client died
         mid-stream. *)
      if s.Session.phase = Session.Streaming then
        with_session_env s (fun () ->
            match Codec.Incremental.finish s.Session.decoder with
            | Ok n -> finish_session t s n
            | Error _ -> close_session t s Session.Disconnected)
      else close_session t s Session.Disconnected
  | n ->
      Session.push_bytes s (Bytes.sub_string buf 0 n);
      drain t s

(* Round-robin fairness: each select round services ready sessions
   starting from a rotating offset, and each service consumes at most
   one 8 KiB read — so a firehose session cannot starve the others. *)
let rotate_list n l =
  match l with
  | [] -> []
  | _ ->
      let k = n mod List.length l in
      let rec split i acc rest =
        if i = 0 then rest @ List.rev acc
        else match rest with [] -> List.rev acc | x :: tl -> split (i - 1) (x :: acc) tl
      in
      split k [] l

let step t =
  let watched = List.filter Session.wants_read t.sessions in
  let read_fds = t.lsock :: List.map (fun s -> s.Session.fd) watched in
  match Unix.select read_fds [] [] 0.25 with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | ready, _, _ ->
      if List.mem t.lsock ready then accept_new t;
      let in_order = rotate_list t.rotate watched in
      t.rotate <- t.rotate + 1;
      List.iter
        (fun s -> if Session.is_open s && List.mem s.Session.fd ready then service t s)
        in_order

let create ?(config = default_config) () =
  (* Writes to a crashed client must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lsock, bound =
    match config.addr with
    | Tcp requested ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt s Unix.SO_REUSEADDR true;
           Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, requested));
           Unix.listen s 64
         with e ->
           (try Unix.close s with Unix.Unix_error _ -> ());
           raise e);
        let p =
          match Unix.getsockname s with Unix.ADDR_INET (_, p) -> p | _ -> requested
        in
        (* Same contract as the obs endpoint's ephemeral bind: scripts
           scrape the resolved port from one stable stderr line. *)
        if requested = 0 then Printf.eprintf "serve-port: %d\n%!" p;
        (s, Tcp p)
    | Unix_path path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind s (Unix.ADDR_UNIX path);
           Unix.listen s 64
         with e ->
           (try Unix.close s with Unix.Unix_error _ -> ());
           raise e);
        (s, Unix_path path)
  in
  let t =
    {
      cfg = config;
      lsock;
      bound;
      daemon_run_id = Events.run_id ();
      sessions = [];
      next_id = 1;
      rotate = 0;
      stopping = Atomic.make false;
      dom = None;
      c_accepted = Atomic.make 0;
      c_admitted = Atomic.make 0;
      c_completed = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_disconnected = Atomic.make 0;
      c_failed = Atomic.make 0;
      c_races = Atomic.make 0;
      c_events = Atomic.make 0;
      g_active = Atomic.make 0;
      g_queued = Atomic.make 0;
    }
  in
  Events.emit
    ~kv:
      [
        ("event", "serve_start");
        ( "addr",
          match bound with
          | Tcp p -> Printf.sprintf "tcp:127.0.0.1:%d" p
          | Unix_path p -> "unix:" ^ p );
        ("max_sessions", string_of_int config.max_sessions);
        ("accept_queue", string_of_int config.accept_queue);
      ]
    Events.Info "serve";
  t

let run t =
  while not (Atomic.get t.stopping) do
    step t
  done;
  List.iter (fun s -> close_session t s Session.Daemon_shutdown) t.sessions;
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  (match t.bound with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Events.emit ~kv:[ ("event", "serve_stop") ] Events.Info "serve"

let request_stop t = Atomic.set t.stopping true

let start t = t.dom <- Some (Domain.spawn (fun () -> run t))

let stop t =
  request_stop t;
  match t.dom with
  | Some d ->
      Domain.join d;
      t.dom <- None
  | None -> ()
