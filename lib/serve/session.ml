module Tool = Rma_analysis.Tool
module Codec = Rma_trace.Codec

type close_reason =
  | Completed
  | Shed
  | Protocol_error of string
  | Disconnected
  | Daemon_shutdown

let reason_label = function
  | Completed -> "completed"
  | Shed -> "shed"
  | Protocol_error _ -> "protocol_error"
  | Disconnected -> "disconnected"
  | Daemon_shutdown -> "daemon_shutdown"

type phase = Handshaking | Queued | Streaming | Closed of close_reason

let phase_label = function
  | Handshaking -> "handshaking"
  | Queued -> "queued"
  | Streaming -> "streaming"
  | Closed r -> "closed:" ^ reason_label r

type t = {
  id : int;
  fd : Unix.file_descr;
  mutable phase : phase;
  mutable pending : string;  (* bytes received but not yet terminated by '\n' *)
  mutable inbox : string list;  (* complete lines not yet consumed by the state machine *)
  mutable hello : Protocol.hello option;
  mutable run_id : string;
  mutable tool : Tool.t option;
  decoder : Codec.Incremental.t;
  mutable fault_snap : Rma_fault.snapshot option;
  mutable races_streamed : int;
  mutable last_race_count : int;
  mutable events_fed : int;
}

let create ~id ~fd =
  {
    id;
    fd;
    phase = Handshaking;
    pending = "";
    inbox = [];
    hello = None;
    run_id = "";
    tool = None;
    decoder = Codec.Incremental.create ();
    fault_snap = None;
    races_streamed = 0;
    last_race_count = 0;
    events_fed = 0;
  }

let is_open s = match s.phase with Closed _ -> false | _ -> true
let wants_read s = match s.phase with Handshaking | Streaming -> true | _ -> false

(* Append a received chunk, peeling complete lines into the inbox. CRLF
   tolerated; the unterminated tail stays pending for the next chunk. *)
let push_bytes s chunk =
  let data = s.pending ^ chunk in
  let parts = String.split_on_char '\n' data in
  match List.rev parts with
  | [] -> ()
  | tail :: complete_rev ->
      s.pending <- tail;
      let lines =
        List.rev_map
          (fun line ->
            let n = String.length line in
            if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
          complete_rev
      in
      s.inbox <- s.inbox @ lines

let session_name s = match s.hello with Some h -> Some h.Protocol.session | None -> None
