(** The always-on analysis daemon behind [rma_race serve].

    One single-threaded select loop multiplexes every client session —
    accepting connections, reading each socket in bounded 8 KiB slices
    serviced round-robin from a rotating offset (fairness), decoding
    Codec streams incrementally, driving each session's detector, and
    streaming {!Protocol} verdict lines back. Single-threadedness is
    load-bearing: the {!Rma_fault} schedule, the {!Rma_obs.Obs}
    registry and {!Rma_par} submission are all caller-thread
    disciplines, and one loop thread satisfies them for every session
    at once. Worker domains still parallelise the analysis itself —
    sessions that ask for [jobs > 1] shard their stores over the shared
    process-global {!Rma_par} pool, which is reused across sessions and
    never grows past the largest request ({!Rma_par.pool_size}).

    {b Isolation.} Each admitted session gets its own detector tool
    (stores, budget, shard engine), its own run_id
    (["<daemon>-s<n>"], labelling journal records and the
    [rma_session_info] metric via {!Rma_obs.Sessions}), and its own
    {!Rma_fault} schedule: the daemon snapshots/restores fault state
    around every processing slice, so interleaving sessions never
    perturbs each other's deterministic fault ordinals. Verdicts are
    byte-identical to the offline [analyze] path by construction — the
    same tool, fed the same events in the same order, with races
    renumbered to stream order exactly as the offline export renumbers.

    {b Admission.} At most [max_sessions] sessions stream at once;
    handshaken sessions beyond that wait in a bounded accept queue of
    [accept_queue] (their sockets deliberately unread, so the kernel
    buffer back-pressures the client); anything beyond both bounds is
    answered with a [load_shed] line and closed — at accept time when
    the connection count alone proves overload, otherwise after the
    handshake.

    {b Churn.} A session may disconnect at any point, including
    mid-epoch; its tool, fault snapshot and socket are released and a
    queued session is promoted. Nothing session-scoped survives the
    close — {!Rma_obs.Sessions.registered_count} and
    {!Rma_par.pool_size} are the leak-check surfaces the churn test
    pins. *)

type addr =
  | Tcp of int  (** Loopback TCP; [0] binds an ephemeral port. *)
  | Unix_path of string  (** Unix-domain socket path (unlinked first). *)

type config = {
  addr : addr;
  max_sessions : int;  (** Concurrent streaming sessions (default 8). *)
  accept_queue : int;  (** Handshaken sessions allowed to wait (default 16). *)
}

val default_config : config
(** Ephemeral loopback TCP, 8 streaming slots, queue of 16. *)

type t

val create : ?config:config -> unit -> t
(** Bind and listen (raising [Unix.Unix_error] if the address is
    taken), ignore SIGPIPE, and journal a [serve_start] record. An
    ephemeral TCP request prints [serve-port: <port>] on stderr — the
    line scripted callers scrape, mirroring [obs-serve-port]. The loop
    does not run yet: call {!run} (blocking) or {!start}. *)

val run : t -> unit
(** The select loop, on the calling thread. Returns after
    {!request_stop}: every open session is closed with reason
    [daemon_shutdown], the listener is closed (and a Unix-domain path
    unlinked), and a [serve_stop] record is journaled. *)

val request_stop : t -> unit
(** Ask the loop to exit after its current round (≤ 0.25 s away).
    Async-signal-safe — the CLI installs it as the SIGINT/SIGTERM
    handler. *)

val start : t -> unit
(** Run the loop on a background domain (tests and the bench soak).
    While it runs, the loop thread owns the process-global
    fault/obs/par caller-thread state — do not run analyses from other
    threads until {!stop} returns. *)

val stop : t -> unit
(** {!request_stop} then join the {!start} domain, if any. *)

val port : t -> int
(** Resolved TCP port (0 for a Unix-domain daemon). *)

val address : t -> addr
(** The bound address with any ephemeral port resolved. *)

type stats = {
  accepted : int;  (** Connections accepted (including later-shed ones). *)
  admitted : int;  (** Sessions that reached streaming. *)
  completed : int;  (** Sessions that received their summary. *)
  shed : int;  (** Connections refused by admission control. *)
  disconnected : int;  (** Clients that vanished mid-session. *)
  failed : int;  (** Protocol errors (bad handshake, undecodable line). *)
  races_streamed : int;
  events_ingested : int;
  active : int;  (** Currently streaming. *)
  queued : int;  (** Currently waiting for a slot. *)
}

val stats : t -> stats
(** Live counters, readable from any thread (atomics). The same
    numbers feed the [serve.*] Obs metrics on [/metrics]. *)
