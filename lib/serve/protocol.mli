(** Wire protocol of the [serve] daemon.

    A session is one connection. The client sends exactly one
    {e handshake} line — a minified JSON object — then the trace as a
    verbatim {!Rma_trace.Codec} format-2 stream (header line, one event
    per line, [rma-trace-end] footer). The server answers with JSON
    lines only: an admission verdict, zero or more [race] lines as
    verdicts become known, and one final [summary] line, after which it
    closes the connection. Both directions are newline-delimited UTF-8;
    no binary framing. The full operator-facing specification, with a
    worked transcript, is in OPERATIONS.md. *)

val version : int
(** Protocol version negotiated by the handshake (1). *)

(** {1 Handshake} *)

(** Parsed client handshake. [session] is the client-chosen display
    name (1–128 chars); [tool] defaults to the paper's contribution
    detector; [nprocs] is the simulated rank count the trace was
    recorded with (required — detector state is sized before the first
    event arrives). The remaining knobs mirror the offline CLI flags
    and fall back to the daemon process's defaults when omitted:
    [jobs] (shard count), [batch_inserts], [predictive], [budget]
    (a {!Rma_fault.Budget.of_spec} string), and [fault] (a
    {!Rma_fault.Plan.of_spec} string applied to this session only). *)
type hello = {
  session : string;
  tool : Rma_analysis.Toolbox.kind;
  nprocs : int;
  jobs : int option;
  batch_inserts : bool option;
  predictive : bool option;
  budget : Rma_fault.Budget.t option;
  fault : Rma_fault.Plan.t option;
}

val parse_hello : string -> (hello, string) result
(** Total: any line yields [Ok] or a one-line reason suitable for an
    [error] reply. Example accepted line:
    [{"hello":1,"session":"job-42","tool":"contribution","nprocs":4,
      "budget":"4096:spill","fault":"seed=7,worker_crash=0.05"}]. *)

(** {1 Server lines}

    Each constructor renders one complete minified JSON line (no
    trailing newline). *)

val admitted : session:string -> run_id:string -> string
(** The session is streaming; [run_id] labels its journal records and
    [/metrics] series. *)

val queued : session:string -> position:int -> string
(** The session handshook fine but all streaming slots are busy; it
    waits at 1-based [position] in the accept queue. An [admitted]
    line follows when a slot frees. *)

val load_shed : ?session:string -> active:int -> queued:int -> unit -> string
(** Admission refused — streaming slots {e and} the bounded accept
    queue are full. The connection is closed after this line; the
    client should back off and retry. [session] is omitted when the
    daemon sheds at accept time, before reading the handshake. *)

val error : ?session:string -> string -> string
(** Protocol or decode failure; the connection is closed after it. *)

val race : Rma_analysis.Report.t -> string
(** One incremental verdict: [{"type":"race","race":{...}}] where the
    inner object is {!Rma_report.Race_export.report_json} — field-level
    identical to the same race in an offline [--races-json] export.
    The caller renumbers the report id to its 1-based stream position
    first (matching the offline export's renumbering). *)

val summary :
  session:string -> events:int -> races:int -> digest:string -> degraded_drops:int -> string
(** Final line of a completed session: events decoded, races streamed,
    the {!Rma_report.Race_export.verdict_digest} of the full verdict
    list (the offline-equality contract), and the degraded-drop count
    when the session's budget forced evictions. *)
