(** One client connection's lifecycle state.

    The daemon owns every transition; this module just names the state
    machine and keeps the per-session mutable record — socket, receive
    buffer, handshake, detector tool, incremental decoder, and the
    session's private {!Rma_fault} schedule position.

    {v
      Handshaking ──hello, slot free──────────────▶ Streaming
          │   │                                        │
          │   └──hello, slots busy──▶ Queued ──slot──▶ │
          │            │                │              │
          │            │           (queue full)        │
          ▼            ▼                ▼              ▼
        Closed of Protocol_error | Shed | Disconnected | Completed
                                       | Daemon_shutdown
    v} *)

(** Why a session ended: [Completed] (footer seen, summary sent),
    [Shed] (admission refused), [Protocol_error] (bad handshake or
    undecodable trace line, reason attached), [Disconnected] (client
    vanished mid-stream), [Daemon_shutdown] (daemon stopped first). *)
type close_reason =
  | Completed
  | Shed
  | Protocol_error of string
  | Disconnected
  | Daemon_shutdown

val reason_label : close_reason -> string
(** Stable lowercase label used in journal events, [/metrics] session
    states and daemon stats. *)

type phase = Handshaking | Queued | Streaming | Closed of close_reason

val phase_label : phase -> string

type t = {
  id : int;  (** Daemon-local ordinal, minted at accept. *)
  fd : Unix.file_descr;
  mutable phase : phase;
  mutable pending : string;  (** Received bytes not yet newline-terminated. *)
  mutable inbox : string list;
      (** Complete lines the state machine has not consumed yet — a
          client that pipelines its handshake and trace in one write
          can land lines while the session is still [Queued]; they wait
          here until admission. *)
  mutable hello : Protocol.hello option;
  mutable run_id : string;  (** ["<daemon run id>-s<id>"] once admitted. *)
  mutable tool : Rma_analysis.Tool.t option;
  decoder : Rma_trace.Codec.Incremental.t;
  mutable fault_snap : Rma_fault.snapshot option;
      (** Where this session's private fault schedule paused — restored
          around every processing slice so interleaved sessions never
          perturb each other's deterministic fault ordinals. *)
  mutable races_streamed : int;
  mutable last_race_count : int;
  mutable events_fed : int;
}

val create : id:int -> fd:Unix.file_descr -> t
(** Fresh session in [Handshaking]. *)

val is_open : t -> bool

val wants_read : t -> bool
(** Whether the daemon's select loop should watch this fd: true in
    [Handshaking] and [Streaming]. A [Queued] session is deliberately
    {e not} read — the kernel socket buffer back-pressures the client
    until a streaming slot frees. *)

val push_bytes : t -> string -> unit
(** Append a received chunk, moving every newly completed line (without
    its terminator; CRLF tolerated) into [inbox]. The unterminated tail
    is kept for the next chunk. *)

val session_name : t -> string option
(** The handshake's session name, once known. *)
