module Json = Rma_util.Json
module Toolbox = Rma_analysis.Toolbox

let version = 1

type hello = {
  session : string;
  tool : Toolbox.kind;
  nprocs : int;
  jobs : int option;
  batch_inserts : bool option;
  predictive : bool option;
  budget : Rma_fault.Budget.t option;
  fault : Rma_fault.Plan.t option;
}

let ( let* ) r f = Result.bind r f

let opt_field name conv j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "ill-typed hello field %S" name))

let spec_field name of_spec j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_str v with
      | None -> Error (Printf.sprintf "ill-typed hello field %S" name)
      | Some s -> (
          match of_spec s with
          | Ok parsed -> Ok (Some parsed)
          | Error e -> Error (Printf.sprintf "bad %s spec: %s" name e)))

let parse_hello line =
  let* j = Result.map_error (fun e -> "malformed hello: " ^ e) (Json.of_string line) in
  let* () =
    match Option.bind (Json.member "hello" j) Json.to_int with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported protocol version %d (want %d)" v version)
    | None -> Error "missing \"hello\" version field"
  in
  let* session =
    match Option.bind (Json.member "session" j) Json.to_str with
    | Some s when s <> "" && String.length s <= 128 -> Ok s
    | Some _ -> Error "session name must be 1..128 characters"
    | None -> Error "missing \"session\" field"
  in
  let* tool =
    match Json.member "tool" j with
    | None | Some Json.Null -> Ok Toolbox.Contribution
    | Some v -> (
        match Option.bind (Json.to_str v) Toolbox.of_slug with
        | Some k -> Ok k
        | None -> Error "unknown tool slug")
  in
  let* nprocs =
    match Option.bind (Json.member "nprocs" j) Json.to_int with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error "nprocs must be >= 1"
    | None -> Error "missing \"nprocs\" field"
  in
  let* jobs = opt_field "jobs" Json.to_int j in
  let* batch_inserts = opt_field "batch_inserts" Json.to_bool j in
  let* predictive = opt_field "predictive" Json.to_bool j in
  let* budget = spec_field "budget" Rma_fault.Budget.of_spec j in
  let* fault = spec_field "fault" Rma_fault.Plan.of_spec j in
  Ok { session; tool; nprocs; jobs; batch_inserts; predictive; budget; fault }

(* ------------------------------------------------------------------ *)
(* Server -> client lines                                              *)
(* ------------------------------------------------------------------ *)

let msg fields = Json.to_string ~minify:true (Json.Obj fields)
let session_field = function None -> [] | Some s -> [ ("session", Json.String s) ]

let admitted ~session ~run_id =
  msg
    [
      ("type", Json.String "admitted");
      ("protocol", Json.Int version);
      ("session", Json.String session);
      ("run_id", Json.String run_id);
    ]

let queued ~session ~position =
  msg
    [ ("type", Json.String "queued"); ("session", Json.String session);
      ("position", Json.Int position) ]

let load_shed ?session ~active ~queued () =
  msg
    (("type", Json.String "load_shed") :: session_field session
    @ [ ("active", Json.Int active); ("queued", Json.Int queued) ])

let error ?session reason =
  msg (("type", Json.String "error") :: session_field session @ [ ("reason", Json.String reason) ])

let race report =
  msg [ ("type", Json.String "race"); ("race", Rma_report.Race_export.report_json report) ]

let summary ~session ~events ~races ~digest ~degraded_drops =
  msg
    [
      ("type", Json.String "summary");
      ("session", Json.String session);
      ("events", Json.Int events);
      ("races", Json.Int races);
      ("digest", Json.String digest);
      ("degraded_drops", Json.Int degraded_drops);
    ]
