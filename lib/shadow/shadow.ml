open Rma_access

type cell = {
  stamp : Rma_vclock.Vclock.stamp;
  lo : int;
  hi : int;
  kind : Access_kind.t;
  issuer : int;
  debug : Debug_info.t;
}

type race = { prior : cell; current : cell }

type t = {
  table : (int, cell list ref) Hashtbl.t;
  cells_per_granule : int;
  happens_before : Rma_vclock.Vclock.stamp -> Rma_vclock.Vclock.t -> bool;
}

let create ?(cells_per_granule = 4) ~happens_before () =
  { table = Hashtbl.create 4096; cells_per_granule; happens_before }

let granule_of addr = addr asr 3

let record_and_check t ~interval ~thread ~clock ~kind ~issuer ~debug =
  let is_write = Access_kind.is_write kind in
  let lo = Interval.lo interval and hi = Interval.hi interval in
  let race = ref None in
  for g = granule_of lo to granule_of hi do
    let slot =
      match Hashtbl.find_opt t.table g with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace t.table g r;
          r
    in
    let cell_lo = max lo (g * 8) and cell_hi = min hi ((g * 8) + 7) in
    let current =
      { stamp = Rma_vclock.Vclock.stamp_of clock ~thread; lo = cell_lo; hi = cell_hi; kind; issuer; debug }
    in
    if !race = None then begin
      let conflict prior =
        prior.stamp.Rma_vclock.Vclock.thread <> thread
        && (Access_kind.is_write prior.kind || is_write)
        && (not (Access_kind.is_accumulate prior.kind && Access_kind.is_accumulate kind))
        && prior.lo <= cell_hi && cell_lo <= prior.hi
        && not (t.happens_before prior.stamp clock)
      in
      match List.find_opt conflict !slot with
      | Some prior -> race := Some { prior; current }
      | None -> ()
    end;
    (* FIFO shadow update: newest first, bounded width. *)
    let kept = List.filteri (fun i _ -> i < t.cells_per_granule - 1) !slot in
    slot := current :: kept
  done;
  !race

let granules t = Hashtbl.length t.table

let cells t = Hashtbl.fold (fun _ r acc -> acc + List.length !r) t.table 0

let clear t = Hashtbl.reset t.table
