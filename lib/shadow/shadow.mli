open Rma_access

(** ThreadSanitizer-style shadow memory.

    One shadow cell records one memory access: which (possibly virtual)
    thread performed it, that thread's clock value at the time, the byte
    range inside its 8-byte granule, its access kind, and its debug
    location. Like TSan, each granule keeps a small fixed number of
    cells (eviction is FIFO), the happens-before test against a new
    access is O(1), and granules are 8 bytes wide.

    The happens-before predicate is injected at creation time so the
    driver can implement virtual-thread semantics (MUST-RMA models every
    one-sided operation as its own concurrent region that joins its
    origin at epoch close) without the shadow memory knowing about
    epochs. *)

type cell = {
  stamp : Rma_vclock.Vclock.stamp;
  lo : int;  (** Absolute first byte covered within the granule. *)
  hi : int;
  kind : Access_kind.t;
  issuer : int;  (** Real rank behind the (possibly virtual) thread. *)
  debug : Debug_info.t;
}

type race = { prior : cell; current : cell }

type t

val create :
  ?cells_per_granule:int ->
  happens_before:(Rma_vclock.Vclock.stamp -> Rma_vclock.Vclock.t -> bool) ->
  unit ->
  t
(** [happens_before stamp clock] decides whether the event identified by
    [stamp] is ordered before the point where [clock] was taken. Default
    granule width 4 cells, TSan's historical shadow width. *)

val record_and_check :
  t ->
  interval:Interval.t ->
  thread:int ->
  clock:Rma_vclock.Vclock.t ->
  kind:Access_kind.t ->
  issuer:int ->
  debug:Debug_info.t ->
  race option
(** Checks the access against every overlapping shadow cell: a prior
    cell races when it is not happens-before the new access, it
    overlaps, at least one of the two wrote, and they come from
    different threads. Returns the first race found; always records the
    new access (TSan reports and carries on). *)

val granules : t -> int
(** Number of populated 8-byte granules (memory-footprint metric). *)

val cells : t -> int

val clear : t -> unit
