open Rma_access
(** Shared vocabulary for the two access stores. *)

type insert_outcome =
  | Inserted  (** No conflict; the access is now recorded. *)
  | Race_detected of { existing : Access.t; incoming : Access.t }
      (** A data race: [incoming] conflicts with the already-recorded
          [existing]. Tools following the paper abort the program and
          report both debug locations (Figure 9b). The access is NOT
          recorded when a race is reported. *)

type stats = {
  nodes : int;  (** Current node count — the paper's "size of the BST". *)
  peak_nodes : int;  (** Largest node count observed. *)
  inserts : int;  (** Accesses presented to the store. *)
  fragments_created : int;  (** Pieces produced by fragmentation (§4.1). *)
  merges_performed : int;  (** Node pairs coalesced by merging (§4.2). *)
  race_checks : int;  (** Pairwise access comparisons during detection. *)
  tree_ops : int;
      (** Interval-tree descents performed (inserts, removes, stabs,
          search paths, clearance probes) — the cost the disjoint
          store's insert fast path exists to cut. *)
}

let zero_stats =
  {
    nodes = 0;
    peak_nodes = 0;
    inserts = 0;
    fragments_created = 0;
    merges_performed = 0;
    race_checks = 0;
    tree_ops = 0;
  }

module type S = sig
  type t

  val insert : t -> Access.t -> insert_outcome
  val size : t -> int
  val stats : t -> stats
  val to_list : t -> Access.t list
  val clear : t -> unit
  (** Empties the tree (end of epoch) but keeps cumulative statistics. *)

  val pp : Format.formatter -> t -> unit
end
