open Rma_access
(** Shared vocabulary for the two access stores. *)

type insert_outcome =
  | Inserted  (** No conflict; the access is now recorded. *)
  | Race_detected of { existing : Access.t; incoming : Access.t }
      (** A data race: [incoming] conflicts with the already-recorded
          [existing]. Tools following the paper abort the program and
          report both debug locations (Figure 9b). The access is NOT
          recorded when a race is reported. *)

type stats = {
  nodes : int;  (** Current node count — the paper's "size of the BST". *)
  peak_nodes : int;  (** Largest node count observed. *)
  inserts : int;  (** Accesses presented to the store. *)
  fragments_created : int;  (** Pieces produced by fragmentation (§4.1). *)
  merges_performed : int;  (** Node pairs coalesced by merging (§4.2). *)
  race_checks : int;  (** Pairwise access comparisons during detection. *)
  tree_ops : int;
      (** Interval-tree descents performed (inserts, removes, stabs,
          search paths, clearance probes) — the cost the disjoint
          store's insert fast path exists to cut. *)
  degraded_drops : int;
      (** Nodes evicted or coarsened away by budget governance
          ({!Governor}, DESIGN.md §11). Zero on an unbudgeted store;
          non-zero means detection may have lost information and every
          downstream report must say so ([degraded_drops] in
          {!Rma_report.Harness.metrics}, downgraded confidence in
          SARIF). *)
}

let zero_stats =
  {
    nodes = 0;
    peak_nodes = 0;
    inserts = 0;
    fragments_created = 0;
    merges_performed = 0;
    race_checks = 0;
    tree_ops = 0;
    degraded_drops = 0;
  }

module type S = sig
  type t

  val insert : t -> Access.t -> insert_outcome
  (** Record one access, first checking it against the conflicting
      recorded accesses (Algorithm 1 line 2 in the disjoint store, the
      search-path approximation in the legacy store). On a budgeted
      store ({!Governor}) a successful insert may additionally trigger
      the budget's degradation policy; under [Fail_fast] that raises
      {!Rma_fault.Budget.Exhausted}. *)

  val size : t -> int
  (** Current node count. *)

  val stats : t -> stats
  (** Cumulative counters since creation; {!clear} does not reset
      them. *)

  val to_list : t -> Access.t list
  (** Recorded accesses in increasing lower-bound order. *)

  val note_epoch : t -> unit
  (** Tell the store an epoch boundary passed: accesses recorded so far
      become "completed-epoch" for the [Spill_oldest_epoch] governance
      policy, and stores with a flight recorder advance its epoch
      stamp. Called by the analyzer at [Epoch_opened]. *)

  val clear : t -> unit
  (** Empties the tree (end of epoch) but keeps cumulative statistics. *)

  val pp : Format.formatter -> t -> unit
end
