open Rma_access

type origin = { access : Access.t; epoch : int }

type t = {
  ring : origin option array;
  mutable next : int;  (** Slot the next record lands in. *)
  mutable filled : int;  (** Live entries, <= capacity. *)
  mutable epoch : int;
  mutable total : int;
}

let default_capacity = 512

let enabled = ref false

let global_capacity = ref default_capacity

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight_recorder.enable: capacity must be positive";
  enabled := true;
  global_capacity := capacity

let disable () = enabled := false

let is_enabled () = !enabled

let create_exn ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight_recorder.create_exn: capacity must be positive";
  { ring = Array.make capacity None; next = 0; filled = 0; epoch = 0; total = 0 }

let create () = if !enabled then Some (create_exn ~capacity:!global_capacity ()) else None

let record t access =
  let cap = Array.length t.ring in
  t.ring.(t.next) <- Some { access; epoch = t.epoch };
  t.next <- (t.next + 1) mod cap;
  if t.filled < cap then t.filled <- t.filled + 1;
  t.total <- t.total + 1

let note_epoch t = t.epoch <- t.epoch + 1

let current_epoch t = t.epoch

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.filled <- 0

let length t = t.filled

let capacity t = Array.length t.ring

let recorded_total t = t.total

(* Oldest-first iteration: the oldest live entry sits at [next] when the
   ring has wrapped, at 0 otherwise. *)
let fold t ~init ~f =
  let cap = Array.length t.ring in
  let start = if t.filled = cap then t.next else 0 in
  let acc = ref init in
  for i = 0 to t.filled - 1 do
    match t.ring.((start + i) mod cap) with
    | Some origin -> acc := f !acc origin
    | None -> ()
  done;
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc o -> o :: acc))

let history t query =
  List.rev
    (fold t ~init:[] ~f:(fun acc o ->
         if Interval.overlaps o.access.Access.interval query then o :: acc else acc))
