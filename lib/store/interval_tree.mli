open Rma_access

(** Generic balanced interval tree.

    The functor builds an AVL multiset over any element carrying a byte
    interval: ordered by interval lower bound (then upper bound, then
    the element's tiebreak), augmented with the subtree's maximum upper
    bound so [stab] answers overlap queries exactly in
    O(log n + answers). {!Avl} instantiates it for plain accesses, the
    strided store for access regions. *)

module type ELEMENT = sig
  type t

  val interval : t -> Interval.t
  (** The byte range the element covers (its hull, for compound
      elements). *)

  val tiebreak : t -> int
  (** Distinguishes elements with equal intervals (e.g. a sequence
      number); the multiset key is (lo, hi, tiebreak). *)

  val equal : t -> t -> bool
  (** Full structural equality, used by [remove]. *)

  val pp : Format.formatter -> t -> unit
end

module Make (Elt : ELEMENT) : sig
  type t

  val create : unit -> t
  val size : t -> int
  val height : t -> int
  val is_empty : t -> bool

  val insert : t -> Elt.t -> unit
  (** Multiset insert; never rejects. *)

  val remove : t -> Elt.t -> bool
  (** Removes one structurally-equal occurrence; [false] when absent. *)

  val stab : t -> Interval.t -> Elt.t list
  (** Every stored element whose interval overlaps the query, in
      increasing lower-bound order; exact thanks to the max-upper-bound
      augmentation. *)

  type clearance =
    | Blocked
        (** Some stored byte lies within one byte of the query (or the
            single-descent answer could not be certified). *)
    | Clear of { pred_hi : int; succ_lo : int }
        (** No stored byte within one byte of the query: every stored
            byte left of it is [<= pred_hi] and every stored byte right
            of it is [>= succ_lo] ([min_int]/[max_int] when that side is
            empty). *)

  val clearance : t -> Interval.t -> clearance
  (** Single-descent gap query around the one-byte-widened query window;
      conservative ([Blocked]) whenever certifying the gap would need a
      second path. Used by the disjoint store's insert fast path. *)

  val ops : t -> int
  (** Cumulative count of tree operations (descents): [insert],
      [remove], [stab], [search_path] and [clearance] each count one.
      The currency of the fast-path benchmarks. *)

  val search_path : t -> Elt.t -> Elt.t list
  (** The elements on the plain BST descent from the root towards the
      query's insertion slot, in descent order — the only part of the
      tree legacy RMA-Analyzer inspects (the Figure 5a approximation). *)

  val to_list : t -> Elt.t list
  val iter : t -> (Elt.t -> unit) -> unit
  val fold : t -> init:'a -> f:('a -> Elt.t -> 'a) -> 'a
  val clear : t -> unit

  val invariants_ok : t -> bool
  (** BST order, AVL balance and max-hi cache; for tests. *)

  val pp : Format.formatter -> t -> unit
end
