open Rma_access
module Obs = Rma_obs.Obs

type t = {
  tree : Avl.t;
  order_aware : bool;
  merge : bool;
  recorder : Flight_recorder.t option;
      (* Present iff Flight_recorder.is_enabled () held at creation; the
         disabled cost is this option match per insert. *)
  mutable peak_nodes : int;
  mutable inserts : int;
  mutable fragments_created : int;
  mutable merges_performed : int;
  mutable race_checks : int;
}

let create ?(order_aware = true) ?(merge = true) () =
  {
    tree = Avl.create ();
    order_aware;
    merge;
    recorder = Flight_recorder.create ();
    peak_nodes = 0;
    inserts = 0;
    fragments_created = 0;
    merges_performed = 0;
    race_checks = 0;
  }

let recorder t = t.recorder

let note_epoch t = match t.recorder with Some r -> Flight_recorder.note_epoch r | None -> ()

let record_origin t access =
  match t.recorder with Some r -> Flight_recorder.record r access | None -> ()

(* get_intersecting_accesses (Algorithm 1 line 5), widened by one byte on
   each side so merging can also see accesses adjacent to the new one
   (the Figure 8b loop produces adjacent, never overlapping, accesses).
   One interval-tree stab serves both the data-race check (line 2) and
   the fragmentation input. *)
let neighbourhood t access =
  let iv = access.Access.interval in
  let query = Interval.make ~lo:(Interval.lo iv - 1) ~hi:(Interval.hi iv + 1) in
  Avl.stab t.tree query

(* data_race_detection (line 2): the new access against every overlapping
   recorded access. The interval-tree stab is exact, which is precisely
   what removes the legacy false negatives. *)
let detect_race t access candidates =
  List.find_map
    (fun existing ->
      if Interval.overlaps existing.Access.interval access.Access.interval then begin
        t.race_checks <- t.race_checks + 1;
        match Race_rule.check ~order_aware:t.order_aware ~existing ~incoming:access with
        | Race_rule.No_race -> None
        | Race_rule.Race _ -> Some existing
      end
      else None)
    candidates

let check_only t access =
  match detect_race t access (Avl.stab t.tree access.Access.interval) with
  | Some existing -> Store_intf.Race_detected { existing; incoming = access }
  | None -> Store_intf.Inserted

(* fragment_accesses (line 6, §4.1) and merge_accesses (line 7, §4.2)
   live in the shared Fragmenter module. *)
let fragment t ~candidates ~new_acc =
  let pieces, created = Fragmenter.fragment ~candidates ~new_acc in
  t.fragments_created <- t.fragments_created + created;
  pieces

let merge_pieces t pieces =
  let merged, merges = Fragmenter.merge pieces in
  t.merges_performed <- t.merges_performed + merges;
  merged

let obs_insert_seconds =
  Obs.histogram ~help:"Wall time of one Disjoint_store.insert (Algorithm 1)"
    "store.disjoint.insert_seconds"

let obs_fragments =
  Obs.histogram ~unit_:"count" ~help:"Fragments created per insert (section 4.1)"
    "store.disjoint.fragments_per_insert"

let obs_merges =
  Obs.histogram ~unit_:"count" ~help:"Node pairs merged per insert (section 4.2)"
    "store.disjoint.merges_per_insert"

let insert_uninstrumented t access =
  t.inserts <- t.inserts + 1;
  let candidates = neighbourhood t access in
  match candidates with
  | [] ->
      (* Fast path: nothing overlaps or touches — plain insertion. *)
      record_origin t access;
      Avl.insert t.tree access;
      if Avl.size t.tree > t.peak_nodes then t.peak_nodes <- Avl.size t.tree;
      Store_intf.Inserted
  | _ -> (
      match detect_race t access candidates with
      | Some existing -> Store_intf.Race_detected { existing; incoming = access }
      | None ->
          record_origin t access;
          let fragments = fragment t ~candidates ~new_acc:access in
          let final = if t.merge then merge_pieces t fragments else fragments in
          (* finish_insertion (line 8): replace the old accesses with the
             new disjoint pieces. *)
          List.iter (fun old -> ignore (Avl.remove t.tree old)) candidates;
          List.iter (fun piece -> Avl.insert t.tree piece) final;
          if Avl.size t.tree > t.peak_nodes then t.peak_nodes <- Avl.size t.tree;
          Store_intf.Inserted)

let insert t access =
  if not (Obs.is_enabled ()) then insert_uninstrumented t access
  else begin
    let t0 = Rma_util.Timer.now () in
    let f0 = t.fragments_created and m0 = t.merges_performed in
    let outcome = insert_uninstrumented t access in
    Obs.observe obs_insert_seconds (Rma_util.Timer.now () -. t0);
    Obs.observe_int obs_fragments (t.fragments_created - f0);
    Obs.observe_int obs_merges (t.merges_performed - m0);
    outcome
  end

let size t = Avl.size t.tree

let stats t =
  {
    Store_intf.nodes = Avl.size t.tree;
    peak_nodes = t.peak_nodes;
    inserts = t.inserts;
    fragments_created = t.fragments_created;
    merges_performed = t.merges_performed;
    race_checks = t.race_checks;
  }

let to_list t = Avl.to_list t.tree

let clear t =
  Avl.clear t.tree;
  match t.recorder with Some r -> Flight_recorder.clear r | None -> ()

let pp fmt t = Avl.pp fmt t.tree
