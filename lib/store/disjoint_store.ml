open Rma_access
module Obs = Rma_obs.Obs

(* A pending entry of the insert fast path: one coalesced run of
   adjacent mergeable accesses held OUT of the AVL tree, exactly the
   node the unbatched store would hold for the same stream. The entry
   owns an open "clear zone" (p_zone_lo, p_zone_hi) certified to contain
   no tree byte, so extending the run inside the zone needs no tree
   descent at all. *)
type pending = {
  mutable p_acc : Access.t;
  mutable p_zone_lo : int;  (* exclusive lower edge of the clear zone *)
  mutable p_zone_hi : int;  (* exclusive upper edge of the clear zone *)
}

type t = {
  tree : Avl.t;
  order_aware : bool;
  merge : bool;
  fast_path : bool;
      (* Finger cache enabled; forced off when [merge = false] because
         the fast path IS a merge. *)
  recorder : Flight_recorder.t option;
      (* Present iff Flight_recorder.is_enabled () held at creation; the
         disabled cost is this option match per insert. *)
  gov : Governor.t option;
      (* Present iff the store was created under a bounded budget;
         ungoverned inserts pay one option match. *)
  mutable batching : bool;
  mutable pending : pending list;  (* most recently touched first *)
  mutable peak_nodes : int;
  mutable inserts : int;
  mutable fragments_created : int;
  mutable merges_performed : int;
  mutable race_checks : int;
  mutable finger_hits : int;
  mutable batch_coalesced : int;
  mutable batch_flushes : int;
}

(* How far beyond the access a clear zone may be claimed. A cap keeps a
   zone claim from spanning a huge empty tree (which would force a flush
   on every far-away insert); large enough that a Code 2 style run grows
   for thousands of bytes per claim. *)
let zone_headroom = 4096

let batch_default =
  ref
    (match Sys.getenv_opt "RMA_BATCH_INSERTS" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let set_batch_default v = batch_default := v

let batch_default_enabled () = !batch_default

(* Rough resident cost of one tree node: the AVL node (5 words), the
   access record (5 words), its interval (3 words) and a one-word share
   of the debug-info strings — 14 words = 112 bytes on 64-bit. Only
   used to translate a [max_bytes] budget into a node cap. *)
let approx_node_bytes = 112

let create ?(order_aware = true) ?(merge = true) ?(fast_path = true) ?batch ?budget () =
  let fast_path = fast_path && merge in
  let batching = (match batch with Some b -> b | None -> !batch_default) && fast_path in
  {
    tree = Avl.create ();
    order_aware;
    merge;
    fast_path;
    recorder = Flight_recorder.create ();
    gov = Governor.create ?budget ~bytes_per_node:approx_node_bytes ();
    batching;
    pending = [];
    peak_nodes = 0;
    inserts = 0;
    fragments_created = 0;
    merges_performed = 0;
    race_checks = 0;
    finger_hits = 0;
    batch_coalesced = 0;
    batch_flushes = 0;
  }

let recorder t = t.recorder

let record_origin t access =
  match t.recorder with Some r -> Flight_recorder.record r access | None -> ()

(* Effective store contents = tree nodes + pending runs. *)
let size t = Avl.size t.tree + List.length t.pending

let bump_peak t =
  let s = size t in
  if s > t.peak_nodes then t.peak_nodes <- s

let capacity t = if t.batching then 8 else 1

let obs_finger_hits =
  Obs.counter ~help:"Inserts absorbed in O(1) by the finger cache (most recent pending run)"
    "store.disjoint.finger_hits"

let obs_batch_coalesced =
  Obs.counter ~help:"Inserts coalesced into the pending buffer without touching the tree"
    "store.disjoint.batch_coalesced"

let obs_batch_flushes =
  Obs.counter ~help:"Pending-buffer flushes into the AVL tree" "store.disjoint.batch_flushes"

(* {2 Pending-buffer plumbing} *)

(* The bytes of [iv] are about to become tree bytes: withdraw them from
   every surviving zone claim. Pending entries never overlap each other,
   so the flushed bytes sit entirely on one side of each survivor. *)
let exclude_from_zones t iv =
  List.iter
    (fun q ->
      if Interval.hi iv < Interval.lo q.p_acc.Access.interval then
        q.p_zone_lo <- max q.p_zone_lo (Interval.hi iv)
      else if Interval.lo iv > Interval.hi q.p_acc.Access.interval then
        q.p_zone_hi <- min q.p_zone_hi (Interval.lo iv))
    t.pending

(* Pending runs are pairwise more than one byte apart and equally far
   from every tree byte, so a plain multiset insert is exactly what the
   unbatched store would hold — no fragmentation or merging can apply. *)
let flush_entries t entries =
  if entries <> [] then begin
    t.batch_flushes <- t.batch_flushes + 1;
    Obs.incr obs_batch_flushes;
    List.iter
      (fun p ->
        Avl.insert t.tree p.p_acc;
        exclude_from_zones t p.p_acc.Access.interval)
      entries
  end

let flush_pending t =
  let entries = t.pending in
  t.pending <- [];
  flush_entries t entries

(* Flush exactly the entries whose clear zone the widened window [wlo,
   whi] reaches into. Survivors' zones (hence bytes) lie entirely on one
   side of the window, so the subsequent stab, race check and
   fragmentation cannot involve them. *)
let flush_interacting t ~wlo ~whi =
  let interacts p = whi > p.p_zone_lo && wlo < p.p_zone_hi in
  let hit, keep = List.partition interacts t.pending in
  t.pending <- keep;
  flush_entries t hit

(* {2 Slow path — Algorithm 1 verbatim} *)

(* get_intersecting_accesses (Algorithm 1 line 5), widened by one byte on
   each side so merging can also see accesses adjacent to the new one
   (the Figure 8b loop produces adjacent, never overlapping, accesses).
   One interval-tree stab serves both the data-race check (line 2) and
   the fragmentation input. *)
let neighbourhood t access =
  let iv = access.Access.interval in
  let query = Interval.make ~lo:(Interval.lo iv - 1) ~hi:(Interval.hi iv + 1) in
  Avl.stab t.tree query

(* data_race_detection (line 2): the new access against every overlapping
   recorded access. The interval-tree stab is exact, which is precisely
   what removes the legacy false negatives. *)
let detect_race t access candidates =
  List.find_map
    (fun existing ->
      if Interval.overlaps existing.Access.interval access.Access.interval then begin
        t.race_checks <- t.race_checks + 1;
        match Race_rule.check ~order_aware:t.order_aware ~existing ~incoming:access with
        | Race_rule.No_race -> None
        | Race_rule.Race _ | Race_rule.Predicted _ -> Some existing
      end
      else None)
    candidates

let check_only t access =
  flush_pending t;
  match detect_race t access (Avl.stab t.tree access.Access.interval) with
  | Some existing -> Store_intf.Race_detected { existing; incoming = access }
  | None -> Store_intf.Inserted

let note_epoch t =
  (* The pending buffer never crosses an epoch boundary: epoch-close
     node sampling and per-epoch recorder stamps must see the same tree
     the unbatched store would. *)
  flush_pending t;
  Governor.note_epoch t.gov;
  match t.recorder with Some r -> Flight_recorder.note_epoch r | None -> ()

(* {2 Budget governance — DESIGN.md §11} *)

let spill t g =
  let victims =
    Governor.spill_victims g ~size:(size t)
      ~seq_of:(fun a -> a.Access.seq)
      (Avl.to_list t.tree)
  in
  List.iter (fun a -> ignore (Avl.remove t.tree a)) victims;
  Governor.record_drops g (List.length victims)

let coarsen t g =
  let merged, n = Governor.coarsen_accesses (Avl.to_list t.tree) in
  if n > 0 then begin
    Avl.clear t.tree;
    List.iter (fun a -> Avl.insert t.tree a) merged;
    Governor.record_drops g n
  end

let enforce_budget t =
  match t.gov with
  | None -> ()
  | Some g ->
      if Governor.over g ~size:(size t) then begin
        (* Victim selection needs every node in the tree. *)
        flush_pending t;
        match (Governor.budget g).Rma_fault.Budget.policy with
        | Rma_fault.Budget.Fail_fast -> Governor.exhausted ~store:"disjoint" ~size:(size t) g
        | Rma_fault.Budget.Spill_oldest_epoch -> spill t g
        | Rma_fault.Budget.Coarsen ->
            coarsen t g;
            if Governor.over g ~size:(size t) then spill t g
      end

let batch_begin t = if t.fast_path then t.batching <- true

let batch_flush t = flush_pending t

(* fragment_accesses (line 6, §4.1) and merge_accesses (line 7, §4.2)
   live in the shared Fragmenter module. *)
let fragment t ~candidates ~new_acc =
  let pieces, created = Fragmenter.fragment ~candidates ~new_acc in
  t.fragments_created <- t.fragments_created + created;
  pieces

let merge_pieces t pieces =
  let merged, merges = Fragmenter.merge pieces in
  t.merges_performed <- t.merges_performed + merges;
  merged

let slow_insert t access =
  let candidates = neighbourhood t access in
  match candidates with
  | [] ->
      (* Nothing overlaps or touches — plain insertion. *)
      record_origin t access;
      Avl.insert t.tree access;
      bump_peak t;
      Store_intf.Inserted
  | _ -> (
      match detect_race t access candidates with
      | Some existing -> Store_intf.Race_detected { existing; incoming = access }
      | None ->
          record_origin t access;
          let fragments = fragment t ~candidates ~new_acc:access in
          let final = if t.merge then merge_pieces t fragments else fragments in
          (* finish_insertion (line 8): replace the old accesses with the
             new disjoint pieces. *)
          List.iter (fun old -> ignore (Avl.remove t.tree old)) candidates;
          List.iter (fun piece -> Avl.insert t.tree piece) final;
          bump_peak t;
          Store_intf.Inserted)

(* {2 Fast path} *)

(* O(1) coalesce: extend a pending run with a strictly adjacent
   mergeable access. Requires the widened window to sit inside the run's
   clear zone (no tree byte can be involved) and away from every other
   pending run (no cross-run fragmentation or merging can apply), which
   makes the result byte-for-byte what the slow path would produce:
   pass_through + emit + merge, i.e. one fragment and one merge. *)
let try_coalesce t access =
  match t.pending with
  | [] -> None
  | pending ->
      let iv = access.Access.interval in
      let wlo = Interval.lo iv - 1 and whi = Interval.hi iv + 1 in
      let window = Interval.make ~lo:wlo ~hi:whi in
      let extends p =
        Access.mergeable p.p_acc access
        && Interval.adjacent p.p_acc.Access.interval iv
        && wlo > p.p_zone_lo && whi < p.p_zone_hi
      in
      let rec scan before = function
        | [] -> None
        | p :: rest ->
            if extends p then
              if
                List.exists
                  (fun q -> q != p && Interval.overlaps q.p_acc.Access.interval window)
                  pending
              then None (* another pending run is within reach: slow path *)
              else Some (p, List.rev_append before rest, before = [])
            else scan (p :: before) rest
      in
      scan [] pending

let apply_coalesce t access (p, others, was_head) =
  record_origin t access;
  p.p_acc <-
    Access.with_interval
      (Access.most_recent p.p_acc access)
      (Interval.hull p.p_acc.Access.interval access.Access.interval);
  t.pending <- p :: others;
  t.fragments_created <- t.fragments_created + 1;
  t.merges_performed <- t.merges_performed + 1;
  t.batch_coalesced <- t.batch_coalesced + 1;
  Obs.incr obs_batch_coalesced;
  if was_head then begin
    t.finger_hits <- t.finger_hits + 1;
    Obs.incr obs_finger_hits
  end;
  Store_intf.Inserted

(* Start a new pending run with one clearance descent instead of the
   slow path's stab (and, on later extensions, remove + insert).
   Precondition: no pending byte intersects the widened window — callers
   run [flush_interacting] first, which guarantees it because every
   pending byte lives strictly inside its entry's zone. *)
let try_seed t access =
  match Avl.clearance t.tree access.Access.interval with
  | Avl.Blocked -> false
  | Avl.Clear { pred_hi; succ_lo } ->
      let iv = access.Access.interval in
      let lo = Interval.lo iv and hi = Interval.hi iv in
      (* Claim at most [zone_headroom] bytes each way, and never claim
         bytes owned by another pending run. *)
      let zl, zh =
        List.fold_left
          (fun (zl, zh) q ->
            let qiv = q.p_acc.Access.interval in
            if Interval.hi qiv < lo then (max zl (Interval.hi qiv), zh)
            else (zl, min zh (Interval.lo qiv)))
          (max pred_hi (lo - 1 - zone_headroom), min succ_lo (hi + 1 + zone_headroom))
          t.pending
      in
      if List.length t.pending >= capacity t then flush_pending t;
      record_origin t access;
      t.pending <- { p_acc = access; p_zone_lo = zl; p_zone_hi = zh } :: t.pending;
      bump_peak t;
      true

let insert_uninstrumented t access =
  t.inserts <- t.inserts + 1;
  Rma_obs.Telemetry.note_event ();
  let outcome =
    if not t.fast_path then slow_insert t access
    else
      match try_coalesce t access with
      | Some hit -> apply_coalesce t access hit
      | None ->
          let iv = access.Access.interval in
          flush_interacting t ~wlo:(Interval.lo iv - 1) ~whi:(Interval.hi iv + 1);
          if try_seed t access then Store_intf.Inserted else slow_insert t access
  in
  (match outcome with
  | Store_intf.Inserted ->
      Governor.observe_seq t.gov access.Access.seq;
      enforce_budget t
  | Store_intf.Race_detected _ -> ());
  outcome

let obs_insert_seconds =
  Obs.histogram ~help:"Wall time of one Disjoint_store.insert (Algorithm 1)"
    "store.disjoint.insert_seconds"

let obs_fragments =
  Obs.histogram ~unit_:"count" ~help:"Fragments created per insert (section 4.1)"
    "store.disjoint.fragments_per_insert"

let obs_merges =
  Obs.histogram ~unit_:"count" ~help:"Node pairs merged per insert (section 4.2)"
    "store.disjoint.merges_per_insert"

let insert t access =
  if not (Obs.is_enabled ()) then insert_uninstrumented t access
  else begin
    let t0 = Rma_util.Timer.now () in
    let f0 = t.fragments_created and m0 = t.merges_performed in
    let outcome = insert_uninstrumented t access in
    Obs.observe obs_insert_seconds (Rma_util.Timer.now () -. t0);
    Obs.observe_int obs_fragments (t.fragments_created - f0);
    Obs.observe_int obs_merges (t.merges_performed - m0);
    outcome
  end

let stats t =
  {
    Store_intf.nodes = size t;
    peak_nodes = t.peak_nodes;
    inserts = t.inserts;
    fragments_created = t.fragments_created;
    merges_performed = t.merges_performed;
    race_checks = t.race_checks;
    tree_ops = Avl.ops t.tree;
    degraded_drops = Governor.drops t.gov;
  }

type fast_path_stats = { finger_hits : int; batch_coalesced : int; batch_flushes : int }

let fast_path_stats (t : t) =
  {
    finger_hits = t.finger_hits;
    batch_coalesced = t.batch_coalesced;
    batch_flushes = t.batch_flushes;
  }

let batching t = t.batching

let to_list t =
  let by_lo a b = Interval.compare_lo a.Access.interval b.Access.interval in
  let pend = List.sort by_lo (List.map (fun p -> p.p_acc) t.pending) in
  List.merge by_lo (Avl.to_list t.tree) pend

let clear t =
  (* End of epoch: pending runs are discarded with the tree, never
     flushed into it — statistics stay cumulative either way. *)
  t.pending <- [];
  Avl.clear t.tree;
  match t.recorder with Some r -> Flight_recorder.clear r | None -> ()

let self_check t =
  let open_zone_clear p =
    p.p_zone_lo >= p.p_zone_hi - 1
    || Avl.stab t.tree (Interval.make ~lo:(p.p_zone_lo + 1) ~hi:(p.p_zone_hi - 1)) = []
  in
  let inside_zone p =
    let iv = p.p_acc.Access.interval in
    p.p_zone_lo < Interval.lo iv && Interval.hi iv < p.p_zone_hi
  in
  let rec pairwise_apart = function
    | [] -> true
    | p :: rest ->
        List.for_all
          (fun q ->
            let a = p.p_acc.Access.interval and b = q.p_acc.Access.interval in
            (not (Interval.overlaps a b)) && not (Interval.adjacent a b))
          rest
        && pairwise_apart rest
  in
  List.length t.pending <= capacity t
  && List.for_all inside_zone t.pending
  && List.for_all open_zone_clear t.pending
  && pairwise_apart t.pending
  && Avl.invariants_ok t.tree

let pp fmt t =
  Avl.pp fmt t.tree;
  List.iter (fun p -> Format.fprintf fmt "pending %a@." Access.pp p.p_acc) t.pending
