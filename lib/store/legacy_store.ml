open Rma_access
module Obs = Rma_obs.Obs

type t = {
  tree : Avl.t;
  gov : Governor.t option;
  mutable peak_nodes : int;
  mutable inserts : int;
  mutable race_checks : int;
}

(* AVL node + access record + interval, as in Disjoint_store; the
   legacy store never fragments, so the estimate is identical. *)
let approx_node_bytes = 112

let create ?budget () =
  {
    tree = Avl.create ();
    gov = Governor.create ?budget ~bytes_per_node:approx_node_bytes ();
    peak_nodes = 0;
    inserts = 0;
    race_checks = 0;
  }

let spill t g =
  let victims =
    Governor.spill_victims g ~size:(Avl.size t.tree)
      ~seq_of:(fun a -> a.Access.seq)
      (Avl.to_list t.tree)
  in
  List.iter (fun a -> ignore (Avl.remove t.tree a)) victims;
  Governor.record_drops g (List.length victims)

let coarsen t g =
  let merged, n = Governor.coarsen_accesses (Avl.to_list t.tree) in
  if n > 0 then begin
    Avl.clear t.tree;
    List.iter (fun a -> Avl.insert t.tree a) merged;
    Governor.record_drops g n
  end

let enforce_budget t =
  match t.gov with
  | None -> ()
  | Some g ->
      if Governor.over g ~size:(Avl.size t.tree) then begin
        match (Governor.budget g).Rma_fault.Budget.policy with
        | Rma_fault.Budget.Fail_fast ->
            Governor.exhausted ~store:"legacy" ~size:(Avl.size t.tree) g
        | Rma_fault.Budget.Spill_oldest_epoch -> spill t g
        | Rma_fault.Budget.Coarsen ->
            coarsen t g;
            if Governor.over g ~size:(Avl.size t.tree) then spill t g
      end

let obs_insert_seconds =
  Obs.histogram ~help:"Wall time of one Legacy_store.insert" "store.legacy.insert_seconds"

let obs_race_checks =
  Obs.histogram ~unit_:"count" ~help:"Pairwise conflict checks per insert (search-path length)"
    "store.legacy.race_checks_per_insert"

let insert_uninstrumented t access =
  t.inserts <- t.inserts + 1;
  Rma_obs.Telemetry.note_event ();
  (* First traversal: conflict check restricted to the BST search path —
     the lower-bound-only approximation the paper identifies as the source
     of legacy false negatives. *)
  let path = Avl.search_path t.tree access in
  let conflict =
    List.find_map
      (fun existing ->
        t.race_checks <- t.race_checks + 1;
        match Race_rule.check ~order_aware:false ~existing ~incoming:access with
        | Race_rule.No_race -> None
        | Race_rule.Race _ | Race_rule.Predicted _ -> Some existing)
      path
  in
  match conflict with
  | Some existing -> Store_intf.Race_detected { existing; incoming = access }
  | None ->
      (* Second traversal: plain multiset insertion; nothing is ever
         fragmented or merged. *)
      Avl.insert t.tree access;
      if Avl.size t.tree > t.peak_nodes then t.peak_nodes <- Avl.size t.tree;
      Governor.observe_seq t.gov access.Access.seq;
      enforce_budget t;
      Store_intf.Inserted

let insert t access =
  if not (Obs.is_enabled ()) then insert_uninstrumented t access
  else begin
    let t0 = Rma_util.Timer.now () in
    let checks0 = t.race_checks in
    let outcome = insert_uninstrumented t access in
    Obs.observe obs_insert_seconds (Rma_util.Timer.now () -. t0);
    Obs.observe_int obs_race_checks (t.race_checks - checks0);
    outcome
  end

let size t = Avl.size t.tree

let stats t =
  {
    Store_intf.nodes = Avl.size t.tree;
    peak_nodes = t.peak_nodes;
    inserts = t.inserts;
    fragments_created = 0;
    merges_performed = 0;
    race_checks = t.race_checks;
    tree_ops = Avl.ops t.tree;
    degraded_drops = Governor.drops t.gov;
  }

let to_list t = Avl.to_list t.tree

let note_epoch t = Governor.note_epoch t.gov

let clear t = Avl.clear t.tree

let pp fmt t = Avl.pp fmt t.tree
