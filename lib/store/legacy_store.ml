open Rma_access
type t = {
  tree : Avl.t;
  mutable peak_nodes : int;
  mutable inserts : int;
  mutable race_checks : int;
}

let create () = { tree = Avl.create (); peak_nodes = 0; inserts = 0; race_checks = 0 }

let insert t access =
  t.inserts <- t.inserts + 1;
  (* First traversal: conflict check restricted to the BST search path —
     the lower-bound-only approximation the paper identifies as the source
     of legacy false negatives. *)
  let path = Avl.search_path t.tree access in
  let conflict =
    List.find_map
      (fun existing ->
        t.race_checks <- t.race_checks + 1;
        match Race_rule.check ~order_aware:false ~existing ~incoming:access with
        | Race_rule.No_race -> None
        | Race_rule.Race _ -> Some existing)
      path
  in
  match conflict with
  | Some existing -> Store_intf.Race_detected { existing; incoming = access }
  | None ->
      (* Second traversal: plain multiset insertion; nothing is ever
         fragmented or merged. *)
      Avl.insert t.tree access;
      if Avl.size t.tree > t.peak_nodes then t.peak_nodes <- Avl.size t.tree;
      Store_intf.Inserted

let size t = Avl.size t.tree

let stats t =
  {
    Store_intf.nodes = Avl.size t.tree;
    peak_nodes = t.peak_nodes;
    inserts = t.inserts;
    fragments_created = 0;
    merges_performed = 0;
    race_checks = t.race_checks;
  }

let to_list t = Avl.to_list t.tree

let clear t = Avl.clear t.tree

let pp fmt t = Avl.pp fmt t.tree
