open Rma_access

(** Bounded interval-history ring buffer behind a disjoint store — the
    race-provenance "flight recorder".

    Fragmentation and merging deliberately forget: the Table 1 dominance
    rule keeps only the winning access's debug info inside an
    intersection fragment, and merging collapses runs of mergeable
    fragments into one node. A race against such a node can therefore
    only name the {e surviving} source location, even though several
    distinct source accesses contributed bytes to it. The recorder keeps
    the pre-fragmentation originals — each successful insert is appended
    as recorded by the instrumentation, stamped with the store's current
    epoch — so a report can reconstruct every contributing source access
    for any byte range, after arbitrarily many fragment/merge rounds.

    Recording is opt-in and process-global, same pattern as [Rma_obs.Obs]:
    nothing allocates and nothing records until {!enable} runs, and a
    store created while recording is disabled carries no recorder at all
    (the per-insert cost of the feature being off is one [option]
    match). The buffer is a fixed-capacity ring: when full, the oldest
    origin is evicted, keeping the newest history — bounded memory on
    unbounded runs, at the cost of provenance for very old accesses.

    The ring is cleared whenever its store is cleared (window clear at
    end of epoch): races can only fire against live nodes, so history
    for discarded trees is dead weight. *)

type origin = {
  access : Access.t;  (** As presented to the store, before fragmentation. *)
  epoch : int;  (** Store epoch when the access was recorded. *)
}

type t

val enable : ?capacity:int -> unit -> unit
(** Turn recording on for stores created {e afterwards}. [capacity] is
    the ring size per store (default {!default_capacity}). *)

val disable : unit -> unit

val is_enabled : unit -> bool

val default_capacity : int
(** 512 origins per (rank, window) store. *)

val create : unit -> t option
(** A fresh ring when recording is enabled, [None] otherwise — stores
    keep the result and guard each call site on the option. *)

val create_exn : ?capacity:int -> unit -> t
(** A ring regardless of the global switch (tests). *)

val record : t -> Access.t -> unit
(** Append one origin at the current epoch, evicting the oldest entry
    when the ring is full. *)

val note_epoch : t -> unit
(** Bump the epoch stamp for subsequent {!record}s. Called by the
    analyzer on [Epoch_opened]. *)

val current_epoch : t -> int

val clear : t -> unit
(** Drop all history (the backing store was cleared). The epoch counter
    is kept: epoch ids stay unique across the window's lifetime. *)

val length : t -> int

val capacity : t -> int

val recorded_total : t -> int
(** Origins ever recorded, including evicted ones. *)

val history : t -> Interval.t -> origin list
(** Every retained origin whose interval overlaps the query, oldest
    first — the contributing source accesses for a node covering the
    queried byte range. *)

val to_list : t -> origin list
(** Oldest first. *)
