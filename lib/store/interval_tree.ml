open Rma_access

module type ELEMENT = sig
  type t

  val interval : t -> Interval.t
  val tiebreak : t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (Elt : ELEMENT) = struct
  (* Nodes are immutable; the handle holds the current root. Each node
     caches its height and the maximum interval upper bound in its
     subtree (the classic interval-tree augmentation). *)
  type node = {
    elt : Elt.t;
    left : node option;
    right : node option;
    node_height : int;
    max_hi : int;
  }

  type t = { mutable root : node option; mutable count : int; mutable ops : int }

  let create () = { root = None; count = 0; ops = 0 }

  let ops t = t.ops

  let touch t = t.ops <- t.ops + 1

  let size t = t.count

  let is_empty t = t.count = 0

  let height_of = function None -> 0 | Some n -> n.node_height

  let max_hi_of = function None -> min_int | Some n -> n.max_hi

  let compare_key a b =
    let c = Interval.compare_lo (Elt.interval a) (Elt.interval b) in
    if c <> 0 then c else Int.compare (Elt.tiebreak a) (Elt.tiebreak b)

  let mk elt left right =
    {
      elt;
      left;
      right;
      node_height = 1 + max (height_of left) (height_of right);
      max_hi = max (Interval.hi (Elt.interval elt)) (max (max_hi_of left) (max_hi_of right));
    }

  let balance_factor n = height_of n.left - height_of n.right

  let rotate_right n =
    match n.left with
    | None -> n
    | Some l -> mk l.elt l.left (Some (mk n.elt l.right n.right))

  let rotate_left n =
    match n.right with
    | None -> n
    | Some r -> mk r.elt (Some (mk n.elt n.left r.left)) r.right

  let rebalance n =
    let bf = balance_factor n in
    if bf > 1 then begin
      match n.left with
      | Some l when height_of l.right > height_of l.left ->
          rotate_right (mk n.elt (Some (rotate_left l)) n.right)
      | _ -> rotate_right n
    end
    else if bf < -1 then begin
      match n.right with
      | Some r when height_of r.left > height_of r.right ->
          rotate_left (mk n.elt n.left (Some (rotate_right r)))
      | _ -> rotate_left n
    end
    else n

  let rec insert_node node elt =
    match node with
    | None -> mk elt None None
    | Some n ->
        let next =
          if compare_key elt n.elt < 0 then mk n.elt (Some (insert_node n.left elt)) n.right
          else mk n.elt n.left (Some (insert_node n.right elt))
        in
        rebalance next

  let insert t elt =
    touch t;
    t.root <- Some (insert_node t.root elt);
    t.count <- t.count + 1

  let rec min_node n = match n.left with None -> n | Some l -> min_node l

  let rec remove_node node elt ~removed =
    match node with
    | None -> None
    | Some n ->
        let c = compare_key elt n.elt in
        if c < 0 then Some (rebalance (mk n.elt (remove_node n.left elt ~removed) n.right))
        else if c > 0 then Some (rebalance (mk n.elt n.left (remove_node n.right elt ~removed)))
        else if not (Elt.equal elt n.elt) then
          (* Same key, different payload: with unique tiebreaks this
             should not happen; keep searching to the right defensively. *)
          Some (rebalance (mk n.elt n.left (remove_node n.right elt ~removed)))
        else begin
          removed := true;
          match (n.left, n.right) with
          | None, None -> None
          | Some l, None -> Some l
          | None, Some r -> Some r
          | Some _, Some r ->
              let succ = min_node r in
              let sub_removed = ref false in
              let right' = remove_node n.right succ.elt ~removed:sub_removed in
              Some (rebalance (mk succ.elt n.left right'))
        end

  let remove t elt =
    touch t;
    let removed = ref false in
    t.root <- remove_node t.root elt ~removed;
    if !removed then t.count <- t.count - 1;
    !removed

  let stab t query =
    touch t;
    let rec go node acc =
      match node with
      | None -> acc
      | Some n ->
          if n.max_hi < Interval.lo query then acc
          else begin
            (* The right subtree is irrelevant once node lower bounds
               exceed the query's upper bound. *)
            let acc =
              if Interval.lo (Elt.interval n.elt) <= Interval.hi query then go n.right acc
              else acc
            in
            let acc =
              if Interval.overlaps (Elt.interval n.elt) query then n.elt :: acc else acc
            in
            go n.left acc
          end
    in
    go t.root []

  type clearance = Blocked | Clear of { pred_hi : int; succ_lo : int }

  (* Single root-to-leaf descent answering "is the one-byte-widened
     window around [query] free of stored bytes, and how far does the
     surrounding gap extend?". Abandoning a subtree on the left requires
     its cached max_hi to stay left of the window, which also makes the
     answer conservatively [Blocked] on trees that are not disjoint. *)
  let clearance t query =
    touch t;
    let wlo = Interval.lo query - 1 and whi = Interval.hi query + 1 in
    let rec go node pred_hi succ_lo =
      match node with
      | None -> Clear { pred_hi; succ_lo }
      | Some n ->
          let iv = Elt.interval n.elt in
          if Interval.hi iv < wlo then begin
            (* The node and its whole left subtree stay left of the
               window — unless some left descendant reaches into it, in
               which case the single-path answer would be wrong. *)
            let abandoned_hi = max (Interval.hi iv) (max_hi_of n.left) in
            if abandoned_hi >= wlo then Blocked
            else go n.right (max pred_hi abandoned_hi) succ_lo
          end
          else if Interval.lo iv > whi then
            (* Node and right subtree are right of the window; the
               node's own lower bound is the closest of them. *)
            go n.left pred_hi (min succ_lo (Interval.lo iv))
          else Blocked
    in
    go t.root min_int max_int

  let search_path t query =
    touch t;
    let rec go node acc =
      match node with
      | None -> List.rev acc
      | Some n ->
          let acc = n.elt :: acc in
          if compare_key query n.elt < 0 then go n.left acc else go n.right acc
    in
    go t.root []

  let fold t ~init ~f =
    let rec go node acc =
      match node with
      | None -> acc
      | Some n ->
          let acc = go n.left acc in
          let acc = f acc n.elt in
          go n.right acc
    in
    go t.root init

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc a -> a :: acc))

  let iter t f = fold t ~init:() ~f:(fun () a -> f a)

  let clear t =
    t.root <- None;
    t.count <- 0

  let height t = height_of t.root

  let invariants_ok t =
    (* One pass computing (height, max_hi, min_key, max_key) per subtree
       and validating order, balance and the caches along the way. *)
    let exception Violated in
    let rec check = function
      | None -> (0, min_int, None, None)
      | Some n ->
          let hl, ml, min_l, max_l = check n.left in
          let hr, mr, min_r, max_r = check n.right in
          let order_ok =
            (match max_l with None -> true | Some a -> compare_key a n.elt <= 0)
            && match min_r with None -> true | Some a -> compare_key n.elt a <= 0
          in
          if not order_ok then raise Violated;
          if abs (hl - hr) > 1 then raise Violated;
          if n.node_height <> 1 + max hl hr then raise Violated;
          if n.max_hi <> max (Interval.hi (Elt.interval n.elt)) (max ml mr) then raise Violated;
          let subtree_min = match min_l with Some _ -> min_l | None -> Some n.elt in
          let subtree_max = match max_r with Some _ -> max_r | None -> Some n.elt in
          (n.node_height, n.max_hi, subtree_min, subtree_max)
    in
    match check t.root with
    | _ -> fold t ~init:0 ~f:(fun acc _ -> acc + 1) = t.count
    | exception Violated -> false

  let pp fmt t =
    let rec go node depth =
      match node with
      | None -> ()
      | Some n ->
          go n.right (depth + 1);
          Format.fprintf fmt "%s%a@." (String.make (2 * depth) ' ') Elt.pp n.elt;
          go n.left (depth + 1)
    in
    match t.root with
    | None -> Format.fprintf fmt "<empty tree>@."
    | root -> go root 0
end
