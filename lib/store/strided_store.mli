open Rma_access

(** The §6(3) future-work extension: merging for {e non-adjacent}
    accesses.

    The paper observes that MiniVite gains almost nothing from merging
    because its accesses land on attributes of adjacent objects —
    equally-sized, equally-typed accesses at a constant stride with
    gaps in between — and suggests polyhedral-style compression "when we
    can ensure that no accesses will be done between the accesses". This
    store implements the one-dimensional case: a node is a {e region}
    [(base, len, stride, count)] covering bytes
    [base + k*stride .. base + k*stride + len - 1] for [0 <= k < count].

    A new access extends a region when it has the region's element
    length, kind, debug info and issuer, and lands exactly one stride
    after the last element (the stride being fixed by the second
    element). Gap bytes are not covered: an access landing between two
    elements simply coexists as its own region, so detection stays
    exact. Overlaps that are not clean extensions fall back to exploding
    the region into its elements and running the standard
    fragmentation/merging of {!Disjoint_store} — conservative and
    race-preserving.

    Race checks test overlap against {e covered} bytes only, with the
    order-aware rule. *)

type region = {
  base : int;
  len : int;  (** Element length in bytes. *)
  stride : int;  (** Distance between element starts; [>= len]. *)
  count : int;  (** Number of elements; [>= 1]. *)
  kind : Access_kind.t;
  issuer : int;
  seq : int;
  debug : Debug_info.t;
  tinfo : Access.thread_info;
      (** Issuing-thread identity, shared by every element; extension and
          coarsening require it equal so compaction never erases the
          evidence the hybrid program-order test needs. *)
}

val region_hull : region -> Interval.t
val region_covers : region -> Interval.t -> bool
(** Does the region cover at least one byte of the interval? Gap bytes
    do not count. *)

type t

val create : ?order_aware:bool -> ?budget:Rma_fault.Budget.t -> unit -> t
(** Default [order_aware = true]. [?budget] (default
    {!Rma_fault.Budget.default}) bounds the region count as on
    {!Disjoint_store.create}; [Coarsen] merges perfect stride
    continuations ignoring debug info (coverage-exact), then spills
    oldest regions if still over. *)

include Store_intf.S with type t := t
(** [size] counts regions. [to_list] renders each region as one access
    over its hull interval (for printing and tests; the hull may include
    uncovered gap bytes). *)

val regions : t -> region list
(** The exact compressed representation, sorted by base. *)

val covered_bytes : t -> int
(** Total bytes actually covered (excluding gaps). *)
