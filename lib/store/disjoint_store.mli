(** The paper's contribution: a store whose intervals stay disjoint
    through fragmentation (§4.1) and compact through merging (§4.2) —
    Algorithm 1.

    On each insertion the store (1) checks the new access against every
    genuinely overlapping recorded access (exact interval-tree stabbing,
    so the legacy lower-bound false negatives disappear), (2) retrieves
    the overlapping-or-adjacent accesses, (3) fragments the overlapping
    ones into disjoint pieces whose kinds follow the Table 1 dominance
    rule, (4) merges adjacent pieces with equal kind and debug info, and
    (5) replaces the old nodes with the merged pieces.

    [~merge:false] disables step (4) — fragmentation only, the state
    depicted in Figure 5b — and is the ablation showing why merging is
    needed ("each new access possibly increases the nodes in the BST by
    two"). [~order_aware:false] reinstates the legacy conflict rule for
    the order-awareness ablation. *)

type t

val create :
  ?order_aware:bool -> ?merge:bool -> ?fast_path:bool -> ?batch:bool ->
  ?budget:Rma_fault.Budget.t -> unit -> t
(** Defaults: [order_aware = true], [merge = true], [fast_path = true],
    [batch] from {!batch_default_enabled} — the published contribution
    plus the finger-cache fast path.

    [~fast_path:false] disables the finger cache and pending buffer
    entirely (every insert runs Algorithm 1 against the tree); it is
    also forced off by [~merge:false], because the fast path coalesces
    adjacent accesses — i.e. it {e is} a merge. [~batch:true] starts the
    store with the deeper coalescing write buffer already open (see
    {!batch_begin}).

    [?budget] (default {!Rma_fault.Budget.default}, i.e. the process
    default or none) bounds the store: an insert leaving the store over
    the effective node cap triggers the budget's degradation policy —
    {!Rma_fault.Budget.Exhausted} under [Fail_fast], oldest-first
    eviction under [Spill_oldest_epoch], provenance-discarding merging
    under [Coarsen] — with every lost node counted in the
    [degraded_drops] statistic. See {!Governor} and DESIGN.md §11. *)

include Store_intf.S with type t := t

val check_only : t -> Rma_access.Access.t -> Store_intf.insert_outcome
(** The race check of [insert] without the insertion; used by tests to
    probe the conflict rule. Flushes the pending buffer first so the
    verdict is computed against exactly the accesses an unbatched store
    would hold. *)

(** {1 Insert fast path}

    Runs of adjacent same-kind/same-debug-info accesses (the Code 2 /
    Figure 8b loop) are coalesced in O(1) into a small {e pending
    buffer} held outside the AVL tree; each pending run carries a
    certified tree-byte-free clear zone, so extending it needs no tree
    descent. The buffer holds exactly the nodes the unbatched store
    would hold, never survives an epoch boundary ({!note_epoch}) or a
    race check ({!check_only}), and any insert landing near a pending
    run flushes it before the slow path runs — detection semantics are
    byte-for-byte unchanged. Without {!batch_begin} the buffer keeps a
    single entry (the classic finger cache); [batch_begin] deepens it so
    several interleaved runs coalesce concurrently. *)

val batch_begin : t -> unit
(** Opens the coalescing write buffer (no-op when the fast path is
    disabled). Idempotent. *)

val batch_flush : t -> unit
(** Flushes every pending run into the tree. Called automatically at
    epoch boundaries and before any race check; exposed for callers that
    need the tree itself up to date (e.g. before [pp]-dumping it). *)

val batching : t -> bool
(** Whether the deep buffer is currently open. *)

type fast_path_stats = { finger_hits : int; batch_coalesced : int; batch_flushes : int }

val fast_path_stats : t -> fast_path_stats
(** [finger_hits] counts O(1) extensions of the most recently touched
    run, [batch_coalesced] counts every buffered coalesce (finger hits
    included), [batch_flushes] counts buffer-to-tree flush events. Also
    exported as the Obs counters [store.disjoint.finger_hits],
    [store.disjoint.batch_coalesced] and
    [store.disjoint.batch_flushes]. *)

val set_batch_default : bool -> unit
(** Process-wide default for [?batch] (the CLI's [--batch-inserts]);
    initialised from the [RMA_BATCH_INSERTS] environment variable. *)

val batch_default_enabled : unit -> bool

val self_check : t -> bool
(** Validates the fast-path invariants (pending runs inside their clear
    zones, zones free of tree bytes, runs pairwise non-adjacent, buffer
    within capacity) plus the tree invariants; for tests. *)

(** {1 Flight recorder}

    When {!Flight_recorder.is_enabled} held at {!create} time, the store
    keeps a bounded ring of the original (pre-fragmentation) accesses it
    absorbed, so race reports can name every source access that
    contributed bytes to a node even after the Table 1 dominance rule or
    merging discarded its debug info. All three entry points are no-ops
    on a store created while recording was disabled. *)

val recorder : t -> Flight_recorder.t option
(** The store's ring, for report builders; [None] when recording was
    disabled at creation. {!Store_intf.S.note_epoch} advances its epoch
    stamp. *)
