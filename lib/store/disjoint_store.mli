(** The paper's contribution: a store whose intervals stay disjoint
    through fragmentation (§4.1) and compact through merging (§4.2) —
    Algorithm 1.

    On each insertion the store (1) checks the new access against every
    genuinely overlapping recorded access (exact interval-tree stabbing,
    so the legacy lower-bound false negatives disappear), (2) retrieves
    the overlapping-or-adjacent accesses, (3) fragments the overlapping
    ones into disjoint pieces whose kinds follow the Table 1 dominance
    rule, (4) merges adjacent pieces with equal kind and debug info, and
    (5) replaces the old nodes with the merged pieces.

    [~merge:false] disables step (4) — fragmentation only, the state
    depicted in Figure 5b — and is the ablation showing why merging is
    needed ("each new access possibly increases the nodes in the BST by
    two"). [~order_aware:false] reinstates the legacy conflict rule for
    the order-awareness ablation. *)

type t

val create : ?order_aware:bool -> ?merge:bool -> unit -> t
(** Defaults: [order_aware = true], [merge = true] — the published
    contribution. *)

include Store_intf.S with type t := t

val check_only : t -> Rma_access.Access.t -> Store_intf.insert_outcome
(** The race check of [insert] without the insertion; used by tests to
    probe the conflict rule. *)

(** {1 Flight recorder}

    When {!Flight_recorder.is_enabled} held at {!create} time, the store
    keeps a bounded ring of the original (pre-fragmentation) accesses it
    absorbed, so race reports can name every source access that
    contributed bytes to a node even after the Table 1 dominance rule or
    merging discarded its debug info. All three entry points are no-ops
    on a store created while recording was disabled. *)

val recorder : t -> Flight_recorder.t option

val note_epoch : t -> unit
(** Advance the recorder's epoch stamp (called at [Epoch_opened]). *)
