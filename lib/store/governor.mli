open Rma_access

(** Budget enforcement shared by the access stores.

    A governor turns an {!Rma_fault.Budget.t} into an effective node
    cap (translating [max_bytes] through the store's per-node byte
    estimate) and tracks the two pieces of state every degradation
    policy needs: the epoch watermark separating completed-epoch
    accesses from current-epoch ones, and the running count of nodes
    the store dropped or coarsened away ([degraded_drops] in
    {!Store_intf.stats}). The eviction/merge loops themselves live in
    each store because they manipulate store-private trees; this module
    decides {e what} to evict. Semantics are specified in DESIGN.md
    §11. *)

type t

val create : ?budget:Rma_fault.Budget.t -> bytes_per_node:int -> unit -> t option
(** [None] when the explicit budget (or, absent one, the process
    default {!Rma_fault.Budget.default}) is missing or unbounded — an
    ungoverned store pays one option match per insert. [bytes_per_node]
    is the store's documented per-node memory estimate used to convert
    [max_bytes] into a node cap; the effective cap is the tighter of
    the node and byte caps, never below 1. *)

val budget : t -> Rma_fault.Budget.t

val cap : t -> int
(** Effective node cap. *)

val over : t -> size:int -> bool
(** Is the store, at [size] nodes, over its cap? *)

val observe_seq : t option -> int -> unit
(** Track the highest access sequence number the store absorbed; the
    epoch watermark is taken from it at {!note_epoch}. *)

val note_epoch : t option -> unit
(** Epoch boundary: every access observed so far becomes
    completed-epoch (spill victims of first resort). *)

val completed_epoch : t -> seq:int -> bool
(** Was [seq] observed before the last epoch boundary? *)

val spill_victims : t -> size:int -> seq_of:('a -> int) -> 'a list -> 'a list
(** [spill_victims g ~size ~seq_of nodes] chooses which of [nodes] the
    store must evict to get from [size] back to the cap: oldest
    sequence numbers first, all completed-epoch accesses before any
    current-epoch one. Returns the empty list when not over. *)

val coarsen_accesses : Access.t list -> Access.t list * int
(** Merge runs of overlapping-or-adjacent accesses with equal kind and
    issuer {e ignoring debug-info inequality} — the §4.2 merge
    precondition minus provenance. The input must be sorted by
    increasing lower bound (as {!Store_intf.S.to_list} returns it);
    each merged run keeps the most recent member's kind, issuer,
    sequence number and debug info over the hull of the run. Returns
    the coarsened list and the number of nodes merged away. *)

val record_drops : t -> int -> unit
(** Count [n] dropped/coarsened nodes (also on the Obs counter
    [store.degraded_drops]). *)

val drops : t option -> int
(** Total [degraded_drops] so far; 0 for an ungoverned store. *)

val degraded : t option -> bool
(** Has governance ever dropped or coarsened a node? Reports detected
    on a degraded store carry downgraded confidence in SARIF. *)

val exhausted : store:string -> size:int -> t -> 'a
(** Raise {!Rma_fault.Budget.Exhausted} naming the store kind, its size
    and its cap — the [Fail_fast] policy. *)
