open Rma_access
(** Balanced binary search tree of accesses, ordered by interval lower
    bound (then upper bound, then sequence number, so the tree behaves
    as a multiset: several accesses with equal lower bounds coexist, as
    in the C++ [std::multiset] the original RMA-Analyzer uses).

    Each node is augmented with the maximum interval upper bound of its
    subtree, turning the tree into an interval tree: [stab] retrieves
    every stored access overlapping a query interval in
    O(log n + answers) regardless of how intervals nest.

    The tree also exposes [search_path] — the plain BST descent towards
    a query's insertion point comparing lower bounds only. Legacy
    RMA-Analyzer checks for conflicts along exactly that path, which is
    how it misses overlaps sitting off-path (the Figure 5a false
    negative); the legacy store needs the primitive preserved
    faithfully. *)

type t

val create : unit -> t

val size : t -> int

val height : t -> int

val is_empty : t -> bool

val insert : t -> Access.t -> unit
(** Multiset insert; never rejects. *)

val remove : t -> Access.t -> bool
(** Removes one occurrence structurally equal to the argument; [false]
    when absent. *)

val stab : t -> Interval.t -> Access.t list
(** Every stored access whose interval overlaps the query, in increasing
    lower-bound order. Uses the max-upper-bound augmentation, so it is
    exact. *)

type clearance =
  | Blocked
      (** Some stored byte lies within one byte of the query (or the
          single-descent answer could not be certified). *)
  | Clear of { pred_hi : int; succ_lo : int }
      (** No stored byte within one byte of the query: every stored byte
          left of it is [<= pred_hi] and every stored byte right of it
          is [>= succ_lo] ([min_int]/[max_int] when that side is
          empty). *)

val clearance : t -> Interval.t -> clearance
(** Single-descent gap query around the one-byte-widened query window;
    conservative ([Blocked]) whenever certifying the gap would need a
    second path. Used by the disjoint store's insert fast path. *)

val ops : t -> int
(** Cumulative count of tree operations (descents): [insert], [remove],
    [stab], [search_path] and [clearance] each count one. *)

val search_path : t -> Access.t -> Access.t list
(** The accesses on the BST descent from the root towards [query]'s
    insertion slot (inclusive of every node compared against), in
    descent order. This is the only part of the tree legacy
    RMA-Analyzer inspects when checking a new access for conflicts. *)

val to_list : t -> Access.t list
(** In-order (increasing lower bound). *)

val iter : t -> (Access.t -> unit) -> unit

val fold : t -> init:'a -> f:('a -> Access.t -> 'a) -> 'a

val clear : t -> unit

val invariants_ok : t -> bool
(** Checks BST order, AVL balance and the max-hi augmentation; for
    tests. *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering for debugging and the Figure 5 bench. *)
