open Rma_access
module Budget = Rma_fault.Budget
module Obs = Rma_obs.Obs

type t = {
  budget : Budget.t;
  cap : int;
  mutable max_seq : int;  (* highest sequence number absorbed so far *)
  mutable watermark : int;  (* max_seq as of the last epoch boundary *)
  mutable drops : int;
}

let obs_drops =
  Obs.counter ~help:"Store nodes evicted or coarsened away by budget governance"
    "store.degraded_drops"

let create ?budget ~bytes_per_node () =
  let budget = match budget with Some b -> Some b | None -> Budget.default () in
  match budget with
  | None -> None
  | Some b when Budget.is_unbounded b -> None
  | Some b ->
      let node_cap = match b.Budget.max_nodes with Some n -> n | None -> max_int in
      let byte_cap =
        match b.Budget.max_bytes with Some n -> max 1 (n / bytes_per_node) | None -> max_int
      in
      Some { budget = b; cap = max 1 (min node_cap byte_cap); max_seq = -1; watermark = -1; drops = 0 }

let budget t = t.budget
let cap t = t.cap
let over t ~size = size > t.cap

let observe_seq t seq =
  match t with None -> () | Some g -> if seq > g.max_seq then g.max_seq <- seq

let note_epoch t = match t with None -> () | Some g -> g.watermark <- g.max_seq
let completed_epoch t ~seq = seq <= t.watermark

let spill_victims t ~size ~seq_of nodes =
  let excess = size - t.cap in
  if excess <= 0 then []
  else begin
    let completed, current = List.partition (fun n -> completed_epoch t ~seq:(seq_of n)) nodes in
    let by_seq = List.sort (fun a b -> compare (seq_of a) (seq_of b)) in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | n :: rest -> n :: take (k - 1) rest
    in
    take excess (by_seq completed @ by_seq current)
  end

(* Greedy left-to-right run merging over the in-order list: the §4.2
   precondition minus debug-info equality. The most recent member wins
   the merged node's identity, mirroring [Access.most_recent]. *)
let coarsen_accesses accesses =
  let joinable a b =
    Access_kind.equal a.Access.kind b.Access.kind
    && a.Access.issuer = b.Access.issuer
    && (Interval.overlaps a.Access.interval b.Access.interval
       || Interval.adjacent a.Access.interval b.Access.interval)
  in
  let join a b =
    Access.with_interval (Access.most_recent a b)
      (Interval.hull a.Access.interval b.Access.interval)
  in
  let rec go merged acc = function
    | [] -> (List.rev acc, merged)
    | x :: rest -> (
        match acc with
        | prev :: acc' when joinable prev x -> go (merged + 1) (join prev x :: acc') rest
        | _ -> go merged (x :: acc) rest)
  in
  go 0 [] accesses

let record_drops t n =
  if n > 0 then begin
    t.drops <- t.drops + n;
    Obs.add obs_drops n;
    (* Degradation is exactly what an operator must not miss: journal
       every batch of drops with the policy that caused it. Runs on
       whichever domain the store insert ran on; the event carries that
       domain's shard stamp. *)
    Rma_obs.Events.emit
      ~kv:
        [
          ("event", "budget_degradation");
          ("policy", Budget.policy_name t.budget.Budget.policy);
          ("drops", string_of_int n);
          ("total_drops", string_of_int t.drops);
          ("cap", string_of_int t.cap);
        ]
      Rma_obs.Events.Warn "governor"
  end

let drops = function None -> 0 | Some g -> g.drops
let degraded t = drops t > 0

let exhausted ~store ~size t =
  Rma_obs.Events.emit
    ~kv:
      [
        ("event", "budget_exhausted");
        ("store", store);
        ("size", string_of_int size);
        ("cap", string_of_int t.cap);
      ]
    Rma_obs.Events.Error "governor";
  raise
    (Budget.Exhausted
       (Printf.sprintf "%s store over budget: %d nodes > cap %d (%s)" store size t.cap
          (Budget.to_spec t.budget)))
