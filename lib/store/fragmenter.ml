open Rma_access

let fragment ~candidates ~new_acc =
  let nl = Interval.lo new_acc.Access.interval and nh = Interval.hi new_acc.Access.interval in
  let pieces = ref [] in
  let created = ref 0 in
  let pass_through piece = pieces := piece :: !pieces in
  let emit piece =
    incr created;
    pieces := piece :: !pieces
  in
  let cursor = ref nl in
  List.iter
    (fun cand ->
      let civ = cand.Access.interval in
      if not (Interval.overlaps civ new_acc.Access.interval) then
        (* Merely adjacent: nothing to fragment; kept so merging can see
           it. *)
        pass_through cand
      else begin
        (match Interval.left_remainder ~outer:civ ~cut:new_acc.Access.interval with
        | Some left -> emit (Access.with_interval cand left)
        | None -> ());
        let s = max (Interval.lo civ) nl and e = min (Interval.hi civ) nh in
        if !cursor < s then
          emit (Access.with_interval new_acc (Interval.make ~lo:!cursor ~hi:(s - 1)));
        emit (Access.dominate ~older:cand ~newer:new_acc (Interval.make ~lo:s ~hi:e));
        cursor := e + 1;
        match Interval.right_remainder ~outer:civ ~cut:new_acc.Access.interval with
        | Some right -> emit (Access.with_interval cand right)
        | None -> ()
      end)
    candidates;
  if !cursor <= nh then
    emit (Access.with_interval new_acc (Interval.make ~lo:!cursor ~hi:nh));
  let sorted =
    List.sort (fun a b -> Interval.compare_lo a.Access.interval b.Access.interval) !pieces
  in
  (sorted, !created)

let merge pieces =
  let merges = ref 0 in
  let rec go acc = function
    | [] -> List.rev acc
    | piece :: rest -> (
        match acc with
        | prev :: acc_rest
          when Access.mergeable prev piece
               && (Interval.adjacent prev.Access.interval piece.Access.interval
                  || Interval.overlaps prev.Access.interval piece.Access.interval) ->
            incr merges;
            let merged =
              Access.with_interval (Access.most_recent prev piece)
                (Interval.hull prev.Access.interval piece.Access.interval)
            in
            go (merged :: acc_rest) rest
        | _ -> go (piece :: acc) rest)
  in
  let out = go [] pieces in
  (out, !merges)
