(** The original RMA-Analyzer access store ([1], Aitkaci et al. 2021),
    reproduced with its published weaknesses:

    - accesses are kept {e non-disjoint}: every instrumented access adds
      one node, so the tree grows linearly with the access count (5 002
      nodes for the Code 2 loop, Figure 8b);
    - the conflict check compares the new access only against the nodes
      met on the lower-bound BST descent towards its insertion slot, so
      a wide interval sitting off that path is missed — the Figure 5a
      false negative;
    - the conflict rule is order-insensitive: a local access followed by
      an RMA operation from the same process is flagged exactly like the
      racy converse order, producing the six Table 3 false positives
      (e.g. [ll_load_get_inwindow_origin_safe], Table 2). *)

type t

val create : ?budget:Rma_fault.Budget.t -> unit -> t
(** [?budget] (default {!Rma_fault.Budget.default}) bounds the store
    exactly as on {!Disjoint_store.create}; the legacy store spills and
    coarsens over its plain multiset. *)

include Store_intf.S with type t := t
(** [note_epoch] only moves the governance watermark — the legacy store
    has no flight recorder. *)
