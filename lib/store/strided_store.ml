open Rma_access

type region = {
  base : int;
  len : int;
  stride : int;
  count : int;
  kind : Access_kind.t;
  issuer : int;
  seq : int;
  debug : Debug_info.t;
  tinfo : Access.thread_info;
}

let region_hull r = Interval.make ~lo:r.base ~hi:(r.base + ((r.count - 1) * r.stride) + r.len - 1)

let region_covers r iv =
  (* Does any element of the region overlap [iv]? Elements start at
     base + k*stride; it suffices to check the elements whose start lies
     within one stride of the query. *)
  if not (Interval.overlaps (region_hull r) iv) then false
  else begin
    let lo = Interval.lo iv and hi = Interval.hi iv in
    let first = max 0 ((lo - r.base - r.len + 1 + r.stride - 1) / r.stride) in
    let last = min (r.count - 1) ((hi - r.base) / r.stride) in
    let rec any k =
      k <= last
      &&
      let e_lo = r.base + (k * r.stride) in
      (e_lo <= hi && lo <= e_lo + r.len - 1) || any (k + 1)
    in
    any first
  end

let region_of_access (a : Access.t) =
  {
    base = Interval.lo a.Access.interval;
    len = Interval.length a.Access.interval;
    stride = Interval.length a.Access.interval;
    count = 1;
    kind = a.Access.kind;
    issuer = a.Access.issuer;
    seq = a.Access.seq;
    debug = a.Access.debug;
    tinfo = a.Access.thread;
  }

let access_of_region r =
  Access.make_threaded ~thread:r.tinfo ~interval:(region_hull r) ~kind:r.kind ~issuer:r.issuer
    ~seq:r.seq ~debug:r.debug

let element_accesses r =
  List.init r.count (fun k ->
      Access.make_threaded ~thread:r.tinfo
        ~interval:(Interval.of_range ~addr:(r.base + (k * r.stride)) ~len:r.len)
        ~kind:r.kind ~issuer:r.issuer ~seq:r.seq ~debug:r.debug)

module Tree = Interval_tree.Make (struct
  type t = region

  let interval = region_hull
  let tiebreak r = r.seq

  let equal a b =
    a.base = b.base && a.len = b.len && a.stride = b.stride && a.count = b.count
    && Access_kind.equal a.kind b.kind && a.issuer = b.issuer && a.seq = b.seq
    && Debug_info.equal a.debug b.debug
    && Access.thread_equal a.tinfo b.tinfo

  let pp fmt r =
    Format.fprintf fmt "(base %d, len %d, stride %d, count %d, %a, rank %d, %a)" r.base r.len
      r.stride r.count Access_kind.pp r.kind r.issuer Debug_info.pp r.debug
end)

type t = {
  tree : Tree.t;
  order_aware : bool;
  gov : Governor.t option;
  mutable peak_nodes : int;
  mutable inserts : int;
  mutable fragments_created : int;
  mutable merges_performed : int;
  mutable race_checks : int;
}

(* Tree node + region record (8 fields) + a share of the debug
   strings; regions are a little heavier than plain accesses. *)
let approx_node_bytes = 144

let create ?(order_aware = true) ?budget () =
  {
    tree = Tree.create ();
    order_aware;
    gov = Governor.create ?budget ~bytes_per_node:approx_node_bytes ();
    peak_nodes = 0;
    inserts = 0;
    fragments_created = 0;
    merges_performed = 0;
    race_checks = 0;
  }

let spill t g =
  let victims =
    Governor.spill_victims g ~size:(Tree.size t.tree) ~seq_of:(fun r -> r.seq)
      (Tree.to_list t.tree)
  in
  List.iter (fun r -> ignore (Tree.remove t.tree r)) victims;
  Governor.record_drops g (List.length victims)

(* Coarsening for regions: merge a perfect stride continuation — same
   kind, issuer, element length and stride, with the second region's
   first element landing exactly one stride after the first region's
   last — ignoring debug-info inequality. Coverage is exactly
   preserved (unlike hull merging, which would swallow gap bytes). *)
let coarsen t g =
  let continuation a b =
    Access_kind.equal a.kind b.kind && a.issuer = b.issuer && a.len = b.len
    && Access.thread_equal a.tinfo b.tinfo
    && (a.stride = b.stride || b.count = 1)
    && b.base = a.base + (a.count * a.stride)
  in
  let join a b =
    let seq = max a.seq b.seq in
    let debug = if b.seq >= a.seq then b.debug else a.debug in
    { a with count = a.count + b.count; seq; debug }
  in
  let rec go merged acc = function
    | [] -> (List.rev acc, merged)
    | x :: rest -> (
        match acc with
        | prev :: acc' when continuation prev x -> go (merged + 1) (join prev x :: acc') rest
        | _ -> go merged (x :: acc) rest)
  in
  let coarse, n = go 0 [] (Tree.to_list t.tree) in
  if n > 0 then begin
    Tree.clear t.tree;
    List.iter (fun r -> Tree.insert t.tree r) coarse;
    Governor.record_drops g n
  end

let enforce_budget t =
  match t.gov with
  | None -> ()
  | Some g ->
      if Governor.over g ~size:(Tree.size t.tree) then begin
        match (Governor.budget g).Rma_fault.Budget.policy with
        | Rma_fault.Budget.Fail_fast ->
            Governor.exhausted ~store:"strided" ~size:(Tree.size t.tree) g
        | Rma_fault.Budget.Spill_oldest_epoch -> spill t g
        | Rma_fault.Budget.Coarsen ->
            coarsen t g;
            if Governor.over g ~size:(Tree.size t.tree) then spill t g
      end

let note_peak t = if Tree.size t.tree > t.peak_nodes then t.peak_nodes <- Tree.size t.tree

(* A region is mergeable with an access of the same element shape and
   identity. *)
let extendable r (a : Access.t) =
  Interval.length a.Access.interval = r.len
  && Access_kind.equal a.Access.kind r.kind
  && a.Access.issuer = r.issuer
  && Debug_info.equal a.Access.debug r.debug
  && Access.thread_equal a.Access.thread r.tinfo

(* Where the access would land as the region's next element: count = 1
   regions accept any position after the element (fixing the stride);
   larger regions require exactly one stride past the last element. *)
let extension_of r (a : Access.t) =
  if not (extendable r a) then None
  else begin
    let lo = Interval.lo a.Access.interval in
    if r.count = 1 then begin
      (* The second element fixes the stride; it must not overlap the
         first and must stay within the lookbehind horizon. *)
      if lo - r.base >= r.len && lo - r.base <= 4096 then
        Some { r with stride = lo - r.base; count = 2; seq = a.Access.seq }
      else None
    end
    else if lo = r.base + (r.count * r.stride) then
      Some { r with count = r.count + 1; seq = a.Access.seq }
    else None
  end

let detect_race t (access : Access.t) candidates =
  List.find_map
    (fun r ->
      if region_covers r access.Access.interval then begin
        t.race_checks <- t.race_checks + 1;
        let existing = access_of_region r in
        match Race_rule.check ~order_aware:t.order_aware ~existing ~incoming:access with
        | Race_rule.No_race -> None
        | Race_rule.Race _ | Race_rule.Predicted _ -> Some existing
      end
      else None)
    candidates

module Obs = Rma_obs.Obs

let obs_insert_seconds =
  Obs.histogram ~help:"Wall time of one Strided_store.insert" "store.strided.insert_seconds"

let obs_merges =
  Obs.histogram ~unit_:"count" ~help:"Region extensions/merges per insert (section 6(3))"
    "store.strided.merges_per_insert"

let insert_unbudgeted t access =
  t.inserts <- t.inserts + 1;
  let iv = access.Access.interval in
  let wide = Interval.make ~lo:(Interval.lo iv - 1) ~hi:(Interval.hi iv + 1) in
  (* Hull-overlap candidates; widen generously so stride extension can
     also see regions whose hull ends well before this access. *)
  let near = Tree.stab t.tree wide in
  match detect_race t access near with
  | Some existing -> Store_intf.Race_detected { existing; incoming = access }
  | None -> (
      (* Regions whose elements already claim bytes of this access. Any
         region with an element overlapping [iv] has a hull overlapping
         [iv], so scanning [near] is exhaustive. *)
      let covering = List.filter (fun r -> region_covers r iv) near in
      (* Try to extend a region: the candidate whose next element slot is
         exactly this access. Look beyond the widened query — the gap can
         be larger than one byte — by also stabbing at the position a
         previous element would occupy. Only legal on virgin bytes: if
         any region already covers part of [iv], extending would record
         the access twice with independent dominance state (overlapping
         regions, one of them stale) — that case must fragment instead. *)
      let extension =
        if covering <> [] then None
        else begin
          let behind =
            Tree.stab t.tree
              (Interval.make ~lo:(Interval.lo iv - 4096) ~hi:(Interval.lo iv - 1))
          in
          let all_candidates = List.sort_uniq compare (near @ behind) in
          List.find_map
            (fun r ->
              match extension_of r access with
              | Some extended -> Some (r, extended)
              | None -> None)
            all_candidates
        end
      in
      match extension with
      | Some (old_region, extended) ->
          ignore (Tree.remove t.tree old_region);
          Tree.insert t.tree extended;
          t.merges_performed <- t.merges_performed + 1;
          note_peak t;
          Store_intf.Inserted
      | None ->
          if covering = [] then begin
            Tree.insert t.tree (region_of_access access);
            note_peak t;
            Store_intf.Inserted
          end
          else begin
            (* Conservative fallback: explode the covering regions into
               their elements and run the standard fragmentation and
               merging over them. *)
            let elements =
              List.concat_map element_accesses covering
              |> List.sort (fun a b -> Interval.compare_lo a.Access.interval b.Access.interval)
            in
            let overlapping_or_adjacent =
              List.filter
                (fun e ->
                  Interval.overlaps e.Access.interval iv || Interval.adjacent e.Access.interval iv)
                elements
            in
            let untouched =
              List.filter (fun e -> not (List.memq e overlapping_or_adjacent)) elements
            in
            let pieces, created =
              Fragmenter.fragment ~candidates:overlapping_or_adjacent ~new_acc:access
            in
            t.fragments_created <- t.fragments_created + created;
            let merged, merges = Fragmenter.merge pieces in
            t.merges_performed <- t.merges_performed + merges;
            List.iter (fun r -> ignore (Tree.remove t.tree r)) covering;
            List.iter (fun a -> Tree.insert t.tree (region_of_access a)) untouched;
            List.iter (fun a -> Tree.insert t.tree (region_of_access a)) merged;
            note_peak t;
            Store_intf.Inserted
          end)

let insert_uninstrumented t access =
  Rma_obs.Telemetry.note_event ();
  let outcome = insert_unbudgeted t access in
  (match outcome with
  | Store_intf.Inserted ->
      Governor.observe_seq t.gov access.Access.seq;
      enforce_budget t
  | Store_intf.Race_detected _ -> ());
  outcome

let insert t access =
  if not (Obs.is_enabled ()) then insert_uninstrumented t access
  else begin
    let t0 = Rma_util.Timer.now () in
    let m0 = t.merges_performed in
    let outcome = insert_uninstrumented t access in
    Obs.observe obs_insert_seconds (Rma_util.Timer.now () -. t0);
    Obs.observe_int obs_merges (t.merges_performed - m0);
    outcome
  end

let size t = Tree.size t.tree

let stats t =
  {
    Store_intf.nodes = Tree.size t.tree;
    peak_nodes = t.peak_nodes;
    inserts = t.inserts;
    fragments_created = t.fragments_created;
    merges_performed = t.merges_performed;
    race_checks = t.race_checks;
    tree_ops = Tree.ops t.tree;
    degraded_drops = Governor.drops t.gov;
  }

let regions t = Tree.to_list t.tree

let to_list t = List.map access_of_region (regions t)

let covered_bytes t =
  Tree.fold t.tree ~init:0 ~f:(fun acc r -> acc + (r.count * r.len))

let note_epoch t = Governor.note_epoch t.gov

let clear t = Tree.clear t.tree

let pp fmt t = Tree.pp fmt t.tree
