open Rma_access

(* The access-specialised instance of the generic interval tree. *)
include Interval_tree.Make (struct
  type t = Access.t

  let interval a = a.Access.interval
  let tiebreak a = a.Access.seq
  let equal = Access.equal
  let pp = Access.pp
end)
