open Rma_access

(** The pure core of Algorithm 1's steps 3 and 4, shared by
    {!Disjoint_store} and the strided extension's fallback path. *)

val fragment : candidates:Access.t list -> new_acc:Access.t -> Access.t list * int
(** [fragment ~candidates ~new_acc] splits the union of [new_acc] and
    the candidates into disjoint pieces (§4.1): candidate bytes outside
    the new interval keep the candidate identity, intersections take the
    Table 1 dominant kind (recency breaking ties), uncovered new-access
    bytes keep the new identity, and merely-adjacent candidates pass
    through whole. [candidates] must be pairwise disjoint and sorted by
    lower bound (the store invariant). Returns the pieces sorted by
    lower bound and the number of genuine fragments created. *)

val merge : Access.t list -> Access.t list * int
(** [merge pieces] coalesces adjacent pieces with equal access kind,
    debug info and issuer (§4.2). [pieces] must be sorted and disjoint.
    Returns the merged list and the number of coalesced pairs. *)
