open Scenario

(* The generated programs mirror the paper's Figure 8 style: a window
   location X, a local buffer buf, two operations in one
   lock_all/unlock_all epoch. Rank 0 is ORIGIN1, rank 1 TARGET, rank 2
   ORIGIN2 (only compiled in when used). *)

let op_c ~which ~(s : t) (op, actor) role =
  let rank = actor_rank actor in
  let overlapping = s.variant = Overlapping || which = `First in
  let slot = match which with `First -> "SLOT_A" | `Second -> "SLOT_B" in
  let shared_expr in_window =
    if in_window then if overlapping then "win_mem + SHARED_OFF" else "win_mem + SHARED2_OFF"
    else if overlapping then "shared_buf"
    else "shared2_buf"
  in
  let in_window = match s.place with Origin_in | Target_in -> true | _ -> false in
  let owner = place_owner_rank s.place in
  let lines =
    match (op, role) with
    | Load, As_local -> [ Printf.sprintf "tmp = *(%s); /* Load */" (shared_expr in_window) ]
    | Store, As_local -> [ Printf.sprintf "*(%s) = 1234; /* Store */" (shared_expr in_window) ]
    | Get, As_origin_buffer ->
        [
          Printf.sprintf
            "MPI_Get(%s, 1, MPI_INT, %d, %s, 1, MPI_INT, win);"
            (shared_expr in_window)
            (if rank = 0 then 1 else 0)
            slot;
        ]
    | Put, As_origin_buffer ->
        [
          Printf.sprintf
            "MPI_Put(%s, 1, MPI_INT, %d, %s, 1, MPI_INT, win);"
            (shared_expr in_window)
            (if rank = 0 then 1 else 0)
            slot;
        ]
    | Get, As_remote_target ->
        [
          Printf.sprintf "MPI_Get(private_%s, 1, MPI_INT, %d, %s, 1, MPI_INT, win);"
            (match which with `First -> "a" | `Second -> "b")
            owner
            (if overlapping then "SHARED_DISP" else "SHARED2_DISP");
        ]
    | Put, As_remote_target ->
        [
          Printf.sprintf "MPI_Put(private_%s, 1, MPI_INT, %d, %s, 1, MPI_INT, win);"
            (match which with `First -> "a" | `Second -> "b")
            owner
            (if overlapping then "SHARED_DISP" else "SHARED2_DISP");
        ]
    | (Load | Store), (As_origin_buffer | As_remote_target) | (Get | Put), As_local ->
        invalid_arg "C_source.op_c: inconsistent scenario"
  in
  List.map (fun l -> Printf.sprintf "  if (rank == %d) %s" rank l) lines

let emit (s : t) =
  let in_window = match s.place with Origin_in | Target_in -> true | _ -> false in
  let stack = s.stack_shared in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf str; Buffer.add_char buf '\n') fmt in
  line "/* %s — generated from the suite description (SC-W 2023, section 5.2)." s.name;
  line "   Ground truth: %s. */" (if s.racy then "DATA RACE" else "safe");
  line "#include <mpi.h>";
  line "#include <stdlib.h>";
  line "#include <stdio.h>";
  line "";
  line "#define SHARED_OFF   2";
  line "#define SHARED2_OFF  4";
  line "#define SHARED_DISP  2";
  line "#define SHARED2_DISP 4";
  line "#define SLOT_A       6";
  line "#define SLOT_B       8";
  line "";
  line "int main(int argc, char **argv) {";
  line "  int rank, tmp = 0;";
  line "  MPI_Init(&argc, &argv);";
  line "  MPI_Comm_rank(MPI_COMM_WORLD, &rank);";
  (if stack && in_window then line "  int win_mem[16]; /* stack array: window over automatic storage */"
   else line "  int *win_mem = malloc(16 * sizeof(int));");
  (if stack && not in_window then
     line "  int shared_stack[4]; int *shared_buf = shared_stack; /* stack array */"
   else line "  int *shared_buf = malloc(4 * sizeof(int));");
  line "  int *shared2_buf = malloc(4 * sizeof(int));";
  line "  int private_a[1], private_b[1];";
  line "  MPI_Win win;";
  line "  MPI_Win_create(win_mem, 16 * sizeof(int), sizeof(int), MPI_INFO_NULL,";
  line "                 MPI_COMM_WORLD, &win);";
  line "  MPI_Win_lock_all(0, win);";
  List.iter (line "%s") (op_c ~which:`First ~s s.first s.first_role);
  List.iter (line "%s") (op_c ~which:`Second ~s s.second s.second_role);
  line "  MPI_Win_unlock_all(win);";
  line "  MPI_Win_free(&win);";
  line "  (void)tmp; (void)private_a; (void)private_b; (void)shared2_buf;";
  line "  MPI_Finalize();";
  line "  return 0;";
  line "}";
  Buffer.contents buf

let emit_all_to ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun s ->
      let oc = open_out (Filename.concat dir (s.name ^ ".c")) in
      output_string oc (emit s);
      close_out oc)
    all
