(** The 154-code microbenchmark suite of §5.2.

    The paper describes the suite as "every combination of two one-sided
    operations by varying the order of the operations, the callers of
    the operations, and the location that will be accessed twice" — 154
    codes, 47 with a data race and 107 safe. We regenerate it as:

    - {b 56 base combinations}: the first operation is issued by the
      origin process (rank 0, as in Figure 3); the second by the same
      process, the target (rank 1) or a second origin (rank 2); both
      touch the same 8-byte location, which lives in or out of a window,
      at origin or target side. 36 are racy, 20 safe.
    - {b 56 disjoint twins}: the same combinations with the second
      operation moved to a non-overlapping location — always safe.
    - {b 11 heap variants of racy codes} and {b 31 heap variants of safe
      codes}: the suite's C codes declare window memory as stack arrays
      (which ThreadSanitizer cannot instrument) and the paper notes that
      "when using heap arrays, the error is detected by MUST-RMA"; these
      variants re-run a combination with the shared location on the
      heap. Heap variants of the six order-sensitivity codes are
      excluded so the legacy false-positive count stays faithful.

    Totals: 154 codes, 47 racy, 107 safe — the paper's Table 3 corpus.
    Three out-of-window racy codes additionally declare their shared
    buffer on the stack (C automatic arrays), bringing the
    ThreadSanitizer-invisible races to the paper's 15. *)

type op = Get | Put | Load | Store

type actor = Origin1 | Target | Origin2

type place = Origin_in | Origin_out | Target_in | Target_out
(** Where the shared location lives: in/out of the window, at rank 0
    (origin) or rank 1 (target). *)

(** How an operation touches the shared location. *)
type role =
  | As_local  (** A Load/Store on it. *)
  | As_origin_buffer  (** It is the RMA call's local buffer. *)
  | As_remote_target  (** It is the RMA call's remote window location. *)

type variant =
  | Overlapping  (** Both operations touch the same location. *)
  | Disjoint  (** The second operation touches a different location. *)

type t = {
  name : string;  (** Paper-style, e.g. [ll_get_load_outwindow_origin_race]. *)
  first : op * actor;
  second : op * actor;
  place : place;
  first_role : role;
  second_role : role;
  variant : variant;
  stack_shared : bool;  (** The shared location sits in stack storage. *)
  racy : bool;  (** Ground truth. *)
}

val op_name : op -> string
val actor_rank : actor -> int
val place_name : place -> string

val place_owner_rank : place -> int
(** 0 for origin-side places, 1 for target-side ones. *)

val kind_of : op -> role -> Rma_access.Access_kind.t
(** The access kind the operation performs {e on the shared location}
    (§2.1 duality: a Put reads its origin buffer and writes the remote
    window; a Get does the converse). *)

val ground_truth_racy :
  first:op * actor -> second:op * actor -> first_role:role -> second_role:role -> bool
(** The Figure 3 matrix: at least one RMA access and one write on the
    shared location, unordered — program order only protects a local
    access followed by an RMA call of the same process. *)

val all : t list
(** The full 154-code suite, deterministically ordered by name. *)

val count_total : int
val count_racy : int
val count_safe : int

val expected_legacy_false_positives : t list
(** The six safe codes the order-insensitive legacy rule flags. *)

val expected_must_false_negatives : t list
(** The fifteen racy codes whose conflicting local access touches stack
    storage. *)

val find : string -> t option

(** {1 RMARaceBench-shaped kernels}

    A small labeled corpus in the style of Jammer et al.'s RMARaceBench:
    complete three-rank MPI programs (not access-pair combinations like
    the 154-code suite above) covering remote/local conflicts, race and
    no-race variants, and lock/fence/flush synchronisation. Ground-truth
    labels let tests assert that a detector — with or without the
    disjoint store's insert batching — reproduces every verdict. *)
module Kernel : sig
  type sync = Fence | Lock_all | Flush_only

  type locality =
    | Remote  (** The conflicting location is in the target's window. *)
    | Local_buffer  (** The conflicting location is an origin buffer. *)

  type t = {
    k_name : string;  (** e.g. [rrb_lockall_remote_conflict_put_put_race]. *)
    k_sync : sync;
    k_locality : locality;
    k_nprocs : int;
    k_racy : bool;  (** Ground truth. *)
    k_program : unit -> unit;  (** The rank program (runs on every rank). *)
  }

  val sync_name : sync -> string
  val locality_name : locality -> string

  val all : t list
  (** The full corpus; every kernel wants [k_nprocs] ranks. *)

  val hybrid : t list
  (** Hybrid MPI+threads kernels ([hyb_] prefix): every one spawns at
      least one intra-rank thread and carries a ground-truth label that
      holds under {e any} legal interleaving — spawned threads are
      joined (or signal/wait-ordered) before the epoch they access
      closes, so no schedule can move an access across the
      synchronisation that labels it. *)

  val predictive : t list
  (** Schedulable-race kernels ([prd_] prefix) for predictive mode:
      conflicting accesses in {e consecutive} passive-target epochs of
      one window, where the observed verdict depends on the interleave
      seed (unlock_all is not collective) but the union of observed and
      predicted races is schedule-independent and equals [k_racy] —
      [k_racy] here is ground truth under MPI synchronization semantics,
      i.e. whether {e some} legal schedule overlaps the pair. Includes
      the safe controls (disjoint locations, fence separation,
      flush-then-barrier, accumulate atomicity) showing where the weak
      order genuinely synchronises. *)

  val find : string -> t option
  (** Looks through [all], [hybrid] and [predictive]. *)
end
