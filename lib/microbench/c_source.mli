(** Render a scenario as the C program the paper's suite would contain.

    The emitted code is a faithful MPI C skeleton of the scenario —
    window creation over a stack or heap buffer, a
    lock_all/unlock_all passive-target epoch, the two operations with
    their callers — so the suite can be inspected, published, or (on a
    machine with a real MPI) compiled against the original tools. *)

val emit : Scenario.t -> string
(** The complete C translation unit for one scenario. *)

val emit_all_to : dir:string -> unit
(** Write every scenario to [dir]/<name>.c (creates the directory). *)
